// Batched RMI (CallBatch) and the background prefetcher.
#include <gtest/gtest.h>

#include "core/batch.h"
#include "core/prefetcher.h"
#include "obiwan.h"
#include "test_objects.h"

namespace obiwan {
namespace {

using core::CallBatch;
using core::ReplicationMode;
using test::Node;

class BatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<net::SimNetwork>(clock_, net::kPaperLan);
    server_ = std::make_unique<core::Site>(1, network_->CreateEndpoint("s"), clock_);
    client_ = std::make_unique<core::Site>(2, network_->CreateEndpoint("c"), clock_);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_TRUE(client_->Start().ok());
    server_->HostRegistry();
    client_->UseRegistry("s");
    master_ = test::MakeChain(1, 16, "m");
    ASSERT_TRUE(server_->Bind("obj", master_).ok());
    remote_ = *client_->Lookup<Node>("obj");
  }

  VirtualClock clock_;
  std::unique_ptr<net::SimNetwork> network_;
  std::unique_ptr<core::Site> server_;
  std::unique_ptr<core::Site> client_;
  std::shared_ptr<Node> master_;
  core::RemoteRef<Node> remote_;
};

TEST_F(BatchTest, ManyCallsOneRoundTrip) {
  CallBatch<Node> batch(*client_, remote_);
  std::vector<std::size_t> touches;
  for (int i = 0; i < 50; ++i) touches.push_back(batch.Add(&Node::Touch));
  std::size_t label = batch.Add(&Node::Label);

  Nanos before = clock_.Now();
  ASSERT_TRUE(batch.Execute().ok());
  Nanos elapsed = clock_.Now() - before;

  // One round trip, not 51: within 2x of the base RTT (payload transfer).
  EXPECT_LT(elapsed, 2 * 2'800 * kMicro);
  EXPECT_EQ(master_->value, 50);

  // In-order execution with per-call results.
  for (std::size_t i = 0; i < touches.size(); ++i) {
    auto v = batch.Get<std::int64_t>(touches[i]);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, static_cast<std::int64_t>(i + 1));
  }
  auto l = batch.Get<std::string>(label);
  ASSERT_TRUE(l.ok());
  EXPECT_EQ(*l, "m0");
}

TEST_F(BatchTest, ItemsFailIndependently) {
  // Second object with a different class to provoke a per-item miss.
  auto other = std::make_shared<test::Pair>();
  ASSERT_TRUE(server_->Bind("pair", other).ok());
  auto pair_remote = *client_->Lookup<test::Pair>("pair");

  CallBatch<Node> batch(*client_, remote_);
  std::size_t good = batch.Add(&Node::Touch);
  // Manually poison one item: call Node::Touch on the Pair object's id.
  CallBatch<test::Pair> pair_batch(*client_, pair_remote);
  std::size_t bad = pair_batch.Add(&test::Pair::Name);
  std::size_t good2 = batch.Add(&Node::Value);

  ASSERT_TRUE(batch.Execute().ok());
  EXPECT_TRUE(batch.Ok(good).ok());
  EXPECT_TRUE(batch.Ok(good2).ok());

  ASSERT_TRUE(pair_batch.Execute().ok());
  EXPECT_TRUE(pair_batch.Ok(bad).ok());  // actually fine — sanity

  // Genuine per-item failure: unknown method name via raw encoding.
  std::vector<rmi::CallRequest> calls;
  calls.push_back({remote_.id(), "Touch", {}});
  calls.push_back({remote_.id(), "NoSuchMethod", {}});
  calls.push_back({remote_.id(), "Touch", {}});
  auto reply = client_->transport().Request(
      "s", AsView(rmi::EncodeCallBatch(calls)));
  ASSERT_TRUE(reply.ok());
  auto results = rmi::DecodeBatchReply(AsView(*reply));
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 3u);
  EXPECT_TRUE((*results)[0].ok());
  EXPECT_EQ((*results)[1].status().code(), StatusCode::kNotFound);
  EXPECT_TRUE((*results)[2].ok());
}

TEST_F(BatchTest, EmptyBatchIsFree) {
  CallBatch<Node> batch(*client_, remote_);
  Nanos before = clock_.Now();
  EXPECT_TRUE(batch.Execute().ok());
  EXPECT_EQ(clock_.Now(), before);
}

TEST_F(BatchTest, WrongIndexAndVoidResults) {
  CallBatch<Node> batch(*client_, remote_);
  std::size_t set = batch.Add(&Node::SetValue, std::int64_t{9});
  ASSERT_TRUE(batch.Execute().ok());
  EXPECT_TRUE(batch.Ok(set).ok());
  EXPECT_EQ(master_->value, 9);
  EXPECT_EQ(batch.Ok(99).code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(batch.Get<std::int64_t>(99).ok());
}

// --- background prefetcher (real threads -> loopback transport) -------------------

TEST(BackgroundPrefetcher, HidesFaultsBeforeTraversal) {
  net::LoopbackNetwork network;
  core::Site provider(1, network.CreateEndpoint("p"));
  core::Site demander(2, network.CreateEndpoint("d"));
  ASSERT_TRUE(provider.Start().ok());
  ASSERT_TRUE(demander.Start().ok());
  provider.HostRegistry();
  demander.UseRegistry("p");

  auto head = test::MakeChain(40, 64, "n");
  ASSERT_TRUE(provider.Bind("list", head).ok());
  auto remote = demander.Lookup<Node>("list");
  ASSERT_TRUE(remote.ok());
  auto ref = remote->Replicate(ReplicationMode::Incremental(4));
  ASSERT_TRUE(ref.ok());

  core::BackgroundPrefetcher prefetcher(demander);
  prefetcher.Prefetch(*ref);
  prefetcher.Drain();

  EXPECT_EQ(demander.replica_count(), 40u);
  EXPECT_EQ(prefetcher.graphs_prefetched(), 1u);

  // Traversal now faults zero times over the network.
  const auto gets_before = demander.stats().gets_sent;
  core::Ref<Node>* cursor = &*ref;
  int count = 0;
  while (!cursor->IsEmpty()) {
    (*cursor)->Touch();
    cursor = &cursor->get()->next;
    ++count;
  }
  EXPECT_EQ(count, 40);
  EXPECT_EQ(demander.stats().gets_sent, gets_before);
}

TEST(BackgroundPrefetcher, MultipleGraphsAndShutdown) {
  net::LoopbackNetwork network;
  core::Site provider(1, network.CreateEndpoint("p"));
  core::Site demander(2, network.CreateEndpoint("d"));
  ASSERT_TRUE(provider.Start().ok());
  ASSERT_TRUE(demander.Start().ok());
  provider.HostRegistry();
  demander.UseRegistry("p");

  std::vector<core::Ref<Node>> refs;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        provider.Bind("g" + std::to_string(i), test::MakeChain(10, 16, "g")).ok());
    auto remote = demander.Lookup<Node>("g" + std::to_string(i));
    ASSERT_TRUE(remote.ok());
    refs.push_back(*remote->Replicate(ReplicationMode::Incremental(1)));
  }

  core::BackgroundPrefetcher prefetcher(demander);
  for (auto& ref : refs) prefetcher.Prefetch(ref);
  prefetcher.Drain();
  EXPECT_EQ(prefetcher.graphs_prefetched(), 5u);
  EXPECT_EQ(demander.replica_count(), 50u);
  prefetcher.Stop();
  prefetcher.Stop();  // idempotent
}

TEST(BackgroundPrefetcher, DisconnectionIsBestEffort) {
  net::LoopbackNetwork network;
  core::Site provider(1, network.CreateEndpoint("p"));
  core::Site demander(2, network.CreateEndpoint("d"));
  ASSERT_TRUE(provider.Start().ok());
  ASSERT_TRUE(demander.Start().ok());
  provider.HostRegistry();
  demander.UseRegistry("p");
  ASSERT_TRUE(provider.Bind("list", test::MakeChain(6, 16, "n")).ok());
  auto remote = demander.Lookup<Node>("list");
  ASSERT_TRUE(remote.ok());
  auto ref = remote->Replicate(ReplicationMode::Incremental(2));
  ASSERT_TRUE(ref.ok());

  provider.Stop();  // the link dies before the prefetcher runs
  core::BackgroundPrefetcher prefetcher(demander);
  prefetcher.Prefetch(*ref);
  prefetcher.Drain();  // returns; the failure stayed internal
  EXPECT_EQ(demander.replica_count(), 2u);

  // The application's own fault surfaces the error as usual.
  EXPECT_FALSE((*ref)->next.get()->next.Demand().ok());
}

}  // namespace
}  // namespace obiwan
