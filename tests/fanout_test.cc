// Update fanout, holder lifecycle and reconnect resync.
//
// The provider-side fanout (ServePut / MarkMasterUpdated) must survive the
// paper's normal case — holders that disconnect and reconnect (§2.1) —
// without stalling writers: notifications go out through a bounded parallel
// pool, chronically unreachable holders are dropped (and re-registered on
// their next get), transient failures are retried with backoff, and the
// demander-side ResyncDaemon re-refreshes stale replicas after reconnect.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/fanout.h"
#include "core/resync.h"
#include "obiwan.h"
#include "test_objects.h"

namespace obiwan {
namespace {

using core::FanoutPool;
using core::PushUpdates;
using core::ReplicationMode;
using core::ResyncDaemon;
using test::Node;

// ---------------------------------------------------------------------------
// FanoutPool unit tests
// ---------------------------------------------------------------------------

TEST(FanoutPoolTest, VirtualClockChargesMakespanNotSum) {
  VirtualClock clock;
  FanoutPool pool(clock, /*width=*/8);
  std::vector<FanoutPool::Task> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([&clock] {
      clock.Sleep(10 * kMilli);
      return Status::Ok();
    });
  }
  const Nanos start = clock.Now();
  auto statuses = pool.RunAll(std::move(tasks));
  EXPECT_EQ(clock.Now() - start, 10 * kMilli);  // 8 concurrent, not 80 ms
  ASSERT_EQ(statuses.size(), 8u);
  for (const Status& s : statuses) EXPECT_TRUE(s.ok());
}

TEST(FanoutPoolTest, BoundedWidthQueuesExcessTasks) {
  VirtualClock clock;
  FanoutPool pool(clock, /*width=*/2);
  std::vector<FanoutPool::Task> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([&clock] {
      clock.Sleep(10 * kMilli);
      return Status::Ok();
    });
  }
  const Nanos start = clock.Now();
  pool.RunAll(std::move(tasks));
  // 8 tasks of 10 ms over 2 virtual workers: 4 rounds.
  EXPECT_EQ(clock.Now() - start, 40 * kMilli);
}

TEST(FanoutPoolTest, StatusesKeepTaskOrder) {
  VirtualClock clock;
  FanoutPool pool(clock, /*width=*/4);
  std::vector<FanoutPool::Task> tasks;
  for (int i = 0; i < 6; ++i) {
    tasks.push_back([i] {
      return i % 2 == 0 ? Status::Ok() : TimeoutError("task " + std::to_string(i));
    });
  }
  auto statuses = pool.RunAll(std::move(tasks));
  ASSERT_EQ(statuses.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(statuses[i].ok(), i % 2 == 0) << i;
  }
}

TEST(FanoutPoolTest, RealClockRunsTasksOnBoundedThreads) {
  FanoutPool pool(SystemClock::Instance(), /*width=*/4);
  std::atomic<int> ran{0};
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  std::vector<FanoutPool::Task> tasks;
  for (int i = 0; i < 32; ++i) {
    tasks.push_back([&] {
      const int now = in_flight.fetch_add(1) + 1;
      int seen = max_in_flight.load();
      while (now > seen && !max_in_flight.compare_exchange_weak(seen, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      in_flight.fetch_sub(1);
      ran.fetch_add(1);
      return Status::Ok();
    });
  }
  auto statuses = pool.RunAll(std::move(tasks));
  EXPECT_EQ(ran.load(), 32);
  EXPECT_LE(max_in_flight.load(), 4);
  for (const Status& s : statuses) EXPECT_TRUE(s.ok());
}

// ---------------------------------------------------------------------------
// Simulated-network scenarios
// ---------------------------------------------------------------------------

// Provider "hub" plus a writer and N holder devices on the paper's LAN.
class FanoutSimTest : public ::testing::Test {
 protected:
  void AddSite(const std::string& name, SiteId id) {
    auto site = std::make_unique<core::Site>(
        id, network_->CreateEndpoint(name), clock_);
    ASSERT_TRUE(site->Start().ok());
    site->UseRegistry("hub");
    sites_.emplace(name, std::move(site));
  }

  void SetUp() override {
    network_ = std::make_unique<net::SimNetwork>(clock_, net::kPaperLan);
    hub_ = std::make_unique<core::Site>(1, network_->CreateEndpoint("hub"),
                                        clock_);
    ASSERT_TRUE(hub_->Start().ok());
    hub_->HostRegistry();
  }

  core::Site& site(const std::string& name) { return *sites_.at(name); }

  // Replicate `name`'s binding on the given site and return the Ref.
  core::Ref<Node> Replicate(const std::string& site_name,
                            const std::string& binding, std::uint32_t count = 1) {
    auto remote = site(site_name).Lookup<Node>(binding);
    EXPECT_TRUE(remote.ok()) << remote.status();
    auto ref = remote->Replicate(ReplicationMode::Incremental(count));
    EXPECT_TRUE(ref.ok()) << ref.status();
    return *ref;
  }

  VirtualClock clock_;
  std::unique_ptr<net::SimNetwork> network_;
  std::unique_ptr<core::Site> hub_;
  std::map<std::string, std::unique_ptr<core::Site>> sites_;
};

// The tentpole latency claim: with several of 8 holders unreachable, a put
// completes within ~one notification deadline — not one per dead holder.
TEST_F(FanoutSimTest, PutLatencyBoundedByOneDeadlineUnderPartialDisconnection) {
  hub_->SetConsistencyPolicy(std::make_unique<PushUpdates>());
  hub_->SetRequestDeadline(1 * kSecond);
  // Isolate the latency claim from the lifecycle machinery: never drop
  // holders, never queue retries.
  hub_->SetHolderFailureThreshold(0);
  hub_->SetNotifyRetryPolicy({.max_attempts = 1});

  auto obj = std::make_shared<Node>();
  obj->payload.resize(64);
  ASSERT_TRUE(hub_->Bind("obj", obj).ok());

  AddSite("writer", 2);
  for (int i = 0; i < 8; ++i) AddSite("h" + std::to_string(i), 10 + i);

  auto writer_ref = Replicate("writer", "obj");
  std::vector<core::Ref<Node>> holder_refs;
  for (int i = 0; i < 8; ++i) {
    holder_refs.push_back(Replicate("h" + std::to_string(i), "obj"));
  }

  // Three holders fall into a black hole: the link stays up but nothing
  // arrives within the notification deadline.
  for (int i = 0; i < 3; ++i) {
    network_->SetLinkParams("hub", "h" + std::to_string(i),
                            net::LinkParams{.latency = 10 * kSecond});
  }

  writer_ref.get()->SetValue(42);
  Nanos start = clock_.Now();
  ASSERT_TRUE(site("writer").Put(writer_ref).ok());
  const Nanos parallel_elapsed = clock_.Now() - start;
  // 3 concurrent timeouts of 1 s + 5 fast notifications ≈ one deadline.
  EXPECT_GE(parallel_elapsed, 1 * kSecond);
  EXPECT_LT(parallel_elapsed, 3 * kSecond / 2) << "fanout did not parallelize";

  // Control: the sequential behaviour this PR replaces pays one deadline
  // *per* dead holder.
  hub_->SetNotifyFanout(1);
  writer_ref.get()->SetValue(43);
  start = clock_.Now();
  ASSERT_TRUE(site("writer").Put(writer_ref).ok());
  const Nanos sequential_elapsed = clock_.Now() - start;
  EXPECT_GE(sequential_elapsed, 29 * kSecond / 10);

  // Live holders converged despite the black holes.
  EXPECT_EQ(*site("h5").ReplicaVersion(holder_refs[5]), 3u);
}

TEST_F(FanoutSimTest, HolderDroppedAfterThresholdAndReRegisteredOnGet) {
  hub_->SetConsistencyPolicy(std::make_unique<PushUpdates>());
  auto obj = std::make_shared<Node>();
  ASSERT_TRUE(hub_->Bind("obj", obj).ok());
  const ObjectId oid = hub_->Export(obj);

  AddSite("h1", 2);
  AddSite("h2", 3);
  auto ref1 = Replicate("h1", "obj");
  auto ref2 = Replicate("h2", "obj");

  network_->SetEndpointUp("h2", false);

  // Default threshold is 3 consecutive failures.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(hub_->MarkMasterUpdated(oid).ok());
  }
  EXPECT_EQ(hub_->stats().holders_dropped, 1u);
  EXPECT_EQ(hub_->pending_notify_retries(), 0u)  // purged with the holder
      << "dropped holder left retries behind";

  // Updates no longer pay for the dead holder: exactly one notification
  // (to h1) per update.
  const std::uint64_t sent_before = hub_->stats().invalidations_sent;
  ASSERT_TRUE(hub_->MarkMasterUpdated(oid).ok());
  EXPECT_EQ(hub_->stats().invalidations_sent - sent_before, 1u);

  // The device comes back and re-syncs: its next get re-registers it.
  network_->SetEndpointUp("h2", true);
  ASSERT_TRUE(site("h2").Refresh(ref2).ok());
  ASSERT_TRUE(hub_->MarkMasterUpdated(oid).ok());
  EXPECT_EQ(*site("h2").ReplicaVersion(ref2), *hub_->MasterVersion(oid));
  EXPECT_EQ(*site("h1").ReplicaVersion(ref1), *hub_->MasterVersion(oid));
  EXPECT_EQ(hub_->stats().holders_dropped, 1u);
}

TEST_F(FanoutSimTest, QueuedNotificationRetriesDeliverAfterReconnect) {
  hub_->SetConsistencyPolicy(std::make_unique<consistency::WriteInvalidate>());
  auto obj = std::make_shared<Node>();
  ASSERT_TRUE(hub_->Bind("obj", obj).ok());

  AddSite("laptop", 2);
  AddSite("pda", 3);
  auto laptop_ref = Replicate("laptop", "obj");
  auto pda_ref = Replicate("pda", "obj");

  network_->SetEndpointUp("pda", false);
  laptop_ref.get()->SetValue(7);
  ASSERT_TRUE(site("laptop").Put(laptop_ref).ok());

  // The invalidation to the disconnected pda failed and was queued.
  EXPECT_EQ(hub_->pending_notify_retries(), 1u);
  EXPECT_FALSE(site("pda").IsStale(pda_ref));  // it never heard

  network_->SetEndpointUp("pda", true);
  clock_.Sleep(200 * kMilli);  // past the initial retry backoff
  EXPECT_EQ(hub_->PumpNotifyRetries(), 1u);
  EXPECT_TRUE(site("pda").IsStale(pda_ref));
  EXPECT_GE(hub_->stats().notify_retries, 1u);
  EXPECT_EQ(hub_->pending_notify_retries(), 0u);
}

TEST_F(FanoutSimTest, ResyncDaemonConvergesStaleReplicaOnLinkUp) {
  hub_->SetConsistencyPolicy(std::make_unique<consistency::WriteInvalidate>());
  auto obj = std::make_shared<Node>();
  ASSERT_TRUE(hub_->Bind("obj", obj).ok());

  AddSite("laptop", 2);
  AddSite("pda", 3);
  auto laptop_ref = Replicate("laptop", "obj");
  auto pda_ref = Replicate("pda", "obj");

  ResyncDaemon daemon(site("pda"));

  // The pda hears the invalidation, but the provider goes unreachable
  // before it can refresh.
  laptop_ref.get()->SetValue(1);
  ASSERT_TRUE(site("laptop").Put(laptop_ref).ok());
  EXPECT_TRUE(site("pda").IsStale(pda_ref));
  EXPECT_EQ(daemon.pending(), 1u);

  network_->SetLinkUp("hub", "pda", false);
  EXPECT_EQ(daemon.PumpOnce(), 0u);  // refresh failed; backoff scheduled
  EXPECT_EQ(daemon.pending(), 1u);
  EXPECT_EQ(daemon.PumpOnce(), 0u);  // still inside the backoff window

  // Link restored: the next pump inside the backoff window does nothing,
  // then the deadline passes and the daemon converges the replica.
  network_->SetLinkUp("hub", "pda", true);
  clock_.Sleep(600 * kMilli);
  EXPECT_EQ(daemon.PumpOnce(), 1u);
  EXPECT_FALSE(site("pda").IsStale(pda_ref));
  EXPECT_EQ(*site("pda").ReplicaVersion(pda_ref), *hub_->MasterVersion(hub_->Export(obj)));
  EXPECT_EQ(daemon.pending(), 0u);
  EXPECT_EQ(daemon.refreshed_total(), 1u);
}

TEST_F(FanoutSimTest, ResyncDaemonPicksUpPreexistingStaleSet) {
  hub_->SetConsistencyPolicy(std::make_unique<consistency::WriteInvalidate>());
  auto obj = std::make_shared<Node>();
  ASSERT_TRUE(hub_->Bind("obj", obj).ok());

  AddSite("laptop", 2);
  AddSite("pda", 3);
  auto laptop_ref = Replicate("laptop", "obj");
  auto pda_ref = Replicate("pda", "obj");

  // Stale before any daemon exists (e.g. restored from a snapshot).
  laptop_ref.get()->SetValue(5);
  ASSERT_TRUE(site("laptop").Put(laptop_ref).ok());
  ASSERT_TRUE(site("pda").IsStale(pda_ref));

  ResyncDaemon daemon(site("pda"));
  EXPECT_EQ(daemon.PumpOnce(), 1u);  // merged from Site::StaleReplicaIds
  EXPECT_FALSE(site("pda").IsStale(pda_ref));
}

// ---------------------------------------------------------------------------
// Satellite bugfix regressions
// ---------------------------------------------------------------------------

// 1. ServeRelease: releasing the last pin for an object must also remove
// the demander from the master's holders list — released sites must not
// receive (or stall puts with) notifications forever.
TEST_F(FanoutSimTest, ReleaseRemovesHolderRegistration) {
  hub_->SetConsistencyPolicy(std::make_unique<PushUpdates>());
  auto obj = std::make_shared<Node>();
  ASSERT_TRUE(hub_->Bind("obj", obj).ok());
  const ObjectId oid = hub_->Export(obj);

  AddSite("pda", 2);
  auto ref = Replicate("pda", "obj");
  auto provider = site("pda").ReplicaProvider(oid);
  ASSERT_TRUE(provider.ok());
  ASSERT_TRUE(site("pda").ReleaseProxy(*provider).ok());

  // The released (and now unreachable) demander costs the writer nothing.
  network_->SetEndpointUp("pda", false);
  const std::uint64_t sent_before = hub_->stats().invalidations_sent;
  const Nanos start = clock_.Now();
  ASSERT_TRUE(hub_->MarkMasterUpdated(oid).ok());
  EXPECT_EQ(clock_.Now() - start, 0);  // no notification attempted
  EXPECT_EQ(hub_->stats().invalidations_sent, sent_before);

  auto report = hub_->Inspect();
  for (const auto& row : report.objects) {
    if (row.id == oid) {
      EXPECT_EQ(row.holders, 0u);
    }
  }
}

// A release through a *shared* pin only unregisters the releasing site.
TEST_F(FanoutSimTest, SharedPinReleaseKeepsOtherHolders) {
  hub_->SetConsistencyPolicy(std::make_unique<PushUpdates>());
  auto obj = std::make_shared<Node>();
  ASSERT_TRUE(hub_->Bind("obj", obj).ok());
  const ObjectId oid = hub_->Export(obj);

  AddSite("h1", 2);
  AddSite("h2", 3);
  auto ref1 = Replicate("h1", "obj");
  auto ref2 = Replicate("h2", "obj");

  // Both demanders share the per-target pin; h1's release must not tear it
  // down under h2.
  auto provider = site("h1").ReplicaProvider(oid);
  ASSERT_TRUE(provider.ok());
  ASSERT_TRUE(site("h1").ReleaseProxy(*provider).ok());

  ASSERT_TRUE(hub_->MarkMasterUpdated(oid).ok());
  EXPECT_EQ(*site("h2").ReplicaVersion(ref2), *hub_->MasterVersion(oid));
  ASSERT_TRUE(site("h2").Refresh(ref2).ok());  // the pin still serves
}

// 2. BuildPushRecord: repeated pushes must reuse boundary pins and build
// the record once per fanout — provider pin tables must not grow.
TEST_F(FanoutSimTest, RepeatedPushesKeepPinTableStable) {
  hub_->SetConsistencyPolicy(std::make_unique<PushUpdates>());
  auto chain = test::MakeChain(2, 64, "n");  // A -> B: the record carries a
  ASSERT_TRUE(hub_->Bind("chain", chain).ok());  // boundary pin for B
  const ObjectId oid = hub_->Export(chain);

  AddSite("h1", 2);
  AddSite("h2", 3);
  Replicate("h1", "chain");
  Replicate("h2", "chain");

  ASSERT_TRUE(hub_->MarkMasterUpdated(oid).ok());
  const std::size_t pins_after_first = hub_->proxy_in_count();
  const std::uint64_t created_after_first = hub_->stats().proxy_ins_created;
  for (int i = 0; i < 9; ++i) ASSERT_TRUE(hub_->MarkMasterUpdated(oid).ok());
  EXPECT_EQ(hub_->proxy_in_count(), pins_after_first);
  EXPECT_EQ(hub_->stats().proxy_ins_created, created_after_first);
}

// 3. (PR 8) Retry backoff must carry forward across requeues. The old code
// re-derived the exponential schedule from the policy's initial_backoff on
// every requeue — O(attempts) per failure, and a SetNotifyRetryPolicy call
// mid-flight silently rewrote the schedule of already-queued notifications.
// Now the queued entry carries its own backoff and just doubles it.
TEST_F(FanoutSimTest, RetryBackoffCarriesForwardAcrossPolicyMutation) {
  hub_->SetConsistencyPolicy(std::make_unique<consistency::WriteInvalidate>());
  hub_->SetHolderFailureThreshold(0);  // isolate the schedule from drops
  hub_->SetNotifyRetryPolicy({.initial_backoff = 100 * kMilli,
                              .max_backoff = 10 * kSecond,
                              .max_attempts = 8});
  auto obj = std::make_shared<Node>();
  ASSERT_TRUE(hub_->Bind("obj", obj).ok());

  AddSite("laptop", 2);
  AddSite("pda", 3);
  auto laptop_ref = Replicate("laptop", "obj");
  auto pda_ref = Replicate("pda", "obj");

  // First failure: queued with the 100 ms initial backoff.
  network_->SetEndpointUp("pda", false);
  laptop_ref.get()->SetValue(7);
  ASSERT_TRUE(site("laptop").Put(laptop_ref).ok());
  ASSERT_EQ(hub_->pending_notify_retries(), 1u);

  // Shrink the policy while the notification is in flight. The queued
  // entry's schedule must not be affected: its next backoff is
  // 2 × 100 ms, not the new initial.
  hub_->SetNotifyRetryPolicy({.initial_backoff = 1 * kMilli,
                              .max_backoff = 10 * kSecond,
                              .max_attempts = 8});

  clock_.Sleep(110 * kMilli);
  EXPECT_EQ(hub_->PumpNotifyRetries(), 1u);  // second failure, requeued
  ASSERT_EQ(hub_->pending_notify_retries(), 1u);

  // 50 ms < the carried-forward 200 ms: nothing is due. The old
  // re-derivation made this entry due after 2 x the *new* 1 ms initial.
  clock_.Sleep(50 * kMilli);
  EXPECT_EQ(hub_->PumpNotifyRetries(), 0u)
      << "requeue re-derived its backoff from the mutated policy";

  // Past 200 ms the retry goes out and (pda back up) delivers.
  network_->SetEndpointUp("pda", true);
  clock_.Sleep(160 * kMilli);
  EXPECT_EQ(hub_->PumpNotifyRetries(), 1u);
  EXPECT_TRUE(site("pda").IsStale(pda_ref));
  EXPECT_EQ(hub_->pending_notify_retries(), 0u);
}

// A retried (frozen) push from an old version must never regress a replica
// that has since seen newer state.
TEST_F(FanoutSimTest, StalePushIsIgnored) {
  hub_->SetConsistencyPolicy(std::make_unique<PushUpdates>());
  auto obj = std::make_shared<Node>();
  ASSERT_TRUE(hub_->Bind("obj", obj).ok());
  const ObjectId oid = hub_->Export(obj);

  AddSite("h1", 2);
  AddSite("h2", 3);
  Replicate("h1", "obj");
  auto ref2 = Replicate("h2", "obj");

  // v2's push to h2 fails and is queued with the v2 record frozen inside.
  network_->SetEndpointUp("h2", false);
  obj->value = 2;
  ASSERT_TRUE(hub_->MarkMasterUpdated(oid).ok());
  ASSERT_EQ(hub_->pending_notify_retries(), 1u);

  // h2 reconnects and receives v3 live.
  network_->SetEndpointUp("h2", true);
  obj->value = 3;
  ASSERT_TRUE(hub_->MarkMasterUpdated(oid).ok());
  ASSERT_EQ(*site("h2").ReplicaVersion(ref2), 3u);
  ASSERT_EQ(ref2.get()->value, 3);

  // The frozen v2 retry finally goes out — and must be a no-op at h2.
  clock_.Sleep(200 * kMilli);
  EXPECT_EQ(hub_->PumpNotifyRetries(), 1u);
  EXPECT_EQ(*site("h2").ReplicaVersion(ref2), 3u);
  EXPECT_EQ(ref2.get()->value, 3);
}

// ---------------------------------------------------------------------------
// Real-socket soak (runs under TSan in tools/ci.sh)
// ---------------------------------------------------------------------------

// Concurrent writers against one provider: puts race, each put's fanout
// dispatches pushes on the bounded thread pool, and every holder converges.
TEST(FanoutTcp, ConcurrentPutsFanOutToAllHolders) {
  auto provider_transport = net::TcpTransport::Create(0);
  ASSERT_TRUE(provider_transport.ok());
  core::Site provider(1, std::move(*provider_transport));
  ASSERT_TRUE(provider.Start().ok());
  provider.HostRegistry();
  provider.SetConsistencyPolicy(std::make_unique<PushUpdates>());

  auto obj = std::make_shared<Node>();
  ASSERT_TRUE(provider.Bind("obj", obj).ok());
  const ObjectId oid = provider.Export(obj);

  constexpr int kDemanders = 3;
  constexpr int kPutsPerWriter = 8;
  std::vector<std::unique_ptr<core::Site>> demanders;
  std::vector<core::Ref<Node>> refs;
  for (int i = 0; i < kDemanders; ++i) {
    auto transport = net::TcpTransport::Create(0);
    ASSERT_TRUE(transport.ok());
    auto site = std::make_unique<core::Site>(10 + i, std::move(*transport));
    ASSERT_TRUE(site->Start().ok());
    site->UseRegistry(provider.address());
    auto remote = site->Lookup<Node>("obj");
    ASSERT_TRUE(remote.ok()) << remote.status();
    auto ref = remote->Replicate(ReplicationMode::Incremental(1));
    ASSERT_TRUE(ref.ok()) << ref.status();
    refs.push_back(*ref);
    demanders.push_back(std::move(site));
  }

  std::atomic<int> failures{0};
  auto writer = [&](int idx) {
    for (int i = 0; i < kPutsPerWriter; ++i) {
      // The other writer's puts fan back out as pushes into this replica, so
      // local mutation must synchronize with push application.
      demanders[idx]->WithSiteLock(
          [&] { refs[idx].get()->value = idx * 100 + i; });
      if (!demanders[idx]->Put(refs[idx]).ok()) failures.fetch_add(1);
    }
  };
  std::thread w0(writer, 0), w1(writer, 1);
  w0.join();
  w1.join();

  EXPECT_EQ(failures.load(), 0);
  auto version = provider.MasterVersion(oid);
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 1u + 2 * kPutsPerWriter);
  // The non-writing holder was pushed every accepted update.
  auto v2 = demanders[2]->ReplicaVersion(refs[2]);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, *version);

  for (auto& site : demanders) site->Stop();
  provider.Stop();
}

// 2. (PR 8) Dropping an unreachable holder must be atomic with respect to
// re-registration. The old code decided to drop inside the failure loop and
// erased health before sweeping the holders lists; a get that re-registered
// the holder in between was silently wiped, leaving a live demander that
// never heard another update. Now the drop re-checks the failure count
// under the world guard + site mutex and aborts if a get healed the holder
// meanwhile. Threshold 1 + a request deadline that is already expired makes
// every notification fail, so drops race the re-registration loop as hard
// as possible; TSan (tools/ci.sh) checks the locking, the final sequence
// checks the holder is functional after a real drop.
TEST(FanoutTcp, DropRacesReRegistrationWithoutWipingLiveHolder) {
  auto provider_transport = net::TcpTransport::Create(0);
  ASSERT_TRUE(provider_transport.ok());
  core::Site provider(1, std::move(*provider_transport));
  ASSERT_TRUE(provider.Start().ok());
  provider.HostRegistry();
  provider.SetConsistencyPolicy(
      std::make_unique<consistency::WriteInvalidate>());
  provider.SetHolderFailureThreshold(1);  // any failure is a drop decision

  auto obj = std::make_shared<Node>();
  ASSERT_TRUE(provider.Bind("obj", obj).ok());
  const ObjectId oid = provider.Export(obj);

  auto demander_transport = net::TcpTransport::Create(0);
  ASSERT_TRUE(demander_transport.ok());
  core::Site demander(2, std::move(*demander_transport));
  ASSERT_TRUE(demander.Start().ok());
  demander.UseRegistry(provider.address());
  auto remote = demander.Lookup<Node>("obj");
  ASSERT_TRUE(remote.ok()) << remote.status();
  auto ref = remote->Replicate(ReplicationMode::Incremental(1));
  ASSERT_TRUE(ref.ok()) << ref.status();

  // An already-expired outgoing deadline makes every notification from the
  // provider fail before it touches the wire.
  provider.SetRequestDeadline(1);

  std::thread dropper([&] {
    for (int i = 0; i < 24; ++i) {
      (void)provider.MarkMasterUpdated(oid);  // fail -> drop decision
    }
  });
  std::thread registrar([&] {
    for (int i = 0; i < 24; ++i) {
      (void)demander.Refresh(*ref);  // get -> re-register + heal
    }
  });
  dropper.join();
  registrar.join();

  EXPECT_GE(provider.stats().holders_dropped, 1u);
  EXPECT_EQ(provider.pending_notify_retries(), 0u)
      << "drop left retries behind";

  // Back to a sane deadline: one refresh re-registers, and the next update
  // must actually reach the holder — a drop that swept a re-registered
  // holder's rows would leave this invalidation undelivered.
  provider.SetRequestDeadline(0);
  ASSERT_TRUE(demander.Refresh(*ref).ok());
  ASSERT_TRUE(provider.MarkMasterUpdated(oid).ok());
  EXPECT_TRUE(demander.IsStale(*ref));
  ASSERT_TRUE(demander.Refresh(*ref).ok());
  EXPECT_EQ(*demander.ReplicaVersion(*ref), *provider.MasterVersion(oid));

  demander.Stop();
  provider.Stop();
}

// The resync daemon's background worker converges a stale replica over real
// sockets, with Start/Stop racing live invalidation traffic.
TEST(FanoutTcp, ResyncDaemonBackgroundWorkerConverges) {
  auto provider_transport = net::TcpTransport::Create(0);
  ASSERT_TRUE(provider_transport.ok());
  core::Site provider(1, std::move(*provider_transport));
  ASSERT_TRUE(provider.Start().ok());
  provider.HostRegistry();
  provider.SetConsistencyPolicy(
      std::make_unique<consistency::WriteInvalidate>());

  auto obj = std::make_shared<Node>();
  ASSERT_TRUE(provider.Bind("obj", obj).ok());
  provider.Export(obj);

  auto demander_transport = net::TcpTransport::Create(0);
  ASSERT_TRUE(demander_transport.ok());
  core::Site demander(2, std::move(*demander_transport));
  ASSERT_TRUE(demander.Start().ok());
  demander.UseRegistry(provider.address());
  auto remote = demander.Lookup<Node>("obj");
  ASSERT_TRUE(remote.ok()) << remote.status();
  auto ref = remote->Replicate(ReplicationMode::Incremental(1));
  ASSERT_TRUE(ref.ok()) << ref.status();

  // Updates go through a writer site's Put so the master's fields are only
  // ever touched under the provider's site mutex — mutating `obj` directly
  // here would race the daemon-triggered ServeGet on the provider's TCP
  // thread.
  auto writer_transport = net::TcpTransport::Create(0);
  ASSERT_TRUE(writer_transport.ok());
  core::Site writer(3, std::move(*writer_transport));
  ASSERT_TRUE(writer.Start().ok());
  writer.UseRegistry(provider.address());
  auto writer_remote = writer.Lookup<Node>("obj");
  ASSERT_TRUE(writer_remote.ok()) << writer_remote.status();
  auto writer_ref = writer_remote->Replicate(ReplicationMode::Incremental(1));
  ASSERT_TRUE(writer_ref.ok()) << writer_ref.status();

  ResyncDaemon daemon(demander,
                      {.initial_backoff = 5 * kMilli,
                       .max_backoff = 100 * kMilli,
                       .poll_interval = 10 * kMilli});
  daemon.Start();

  constexpr int kUpdates = 5;
  for (int i = 1; i <= kUpdates; ++i) {
    writer_ref->get()->value = i;
    ASSERT_TRUE(writer.Put(*writer_ref).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // The daemon should drain the stale set without any application help.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    auto version = demander.ReplicaVersion(*ref);
    if (version.ok() && *version == 1u + kUpdates && !demander.IsStale(*ref)) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  daemon.Stop();

  EXPECT_FALSE(demander.IsStale(*ref));
  auto version = demander.ReplicaVersion(*ref);
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 1u + kUpdates);
  EXPECT_GE(daemon.refreshed_total(), 1u);

  writer.Stop();
  demander.Stop();
  provider.Stop();
}

}  // namespace
}  // namespace obiwan
