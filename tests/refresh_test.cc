// Refresh semantics under master-side change: field updates, topology
// rewires, growth past the replica's frontier, and the interaction with
// local (unsynchronised) edits.
#include <gtest/gtest.h>

#include "obiwan.h"
#include "test_objects.h"

namespace obiwan {
namespace {

using core::ReplicationMode;
using test::Node;

class RefreshTest : public ::testing::Test {
 protected:
  void SetUp() override {
    provider_ = std::make_unique<core::Site>(1, network_.CreateEndpoint("p"));
    demander_ = std::make_unique<core::Site>(2, network_.CreateEndpoint("d"));
    ASSERT_TRUE(provider_->Start().ok());
    ASSERT_TRUE(demander_->Start().ok());
    provider_->HostRegistry();
    demander_->UseRegistry("p");
  }

  core::Ref<Node> Replicate(const std::string& name, ReplicationMode mode) {
    auto remote = demander_->Lookup<Node>(name);
    EXPECT_TRUE(remote.ok());
    auto ref = remote->Replicate(mode);
    EXPECT_TRUE(ref.ok());
    return *ref;
  }

  net::LoopbackNetwork network_;
  std::unique_ptr<core::Site> provider_;
  std::unique_ptr<core::Site> demander_;
};

TEST_F(RefreshTest, OverwritesLocalEdits) {
  auto obj = test::MakeChain(1, 16, "o");
  ASSERT_TRUE(provider_->Bind("obj", obj).ok());
  auto ref = Replicate("obj", ReplicationMode::Incremental(1));

  // Local, never-put edit: refresh is an explicit "discard and resync".
  ref->SetLabel("local-edit");
  ASSERT_TRUE(demander_->Refresh(ref).ok());
  EXPECT_EQ(ref->label, "o0");
}

TEST_F(RefreshTest, MasterRewiredToNewObject) {
  auto head = test::MakeChain(2, 16, "n");
  ASSERT_TRUE(provider_->Bind("list", head).ok());
  auto ref = Replicate("list", ReplicationMode::Incremental(2));
  EXPECT_EQ(ref->next->Label(), "n1");

  // The master grows a brand-new node in front of the old tail.
  auto inserted = std::make_shared<Node>();
  inserted->label = "inserted";
  inserted->next = std::static_pointer_cast<Node>(head->next.local());
  head->next = inserted;

  ASSERT_TRUE(demander_->Refresh(ref).ok());
  // The rewired edge arrives as a proxy (the new object was never
  // replicated); faulting brings it in, and the old tail is reused by
  // identity behind it.
  Node* old_tail = ref->next.get() ? nullptr : nullptr;
  (void)old_tail;
  EXPECT_EQ(ref->next->Label(), "inserted");
  EXPECT_EQ(ref->next->next->Label(), "n1");
  EXPECT_EQ(demander_->replica_count(), 3u);
}

TEST_F(RefreshTest, MasterDroppedAnEdge) {
  auto head = test::MakeChain(3, 16, "n");
  ASSERT_TRUE(provider_->Bind("list", head).ok());
  auto ref = Replicate("list", ReplicationMode::Closure());
  EXPECT_EQ(demander_->replica_count(), 3u);

  head->next.Reset();  // master truncates the list
  ASSERT_TRUE(demander_->Refresh(ref).ok());
  EXPECT_TRUE(ref->next.IsEmpty());
  // The orphaned replicas remain until evicted (identity is preserved, so a
  // later re-attachment at the master finds them again).
  EXPECT_EQ(demander_->replica_count(), 3u);
}

TEST_F(RefreshTest, IncrementalRefreshIsObjectGranular) {
  auto head = test::MakeChain(3, 16, "n");
  ASSERT_TRUE(provider_->Bind("list", head).ok());
  // Incremental: each replica has its own channel, so refresh is per object
  // (§2.2's "refresh replica B'").
  auto ref = Replicate("list", ReplicationMode::Incremental(3));

  ref->next->next->SetLabel("tail-edit");
  head->label = "head-new";
  ASSERT_TRUE(demander_->Refresh(ref).ok());
  EXPECT_EQ(ref->label, "head-new");
  EXPECT_EQ(ref->next->next->label, "tail-edit");  // untouched
}

TEST_F(RefreshTest, ClusterRefreshIsClusterGranular) {
  auto head = test::MakeChain(3, 16, "n");
  ASSERT_TRUE(provider_->Bind("list", head).ok());
  // Cluster-flavoured modes share one channel: refreshing any member
  // re-fetches the whole cluster — local edits to every member are reset.
  auto ref = Replicate("list", ReplicationMode::Closure());

  ref->next->next->SetLabel("tail-edit");
  head->label = "head-new";
  ASSERT_TRUE(demander_->Refresh(ref).ok());
  EXPECT_EQ(ref->label, "head-new");
  EXPECT_EQ(ref->next->next->label, "n2");  // cluster-wide resync
}

TEST_F(RefreshTest, RefreshAfterPutIsIdempotent) {
  auto obj = test::MakeChain(1, 16, "o");
  ASSERT_TRUE(provider_->Bind("obj", obj).ok());
  auto ref = Replicate("obj", ReplicationMode::Incremental(1));

  ref->SetValue(7);
  ASSERT_TRUE(demander_->Put(ref).ok());
  ASSERT_TRUE(demander_->Refresh(ref).ok());
  EXPECT_EQ(ref->Value(), 7);
  auto version = demander_->ReplicaVersion(ref);
  ASSERT_TRUE(version.ok());
  auto master_version = provider_->MasterVersion(ref.id());
  ASSERT_TRUE(master_version.ok());
  EXPECT_EQ(*version, *master_version);
}

TEST_F(RefreshTest, RepeatedRefreshCreatesNoDuplicateState) {
  auto head = test::MakeChain(2, 16, "n");
  ASSERT_TRUE(provider_->Bind("list", head).ok());
  auto ref = Replicate("list", ReplicationMode::Closure());

  const auto replicas = demander_->replica_count();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(demander_->Refresh(ref).ok());
  }
  EXPECT_EQ(demander_->replica_count(), replicas);
  EXPECT_EQ(ref->next->Label(), "n1");
}

TEST_F(RefreshTest, RefreshWhileDisconnectedFailsCleanly) {
  auto obj = test::MakeChain(1, 16, "o");
  ASSERT_TRUE(provider_->Bind("obj", obj).ok());
  auto ref = Replicate("obj", ReplicationMode::Incremental(1));

  ref->SetLabel("offline-edit");
  provider_->Stop();
  EXPECT_FALSE(demander_->Refresh(ref).ok());
  // The failed refresh left the local (edited) state untouched.
  EXPECT_EQ(ref->label, "offline-edit");
  ASSERT_TRUE(provider_->Start().ok());
  ASSERT_TRUE(demander_->Refresh(ref).ok());
  EXPECT_EQ(ref->label, "o0");
}

}  // namespace
}  // namespace obiwan
