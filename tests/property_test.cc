// Property tests: randomized object graphs (including cycles and shared
// subtrees) replicated under every mode, checking the protocol's core
// invariants:
//   1. completeness — after faulting everything, the demander holds exactly
//      the provider's reachable set;
//   2. identity preservation — one replica per master, so shared targets and
//      cycles keep their shape;
//   3. isomorphism — the replica graph's topology equals the master graph's;
//   4. put round-trip — pushing every replica back reproduces master state.
#include <gtest/gtest.h>

#include <deque>
#include <random>
#include <unordered_map>
#include <unordered_set>

#include "obiwan.h"
#include "test_objects.h"

namespace obiwan {
namespace {

using core::ReplicationMode;
using test::Pair;

struct GraphCase {
  std::uint64_t seed;
  int nodes;
  ReplicationMode mode;
};

class GraphPropertyTest : public ::testing::TestWithParam<GraphCase> {};

// Build a random graph: node i may point (left/right) at any node, allowing
// cycles, self-loops, shared targets, and unreachable islands.
std::vector<std::shared_ptr<Pair>> BuildRandomGraph(std::uint64_t seed, int n) {
  std::mt19937_64 rng(seed);
  std::vector<std::shared_ptr<Pair>> nodes;
  nodes.reserve(n);
  for (int i = 0; i < n; ++i) {
    auto node = std::make_shared<Pair>();
    node->name = "g" + std::to_string(i);
    nodes.push_back(std::move(node));
  }
  for (auto& node : nodes) {
    if (rng() % 100 < 70) node->left = nodes[rng() % nodes.size()];
    if (rng() % 100 < 70) node->right = nodes[rng() % nodes.size()];
  }
  return nodes;
}

// The master graph is test-owned and may contain cycles plus unreachable
// islands the provider never sees; unlink it at scope exit so refcounting
// can free it (sites only unlink the objects *they* hold).
struct GraphUnlinker {
  explicit GraphUnlinker(std::vector<std::shared_ptr<Pair>>& nodes)
      : nodes_(nodes) {}
  ~GraphUnlinker() {
    for (auto& node : nodes_) {
      node->left.Reset();
      node->right.Reset();
    }
  }
  std::vector<std::shared_ptr<Pair>>& nodes_;
};

// Names of every node reachable from `root` by local pointers only.
std::unordered_set<std::string> ReachableNames(Pair* root) {
  std::unordered_set<std::string> names;
  std::deque<Pair*> queue{root};
  std::unordered_set<Pair*> seen;
  while (!queue.empty()) {
    Pair* node = queue.front();
    queue.pop_front();
    if (node == nullptr || !seen.insert(node).second) continue;
    names.insert(node->name);
    queue.push_back(node->left.get());
    queue.push_back(node->right.get());
  }
  return names;
}

// Walk master and replica graphs in lockstep, checking isomorphism and
// identity preservation.
void ExpectIsomorphic(Pair* master_root, Pair* replica_root) {
  std::deque<std::pair<Pair*, Pair*>> queue{{master_root, replica_root}};
  std::unordered_map<Pair*, Pair*> mapping;  // master -> replica
  while (!queue.empty()) {
    auto [m, r] = queue.front();
    queue.pop_front();
    ASSERT_EQ(m == nullptr, r == nullptr);
    if (m == nullptr) continue;
    auto [it, inserted] = mapping.emplace(m, r);
    // Identity: one replica per master, always the same object.
    ASSERT_EQ(it->second, r) << "master " << m->name << " has two replicas";
    if (!inserted) continue;
    ASSERT_EQ(m->name, r->name);
    queue.emplace_back(m->left.get(), r->left.get());
    queue.emplace_back(m->right.get(), r->right.get());
  }
}

TEST_P(GraphPropertyTest, ReplicateFaultEverythingCheckInvariants) {
  const GraphCase& param = GetParam();

  net::LoopbackNetwork network;
  core::Site provider(2, network.CreateEndpoint("s2"));
  core::Site demander(1, network.CreateEndpoint("s1"));
  ASSERT_TRUE(provider.Start().ok());
  ASSERT_TRUE(demander.Start().ok());
  provider.HostRegistry();
  demander.UseRegistry("s2");

  auto nodes = BuildRandomGraph(param.seed, param.nodes);
  GraphUnlinker unlinker(nodes);
  ASSERT_TRUE(provider.Bind("root", nodes[0]).ok());

  auto remote = demander.Lookup<Pair>("root");
  ASSERT_TRUE(remote.ok());
  auto ref = remote->Replicate(param.mode);
  ASSERT_TRUE(ref.ok()) << ref.status();

  // Fault in the entire reachable graph.
  ASSERT_TRUE(demander.PrefetchAll(*ref).ok());

  // (1) completeness + (3) isomorphism + (2) identity.
  auto expected = ReachableNames(nodes[0].get());
  auto actual = ReachableNames(ref->get());
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(demander.replica_count(), expected.size());
  ExpectIsomorphic(nodes[0].get(), ref->get());
}

TEST_P(GraphPropertyTest, PutRoundTripReproducesState) {
  const GraphCase& param = GetParam();
  if (param.mode.SharedProxyPair()) {
    GTEST_SKIP() << "per-object put needs incremental mode";
  }

  net::LoopbackNetwork network;
  core::Site provider(2, network.CreateEndpoint("s2"));
  core::Site demander(1, network.CreateEndpoint("s1"));
  ASSERT_TRUE(provider.Start().ok());
  ASSERT_TRUE(demander.Start().ok());
  provider.HostRegistry();
  demander.UseRegistry("s2");

  auto nodes = BuildRandomGraph(param.seed, param.nodes);
  GraphUnlinker unlinker(nodes);
  ASSERT_TRUE(provider.Bind("root", nodes[0]).ok());

  auto remote = demander.Lookup<Pair>("root");
  ASSERT_TRUE(remote.ok());
  auto ref = remote->Replicate(param.mode);
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(demander.PrefetchAll(*ref).ok());

  // Rename every replica, push each back, then check every reachable master.
  std::deque<Pair*> queue{ref->get()};
  std::unordered_set<Pair*> seen;
  while (!queue.empty()) {
    Pair* node = queue.front();
    queue.pop_front();
    if (node == nullptr || !seen.insert(node).second) continue;
    node->name = "edited-" + node->name;
    queue.push_back(node->left.get());
    queue.push_back(node->right.get());
  }
  // Push every replica back, traversing through the actual Ref objects.
  std::deque<core::RefBase*> ref_queue{&*ref};
  std::unordered_set<core::Shareable*> put_done;
  while (!ref_queue.empty()) {
    core::RefBase* rb = ref_queue.front();
    ref_queue.pop_front();
    if (rb->IsEmpty() || !rb->IsLocal()) continue;
    auto* node = static_cast<Pair*>(rb->local_raw());
    if (!put_done.insert(node).second) continue;
    ASSERT_TRUE(demander.Put(*rb).ok());
    ref_queue.push_back(&node->left);
    ref_queue.push_back(&node->right);
  }

  for (const auto& master : nodes) {
    if (ReachableNames(nodes[0].get()).contains(master->name)) {
      EXPECT_EQ(master->name.substr(0, 7), "edited-") << master->name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, GraphPropertyTest,
    ::testing::Values(
        GraphCase{1, 8, ReplicationMode::Incremental(1)},
        GraphCase{2, 20, ReplicationMode::Incremental(3)},
        GraphCase{3, 40, ReplicationMode::Incremental(7)},
        GraphCase{4, 20, ReplicationMode::Cluster(4)},
        GraphCase{5, 40, ReplicationMode::Cluster(16)},
        GraphCase{6, 25, ReplicationMode::Closure()},
        GraphCase{7, 30, ReplicationMode::ClusterDepth(2)},
        GraphCase{8, 12, ReplicationMode::Incremental(2)},
        GraphCase{9, 60, ReplicationMode::Incremental(10)},
        GraphCase{10, 60, ReplicationMode::Closure()}),
    [](const ::testing::TestParamInfo<GraphCase>& info) {
      const GraphCase& c = info.param;
      std::string mode;
      switch (c.mode.kind) {
        case ReplicationMode::Kind::kIncremental:
          mode = "Inc" + std::to_string(c.mode.count);
          break;
        case ReplicationMode::Kind::kCluster:
          mode = "Cluster" + std::to_string(c.mode.count);
          break;
        case ReplicationMode::Kind::kClusterDepth:
          mode = "Depth" + std::to_string(c.mode.depth);
          break;
        case ReplicationMode::Kind::kTransitiveClosure:
          mode = "Closure";
          break;
      }
      return "Seed" + std::to_string(c.seed) + "N" + std::to_string(c.nodes) +
             mode;
    });

}  // namespace
}  // namespace obiwan
