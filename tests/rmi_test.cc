// RMI substrate tests: name server, call dispatch, marshalling of diverse
// signatures, error surfaces.
#include <gtest/gtest.h>

#include "obiwan.h"
#include "test_objects.h"

namespace obiwan {
namespace {

// A class exercising the breadth of marshallable signatures.
class Calculator : public core::Shareable {
 public:
  OBIWAN_SHAREABLE(Calculator)

  double total = 0;
  std::vector<std::string> log;

  double Add(double x) {
    total += x;
    log.push_back("add");
    return total;
  }
  std::string Describe(std::string prefix, std::int32_t precision) const {
    return prefix + ":" + std::to_string(precision) + ":" + std::to_string(total);
  }
  void Reset() {
    total = 0;
    log.clear();
  }
  std::vector<std::string> Log() const { return log; }
  std::map<std::string, std::int64_t> Stats(bool include_total) const {
    std::map<std::string, std::int64_t> m;
    m["ops"] = static_cast<std::int64_t>(log.size());
    if (include_total) m["total"] = static_cast<std::int64_t>(total);
    return m;
  }

  static void ObiwanDefine(core::ClassDef<Calculator>& def) {
    def.Field("total", &Calculator::total)
        .Field("log", &Calculator::log)
        .Method("Add", &Calculator::Add)
        .Method("Describe", &Calculator::Describe)
        .Method("Reset", &Calculator::Reset)
        .Method("Log", &Calculator::Log)
        .Method("Stats", &Calculator::Stats);
  }
};
OBIWAN_REGISTER_CLASS(Calculator);

class RmiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<core::Site>(2, network_.CreateEndpoint("server"));
    client_ = std::make_unique<core::Site>(1, network_.CreateEndpoint("client"));
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_TRUE(client_->Start().ok());
    server_->HostRegistry();
    client_->UseRegistry("server");
  }

  net::LoopbackNetwork network_;
  std::unique_ptr<core::Site> server_;
  std::unique_ptr<core::Site> client_;
};

TEST_F(RmiTest, RegistryBindLookup) {
  auto calc = std::make_shared<Calculator>();
  ASSERT_TRUE(server_->Bind("calc", calc).ok());

  auto remote = client_->Lookup<Calculator>("calc");
  ASSERT_TRUE(remote.ok());
  EXPECT_TRUE(remote->valid());
  EXPECT_EQ(remote->provider(), "server");
  EXPECT_EQ(remote->info().class_name, "Calculator");
}

TEST_F(RmiTest, DuplicateBindRejectedRebindAllowed) {
  auto calc = std::make_shared<Calculator>();
  ASSERT_TRUE(server_->Bind("calc", calc).ok());
  // Binding the *same* record again is idempotent (retried binds after a
  // lost reply must succeed)...
  EXPECT_TRUE(server_->Bind("calc", calc).ok());
  // ...but claiming the name for a different object is refused.
  EXPECT_EQ(server_->Bind("calc", std::make_shared<Calculator>()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(server_->Rebind("calc", std::make_shared<Calculator>()).ok());
}

TEST_F(RmiTest, UnbindAndLookupMiss) {
  auto calc = std::make_shared<Calculator>();
  ASSERT_TRUE(server_->Bind("calc", calc).ok());
  ASSERT_TRUE(server_->Unbind("calc").ok());
  EXPECT_EQ(client_->Lookup<Calculator>("calc").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(server_->Unbind("calc").code(), StatusCode::kNotFound);
}

TEST_F(RmiTest, RegistryList) {
  ASSERT_TRUE(server_->Bind("b", std::make_shared<Calculator>()).ok());
  ASSERT_TRUE(server_->Bind("a", std::make_shared<Calculator>()).ok());
  rmi::RegistryClient registry(client_->transport(), "server");
  auto names = registry.List();
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"a", "b"}));  // sorted by map
}

TEST_F(RmiTest, ClientsCanBindRemotely) {
  // A non-registry site binds its own master into the shared name server.
  auto calc = std::make_shared<Calculator>();
  ASSERT_TRUE(client_->Bind("client-calc", calc).ok());

  auto remote = server_->Lookup<Calculator>("client-calc");
  ASSERT_TRUE(remote.ok());
  EXPECT_EQ(remote->provider(), "client");
  auto r = remote->Invoke(&Calculator::Add, 2.5);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 2.5);
}

TEST_F(RmiTest, TypedInvocationSignatures) {
  auto calc = std::make_shared<Calculator>();
  ASSERT_TRUE(server_->Bind("calc", calc).ok());
  auto remote = client_->Lookup<Calculator>("calc");
  ASSERT_TRUE(remote.ok());

  // double(double)
  auto total = remote->Invoke(&Calculator::Add, 1.5);
  ASSERT_TRUE(total.ok());
  EXPECT_DOUBLE_EQ(*total, 1.5);

  // string(string, int32) const — mixed types, const method.
  auto desc = remote->Invoke(&Calculator::Describe, std::string("acc"), 3);
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ(desc->substr(0, 6), "acc:3:");

  // vector<string>() const
  auto log = remote->Invoke(&Calculator::Log);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(*log, std::vector<std::string>{"add"});

  // map return
  auto stats = remote->Invoke(&Calculator::Stats, true);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->at("ops"), 1);

  // void()
  Status s = remote->Invoke(&Calculator::Reset);
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(calc->total, 0.0);
}

TEST_F(RmiTest, UnregisteredMethodFailsClientSide) {
  auto calc = std::make_shared<Calculator>();
  ASSERT_TRUE(server_->Bind("calc", calc).ok());
  auto remote = client_->Lookup<Calculator>("calc");
  ASSERT_TRUE(remote.ok());

  // ObiwanDefine never registered operator-less helper; use a lambda-free
  // check: Stats registered, but a method pointer that is not — simulate by
  // looking up a name that does not exist via CallRaw.
  auto raw = client_->CallRaw("server", remote->id(), "NoSuchMethod", {});
  EXPECT_EQ(raw.status().code(), StatusCode::kNotFound);
}

TEST_F(RmiTest, CallOnUnknownObject) {
  auto raw = client_->CallRaw("server", ObjectId{2, 424242}, "Add", {});
  EXPECT_EQ(raw.status().code(), StatusCode::kNotFound);
}

TEST_F(RmiTest, MalformedArgumentsRejected) {
  auto calc = std::make_shared<Calculator>();
  ASSERT_TRUE(server_->Bind("calc", calc).ok());
  auto remote = client_->Lookup<Calculator>("calc");
  ASSERT_TRUE(remote.ok());
  // Describe expects (string, int32); send garbage that cannot decode.
  auto raw = client_->CallRaw("server", remote->id(), "Describe", Bytes{0xFF});
  EXPECT_FALSE(raw.ok());
}

TEST_F(RmiTest, LookupWithoutRegistryConfigured) {
  core::Site lonely(9, network_.CreateEndpoint("lonely"));
  ASSERT_TRUE(lonely.Start().ok());
  EXPECT_EQ(lonely.Lookup<Calculator>("x").status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(lonely.Bind("x", std::make_shared<Calculator>()).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(RmiTest, Ping) {
  EXPECT_TRUE(client_->Ping("server").ok());
  EXPECT_FALSE(client_->Ping("nowhere").ok());
}

TEST_F(RmiTest, DispatcherRejectsUnknownKind) {
  // Raw garbage straight to the server endpoint.
  auto reply = client_->transport().Request("server", Bytes{0xEE, 1, 2});
  EXPECT_EQ(reply.status().code(), StatusCode::kDataLoss);
  auto empty = client_->transport().Request("server", Bytes{});
  EXPECT_EQ(empty.status().code(), StatusCode::kDataLoss);
}

TEST_F(RmiTest, DispatcherShedsExpiredDeadlines) {
  const std::uint64_t expired_before =
      MetricsRegistry::Default().SumCounters("obiwan_rmi_expired_total");

  // A ping whose declared remaining budget is zero: the caller has already
  // given up, so the server must refuse it before dispatch.
  wire::Writer body;
  Bytes frame =
      rmi::WrapRequest(rmi::MessageKind::kPing, body, {}, /*deadline_budget=*/0);
  auto reply = client_->transport().Request("server", AsView(frame));
  EXPECT_EQ(reply.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(MetricsRegistry::Default().SumCounters("obiwan_rmi_expired_total"),
            expired_before + 1);

  // A positive budget passes through untouched.
  wire::Writer body2;
  Bytes live = rmi::WrapRequest(rmi::MessageKind::kPing, body2, {}, kSecond);
  EXPECT_TRUE(client_->transport().Request("server", AsView(live)).ok());

  // And the site's own RPCs advertise a budget once a deadline is set.
  client_->SetRequestDeadline(5 * kSecond);
  EXPECT_TRUE(client_->Ping("server").ok());
  client_->SetRequestDeadline(0);
}

TEST_F(RmiTest, ExportIsIdempotent) {
  auto calc = std::make_shared<Calculator>();
  ObjectId first = server_->Export(calc);
  ObjectId second = server_->Export(calc);
  EXPECT_EQ(first, second);
  EXPECT_EQ(server_->master_count(), 1u);
}

TEST_F(RmiTest, ReleaseProxyIn) {
  auto calc = std::make_shared<Calculator>();
  ASSERT_TRUE(server_->Bind("calc", calc).ok());
  auto remote = client_->Lookup<Calculator>("calc");
  ASSERT_TRUE(remote.ok());
  const auto& info = remote->info();
  core::ProxyDescriptor desc{info.pin, info.address, info.id, info.class_name};
  EXPECT_TRUE(client_->ReleaseProxy(desc).ok());
  // Released: demanding through it now fails.
  auto obj = client_->DemandThrough(desc, info.id, core::ReplicationMode::Incremental(),
                                    false, /*shortcut_local=*/false);
  EXPECT_EQ(obj.status().code(), StatusCode::kNotFound);
  // Double release reports not-found.
  EXPECT_EQ(client_->ReleaseProxy(desc).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace obiwan
