// Telemetry integration tests: the correlation id on the wire, the envelope
// trace flag, site counters as baseline views over the metrics registry, and
// the end-to-end criterion — one correlation id spanning both sites of a
// fault-and-replicate flow.
#include <gtest/gtest.h>

#include <string>

#include "common/metrics.h"
#include "common/trace.h"
#include "obiwan.h"
#include "rmi/protocol.h"
#include "test_objects.h"
#include "wire/codec.h"

namespace obiwan {
namespace {

TEST(TraceWire, CodecRoundTrip) {
  TraceId id{7, 123456789};
  wire::Writer w;
  wire::Encode(w, id);
  wire::Reader r(AsView(w.data()));
  TraceId back = wire::Decode<TraceId>(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(back, id);
  EXPECT_TRUE(r.AtEnd());
}

TEST(TraceWire, EnvelopeCarriesTraceHeader) {
  wire::Writer body;
  body.U32(0xDEADBEEF);
  TraceId id{3, 42};
  Bytes framed = rmi::WrapRequest(rmi::MessageKind::kGet, body, id);
  EXPECT_NE(framed[0] & rmi::kTraceFlag, 0);

  auto parsed = rmi::ParseRequest(AsView(framed));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->kind, rmi::MessageKind::kGet);
  EXPECT_EQ(parsed->trace, id);
  wire::Reader r(parsed->body);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_TRUE(r.AtEnd());
}

TEST(TraceWire, UntracedEnvelopeIsUnchanged) {
  // Backwards compatibility: without a trace id the envelope is the plain
  // 1-byte kind — a bare kPing stays a single byte.
  wire::Writer empty;
  Bytes framed = rmi::WrapRequest(rmi::MessageKind::kPing, empty);
  ASSERT_EQ(framed.size(), 1u);
  auto parsed = rmi::ParseRequest(AsView(framed));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->kind, rmi::MessageKind::kPing);
  EXPECT_FALSE(parsed->trace.valid());
  EXPECT_TRUE(parsed->body.empty());
}

TEST(TraceWire, LargeIdsRoundTripThroughEnvelope) {
  wire::Writer empty;
  TraceId id{65535, 0xFFFFFFFFFFFFull};  // multi-byte varints both fields
  Bytes framed = rmi::WrapRequest(rmi::MessageKind::kCall, empty, id);
  auto parsed = rmi::ParseRequest(AsView(framed));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->trace, id);
}

TEST(TraceWire, TruncatedTraceHeaderRejected) {
  Bytes bad = {static_cast<std::uint8_t>(
      static_cast<std::uint8_t>(rmi::MessageKind::kPing) | rmi::kTraceFlag)};
  EXPECT_FALSE(rmi::ParseRequest(AsView(bad)).ok());
}

TEST(TraceWire, FlaggedUnknownKindRejected) {
  Bytes bad = {rmi::kTraceFlag};  // kind bits all zero
  EXPECT_FALSE(rmi::ParseRequest(AsView(bad)).ok());
}

// --- deadline header -------------------------------------------------------------

TEST(DeadlineWire, EnvelopeCarriesDeadlineBudget) {
  wire::Writer body;
  body.U32(0xFEEDFACE);
  Bytes framed =
      rmi::WrapRequest(rmi::MessageKind::kGet, body, {}, 250 * kMilli);
  EXPECT_NE(framed[0] & rmi::kDeadlineFlag, 0);
  EXPECT_EQ(framed[0] & rmi::kTraceFlag, 0);

  auto parsed = rmi::ParseRequest(AsView(framed));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->kind, rmi::MessageKind::kGet);
  EXPECT_EQ(parsed->deadline_budget, 250 * kMilli);
  wire::Reader r(parsed->body);
  EXPECT_EQ(r.U32(), 0xFEEDFACEu);
  EXPECT_TRUE(r.AtEnd());
}

TEST(DeadlineWire, TraceAndDeadlineCompose) {
  wire::Writer body;
  body.U8(9);
  TraceId id{3, 42};
  Bytes framed = rmi::WrapRequest(rmi::MessageKind::kPut, body, id, kSecond);
  auto parsed = rmi::ParseRequest(AsView(framed));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->kind, rmi::MessageKind::kPut);
  EXPECT_EQ(parsed->trace, id);
  EXPECT_EQ(parsed->deadline_budget, kSecond);
  wire::Reader r(parsed->body);
  EXPECT_EQ(r.U8(), 9);
  EXPECT_TRUE(r.AtEnd());
}

TEST(DeadlineWire, AbsentDeadlineParsesAsMinusOne) {
  wire::Writer empty;
  Bytes framed = rmi::WrapRequest(rmi::MessageKind::kPing, empty);
  ASSERT_EQ(framed.size(), 1u);  // wire layout unchanged without the flag
  auto parsed = rmi::ParseRequest(AsView(framed));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->deadline_budget, -1);
}

TEST(DeadlineWire, TruncatedDeadlineHeaderRejected) {
  Bytes bad = {static_cast<std::uint8_t>(
      static_cast<std::uint8_t>(rmi::MessageKind::kPing) | rmi::kDeadlineFlag)};
  EXPECT_FALSE(rmi::ParseRequest(AsView(bad)).ok());
}

// The PR's acceptance criterion: a single LMI fault-and-replicate flow leaves
// the SAME correlation id in both sites' trace snapshots, with each site's
// own tracer — the id demonstrably crossed the wire.
TEST(CrossSiteTrace, OneCorrelationIdSpansBothSites) {
  VirtualClock clock;
  net::SimNetwork network(clock, net::kPaperLan);
  core::Site provider(1, network.CreateEndpoint("p"), clock);
  core::Site demander(2, network.CreateEndpoint("d"), clock);
  ASSERT_TRUE(provider.Start().ok());
  ASSERT_TRUE(demander.Start().ok());
  provider.HostRegistry();
  demander.UseRegistry("p");

  Tracer provider_trace(64);
  Tracer demander_trace(64);
  provider.SetTracer(&provider_trace);
  demander.SetTracer(&demander_trace);

  auto head = test::MakeChain(2, 16, "n");
  ASSERT_TRUE(provider.Bind("list", head).ok());
  auto remote = demander.Lookup<test::Node>("list");
  ASSERT_TRUE(remote.ok());
  auto ref = remote->Replicate(core::ReplicationMode::Incremental(1));
  ASSERT_TRUE(ref.ok());

  // Touching the un-replicated tail faults it in: demander records the fault
  // and sends a get carrying the flow's id; provider serves it.
  (void)(*ref)->next->Label();

  TraceId flow;
  for (const auto& e : demander_trace.Snapshot()) {
    if (e.category == "fault") flow = e.trace;  // newest fault wins
  }
  ASSERT_TRUE(flow.valid());
  EXPECT_EQ(flow.site, 2u);  // allocated at the call origin — the demander

  // The provider recorded work under the very same id.
  auto provider_events = provider_trace.SnapshotTrace(flow);
  ASSERT_FALSE(provider_events.empty());
  bool get_served = false;
  for (const auto& e : provider_events) {
    EXPECT_EQ(e.site, 1u);
    EXPECT_EQ(e.trace, flow);
    if (e.category == "get") get_served = true;
  }
  EXPECT_TRUE(get_served);

  // And the demander's own flow view contains the originating fault.
  auto demander_events = demander_trace.SnapshotTrace(flow);
  bool fault_seen = false;
  for (const auto& e : demander_events) {
    EXPECT_EQ(e.site, 2u);
    if (e.category == "fault") fault_seen = true;
  }
  EXPECT_TRUE(fault_seen);

  provider.SetTracer(nullptr);
  demander.SetTracer(nullptr);
}

// Reintegration flows propagate too: the put a demander sends shows up at the
// provider under the same correlation id.
TEST(CrossSiteTrace, PutFlowSpansBothSites) {
  VirtualClock clock;
  net::SimNetwork network(clock, net::kPaperLan);
  core::Site provider(1, network.CreateEndpoint("p"), clock);
  core::Site demander(2, network.CreateEndpoint("d"), clock);
  ASSERT_TRUE(provider.Start().ok());
  ASSERT_TRUE(demander.Start().ok());
  provider.HostRegistry();
  demander.UseRegistry("p");

  Tracer provider_trace(64);
  provider.SetTracer(&provider_trace);

  auto head = test::MakeChain(1, 16, "n");
  ASSERT_TRUE(provider.Bind("obj", head).ok());
  auto remote = demander.Lookup<test::Node>("obj");
  ASSERT_TRUE(remote.ok());
  auto ref = remote->Replicate(core::ReplicationMode::Incremental(1));
  ASSERT_TRUE(ref.ok());
  (*ref)->SetLabel("edited");
  ASSERT_TRUE(demander.Put(*ref).ok());

  bool traced_put = false;
  for (const auto& e : provider_trace.Snapshot()) {
    if (e.category == "put" && e.trace.valid() && e.trace.site == 2) {
      traced_put = true;
    }
  }
  EXPECT_TRUE(traced_put);
  provider.SetTracer(nullptr);
}

TEST(SiteTelemetry, StatsAreBaselineViewsOverMonotonicCounters) {
  net::LoopbackNetwork network;
  core::Site provider(1, network.CreateEndpoint("p"));
  core::Site demander(2, network.CreateEndpoint("d"));
  ASSERT_TRUE(provider.Start().ok());
  ASSERT_TRUE(demander.Start().ok());
  provider.HostRegistry();
  demander.UseRegistry("p");

  auto head = test::MakeChain(1, 16, "n");
  ASSERT_TRUE(provider.Bind("obj", head).ok());
  auto remote = demander.Lookup<test::Node>("obj");
  ASSERT_TRUE(remote.ok());
  ASSERT_TRUE(remote->Invoke(&test::Node::Value).ok());

  core::SiteStats before = demander.stats();
  EXPECT_GE(before.calls_sent, 1u);
  EXPECT_EQ(provider.stats().calls_served, before.calls_sent);

  // ResetStats() rebaselines the view; the registry counters keep counting.
  demander.ResetStats();
  EXPECT_EQ(demander.stats().calls_sent, 0u);
  ASSERT_TRUE(remote->Invoke(&test::Node::Value).ok());
  EXPECT_EQ(demander.stats().calls_sent, 1u);
  EXPECT_GE(MetricsRegistry::Default().SumCounters("obiwan_site_calls_sent_total"),
            before.calls_sent + 1);
}

TEST(SiteTelemetry, ReplicationBytesAccounted) {
  net::LoopbackNetwork network;
  core::Site provider(1, network.CreateEndpoint("p"));
  core::Site demander(2, network.CreateEndpoint("d"));
  ASSERT_TRUE(provider.Start().ok());
  ASSERT_TRUE(demander.Start().ok());
  provider.HostRegistry();
  demander.UseRegistry("p");

  auto head = test::MakeChain(1, 256, "n");
  ASSERT_TRUE(provider.Bind("obj", head).ok());
  auto remote = demander.Lookup<test::Node>("obj");
  ASSERT_TRUE(remote.ok());
  auto ref = remote->Replicate(core::ReplicationMode::Incremental(1));
  ASSERT_TRUE(ref.ok());
  (*ref)->SetLabel("edited");
  ASSERT_TRUE(demander.Put(*ref).ok());

  core::SiteStats d = demander.stats();
  core::SiteStats p = provider.stats();
  EXPECT_GT(d.replication_bytes_in, 0u);   // the get reply body
  EXPECT_GT(d.replication_bytes_out, 0u);  // the put frame
  EXPECT_GT(p.replication_bytes_out, 0u);  // the get reply it served
  EXPECT_GT(p.replication_bytes_in, 0u);   // the put body it absorbed
}

// Both ends of every replication leg must count the same payload (wire body)
// bytes: sender-side envelope bytes or missing push accounting would make
// cross-site byte totals disagree.
TEST(SiteTelemetry, ReplicationByteAccountingIsSymmetric) {
  net::LoopbackNetwork network;
  core::Site provider(1, network.CreateEndpoint("p"));
  core::Site writer(2, network.CreateEndpoint("w"));
  core::Site holder(3, network.CreateEndpoint("h"));
  ASSERT_TRUE(provider.Start().ok());
  ASSERT_TRUE(writer.Start().ok());
  ASSERT_TRUE(holder.Start().ok());
  provider.HostRegistry();
  writer.UseRegistry("p");
  holder.UseRegistry("p");
  provider.SetConsistencyPolicy(std::make_unique<core::PushUpdates>());

  auto head = test::MakeChain(1, 256, "n");
  ASSERT_TRUE(provider.Bind("obj", head).ok());
  auto writer_remote = writer.Lookup<test::Node>("obj");
  ASSERT_TRUE(writer_remote.ok());
  auto writer_ref = writer_remote->Replicate(core::ReplicationMode::Incremental(1));
  ASSERT_TRUE(writer_ref.ok());
  auto holder_remote = holder.Lookup<test::Node>("obj");
  ASSERT_TRUE(holder_remote.ok());
  auto holder_ref = holder_remote->Replicate(core::ReplicationMode::Incremental(1));
  ASSERT_TRUE(holder_ref.ok());

  const core::SiteStats w0 = writer.stats();
  const core::SiteStats p0 = provider.stats();
  const core::SiteStats h0 = holder.stats();

  (*writer_ref)->SetLabel("edited");
  ASSERT_TRUE(writer.Put(*writer_ref).ok());

  const core::SiteStats w1 = writer.stats();
  const core::SiteStats p1 = provider.stats();
  const core::SiteStats h1 = holder.stats();

  // Put leg: what the writer shipped is what the provider absorbed.
  EXPECT_GT(w1.replication_bytes_out - w0.replication_bytes_out, 0u);
  EXPECT_EQ(w1.replication_bytes_out - w0.replication_bytes_out,
            p1.replication_bytes_in - p0.replication_bytes_in);
  // Push leg: what the provider fanned out is what the holder absorbed.
  EXPECT_GT(p1.replication_bytes_out - p0.replication_bytes_out, 0u);
  EXPECT_EQ(p1.replication_bytes_out - p0.replication_bytes_out,
            h1.replication_bytes_in - h0.replication_bytes_in);
}

TEST(SiteTelemetry, ClientLatencyObservedOnVirtualClock) {
  // On the simulated paper LAN the RPC round trip costs virtual milliseconds;
  // TimedRequest runs on the site clock, so those modelled costs must show up
  // in the latency histogram rather than the (near-zero) real CPU time.
  VirtualClock clock;
  net::SimNetwork network(clock, net::kPaperLan);
  core::Site provider(1, network.CreateEndpoint("p"), clock);
  core::Site demander(2, network.CreateEndpoint("d"), clock);
  ASSERT_TRUE(provider.Start().ok());
  ASSERT_TRUE(demander.Start().ok());
  provider.HostRegistry();
  demander.UseRegistry("p");

  auto head = test::MakeChain(1, 16, "n");
  ASSERT_TRUE(provider.Bind("obj", head).ok());
  auto remote = demander.Lookup<test::Node>("obj");
  ASSERT_TRUE(remote.ok());
  ASSERT_TRUE(remote->Invoke(&test::Node::Value).ok());

  HistogramSummary calls = MetricsRegistry::Default().SummarizeHistograms(
      "obiwan_rmi_client_latency_ns", {{"op", "call"}});
  EXPECT_GE(calls.count, 1u);
  EXPECT_GE(calls.max, kMilli);  // >= 1 ms of modelled network time
}

}  // namespace
}  // namespace obiwan
