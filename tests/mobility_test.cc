// Mobility scenarios on the simulated network: voluntary/involuntary
// disconnection, offline work on replicas, reconnection and reintegration —
// the paper's motivating use case (§1, §6).
#include <gtest/gtest.h>

#include "obiwan.h"
#include "test_objects.h"

namespace obiwan {
namespace {

using core::ReplicationMode;
using test::Node;

class MobilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<net::SimNetwork>(clock_, net::kPaperLan);
    office_ = std::make_unique<core::Site>(1, network_->CreateEndpoint("office"), clock_);
    pda_ = std::make_unique<core::Site>(2, network_->CreateEndpoint("pda"), clock_);
    ASSERT_TRUE(office_->Start().ok());
    ASSERT_TRUE(pda_->Start().ok());
    office_->HostRegistry();
    pda_->UseRegistry("office");
  }

  VirtualClock clock_;
  std::unique_ptr<net::SimNetwork> network_;
  std::unique_ptr<core::Site> office_;
  std::unique_ptr<core::Site> pda_;
};

TEST_F(MobilityTest, WorkOfflineThenReintegrate) {
  auto agenda = test::MakeChain(10, 64, "entry");
  ASSERT_TRUE(office_->Bind("agenda", agenda).ok());

  // Before leaving the office: replicate the whole agenda.
  auto remote = pda_->Lookup<Node>("agenda");
  ASSERT_TRUE(remote.ok());
  auto ref = remote->Replicate(ReplicationMode::Incremental(10));
  ASSERT_TRUE(ref.ok());

  // In the taxi: no network.
  network_->SetEndpointUp("pda", false);

  // Every entry is readable and editable locally.
  core::Ref<Node>* cursor = &*ref;
  int edited = 0;
  while (!cursor->IsEmpty()) {
    (*cursor)->SetValue((*cursor)->Value() + 1000);
    cursor = &cursor->get()->next;
    ++edited;
  }
  EXPECT_EQ(edited, 10);

  // RMI during the disconnection fails with a clear error.
  EXPECT_EQ(remote->Invoke(&Node::Value).status().code(),
            StatusCode::kDisconnected);
  // So does a premature put.
  EXPECT_EQ(pda_->Put(*ref).code(), StatusCode::kDisconnected);

  // Back online: reintegrate every edit.
  network_->SetEndpointUp("pda", true);
  cursor = &*ref;
  while (!cursor->IsEmpty()) {
    ASSERT_TRUE(pda_->Put(*cursor).ok());
    cursor = &cursor->get()->next;
  }
  EXPECT_EQ(agenda->value, 1000);
  EXPECT_EQ(agenda->next.get()->value, 1001);
}

TEST_F(MobilityTest, PartialReplicationFaultsOnlyWhenOnline) {
  auto list = test::MakeChain(6, 64, "n");
  ASSERT_TRUE(office_->Bind("list", list).ok());

  auto remote = pda_->Lookup<Node>("list");
  ASSERT_TRUE(remote.ok());
  auto ref = remote->Replicate(ReplicationMode::Incremental(3));
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(pda_->replica_count(), 3u);

  network_->SetEndpointUp("pda", false);

  // The replicated prefix works; the boundary faults cleanly.
  EXPECT_EQ((*ref)->next->next->Label(), "n2");
  Status fault = (*ref)->next->next->next.Demand();
  EXPECT_EQ(fault.code(), StatusCode::kDisconnected);

  network_->SetEndpointUp("pda", true);
  EXPECT_EQ((*ref)->next->next->next->Label(), "n3");
  EXPECT_EQ(pda_->replica_count(), 6u);
}

TEST_F(MobilityTest, VoluntaryDisconnectionWithPrefetch) {
  auto graph = test::MakeChain(20, 64, "doc");
  ASSERT_TRUE(office_->Bind("doc", graph).ok());

  auto remote = pda_->Lookup<Node>("doc");
  ASSERT_TRUE(remote.ok());
  auto ref = remote->Replicate(ReplicationMode::Incremental(5));
  ASSERT_TRUE(ref.ok());

  // High dollar cost coming up (the paper's voluntary disconnection): pin
  // everything first, then drop the link.
  ASSERT_TRUE(pda_->PrefetchAll(*ref).ok());
  network_->SetEndpointUp("pda", false);

  core::Ref<Node>* cursor = &*ref;
  int visited = 0;
  while (!cursor->IsEmpty()) {
    (*cursor)->Touch();
    cursor = &cursor->get()->next;
    ++visited;
  }
  EXPECT_EQ(visited, 20);
}

TEST_F(MobilityTest, FlakyLinkRetrySucceeds) {
  auto list = test::MakeChain(2, 64, "n");
  ASSERT_TRUE(office_->Bind("list", list).ok());
  auto remote = pda_->Lookup<Node>("list");
  ASSERT_TRUE(remote.ok());
  auto ref = remote->Replicate(ReplicationMode::Incremental(1));
  ASSERT_TRUE(ref.ok());

  // The link flaps while the application traverses.
  network_->SetLinkUp("pda", "office", false);
  EXPECT_FALSE((*ref)->next.Demand().ok());
  EXPECT_FALSE((*ref)->next.Demand().ok());  // still down
  network_->SetLinkUp("pda", "office", true);
  EXPECT_TRUE((*ref)->next.Demand().ok());  // same proxy, later success
  EXPECT_EQ((*ref)->next->Label(), "n1");
}

TEST_F(MobilityTest, SlowWirelessLinkCostModel) {
  // Switch the PDA's link to the wireless profile and verify the replication
  // cost reflects the narrow pipe.
  network_->SetLinkParams("pda", "office", net::kPaperWireless);
  auto list = test::MakeChain(1, 50'000, "big");
  ASSERT_TRUE(office_->Bind("big", list).ok());
  auto remote = pda_->Lookup<Node>("big");
  ASSERT_TRUE(remote.ok());

  Nanos before = clock_.Now();
  auto ref = remote->Replicate(ReplicationMode::Incremental(1));
  ASSERT_TRUE(ref.ok());
  Nanos elapsed = clock_.Now() - before;
  // 50 KB at 50 kbit/s is 8 s of transfer; anything near that confirms the
  // profile is in effect (the LAN would take ~43 ms).
  EXPECT_GT(elapsed, 7 * kSecond);
}

TEST_F(MobilityTest, DisconnectedRegistryLookupFails) {
  network_->SetEndpointUp("pda", false);
  EXPECT_EQ(pda_->Lookup<Node>("anything").status().code(),
            StatusCode::kDisconnected);
}

}  // namespace
}  // namespace obiwan
