// Class registry / ClassDef tests — the obicomp substitute.
#include <gtest/gtest.h>

#include "obiwan.h"
#include "test_objects.h"

namespace obiwan::core {
namespace {

TEST(ClassInfo, DescribesRegisteredClass) {
  const ClassInfo& info = ClassInfoFor<test::Node>();
  EXPECT_EQ(info.name(), "Node");
  EXPECT_EQ(info.fields().size(), 3u);
  EXPECT_EQ(info.refs().size(), 1u);
  EXPECT_EQ(info.methods().size(), 5u);
  EXPECT_EQ(info.fields()[0].name, "label");
  EXPECT_EQ(info.refs()[0].name, "next");
}

TEST(ClassInfo, FactoryCreatesDefaultInstance) {
  auto obj = ClassInfoFor<test::Node>().NewInstance();
  ASSERT_NE(obj, nullptr);
  auto* node = dynamic_cast<test::Node*>(obj.get());
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->value, 0);
  EXPECT_EQ(&obj->obiwan_class(), &ClassInfoFor<test::Node>());
}

TEST(ClassInfo, FieldsRoundTrip) {
  test::Node src;
  src.label = "alpha";
  src.value = -17;
  src.payload = {1, 2, 3};

  wire::Writer w;
  ClassInfoFor<test::Node>().EncodeFields(src, w);

  test::Node dst;
  wire::Reader r(AsView(w.data()));
  ASSERT_TRUE(ClassInfoFor<test::Node>().DecodeFields(dst, r).ok());
  EXPECT_EQ(dst.label, "alpha");
  EXPECT_EQ(dst.value, -17);
  EXPECT_EQ(dst.payload, (Bytes{1, 2, 3}));
}

TEST(ClassInfo, DecodeFieldsRejectsTruncation) {
  test::Node src;
  src.label = "alpha";
  wire::Writer w;
  ClassInfoFor<test::Node>().EncodeFields(src, w);

  test::Node dst;
  wire::Reader r(BytesView(w.data().data(), w.size() / 2));
  EXPECT_FALSE(ClassInfoFor<test::Node>().DecodeFields(dst, r).ok());
}

TEST(ClassInfo, FindMethod) {
  const ClassInfo& info = ClassInfoFor<test::Node>();
  EXPECT_NE(info.FindMethod("Touch"), nullptr);
  EXPECT_EQ(info.FindMethod("Vanish"), nullptr);
}

TEST(ClassInfo, MethodNameOfMemberPointer) {
  const ClassInfo& info = ClassInfoFor<test::Node>();
  auto name = info.MethodNameOf(std::any(&test::Node::Touch));
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(*name, "Touch");

  auto const_name = info.MethodNameOf(std::any(&test::Node::Value));
  ASSERT_TRUE(const_name.ok());
  EXPECT_EQ(*const_name, "Value");

  // Same signature, different method: must not be confused.
  auto label = info.MethodNameOf(std::any(&test::Node::Label));
  ASSERT_TRUE(label.ok());
  EXPECT_EQ(*label, "Label");
}

TEST(ClassInfo, MethodDispatchInvokes) {
  test::Node node;
  node.value = 10;
  const MethodInfo* touch = ClassInfoFor<test::Node>().FindMethod("Touch");
  ASSERT_NE(touch, nullptr);

  wire::Writer args;  // Touch takes no arguments
  wire::Reader r(AsView(args.data()));
  auto ret = touch->dispatch(node, r);
  ASSERT_TRUE(ret.ok());
  EXPECT_EQ(node.value, 11);

  wire::Reader ret_reader(AsView(*ret));
  EXPECT_EQ(wire::Decode<std::int64_t>(ret_reader), 11);
}

TEST(ClassInfo, MethodDispatchRejectsBadArgs) {
  test::Node node;
  const MethodInfo* set = ClassInfoFor<test::Node>().FindMethod("SetValue");
  ASSERT_NE(set, nullptr);
  Bytes garbage{0xFF};  // malformed varint for int64
  wire::Reader r(AsView(garbage));
  EXPECT_FALSE(set->dispatch(node, r).ok());
}

TEST(ClassRegistry, FindByName) {
  auto info = ClassRegistry::Instance().Find("Node");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ((*info)->name(), "Node");
  EXPECT_EQ(ClassRegistry::Instance().Find("Nonexistent").status().code(),
            StatusCode::kNotFound);
}

TEST(Ref, StatesAndBindings) {
  Ref<test::Node> ref;
  EXPECT_TRUE(ref.IsEmpty());
  EXPECT_FALSE(ref);
  EXPECT_EQ(ref.get(), nullptr);

  auto node = std::make_shared<test::Node>();
  ref = node;
  EXPECT_TRUE(ref.IsLocal());
  EXPECT_TRUE(ref);
  EXPECT_EQ(ref.get(), node.get());
  EXPECT_FALSE(ref.id().valid());  // no site has assigned an id yet

  ref.Reset();
  EXPECT_TRUE(ref.IsEmpty());
}

TEST(Ref, DereferencingNullThrows) {
  Ref<test::Node> ref;
  EXPECT_THROW(ref->Touch(), ObjectFaultError);
  EXPECT_EQ(ref.Demand().code(), StatusCode::kFailedPrecondition);
}

TEST(Ref, LocalDemandIsNoOp) {
  Ref<test::Node> ref(std::make_shared<test::Node>());
  EXPECT_TRUE(ref.Demand().ok());
  EXPECT_EQ(ref->Touch(), 1);
}

TEST(Ref, CopySharesTarget) {
  Ref<test::Node> a(std::make_shared<test::Node>());
  Ref<test::Node> b = a;
  b->SetValue(5);
  EXPECT_EQ(a->Value(), 5);
}

}  // namespace
}  // namespace obiwan::core
