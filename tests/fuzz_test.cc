// Robustness fuzzing (deterministic): hostile bytes into every externally
// reachable decoder — the site's request handler, the registry, the snapshot
// loader, and the message codecs. The invariant everywhere: garbage in,
// kDataLoss (or another clean error) out; never a crash, never an OK that
// corrupts state.
#include <gtest/gtest.h>

#include <random>

#include "net/frame.h"
#include "obiwan.h"
#include "test_objects.h"

namespace obiwan {
namespace {

Bytes RandomBytes(std::mt19937_64& rng, std::size_t max_len) {
  std::size_t n = rng() % (max_len + 1);
  Bytes b(n);
  for (auto& byte : b) byte = static_cast<std::uint8_t>(rng());
  return b;
}

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTest, SiteHandlerSurvivesRandomRequests) {
  net::LoopbackNetwork network;
  core::Site site(1, network.CreateEndpoint("victim"));
  core::Site attacker(2, network.CreateEndpoint("attacker"));
  ASSERT_TRUE(site.Start().ok());
  ASSERT_TRUE(attacker.Start().ok());
  site.HostRegistry();
  site.UseRegistry("victim");
  attacker.UseRegistry("victim");

  // Give the victim some state so decoders have tables to hit.
  auto head = test::MakeChain(3, 16, "n");
  ASSERT_TRUE(site.Bind("list", head).ok());

  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 3000; ++i) {
    Bytes request = RandomBytes(rng, 64);
    // Half the time, force a valid message kind so the body decoders get
    // exercised rather than the envelope rejecting everything.
    if (!request.empty() && (rng() & 1) != 0u) {
      request[0] = static_cast<std::uint8_t>(1 + rng() % rmi::kMaxMessageKind);
    }
    (void)attacker.transport().Request("victim", AsView(request));
  }

  // The site is still fully functional afterwards.
  auto remote = attacker.Lookup<test::Node>("list");
  ASSERT_TRUE(remote.ok()) << remote.status();
  auto ref = remote->Replicate(core::ReplicationMode::Closure());
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ((*ref)->next->next->Label(), "n2");
  EXPECT_EQ(head->label, "n0");  // masters unscathed
}

TEST_P(FuzzTest, SnapshotLoaderSurvivesRandomBytes) {
  net::LoopbackNetwork network;
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    core::Site site(1, network.CreateEndpoint("s" + std::to_string(i)));
    Bytes snapshot = RandomBytes(rng, 256);
    Status s = site.LoadSnapshot(AsView(snapshot));
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(site.master_count(), 0u);
  }
}

TEST_P(FuzzTest, SnapshotLoaderSurvivesBitFlips) {
  net::LoopbackNetwork network;
  core::Site origin(1, network.CreateEndpoint("origin"));
  auto head = test::MakeChain(4, 16, "n");
  origin.Export(head);
  auto snapshot = origin.SaveSnapshot();
  ASSERT_TRUE(snapshot.ok());

  std::mt19937_64 rng(GetParam());
  int loaded_ok = 0;
  for (int i = 0; i < 200; ++i) {
    Bytes corrupt = *snapshot;
    // Flip 1-4 random bits.
    int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f) {
      corrupt[rng() % corrupt.size()] ^=
          static_cast<std::uint8_t>(1u << (rng() % 8));
    }
    core::Site site(1, network.CreateEndpoint("bf" + std::to_string(i)));
    Status s = site.LoadSnapshot(AsView(corrupt));
    // A flip in field *content* can load "successfully" with wrong values —
    // that is data, not structure. Structural damage must fail cleanly.
    if (s.ok()) ++loaded_ok;
  }
  // Most flips land in structure (ids, counts, tags) and must be rejected.
  EXPECT_LT(loaded_ok, 150);
}

TEST_P(FuzzTest, MessageDecodersSurviveRandomBytes) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 3000; ++i) {
    Bytes data = RandomBytes(rng, 96);
    {
      wire::Reader r(AsView(data));
      (void)wire::Decode<core::GetRequest>(r);
    }
    {
      wire::Reader r(AsView(data));
      (void)wire::Decode<core::GetReply>(r);
    }
    {
      wire::Reader r(AsView(data));
      (void)wire::Decode<core::PutRequest>(r);
    }
    {
      wire::Reader r(AsView(data));
      (void)wire::Decode<core::ObjectRecord>(r);
    }
    {
      wire::Reader r(AsView(data));
      (void)wire::Decode<rmi::BoundObject>(r);
    }
  }
  SUCCEED();  // reaching here without UB/crash is the assertion
}

TEST_P(FuzzTest, ObicompParserHandlesReplyFrames) {
  // DecodeReplyFrame on random frames (the TCP client's attack surface).
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    Bytes frame = RandomBytes(rng, 64);
    auto decoded = net::DecodeReplyFrame(AsView(frame));
    if (decoded.ok()) {
      // OK frames must start with the ok marker.
      ASSERT_FALSE(frame.empty());
      ASSERT_NE(frame[0], 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Values(0xA1, 0xB2, 0xC3));

}  // namespace
}  // namespace obiwan
