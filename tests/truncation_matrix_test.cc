// Truncation matrix: take a *valid* encoding of every message kind the site
// serves and replay every strict prefix of it. The invariant: each prefix is
// rejected cleanly (or, for a prefix that happens to decode — possible since
// trailing bytes are not always load-bearing — handled without corruption),
// and the site remains fully functional afterwards.
#include <gtest/gtest.h>

#include "obiwan.h"
#include "test_objects.h"

namespace obiwan {
namespace {

using core::ReplicationMode;
using test::Node;

TEST(TruncationMatrix, EveryPrefixOfEveryMessageKind) {
  net::LoopbackNetwork network;
  core::Site site(1, network.CreateEndpoint("victim"));
  core::Site peer(2, network.CreateEndpoint("peer"));
  ASSERT_TRUE(site.Start().ok());
  ASSERT_TRUE(peer.Start().ok());
  site.HostRegistry();
  peer.UseRegistry("victim");

  auto head = test::MakeChain(3, 16, "n");
  ASSERT_TRUE(site.Bind("list", head).ok());
  auto remote = peer.Lookup<Node>("list");
  ASSERT_TRUE(remote.ok());
  const auto& info = remote->info();

  // State-mutating kinds (put/commit/push) target a dedicated object, so the
  // *valid* sanity sends cannot rewire the list's topology.
  auto solo = std::make_shared<Node>();
  solo->label = "solo";
  ASSERT_TRUE(site.Bind("solo", solo).ok());
  auto solo_remote = peer.Lookup<Node>("solo");
  ASSERT_TRUE(solo_remote.ok());
  const auto& solo_info = solo_remote->info();

  // Build one valid request per kind (bodies mirror the client code paths).
  std::vector<std::pair<const char*, Bytes>> requests;

  {  // kCall
    wire::Writer args;
    wire::Encode(args, std::tuple<>());
    requests.emplace_back(
        "call", rmi::EncodeCall({info.id, "Touch", std::move(args).Take()}));
  }
  {  // kGet
    wire::Writer body;
    wire::Encode(body, core::GetRequest{info.pin, info.id,
                                        ReplicationMode::Incremental(2), false});
    requests.emplace_back("get",
                          rmi::WrapRequest(rmi::MessageKind::kGet, body));
  }
  {  // kPut (valid shape: one item for the bound master)
    core::PutItem item;
    item.id = solo_info.id;
    item.base_version = 1;
    wire::Writer fields;
    core::ClassInfoFor<Node>().EncodeFields(*solo, fields);
    item.fields = std::move(fields).Take();
    item.refs = {core::RefEntry::Null()};
    wire::Writer body;
    wire::Encode(body, core::PutRequest{solo_info.pin, {item}, false});
    requests.emplace_back("put",
                          rmi::WrapRequest(rmi::MessageKind::kPut, body));
  }
  {  // kCommit — same body, transactional
    core::PutItem item;
    item.id = solo_info.id;
    item.base_version = 2;  // after the put sanity send above
    item.read_only = true;
    wire::Writer body;
    wire::Encode(body, core::PutRequest{solo_info.pin, {item}, true});
    requests.emplace_back("commit",
                          rmi::WrapRequest(rmi::MessageKind::kCommit, body));
  }
  {  // kInvalidate
    wire::Writer body;
    wire::Encode(body, core::InvalidateRequest{{info.id}});
    requests.emplace_back("invalidate",
                          rmi::WrapRequest(rmi::MessageKind::kInvalidate, body));
  }
  {  // kRelease / kRenew
    wire::Writer body;
    wire::Encode(body, info.pin);
    requests.emplace_back("release",
                          rmi::WrapRequest(rmi::MessageKind::kRelease, body));
    wire::Writer body2;
    wire::Encode(body2, info.pin);
    requests.emplace_back("renew",
                          rmi::WrapRequest(rmi::MessageKind::kRenew, body2));
  }
  {  // kPush
    core::ObjectRecord rec;
    rec.id = solo_info.id;
    rec.class_name = "Node";
    rec.version = 2;
    wire::Writer fields;
    core::ClassInfoFor<Node>().EncodeFields(*solo, fields);
    rec.fields = std::move(fields).Take();
    rec.refs = {core::RefEntry::Null()};
    wire::Writer body;
    wire::Encode(body, rec);
    requests.emplace_back("push",
                          rmi::WrapRequest(rmi::MessageKind::kPush, body));
  }
  {  // kCallBatch
    wire::Writer args;
    wire::Encode(args, std::tuple<>());
    requests.emplace_back(
        "batch", rmi::EncodeCallBatch({{info.id, "Touch", std::move(args).Take()},
                                       {info.id, "Value", {}}}));
  }
  {  // naming plane
    wire::Writer body;
    body.String("list");
    requests.emplace_back("lookup",
                          rmi::WrapRequest(rmi::MessageKind::kLookup, body));
    wire::Writer body2;
    body2.String("other");
    body2.Bool(false);
    wire::Encode(body2, info);
    requests.emplace_back("bind",
                          rmi::WrapRequest(rmi::MessageKind::kBind, body2));
  }

  int prefixes_tested = 0;
  for (const auto& [name, full] : requests) {
    // Sanity: the full request is served without a transport-level error for
    // most kinds. (Skip the complete release — it would legitimately revoke
    // the bind pin the rest of the test relies on.)
    if (std::string_view(name) != "release") {
      (void)peer.transport().Request("victim", AsView(full));
    }

    for (std::size_t cut = 0; cut < full.size(); ++cut) {
      auto reply =
          peer.transport().Request("victim", BytesView(full.data(), cut));
      // Empty prefix and unknown-kind prefixes are kDataLoss; a body prefix
      // must never crash and must report an error unless the prefix happens
      // to be a complete valid message (possible for list-style bodies).
      if (reply.ok()) {
        // Acceptable only when the prefix is itself decodable; spot-check
        // the site still responds afterwards either way.
      }
      ++prefixes_tested;
    }
  }
  EXPECT_GT(prefixes_tested, 120);

  // The gauntlet left the site fully functional.
  auto ref = remote->Replicate(ReplicationMode::Closure());
  ASSERT_TRUE(ref.ok()) << ref.status();
  EXPECT_EQ((*ref)->next->next->Label(), "n2");
  EXPECT_TRUE(peer.Ping("victim").ok());
  auto again = peer.Lookup<Node>("list");
  EXPECT_TRUE(again.ok());
}

}  // namespace
}  // namespace obiwan
