// Business logic for the obicomp-generated Task/TaskBoard classes — the part
// the paper says is all the programmer writes (§3.1).
#include "generated/task.obi.h"

OBIWAN_REGISTER_CLASS(Task);
OBIWAN_REGISTER_CLASS(TaskBoard);

std::string Task::Title() const { return title; }

void Task::Complete() { done = true; }

std::int64_t Task::Escalate(std::int64_t amount) {
  priority += amount;
  return priority;
}

std::vector<std::string> Task::TagsMatching(std::string prefix) const {
  std::vector<std::string> out;
  for (const std::string& tag : tags) {
    if (tag.rfind(prefix, 0) == 0) out.push_back(tag);
  }
  return out;
}

std::string TaskBoard::Owner() const { return owner; }

void TaskBoard::Assign(std::string new_owner) { owner = std::move(new_owner); }
