#include "test_objects.h"

namespace obiwan::test {

OBIWAN_REGISTER_CLASS(Node);
OBIWAN_REGISTER_CLASS(Pair);

std::shared_ptr<Node> MakeChain(int n, std::size_t payload_size,
                                const std::string& prefix) {
  std::shared_ptr<Node> head;
  std::shared_ptr<Node> tail;
  for (int i = 0; i < n; ++i) {
    auto node = std::make_shared<Node>();
    node->label = prefix + std::to_string(i);
    node->value = i;
    node->payload.assign(payload_size, static_cast<std::uint8_t>(i));
    if (tail != nullptr) {
      tail->next = node;
    } else {
      head = node;
    }
    tail = std::move(node);
  }
  return head;
}

}  // namespace obiwan::test
