// LZ compression codec + CompressedTransport + RetryingTransport tests.
#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "net/compressed.h"
#include "net/retry.h"
#include "obiwan.h"
#include "test_objects.h"
#include "wire/compress.h"

namespace obiwan {
namespace {

Bytes RoundTrip(const Bytes& input) {
  Bytes compressed = wire::Compress(AsView(input));
  auto out = wire::Decompress(AsView(compressed));
  EXPECT_TRUE(out.ok()) << out.status();
  return out.ok() ? *out : Bytes{};
}

TEST(Compress, EmptyAndTiny) {
  EXPECT_EQ(RoundTrip({}), Bytes{});
  EXPECT_EQ(RoundTrip({42}), Bytes{42});
  EXPECT_EQ(RoundTrip({1, 2, 3}), (Bytes{1, 2, 3}));
}

TEST(Compress, RepetitiveDataShrinksALot) {
  Bytes input(10'000, 0xAB);
  Bytes compressed = wire::Compress(AsView(input));
  EXPECT_LT(compressed.size(), input.size() / 50);
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(Compress, StructuredDataShrinks) {
  // A realistic replication batch: repeated class names and descriptors.
  wire::Writer w;
  for (int i = 0; i < 200; ++i) {
    w.String("obiwan.test.Node");
    w.Varint(static_cast<std::uint64_t>(i));
    w.String("site-s2:provider");
  }
  Bytes input = std::move(w).Take();
  Bytes compressed = wire::Compress(AsView(input));
  EXPECT_LT(compressed.size(), input.size() / 3);
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(Compress, IncompressibleDataGrowsOnlySlightly) {
  std::mt19937_64 rng(7);
  Bytes input(4096);
  for (auto& b : input) b = static_cast<std::uint8_t>(rng());
  Bytes compressed = wire::Compress(AsView(input));
  EXPECT_LT(compressed.size(), input.size() + input.size() / 64 + 64);
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(Compress, OverlappingMatchesRle) {
  // "abcabcabc..." exercises offset < match length (self-referencing copy).
  Bytes input;
  for (int i = 0; i < 1000; ++i) input.push_back(static_cast<std::uint8_t>('a' + i % 3));
  EXPECT_EQ(RoundTrip(input), input);
  Bytes compressed = wire::Compress(AsView(input));
  EXPECT_LT(compressed.size(), 50u);
}

class CompressPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompressPropertyTest, RandomStructuredRoundTrips) {
  std::mt19937_64 rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    Bytes input;
    // Mix runs, random bytes, and repeated chunks.
    int segments = 1 + static_cast<int>(rng() % 8);
    for (int s = 0; s < segments; ++s) {
      switch (rng() % 3) {
        case 0: {
          input.insert(input.end(), rng() % 300,
                       static_cast<std::uint8_t>(rng()));
          break;
        }
        case 1: {
          std::size_t n = rng() % 200;
          for (std::size_t i = 0; i < n; ++i) {
            input.push_back(static_cast<std::uint8_t>(rng()));
          }
          break;
        }
        case 2: {
          if (!input.empty()) {
            std::size_t start = rng() % input.size();
            std::size_t len = std::min<std::size_t>(rng() % 200,
                                                    input.size() - start);
            Bytes chunk(input.begin() + static_cast<std::ptrdiff_t>(start),
                        input.begin() + static_cast<std::ptrdiff_t>(start + len));
            input.insert(input.end(), chunk.begin(), chunk.end());
          }
          break;
        }
      }
    }
    ASSERT_EQ(RoundTrip(input), input) << "round " << round;
  }
}

TEST_P(CompressPropertyTest, HostileInputNeverCrashes) {
  std::mt19937_64 rng(GetParam());
  for (int round = 0; round < 2000; ++round) {
    Bytes garbage(rng() % 128);
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng());
    auto out = wire::Decompress(AsView(garbage), 1 << 20);
    if (out.ok()) {
      EXPECT_LE(out->size(), 1u << 20);
    }
  }
  // Bit-flipped valid streams must fail cleanly or produce bounded output.
  Bytes valid = wire::Compress(AsView(Bytes(500, 7)));
  for (int round = 0; round < 500; ++round) {
    Bytes corrupt = valid;
    corrupt[rng() % corrupt.size()] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    (void)wire::Decompress(AsView(corrupt), 1 << 20);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressPropertyTest, ::testing::Values(1, 99));

TEST(Compress, BombGuard) {
  // Declared size above the cap is rejected before any allocation.
  wire::Writer w;
  w.Varint(1ull << 40);
  EXPECT_EQ(wire::Decompress(AsView(w.data()), 1 << 20).status().code(),
            StatusCode::kDataLoss);
}

// --- CompressedTransport ---------------------------------------------------------

TEST(CompressedTransport, EndToEndSitesOnCompressedSim) {
  VirtualClock clock;
  net::SimNetwork network(clock, net::kPaperWireless);
  auto wrap = [&](const char* name) {
    return std::make_unique<net::CompressedTransport>(network.CreateEndpoint(name));
  };
  core::Site provider(1, wrap("p"), clock);
  core::Site demander(2, wrap("d"), clock);
  ASSERT_TRUE(provider.Start().ok());
  ASSERT_TRUE(demander.Start().ok());
  provider.HostRegistry();
  demander.UseRegistry("p");

  // Highly compressible payloads (zero-filled, as MakeChain produces
  // repeated bytes per node).
  auto head = test::MakeChain(20, 2048, "n");
  ASSERT_TRUE(provider.Bind("list", head).ok());
  auto remote = demander.Lookup<test::Node>("list");
  ASSERT_TRUE(remote.ok());

  const auto bytes_before = network.stats().reply_bytes;
  auto ref = remote->Replicate(core::ReplicationMode::Cluster(20));
  ASSERT_TRUE(ref.ok());
  const auto batch_bytes = network.stats().reply_bytes - bytes_before;
  // 20 × 2 KB of repeated bytes compresses far below the raw ~41 KB.
  EXPECT_LT(batch_bytes, 5'000u);

  // Data integrity through compression.
  core::Ref<test::Node>* cursor = &*ref;
  int count = 0;
  while (!cursor->IsEmpty()) {
    EXPECT_EQ(cursor->get()->payload.size(), 2048u);
    cursor = &cursor->get()->next;
    ++count;
  }
  EXPECT_EQ(count, 20);

  // Put back through the compressed channel.
  (*ref)->SetLabel("compressed-edit");
  ASSERT_TRUE(demander.PutCluster(*ref).ok());
  EXPECT_EQ(head->label, "compressed-edit");
}

// --- RetryingTransport -------------------------------------------------------------

TEST(RetryingTransport, RecoversFromDrops) {
  VirtualClock clock;
  // 30% drop per direction: a single round trip succeeds only ~half the
  // time, ten tries virtually always.
  net::SimNetwork network(clock,
                          net::LinkParams{.drop_probability = 0.3}, /*seed=*/42);
  auto reliable = std::make_unique<net::RetryingTransport>(
      network.CreateEndpoint("client"),
      net::RetryPolicy{.max_attempts = 10}, clock);
  auto* reliable_raw = reliable.get();
  auto server_endpoint = network.CreateEndpoint("server");

  class Echo : public net::MessageHandler {
   public:
    Result<Bytes> HandleRequest(const net::Address&, BytesView b) override {
      return Bytes(b.begin(), b.end());
    }
  } echo;
  ASSERT_TRUE(server_endpoint->Serve(&echo).ok());

  int successes = 0;
  for (int i = 0; i < 50; ++i) {
    if (reliable_raw->Request("server", Bytes{1, 2, 3}).ok()) ++successes;
  }
  // Per-try round-trip success ≈ 0.49; P(all 10 tries fail) ≈ 0.1%.
  EXPECT_GE(successes, 48);
  EXPECT_GT(reliable_raw->retries(), 0u);
}

TEST(RetryingTransport, BackoffIsChargedToTheClock) {
  VirtualClock clock;
  net::SimNetwork network(clock, net::LinkParams{.drop_probability = 1.0});
  net::RetryingTransport transport(
      network.CreateEndpoint("client"),
      net::RetryPolicy{.max_attempts = 3, .initial_backoff = 10 * kMilli},
      clock);
  auto server_endpoint = network.CreateEndpoint("server");
  class Echo : public net::MessageHandler {
   public:
    Result<Bytes> HandleRequest(const net::Address&, BytesView b) override {
      return Bytes(b.begin(), b.end());
    }
  } echo;
  ASSERT_TRUE(server_endpoint->Serve(&echo).ok());

  auto reply = transport.Request("server", Bytes{1});
  EXPECT_EQ(reply.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(transport.retries(), 3u);
  // Two backoffs between three attempts: 10 + 20 ms.
  EXPECT_GE(clock.Now(), 30 * kMilli);
}

TEST(RetryingTransport, DoesNotRetryDefinitiveErrors) {
  VirtualClock clock;
  net::SimNetwork network(clock, net::LinkParams{});
  net::RetryingTransport transport(network.CreateEndpoint("client"),
                                   net::RetryPolicy{}, clock);
  // No server at all: NotFound, no retries.
  auto reply = transport.Request("ghost", Bytes{1});
  EXPECT_EQ(reply.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(transport.retries(), 0u);

  // Disconnected is definitive by default...
  auto server_endpoint = network.CreateEndpoint("server");
  network.SetEndpointUp("server", false);
  EXPECT_EQ(transport.Request("server", Bytes{1}).status().code(),
            StatusCode::kDisconnected);
  EXPECT_EQ(transport.retries(), 0u);
}

TEST(RetryingTransport, OptInDisconnectedRetry) {
  VirtualClock clock;
  net::SimNetwork network(clock, net::LinkParams{});
  net::RetryingTransport transport(
      network.CreateEndpoint("client"),
      net::RetryPolicy{.max_attempts = 4, .retry_disconnected = true}, clock);
  auto server_endpoint = network.CreateEndpoint("server");
  network.SetEndpointUp("server", false);
  EXPECT_EQ(transport.Request("server", Bytes{1}).status().code(),
            StatusCode::kDisconnected);
  EXPECT_EQ(transport.retries(), 4u);
}

TEST(RetryingTransport, BackoffIsClampedAtMaxBackoff) {
  VirtualClock clock;
  net::SimNetwork network(clock, net::LinkParams{.drop_probability = 1.0});
  // Aggressive growth that would reach minutes in a few attempts without the
  // clamp: 1 ms × 100^n. With max_backoff = 5 ms the sleeps are
  // 1 + 5 × 6 = 31 ms across 8 attempts.
  net::RetryingTransport transport(
      network.CreateEndpoint("client"),
      net::RetryPolicy{.max_attempts = 8,
                       .initial_backoff = kMilli,
                       .backoff_multiplier = 100.0,
                       .max_backoff = 5 * kMilli},
      clock);
  auto server_endpoint = network.CreateEndpoint("server");
  class Echo : public net::MessageHandler {
   public:
    Result<Bytes> HandleRequest(const net::Address&, BytesView b) override {
      return Bytes(b.begin(), b.end());
    }
  } echo;
  ASSERT_TRUE(server_endpoint->Serve(&echo).ok());

  EXPECT_EQ(transport.Request("server", Bytes{1}).status().code(),
            StatusCode::kTimeout);
  EXPECT_EQ(clock.Now(), 31 * kMilli);
}

TEST(RetryingTransport, HugeMultiplierDoesNotOverflow) {
  VirtualClock clock;
  net::SimNetwork network(clock, net::LinkParams{.drop_probability = 1.0});
  net::RetryingTransport transport(
      network.CreateEndpoint("client"),
      net::RetryPolicy{.max_attempts = 50,
                       .initial_backoff = kSecond,
                       .backoff_multiplier = 1e18,  // overflows Nanos in one step
                       .max_backoff = 2 * kMilli},
      clock);
  auto server_endpoint = network.CreateEndpoint("server");
  class Echo : public net::MessageHandler {
   public:
    Result<Bytes> HandleRequest(const net::Address&, BytesView b) override {
      return Bytes(b.begin(), b.end());
    }
  } echo;
  ASSERT_TRUE(server_endpoint->Serve(&echo).ok());

  EXPECT_EQ(transport.Request("server", Bytes{1}).status().code(),
            StatusCode::kTimeout);
  // initial_backoff itself is clamped too: 49 sleeps of 2 ms each, and the
  // virtual clock never sees a negative or overflowed sleep.
  EXPECT_EQ(clock.Now(), 49 * 2 * kMilli);
}

// Concurrent clients hammer one RetryingTransport whose every attempt fails:
// the retry counter must stay exact (it was a plain uint64 data race before).
// Runs under TSan in the thread-sanitizer CI flavour.
TEST(RetryingTransport, ConcurrentRetriesCountExactly) {
  net::LoopbackNetwork network;
  auto client_endpoint = network.CreateEndpoint("client");
  auto server_endpoint = network.CreateEndpoint("server");
  class AlwaysTimeout : public net::MessageHandler {
   public:
    Result<Bytes> HandleRequest(const net::Address&, BytesView) override {
      calls.fetch_add(1, std::memory_order_relaxed);
      return TimeoutError("induced");
    }
    std::atomic<std::uint64_t> calls{0};
  } handler;
  ASSERT_TRUE(server_endpoint->Serve(&handler).ok());

  // Real clock with nanosecond backoffs: the test exercises contention, not
  // waiting.
  net::RetryingTransport transport(
      std::move(client_endpoint),
      net::RetryPolicy{.max_attempts = 3,
                       .initial_backoff = 1000,
                       .max_backoff = 1000});

  constexpr int kThreads = 4;
  constexpr int kRequestsPerThread = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        EXPECT_EQ(transport.Request("server", Bytes{1}).status().code(),
                  StatusCode::kTimeout);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const std::uint64_t requests = kThreads * kRequestsPerThread;
  EXPECT_EQ(transport.retries(), requests * 3);
  EXPECT_EQ(handler.calls.load(), requests * 3);
}

}  // namespace
}  // namespace obiwan
