// Feature-composition integration tests: the extensions working *together* —
// stacked transport decorators, adaptive refs on flaky links, snapshots of
// cluster replicas, chains with push dissemination, eviction vs leases.
#include <gtest/gtest.h>

#include "core/batch.h"
#include "net/compressed.h"
#include "net/retry.h"
#include "obiwan.h"
#include "test_objects.h"

namespace obiwan {
namespace {

using core::ReplicationMode;
using test::Node;

TEST(Integration, CompressedRetryingStackOnFlakyWireless) {
  // Full decorator stack: Site -> Retrying -> Compressed -> SimNetwork.
  VirtualClock clock;
  net::SimNetwork network(clock,
                          net::LinkParams{.processing_overhead = 1300 * kMicro,
                                          .latency = 300 * kMilli,
                                          .bandwidth_bytes_per_sec = 50.0e3 / 8,
                                          .drop_probability = 0.2},
                          /*seed=*/5);
  auto stack = [&](const char* name) -> std::unique_ptr<net::Transport> {
    return std::make_unique<net::RetryingTransport>(
        std::make_unique<net::CompressedTransport>(network.CreateEndpoint(name)),
        net::RetryPolicy{.max_attempts = 12}, clock);
  };
  core::Site provider(1, stack("p"), clock);
  core::Site demander(2, stack("d"), clock);
  ASSERT_TRUE(provider.Start().ok());
  ASSERT_TRUE(demander.Start().ok());
  provider.HostRegistry();
  demander.UseRegistry("p");

  auto head = test::MakeChain(10, 1024, "n");
  ASSERT_TRUE(provider.Bind("list", head).ok());

  // Everything works through drops + narrow pipe + compression.
  auto remote = demander.Lookup<Node>("list");
  ASSERT_TRUE(remote.ok()) << remote.status();
  auto ref = remote->Replicate(ReplicationMode::Cluster(10));
  ASSERT_TRUE(ref.ok()) << ref.status();
  EXPECT_EQ(demander.replica_count(), 10u);

  (*ref)->SetLabel("through-the-stack");
  ASSERT_TRUE(demander.PutCluster(*ref).ok());
  EXPECT_EQ(head->label, "through-the-stack");

  // Compression actually engaged: the repetitive batch went far below raw.
  EXPECT_LT(network.stats().reply_bytes, 4000u);
}

TEST(Integration, AdaptiveRefOverRetryingTransport) {
  VirtualClock clock;
  net::SimNetwork network(clock,
                          net::LinkParams{.processing_overhead = 1300 * kMicro,
                                          .latency = 100 * kMicro,
                                          .drop_probability = 0.3},
                          /*seed=*/9);
  auto stack = [&](const char* name) -> std::unique_ptr<net::Transport> {
    return std::make_unique<net::RetryingTransport>(
        network.CreateEndpoint(name), net::RetryPolicy{.max_attempts = 15}, clock);
  };
  core::Site server(1, stack("s"), clock);
  core::Site client(2, stack("c"), clock);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(client.Start().ok());
  server.HostRegistry();
  client.UseRegistry("s");
  auto master = test::MakeChain(1, 64, "m");
  ASSERT_TRUE(server.Bind("obj", master).ok());

  auto remote = client.Lookup<Node>("obj");
  ASSERT_TRUE(remote.ok());
  adaptive::AdaptiveRef<Node> ref(client, *remote);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(ref.Invoke(&Node::Touch).ok()) << "call " << i;
  }
  EXPECT_TRUE(ref.local());  // switched despite the flaky link
  ASSERT_TRUE(ref.Sync().ok());
  // Retries are at-least-once: a Touch whose *reply* was dropped executed at
  // the master and ran again on retry, so the count may exceed 30. The final
  // Sync makes the replica state authoritative either way.
  EXPECT_GE(master->value, 30);
}

TEST(Integration, SnapshotPreservesClusterSemantics) {
  net::LoopbackNetwork network;
  core::Site provider(1, network.CreateEndpoint("p"));
  auto pda = std::make_unique<core::Site>(2, network.CreateEndpoint("pda"));
  ASSERT_TRUE(provider.Start().ok());
  ASSERT_TRUE(pda->Start().ok());
  provider.HostRegistry();
  pda->UseRegistry("p");

  auto head = test::MakeChain(4, 32, "c");
  ASSERT_TRUE(provider.Bind("list", head).ok());
  auto remote = pda->Lookup<Node>("list");
  ASSERT_TRUE(remote.ok());
  auto ref = remote->Replicate(ReplicationMode::Cluster(4));
  ASSERT_TRUE(ref.ok());
  (*ref)->SetLabel("before-snapshot");

  auto snapshot = pda->SaveSnapshot();
  ASSERT_TRUE(snapshot.ok());
  pda.reset();  // device off

  core::Site reborn(2, network.CreateEndpoint("pda2"));
  ASSERT_TRUE(reborn.LoadSnapshot(AsView(*snapshot)).ok());
  ASSERT_TRUE(reborn.Start().ok());

  core::Ref<Node> restored;
  auto obj = reborn.FindLocal(remote->id());
  ASSERT_TRUE(obj.ok());
  restored.BindLocal(remote->id(), std::move(obj).value());
  EXPECT_EQ(restored->label, "before-snapshot");

  // Cluster discipline survives the restart: per-object put still refused,
  // cluster put still lands.
  EXPECT_EQ(reborn.Put(restored).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(reborn.PutCluster(restored).ok());
  EXPECT_EQ(head->label, "before-snapshot");
}

TEST(Integration, ChainWithPushKeepsMiddleFresh) {
  // office -> laptop -> pda, with push-updates at the office AND laptop.
  net::LoopbackNetwork network;
  core::Site office(1, network.CreateEndpoint("office"));
  core::Site laptop(2, network.CreateEndpoint("laptop"));
  core::Site pda(3, network.CreateEndpoint("pda"));
  ASSERT_TRUE(office.Start().ok());
  ASSERT_TRUE(laptop.Start().ok());
  ASSERT_TRUE(pda.Start().ok());
  office.HostRegistry();
  laptop.UseRegistry("office");
  pda.UseRegistry("office");
  office.SetConsistencyPolicy(std::make_unique<core::PushUpdates>());
  laptop.SetConsistencyPolicy(std::make_unique<core::PushUpdates>());

  auto doc = test::MakeChain(1, 32, "d");
  ASSERT_TRUE(office.Bind("doc", doc).ok());

  auto on_laptop = *laptop.Lookup<Node>("doc")->Replicate(ReplicationMode::Incremental(1));
  ASSERT_TRUE(laptop.Bind("doc-cached", on_laptop.local()).ok());
  auto on_pda = *pda.Lookup<Node>("doc-cached")->Replicate(ReplicationMode::Incremental(1));

  // The PDA edits; its put updates the laptop's replica. Because the laptop
  // re-exported and tracks its own holders, *its* acceptance pushes back to
  // the PDA only excludes the writer — so a second PDA-side device would be
  // updated. The laptop then reintegrates upstream.
  on_pda->SetLabel("edited-on-the-road");
  ASSERT_TRUE(pda.Put(on_pda).ok());
  EXPECT_EQ(on_laptop->label, "edited-on-the-road");
  ASSERT_TRUE(laptop.Put(on_laptop).ok());
  EXPECT_EQ(doc->label, "edited-on-the-road");

  // An office-side edit (via a fourth client) pushes to the office's direct
  // holders — the laptop gets fresh state immediately.
  core::Site editor(4, network.CreateEndpoint("editor"));
  ASSERT_TRUE(editor.Start().ok());
  editor.UseRegistry("office");
  auto on_editor = *editor.Lookup<Node>("doc")->Replicate(ReplicationMode::Incremental(1));
  on_editor->SetLabel("edited-at-hq-v2");
  ASSERT_TRUE(editor.Put(on_editor).ok());

  EXPECT_EQ(doc->label, "edited-at-hq-v2");
  EXPECT_EQ(on_laptop->label, "edited-at-hq-v2");  // pushed office -> laptop

  // Pushes are one hop (a pushed update does not re-trigger dissemination);
  // the PDA catches up with its usual refresh.
  EXPECT_EQ(on_pda->label, "edited-on-the-road");
  ASSERT_TRUE(pda.Refresh(on_pda).ok());
  EXPECT_EQ(on_pda->label, "edited-at-hq-v2");
}

TEST(Integration, ReExportedReplicaPushesToItsOwnHolders) {
  // laptop re-exports; two PDAs replicate from it; one PDA's put makes the
  // laptop push to the other (replica-level holder tracking).
  net::LoopbackNetwork network;
  core::Site office(1, network.CreateEndpoint("office"));
  core::Site laptop(2, network.CreateEndpoint("laptop"));
  core::Site pda_a(3, network.CreateEndpoint("pda-a"));
  core::Site pda_b(4, network.CreateEndpoint("pda-b"));
  for (core::Site* s : {&office, &laptop, &pda_a, &pda_b}) {
    ASSERT_TRUE(s->Start().ok());
  }
  office.HostRegistry();
  laptop.UseRegistry("office");
  pda_a.UseRegistry("office");
  pda_b.UseRegistry("office");
  laptop.SetConsistencyPolicy(std::make_unique<core::PushUpdates>());

  auto doc = test::MakeChain(1, 32, "d");
  ASSERT_TRUE(office.Bind("doc", doc).ok());
  auto on_laptop = *laptop.Lookup<Node>("doc")->Replicate(ReplicationMode::Incremental(1));
  ASSERT_TRUE(laptop.Bind("cached", on_laptop.local()).ok());

  auto on_a = *pda_a.Lookup<Node>("cached")->Replicate(ReplicationMode::Incremental(1));
  auto on_b = *pda_b.Lookup<Node>("cached")->Replicate(ReplicationMode::Incremental(1));

  on_a->SetLabel("from-pda-a");
  ASSERT_TRUE(pda_a.Put(on_a).ok());
  EXPECT_EQ(on_laptop->label, "from-pda-a");
  EXPECT_EQ(on_b->label, "from-pda-a");  // pushed laptop -> pda-b
}

TEST(Integration, EvictionRespectsLeasedChannels) {
  VirtualClock clock;
  net::SimNetwork network(clock, net::LinkParams{});
  core::Site provider(1, network.CreateEndpoint("p"), clock);
  core::Site demander(2, network.CreateEndpoint("d"), clock);
  ASSERT_TRUE(provider.Start().ok());
  ASSERT_TRUE(demander.Start().ok());
  provider.HostRegistry();
  demander.UseRegistry("p");
  provider.SetProxyLeaseDuration(10 * kSecond);

  auto head = test::MakeChain(5, 32, "n");
  ASSERT_TRUE(provider.Bind("list", head).ok());
  auto remote = demander.Lookup<Node>("list");
  ASSERT_TRUE(remote.ok());
  {
    auto ref = remote->Replicate(ReplicationMode::Incremental(5));
    ASSERT_TRUE(ref.ok());
  }
  // The demander dropped everything; evict, then let the provider's leases
  // expire — both sides reclaim independently and a fresh get still works.
  EXPECT_EQ(demander.EvictIdleReplicas(), 5u);
  clock.Sleep(20 * kSecond);
  EXPECT_GT(provider.CollectExpiredProxyIns(), 0u);

  auto again = demander.Lookup<Node>("list");
  ASSERT_TRUE(again.ok());  // re-lookup refreshes the (re-created) bind pin
  auto ref = again->Replicate(ReplicationMode::Incremental(5));
  ASSERT_TRUE(ref.ok()) << ref.status();
  EXPECT_EQ((*ref)->next->next->Label(), "n2");
}

TEST(Integration, BatchedRmiThroughCompressedTransport) {
  VirtualClock clock;
  net::SimNetwork network(clock, net::kPaperLan);
  auto wrap = [&](const char* name) {
    return std::make_unique<net::CompressedTransport>(network.CreateEndpoint(name));
  };
  core::Site server(1, wrap("s"), clock);
  core::Site client(2, wrap("c"), clock);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(client.Start().ok());
  server.HostRegistry();
  client.UseRegistry("s");
  auto master = test::MakeChain(1, 16, "m");
  ASSERT_TRUE(server.Bind("obj", master).ok());
  auto remote = client.Lookup<Node>("obj");
  ASSERT_TRUE(remote.ok());

  core::CallBatch<Node> batch(client, *remote);
  std::vector<std::size_t> indices;
  for (int i = 0; i < 100; ++i) {
    indices.push_back(batch.Add(&Node::SetLabel,
                                std::string("very repetitive label text ") +
                                    std::to_string(i % 3)));
  }
  Nanos before = clock.Now();
  ASSERT_TRUE(batch.Execute().ok());
  EXPECT_LT(clock.Now() - before, 2 * 2'800 * kMicro);  // one (compressed) RTT
  for (std::size_t i : indices) EXPECT_TRUE(batch.Ok(i).ok());
}

}  // namespace
}  // namespace obiwan
