// obicomp porting mode (§3.2): legacy C++ class -> shareable class.
#include <gtest/gtest.h>

#include "obicomp/idl.h"
#include "obicomp/port.h"

namespace obiwan::obicomp {
namespace {

constexpr std::string_view kLegacy = R"(
// A pre-OBIWAN, non-distributed agenda (what the paper calls a legacy
// application class).
#include <string>

class Entry;

class Agenda {
 public:
  std::string owner;
  int64_t entry_count = 0;
  std::vector<std::string> categories;
  Entry* first;          /* raw pointer: becomes a Ref */

  std::string Owner() const;
  void SetOwner(const std::string& new_owner);
  int64_t Grow(int64_t by) { entry_count += by; return entry_count; }

 private:
  double last_sync;
};

class Entry {
 public:
  std::string text;
  Entry* next;
  void Clear() { text = ""; }
};
)";

TEST(Port, LegacyClassIsRecognised) {
  auto file = PortCpp(kLegacy);
  ASSERT_TRUE(file.ok()) << file.status();
  ASSERT_EQ(file->classes.size(), 2u);  // the fwd declaration adds no class

  const IdlClass& agenda = file->classes[0];
  EXPECT_EQ(agenda.name, "Agenda");
  ASSERT_EQ(agenda.fields.size(), 4u);
  EXPECT_EQ(agenda.fields[0].type, "string");
  EXPECT_EQ(agenda.fields[1].type, "i64");
  EXPECT_EQ(agenda.fields[1].name, "entry_count");
  EXPECT_EQ(agenda.fields[2].type, "list<string>");
  EXPECT_EQ(agenda.fields[3].type, "f64");  // private member ported too

  ASSERT_EQ(agenda.refs.size(), 1u);
  EXPECT_EQ(agenda.refs[0].target, "Entry");
  EXPECT_EQ(agenda.refs[0].name, "first");

  ASSERT_EQ(agenda.methods.size(), 3u);
  EXPECT_EQ(agenda.methods[0].name, "Owner");
  EXPECT_TRUE(agenda.methods[0].is_const);
  EXPECT_EQ(agenda.methods[1].name, "SetOwner");
  ASSERT_EQ(agenda.methods[1].params.size(), 1u);
  EXPECT_EQ(agenda.methods[1].params[0].type, "string");  // const& decayed
  EXPECT_EQ(agenda.methods[2].name, "Grow");  // inline body skipped
}

TEST(Port, PortedClassEmitsShareableHeader) {
  auto file = PortCpp(kLegacy);
  ASSERT_TRUE(file.ok());
  auto header = GenerateHeader(*file, "legacy_agenda.h");
  ASSERT_TRUE(header.ok()) << header.status();
  EXPECT_NE(header->find("class Agenda : public obiwan::core::Shareable"),
            std::string::npos);
  EXPECT_NE(header->find("obiwan::core::Ref<Entry> first;"), std::string::npos);
  EXPECT_NE(header->find(".Method(\"Grow\", &Agenda::Grow)"), std::string::npos);
}

TEST(Port, TypeMapping) {
  EXPECT_EQ(*IdlTypeOf("int"), "i32");
  EXPECT_EQ(*IdlTypeOf("std::int64_t"), "i64");
  EXPECT_EQ(*IdlTypeOf("unsigned"), "u32");
  EXPECT_EQ(*IdlTypeOf("double"), "f64");
  EXPECT_EQ(*IdlTypeOf("std::string"), "string");
  EXPECT_EQ(*IdlTypeOf("std::vector<int>"), "list<i32>");
  EXPECT_EQ(*IdlTypeOf("std::vector<std::uint8_t>"), "bytes");
  EXPECT_EQ(*IdlTypeOf("vector<std::vector<double>>"), "list<list<f64>>");
  EXPECT_FALSE(IdlTypeOf("std::map<int,int>").ok());
  EXPECT_FALSE(IdlTypeOf("Widget").ok());
}

TEST(Port, StructsAndAccessSpecifiers) {
  auto file = PortCpp("struct Point { double x; double y; };");
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->classes[0].fields.size(), 2u);
}

TEST(Port, SkipsCommentsAndPreprocessor) {
  auto file = PortCpp(R"(
#pragma once
#include <string>
/* block
   comment */
class C {
 public:
  int x;  // trailing comment
};
)");
  ASSERT_TRUE(file.ok()) << file.status();
  EXPECT_EQ(file->classes[0].fields.size(), 1u);
}

TEST(Port, ErrorsAreClean) {
  EXPECT_FALSE(PortCpp("").ok());
  EXPECT_FALSE(PortCpp("class C { int }").ok());          // unterminated
  EXPECT_FALSE(PortCpp("class C { std::map<int> m; };").ok());  // unsupported (punct)
  EXPECT_FALSE(PortCpp("int free_function();").ok());
  auto with_line = PortCpp("class C {\n\n  @bad\n};");
  ASSERT_FALSE(with_line.ok());
  EXPECT_NE(with_line.status().message().find("line 3"), std::string::npos);
}

TEST(Port, MethodBodiesWithNestedBraces) {
  auto file = PortCpp(R"(
class C {
 public:
  int F() { if (true) { return 1; } return 2; }
  int y;
};
)");
  ASSERT_TRUE(file.ok()) << file.status();
  EXPECT_EQ(file->classes[0].methods.size(), 1u);
  EXPECT_EQ(file->classes[0].fields.size(), 1u);  // parsing resumes after body
}

}  // namespace
}  // namespace obiwan::obicomp
