// Real-socket transport tests, including full OBIWAN sites over TCP.
#include <gtest/gtest.h>

#include "net/tcp.h"
#include "obiwan.h"
#include "test_objects.h"

namespace obiwan {
namespace {

class EchoHandler : public net::MessageHandler {
 public:
  Result<Bytes> HandleRequest(const net::Address&, BytesView request) override {
    if (fail) return InvalidArgumentError("rejected");
    return Bytes(request.begin(), request.end());
  }
  bool fail = false;
};

TEST(Tcp, RequestReply) {
  auto server = net::TcpTransport::Create(0);
  ASSERT_TRUE(server.ok()) << server.status();
  EchoHandler echo;
  ASSERT_TRUE((*server)->Serve(&echo).ok());

  auto client = net::TcpTransport::Create(0);
  ASSERT_TRUE(client.ok());

  Bytes payload{1, 2, 3, 4, 5};
  auto reply = (*client)->Request((*server)->LocalAddress(), payload);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(*reply, payload);
}

TEST(Tcp, LargePayload) {
  auto server = net::TcpTransport::Create(0);
  ASSERT_TRUE(server.ok());
  EchoHandler echo;
  ASSERT_TRUE((*server)->Serve(&echo).ok());
  auto client = net::TcpTransport::Create(0);
  ASSERT_TRUE(client.ok());

  Bytes big(2 * 1024 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 31);
  }
  auto reply = (*client)->Request((*server)->LocalAddress(), big);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(*reply, big);
}

TEST(Tcp, HandlerErrorCrossesTheWire) {
  auto server = net::TcpTransport::Create(0);
  ASSERT_TRUE(server.ok());
  EchoHandler echo;
  echo.fail = true;
  ASSERT_TRUE((*server)->Serve(&echo).ok());
  auto client = net::TcpTransport::Create(0);
  ASSERT_TRUE(client.ok());

  auto reply = (*client)->Request((*server)->LocalAddress(), Bytes{1});
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(reply.status().message(), "rejected");
}

TEST(Tcp, ConnectionRefusedIsDisconnected) {
  auto client = net::TcpTransport::Create(0);
  ASSERT_TRUE(client.ok());
  // Nothing listens on the client's own port-0 sibling; pick an unlikely port.
  auto reply = (*client)->Request("127.0.0.1:1", Bytes{1});
  EXPECT_EQ(reply.status().code(), StatusCode::kDisconnected);
}

TEST(Tcp, BadAddressRejected) {
  auto client = net::TcpTransport::Create(0);
  ASSERT_TRUE(client.ok());
  EXPECT_EQ((*client)->Request("no-port", Bytes{}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*client)->Request("host:99999", Bytes{}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*client)->Request("not.an.ip:80", Bytes{}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Tcp, StopServingUnblocksAndRefuses) {
  auto server = net::TcpTransport::Create(0);
  ASSERT_TRUE(server.ok());
  EchoHandler echo;
  ASSERT_TRUE((*server)->Serve(&echo).ok());
  (*server)->StopServing();
  // Serving again works (fresh lifecycle is not required, but stop is final
  // for the accept loop; a new transport would be created in practice).
  auto client = net::TcpTransport::Create(0);
  ASSERT_TRUE(client.ok());
  auto reply = (*client)->Request((*server)->LocalAddress(), Bytes{1});
  EXPECT_FALSE(reply.ok());
}

// The whole middleware across real sockets: registry, RMI, incremental
// replication, object faults, put — identical application code to loopback.
TEST(Tcp, FullSitesOverTcp) {
  auto provider_transport = net::TcpTransport::Create(0);
  ASSERT_TRUE(provider_transport.ok());
  auto demander_transport = net::TcpTransport::Create(0);
  ASSERT_TRUE(demander_transport.ok());

  core::Site provider(2, std::move(*provider_transport));
  core::Site demander(1, std::move(*demander_transport));
  ASSERT_TRUE(provider.Start().ok());
  ASSERT_TRUE(demander.Start().ok());
  provider.HostRegistry();
  demander.UseRegistry(provider.address());

  auto head = test::MakeChain(5, 64, "t");
  ASSERT_TRUE(provider.Bind("list", head).ok());

  auto remote = demander.Lookup<test::Node>("list");
  ASSERT_TRUE(remote.ok()) << remote.status();

  // RMI over TCP.
  auto v = remote->Invoke(&test::Node::Value);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(*v, 0);

  // Incremental replication with faults over TCP.
  auto ref = remote->Replicate(core::ReplicationMode::Incremental(2));
  ASSERT_TRUE(ref.ok()) << ref.status();
  core::Ref<test::Node>* cursor = &*ref;
  int count = 0;
  while (!cursor->IsEmpty()) {
    (*cursor)->Touch();
    cursor = &cursor->get()->next;
    ++count;
  }
  EXPECT_EQ(count, 5);
  EXPECT_EQ(demander.replica_count(), 5u);

  // Put over TCP.
  (*ref)->SetLabel("tcp-edit");
  ASSERT_TRUE(demander.Put(*ref).ok());
  EXPECT_EQ(head->label, "tcp-edit");

  demander.Stop();
  provider.Stop();
}

}  // namespace
}  // namespace obiwan
