// Real-socket transport tests, including full OBIWAN sites over TCP:
// deadlines (no request may hang forever), connection pooling, stale-pool
// recovery, retry-over-TCP, and server thread lifecycle.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "net/retry.h"
#include "net/tcp.h"
#include "obiwan.h"
#include "test_objects.h"

namespace obiwan {
namespace {

// Connect a raw client socket to 127.0.0.1:`port` (or return -1).
int RawConnect(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// Raw listening socket on an ephemeral port; never accepts unless asked.
struct RawListener {
  int fd = -1;
  std::uint16_t port = 0;

  RawListener() {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0 &&
        ::listen(fd, 8) == 0) {
      socklen_t len = sizeof(addr);
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
      port = ntohs(addr.sin_port);
    }
  }
  ~RawListener() {
    if (fd >= 0) ::close(fd);
  }
  std::string address() const { return "127.0.0.1:" + std::to_string(port); }
};

class EchoHandler : public net::MessageHandler {
 public:
  Result<Bytes> HandleRequest(const net::Address&, BytesView request) override {
    if (fail) return InvalidArgumentError("rejected");
    return Bytes(request.begin(), request.end());
  }
  bool fail = false;
};

TEST(Tcp, RequestReply) {
  auto server = net::TcpTransport::Create(0);
  ASSERT_TRUE(server.ok()) << server.status();
  EchoHandler echo;
  ASSERT_TRUE((*server)->Serve(&echo).ok());

  auto client = net::TcpTransport::Create(0);
  ASSERT_TRUE(client.ok());

  Bytes payload{1, 2, 3, 4, 5};
  auto reply = (*client)->Request((*server)->LocalAddress(), payload);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(*reply, payload);
}

TEST(Tcp, LargePayload) {
  auto server = net::TcpTransport::Create(0);
  ASSERT_TRUE(server.ok());
  EchoHandler echo;
  ASSERT_TRUE((*server)->Serve(&echo).ok());
  auto client = net::TcpTransport::Create(0);
  ASSERT_TRUE(client.ok());

  Bytes big(2 * 1024 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 31);
  }
  auto reply = (*client)->Request((*server)->LocalAddress(), big);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(*reply, big);
}

TEST(Tcp, HandlerErrorCrossesTheWire) {
  auto server = net::TcpTransport::Create(0);
  ASSERT_TRUE(server.ok());
  EchoHandler echo;
  echo.fail = true;
  ASSERT_TRUE((*server)->Serve(&echo).ok());
  auto client = net::TcpTransport::Create(0);
  ASSERT_TRUE(client.ok());

  auto reply = (*client)->Request((*server)->LocalAddress(), Bytes{1});
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(reply.status().message(), "rejected");
}

TEST(Tcp, ConnectionRefusedIsDisconnected) {
  auto client = net::TcpTransport::Create(0);
  ASSERT_TRUE(client.ok());
  // Nothing listens on the client's own port-0 sibling; pick an unlikely port.
  auto reply = (*client)->Request("127.0.0.1:1", Bytes{1});
  EXPECT_EQ(reply.status().code(), StatusCode::kDisconnected);
}

TEST(Tcp, BadAddressRejected) {
  auto client = net::TcpTransport::Create(0);
  ASSERT_TRUE(client.ok());
  EXPECT_EQ((*client)->Request("no-port", Bytes{}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*client)->Request("host:99999", Bytes{}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*client)->Request("not.an.ip:80", Bytes{}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Tcp, StopServingUnblocksAndRefuses) {
  auto server = net::TcpTransport::Create(0);
  ASSERT_TRUE(server.ok());
  EchoHandler echo;
  ASSERT_TRUE((*server)->Serve(&echo).ok());
  (*server)->StopServing();
  // Serving again works (fresh lifecycle is not required, but stop is final
  // for the accept loop; a new transport would be created in practice).
  auto client = net::TcpTransport::Create(0);
  ASSERT_TRUE(client.ok());
  auto reply = (*client)->Request((*server)->LocalAddress(), Bytes{1});
  EXPECT_FALSE(reply.ok());
}

// The whole middleware across real sockets: registry, RMI, incremental
// replication, object faults, put — identical application code to loopback.
TEST(Tcp, FullSitesOverTcp) {
  auto provider_transport = net::TcpTransport::Create(0);
  ASSERT_TRUE(provider_transport.ok());
  auto demander_transport = net::TcpTransport::Create(0);
  ASSERT_TRUE(demander_transport.ok());

  core::Site provider(2, std::move(*provider_transport));
  core::Site demander(1, std::move(*demander_transport));
  ASSERT_TRUE(provider.Start().ok());
  ASSERT_TRUE(demander.Start().ok());
  provider.HostRegistry();
  demander.UseRegistry(provider.address());

  auto head = test::MakeChain(5, 64, "t");
  ASSERT_TRUE(provider.Bind("list", head).ok());

  auto remote = demander.Lookup<test::Node>("list");
  ASSERT_TRUE(remote.ok()) << remote.status();

  // RMI over TCP.
  auto v = remote->Invoke(&test::Node::Value);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(*v, 0);

  // Incremental replication with faults over TCP.
  auto ref = remote->Replicate(core::ReplicationMode::Incremental(2));
  ASSERT_TRUE(ref.ok()) << ref.status();
  core::Ref<test::Node>* cursor = &*ref;
  int count = 0;
  while (!cursor->IsEmpty()) {
    (*cursor)->Touch();
    cursor = &cursor->get()->next;
    ++count;
  }
  EXPECT_EQ(count, 5);
  EXPECT_EQ(demander.replica_count(), 5u);

  // Put over TCP.
  (*ref)->SetLabel("tcp-edit");
  ASSERT_TRUE(demander.Put(*ref).ok());
  EXPECT_EQ(head->label, "tcp-edit");

  demander.Stop();
  provider.Stop();
}

// --- deadlines -----------------------------------------------------------------

TEST(TcpDeadline, DefaultDeadlineIsFinite) {
  auto client = net::TcpTransport::Create(0);
  ASSERT_TRUE(client.ok());
  EXPECT_EQ((*client)->default_deadline(), net::TcpTransport::kDefaultDeadline);
}

// The hang-forever bug: a peer whose kernel completes the handshake (listen
// backlog) but that never reads or replies used to block the caller
// indefinitely in recv. With a deadline the call must return kTimeout.
TEST(TcpDeadline, DeadPeerTimesOutBeforeDeadline) {
  RawListener dead;  // listening, never accepting, never replying
  ASSERT_GT(dead.port, 0);
  auto client = net::TcpTransport::Create(0);
  ASSERT_TRUE(client.ok());

  const auto start = std::chrono::steady_clock::now();
  auto reply = (*client)->Request(dead.address(), Bytes{1, 2, 3},
                                  net::CallOptions{200 * kMilli});
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(reply.status().code(), StatusCode::kTimeout) << reply.status();
  EXPECT_LT(elapsed, std::chrono::seconds(2));
  EXPECT_GE((*client)->stats().timeouts, 1u);
}

TEST(TcpDeadline, SetDefaultDeadlineApplies) {
  RawListener dead;
  ASSERT_GT(dead.port, 0);
  auto client = net::TcpTransport::Create(0);
  ASSERT_TRUE(client.ok());
  (*client)->SetDefaultDeadline(100 * kMilli);
  auto reply = (*client)->Request(dead.address(), Bytes{1});
  EXPECT_EQ(reply.status().code(), StatusCode::kTimeout);
}

TEST(TcpDeadline, MidFramePeerCloseIsDataLoss) {
  RawListener listener;
  ASSERT_GT(listener.port, 0);
  // Server: accept, consume the request frame, write half a reply header,
  // close. The client must fail fast with kDataLoss, not hang.
  std::thread server([&] {
    int conn = ::accept(listener.fd, nullptr, nullptr);
    if (conn < 0) return;
    std::uint8_t buf[64];
    (void)::recv(conn, buf, sizeof(buf), 0);
    const std::uint8_t half_header[2] = {42, 0};
    (void)::send(conn, half_header, sizeof(half_header), MSG_NOSIGNAL);
    ::close(conn);
  });
  auto client = net::TcpTransport::Create(0);
  ASSERT_TRUE(client.ok());
  auto reply = (*client)->Request(listener.address(), Bytes{7},
                                  net::CallOptions{2 * kSecond});
  EXPECT_EQ(reply.status().code(), StatusCode::kDataLoss) << reply.status();
  server.join();
}

// --- connection pooling ----------------------------------------------------------

TEST(TcpPool, BurstReusesOneConnection) {
  auto server = net::TcpTransport::Create(0);
  ASSERT_TRUE(server.ok());
  EchoHandler echo;
  ASSERT_TRUE((*server)->Serve(&echo).ok());
  auto client = net::TcpTransport::Create(0);
  ASSERT_TRUE(client.ok());

  for (int i = 0; i < 10; ++i) {
    auto reply = (*client)->Request((*server)->LocalAddress(),
                                    Bytes{static_cast<std::uint8_t>(i)});
    ASSERT_TRUE(reply.ok()) << reply.status();
  }
  EXPECT_EQ((*client)->connects(), 1u);
  EXPECT_EQ((*client)->pool_hits(), 9u);
  EXPECT_EQ((*client)->idle_pooled_connections(), 1u);
}

TEST(TcpPool, CapacityZeroDisablesPooling) {
  auto server = net::TcpTransport::Create(0);
  ASSERT_TRUE(server.ok());
  EchoHandler echo;
  ASSERT_TRUE((*server)->Serve(&echo).ok());
  auto client = net::TcpTransport::Create(0);
  ASSERT_TRUE(client.ok());
  (*client)->SetPoolCapacity(0);

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*client)->Request((*server)->LocalAddress(), Bytes{1}).ok());
  }
  EXPECT_EQ((*client)->connects(), 5u);
  EXPECT_EQ((*client)->pool_hits(), 0u);
  EXPECT_EQ((*client)->idle_pooled_connections(), 0u);
}

TEST(TcpPool, StaleConnectionRecovers) {
  auto server = net::TcpTransport::Create(0);
  ASSERT_TRUE(server.ok());
  const std::uint16_t port = static_cast<std::uint16_t>(
      std::stoi((*server)->LocalAddress().substr(std::string("127.0.0.1:").size())));
  EchoHandler echo;
  ASSERT_TRUE((*server)->Serve(&echo).ok());

  auto client = net::TcpTransport::Create(0);
  ASSERT_TRUE(client.ok());
  const net::Address address = (*server)->LocalAddress();
  ASSERT_TRUE((*client)->Request(address, Bytes{1}).ok());
  EXPECT_EQ((*client)->idle_pooled_connections(), 1u);

  // Kill the server (FINs the pooled connection) and restart on the same
  // port: the next request must detect the stale socket and reconnect.
  server->reset();
  auto reborn = net::TcpTransport::Create(port);
  ASSERT_TRUE(reborn.ok()) << reborn.status();
  ASSERT_TRUE((*reborn)->Serve(&echo).ok());

  auto reply = (*client)->Request(address, Bytes{2},
                                  net::CallOptions{2 * kSecond});
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ((*client)->connects(), 2u);
}

// --- retry over real sockets ------------------------------------------------------

// A handler whose first call stalls longer than the client deadline: attempt
// one times out, the retry decorator re-sends, attempt two succeeds. This is
// the end-to-end proof that kTimeout (not a hang) makes retries meaningful
// on real sockets.
TEST(TcpRetry, RetryRecoversAfterTimeout) {
  class FlakyHandler : public net::MessageHandler {
   public:
    Result<Bytes> HandleRequest(const net::Address&, BytesView request) override {
      if (calls.fetch_add(1) == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
      }
      return Bytes(request.begin(), request.end());
    }
    std::atomic<int> calls{0};
  };

  auto server = net::TcpTransport::Create(0);
  ASSERT_TRUE(server.ok());
  FlakyHandler flaky;
  ASSERT_TRUE((*server)->Serve(&flaky).ok());

  auto client = net::TcpTransport::Create(0);
  ASSERT_TRUE(client.ok());
  const net::Address address = (*server)->LocalAddress();
  net::RetryingTransport reliable(
      std::move(*client),
      net::RetryPolicy{.max_attempts = 3, .initial_backoff = kMilli});
  reliable.SetDefaultDeadline(150 * kMilli);

  auto reply = reliable.Request(address, Bytes{5});
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(*reply, Bytes{5});
  EXPECT_EQ(reliable.retries(), 1u);
  EXPECT_EQ(flaky.calls.load(), 2);
}

// --- server thread lifecycle ------------------------------------------------------

TEST(TcpServer, SoakReapsConnectionThreads) {
  auto server = net::TcpTransport::Create(0);
  ASSERT_TRUE(server.ok());
  EchoHandler echo;
  ASSERT_TRUE((*server)->Serve(&echo).ok());
  const std::uint16_t port = static_cast<std::uint16_t>(
      std::stoi((*server)->LocalAddress().substr(std::string("127.0.0.1:").size())));

  for (int i = 0; i < 1000; ++i) {
    int fd = RawConnect(port);
    ASSERT_GE(fd, 0) << "iteration " << i;
    ::close(fd);
  }
  // Every handler thread sees the FIN and retires; none may linger.
  for (int spin = 0; spin < 500 && (*server)->active_connections() > 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ((*server)->active_connections(), 0u);
  (*server)->StopServing();
}

TEST(TcpServer, MaxConnectionsBoundsHandlerThreads) {
  auto server = net::TcpTransport::Create(0);
  ASSERT_TRUE(server.ok());
  (*server)->SetMaxConnections(2);
  EchoHandler echo;
  ASSERT_TRUE((*server)->Serve(&echo).ok());
  const std::uint16_t port = static_cast<std::uint16_t>(
      std::stoi((*server)->LocalAddress().substr(std::string("127.0.0.1:").size())));

  int fds[4];
  for (int& fd : fds) {
    fd = RawConnect(port);
    ASSERT_GE(fd, 0);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_LE((*server)->active_connections(), 2u);
  for (int fd : fds) ::close(fd);
  for (int spin = 0; spin < 500 && (*server)->active_connections() > 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ((*server)->active_connections(), 0u);
}

}  // namespace
}  // namespace obiwan
