// Replica eviction (limited-memory info-appliances) and site snapshots
// (mobility across restarts).
#include <gtest/gtest.h>

#include "obiwan.h"
#include "test_objects.h"

namespace obiwan {
namespace {

using core::ReplicationMode;
using test::Node;

class EvictionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    provider_ = std::make_unique<core::Site>(1, network_.CreateEndpoint("p"));
    demander_ = std::make_unique<core::Site>(2, network_.CreateEndpoint("d"));
    ASSERT_TRUE(provider_->Start().ok());
    ASSERT_TRUE(demander_->Start().ok());
    provider_->HostRegistry();
    demander_->UseRegistry("p");
  }

  net::LoopbackNetwork network_;
  std::unique_ptr<core::Site> provider_;
  std::unique_ptr<core::Site> demander_;
};

TEST_F(EvictionTest, DroppingTheLastRefMakesTheGraphEvictable) {
  auto head = test::MakeChain(10, 64, "n");
  ASSERT_TRUE(provider_->Bind("list", head).ok());
  auto remote = demander_->Lookup<Node>("list");
  ASSERT_TRUE(remote.ok());
  {
    auto ref = remote->Replicate(ReplicationMode::Incremental(10));
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(demander_->replica_count(), 10u);

    // While the application holds the head, the chain is pinned: the head is
    // referenced by the app, every tail node by its predecessor's ref field.
    EXPECT_EQ(demander_->EvictIdleReplicas(), 0u);
    EXPECT_EQ(demander_->replica_count(), 10u);
  }
  // App dropped its Ref: the whole chain cascades out.
  EXPECT_EQ(demander_->EvictIdleReplicas(), 10u);
  EXPECT_EQ(demander_->replica_count(), 0u);
}

TEST_F(EvictionTest, HeldMiddleNodePinsItsTail) {
  auto head = test::MakeChain(6, 64, "n");
  ASSERT_TRUE(provider_->Bind("list", head).ok());
  auto remote = demander_->Lookup<Node>("list");
  ASSERT_TRUE(remote.ok());
  core::Ref<Node> third;
  {
    auto ref = remote->Replicate(ReplicationMode::Incremental(6));
    ASSERT_TRUE(ref.ok());
    third = (*ref)->next->next->next;  // hold node 3
  }
  // Nodes 0..2 are unreferenced; 3..5 are pinned through `third`.
  EXPECT_EQ(demander_->EvictIdleReplicas(), 3u);
  EXPECT_EQ(demander_->replica_count(), 3u);
  EXPECT_EQ(third->Label(), "n3");
}

TEST_F(EvictionTest, EvictedObjectIsRefetchedOnNextFault) {
  auto head = test::MakeChain(3, 64, "n");
  ASSERT_TRUE(provider_->Bind("list", head).ok());
  auto remote = demander_->Lookup<Node>("list");
  ASSERT_TRUE(remote.ok());
  {
    auto ref = remote->Replicate(ReplicationMode::Incremental(3));
    ASSERT_TRUE(ref.ok());
  }
  EXPECT_EQ(demander_->EvictIdleReplicas(), 3u);

  // Replicating again works; fresh replicas, fresh state.
  auto again = remote->Replicate(ReplicationMode::Incremental(3));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->Label(), "n0");
  EXPECT_EQ(demander_->replica_count(), 3u);
}

TEST_F(EvictionTest, MastersAreNeverEvicted) {
  auto obj = std::make_shared<Node>();
  provider_->Export(obj);
  EXPECT_EQ(provider_->EvictIdleReplicas(), 0u);
  EXPECT_EQ(provider_->master_count(), 1u);
}

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    provider_ = std::make_unique<core::Site>(1, network_.CreateEndpoint("p"));
    ASSERT_TRUE(provider_->Start().ok());
    provider_->HostRegistry();
  }

  net::LoopbackNetwork network_;
  std::unique_ptr<core::Site> provider_;
};

TEST_F(SnapshotTest, MasterGraphRoundTrips) {
  auto head = test::MakeChain(5, 32, "m");
  head->value = 77;
  ASSERT_TRUE(provider_->Bind("list", head).ok());

  auto snapshot = provider_->SaveSnapshot();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();

  core::Site restored(1, network_.CreateEndpoint("p2"));
  ASSERT_TRUE(restored.LoadSnapshot(AsView(*snapshot)).ok());
  EXPECT_EQ(restored.master_count(), 5u);

  // The graph is intact: walk it through the restored master table.
  auto root = restored.FindLocal(ObjectId{1, 1});
  ASSERT_TRUE(root.ok());
  auto* node = dynamic_cast<Node*>(root->get());
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->value, 77);
  int count = 0;
  while (node != nullptr) {
    ++count;
    node = static_cast<Node*>(node->next.local_raw());
  }
  EXPECT_EQ(count, 5);
}

TEST_F(SnapshotTest, PdaResumesOfflineWorkAfterRestart) {
  // The full mobility loop: replicate, edit, snapshot, "power off", restore,
  // reconnect, put.
  core::Site pda(2, network_.CreateEndpoint("pda"));
  ASSERT_TRUE(pda.Start().ok());
  pda.UseRegistry("p");

  auto agenda = test::MakeChain(4, 32, "a");
  ASSERT_TRUE(provider_->Bind("agenda", agenda).ok());

  auto remote = pda.Lookup<Node>("agenda");
  ASSERT_TRUE(remote.ok());
  auto ref = remote->Replicate(ReplicationMode::Incremental(2));
  ASSERT_TRUE(ref.ok());
  (*ref)->SetLabel("edited-offline");

  auto snapshot = pda.SaveSnapshot();
  ASSERT_TRUE(snapshot.ok());
  pda.Stop();  // power off

  // Power back on: a fresh process restores the snapshot.
  core::Site pda2(2, network_.CreateEndpoint("pda-reborn"));
  ASSERT_TRUE(pda2.LoadSnapshot(AsView(*snapshot)).ok());
  ASSERT_TRUE(pda2.Start().ok());
  pda2.UseRegistry("p");
  EXPECT_EQ(pda2.replica_count(), 2u);

  // The offline edit survived, and the provider channel still works.
  auto restored = pda2.FindLocal(remote->id());
  ASSERT_TRUE(restored.ok());
  core::Ref<Node> rref;
  rref.BindLocal(remote->id(), std::move(restored).value());
  EXPECT_EQ(rref->Label(), "edited-offline");
  ASSERT_TRUE(pda2.Put(rref).ok());
  EXPECT_EQ(agenda->label, "edited-offline");

  // Boundary proxies were restored too: traversal faults onward.
  EXPECT_EQ(rref->next->next->Label(), "a2");
}

TEST_F(SnapshotTest, ProviderRoleSurvives) {
  auto head = test::MakeChain(2, 32, "m");
  ASSERT_TRUE(provider_->Bind("list", head).ok());

  core::Site client(2, network_.CreateEndpoint("client"));
  ASSERT_TRUE(client.Start().ok());
  client.UseRegistry("p");
  auto remote = client.Lookup<Node>("list");
  ASSERT_TRUE(remote.ok());
  auto ref = remote->Replicate(ReplicationMode::Incremental(1));
  ASSERT_TRUE(ref.ok());

  // Provider snapshots and "restarts" at the same logical address.
  auto snapshot = provider_->SaveSnapshot();
  ASSERT_TRUE(snapshot.ok());
  provider_->Stop();
  provider_.reset();

  core::Site reborn(1, network_.CreateEndpoint("p"));
  ASSERT_TRUE(reborn.LoadSnapshot(AsView(*snapshot)).ok());
  ASSERT_TRUE(reborn.Start().ok());

  // The client's replica provider channel (put) and its boundary proxy
  // (fault for node 1) both still resolve against the reborn provider.
  (*ref)->SetLabel("after-restart");
  EXPECT_TRUE(client.Put(*ref).ok());
  EXPECT_EQ((*ref)->next->Label(), "m1");
}

TEST_F(SnapshotTest, LoadRejectsBadInput) {
  core::Site fresh(1, network_.CreateEndpoint("f"));
  EXPECT_EQ(fresh.LoadSnapshot({}).code(), StatusCode::kDataLoss);
  Bytes garbage{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(fresh.LoadSnapshot(AsView(garbage)).code(), StatusCode::kDataLoss);
}

TEST_F(SnapshotTest, LoadRejectsWrongSiteAndNonEmptySite) {
  auto obj = std::make_shared<Node>();
  provider_->Export(obj);
  auto snapshot = provider_->SaveSnapshot();
  ASSERT_TRUE(snapshot.ok());

  core::Site other(9, network_.CreateEndpoint("other"));
  EXPECT_EQ(other.LoadSnapshot(AsView(*snapshot)).code(),
            StatusCode::kFailedPrecondition);

  // A site already holding objects refuses to load.
  core::Site busy(1, network_.CreateEndpoint("busy"));
  busy.Export(std::make_shared<Node>());
  EXPECT_EQ(busy.LoadSnapshot(AsView(*snapshot)).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(SnapshotTest, TruncatedSnapshotFailsCleanly) {
  auto head = test::MakeChain(3, 32, "m");
  ASSERT_TRUE(provider_->Bind("list", head).ok());
  auto snapshot = provider_->SaveSnapshot();
  ASSERT_TRUE(snapshot.ok());

  for (std::size_t cut : {snapshot->size() / 4, snapshot->size() / 2,
                          snapshot->size() - 1}) {
    core::Site fresh(1, network_.CreateEndpoint("cut" + std::to_string(cut)));
    EXPECT_FALSE(fresh.LoadSnapshot(BytesView(snapshot->data(), cut)).ok())
        << "cut at " << cut;
  }
}

}  // namespace
}  // namespace obiwan
