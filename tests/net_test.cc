// Transport tests: loopback delivery, simulated network cost model,
// disconnection injection, reply framing.
#include <gtest/gtest.h>

#include "net/frame.h"
#include "net/loopback.h"
#include "net/sim.h"

namespace obiwan::net {
namespace {

class EchoHandler : public MessageHandler {
 public:
  Result<Bytes> HandleRequest(const Address& from, BytesView request) override {
    ++calls;
    last_from = from;
    if (fail_with) return *fail_with;
    Bytes reply(request.begin(), request.end());
    reply.insert(reply.end(), suffix.begin(), suffix.end());
    return reply;
  }

  int calls = 0;
  Address last_from;
  Bytes suffix;
  std::optional<Status> fail_with;
};

TEST(Loopback, RequestReply) {
  LoopbackNetwork network;
  auto a = network.CreateEndpoint("a");
  auto b = network.CreateEndpoint("b");
  EchoHandler echo;
  echo.suffix = {9};
  ASSERT_TRUE(b->Serve(&echo).ok());

  auto reply = a->Request("b", Bytes{1, 2});
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, (Bytes{1, 2, 9}));
  EXPECT_EQ(echo.last_from, "a");
  EXPECT_EQ(network.stats().requests, 1u);
  EXPECT_EQ(network.stats().request_bytes, 2u);
  EXPECT_EQ(network.stats().reply_bytes, 3u);
}

TEST(Loopback, UnknownDestination) {
  LoopbackNetwork network;
  auto a = network.CreateEndpoint("a");
  auto reply = a->Request("nowhere", Bytes{1});
  EXPECT_EQ(reply.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(network.stats().failures, 1u);
}

TEST(Loopback, NotServingYet) {
  LoopbackNetwork network;
  auto a = network.CreateEndpoint("a");
  auto b = network.CreateEndpoint("b");
  EXPECT_EQ(a->Request("b", Bytes{1}).status().code(), StatusCode::kNotFound);
  EchoHandler echo;
  ASSERT_TRUE(b->Serve(&echo).ok());
  EXPECT_TRUE(a->Request("b", Bytes{1}).ok());
  b->StopServing();
  EXPECT_FALSE(a->Request("b", Bytes{1}).ok());
}

TEST(Loopback, DuplicateAddressRejected) {
  LoopbackNetwork network;
  auto a = network.CreateEndpoint("a");
  EXPECT_EQ(network.CreateEndpoint("a"), nullptr);
}

TEST(Loopback, EndpointUnregistersOnDestruction) {
  LoopbackNetwork network;
  { auto a = network.CreateEndpoint("a"); }
  EXPECT_NE(network.CreateEndpoint("a"), nullptr);  // address is free again
}

TEST(Loopback, HandlerErrorPropagates) {
  LoopbackNetwork network;
  auto a = network.CreateEndpoint("a");
  auto b = network.CreateEndpoint("b");
  EchoHandler echo;
  echo.fail_with = NotFoundError("no such object");
  ASSERT_TRUE(b->Serve(&echo).ok());
  auto reply = a->Request("b", Bytes{});
  EXPECT_EQ(reply.status().code(), StatusCode::kNotFound);
}

// --- simulated network --------------------------------------------------------

TEST(LinkParams, OneWayCost) {
  LinkParams link{.processing_overhead = 1 * kMilli,
                  .latency = 2 * kMilli,
                  .bandwidth_bytes_per_sec = 1000.0};
  EXPECT_EQ(link.OneWayCost(0), 3 * kMilli);
  // 500 bytes at 1000 B/s = 0.5 s.
  EXPECT_EQ(link.OneWayCost(500), 3 * kMilli + kSecond / 2);
}

TEST(Sim, ChargesVirtualTime) {
  VirtualClock clock;
  LinkParams link{.processing_overhead = 1 * kMilli, .latency = 0};
  SimNetwork network(clock, link);
  auto a = network.CreateEndpoint("a");
  auto b = network.CreateEndpoint("b");
  EchoHandler echo;
  ASSERT_TRUE(b->Serve(&echo).ok());

  ASSERT_TRUE(a->Request("b", Bytes{}).ok());
  EXPECT_EQ(clock.Now(), 2 * kMilli);  // request + reply

  ASSERT_TRUE(a->Request("b", Bytes{}).ok());
  EXPECT_EQ(clock.Now(), 4 * kMilli);
}

TEST(Sim, PaperLanCalibration) {
  // The headline constant: an empty round trip on the paper's LAN = 2.8 ms.
  VirtualClock clock;
  SimNetwork network(clock, kPaperLan);
  auto a = network.CreateEndpoint("a");
  auto b = network.CreateEndpoint("b");
  EchoHandler echo;
  ASSERT_TRUE(b->Serve(&echo).ok());
  ASSERT_TRUE(a->Request("b", Bytes{}).ok());
  EXPECT_EQ(clock.Now(), 2'800 * kMicro);
}

TEST(Sim, BandwidthScalesWithSize) {
  VirtualClock clock;
  LinkParams link{.bandwidth_bytes_per_sec = 1.0e6};
  SimNetwork network(clock, link);
  auto a = network.CreateEndpoint("a");
  auto b = network.CreateEndpoint("b");
  EchoHandler echo;
  ASSERT_TRUE(b->Serve(&echo).ok());

  Bytes megabyte(1'000'000, 0);
  ASSERT_TRUE(a->Request("b", megabyte).ok());
  // 1 MB request + 1 MB echoed reply at 1 MB/s ≈ 2 s.
  EXPECT_GE(clock.Now(), 2 * kSecond);
  EXPECT_LT(clock.Now(), 2 * kSecond + 10 * kMilli);
}

TEST(Sim, EndpointDisconnection) {
  VirtualClock clock;
  SimNetwork network(clock, LinkParams{});
  auto a = network.CreateEndpoint("a");
  auto b = network.CreateEndpoint("b");
  EchoHandler echo;
  ASSERT_TRUE(b->Serve(&echo).ok());

  network.SetEndpointUp("b", false);
  EXPECT_EQ(a->Request("b", Bytes{}).status().code(), StatusCode::kDisconnected);
  EXPECT_EQ(echo.calls, 0);

  network.SetEndpointUp("b", true);
  EXPECT_TRUE(a->Request("b", Bytes{}).ok());
}

TEST(Sim, PerLinkDisconnection) {
  VirtualClock clock;
  SimNetwork network(clock, LinkParams{});
  auto a = network.CreateEndpoint("a");
  auto b = network.CreateEndpoint("b");
  auto c = network.CreateEndpoint("c");
  EchoHandler echo_b, echo_c;
  ASSERT_TRUE(b->Serve(&echo_b).ok());
  ASSERT_TRUE(c->Serve(&echo_c).ok());

  network.SetLinkUp("a", "b", false);
  EXPECT_EQ(a->Request("b", Bytes{}).status().code(), StatusCode::kDisconnected);
  EXPECT_TRUE(a->Request("c", Bytes{}).ok());  // other links unaffected
  // Link state is symmetric.
  EXPECT_EQ(b->Request("a", Bytes{}).status().code(), StatusCode::kDisconnected);
}

TEST(Sim, PerLinkParamsOverride) {
  VirtualClock clock;
  SimNetwork network(clock, LinkParams{});  // default: free
  auto a = network.CreateEndpoint("a");
  auto b = network.CreateEndpoint("b");
  EchoHandler echo;
  ASSERT_TRUE(b->Serve(&echo).ok());

  network.SetLinkParams("a", "b", LinkParams{.latency = 5 * kMilli});
  ASSERT_TRUE(a->Request("b", Bytes{}).ok());
  EXPECT_EQ(clock.Now(), 10 * kMilli);
}

TEST(Sim, DropProbabilityIsTimeout) {
  VirtualClock clock;
  SimNetwork network(clock, LinkParams{.drop_probability = 1.0});
  auto a = network.CreateEndpoint("a");
  auto b = network.CreateEndpoint("b");
  EchoHandler echo;
  ASSERT_TRUE(b->Serve(&echo).ok());
  EXPECT_EQ(a->Request("b", Bytes{}).status().code(), StatusCode::kTimeout);
}

TEST(Sim, JitterIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    VirtualClock clock;
    SimNetwork network(clock, LinkParams{.jitter = 10 * kMilli}, seed);
    auto a = network.CreateEndpoint("a");
    auto b = network.CreateEndpoint("b");
    EchoHandler echo;
    (void)b->Serve(&echo);
    (void)a->Request("b", Bytes{});
    return clock.Now();
  };
  EXPECT_EQ(run(5), run(5));
}

// --- deadlines on the simulated network -------------------------------------------

TEST(SimDeadline, RequestFlightExceedingDeadlineTimesOut) {
  VirtualClock clock;
  // 10 ms one-way: a 5 ms deadline expires mid-request-flight.
  SimNetwork network(clock, LinkParams{.latency = 10 * kMilli});
  auto a = network.CreateEndpoint("a");
  auto b = network.CreateEndpoint("b");
  EchoHandler echo;
  ASSERT_TRUE(b->Serve(&echo).ok());

  auto reply = a->Request("b", Bytes{1}, CallOptions{5 * kMilli});
  EXPECT_EQ(reply.status().code(), StatusCode::kTimeout);
  // The caller waits exactly until the deadline, not until the message would
  // have landed.
  EXPECT_EQ(clock.Now(), 5 * kMilli);
  EXPECT_EQ(echo.calls, 0);
  EXPECT_GE(network.stats().timeouts, 1u);
}

TEST(SimDeadline, ReplyFlightExceedingDeadlineTimesOut) {
  VirtualClock clock;
  // Request (1 byte) is nearly free; the 1000-byte reply at 1000 B/s takes a
  // second, far past the 100 ms deadline. The handler runs; the caller still
  // gives up at the deadline.
  SimNetwork network(clock, LinkParams{.bandwidth_bytes_per_sec = 1000.0});
  auto a = network.CreateEndpoint("a");
  auto b = network.CreateEndpoint("b");
  EchoHandler echo;
  echo.suffix = Bytes(1000, 0);
  ASSERT_TRUE(b->Serve(&echo).ok());

  auto reply = a->Request("b", Bytes{1}, CallOptions{100 * kMilli});
  EXPECT_EQ(reply.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(clock.Now(), 100 * kMilli);
  EXPECT_EQ(echo.calls, 1);
}

TEST(SimDeadline, DefaultDeadlineAppliesAndNoDeadlineDisables) {
  VirtualClock clock;
  SimNetwork network(clock, LinkParams{.latency = 10 * kMilli});
  auto a = network.CreateEndpoint("a");
  auto b = network.CreateEndpoint("b");
  EchoHandler echo;
  ASSERT_TRUE(b->Serve(&echo).ok());

  a->SetDefaultDeadline(5 * kMilli);
  EXPECT_EQ(a->Request("b", Bytes{1}).status().code(), StatusCode::kTimeout);

  // An explicit unbounded deadline overrides the transport default.
  EXPECT_TRUE(a->Request("b", Bytes{1}, CallOptions{kNoDeadline}).ok());

  a->SetDefaultDeadline(kNoDeadline);
  EXPECT_TRUE(a->Request("b", Bytes{1}).ok());
}

TEST(SimDeadline, GenerousDeadlineDoesNotInterfere) {
  VirtualClock clock;
  SimNetwork network(clock, LinkParams{.latency = kMilli});
  auto a = network.CreateEndpoint("a");
  auto b = network.CreateEndpoint("b");
  EchoHandler echo;
  ASSERT_TRUE(b->Serve(&echo).ok());
  EXPECT_TRUE(a->Request("b", Bytes{1}, CallOptions{kSecond}).ok());
  EXPECT_EQ(clock.Now(), 2 * kMilli);  // full cost charged, no early cut
}

TEST(Loopback, IgnoresDeadlines) {
  LoopbackNetwork network;
  auto a = network.CreateEndpoint("a");
  auto b = network.CreateEndpoint("b");
  EchoHandler echo;
  ASSERT_TRUE(b->Serve(&echo).ok());
  // Zero-latency delivery beats any deadline, even a 1 ns one.
  EXPECT_TRUE(a->Request("b", Bytes{1}, CallOptions{1}).ok());
}

// --- reply framing --------------------------------------------------------------

TEST(Frame, OkRoundTrip) {
  Bytes payload{1, 2, 3};
  Bytes frame = EncodeReplyFrame(Result<Bytes>(payload));
  auto decoded = DecodeReplyFrame(AsView(frame));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, payload);
}

TEST(Frame, ErrorRoundTrip) {
  Bytes frame = EncodeReplyFrame(Result<Bytes>(ConflictError("boom")));
  auto decoded = DecodeReplyFrame(AsView(frame));
  EXPECT_EQ(decoded.status().code(), StatusCode::kConflict);
  EXPECT_EQ(decoded.status().message(), "boom");
}

TEST(Frame, EmptyFrameIsDataLoss) {
  EXPECT_EQ(DecodeReplyFrame({}).status().code(), StatusCode::kDataLoss);
}

TEST(Frame, ErrorFrameWithOkCodeRejected) {
  wire::Writer w;
  w.U8(0);
  w.Varint(0);  // claims "OK" inside an error frame
  w.String("");
  EXPECT_EQ(DecodeReplyFrame(AsView(w.data())).status().code(),
            StatusCode::kDataLoss);
}

}  // namespace
}  // namespace obiwan::net
