// Core replication protocol tests: the paper's prototypical example
// (Figure 1/2, §2.2) and the surrounding invariants.
#include <gtest/gtest.h>

#include "obiwan.h"
#include "test_objects.h"

namespace obiwan {
namespace {

using core::ReplicationMode;
using test::Node;

// Two loopback sites: S2 ("provider") masters the graph, S1 ("demander")
// replicates it — the setting of Figure 1.
class ReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    provider_ = std::make_unique<core::Site>(2, network_.CreateEndpoint("s2"));
    demander_ = std::make_unique<core::Site>(1, network_.CreateEndpoint("s1"));
    ASSERT_TRUE(provider_->Start().ok());
    ASSERT_TRUE(demander_->Start().ok());
    provider_->HostRegistry();
    demander_->UseRegistry("s2");
  }

  net::LoopbackNetwork network_;
  std::unique_ptr<core::Site> provider_;
  std::unique_ptr<core::Site> demander_;
};

TEST_F(ReplicationTest, PrototypicalExampleIncremental) {
  // Situation (a): S2 holds A -> B -> C; only A is registered.
  auto a = test::MakeChain(3, 16, "obj");
  ASSERT_TRUE(provider_->Bind("A", a).ok());

  auto remote = demander_->Lookup<Node>("A");
  ASSERT_TRUE(remote.ok()) << remote.status();

  // get(A, incremental): situation (b) — A' local, B behind a proxy-out.
  auto ref = remote->Replicate(ReplicationMode::Incremental(1));
  ASSERT_TRUE(ref.ok()) << ref.status();
  core::Ref<Node> a_prime = *ref;

  EXPECT_TRUE(a_prime.IsLocal());
  EXPECT_EQ(a_prime.get()->label, "obj0");
  EXPECT_EQ(demander_->replica_count(), 1u);
  EXPECT_TRUE(a_prime.get()->next.IsProxy());

  // First invocation through the boundary ref: object fault on B (situation
  // (c)) — resolved transparently, reference patched to the new replica.
  EXPECT_EQ(a_prime.get()->next->Label(), "obj1");
  EXPECT_TRUE(a_prime.get()->next.IsLocal());
  EXPECT_EQ(demander_->replica_count(), 2u);

  // After the fault, invocations are direct: no further gets occur.
  const auto gets_before = demander_->stats().gets_sent;
  EXPECT_EQ(a_prime.get()->next->Value(), 1);
  EXPECT_EQ(demander_->stats().gets_sent, gets_before);

  // C faults the same way through B'.
  EXPECT_EQ(a_prime.get()->next->next->Label(), "obj2");
  EXPECT_EQ(demander_->replica_count(), 3u);
  // End of chain: C's next is null.
  EXPECT_TRUE(a_prime.get()->next->next->next.IsEmpty());
}

TEST_F(ReplicationTest, RmiAndLmiCoexist) {
  auto a = test::MakeChain(1, 16, "x");
  a->value = 41;
  ASSERT_TRUE(provider_->Bind("A", a).ok());

  auto remote = demander_->Lookup<Node>("A");
  ASSERT_TRUE(remote.ok());

  // RMI on the master.
  auto v = remote->Invoke(&Node::Touch);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(a->value, 42);

  // LMI on a replica; the master reference stays usable (paper §2.1: "at any
  // time, both replicas, the master and the local, can be freely invoked").
  auto ref = remote->Replicate(ReplicationMode::Incremental(1));
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ((*ref)->Touch(), 43);  // local: does not touch the master
  EXPECT_EQ(a->value, 42);

  auto v2 = remote->Invoke(&Node::Value);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, 42);
}

TEST_F(ReplicationTest, PutUpdatesMaster) {
  auto a = test::MakeChain(1, 16, "x");
  ASSERT_TRUE(provider_->Bind("A", a).ok());

  auto remote = demander_->Lookup<Node>("A");
  ASSERT_TRUE(remote.ok());
  auto ref = remote->Replicate(ReplicationMode::Incremental(1));
  ASSERT_TRUE(ref.ok());

  (*ref)->SetLabel("updated");
  (*ref)->SetValue(99);
  ASSERT_TRUE(demander_->Put(*ref).ok());

  EXPECT_EQ(a->label, "updated");
  EXPECT_EQ(a->value, 99);
  auto version = provider_->MasterVersion(remote->id());
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 2u);
}

TEST_F(ReplicationTest, RefreshPullsMasterState) {
  auto a = test::MakeChain(1, 16, "x");
  ASSERT_TRUE(provider_->Bind("A", a).ok());

  auto remote = demander_->Lookup<Node>("A");
  ASSERT_TRUE(remote.ok());
  auto ref = remote->Replicate(ReplicationMode::Incremental(1));
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ((*ref)->label, "x0");

  a->label = "changed-at-master";
  ASSERT_TRUE(demander_->Refresh(*ref).ok());
  EXPECT_EQ((*ref)->label, "changed-at-master");
}

TEST_F(ReplicationTest, IncrementalBatchSizes) {
  constexpr int kLen = 10;
  auto head = test::MakeChain(kLen, 16, "n");
  ASSERT_TRUE(provider_->Bind("list", head).ok());

  auto remote = demander_->Lookup<Node>("list");
  ASSERT_TRUE(remote.ok());

  // Batch of 4: the first get brings nodes 0..3, the boundary ref to node 4
  // is a proxy.
  auto ref = remote->Replicate(ReplicationMode::Incremental(4));
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(demander_->replica_count(), 4u);

  // Traverse everything: two more faults (4..7, 8..9).
  core::Ref<Node>* cursor = &*ref;
  int sum = 0;
  while (!cursor->IsEmpty()) {
    sum += static_cast<int>((*cursor)->Value());
    cursor = &(*cursor)->next;
  }
  EXPECT_EQ(sum, kLen * (kLen - 1) / 2);
  EXPECT_EQ(demander_->replica_count(), 10u);
  EXPECT_EQ(demander_->stats().gets_sent, 3u);
}

TEST_F(ReplicationTest, TransitiveClosureReplicatesEverything) {
  auto head = test::MakeChain(25, 16, "n");
  ASSERT_TRUE(provider_->Bind("list", head).ok());

  auto remote = demander_->Lookup<Node>("list");
  ASSERT_TRUE(remote.ok());
  auto ref = remote->Replicate(ReplicationMode::Closure());
  ASSERT_TRUE(ref.ok());

  EXPECT_EQ(demander_->replica_count(), 25u);
  EXPECT_EQ(demander_->stats().gets_sent, 1u);

  // No proxies anywhere: the whole graph is colocated, usable offline.
  core::Ref<Node>* cursor = &*ref;
  while (!cursor->IsEmpty()) {
    EXPECT_TRUE(cursor->IsLocal());
    cursor = &cursor->get()->next;
  }
}

TEST_F(ReplicationTest, IdentityPreservedAcrossGets) {
  auto a = test::MakeChain(3, 16, "n");
  ASSERT_TRUE(provider_->Bind("A", a).ok());

  auto remote = demander_->Lookup<Node>("A");
  ASSERT_TRUE(remote.ok());

  auto ref1 = remote->Replicate(ReplicationMode::Incremental(1));
  ASSERT_TRUE(ref1.ok());
  auto ref2 = remote->Replicate(ReplicationMode::Closure());
  ASSERT_TRUE(ref2.ok());

  // One replica per master, ever: both refs resolve to the same object.
  EXPECT_EQ(ref1->get(), ref2->get());
  EXPECT_EQ(demander_->replica_count(), 3u);  // closure pulled B and C
}

TEST_F(ReplicationTest, SharedTargetSwizzlesToOneReplica) {
  // Diamond: root.left and root.right both point to the same child.
  auto root = std::make_shared<test::Pair>();
  root->name = "root";
  auto child = std::make_shared<test::Pair>();
  child->name = "child";
  root->left = child;
  root->right = child;
  ASSERT_TRUE(provider_->Bind("root", root).ok());

  auto remote = demander_->Lookup<test::Pair>("root");
  ASSERT_TRUE(remote.ok());
  auto ref = remote->Replicate(ReplicationMode::Closure());
  ASSERT_TRUE(ref.ok());

  EXPECT_EQ(demander_->replica_count(), 2u);
  EXPECT_EQ((*ref)->left.get(), (*ref)->right.get());
  EXPECT_EQ((*ref)->left->Name(), "child");
}

TEST_F(ReplicationTest, ClusterModeCreatesSingleProxyPair) {
  auto head = test::MakeChain(10, 16, "n");
  ASSERT_TRUE(provider_->Bind("list", head).ok());

  auto remote = demander_->Lookup<Node>("list");
  ASSERT_TRUE(remote.ok());

  const auto pins_before = provider_->stats().proxy_ins_created;
  auto ref = remote->Replicate(ReplicationMode::Cluster(5));
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(demander_->replica_count(), 5u);
  // Exactly two proxy-ins: the cluster pair plus the boundary ref to node 5.
  EXPECT_EQ(provider_->stats().proxy_ins_created - pins_before, 2u);

  // §4.3: cluster members "can not be individually updated".
  Status s = demander_->Put(*ref);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);

  // But the cluster as a whole can.
  (*ref)->SetLabel("cluster-edit");
  (*ref)->next->SetLabel("cluster-edit-2");
  ASSERT_TRUE(demander_->PutCluster(*ref).ok());
  EXPECT_EQ(head->label, "cluster-edit");
  EXPECT_EQ(head->next.get()->label, "cluster-edit-2");
}

TEST_F(ReplicationTest, ClusterDepthMode) {
  // Balanced binary tree of depth 3 (15 nodes) out of Pair.
  std::function<std::shared_ptr<test::Pair>(int, std::string)> build =
      [&](int depth, std::string name) -> std::shared_ptr<test::Pair> {
    auto n = std::make_shared<test::Pair>();
    n->name = name;
    if (depth > 0) {
      n->left = build(depth - 1, name + "L");
      n->right = build(depth - 1, name + "R");
    }
    return n;
  };
  auto root = build(3, "t");
  ASSERT_TRUE(provider_->Bind("tree", root).ok());

  auto remote = demander_->Lookup<test::Pair>("tree");
  ASSERT_TRUE(remote.ok());
  // Depth 1: root + its two children.
  auto ref = remote->Replicate(ReplicationMode::ClusterDepth(1));
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(demander_->replica_count(), 3u);
  EXPECT_TRUE((*ref)->left.IsLocal());
  EXPECT_TRUE((*ref)->left.get()->left.IsProxy());
}

TEST_F(ReplicationTest, FaultWhileDisconnectedSurfacesError) {
  auto head = test::MakeChain(3, 16, "n");
  ASSERT_TRUE(provider_->Bind("list", head).ok());

  auto remote = demander_->Lookup<Node>("list");
  ASSERT_TRUE(remote.ok());
  auto ref = remote->Replicate(ReplicationMode::Incremental(1));
  ASSERT_TRUE(ref.ok());

  // Sever the link by stopping the provider.
  provider_->Stop();

  // Colocated objects keep working (the disconnected-operation story)...
  EXPECT_EQ((*ref)->Label(), "n0");
  // ...but faulting on the boundary fails loudly.
  Status s = (*ref)->next.Demand();
  EXPECT_FALSE(s.ok());
  EXPECT_THROW((*ref)->next->Label(), core::ObjectFaultError);

  // Reconnect: the same proxy resolves.
  ASSERT_TRUE(provider_->Start().ok());
  EXPECT_EQ((*ref)->next->Label(), "n1");
}

TEST_F(ReplicationTest, PrefetchAllPinsGraphForOffline) {
  auto head = test::MakeChain(8, 16, "n");
  ASSERT_TRUE(provider_->Bind("list", head).ok());

  auto remote = demander_->Lookup<Node>("list");
  ASSERT_TRUE(remote.ok());
  auto ref = remote->Replicate(ReplicationMode::Incremental(2));
  ASSERT_TRUE(ref.ok());

  ASSERT_TRUE(demander_->PrefetchAll(*ref).ok());
  EXPECT_EQ(demander_->replica_count(), 8u);

  provider_->Stop();
  // Entire list usable offline.
  core::Ref<Node>* cursor = &*ref;
  int count = 0;
  while (!cursor->IsEmpty()) {
    cursor->get()->Touch();
    cursor = &cursor->get()->next;
    ++count;
  }
  EXPECT_EQ(count, 8);
}

TEST_F(ReplicationTest, PutChainBackWithNewObject) {
  auto head = test::MakeChain(2, 16, "n");
  ASSERT_TRUE(provider_->Bind("list", head).ok());

  auto remote = demander_->Lookup<Node>("list");
  ASSERT_TRUE(remote.ok());
  // Incremental: each replica gets its own proxy pair, so it is
  // individually updatable (closure-mode replicas would need PutCluster).
  auto ref = remote->Replicate(ReplicationMode::Incremental(10));
  ASSERT_TRUE(ref.ok());

  // Grow the replica graph with an object mastered at the demander.
  auto fresh = std::make_shared<Node>();
  fresh->label = "fresh";
  (*ref)->next->next = fresh;
  ASSERT_TRUE(demander_->Put((*ref)->next).ok());

  // The master's tail now reaches the new object — through a proxy back to
  // the demander (graphs may span sites in both directions).
  core::Ref<Node>& master_tail_next = head->next.get()->next;
  ASSERT_FALSE(master_tail_next.IsEmpty());
  EXPECT_EQ(master_tail_next->Label(), "fresh");
}

TEST_F(ReplicationTest, StatsCountFaults) {
  auto head = test::MakeChain(6, 16, "n");
  ASSERT_TRUE(provider_->Bind("list", head).ok());

  auto remote = demander_->Lookup<Node>("list");
  ASSERT_TRUE(remote.ok());
  auto ref = remote->Replicate(ReplicationMode::Incremental(2));
  ASSERT_TRUE(ref.ok());

  core::Ref<Node>* cursor = &*ref;
  while (!cursor->IsEmpty()) cursor = &(*cursor)->next;

  // 6 nodes in batches of 2: the initial get (not a fault) plus 2 faults.
  EXPECT_EQ(demander_->stats().object_faults, 2u);
  EXPECT_EQ(demander_->stats().gets_sent, 3u);
  EXPECT_EQ(demander_->stats().replicas_created, 6u);
}

}  // namespace
}  // namespace obiwan
