// obicomp (the class compiler) tests: parser, type mapping, emitter, and an
// end-to-end check that a generated class actually replicates.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "generated/task.obi.h"
#include "obicomp/idl.h"
#include "obiwan.h"

namespace obiwan::obicomp {
namespace {

constexpr std::string_view kSample = R"(
# comment
class Entry {
  field string when;
  field bool done;
  field list<i32> scores;
  ref Entry next;
  method string Describe() const;
  method void Reschedule(string new_when);
  method i64 Sum(i64 a, i64 b);
}
)";

TEST(IdlParser, ParsesFullClass) {
  auto file = ParseIdl(kSample);
  ASSERT_TRUE(file.ok()) << file.status();
  ASSERT_EQ(file->classes.size(), 1u);
  const IdlClass& cls = file->classes[0];
  EXPECT_EQ(cls.name, "Entry");
  ASSERT_EQ(cls.fields.size(), 3u);
  EXPECT_EQ(cls.fields[0].type, "string");
  EXPECT_EQ(cls.fields[0].name, "when");
  EXPECT_EQ(cls.fields[2].type, "list<i32>");
  ASSERT_EQ(cls.refs.size(), 1u);
  EXPECT_EQ(cls.refs[0].target, "Entry");
  ASSERT_EQ(cls.methods.size(), 3u);
  EXPECT_EQ(cls.methods[0].name, "Describe");
  EXPECT_TRUE(cls.methods[0].is_const);
  EXPECT_EQ(cls.methods[0].return_type, "string");
  EXPECT_EQ(cls.methods[1].return_type, "void");
  EXPECT_FALSE(cls.methods[1].is_const);
  ASSERT_EQ(cls.methods[2].params.size(), 2u);
  EXPECT_EQ(cls.methods[2].params[1].name, "b");
}

TEST(IdlParser, MultipleClasses) {
  auto file = ParseIdl("class A { ref B other; }\nclass B { field i32 x; }");
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->classes.size(), 2u);
}

TEST(IdlParser, ErrorsCarryLineNumbers) {
  auto file = ParseIdl("class A {\n  field string;\n}");
  ASSERT_FALSE(file.ok());
  EXPECT_NE(file.status().message().find("line 2"), std::string::npos);
}

TEST(IdlParser, RejectsGarbage) {
  EXPECT_FALSE(ParseIdl("").ok());
  EXPECT_FALSE(ParseIdl("klass A {}").ok());
  EXPECT_FALSE(ParseIdl("class A { banana string x; }").ok());
  EXPECT_FALSE(ParseIdl("class A { field string x }").ok());  // missing ';'
  EXPECT_FALSE(ParseIdl("class A { method foo(); }").ok());   // missing ret+name
  EXPECT_FALSE(ParseIdl("class A { field list<i32 x; }").ok());
  EXPECT_FALSE(ParseIdl("class $ {}").ok());
}

TEST(TypeMapping, ScalarsAndLists) {
  EXPECT_EQ(*CppTypeOf("bool"), "bool");
  EXPECT_EQ(*CppTypeOf("i64"), "std::int64_t");
  EXPECT_EQ(*CppTypeOf("u16"), "std::uint16_t");
  EXPECT_EQ(*CppTypeOf("f64"), "double");
  EXPECT_EQ(*CppTypeOf("string"), "std::string");
  EXPECT_EQ(*CppTypeOf("bytes"), "obiwan::Bytes");
  EXPECT_EQ(*CppTypeOf("list<string>"), "std::vector<std::string>");
  EXPECT_EQ(*CppTypeOf("list<list<i32>>"),
            "std::vector<std::vector<std::int32_t>>");
  EXPECT_FALSE(CppTypeOf("int").ok());
  EXPECT_FALSE(CppTypeOf("list<banana>").ok());
}

TEST(Emitter, GeneratesExpectedPieces) {
  auto file = ParseIdl(kSample);
  ASSERT_TRUE(file.ok());
  auto header = GenerateHeader(*file, "sample.obi");
  ASSERT_TRUE(header.ok()) << header.status();
  const std::string& h = *header;
  EXPECT_NE(h.find("class Entry : public obiwan::core::Shareable"),
            std::string::npos);
  EXPECT_NE(h.find("OBIWAN_SHAREABLE(Entry)"), std::string::npos);
  EXPECT_NE(h.find("std::string when{};"), std::string::npos);
  EXPECT_NE(h.find("std::vector<std::int32_t> scores{};"), std::string::npos);
  EXPECT_NE(h.find("obiwan::core::Ref<Entry> next;"), std::string::npos);
  EXPECT_NE(h.find("std::string Describe() const;"), std::string::npos);
  EXPECT_NE(h.find("void Reschedule(std::string new_when);"), std::string::npos);
  EXPECT_NE(h.find(".Field(\"when\", &Entry::when)"), std::string::npos);
  EXPECT_NE(h.find(".Ref(\"next\", &Entry::next)"), std::string::npos);
  EXPECT_NE(h.find(".Method(\"Sum\", &Entry::Sum)"), std::string::npos);
}

TEST(Emitter, UnknownTypeSurfacesError) {
  auto file = ParseIdl("class A { field widget x; }");
  ASSERT_TRUE(file.ok());  // parse is syntactic; types checked at emit
  EXPECT_FALSE(GenerateHeader(*file, "a.obi").ok());
}

// Golden check: the checked-in generated header matches what obicomp emits
// for tests/testdata/task.obi today (catches emitter drift).
TEST(Emitter, GoldenFileIsCurrent) {
  auto read = [](const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  std::string source = read(std::string(OBIWAN_TEST_DIR) + "/testdata/task.obi");
  std::string golden = read(std::string(OBIWAN_TEST_DIR) + "/generated/task.obi.h");
  auto file = ParseIdl(source);
  ASSERT_TRUE(file.ok()) << file.status();
  auto header = GenerateHeader(*file, "tests/testdata/task.obi");
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(*header, golden)
      << "regenerate with: obicomp tests/testdata/task.obi -o "
         "tests/generated/task.obi.h";
}

// End-to-end: the generated Task/TaskBoard classes replicate like any
// hand-written shareable class.
TEST(GeneratedClass, ReplicatesEndToEnd) {
  net::LoopbackNetwork network;
  core::Site provider(2, network.CreateEndpoint("s2"));
  core::Site demander(1, network.CreateEndpoint("s1"));
  ASSERT_TRUE(provider.Start().ok());
  ASSERT_TRUE(demander.Start().ok());
  provider.HostRegistry();
  demander.UseRegistry("s2");

  auto board = std::make_shared<TaskBoard>();
  board->owner = "luis";
  auto task = std::make_shared<Task>();
  task->title = "write the ICDCS camera-ready";
  task->priority = 3;
  task->tags = {"paper", "deadline"};
  auto sub = std::make_shared<Task>();
  sub->title = "fix figure 5";
  task->subtask = sub;
  board->first = task;

  ASSERT_TRUE(provider.Bind("board", board).ok());

  auto remote = demander.Lookup<TaskBoard>("board");
  ASSERT_TRUE(remote.ok());

  // RMI on a generated method.
  auto owner = remote->Invoke(&TaskBoard::Owner);
  ASSERT_TRUE(owner.ok());
  EXPECT_EQ(*owner, "luis");

  // Incremental replication with an object fault on the subtask.
  auto ref = remote->Replicate(core::ReplicationMode::Incremental(2));
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ((*ref)->first->Title(), "write the ICDCS camera-ready");
  EXPECT_EQ((*ref)->first->subtask->Title(), "fix figure 5");
  EXPECT_EQ((*ref)->first->TagsMatching("pa"), std::vector<std::string>{"paper"});

  // Local edit + put — including the generated enum field.
  (*ref)->first->Complete();
  (*ref)->first->Escalate(2);
  (*ref)->first->urgency = Urgency::high;
  ASSERT_TRUE(demander.Put((*ref)->first).ok());
  EXPECT_TRUE(task->done);
  EXPECT_EQ(task->priority, 5);
  EXPECT_EQ(task->urgency, Urgency::high);
}

TEST(IdlParser, EnumsAndDefaults) {
  auto file = ParseIdl(R"(
enum Color { red, green, blue }
class Pixel {
  field Color color = blue;
  field i32 x = -7;
  field bool visible = true;
  method Color GetColor() const;
  method void Paint(Color c);
}
)");
  ASSERT_TRUE(file.ok()) << file.status();
  ASSERT_EQ(file->enums.size(), 1u);
  EXPECT_EQ(file->enums[0].name, "Color");
  EXPECT_EQ(file->enums[0].values,
            (std::vector<std::string>{"red", "green", "blue"}));
  const IdlClass& cls = file->classes[0];
  EXPECT_EQ(cls.fields[0].default_value, "blue");
  EXPECT_EQ(cls.fields[1].default_value, "-7");
  EXPECT_EQ(cls.fields[2].default_value, "true");

  auto header = GenerateHeader(*file, "pixel.obi");
  ASSERT_TRUE(header.ok()) << header.status();
  EXPECT_NE(header->find("enum class Color : std::uint8_t"), std::string::npos);
  EXPECT_NE(header->find("Color color{Color::blue};"), std::string::npos);
  EXPECT_NE(header->find("std::int32_t x{-7};"), std::string::npos);
  EXPECT_NE(header->find("bool visible{true};"), std::string::npos);
  EXPECT_NE(header->find("Color GetColor() const;"), std::string::npos);
  EXPECT_NE(header->find("void Paint(Color c);"), std::string::npos);
  EXPECT_NE(header->find("r.Fail(\"out-of-range Color\")"), std::string::npos);
}

TEST(IdlParser, EnumErrors) {
  EXPECT_FALSE(ParseIdl("enum E { }").ok());                // empty
  EXPECT_FALSE(ParseIdl("enum E { a b }").ok());            // missing comma
  EXPECT_FALSE(ParseIdl("class C { field Rainbow x; }").ok() &&
               GenerateHeader(*ParseIdl("class C { field Rainbow x; }"), "x")
                   .ok());  // unknown enum type surfaces at emit
}

TEST(GeneratedClass, EnumRoundTripsOnTheWire) {
  // The generated codec range-checks hostile values.
  wire::Writer w;
  wire::Encode(w, Urgency::high);
  wire::Reader r(AsView(w.data()));
  EXPECT_EQ(wire::Decode<Urgency>(r), Urgency::high);
  EXPECT_TRUE(r.ok());

  wire::Writer bad;
  bad.Varint(250);
  wire::Reader br(AsView(bad.data()));
  (void)wire::Decode<Urgency>(br);
  EXPECT_FALSE(br.ok());
}

}  // namespace
}  // namespace obiwan::obicomp
