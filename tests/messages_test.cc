// Replication-protocol message codecs: full-fidelity roundtrips and rejection
// of malformed encodings.
#include <gtest/gtest.h>

#include "core/messages.h"
#include "rmi/call.h"
#include "rmi/protocol.h"

namespace obiwan::core {
namespace {

template <typename T>
T RoundTrip(const T& v) {
  wire::Writer w;
  wire::Encode(w, v);
  wire::Reader r(AsView(w.data()));
  T out = wire::Decode<T>(r);
  EXPECT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r.AtEnd());
  return out;
}

ProxyDescriptor SampleDescriptor() {
  return ProxyDescriptor{{2, 9}, "site-s2", {2, 41}, "Node"};
}

TEST(MessageCodec, ProxyDescriptor) {
  ProxyDescriptor d = SampleDescriptor();
  ProxyDescriptor out = RoundTrip(d);
  EXPECT_EQ(out, d);
  EXPECT_TRUE(out.valid());
  EXPECT_FALSE(ProxyDescriptor{}.valid());
}

TEST(MessageCodec, RefEntryVariants) {
  RefEntry null = RoundTrip(RefEntry::Null());
  EXPECT_EQ(null.tag, RefEntry::Tag::kNull);

  RefEntry inline_entry = RoundTrip(RefEntry::Inline({2, 5}));
  EXPECT_EQ(inline_entry.tag, RefEntry::Tag::kInline);
  EXPECT_EQ(inline_entry.target, (ObjectId{2, 5}));

  RefEntry proxy = RoundTrip(RefEntry::Proxy(SampleDescriptor()));
  EXPECT_EQ(proxy.tag, RefEntry::Tag::kProxy);
  EXPECT_EQ(proxy.proxy, SampleDescriptor());
  // Decoding derives `target` from the descriptor.
  EXPECT_EQ(proxy.target, SampleDescriptor().target);
}

TEST(MessageCodec, RefEntryBadTagRejected) {
  wire::Writer w;
  w.U8(9);
  wire::Reader r(AsView(w.data()));
  (void)wire::Decode<RefEntry>(r);
  EXPECT_FALSE(r.ok());
}

TEST(MessageCodec, ObjectRecordFull) {
  ObjectRecord rec;
  rec.id = {2, 41};
  rec.class_name = "Agenda";
  rec.version = 17;
  rec.policy_data = {9, 9};
  rec.fields = {1, 2, 3, 4};
  rec.refs = {RefEntry::Null(), RefEntry::Inline({2, 42}),
              RefEntry::Proxy(SampleDescriptor())};
  rec.provider = SampleDescriptor();

  ObjectRecord out = RoundTrip(rec);
  EXPECT_EQ(out.id, rec.id);
  EXPECT_EQ(out.class_name, "Agenda");
  EXPECT_EQ(out.version, 17u);
  EXPECT_EQ(out.policy_data, rec.policy_data);
  EXPECT_EQ(out.fields, rec.fields);
  ASSERT_EQ(out.refs.size(), 3u);
  EXPECT_EQ(out.refs[2].proxy, SampleDescriptor());
  EXPECT_EQ(out.provider, rec.provider);
}

TEST(MessageCodec, ObjectRecordWithoutProvider) {
  ObjectRecord rec;
  rec.id = {2, 41};
  rec.class_name = "Agenda";
  ObjectRecord out = RoundTrip(rec);
  EXPECT_FALSE(out.provider.valid());
}

TEST(MessageCodec, GetRequestAllModes) {
  for (ReplicationMode mode :
       {ReplicationMode::Incremental(7), ReplicationMode::Cluster(100),
        ReplicationMode::ClusterDepth(3), ReplicationMode::Closure()}) {
    GetRequest req{{2, 9}, {2, 41}, mode, true};
    GetRequest out = RoundTrip(req);
    EXPECT_EQ(out.pin, req.pin);
    EXPECT_EQ(out.root, req.root);
    EXPECT_EQ(out.mode, mode);
    EXPECT_TRUE(out.refresh);
  }
}

TEST(MessageCodec, BadModeRejected) {
  wire::Writer w;
  w.U8(250);
  w.Varint(1);
  w.Varint(0);
  wire::Reader r(AsView(w.data()));
  (void)wire::Decode<ReplicationMode>(r);
  EXPECT_FALSE(r.ok());
}

TEST(MessageCodec, GetReplyWithCluster) {
  GetReply reply;
  ObjectRecord rec;
  rec.id = {2, 1};
  rec.class_name = "Node";
  reply.objects.push_back(rec);
  reply.cluster = ClusterInfo{SampleDescriptor(), {{2, 1}, {2, 2}}};

  GetReply out = RoundTrip(reply);
  ASSERT_EQ(out.objects.size(), 1u);
  ASSERT_TRUE(out.cluster.has_value());
  EXPECT_EQ(out.cluster->provider, SampleDescriptor());
  EXPECT_EQ(out.cluster->members.size(), 2u);

  reply.cluster.reset();
  EXPECT_FALSE(RoundTrip(reply).cluster.has_value());
}

TEST(MessageCodec, PutRequestRoundTrip) {
  PutRequest req;
  req.pin = {2, 9};
  req.transactional = true;
  PutItem item;
  item.id = {2, 41};
  item.base_version = 3;
  item.read_only = true;
  item.policy_data = {7};
  item.fields = {1, 2};
  item.refs = {RefEntry::Inline({2, 42})};
  req.items.push_back(item);

  PutRequest out = RoundTrip(req);
  EXPECT_TRUE(out.transactional);
  ASSERT_EQ(out.items.size(), 1u);
  EXPECT_TRUE(out.items[0].read_only);
  EXPECT_EQ(out.items[0].base_version, 3u);
  EXPECT_EQ(out.items[0].refs[0].target, (ObjectId{2, 42}));
}

TEST(MessageCodec, PutReplyAndInvalidate) {
  PutReply reply{{4, 5, 6}};
  EXPECT_EQ(RoundTrip(reply).new_versions, (std::vector<std::uint64_t>{4, 5, 6}));
  InvalidateRequest inv{{{1, 2}, {3, 4}}};
  EXPECT_EQ(RoundTrip(inv).ids.size(), 2u);
}

TEST(MessageCodec, CallRequestEnvelope) {
  rmi::CallRequest call{{2, 41}, "Describe", {1, 2, 3}};
  Bytes encoded = rmi::EncodeCall(call);

  auto parsed = rmi::ParseRequest(AsView(encoded));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->kind, rmi::MessageKind::kCall);

  wire::Reader body(parsed->body);
  auto decoded = rmi::DecodeCall(body);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->target, call.target);
  EXPECT_EQ(decoded->method, "Describe");
  EXPECT_EQ(decoded->args, call.args);
}

TEST(MessageCodec, EnvelopeRejectsBadKinds) {
  EXPECT_FALSE(rmi::ParseRequest({}).ok());
  Bytes zero{0};
  EXPECT_FALSE(rmi::ParseRequest(AsView(zero)).ok());
  Bytes high{200};
  EXPECT_FALSE(rmi::ParseRequest(AsView(high)).ok());
  Bytes valid{static_cast<std::uint8_t>(rmi::MessageKind::kPing)};
  auto parsed = rmi::ParseRequest(AsView(valid));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->body.empty());
}

}  // namespace
}  // namespace obiwan::core
