// Replication introspection: report structure, wire round-trip, snapshot
// identity, remote pulls through kInspect, staleness gauges across a
// disconnection window, and the flight-dump state embedding.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/flight_recorder.h"
#include "obiwan.h"
#include "test_objects.h"

namespace obiwan {
namespace {

using core::InspectEntry;
using core::InspectReport;
using core::ReplicationMode;
using test::Node;

const InspectEntry* FindEntry(const InspectReport& report, ObjectId id) {
  for (const InspectEntry& e : report.objects) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

// Largest value among gauge series of `name` whose DumpText line contains
// every substring in `having` (e.g. site="2", agg="max"). Dead sites zero
// their gauges in ~Site, so the live site's series dominates the max.
std::int64_t MaxGauge(const std::string& name,
                      const std::vector<std::string>& having) {
  const std::string text = MetricsRegistry::Default().DumpText();
  std::int64_t best = 0;
  bool found = false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.find(name + "{") == std::string::npos &&
        line.find(name + " ") == std::string::npos) {
      continue;
    }
    bool all = true;
    for (const std::string& h : having) {
      if (line.find(h) == std::string::npos) all = false;
    }
    if (!all) continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    const std::int64_t v = std::stoll(line.substr(space + 1));
    best = found ? std::max(best, v) : v;
    found = true;
  }
  return best;
}

TEST(InspectCodec, ReportRoundTripsOverWire) {
  InspectReport report;
  report.site = 7;
  report.address = "pda";
  report.now = 123456789;
  report.masters = 2;
  report.replicas = 1;
  report.proxy_ins = 3;
  report.frontier = 1;

  InspectEntry master;
  master.id = ObjectId{7, 1};
  master.master = true;
  master.class_name = "Node";
  master.local_version = 5;
  master.known_master_version = 5;
  master.age = 1000;
  master.payload_bytes = 64;
  master.faults = 2;
  master.puts = 3;
  master.holders = 1;
  master.edges.push_back({ObjectId{7, 2}, false, "Node"});
  report.objects.push_back(master);

  InspectEntry replica;
  replica.id = ObjectId{1, 9};
  replica.class_name = "Node";
  replica.local_version = 2;
  replica.known_master_version = 4;
  replica.stale = true;
  replica.in_cluster = true;
  replica.staleness_versions = 2;
  replica.age = -1;  // Svarint field: negative must survive
  replica.edges.push_back({ObjectId{1, 10}, true, "Node"});
  report.objects.push_back(replica);

  core::InspectPin pin;
  pin.pin = ProxyId{7, 4};
  pin.target = ObjectId{7, 1};
  pin.anchored = true;
  pin.lease_remaining = -1;
  report.pins.push_back(pin);

  wire::Writer w;
  wire::Encode(w, report);
  wire::Reader r(AsView(w.data()));
  const InspectReport back = wire::Decode<InspectReport>(r);
  ASSERT_TRUE(r.status().ok());
  EXPECT_TRUE(r.AtEnd());

  // Field-for-field identity is what the renderers rely on, so compare the
  // rendered forms (covers every field the codec carries).
  EXPECT_EQ(core::ToJson(report), core::ToJson(back));
  EXPECT_EQ(core::ToText(report), core::ToText(back));
  EXPECT_EQ(core::FrontierDot(report), core::FrontierDot(back));
  EXPECT_EQ(core::FrontierJson(report), core::FrontierJson(back));
}

class InspectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    provider_ = std::make_unique<core::Site>(1, network_.CreateEndpoint("p"),
                                             clock_);
    demander_ = std::make_unique<core::Site>(2, network_.CreateEndpoint("d"),
                                             clock_);
    ASSERT_TRUE(provider_->Start().ok());
    ASSERT_TRUE(demander_->Start().ok());
    provider_->HostRegistry();
    demander_->UseRegistry("p");
  }

  core::Ref<Node> Replicate(const std::string& name, ReplicationMode mode) {
    auto remote = demander_->Lookup<Node>(name);
    EXPECT_TRUE(remote.ok());
    auto ref = remote->Replicate(mode);
    EXPECT_TRUE(ref.ok());
    return *ref;
  }

  VirtualClock clock_;
  net::LoopbackNetwork network_;
  std::unique_ptr<core::Site> provider_;
  std::unique_ptr<core::Site> demander_;
};

TEST_F(InspectTest, ReportCoversRolesEdgesAndPins) {
  auto head = test::MakeChain(3, 32, "n");
  ASSERT_TRUE(provider_->Bind("list", head).ok());
  auto ref = Replicate("list", ReplicationMode::Incremental(2));

  InspectReport at_provider = provider_->Inspect();
  EXPECT_EQ(at_provider.site, 1u);
  EXPECT_EQ(at_provider.address, "p");
  EXPECT_EQ(at_provider.masters, 3u);
  EXPECT_EQ(at_provider.replicas, 0u);
  EXPECT_EQ(at_provider.objects.size(), 3u);
  const InspectEntry* master = FindEntry(at_provider, ref.id());
  ASSERT_NE(master, nullptr);
  EXPECT_TRUE(master->master);
  EXPECT_FALSE(master->class_name.empty());
  EXPECT_EQ(master->local_version, 1u);
  EXPECT_EQ(master->known_master_version, 1u);
  EXPECT_EQ(master->holders, 1u);  // the demander registered as holder
  EXPECT_GE(master->faults, 1u);   // served the replication get
  EXPECT_GT(master->payload_bytes, 0u);
  ASSERT_EQ(master->edges.size(), 1u);
  EXPECT_FALSE(master->edges[0].proxy);  // masters hold the real next node

  // The bind pin is anchored and unleased; replication added more pins.
  EXPECT_GE(at_provider.proxy_ins, 1u);
  EXPECT_EQ(at_provider.pins.size(), at_provider.proxy_ins);
  bool anchored = false;
  for (const auto& pin : at_provider.pins) {
    if (pin.anchored) {
      anchored = true;
      EXPECT_EQ(pin.lease_remaining, -1);
    }
  }
  EXPECT_TRUE(anchored);

  InspectReport at_demander = demander_->Inspect();
  EXPECT_EQ(at_demander.site, 2u);
  EXPECT_EQ(at_demander.masters, 0u);
  EXPECT_EQ(at_demander.replicas, 2u);
  EXPECT_EQ(at_demander.frontier, 1u);  // node 2 is an unresolved proxy-out
  const InspectEntry* replica = FindEntry(at_demander, ref.id());
  ASSERT_NE(replica, nullptr);
  EXPECT_FALSE(replica->master);
  EXPECT_EQ(replica->local_version, 1u);
  EXPECT_EQ(replica->staleness_versions, 0u);
  EXPECT_GE(replica->faults, 1u);  // the initial fetch
  bool frontier_edge = false;
  for (const InspectEntry& e : at_demander.objects) {
    for (const auto& edge : e.edges) {
      if (edge.proxy) frontier_edge = true;
    }
  }
  EXPECT_TRUE(frontier_edge);

  // Renderers carry the schema bits tools/ci.sh checks.
  const std::string json = core::ToJson(at_demander);
  EXPECT_NE(json.find("\"site\":2"), std::string::npos);
  EXPECT_NE(json.find("\"role\":\"replica\""), std::string::npos);
  EXPECT_NE(json.find("\"summary\""), std::string::npos);
  const std::string dot = core::FrontierDot(at_demander);
  EXPECT_NE(dot.find("digraph obiwan_frontier"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  const std::string fj = core::FrontierJson(at_demander);
  EXPECT_NE(fj.find("\"nodes\":["), std::string::npos);
  EXPECT_NE(fj.find("\"role\":\"frontier\""), std::string::npos);
  EXPECT_NE(core::ToText(at_demander).find("replica"), std::string::npos);
}

TEST_F(InspectTest, RemoteInspectMatchesLocalReport) {
  auto head = test::MakeChain(2, 32, "n");
  ASSERT_TRUE(provider_->Bind("list", head).ok());
  auto ref = Replicate("list", ReplicationMode::Incremental(1));
  (void)ref;

  auto remote = provider_->InspectRemote("d");
  ASSERT_TRUE(remote.ok()) << remote.status();
  // The loopback network charges nothing to the virtual clock, so the remote
  // pull and a local report are byte-identical.
  EXPECT_EQ(core::ToJson(*remote), core::ToJson(demander_->Inspect()));
  EXPECT_EQ(remote->site, 2u);
  EXPECT_EQ(remote->replicas, 1u);
}

TEST_F(InspectTest, SnapshotRoundTripPreservesTheReport) {
  auto head = test::MakeChain(4, 32, "n");
  ASSERT_TRUE(provider_->Bind("list", head).ok());
  {
    auto ref = Replicate("list", ReplicationMode::Incremental(2));
    ref->SetLabel("edited-offline");
  }

  InspectReport before = demander_->Inspect();
  auto snapshot = demander_->SaveSnapshot();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  demander_->Stop();
  demander_.reset();  // frees the "d" endpoint for the reborn site

  core::Site reborn(2, network_.CreateEndpoint("d"), clock_);
  ASSERT_TRUE(reborn.LoadSnapshot(AsView(*snapshot)).ok());
  InspectReport after = reborn.Inspect();

  // Introspection state — versions, staleness counters, sync times, edge
  // topology, pins — is part of what a snapshot preserves, so the restored
  // site's report is identical (the virtual clock did not move).
  EXPECT_EQ(core::ToJson(before), core::ToJson(after));
  EXPECT_EQ(core::ToText(before), core::ToText(after));
  EXPECT_EQ(core::FrontierDot(before), core::FrontierDot(after));
}

TEST(InspectFlightDump, DumpEmbedsReplicaTableSummary) {
  VirtualClock clock;
  net::LoopbackNetwork network;
  core::Site provider(1, network.CreateEndpoint("p"), clock);
  core::Site demander(2, network.CreateEndpoint("d"), clock);
  ASSERT_TRUE(provider.Start().ok());
  ASSERT_TRUE(demander.Start().ok());
  provider.HostRegistry();
  demander.UseRegistry("p");

  auto head = test::MakeChain(2, 32, "n");
  ASSERT_TRUE(provider.Bind("list", head).ok());
  auto remote = demander.Lookup<Node>("list");
  ASSERT_TRUE(remote.ok());
  auto ref = remote->Replicate(ReplicationMode::Incremental(2));
  ASSERT_TRUE(ref.ok());

  // Every live site contributes a state summary to the merged dump.
  const std::string dump = FlightRecorder::Global().ChromeTraceJson();
  EXPECT_NE(dump.find("\"otherData\""), std::string::npos);
  EXPECT_NE(dump.find("\"site 1 state\""), std::string::npos);
  EXPECT_NE(dump.find("\"site 2 state\""), std::string::npos);
  EXPECT_NE(dump.find("\"rows\""), std::string::npos);

  // The summary itself is bounded, valid JSON with the table counts.
  const std::string summary = demander.ReplicaSummaryJson();
  EXPECT_NE(summary.find("\"replicas\":2"), std::string::npos);
  EXPECT_NE(summary.find("\"truncated\":false"), std::string::npos);
}

class StalenessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<net::SimNetwork>(clock_, net::kPaperLan);
    office_ = std::make_unique<core::Site>(1, network_->CreateEndpoint("office"),
                                           clock_);
    pda_ = std::make_unique<core::Site>(2, network_->CreateEndpoint("pda"),
                                        clock_);
    ASSERT_TRUE(office_->Start().ok());
    ASSERT_TRUE(pda_->Start().ok());
    office_->HostRegistry();
    pda_->UseRegistry("office");
  }

  VirtualClock clock_;
  std::unique_ptr<net::SimNetwork> network_;
  std::unique_ptr<core::Site> office_;
  std::unique_ptr<core::Site> pda_;
};

TEST_F(StalenessTest, GaugesRiseAcrossDisconnectionAndResetAfterRefresh) {
  auto head = test::MakeChain(2, 32, "n");
  ASSERT_TRUE(office_->Bind("list", head).ok());
  auto remote = pda_->Lookup<Node>("list");
  ASSERT_TRUE(remote.ok());
  auto ref = remote->Replicate(ReplicationMode::Incremental(1));
  ASSERT_TRUE(ref.ok());

  // Fresh replica: in sync, nothing stale on the gauges.
  {
    InspectReport r = pda_->Inspect();
    const InspectEntry* e = FindEntry(r, ref->id());
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->staleness_versions, 0u);
    EXPECT_FALSE(e->stale);
  }
  EXPECT_EQ(MaxGauge("obiwan_replica_staleness_versions",
                     {"site=\"2\"", "agg=\"max\""}),
            0);

  // The office edits the master locally; the versioned invalidation reaches
  // the PDA while the link is still up, so the PDA knows exactly how far
  // behind it is.
  head->value = 42;
  ASSERT_TRUE(office_->MarkMasterUpdated(ref->id()).ok());
  {
    InspectReport r = pda_->Inspect();
    const InspectEntry* e = FindEntry(r, ref->id());
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->stale);
    EXPECT_EQ(e->local_version, 1u);
    EXPECT_EQ(e->known_master_version, 2u);
    EXPECT_EQ(e->staleness_versions, 1u);
  }
  EXPECT_EQ(MaxGauge("obiwan_replica_staleness_versions",
                     {"site=\"2\"", "agg=\"max\""}),
            1);

  // Into the tunnel: the disconnection window. Time passes; a refresh
  // attempt fails and the staleness age keeps growing.
  network_->SetEndpointUp("pda", false);
  clock_.Sleep(5 * kSecond);
  EXPECT_FALSE(pda_->Refresh(*ref).ok());
  EXPECT_GE(MaxGauge("obiwan_replica_staleness_age_ns", {"site=\"2\""}),
            5 * kSecond);

  // Acceptance scenario: back in coverage, the office pulls the PDA's report
  // remotely and sees the replica >= 1 version stale with nonzero age —
  // before the PDA has refreshed.
  network_->SetEndpointUp("pda", true);
  auto seen = office_->InspectRemote("pda");
  ASSERT_TRUE(seen.ok()) << seen.status();
  const InspectEntry* stale_entry = FindEntry(*seen, ref->id());
  ASSERT_NE(stale_entry, nullptr);
  EXPECT_FALSE(stale_entry->master);
  EXPECT_GE(stale_entry->staleness_versions, 1u);
  EXPECT_GT(stale_entry->age, 0);

  // Refresh resynchronises: staleness collapses to zero, in report and gauge.
  ASSERT_TRUE(pda_->Refresh(*ref).ok());
  EXPECT_EQ((*ref)->Value(), 42);
  {
    InspectReport r = pda_->Inspect();
    const InspectEntry* e = FindEntry(r, ref->id());
    ASSERT_NE(e, nullptr);
    EXPECT_FALSE(e->stale);
    EXPECT_EQ(e->local_version, 2u);
    EXPECT_EQ(e->staleness_versions, 0u);
  }
  EXPECT_EQ(MaxGauge("obiwan_replica_staleness_versions",
                     {"site=\"2\"", "agg=\"max\""}),
            0);
}

TEST_F(StalenessTest, RoleGaugesTrackTheTables) {
  auto head = test::MakeChain(3, 32, "n");
  ASSERT_TRUE(office_->Bind("list", head).ok());
  auto remote = pda_->Lookup<Node>("list");
  ASSERT_TRUE(remote.ok());
  auto ref = remote->Replicate(ReplicationMode::Incremental(2));
  ASSERT_TRUE(ref.ok());

  // Inspect refreshes the gauges on both sides.
  office_->Inspect();
  pda_->Inspect();
  EXPECT_EQ(MaxGauge("obiwan_objects", {"site=\"1\"", "role=\"master\""}), 3);
  EXPECT_EQ(MaxGauge("obiwan_objects", {"site=\"2\"", "role=\"replica\""}), 2);
  EXPECT_EQ(MaxGauge("obiwan_objects", {"site=\"2\"", "role=\"frontier\""}), 1);
}

TEST_F(StalenessTest, MarkMasterUpdatedRejectsUnknownObjects) {
  EXPECT_FALSE(office_->MarkMasterUpdated(ObjectId{1, 999}).ok());
}

}  // namespace
}  // namespace obiwan
