// Parameterized behaviour-model sweeps: for every (mode, batch, list length,
// payload) combination, the protocol's observable counters must follow the
// cost model the paper's evaluation is built on:
//   - number of gets = ceil(len / batch) for count-based modes, 1 for closure;
//   - replicas created = list length after a full traversal;
//   - proxy-ins at the provider = per-object in incremental mode, per-batch
//     (+1 boundary each) in cluster mode;
//   - data integrity: every element's value arrives intact.
#include <gtest/gtest.h>

#include "obiwan.h"
#include "test_objects.h"

namespace obiwan {
namespace {

using core::ReplicationMode;
using test::Node;

struct SweepCase {
  ReplicationMode::Kind kind;
  std::uint32_t batch;
  int length;
  std::size_t payload;
};

class TraversalSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(TraversalSweep, CountersFollowTheCostModel) {
  const SweepCase& param = GetParam();
  ReplicationMode mode;
  switch (param.kind) {
    case ReplicationMode::Kind::kIncremental:
      mode = ReplicationMode::Incremental(param.batch);
      break;
    case ReplicationMode::Kind::kCluster:
      mode = ReplicationMode::Cluster(param.batch);
      break;
    case ReplicationMode::Kind::kTransitiveClosure:
      mode = ReplicationMode::Closure();
      break;
    case ReplicationMode::Kind::kClusterDepth:
      mode = ReplicationMode::ClusterDepth(param.batch);
      break;
  }

  net::LoopbackNetwork network;
  core::Site provider(2, network.CreateEndpoint("s2"));
  core::Site demander(1, network.CreateEndpoint("s1"));
  ASSERT_TRUE(provider.Start().ok());
  ASSERT_TRUE(demander.Start().ok());
  provider.HostRegistry();
  demander.UseRegistry("s2");

  auto head = test::MakeChain(param.length, param.payload, "n");
  ASSERT_TRUE(provider.Bind("list", head).ok());
  const auto pins_before = provider.stats().proxy_ins_created;

  auto remote = demander.Lookup<Node>("list");
  ASSERT_TRUE(remote.ok());
  auto ref = remote->Replicate(mode);
  ASSERT_TRUE(ref.ok()) << ref.status();

  // Full traversal, checking data integrity along the way.
  core::Ref<Node>* cursor = &*ref;
  long long sum = 0;
  int visited = 0;
  while (!cursor->IsEmpty()) {
    EXPECT_EQ((*cursor)->Value(), visited);
    sum += (*cursor)->Value();
    ASSERT_EQ((*cursor)->payload.size(), param.payload);
    cursor = &cursor->get()->next;
    ++visited;
  }

  EXPECT_EQ(visited, param.length);
  EXPECT_EQ(sum, static_cast<long long>(param.length) * (param.length - 1) / 2);
  EXPECT_EQ(demander.replica_count(), static_cast<std::size_t>(param.length));

  const std::uint64_t pins =
      provider.stats().proxy_ins_created - pins_before;
  const auto len = static_cast<std::uint64_t>(param.length);
  switch (param.kind) {
    case ReplicationMode::Kind::kIncremental: {
      // ceil(len/batch) gets, one per fault after the first.
      std::uint64_t expected_gets = (len + param.batch - 1) / param.batch;
      EXPECT_EQ(demander.stats().gets_sent, expected_gets);
      // One put/refresh pin per object; the head's reuses the Bind pin, and
      // batch-boundary pins coincide with later per-object pins (dedup).
      EXPECT_EQ(pins, len - 1);
      break;
    }
    case ReplicationMode::Kind::kCluster: {
      std::uint64_t expected_gets = (len + param.batch - 1) / param.batch;
      EXPECT_EQ(demander.stats().gets_sent, expected_gets);
      // One cluster pin per batch plus one boundary pin per non-final batch.
      std::uint64_t full_batches = expected_gets;
      EXPECT_EQ(pins, full_batches + (full_batches - 1));
      break;
    }
    case ReplicationMode::Kind::kTransitiveClosure: {
      EXPECT_EQ(demander.stats().gets_sent, 1u);
      EXPECT_EQ(pins, 1u);  // the single closure cluster pin
      break;
    }
    case ReplicationMode::Kind::kClusterDepth: {
      // depth d brings d+1 chain nodes per get.
      std::uint64_t per_get = param.batch + 1;
      std::uint64_t expected_gets = (len + per_get - 1) / per_get;
      EXPECT_EQ(demander.stats().gets_sent, expected_gets);
      break;
    }
  }
}

std::vector<SweepCase> MakeCases() {
  std::vector<SweepCase> cases;
  for (std::uint32_t batch : {1u, 3u, 7u, 25u}) {
    for (int length : {1, 5, 24, 100}) {
      cases.push_back({ReplicationMode::Kind::kIncremental, batch, length, 16});
      cases.push_back({ReplicationMode::Kind::kCluster, batch, length, 16});
    }
  }
  for (int length : {1, 24, 100}) {
    cases.push_back({ReplicationMode::Kind::kTransitiveClosure, 0, length, 16});
  }
  for (std::uint32_t depth : {1u, 4u}) {
    cases.push_back({ReplicationMode::Kind::kClusterDepth, depth, 30, 16});
  }
  // Payload-size sweep at a fixed shape.
  for (std::size_t payload : {std::size_t{0}, std::size_t{1024}, std::size_t{16384}}) {
    cases.push_back({ReplicationMode::Kind::kIncremental, 5, 20, payload});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TraversalSweep, ::testing::ValuesIn(MakeCases()),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      const SweepCase& c = info.param;
      const char* kind = "";
      switch (c.kind) {
        case ReplicationMode::Kind::kIncremental: kind = "Inc"; break;
        case ReplicationMode::Kind::kCluster: kind = "Cluster"; break;
        case ReplicationMode::Kind::kTransitiveClosure: kind = "Closure"; break;
        case ReplicationMode::Kind::kClusterDepth: kind = "Depth"; break;
      }
      return std::string(kind) + "B" + std::to_string(c.batch) + "L" +
             std::to_string(c.length) + "P" + std::to_string(c.payload);
    });

}  // namespace
}  // namespace obiwan
