// Replica re-export chains: "objects can be replicated freely among sites"
// (§5). A site holding replicas can serve them onward (office PC -> laptop ->
// PDA); proxies for objects the middle site never resolved are forwarded to
// the original provider.
#include <gtest/gtest.h>

#include "obiwan.h"
#include "test_objects.h"

namespace obiwan {
namespace {

using core::ReplicationMode;
using test::Node;

class ChainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    office_ = std::make_unique<core::Site>(1, network_.CreateEndpoint("office"));
    laptop_ = std::make_unique<core::Site>(2, network_.CreateEndpoint("laptop"));
    pda_ = std::make_unique<core::Site>(3, network_.CreateEndpoint("pda"));
    ASSERT_TRUE(office_->Start().ok());
    ASSERT_TRUE(laptop_->Start().ok());
    ASSERT_TRUE(pda_->Start().ok());
    office_->HostRegistry();
    laptop_->UseRegistry("office");
    pda_->UseRegistry("office");
  }

  net::LoopbackNetwork network_;
  std::unique_ptr<core::Site> office_;
  std::unique_ptr<core::Site> laptop_;
  std::unique_ptr<core::Site> pda_;
};

TEST_F(ChainTest, LaptopReExportsToPda) {
  auto doc = test::MakeChain(4, 32, "d");
  ASSERT_TRUE(office_->Bind("doc", doc).ok());

  // Laptop replicates the whole document from the office.
  auto office_remote = laptop_->Lookup<Node>("doc");
  ASSERT_TRUE(office_remote.ok());
  auto on_laptop = office_remote->Replicate(ReplicationMode::Incremental(4));
  ASSERT_TRUE(on_laptop.ok());
  EXPECT_EQ(laptop_->replica_count(), 4u);

  // Laptop re-binds its replica under a new name (now acting as provider).
  ASSERT_TRUE(laptop_->Bind("doc-cached", on_laptop->local()).ok());

  // PDA replicates from the laptop, never talking to the office.
  const auto office_gets = office_->stats().gets_served;
  auto laptop_remote = pda_->Lookup<Node>("doc-cached");
  ASSERT_TRUE(laptop_remote.ok());
  EXPECT_EQ(laptop_remote->provider(), "laptop");
  auto on_pda = laptop_remote->Replicate(ReplicationMode::Incremental(4));
  ASSERT_TRUE(on_pda.ok());

  EXPECT_EQ(pda_->replica_count(), 4u);
  EXPECT_EQ(office_->stats().gets_served, office_gets);  // office untouched
  EXPECT_EQ((*on_pda)->next->next->Label(), "d2");

  // Identity: the PDA's replicas carry the office's master ids.
  EXPECT_EQ(on_pda->id(), office_remote->id());
}

TEST_F(ChainTest, UnresolvedProxyIsForwardedToOrigin) {
  auto doc = test::MakeChain(4, 32, "d");
  ASSERT_TRUE(office_->Bind("doc", doc).ok());

  // Laptop only replicates the first two nodes; d2 stays a proxy there.
  auto office_remote = laptop_->Lookup<Node>("doc");
  ASSERT_TRUE(office_remote.ok());
  auto on_laptop = office_remote->Replicate(ReplicationMode::Incremental(2));
  ASSERT_TRUE(on_laptop.ok());
  ASSERT_TRUE((*on_laptop)->next.IsLocal());
  ASSERT_TRUE((*on_laptop)->next.get()->next.IsProxy());

  ASSERT_TRUE(laptop_->Bind("doc-cached", on_laptop->local()).ok());

  // PDA pulls everything through the laptop. When it crosses the laptop's
  // own boundary, the forwarded descriptor sends the PDA straight to the
  // office for d2 — without the laptop resolving it first.
  auto laptop_remote = pda_->Lookup<Node>("doc-cached");
  ASSERT_TRUE(laptop_remote.ok());
  auto on_pda = laptop_remote->Replicate(ReplicationMode::Incremental(2));
  ASSERT_TRUE(on_pda.ok());

  const auto laptop_replicas_before = laptop_->replica_count();
  EXPECT_EQ((*on_pda)->next->next->Label(), "d2");  // faults to the office
  EXPECT_EQ(laptop_->replica_count(), laptop_replicas_before);  // laptop unchanged
  EXPECT_TRUE((*on_laptop)->next.get()->next.IsProxy());  // laptop still faulted
}

TEST_F(ChainTest, PutToMiddleUpdatesItsReplicaOnly) {
  auto doc = test::MakeChain(1, 32, "d");
  ASSERT_TRUE(office_->Bind("doc", doc).ok());

  auto office_remote = laptop_->Lookup<Node>("doc");
  ASSERT_TRUE(office_remote.ok());
  auto on_laptop = office_remote->Replicate(ReplicationMode::Incremental(1));
  ASSERT_TRUE(on_laptop.ok());
  ASSERT_TRUE(laptop_->Bind("doc-cached", on_laptop->local()).ok());

  auto laptop_remote = pda_->Lookup<Node>("doc-cached");
  ASSERT_TRUE(laptop_remote.ok());
  auto on_pda = laptop_remote->Replicate(ReplicationMode::Incremental(1));
  ASSERT_TRUE(on_pda.ok());

  // The PDA's provider is the laptop: a put updates the laptop's replica
  // (hierarchical reintegration), not the office master directly.
  (*on_pda)->SetLabel("edited-on-pda");
  ASSERT_TRUE(pda_->Put(*on_pda).ok());
  EXPECT_EQ(on_laptop->get()->label, "edited-on-pda");
  EXPECT_EQ(doc->label, "d0");

  // The laptop then reintegrates upstream.
  ASSERT_TRUE(laptop_->Put(*on_laptop).ok());
  EXPECT_EQ(doc->label, "edited-on-pda");
}

TEST_F(ChainTest, ThreeLevelFaultChain) {
  auto doc = test::MakeChain(3, 32, "d");
  ASSERT_TRUE(office_->Bind("doc", doc).ok());

  auto r1 = laptop_->Lookup<Node>("doc");
  ASSERT_TRUE(r1.ok());
  auto on_laptop = r1->Replicate(ReplicationMode::Incremental(1));
  ASSERT_TRUE(on_laptop.ok());
  ASSERT_TRUE(laptop_->Bind("cached", on_laptop->local()).ok());

  auto r2 = pda_->Lookup<Node>("cached");
  ASSERT_TRUE(r2.ok());
  auto on_pda = r2->Replicate(ReplicationMode::Incremental(1));
  ASSERT_TRUE(on_pda.ok());

  // Traversing on the PDA: d1's descriptor was forwarded from the laptop
  // (which never resolved it), so the PDA faults straight to the office.
  EXPECT_EQ((*on_pda)->next->Label(), "d1");
  EXPECT_EQ((*on_pda)->next->next->Label(), "d2");
  EXPECT_EQ(pda_->replica_count(), 3u);
}

}  // namespace
}  // namespace obiwan
