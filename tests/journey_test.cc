// Per-update dissemination journeys: every hop of put -> notify -> wire ->
// apply -> ack stamped deterministically on the virtual clock, folded into
// ttfr / convergence / per-hop histograms, and driving the multi-window SLO
// burn-rate alert (fires under sustained breach, clears once the fast window
// drains).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "obiwan.h"
#include "obs/journey.h"
#include "test_objects.h"

namespace obiwan {
namespace {

using core::PushUpdates;
using core::ReplicationMode;
using test::Node;

// Provider + one holder on the paper's LAN, with a journey tracker attached
// to each side.
class JourneySimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<net::SimNetwork>(clock_, net::kPaperLan);
    provider_ = std::make_unique<core::Site>(
        1, network_->CreateEndpoint("prov"), clock_);
    holder_ = std::make_unique<core::Site>(
        2, network_->CreateEndpoint("hold"), clock_);
    ASSERT_TRUE(provider_->Start().ok());
    ASSERT_TRUE(holder_->Start().ok());
    provider_->HostRegistry();
    holder_->UseRegistry("prov");

    provider_tracker_ = std::make_unique<obs::JourneyTracker>(clock_, 1);
    holder_tracker_ = std::make_unique<obs::JourneyTracker>(clock_, 2);
    provider_->SetJourneySink(provider_tracker_.get());
    holder_->SetJourneySink(holder_tracker_.get());
  }

  void TearDown() override {
    provider_->SetJourneySink(nullptr);
    holder_->SetJourneySink(nullptr);
  }

  core::Ref<Node> Replicate(const std::string& binding) {
    auto remote = holder_->Lookup<Node>(binding);
    EXPECT_TRUE(remote.ok()) << remote.status();
    auto ref = remote->Replicate(ReplicationMode::Incremental(1));
    EXPECT_TRUE(ref.ok()) << ref.status();
    return *ref;
  }

  VirtualClock clock_;
  std::unique_ptr<net::SimNetwork> network_;
  std::unique_ptr<core::Site> provider_;
  std::unique_ptr<core::Site> holder_;
  std::unique_ptr<obs::JourneyTracker> provider_tracker_;
  std::unique_ptr<obs::JourneyTracker> holder_tracker_;
};

TEST_F(JourneySimTest, PushJourneyStampsEveryHop) {
  provider_->SetConsistencyPolicy(std::make_unique<PushUpdates>());
  auto obj = std::make_shared<Node>();
  ASSERT_TRUE(provider_->Bind("obj", obj).ok());
  const ObjectId oid = provider_->Export(obj);
  auto ref = Replicate("obj");

  obj->value = 7;
  ASSERT_TRUE(provider_->MarkMasterUpdated(oid).ok());

  // Provider side: the journey completed with every hop stamped in order.
  EXPECT_EQ(provider_tracker_->minted(), 1u);
  EXPECT_EQ(provider_tracker_->completed(), 1u);
  auto journeys = provider_tracker_->Recent(4);
  ASSERT_EQ(journeys.size(), 1u);
  const obs::JourneyView& j = journeys[0];
  EXPECT_EQ(j.id, oid);
  EXPECT_EQ(j.version, 2u);  // replicate-time v1, this update bumped to v2
  EXPECT_TRUE(j.push);
  EXPECT_TRUE(j.complete);
  EXPECT_EQ(j.expected, 1u);
  EXPECT_EQ(j.acked, 1u);
  ASSERT_EQ(j.hops.size(), 1u);
  const obs::JourneyHopView& hop = j.hops[0];
  EXPECT_EQ(hop.holder, "hold");
  EXPECT_TRUE(hop.acked);
  ASSERT_GE(j.put_commit, 0);
  EXPECT_GE(hop.enqueue, j.put_commit);
  EXPECT_GE(hop.send, hop.enqueue);
  EXPECT_GT(hop.ack, hop.send);  // the simulated wire has real latency
  // With a single recipient, ttfr == convergence == commit-to-ack exactly.
  EXPECT_EQ(j.ttfr, hop.ack - j.put_commit);
  EXPECT_EQ(j.convergence, j.ttfr);

  // Holder side: the push was received and applied at the same version.
  auto applied = holder_tracker_->Recent(4);
  ASSERT_EQ(applied.size(), 1u);
  EXPECT_EQ(applied[0].id, oid);
  EXPECT_EQ(applied[0].version, 2u);
  EXPECT_TRUE(applied[0].push);
  ASSERT_GE(applied[0].receive, 0);
  EXPECT_GE(applied[0].apply, applied[0].receive);
  EXPECT_TRUE(applied[0].complete);
  EXPECT_EQ(ref.get()->value, 7);
}

TEST_F(JourneySimTest, TimingsAreDeterministicOnTheVirtualClock) {
  provider_->SetConsistencyPolicy(std::make_unique<PushUpdates>());
  auto obj = std::make_shared<Node>();
  obj->payload.resize(64);
  ASSERT_TRUE(provider_->Bind("obj", obj).ok());
  const ObjectId oid = provider_->Export(obj);
  (void)Replicate("obj");

  // Two identical updates over the simulated network: identical per-journey
  // latency, nanosecond for nanosecond — the whole point of measuring on the
  // virtual clock instead of polling.
  obj->value = 1;
  ASSERT_TRUE(provider_->MarkMasterUpdated(oid).ok());
  obj->value = 2;
  ASSERT_TRUE(provider_->MarkMasterUpdated(oid).ok());

  auto journeys = provider_tracker_->Recent(4);
  ASSERT_EQ(journeys.size(), 2u);
  EXPECT_GT(journeys[0].version, journeys[1].version);  // newest first
  EXPECT_GT(journeys[0].convergence, 0);
  EXPECT_EQ(journeys[0].convergence, journeys[1].convergence);
  EXPECT_EQ(journeys[0].ttfr, journeys[1].ttfr);
}

TEST_F(JourneySimTest, InvalidateJourneyAppliesOnRefresh) {
  provider_->SetConsistencyPolicy(
      std::make_unique<consistency::WriteInvalidate>());
  auto obj = std::make_shared<Node>();
  ASSERT_TRUE(provider_->Bind("obj", obj).ok());
  const ObjectId oid = provider_->Export(obj);
  auto ref = Replicate("obj");

  obj->value = 9;
  ASSERT_TRUE(provider_->MarkMasterUpdated(oid).ok());

  // The invalidation was received but the replica has not caught up yet:
  // the apply hop is still open.
  auto pending = holder_tracker_->Recent(4);
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_FALSE(pending[0].push);
  ASSERT_GE(pending[0].receive, 0);
  EXPECT_LT(pending[0].apply, 0);

  // Refresh closes it: apply stamped at the refreshed version.
  ASSERT_TRUE(holder_->RefreshReplica(oid).ok());
  auto applied = holder_tracker_->Recent(4);
  ASSERT_EQ(applied.size(), 1u);
  EXPECT_EQ(applied[0].version, 2u);
  EXPECT_GT(applied[0].apply, applied[0].receive);
  EXPECT_TRUE(applied[0].complete);
  EXPECT_EQ(ref.get()->value, 9);
}

TEST_F(JourneySimTest, SupersededRetryCountsOnceAndKeepsNewestVersion) {
  provider_->SetConsistencyPolicy(
      std::make_unique<consistency::WriteInvalidate>());
  provider_->SetHolderFailureThreshold(0);  // never drop the holder
  auto obj = std::make_shared<Node>();
  ASSERT_TRUE(provider_->Bind("obj", obj).ok());
  const ObjectId oid = provider_->Export(obj);
  (void)Replicate("obj");

  // Two failed notifications to the same dead holder: the second coalesces
  // onto the queued first instead of deepening the retry queue.
  network_->SetEndpointUp("hold", false);
  obj->value = 1;
  ASSERT_TRUE(provider_->MarkMasterUpdated(oid).ok());
  ASSERT_EQ(provider_->pending_notify_retries(), 1u);
  obj->value = 2;
  ASSERT_TRUE(provider_->MarkMasterUpdated(oid).ok());
  EXPECT_EQ(provider_->pending_notify_retries(), 1u);
  EXPECT_EQ(provider_->stats().notify_superseded, 1u);
  EXPECT_GE(MetricsRegistry::Default().SumCounters(
                "obiwan_notify_superseded_total"),
            1u);
}

// ---------------------------------------------------------------------------
// Burn-rate alerting (tracker driven directly, no sites)
// ---------------------------------------------------------------------------

class BurnRateTest : public ::testing::Test {
 protected:
  BurnRateTest() {
    options_.slo_convergence = 10 * kMilli;
    options_.slo_budget = 0.01;
    options_.burn_threshold = 14.4;
    tracker_ = std::make_unique<obs::JourneyTracker>(clock_, 7, options_);
  }

  // One single-recipient journey that converges in `latency`.
  void Complete(std::uint64_t version, Nanos latency) {
    const ObjectId id{7, 1};
    const Nanos start = clock_.Now();
    tracker_->OnPutCommit(id, version, start, 1, false, TraceId{7, version});
    tracker_->OnNotifyEnqueue(id, version, "dev", start);
    tracker_->OnWireSend(id, version, "dev", start);
    clock_.Sleep(latency);
    tracker_->OnAckReturn(id, version, "dev", clock_.Now(), true);
  }

  VirtualClock clock_;
  obs::JourneyOptions options_;
  std::unique_ptr<obs::JourneyTracker> tracker_;
  std::uint64_t next_version_ = 1;
};

TEST_F(BurnRateTest, FiresUnderSustainedBreachAndClearsAfterRecovery) {
  EXPECT_FALSE(tracker_->EvaluateAlerts().firing);  // no traffic, no page

  // Sustained breach: every journey blows the 10 ms SLO.
  for (int i = 0; i < 20; ++i) Complete(next_version_++, 50 * kMilli);
  obs::JourneyAlert alert = tracker_->EvaluateAlerts();
  EXPECT_TRUE(alert.firing);
  EXPECT_EQ(alert.fast.total, 20u);
  EXPECT_EQ(alert.fast.bad, 20u);
  // All-bad traffic burns (1.0 / 0.01) = 100x the sustainable rate.
  EXPECT_DOUBLE_EQ(alert.fast.burn_rate, 100.0);
  EXPECT_GE(alert.slow.burn_rate, options_.burn_threshold);
  EXPECT_NE(tracker_->AlertsJson().find("\"state\":\"firing\""),
            std::string::npos);
  EXPECT_GE(tracker_->WindowConvergenceP99(), 50 * kMilli);

  // Recovery: the bad events age out of the fast window while healthy
  // journeys land. The slow window still remembers the breach, but paging
  // requires BOTH windows to burn — the alert clears.
  clock_.Sleep(options_.fast_window + 1 * kSecond);
  for (int i = 0; i < 20; ++i) Complete(next_version_++, 1 * kMilli);
  alert = tracker_->EvaluateAlerts();
  EXPECT_FALSE(alert.firing);
  EXPECT_EQ(alert.fast.bad, 0u);
  EXPECT_DOUBLE_EQ(alert.fast.burn_rate, 0.0);
  EXPECT_GT(alert.slow.bad, 0u);
  EXPECT_NE(tracker_->AlertsJson().find("\"state\":\"ok\""),
            std::string::npos);
  EXPECT_LT(tracker_->WindowConvergenceP99(), 10 * kMilli);
}

TEST_F(BurnRateTest, SlowWindowAloneDoesNotPage) {
  // A short burst of bad journeys, then silence past the fast window: the
  // slow window still shows the burn, but a one-off blip must not page.
  for (int i = 0; i < 5; ++i) Complete(next_version_++, 50 * kMilli);
  clock_.Sleep(options_.fast_window + 1 * kSecond);
  const obs::JourneyAlert alert = tracker_->EvaluateAlerts();
  EXPECT_FALSE(alert.firing);
  EXPECT_EQ(alert.fast.total, 0u);
  EXPECT_EQ(alert.slow.bad, 5u);
}

TEST_F(BurnRateTest, EventsAgeOutOfTheSlowWindow) {
  for (int i = 0; i < 3; ++i) Complete(next_version_++, 50 * kMilli);
  clock_.Sleep(options_.slow_window + 1 * kSecond);
  const obs::JourneyAlert alert = tracker_->EvaluateAlerts();
  EXPECT_EQ(alert.slow.total, 0u);
  EXPECT_EQ(alert.fast.total, 0u);
  EXPECT_FALSE(alert.firing);
}

TEST(JourneyTrackerTest, BoundedRingEvictsOldestButKeepsFoldedMetrics) {
  VirtualClock clock;
  obs::JourneyOptions options;
  options.capacity = 8;
  options.stripes = 2;
  obs::JourneyTracker tracker(clock, 3, options);
  const ObjectId id{3, 1};
  for (std::uint64_t v = 1; v <= 50; ++v) {
    const Nanos start = clock.Now();
    tracker.OnPutCommit(id, v, start, 1, false, TraceId{});
    tracker.OnNotifyEnqueue(id, v, "dev", start);
    tracker.OnWireSend(id, v, "dev", start);
    clock.Sleep(1 * kMilli);
    tracker.OnAckReturn(id, v, "dev", clock.Now(), true);
  }
  EXPECT_EQ(tracker.minted(), 50u);
  EXPECT_EQ(tracker.completed(), 50u);  // eviction never loses folded metrics
  const auto recent = tracker.Recent(100);
  EXPECT_LE(recent.size(), options.capacity);
  EXPECT_EQ(recent[0].version, 50u);  // newest survives

  const std::string json = tracker.UpdatesJson(4);
  EXPECT_NE(json.find("\"minted\":50"), std::string::npos);
  EXPECT_NE(json.find("\"convergence_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"slowest\""), std::string::npos);
}

TEST(JourneyTrackerTest, SlowestTailKeepsWorstJourneysWithTraces) {
  VirtualClock clock;
  obs::JourneyOptions options;
  options.slowest_k = 2;
  obs::JourneyTracker tracker(clock, 4, options);
  const ObjectId id{4, 1};
  const Nanos latencies[] = {5 * kMilli, 90 * kMilli, 20 * kMilli,
                             70 * kMilli};
  std::uint64_t v = 0;
  for (const Nanos latency : latencies) {
    ++v;
    const Nanos start = clock.Now();
    tracker.OnPutCommit(id, v, start, 1, false, TraceId{4, v});
    tracker.OnNotifyEnqueue(id, v, "dev", start);
    tracker.OnWireSend(id, v, "dev", start);
    clock.Sleep(latency);
    tracker.OnAckReturn(id, v, "dev", clock.Now(), true);
  }
  const auto slowest = tracker.Slowest();
  ASSERT_EQ(slowest.size(), 2u);
  EXPECT_EQ(slowest[0].version, 2u);  // 90 ms
  EXPECT_EQ(slowest[1].version, 4u);  // 70 ms
  EXPECT_TRUE(slowest[0].trace.valid());
  EXPECT_EQ(slowest[0].trace.seq, 2u);
}

}  // namespace
}  // namespace obiwan
