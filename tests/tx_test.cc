// Relaxed optimistic transaction tests.
#include <gtest/gtest.h>

#include "obiwan.h"
#include "test_objects.h"

namespace obiwan {
namespace {

using core::ReplicationMode;
using test::Node;
using tx::Transaction;

class TxTest : public ::testing::Test {
 protected:
  void SetUp() override {
    provider_ = std::make_unique<core::Site>(1, network_.CreateEndpoint("p"));
    alice_ = std::make_unique<core::Site>(2, network_.CreateEndpoint("alice"));
    bob_ = std::make_unique<core::Site>(3, network_.CreateEndpoint("bob"));
    ASSERT_TRUE(provider_->Start().ok());
    ASSERT_TRUE(alice_->Start().ok());
    ASSERT_TRUE(bob_->Start().ok());
    provider_->HostRegistry();
    alice_->UseRegistry("p");
    bob_->UseRegistry("p");
  }

  core::Ref<Node> ReplicateOn(core::Site& site, const std::string& name,
                              ReplicationMode mode = ReplicationMode::Incremental(1)) {
    auto remote = site.Lookup<Node>(name);
    EXPECT_TRUE(remote.ok()) << remote.status();
    auto ref = remote->Replicate(mode);
    EXPECT_TRUE(ref.ok()) << ref.status();
    return *ref;
  }

  net::LoopbackNetwork network_;
  std::unique_ptr<core::Site> provider_;
  std::unique_ptr<core::Site> alice_;
  std::unique_ptr<core::Site> bob_;
};

TEST_F(TxTest, CommitAppliesWrites) {
  auto a = test::MakeChain(1, 8, "a");
  auto b = test::MakeChain(1, 8, "b");
  ASSERT_TRUE(provider_->Bind("a", a).ok());
  ASSERT_TRUE(provider_->Bind("b", b).ok());

  auto ref_a = ReplicateOn(*alice_, "a");
  auto ref_b = ReplicateOn(*alice_, "b");

  Transaction txn(*alice_);
  ref_a->SetValue(100);
  ref_b->SetValue(200);
  ASSERT_TRUE(txn.Write(ref_a).ok());
  ASSERT_TRUE(txn.Write(ref_b).ok());
  EXPECT_EQ(txn.write_set_size(), 2u);

  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(a->value, 100);
  EXPECT_EQ(b->value, 200);
  EXPECT_EQ(txn.write_set_size(), 0u);  // reusable after commit
}

TEST_F(TxTest, WriteWriteConflictAborts) {
  auto a = test::MakeChain(1, 8, "a");
  auto b = test::MakeChain(1, 8, "b");
  ASSERT_TRUE(provider_->Bind("a", a).ok());
  ASSERT_TRUE(provider_->Bind("b", b).ok());

  auto alice_a = ReplicateOn(*alice_, "a");
  auto alice_b = ReplicateOn(*alice_, "b");
  auto bob_a = ReplicateOn(*bob_, "a");

  // Bob slips in a plain put to `a` first.
  bob_a->SetValue(77);
  ASSERT_TRUE(bob_->Put(bob_a).ok());

  Transaction txn(*alice_);
  alice_a->SetValue(1);
  alice_b->SetValue(2);
  ASSERT_TRUE(txn.Write(alice_a).ok());
  ASSERT_TRUE(txn.Write(alice_b).ok());

  Status s = txn.Commit();
  EXPECT_EQ(s.code(), StatusCode::kConflict);
  // All-or-nothing at the provider: neither write landed.
  EXPECT_EQ(a->value, 77);
  EXPECT_EQ(b->value, 0);
}

TEST_F(TxTest, ReadValidationCatchesStaleReads) {
  auto a = test::MakeChain(1, 8, "a");
  auto b = test::MakeChain(1, 8, "b");
  ASSERT_TRUE(provider_->Bind("a", a).ok());
  ASSERT_TRUE(provider_->Bind("b", b).ok());

  auto alice_a = ReplicateOn(*alice_, "a");
  auto alice_b = ReplicateOn(*alice_, "b");
  auto bob_a = ReplicateOn(*bob_, "a");

  Transaction txn(*alice_);
  // Alice computes b := f(a): reads a, writes b.
  ASSERT_TRUE(txn.Read(alice_a).ok());
  alice_b->SetValue(alice_a->Value() + 10);
  ASSERT_TRUE(txn.Write(alice_b).ok());

  // Bob invalidates Alice's read before she commits.
  bob_a->SetValue(999);
  ASSERT_TRUE(bob_->Put(bob_a).ok());

  EXPECT_EQ(txn.Commit().code(), StatusCode::kConflict);
  EXPECT_EQ(b->value, 0);  // the dependent write did not land
}

TEST_F(TxTest, RetryAfterRefreshSucceeds) {
  auto a = test::MakeChain(1, 8, "a");
  ASSERT_TRUE(provider_->Bind("a", a).ok());
  auto alice_a = ReplicateOn(*alice_, "a");
  auto bob_a = ReplicateOn(*bob_, "a");

  bob_a->SetValue(5);
  ASSERT_TRUE(bob_->Put(bob_a).ok());

  Transaction txn(*alice_);
  alice_a->SetValue(1);
  ASSERT_TRUE(txn.Write(alice_a).ok());
  ASSERT_EQ(txn.Commit().code(), StatusCode::kConflict);

  // The optimistic loop: refresh, redo, retry.
  ASSERT_TRUE(alice_->Refresh(alice_a).ok());
  EXPECT_EQ(alice_a->Value(), 5);
  alice_a->SetValue(alice_a->Value() + 1);
  ASSERT_TRUE(txn.Write(alice_a).ok());
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(a->value, 6);
}

TEST_F(TxTest, AbortRestoresMasterState) {
  auto a = test::MakeChain(1, 8, "a");
  a->value = 42;
  ASSERT_TRUE(provider_->Bind("a", a).ok());
  auto alice_a = ReplicateOn(*alice_, "a");

  Transaction txn(*alice_);
  alice_a->SetValue(-1);
  ASSERT_TRUE(txn.Write(alice_a).ok());
  ASSERT_TRUE(txn.Abort().ok());

  EXPECT_EQ(alice_a->Value(), 42);  // local edit rolled back from master
  EXPECT_EQ(a->value, 42);
  EXPECT_EQ(txn.write_set_size(), 0u);
}

TEST_F(TxTest, MultiProviderCommitIsPerProviderAtomic) {
  // Second provider site mastering its own object.
  core::Site provider2(4, network_.CreateEndpoint("p2"));
  ASSERT_TRUE(provider2.Start().ok());
  provider2.UseRegistry("p");

  auto a = test::MakeChain(1, 8, "a");
  auto c = test::MakeChain(1, 8, "c");
  ASSERT_TRUE(provider_->Bind("a", a).ok());
  ASSERT_TRUE(provider2.Bind("c", c).ok());

  auto alice_a = ReplicateOn(*alice_, "a");
  auto alice_c = ReplicateOn(*alice_, "c");

  Transaction txn(*alice_);
  alice_a->SetValue(10);
  alice_c->SetValue(20);
  ASSERT_TRUE(txn.Write(alice_a).ok());
  ASSERT_TRUE(txn.Write(alice_c).ok());
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(a->value, 10);
  EXPECT_EQ(c->value, 20);
}

TEST_F(TxTest, TrackingRequiresReplica) {
  Transaction txn(*alice_);
  core::Ref<Node> empty;
  EXPECT_EQ(txn.Write(empty).code(), StatusCode::kFailedPrecondition);

  core::Ref<Node> unreplicated(std::make_shared<Node>());
  EXPECT_EQ(txn.Write(unreplicated).code(), StatusCode::kFailedPrecondition);
}

TEST_F(TxTest, EmptyCommitIsOk) {
  Transaction txn(*alice_);
  EXPECT_TRUE(txn.Commit().ok());
}

}  // namespace
}  // namespace obiwan
