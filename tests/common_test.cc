// Tests for the common substrate: Status/Result, clocks, ids, logging.
#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "common/clock.h"
#include "common/ids.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/status.h"

namespace obiwan {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = DisconnectedError("pda is in a tunnel");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDisconnected);
  EXPECT_EQ(s.message(), "pda is in a tunnel");
  EXPECT_EQ(s.ToString(), "DISCONNECTED: pda is in a tunnel");
}

TEST(Status, AllFactoriesMapToTheirCode) {
  EXPECT_EQ(TimeoutError("").code(), StatusCode::kTimeout);
  EXPECT_EQ(NotFoundError("").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(InvalidArgumentError("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(FailedPreconditionError("").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(DataLossError("").code(), StatusCode::kDataLoss);
  EXPECT_EQ(ConflictError("").code(), StatusCode::kConflict);
  EXPECT_EQ(UnimplementedError("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("").code(), StatusCode::kInternal);
}

TEST(Status, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(NotFoundError("x"), NotFoundError("x"));
  EXPECT_FALSE(NotFoundError("x") == NotFoundError("y"));
  EXPECT_FALSE(NotFoundError("x") == TimeoutError("x"));
}

TEST(Status, StreamInsertion) {
  std::ostringstream os;
  os << ConflictError("stale");
  EXPECT_EQ(os.str(), "CONFLICT: stale");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r = NotFoundError("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string(1000, 'x'));
  std::string v = std::move(r).value();
  EXPECT_EQ(v.size(), 1000u);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  OBIWAN_ASSIGN_OR_RETURN(int half, Half(x));
  OBIWAN_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(Result, AssignOrReturnMacro) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_EQ(Quarter(6).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Quarter(7).status().code(), StatusCode::kInvalidArgument);
}

Status FailIfNegative(int x) {
  if (x < 0) return InvalidArgumentError("negative");
  return Status::Ok();
}

Status CheckAll(int a, int b) {
  OBIWAN_RETURN_IF_ERROR(FailIfNegative(a));
  OBIWAN_RETURN_IF_ERROR(FailIfNegative(b));
  return Status::Ok();
}

TEST(Result, ReturnIfErrorMacro) {
  EXPECT_TRUE(CheckAll(1, 2).ok());
  EXPECT_FALSE(CheckAll(-1, 2).ok());
  EXPECT_FALSE(CheckAll(1, -2).ok());
}

TEST(VirtualClock, AdvancesOnlyOnSleep) {
  VirtualClock clock;
  EXPECT_EQ(clock.Now(), 0);
  clock.Sleep(5 * kMilli);
  EXPECT_EQ(clock.Now(), 5 * kMilli);
  clock.Sleep(0);
  clock.Sleep(-3);  // negative sleeps are ignored
  EXPECT_EQ(clock.Now(), 5 * kMilli);
  clock.Reset();
  EXPECT_EQ(clock.Now(), 0);
}

TEST(SystemClock, IsMonotonic) {
  SystemClock& clock = SystemClock::Instance();
  Nanos a = clock.Now();
  Nanos b = clock.Now();
  EXPECT_LE(a, b);
}

TEST(Ids, ValidityAndEquality) {
  EXPECT_FALSE(ObjectId{}.valid());
  EXPECT_FALSE((ObjectId{1, 0}).valid());
  EXPECT_FALSE((ObjectId{0, 1}).valid());
  EXPECT_TRUE((ObjectId{1, 1}).valid());
  EXPECT_EQ((ObjectId{3, 7}), (ObjectId{3, 7}));
  EXPECT_NE((ObjectId{3, 7}), (ObjectId{3, 8}));
  EXPECT_LT((ObjectId{3, 7}), (ObjectId{4, 1}));
  EXPECT_EQ(ToString(ObjectId{3, 7}), "obj(3:7)");
}

TEST(Ids, HashSpreadsAcrossSitesAndLocals) {
  std::unordered_set<std::size_t> hashes;
  ObjectIdHash hash;
  for (SiteId site = 1; site <= 16; ++site) {
    for (std::uint64_t local = 1; local <= 64; ++local) {
      hashes.insert(hash(ObjectId{site, local}));
    }
  }
  // Not a strict uniformity test, just "no catastrophic collapse".
  EXPECT_GT(hashes.size(), 1000u - 24u);
}

TEST(Log, LevelGate) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  OBIWAN_LOG(kError) << "suppressed";  // must not crash, produces nothing
  SetLogLevel(LogLevel::kError);
  OBIWAN_LOG(kDebug) << "below the gate";
  SetLogLevel(before);
}

TEST(Log, DisabledStatementSkipsStreamEvaluation) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return std::string("never built");
  };
  OBIWAN_LOG(kDebug) << expensive();
  OBIWAN_LOG(kError) << expensive();  // counted in metrics, still not built
  EXPECT_EQ(evaluations, 0);
  SetLogLevel(before);
}

TEST(Log, WarningsAndErrorsCountIntoMetrics) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kOff);  // suppressed statements must still count
  auto& reg = MetricsRegistry::Default();
  const std::uint64_t warnings_before =
      reg.GetCounter("obiwan_log_messages_total", {{"level", "warning"}})
          .Value();
  const std::uint64_t errors_before =
      reg.GetCounter("obiwan_log_messages_total", {{"level", "error"}}).Value();
  OBIWAN_LOG(kWarning) << "w";
  OBIWAN_LOG(kError) << "e1";
  OBIWAN_LOG(kError) << "e2";
  OBIWAN_LOG(kInfo) << "not counted";
  EXPECT_EQ(reg.GetCounter("obiwan_log_messages_total", {{"level", "warning"}})
                .Value(),
            warnings_before + 1);
  EXPECT_EQ(
      reg.GetCounter("obiwan_log_messages_total", {{"level", "error"}}).Value(),
      errors_before + 2);
  SetLogLevel(before);
}

}  // namespace
}  // namespace obiwan
