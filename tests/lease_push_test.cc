// Lease-based proxy-in collection (distributed GC) and push-based update
// dissemination.
#include <gtest/gtest.h>

#include "obiwan.h"
#include "test_objects.h"

namespace obiwan {
namespace {

using core::PushUpdates;
using core::ReplicationMode;
using test::Node;

class LeaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<net::SimNetwork>(clock_, net::LinkParams{});
    provider_ = std::make_unique<core::Site>(1, network_->CreateEndpoint("p"), clock_);
    demander_ = std::make_unique<core::Site>(2, network_->CreateEndpoint("d"), clock_);
    ASSERT_TRUE(provider_->Start().ok());
    ASSERT_TRUE(demander_->Start().ok());
    provider_->HostRegistry();
    demander_->UseRegistry("p");
    provider_->SetProxyLeaseDuration(kLease);
  }

  static constexpr Nanos kLease = 10 * kSecond;

  VirtualClock clock_;
  std::unique_ptr<net::SimNetwork> network_;
  std::unique_ptr<core::Site> provider_;
  std::unique_ptr<core::Site> demander_;
};

TEST_F(LeaseTest, ExpiredProxyInsAreCollected) {
  auto head = test::MakeChain(4, 16, "n");
  ASSERT_TRUE(provider_->Bind("list", head).ok());
  auto remote = demander_->Lookup<Node>("list");
  ASSERT_TRUE(remote.ok());
  auto ref = remote->Replicate(ReplicationMode::Incremental(4));
  ASSERT_TRUE(ref.ok());
  // 4 per-object pins; the head's put channel reuses the *anchored* bind
  // pin, and there is no boundary pin (the whole list fits in the batch).
  EXPECT_EQ(provider_->proxy_in_count(), 4u);

  // Nothing expires before the lease runs out.
  clock_.Sleep(kLease / 2);
  EXPECT_EQ(provider_->CollectExpiredProxyIns(), 0u);

  clock_.Sleep(kLease);
  // The three tail pins expire; the bind pin is anchored (the registry still
  // advertises it) and survives.
  EXPECT_EQ(provider_->CollectExpiredProxyIns(), 3u);
  EXPECT_EQ(provider_->proxy_in_count(), 1u);

  // Replicas keep working locally; a tail's put channel is gone, while the
  // head's (the anchored pin) still accepts puts.
  EXPECT_EQ((*ref)->Label(), "n0");
  (*ref)->next.get()->SetLabel("x");
  EXPECT_EQ(demander_->Put((*ref)->next).code(), StatusCode::kNotFound);
  (*ref)->SetLabel("y");
  EXPECT_TRUE(demander_->Put(*ref).ok());
}

TEST_F(LeaseTest, UseRenewsLease) {
  auto head = test::MakeChain(1, 16, "n");
  ASSERT_TRUE(provider_->Bind("obj", head).ok());
  auto remote = demander_->Lookup<Node>("obj");
  ASSERT_TRUE(remote.ok());
  auto ref = remote->Replicate(ReplicationMode::Incremental(1));
  ASSERT_TRUE(ref.ok());

  // Keep putting through the pin just inside the lease window.
  for (int i = 0; i < 5; ++i) {
    clock_.Sleep(kLease - kSecond);
    (*ref)->SetValue(i);
    ASSERT_TRUE(demander_->Put(*ref).ok());
    EXPECT_EQ(provider_->CollectExpiredProxyIns(), 0u)
        << "active pin collected at round " << i;
  }
}

TEST_F(LeaseTest, ExplicitRenewKeepsIdleProxyAlive) {
  auto head = test::MakeChain(1, 16, "n");
  ASSERT_TRUE(provider_->Bind("obj", head).ok());
  auto remote = demander_->Lookup<Node>("obj");
  ASSERT_TRUE(remote.ok());
  auto ref = remote->Replicate(ReplicationMode::Incremental(1));
  ASSERT_TRUE(ref.ok());
  auto provider_desc = demander_->ReplicaProvider(remote->id());
  ASSERT_TRUE(provider_desc.ok());

  // Idle, but renewed in time (the single pin doubles as bind pin and put
  // channel thanks to per-target dedup).
  clock_.Sleep(kLease - kSecond);
  ASSERT_TRUE(demander_->RenewProxy(*provider_desc).ok());
  clock_.Sleep(kLease - kSecond);
  EXPECT_EQ(provider_->CollectExpiredProxyIns(), 0u);
  // The renewed put channel survived.
  (*ref)->SetValue(9);
  EXPECT_TRUE(demander_->Put(*ref).ok());

  // Renewing an unknown pin reports not-found.
  core::ProxyDescriptor bogus{{1, 999}, "p", remote->id(), "Node"};
  EXPECT_EQ(demander_->RenewProxy(bogus).code(), StatusCode::kNotFound);
}

TEST_F(LeaseTest, LeasingDisabledMeansNoCollection) {
  provider_->SetProxyLeaseDuration(0);
  auto head = test::MakeChain(1, 16, "n");
  ASSERT_TRUE(provider_->Bind("obj", head).ok());
  clock_.Sleep(1000 * kSecond);
  EXPECT_EQ(provider_->CollectExpiredProxyIns(), 0u);
  EXPECT_EQ(provider_->proxy_in_count(), 1u);
}

// --- push-based dissemination ---------------------------------------------------

class PushTest : public ::testing::Test {
 protected:
  void SetUp() override {
    master_ = std::make_unique<core::Site>(1, network_.CreateEndpoint("pc"));
    laptop_ = std::make_unique<core::Site>(2, network_.CreateEndpoint("laptop"));
    pda_ = std::make_unique<core::Site>(3, network_.CreateEndpoint("pda"));
    ASSERT_TRUE(master_->Start().ok());
    ASSERT_TRUE(laptop_->Start().ok());
    ASSERT_TRUE(pda_->Start().ok());
    master_->HostRegistry();
    laptop_->UseRegistry("pc");
    pda_->UseRegistry("pc");
    master_->SetConsistencyPolicy(std::make_unique<PushUpdates>());
  }

  net::LoopbackNetwork network_;
  std::unique_ptr<core::Site> master_;
  std::unique_ptr<core::Site> laptop_;
  std::unique_ptr<core::Site> pda_;
};

TEST_F(PushTest, PutPropagatesToOtherHolders) {
  auto obj = test::MakeChain(1, 16, "o");
  ASSERT_TRUE(master_->Bind("obj", obj).ok());

  auto on_laptop = *laptop_->Lookup<Node>("obj")->Replicate(ReplicationMode::Incremental(1));
  auto on_pda = *pda_->Lookup<Node>("obj")->Replicate(ReplicationMode::Incremental(1));

  on_laptop->SetLabel("pushed-content");
  ASSERT_TRUE(laptop_->Put(on_laptop).ok());

  // The PDA's replica was updated eagerly — no refresh needed.
  EXPECT_EQ(on_pda->Label(), "pushed-content");
  EXPECT_FALSE(pda_->IsStale(on_pda));
  // And its version advanced to the master's.
  auto v = pda_->ReplicaVersion(on_pda);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 2u);
}

TEST_F(PushTest, PushCarriesNewEdges) {
  auto head = test::MakeChain(2, 16, "n");
  ASSERT_TRUE(master_->Bind("list", head).ok());

  auto on_laptop = *laptop_->Lookup<Node>("list")->Replicate(ReplicationMode::Incremental(2));
  auto on_pda = *pda_->Lookup<Node>("list")->Replicate(ReplicationMode::Incremental(1));

  // The laptop rewires the head to skip node 1.
  on_laptop->next.Reset();
  ASSERT_TRUE(laptop_->Put(on_laptop).ok());

  // The PDA received the pushed topology change.
  EXPECT_TRUE(on_pda->next.IsEmpty());
}

TEST_F(PushTest, WriterIsNotPushedTo) {
  auto obj = test::MakeChain(1, 16, "o");
  ASSERT_TRUE(master_->Bind("obj", obj).ok());
  auto on_laptop = *laptop_->Lookup<Node>("obj")->Replicate(ReplicationMode::Incremental(1));

  const auto received_before = laptop_->stats().invalidations_received;
  on_laptop->SetValue(5);
  ASSERT_TRUE(laptop_->Put(on_laptop).ok());
  EXPECT_EQ(laptop_->stats().invalidations_received, received_before);
}

TEST_F(PushTest, UpdateCallbackFiresOnPush) {
  auto obj = test::MakeChain(1, 16, "o");
  ASSERT_TRUE(master_->Bind("obj", obj).ok());
  auto on_laptop = *laptop_->Lookup<Node>("obj")->Replicate(ReplicationMode::Incremental(1));
  auto on_pda = *pda_->Lookup<Node>("obj")->Replicate(ReplicationMode::Incremental(1));

  std::vector<std::pair<ObjectId, bool>> events;
  pda_->SetReplicaUpdateCallback(
      [&](ObjectId id, bool stale) { events.emplace_back(id, stale); });

  on_laptop->SetLabel("pushed");
  ASSERT_TRUE(laptop_->Put(on_laptop).ok());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].first, on_pda.id());
  EXPECT_FALSE(events[0].second);  // push = fresh, not stale

  // Detach: no further events.
  pda_->SetReplicaUpdateCallback(nullptr);
  on_laptop->SetLabel("again");
  ASSERT_TRUE(laptop_->Put(on_laptop).ok());
  EXPECT_EQ(events.size(), 1u);
}

TEST_F(PushTest, UpdateCallbackFiresOnInvalidate) {
  master_->SetConsistencyPolicy(std::make_unique<consistency::WriteInvalidate>());
  auto obj = test::MakeChain(1, 16, "o");
  ASSERT_TRUE(master_->Bind("obj", obj).ok());
  auto on_laptop = *laptop_->Lookup<Node>("obj")->Replicate(ReplicationMode::Incremental(1));
  auto on_pda = *pda_->Lookup<Node>("obj")->Replicate(ReplicationMode::Incremental(1));

  std::vector<std::pair<ObjectId, bool>> events;
  pda_->SetReplicaUpdateCallback(
      [&](ObjectId id, bool stale) { events.emplace_back(id, stale); });

  on_laptop->SetLabel("wins");
  ASSERT_TRUE(laptop_->Put(on_laptop).ok());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].second);  // invalidation = stale
  EXPECT_TRUE(pda_->IsStale(on_pda));
}

TEST_F(PushTest, DepartedHolderIsIgnored) {
  auto obj = test::MakeChain(1, 16, "o");
  ASSERT_TRUE(master_->Bind("obj", obj).ok());
  auto on_laptop = *laptop_->Lookup<Node>("obj")->Replicate(ReplicationMode::Incremental(1));
  {
    auto on_pda = *pda_->Lookup<Node>("obj")->Replicate(ReplicationMode::Incremental(1));
    (void)on_pda;
  }
  pda_->Stop();  // the PDA vanished

  on_laptop->SetLabel("still-works");
  EXPECT_TRUE(laptop_->Put(on_laptop).ok());
  EXPECT_EQ(obj->label, "still-works");
}

}  // namespace
}  // namespace obiwan
