// Wire format unit + property tests: primitive roundtrips, varint edges,
// truncation/corruption safety, codec coverage.
#include <gtest/gtest.h>

#include <limits>
#include <random>

#include "wire/codec.h"
#include "wire/reader.h"
#include "wire/writer.h"

namespace obiwan::wire {
namespace {

TEST(Writer, PrimitivesRoundTrip) {
  Writer w;
  w.U8(0xAB);
  w.U16(0x1234);
  w.U32(0xDEADBEEF);
  w.U64(0x0123456789ABCDEFull);
  w.Bool(true);
  w.Bool(false);
  w.F64(3.14159);
  w.F32(2.5f);
  w.String("hello");
  w.Blob(Bytes{1, 2, 3});

  Reader r(AsView(w.data()));
  EXPECT_EQ(r.U8(), 0xAB);
  EXPECT_EQ(r.U16(), 0x1234);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.Bool());
  EXPECT_FALSE(r.Bool());
  EXPECT_DOUBLE_EQ(r.F64(), 3.14159);
  EXPECT_FLOAT_EQ(r.F32(), 2.5f);
  EXPECT_EQ(r.String(), "hello");
  EXPECT_EQ(r.Blob(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE(r.ok());
}

TEST(Writer, LittleEndianLayout) {
  Writer w;
  w.U32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[0], 0x04);
  EXPECT_EQ(w.data()[3], 0x01);
}

TEST(Varint, KnownEncodings) {
  auto encoded_size = [](std::uint64_t v) {
    Writer w;
    w.Varint(v);
    return w.size();
  };
  EXPECT_EQ(encoded_size(0), 1u);
  EXPECT_EQ(encoded_size(127), 1u);
  EXPECT_EQ(encoded_size(128), 2u);
  EXPECT_EQ(encoded_size(16383), 2u);
  EXPECT_EQ(encoded_size(16384), 3u);
  EXPECT_EQ(encoded_size(std::numeric_limits<std::uint64_t>::max()), 10u);
}

TEST(Varint, BoundaryRoundTrips) {
  for (std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{127}, std::uint64_t{128},
        std::uint64_t{16383}, std::uint64_t{16384}, std::uint64_t{1} << 32,
        std::numeric_limits<std::uint64_t>::max() - 1,
        std::numeric_limits<std::uint64_t>::max()}) {
    Writer w;
    w.Varint(v);
    Reader r(AsView(w.data()));
    EXPECT_EQ(r.Varint(), v);
    EXPECT_TRUE(r.ok());
  }
}

TEST(Varint, SignedZigzag) {
  for (std::int64_t v :
       {std::int64_t{0}, std::int64_t{-1}, std::int64_t{1}, std::int64_t{-64},
        std::int64_t{63}, std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<std::int64_t>::max()}) {
    Writer w;
    w.Svarint(v);
    Reader r(AsView(w.data()));
    EXPECT_EQ(r.Svarint(), v) << v;
    EXPECT_TRUE(r.ok());
  }
}

TEST(Varint, SmallMagnitudesStaySmall) {
  Writer w;
  w.Svarint(-1);
  EXPECT_EQ(w.size(), 1u);  // zigzag keeps -1 compact, unlike two's complement
}

TEST(Reader, TruncationIsStickyNotFatal) {
  Writer w;
  w.U32(42);
  Reader r(AsView(w.data()));
  EXPECT_EQ(r.U32(), 42u);
  EXPECT_EQ(r.U32(), 0u);  // past the end: zero, marked failed
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  // Everything after the failure keeps returning zero values.
  EXPECT_EQ(r.U64(), 0u);
  EXPECT_EQ(r.String(), "");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Reader, MalformedVarintFails) {
  Bytes data(11, 0xFF);  // continuation bit forever
  Reader r(AsView(data));
  EXPECT_EQ(r.Varint(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(Reader, HostileStringLength) {
  Writer w;
  w.Varint(std::numeric_limits<std::uint64_t>::max());  // absurd length prefix
  Reader r(AsView(w.data()));
  EXPECT_EQ(r.String(), "");
  EXPECT_FALSE(r.ok());
}

TEST(Reader, ExplicitFail) {
  Writer w;
  w.U8(7);
  Reader r(AsView(w.data()));
  r.Fail("bad enum");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.U8(), 0);  // reads after Fail return nothing
  // First failure wins.
  r.Fail("second");
  EXPECT_NE(r.status().message().find("bad enum"), std::string::npos);
}

TEST(Reader, BlobViewDoesNotCopy) {
  Writer w;
  w.Blob(Bytes{9, 8, 7});
  Reader r(AsView(w.data()));
  BytesView v = r.BlobView();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v.data(), w.data().data() + 1);  // points into the source buffer
}

// --- Codec coverage ---------------------------------------------------------

template <typename T>
T RoundTrip(const T& v) {
  Writer w;
  Encode(w, v);
  Reader r(AsView(w.data()));
  T out = Decode<T>(r);
  EXPECT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r.AtEnd());
  return out;
}

TEST(Codec, Scalars) {
  EXPECT_EQ(RoundTrip<bool>(true), true);
  EXPECT_EQ(RoundTrip<std::uint8_t>(255), 255);
  EXPECT_EQ(RoundTrip<std::int32_t>(-123456), -123456);
  EXPECT_EQ(RoundTrip<std::uint64_t>(1ull << 63), 1ull << 63);
  EXPECT_DOUBLE_EQ(RoundTrip<double>(-2.718), -2.718);
  EXPECT_EQ(RoundTrip<std::string>("wide area"), "wide area");
}

TEST(Codec, OutOfRangeIntegerRejected) {
  Writer w;
  Encode<std::uint64_t>(w, 300);
  Reader r(AsView(w.data()));
  EXPECT_EQ(Decode<std::uint8_t>(r), 0);
  EXPECT_FALSE(r.ok());
}

TEST(Codec, SignedOutOfRangeRejected) {
  Writer w;
  Encode<std::int64_t>(w, -40000);
  Reader r(AsView(w.data()));
  EXPECT_EQ(Decode<std::int16_t>(r), 0);
  EXPECT_FALSE(r.ok());
}

TEST(Codec, Containers) {
  EXPECT_EQ(RoundTrip(std::vector<std::int32_t>{1, -2, 3}),
            (std::vector<std::int32_t>{1, -2, 3}));
  EXPECT_EQ(RoundTrip(std::vector<std::string>{"a", "", "ccc"}),
            (std::vector<std::string>{"a", "", "ccc"}));
  EXPECT_EQ(RoundTrip(Bytes{0, 255, 128}), (Bytes{0, 255, 128}));
  EXPECT_EQ(RoundTrip(std::optional<std::string>{}), std::nullopt);
  EXPECT_EQ(RoundTrip(std::optional<std::string>{"x"}), "x");
  EXPECT_EQ(RoundTrip(std::pair<std::string, std::int64_t>{"k", -7}),
            (std::pair<std::string, std::int64_t>{"k", -7}));
  std::map<std::uint32_t, std::string> m{{1, "one"}, {2, "two"}};
  EXPECT_EQ(RoundTrip(m), m);
  std::unordered_map<std::string, std::uint64_t> um{{"a", 1}, {"b", 2}};
  EXPECT_EQ(RoundTrip(um), um);
}

TEST(Codec, NestedContainers) {
  std::vector<std::vector<std::string>> v{{"a", "b"}, {}, {"c"}};
  EXPECT_EQ(RoundTrip(v), v);
  std::map<std::string, std::vector<std::int32_t>> m{{"xs", {1, 2}}, {"ys", {}}};
  EXPECT_EQ(RoundTrip(m), m);
}

TEST(Codec, Tuples) {
  auto t = std::make_tuple(std::string("call"), std::int64_t{-9}, true);
  EXPECT_EQ(RoundTrip(t), t);
  EXPECT_EQ(RoundTrip(std::tuple<>{}), std::tuple<>{});
}

TEST(Codec, Ids) {
  ObjectId oid{7, 12345};
  EXPECT_EQ(RoundTrip(oid), oid);
  ProxyId pin{3, 999};
  EXPECT_EQ(RoundTrip(pin), pin);
}

TEST(Codec, HostileContainerLengthRejected) {
  Writer w;
  w.Varint(1'000'000);  // claims a million entries, provides none
  Reader r(AsView(w.data()));
  auto v = Decode<std::vector<std::int32_t>>(r);
  EXPECT_TRUE(v.empty());
  EXPECT_FALSE(r.ok());
}

// --- Property sweeps ----------------------------------------------------------

class VarintPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintPropertyTest, RandomValuesRoundTrip) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    // Cover all magnitudes: shift a random 64-bit value by a random amount.
    std::uint64_t v = rng() >> (rng() % 64);
    Writer w;
    w.Varint(v);
    Reader r(AsView(w.data()));
    ASSERT_EQ(r.Varint(), v);
    ASSERT_TRUE(r.AtEnd());

    std::int64_t s = static_cast<std::int64_t>(rng() >> (rng() % 64)) *
                     ((rng() & 1) != 0u ? 1 : -1);
    Writer w2;
    w2.Svarint(s);
    Reader r2(AsView(w2.data()));
    ASSERT_EQ(r2.Svarint(), s);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VarintPropertyTest,
                         ::testing::Values(1, 42, 1337, 0xDEADBEEF));

class TruncationPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

// Property: decoding any strict prefix of a valid message never crashes and
// always reports failure (no silent short reads).
TEST_P(TruncationPropertyTest, EveryPrefixFailsCleanly) {
  std::mt19937_64 rng(GetParam());
  Writer w;
  w.String("header");
  w.Varint(rng());
  Encode(w, std::vector<std::string>{"one", "two", "three"});
  w.F64(1.25);
  Encode(w, ObjectId{3, 77});
  const Bytes& full = w.data();

  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    Reader r(BytesView(full.data(), cut));
    (void)r.String();
    (void)r.Varint();
    (void)Decode<std::vector<std::string>>(r);
    (void)r.F64();
    (void)Decode<ObjectId>(r);
    ASSERT_FALSE(r.ok()) << "prefix of " << cut << " bytes decoded 'successfully'";
    ASSERT_EQ(r.status().code(), StatusCode::kDataLoss);
  }

  // The full message decodes fine.
  Reader r(AsView(full));
  (void)r.String();
  (void)r.Varint();
  (void)Decode<std::vector<std::string>>(r);
  (void)r.F64();
  (void)Decode<ObjectId>(r);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TruncationPropertyTest, ::testing::Values(7, 99));

}  // namespace
}  // namespace obiwan::wire
