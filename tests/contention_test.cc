// Contention observatory: tracked-mutex wait/hold math on virtual clocks,
// histogram tail exemplars, the queue-depth profiler's deterministic sweep,
// lock-hotness ranking, the windowed lock-wait budget behind /healthz, and a
// concurrent scrape-vs-lock-traffic soak (the TSan target).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/contention.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "obiwan.h"
#include "obs/profiler.h"
#include "test_objects.h"

namespace obiwan {
namespace {

using core::ReplicationMode;
using test::Node;

// ---------------------------------------------------------------------------
// Minimal HTTP client (same shape as obs_test.cc): one request per
// connection against Site::admin_address().
// ---------------------------------------------------------------------------

struct HttpReply {
  int status = 0;
  std::string body;
};

HttpReply HttpGet(const std::string& address, const std::string& path) {
  HttpReply reply;
  const auto colon = address.rfind(':');
  if (colon == std::string::npos) return reply;
  const std::string host = address.substr(0, colon);
  const int port = std::stoi(address.substr(colon + 1));

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return reply;
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, host.c_str(), &sa.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    return reply;
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: " + host + "\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string raw;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) raw.append(buf, n);
  ::close(fd);

  const auto space = raw.find(' ');
  if (space != std::string::npos) reply.status = std::atoi(raw.c_str() + space);
  const auto blank = raw.find("\r\n\r\n");
  if (blank != std::string::npos) reply.body = raw.substr(blank + 4);
  return reply;
}

MetricLabels Named(const char* name) { return MetricLabels{{"name", name}}; }

// ---------------------------------------------------------------------------
// TrackedMutex wait/hold math, deterministic on explicit clocks.
// ---------------------------------------------------------------------------

TEST(ContentionLock, UncontendedHoldMathOnVirtualClock) {
  MetricsRegistry reg;
  VirtualClock clock;
  TrackedMutex mutex;
  mutex.BindTo(reg, "t_hold", clock);

  mutex.lock();
  clock.Sleep(5 * kMilli);
  mutex.unlock();

  const auto hold = reg.SummarizeHistograms("obiwan_lock_hold_ns",
                                            Named("t_hold"));
  EXPECT_EQ(hold.count, 1u);
  EXPECT_EQ(hold.sum, 5 * kMilli);
  EXPECT_EQ(reg.SumCounters("obiwan_lock_acquisitions_total", Named("t_hold")),
            1u);
  EXPECT_EQ(reg.SumCounters("obiwan_lock_contended_total", Named("t_hold")),
            0u);
  // Uncontended acquisitions record no wait sample at all (their wait is 0
  // by definition; an empty series keeps the wait histogram pure signal).
  EXPECT_EQ(
      reg.SummarizeHistograms("obiwan_lock_wait_ns", Named("t_hold")).count,
      0u);
}

TEST(ContentionLock, RecursiveHoldTimesOutermostAcquisition) {
  MetricsRegistry reg;
  VirtualClock clock;
  TrackedRecursiveMutex mutex;
  mutex.BindTo(reg, "t_rec", clock);

  mutex.lock();
  clock.Sleep(2 * kMilli);
  mutex.lock();  // re-entry must not restart the hold timer
  clock.Sleep(3 * kMilli);
  mutex.unlock();
  clock.Sleep(4 * kMilli);
  mutex.unlock();  // outermost release: one sample, the full 9ms span

  const auto hold = reg.SummarizeHistograms("obiwan_lock_hold_ns",
                                            Named("t_rec"));
  EXPECT_EQ(hold.count, 1u);
  EXPECT_EQ(hold.sum, 9 * kMilli);
  EXPECT_EQ(reg.SumCounters("obiwan_lock_acquisitions_total", Named("t_rec")),
            2u);
}

// Thread-safe explicit clock for cross-thread determinism (VirtualClock is
// single-threaded by design).
class AtomicTestClock final : public Clock {
 public:
  Nanos Now() const override { return now_.load(std::memory_order_acquire); }
  void Sleep(Nanos d) override {
    if (d > 0) now_.fetch_add(d, std::memory_order_acq_rel);
  }

 private:
  std::atomic<Nanos> now_{0};
};

TEST(ContentionLock, ContendedWaitMeasuredDeterministically) {
  MetricsRegistry reg;
  AtomicTestClock clock;
  TrackedMutex mutex;
  mutex.BindTo(reg, "t_wait", clock);

  mutex.lock();  // holder: the waiter must take the contended path
  std::thread waiter([&] {
    mutex.lock();
    mutex.unlock();
  });
  // The contended path reads its wait timestamp *before* announcing the
  // waiter (see contention.cc), so once the gauge reads 1 the blocked thread
  // has sampled t=0 and the clock may be advanced without racing it.
  while (reg.SumGauges("obiwan_lock_waiters", Named("t_wait")) != 1) {
    std::this_thread::yield();
  }
  clock.Sleep(5 * kMilli);
  mutex.unlock();
  waiter.join();

  const auto wait = reg.SummarizeHistograms("obiwan_lock_wait_ns",
                                            Named("t_wait"));
  EXPECT_EQ(wait.count, 1u);
  EXPECT_EQ(wait.sum, 5 * kMilli);
  EXPECT_EQ(reg.SumCounters("obiwan_lock_contended_total", Named("t_wait")),
            1u);
  EXPECT_EQ(reg.SumCounters("obiwan_lock_acquisitions_total", Named("t_wait")),
            2u);
  EXPECT_EQ(reg.SumGauges("obiwan_lock_waiters", Named("t_wait")), 0);
}

// ---------------------------------------------------------------------------
// Histogram tail exemplars.
// ---------------------------------------------------------------------------

TEST(ContentionExemplar, CapturesActiveTraceAboveThreshold) {
  MetricsRegistry reg;
  Histogram& h = reg.GetHistogram("test_tail_ns", {},
                                  ExponentialBuckets(100, 2.0, 10));
  h.SetExemplarThreshold(500);
  {
    TraceContext::Scope scope(TraceId{1, 7});
    h.Observe(800);
  }

  const auto exemplars = h.Exemplars();
  ASSERT_EQ(exemplars.size(), 1u);
  EXPECT_EQ(exemplars[0].value, 800);
  EXPECT_EQ(exemplars[0].trace, (TraceId{1, 7}));

  // OpenMetrics rendering: the owning _bucket line carries the exemplar.
  const std::string prom = reg.DumpPrometheus();
  EXPECT_NE(prom.find(" # {trace_id=\"trace(1:7)\"} 800"), std::string::npos)
      << prom;
  // JSON rendering for the bench harness.
  const std::string json = reg.DumpJson();
  EXPECT_NE(json.find("\"tail_exemplars\":[{\"value\":800"), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":\"trace(1:7)\""), std::string::npos);
}

TEST(ContentionExemplar, SkipsWithoutTraceBelowThresholdOrWhenDisabled) {
  MetricsRegistry reg;
  Histogram& h = reg.GetHistogram("test_tail_ns", {},
                                  ExponentialBuckets(100, 2.0, 10));

  {
    // Disabled by default (threshold < 0): even a traced observation passes.
    TraceContext::Scope scope(TraceId{1, 8});
    h.Observe(900);
  }
  EXPECT_TRUE(h.Exemplars().empty());

  h.SetExemplarThreshold(500);
  h.Observe(900);  // no active trace: nothing to link back to
  {
    TraceContext::Scope scope(TraceId{1, 9});
    h.Observe(100);  // traced but below the tail threshold
  }
  EXPECT_TRUE(h.Exemplars().empty());
  EXPECT_EQ(reg.DumpPrometheus().find(" # {"), std::string::npos);
}

TEST(ContentionExemplar, RingKeepsMostRecentCaptures) {
  MetricsRegistry reg;
  Histogram& h = reg.GetHistogram("test_tail_ns", {},
                                  ExponentialBuckets(100, 2.0, 10));
  h.SetExemplarThreshold(0);
  TraceContext::Scope scope(TraceId{2, 1});
  const int observations = static_cast<int>(Histogram::kExemplarSlots) + 4;
  for (int i = 0; i < observations; ++i) h.Observe(1000 + i);

  const auto exemplars = h.Exemplars();
  ASSERT_EQ(exemplars.size(), Histogram::kExemplarSlots);
  // Oldest retained first; the first 4 captures were evicted.
  EXPECT_EQ(exemplars.front().value, 1004);
  EXPECT_EQ(exemplars.back().value, 1000 + observations - 1);
}

// ---------------------------------------------------------------------------
// Profiler: deterministic queue-depth sweep.
// ---------------------------------------------------------------------------

TEST(ContentionProfiler, SampleOnceReadsQueuesDeterministically) {
  net::LoopbackNetwork network;
  core::Site provider(85, network.CreateEndpoint("prov"));
  core::Site demander(86, network.CreateEndpoint("dem"));
  ASSERT_TRUE(provider.Start().ok());
  ASSERT_TRUE(demander.Start().ok());
  provider.HostRegistry();
  demander.UseRegistry("prov");
  provider.SetConsistencyPolicy(
      std::make_unique<consistency::WriteInvalidate>());

  auto doc = std::make_shared<Node>();
  ASSERT_TRUE(provider.Bind("doc", doc).ok());
  const ObjectId oid = provider.Export(doc);
  auto remote = demander.Lookup<Node>("doc");
  ASSERT_TRUE(remote.ok());
  auto ref = remote->Replicate(ReplicationMode::Incremental(1));
  ASSERT_TRUE(ref.ok());

  MetricsRegistry reg;
  obs::Profiler profiler(demander, obs::ProfilerOptions{}, reg);

  // Quiet site: everything empty.
  obs::ProfileReport before = profiler.SampleOnce();
  auto depth_of = [](const obs::ProfileReport& r, const std::string& queue) {
    for (const obs::QueueSample& q : r.queues) {
      if (q.queue == queue) return q.depth;
    }
    return std::int64_t{-1};
  };
  EXPECT_EQ(depth_of(before, "stale_replicas"), 0);
  EXPECT_EQ(depth_of(before, "notify_retries"), 0);
  EXPECT_EQ(depth_of(before, "fanout_inflight"), 0);
  // Loopback transport: no TCP pool series at all.
  EXPECT_EQ(depth_of(before, "tcp_pool_idle"), -1);

  // Invalidate the replica; the next sweep must see the backlog.
  doc->SetValue(42);
  ASSERT_TRUE(provider.MarkMasterUpdated(oid).ok());
  obs::ProfileReport after = profiler.SampleOnce();
  EXPECT_EQ(depth_of(after, "stale_replicas"), 1);

  // The sweep fed the gauge and remembered the report.
  EXPECT_EQ(reg.SumGauges("obiwan_queue_depth",
                          {{"site", "86"}, {"queue", "stale_replicas"}}),
            1);
  EXPECT_EQ(
      reg.SummarizeHistograms("obiwan_queue_depth_samples",
                              {{"queue", "stale_replicas"}})
          .count,
      2u);
  EXPECT_NE(profiler.last().ToJson().find(
                "{\"queue\":\"stale_replicas\",\"depth\":1}"),
            std::string::npos);
  EXPECT_NE(after.ToText().find("stale_replicas"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Lock-hotness ranking and the windowed wait budget.
// ---------------------------------------------------------------------------

TEST(ContentionHotness, RanksByTotalWaitWithStableTies) {
  MetricsRegistry reg;
  BindLockStats(reg, "alpha")->wait->Observe(50);
  BindLockStats(reg, "beta")->wait->Observe(100);
  BindLockStats(reg, "gamma")->wait->Observe(50);

  const auto rows = LockHotness(reg);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].name, "beta");
  // Equal wait totals: name ascending, so repeated reports don't flap.
  EXPECT_EQ(rows[1].name, "alpha");
  EXPECT_EQ(rows[2].name, "gamma");
  EXPECT_EQ(rows[0].wait_total_ns, 100);

  const auto top2 = LockHotness(reg, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[1].name, "alpha");

  const std::string text = LockHotnessText(rows);
  EXPECT_NE(text.find("beta"), std::string::npos);
  EXPECT_NE(LockHotnessText({}).find("no tracked locks"), std::string::npos);
}

TEST(ContentionWindow, BaselinesThenReportsPerWindowP99) {
  MetricsRegistry reg;
  LockWaitWindow window(reg);
  EXPECT_EQ(window.WindowP99(), 0);  // no lock series registered yet

  LockStats* stats = BindLockStats(reg, "w");
  stats->wait->Observe(2 * kMilli);
  EXPECT_EQ(window.WindowP99(), 0);  // first sight of the series: baseline

  stats->wait->Observe(8 * kMilli);
  const double p99 = window.WindowP99();
  EXPECT_GT(p99, static_cast<double>(4 * kMilli));  // only the 8ms is in-window

  EXPECT_EQ(window.WindowP99(), 0);  // quiet window: all-time history ignored
}

// ---------------------------------------------------------------------------
// /healthz lock-starvation budget (opt-in via AdminOptions).
// ---------------------------------------------------------------------------

TEST(ContentionHealthz, LockWaitBudgetFlipsReadiness) {
  auto transport = net::TcpTransport::Create(0);
  ASSERT_TRUE(transport.ok());
  core::Site site(87, std::move(*transport));
  ASSERT_TRUE(site.Start().ok());
  site.HostRegistry();

  core::Site::AdminOptions options;
  options.lock_wait_budget = 1 * kMilli;
  ASSERT_TRUE(site.ServeAdmin("0", options).ok());

  // First probe baselines the window.
  EXPECT_EQ(HttpGet(site.admin_address(), "/healthz").status, 200);

  // Inject a wait an order of magnitude over budget into the default
  // registry through a real contended tracked mutex.
  TrackedMutex slow{"healthz_inject"};
  slow.lock();
  std::thread blocked([&] {
    slow.lock();
    slow.unlock();
  });
  while (MetricsRegistry::Default().SumGauges("obiwan_lock_waiters",
                                              Named("healthz_inject")) != 1) {
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  slow.unlock();
  blocked.join();

  const HttpReply starved = HttpGet(site.admin_address(), "/healthz");
  EXPECT_EQ(starved.status, 503);
  EXPECT_NE(starved.body.find("\"status\":\"unhealthy\""), std::string::npos);
  EXPECT_NE(starved.body.find("lock_wait_p99_ns"), std::string::npos);
  EXPECT_NE(starved.body.find("\"lock_wait_budget\":1000000"),
            std::string::npos);

  // Quiet windows recover; other suites' background lock traffic may leak a
  // small wait into a window, so poll briefly rather than assert one-shot.
  int status = 0;
  for (int i = 0; i < 50 && status != 200; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    status = HttpGet(site.admin_address(), "/healthz").status;
  }
  EXPECT_EQ(status, 200);
}

// ---------------------------------------------------------------------------
// Admin surface: /profile.json and /contention.
// ---------------------------------------------------------------------------

TEST(ContentionAdmin, ServesProfileAndContentionReports) {
  auto transport = net::TcpTransport::Create(0);
  ASSERT_TRUE(transport.ok());
  core::Site site(88, std::move(*transport));
  ASSERT_TRUE(site.Start().ok());
  site.HostRegistry();
  ASSERT_TRUE(site.Bind("doc", test::MakeChain(2, 16)).ok());
  ASSERT_TRUE(site.ServeAdmin("0").ok());

  const HttpReply profile = HttpGet(site.admin_address(), "/profile.json");
  EXPECT_EQ(profile.status, 200);
  EXPECT_NE(profile.body.find("\"queues\":["), std::string::npos);
  EXPECT_NE(profile.body.find("\"queue\":\"stale_replicas\""),
            std::string::npos);
  // TCP transport: the pool series exists for this site.
  EXPECT_NE(profile.body.find("\"queue\":\"tcp_pool_idle\""),
            std::string::npos);
  EXPECT_NE(profile.body.find("\"locks\":["), std::string::npos);

  const HttpReply contention = HttpGet(site.admin_address(), "/contention");
  EXPECT_EQ(contention.status, 200);
  EXPECT_NE(contention.body.find("lock hotness"), std::string::npos);
  // The site mutex is tracked process-wide, so it must appear in the report.
  EXPECT_NE(contention.body.find("site"), std::string::npos);

  // A scrape exposes the lock families and the process self-telemetry.
  const HttpReply metrics = HttpGet(site.admin_address(), "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("# TYPE obiwan_lock_wait_ns histogram"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("obiwan_lock_acquisitions_total{"),
            std::string::npos);
#ifdef __linux__
  EXPECT_NE(metrics.body.find("obiwan_process_rss_bytes"), std::string::npos);
  EXPECT_NE(metrics.body.find("obiwan_process_threads"), std::string::npos);
#endif
}

// ---------------------------------------------------------------------------
// Soak: scrapes racing contended lock traffic and exemplar captures (TSan).
// ---------------------------------------------------------------------------

TEST(ContentionSoak, ScrapesRaceContendedLocksAndExemplars) {
  auto& reg = MetricsRegistry::Default();
  Histogram& tail = reg.GetHistogram("obiwan_soak_tail_ns", {},
                                     ExponentialBuckets(100, 2.0, 10));
  tail.SetExemplarThreshold(0);
  TrackedMutex mutex{"soak"};

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 400; ++i) {
        TraceContext::Scope scope(TraceId{static_cast<SiteId>(t + 1),
                                          static_cast<std::uint64_t>(i + 1)});
        mutex.lock();
        tail.Observe(1000 + i);
        mutex.unlock();
      }
    });
  }
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)reg.DumpPrometheus();
      (void)reg.DumpJson();
      (void)LockHotness(reg);
      (void)tail.Exemplars();
    }
  });
  for (std::thread& w : workers) w.join();
  stop.store(true, std::memory_order_release);
  scraper.join();

  EXPECT_GE(reg.SumCounters("obiwan_lock_acquisitions_total", Named("soak")),
            1600u);
  EXPECT_FALSE(tail.Exemplars().empty());
}

}  // namespace
}  // namespace obiwan
