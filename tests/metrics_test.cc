// Metrics registry tests: counter/gauge/histogram semantics, percentile math
// at bucket boundaries, exporter formats, aggregation, and concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"

namespace obiwan {
namespace {

TEST(Counter, IncAndReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(Gauge, SetAddReset) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.Add(5);
  EXPECT_EQ(g.Value(), 12);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST(Histogram, BucketBoundariesAreInclusiveUpper) {
  // Bucket i covers bounds[i-1] < v <= bounds[i].
  Histogram h({100, 200});
  h.Observe(100);  // exactly on the first bound -> bucket 0
  h.Observe(101);  // just above -> bucket 1
  h.Observe(200);  // exactly on the second bound -> bucket 1
  h.Observe(201);  // overflow bucket
  auto counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_EQ(h.Sum(), 100 + 101 + 200 + 201);
  EXPECT_EQ(h.Max(), 201);
}

TEST(Histogram, NegativeObservationsClampToZero) {
  Histogram h({10});
  h.Observe(-5);
  EXPECT_EQ(h.BucketCounts()[0], 1u);
  EXPECT_EQ(h.Sum(), 0);
  EXPECT_EQ(h.Max(), 0);
}

TEST(Histogram, EmptyPercentileIsZero) {
  Histogram h({10, 20});
  EXPECT_EQ(h.Percentile(0.5), 0.0);
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Max(), 0);
}

TEST(Histogram, PercentileInterpolatesAtBucketBoundaries) {
  // 50 observations land exactly on bound 100, 50 exactly on bound 200. The
  // p50 rank falls precisely at the end of the first bucket -> exactly 100;
  // p95/p99 interpolate linearly inside the second bucket.
  Histogram h({100, 200});
  for (int i = 0; i < 50; ++i) h.Observe(100);
  for (int i = 0; i < 50; ++i) h.Observe(200);
  EXPECT_DOUBLE_EQ(h.P50(), 100.0);
  EXPECT_DOUBLE_EQ(h.P95(), 190.0);  // 100 + (95-50)/50 * 100
  EXPECT_DOUBLE_EQ(h.P99(), 198.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 200.0);  // p100 == Max
}

TEST(Histogram, FirstBucketInterpolatesFromZero) {
  Histogram h({100});
  h.Observe(100);
  // One observation: p50 rank = 0.5 of 1, half-way through [0, 100].
  EXPECT_DOUBLE_EQ(h.P50(), 50.0);
}

TEST(Histogram, OverflowRanksReturnTrackedMax) {
  Histogram h({100});
  for (int i = 0; i < 10; ++i) h.Observe(5000);
  EXPECT_DOUBLE_EQ(h.P50(), 5000.0);
  EXPECT_DOUBLE_EQ(h.P99(), 5000.0);
  EXPECT_EQ(h.Max(), 5000);
}

TEST(Histogram, PercentileNeverExceedsMax) {
  // All mass in (100, 200] but the real max is 150 — interpolation must not
  // report a latency larger than anything observed.
  Histogram h({100, 200});
  for (int i = 0; i < 100; ++i) h.Observe(150);
  EXPECT_DOUBLE_EQ(h.P99(), 150.0);
}

TEST(Histogram, ResetZeroesEverything) {
  Histogram h({10});
  h.Observe(5);
  h.Observe(50);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Sum(), 0);
  EXPECT_EQ(h.Max(), 0);
  for (auto c : h.BucketCounts()) EXPECT_EQ(c, 0u);
}

TEST(ExponentialBucketsTest, GrowsByFactor) {
  auto bounds = ExponentialBuckets(1000, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_EQ(bounds[0], 1000);
  EXPECT_EQ(bounds[1], 2000);
  EXPECT_EQ(bounds[2], 4000);
  EXPECT_EQ(bounds[3], 8000);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(Registry, SameIdentityReturnsSameHandle) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("x_total", {{"site", "1"}});
  Counter& b = reg.GetCounter("x_total", {{"site", "1"}});
  EXPECT_EQ(&a, &b);
  Counter& c = reg.GetCounter("x_total", {{"site", "2"}});
  EXPECT_NE(&a, &c);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(Registry, LabelOrderIsCanonicalized) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("x_total", {{"a", "1"}, {"b", "2"}});
  Counter& b = reg.GetCounter("x_total", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b);
}

TEST(Registry, TypeMismatchYieldsDummyNotCrash) {
  MetricsRegistry reg;
  Counter& real = reg.GetCounter("mixed", {});
  real.Inc(7);
  Gauge& dummy = reg.GetGauge("mixed", {});
  dummy.Set(99);  // goes to the process-wide dummy, not the counter
  EXPECT_EQ(real.Value(), 7u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, ResetZeroesButKeepsHandles) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("c_total", {});
  Histogram& h = reg.GetHistogram("h_ns", {}, {10, 20});
  c.Inc(5);
  h.Observe(15);
  reg.Reset();
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(h.Count(), 0u);
  c.Inc();  // handle still live and registered
  EXPECT_EQ(reg.GetCounter("c_total", {}).Value(), 1u);
}

TEST(Registry, DumpTextListsEveryInstance) {
  MetricsRegistry reg;
  reg.GetCounter("req_total", {{"site", "1"}}).Inc(3);
  reg.GetGauge("depth", {}).Set(-2);
  reg.GetHistogram("lat_ns", {}, {10}).Observe(5);
  std::string text = reg.DumpText();
  EXPECT_NE(text.find("req_total{site=\"1\"} 3"), std::string::npos);
  EXPECT_NE(text.find("depth -2"), std::string::npos);
  EXPECT_NE(text.find("count=1"), std::string::npos);
}

TEST(Registry, DumpPrometheusExpandsHistograms) {
  MetricsRegistry reg;
  reg.GetCounter("req_total", {{"site", "1"}}, "requests").Inc(3);
  Histogram& h = reg.GetHistogram("lat_ns", {}, {10, 20}, "latency");
  h.Observe(5);
  h.Observe(25);
  std::string prom = reg.DumpPrometheus();
  EXPECT_NE(prom.find("# TYPE req_total counter"), std::string::npos);
  EXPECT_NE(prom.find("req_total{site=\"1\"} 3"), std::string::npos);
  EXPECT_NE(prom.find("lat_ns_bucket{le=\"10\"} 1"), std::string::npos);
  // Buckets are cumulative and end with +Inf == count.
  EXPECT_NE(prom.find("lat_ns_bucket{le=\"20\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("lat_ns_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(prom.find("lat_ns_count 2"), std::string::npos);
}

TEST(Registry, DumpJsonHasAllSections) {
  MetricsRegistry reg;
  reg.GetCounter("req_total", {{"site", "1"}}).Inc(3);
  reg.GetHistogram("lat_ns", {}, {10}).Observe(5);
  std::string json = reg.DumpJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\":["), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":["), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":["), std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
}

TEST(Registry, SummarizeHistogramsMergesBySubsetMatch) {
  MetricsRegistry reg;
  Histogram& site1 = reg.GetHistogram("lat_ns", {{"op", "call"}, {"site", "1"}},
                                      {100, 200});
  Histogram& site2 = reg.GetHistogram("lat_ns", {{"op", "call"}, {"site", "2"}},
                                      {100, 200});
  Histogram& other = reg.GetHistogram("lat_ns", {{"op", "get"}, {"site", "1"}},
                                      {100, 200});
  for (int i = 0; i < 50; ++i) site1.Observe(100);
  for (int i = 0; i < 50; ++i) site2.Observe(200);
  other.Observe(999999);  // different op — must not leak into the merge

  HistogramSummary s = reg.SummarizeHistograms("lat_ns", {{"op", "call"}});
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum, 50 * 100 + 50 * 200);
  EXPECT_EQ(s.max, 200);
  EXPECT_DOUBLE_EQ(s.p50, 100.0);
  EXPECT_DOUBLE_EQ(s.p95, 190.0);

  // Nothing matches -> zero summary.
  HistogramSummary none = reg.SummarizeHistograms("lat_ns", {{"op", "push"}});
  EXPECT_EQ(none.count, 0u);
  EXPECT_EQ(none.p99, 0.0);
}

TEST(Registry, SummarizeHistogramsSkipsMismatchedBounds) {
  MetricsRegistry reg;
  reg.GetHistogram("lat_ns", {{"site", "1"}}, {100}).Observe(50);
  reg.GetHistogram("lat_ns", {{"site", "2"}}, {999}).Observe(500);
  HistogramSummary s = reg.SummarizeHistograms("lat_ns");
  EXPECT_EQ(s.count, 1u);  // second series has different bounds
}

TEST(Registry, SumCountersBySubsetMatch) {
  MetricsRegistry reg;
  reg.GetCounter("faults_total", {{"site", "1"}}).Inc(3);
  reg.GetCounter("faults_total", {{"site", "2"}}).Inc(4);
  reg.GetCounter("other_total", {{"site", "1"}}).Inc(100);
  EXPECT_EQ(reg.SumCounters("faults_total"), 7u);
  EXPECT_EQ(reg.SumCounters("faults_total", {{"site", "2"}}), 4u);
  EXPECT_EQ(reg.SumCounters("missing_total"), 0u);
}

TEST(Registry, ConcurrentUpdatesLoseNothing) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  Counter& c = reg.GetCounter("hits_total", {});
  Histogram& h = reg.GetHistogram("lat_ns", {}, {100, 200, 400});
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Inc();
        h.Observe((t + 1) * 100);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.Value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.Count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.Max(), kThreads * 100);
  std::uint64_t bucket_total = 0;
  for (auto n : h.BucketCounts()) bucket_total += n;
  EXPECT_EQ(bucket_total, h.Count());
}

TEST(Registry, ConcurrentRegistrationIsSafe) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  std::vector<Counter*> handles(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, &handles, t] {
      handles[static_cast<std::size_t>(t)] =
          &reg.GetCounter("shared_total", {{"k", "v"}});
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(handles[0], handles[t]);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, NextInstanceIsMonotonic) {
  std::uint64_t a = MetricsRegistry::NextInstance();
  std::uint64_t b = MetricsRegistry::NextInstance();
  EXPECT_LT(a, b);
}

TEST(Registry, DumpPrometheusEscapesLabelValues) {
  MetricsRegistry reg;
  reg.GetCounter("esc_total",
                 {{"path", "a\\b"}, {"msg", "he said \"hi\"\nbye"}},
                 "line one\nback\\slash")
      .Inc(1);
  std::string prom = reg.DumpPrometheus();
  // Label values: backslash, quote, and newline are escaped per the
  // Prometheus exposition format.
  EXPECT_NE(prom.find("path=\"a\\\\b\""), std::string::npos);
  EXPECT_NE(prom.find("msg=\"he said \\\"hi\\\"\\nbye\""), std::string::npos);
  // HELP text: backslash and newline escaped (quotes stay raw there).
  EXPECT_NE(prom.find("# HELP esc_total line one\\nback\\\\slash"),
            std::string::npos);
  // No raw newline may survive inside any exposition line.
  for (std::size_t pos = prom.find('\n'); pos + 1 < prom.size();
       pos = prom.find('\n', pos + 1)) {
    EXPECT_NE(prom[pos + 1], '"');  // a line never starts mid-label-value
  }
  // The text dump (and registry identity) still use the raw value.
  EXPECT_NE(reg.DumpText().find("msg=\"he said \"hi\"\nbye\""),
            std::string::npos);
}

TEST(Registry, DumpPrometheusEscapedHistogramLabels) {
  MetricsRegistry reg;
  reg.GetHistogram("esc_ns", {{"op", "a\"b"}}, {10}).Observe(5);
  std::string prom = reg.DumpPrometheus();
  EXPECT_NE(prom.find("esc_ns_bucket{op=\"a\\\"b\",le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("esc_ns_count{op=\"a\\\"b\"} 1"), std::string::npos);
}

}  // namespace
}  // namespace obiwan
