// The sharded object table (PR 8): record lifecycle, pointer-identity
// symmetry, the holder index, guard semantics — plus site-level coverage
// that the OBI2 snapshot format round-trips over the sharded table and a
// real-socket soak that hammers get/put/drop/inspect concurrently (runs
// under TSan in tools/ci.sh).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/object_table.h"
#include "obiwan.h"
#include "test_objects.h"

namespace obiwan {
namespace {

using core::MasterEntry;
using core::ObjectTable;
using core::ReplicaEntry;
using core::ReplicationMode;
using test::Node;

MasterEntry MakeMaster(const std::shared_ptr<Node>& obj) {
  MasterEntry record;
  record.obj = obj;
  return record;
}

ReplicaEntry MakeReplica(const std::shared_ptr<Node>& obj) {
  ReplicaEntry record;
  record.obj = obj;
  return record;
}

TEST(ObjectTableTest, EmplaceFindEraseRoundTrip) {
  ObjectTable table;
  auto a = std::make_shared<Node>();
  auto b = std::make_shared<Node>();
  const ObjectId ma{1, 1};
  const ObjectId rb{2, 9};

  {
    ObjectTable::ShardGuard guard(table, ma);
    auto [record, inserted] = table.EmplaceMaster(ma, MakeMaster(a));
    ASSERT_TRUE(inserted);
    ASSERT_NE(record, nullptr);
    EXPECT_EQ(record->version, 1u);
  }
  {
    ObjectTable::ShardGuard guard(table, rb);
    auto [record, inserted] = table.EmplaceReplica(rb, MakeReplica(b));
    ASSERT_TRUE(inserted);
    ASSERT_NE(record, nullptr);
  }
  EXPECT_EQ(table.master_count(), 1u);
  EXPECT_EQ(table.replica_count(), 1u);
  EXPECT_EQ(table.FindLocked(ma).get(), a.get());
  EXPECT_EQ(table.FindLocked(rb).get(), b.get());
  EXPECT_TRUE(table.ContainsMaster(ma));
  EXPECT_FALSE(table.ContainsReplica(ma));
  EXPECT_TRUE(table.ContainsReplica(rb));

  {
    ObjectTable::WorldGuard world(table);
    EXPECT_TRUE(table.CheckConsistency());
  }

  EXPECT_TRUE(table.EraseMaster(ma));
  EXPECT_FALSE(table.EraseMaster(ma));  // second erase is a no-op
  EXPECT_TRUE(table.EraseReplica(rb));
  EXPECT_EQ(table.master_count(), 0u);
  EXPECT_EQ(table.replica_count(), 0u);
  EXPECT_EQ(table.FindLocked(ma), nullptr);
  {
    ObjectTable::WorldGuard world(table);
    EXPECT_TRUE(table.CheckConsistency());
  }
}

TEST(ObjectTableTest, DuplicateAndCrossRoleEmplaceAreRejected) {
  ObjectTable table;
  auto a = std::make_shared<Node>();
  auto b = std::make_shared<Node>();
  const ObjectId id{1, 5};

  ObjectTable::ShardGuard guard(table, id);
  auto [first, inserted] = table.EmplaceMaster(id, MakeMaster(a));
  ASSERT_TRUE(inserted);
  // Same role: the existing record comes back, not a replacement.
  auto [again, inserted_again] = table.EmplaceMaster(id, MakeMaster(b));
  EXPECT_FALSE(inserted_again);
  EXPECT_EQ(again, first);
  EXPECT_EQ(again->obj.get(), a.get());
  // Cross role: an id can hold one record, of one role.
  auto [cross, inserted_cross] = table.EmplaceReplica(id, MakeReplica(b));
  EXPECT_FALSE(inserted_cross);
  EXPECT_EQ(cross, nullptr);
}

// Bug-1 regression (PR 8): the old Site only erased ptr_ids_ on the
// replica-eviction path, so a heap address that outlived (or was recycled
// after) its record kept resolving to the dead record's id. The sharded
// table keeps the pointer map symmetric by construction: erase removes the
// binding, re-emplacing the same address under a new id rebinds it, and a
// stale double-erase of the old id must not destroy the new binding.
TEST(ObjectTableTest, PointerIdentitySurvivesAddressReuseUnderNewId) {
  ObjectTable table;
  auto obj = std::make_shared<Node>();  // one heap address, two lifetimes
  const ObjectId old_id{1, 1};
  const ObjectId new_id{1, 2};

  {
    ObjectTable::ShardGuard guard(table, old_id);
    ASSERT_TRUE(table.EmplaceMaster(old_id, MakeMaster(obj)).second);
  }
  EXPECT_EQ(table.PtrId(obj.get()), old_id);

  ASSERT_TRUE(table.EraseMaster(old_id));
  EXPECT_FALSE(table.PtrId(obj.get()).valid())
      << "erase left a dangling pointer-identity entry";

  // The "recycled address": the same Shareable* comes back as a different
  // object identity.
  {
    ObjectTable::ShardGuard guard(table, new_id);
    ASSERT_TRUE(table.EmplaceReplica(new_id, MakeReplica(obj)).second);
  }
  EXPECT_EQ(table.PtrId(obj.get()), new_id);

  // A late erase of the dead id (e.g. a racing teardown path) must not take
  // the fresh binding with it.
  EXPECT_FALSE(table.EraseMaster(old_id));
  EXPECT_EQ(table.PtrId(obj.get()), new_id);

  ObjectTable::WorldGuard world(table);
  EXPECT_TRUE(table.CheckConsistency());
}

TEST(ObjectTableTest, PtrIdOrInsertFirstWriterWins) {
  ObjectTable table;
  auto obj = std::make_shared<Node>();
  const ObjectId winner{1, 10};
  const ObjectId loser{1, 11};

  EXPECT_EQ(table.PtrIdOrInsert(obj.get(), winner), winner);
  // A racing minter loses and adopts the existing binding.
  EXPECT_EQ(table.PtrIdOrInsert(obj.get(), loser), winner);
  EXPECT_EQ(table.PtrId(obj.get()), winner);
}

TEST(ObjectTableTest, HolderIndexTracksLinksAcrossShards) {
  ObjectTable table;
  const net::Address pda = "pda:1";
  const net::Address laptop = "laptop:1";
  std::vector<ObjectId> ids;
  for (std::uint64_t i = 0; i < 8; ++i) {
    const ObjectId id{1, 100 + i};  // spread across shards
    ids.push_back(id);
    ObjectTable::ShardGuard guard(table, id);
    ASSERT_TRUE(table.EmplaceMaster(id, MakeMaster(std::make_shared<Node>()))
                    .second);
    EXPECT_TRUE(table.LinkHolder(id, pda));
    EXPECT_FALSE(table.LinkHolder(id, pda));  // idempotent
  }
  {
    ObjectTable::ShardGuard guard(table, ids[0]);
    EXPECT_TRUE(table.LinkHolder(ids[0], laptop));
  }
  EXPECT_TRUE(table.HolderAnywhere(pda));
  EXPECT_TRUE(table.HolderAnywhere(laptop));

  {
    ObjectTable::ShardGuard guard(table, ids[1]);
    EXPECT_TRUE(table.UnlinkHolder(ids[1], pda));
    EXPECT_FALSE(table.UnlinkHolder(ids[1], pda));
  }
  EXPECT_EQ(table.RemoveHolderEverywhere(pda), ids.size() - 1);
  EXPECT_FALSE(table.HolderAnywhere(pda));
  EXPECT_TRUE(table.HolderAnywhere(laptop));
  {
    ObjectTable::ShardGuard guard(table, ids[0]);
    ASSERT_NE(table.Master(ids[0]), nullptr);
    EXPECT_EQ(table.Master(ids[0])->holders,
              std::vector<net::Address>{laptop});
  }
  ObjectTable::WorldGuard world(table);
  EXPECT_TRUE(table.CheckConsistency());
}

TEST(ObjectTableTest, WorldGuardIsReentrantAndAbsorbsInnerGuards) {
  ObjectTable table;
  const ObjectId id{1, 3};
  ObjectTable::WorldGuard outer(table);
  EXPECT_TRUE(table.WorldHeldByThisThread());
  {
    // All of these would deadlock against the world if they really locked.
    ObjectTable::WorldGuard inner(table);
    ObjectTable::ShardGuard shard(table, id);
    ObjectTable::BatchGuard batch(table, {id, ObjectId{2, 3}, id});
    ASSERT_TRUE(table.EmplaceMaster(id, MakeMaster(std::make_shared<Node>()))
                    .second);
    // Self-locking lookups are legal (and lock-free) under the world.
    EXPECT_TRUE(table.Contains(id));
    EXPECT_NE(table.FindLocked(id), nullptr);
  }
  EXPECT_TRUE(table.WorldHeldByThisThread());
  EXPECT_TRUE(table.CheckConsistency());
}

TEST(ObjectTableTest, ForEachSkipsErasedSlotsAndSeesReuse) {
  ObjectTable table;
  for (std::uint64_t i = 0; i < 16; ++i) {
    const ObjectId id{1, i + 1};
    ObjectTable::ShardGuard guard(table, id);
    ASSERT_TRUE(table.EmplaceMaster(id, MakeMaster(std::make_shared<Node>()))
                    .second);
  }
  for (std::uint64_t i = 0; i < 16; i += 2) {
    ASSERT_TRUE(table.EraseMaster(ObjectId{1, i + 1}));
  }
  std::size_t seen = 0;
  table.ForEachMaster([&](ObjectId id, const MasterEntry&) {
    EXPECT_EQ(id.local % 2, 0u);  // only the even-numbered survivors
    ++seen;
  });
  EXPECT_EQ(seen, 8u);

  // Freed arena slots are reused in place for new records.
  const ObjectId reused{1, 101};
  {
    ObjectTable::ShardGuard guard(table, reused);
    ASSERT_TRUE(table.EmplaceMaster(reused, MakeMaster(std::make_shared<Node>()))
                    .second);
  }
  seen = 0;
  table.ForEachMaster([&](ObjectId, const MasterEntry&) { ++seen; });
  EXPECT_EQ(seen, 9u);
  ObjectTable::WorldGuard world(table);
  EXPECT_TRUE(table.CheckConsistency());
}

// Table-level concurrency soak: writers, erasers, readers and whole-table
// sweeps race across shards; the invariant check must hold afterwards.
TEST(ObjectTableTest, ConcurrentMutationKeepsInvariants) {
  ObjectTable table;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 400;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&table, t] {
      const net::Address addr = "holder:" + std::to_string(t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const ObjectId id{1, static_cast<std::uint64_t>(t * kOpsPerThread + i + 1)};
        auto obj = std::make_shared<Node>();
        {
          ObjectTable::ShardGuard guard(table, id);
          if (table.EmplaceMaster(id, MakeMaster(obj)).second) {
            table.LinkHolder(id, addr);
          }
        }
        (void)table.FindLocked(id);
        (void)table.PtrId(obj.get());
        if (i % 3 == 0) table.EraseMaster(id);
        if (i % 64 == 0) {
          std::size_t count = 0;
          table.ForEachMaster([&count](ObjectId, const MasterEntry&) { ++count; });
          (void)count;
        }
        if (i % 128 == 0) {
          ObjectTable::WorldGuard world(table);
          EXPECT_TRUE(table.CheckConsistency());
        }
      }
      table.RemoveHolderEverywhere(addr);
    });
  }
  for (std::thread& w : workers) w.join();
  ObjectTable::WorldGuard world(table);
  EXPECT_TRUE(table.CheckConsistency());
  EXPECT_EQ(table.replica_count(), 0u);
}

// ---------------------------------------------------------------------------
// Site-level: snapshots and a real-socket soak over the sharded table
// ---------------------------------------------------------------------------

// The OBI2 snapshot format round-trips over the sharded table, and the
// restore rebuilds the derived state the old code kept in separate maps:
// pointer identity (Export of a restored object returns its restored id,
// not a fresh mint) and holder registrations/health.
TEST(ObjectTableSnapshot, Obi2RoundTripRebuildsPtrIdentityAndHolders) {
  net::LoopbackNetwork network;
  auto provider = std::make_unique<core::Site>(1, network.CreateEndpoint("p"));
  ASSERT_TRUE(provider->Start().ok());
  provider->HostRegistry();
  provider->SetConsistencyPolicy(
      std::make_unique<consistency::WriteInvalidate>());
  core::Site demander(2, network.CreateEndpoint("d"));
  ASSERT_TRUE(demander.Start().ok());
  demander.UseRegistry("p");

  auto head = test::MakeChain(12, 32, "n");
  ASSERT_TRUE(provider->Bind("list", head).ok());
  auto remote = demander.Lookup<Node>("list");
  ASSERT_TRUE(remote.ok());
  auto ref = remote->Replicate(ReplicationMode::Incremental(12));
  ASSERT_TRUE(ref.ok());
  const ObjectId head_id = remote->id();

  // A put bumps versions so the round trip has non-trivial state to keep.
  (*ref)->SetValue(42);
  ASSERT_TRUE(demander.Put(*ref).ok());

  auto snapshot = provider->SaveSnapshot();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  provider->Stop();
  provider.reset();

  core::Site reborn(1, network.CreateEndpoint("p"));
  ASSERT_TRUE(reborn.LoadSnapshot(AsView(*snapshot)).ok());
  ASSERT_TRUE(reborn.Start().ok());
  reborn.SetConsistencyPolicy(std::make_unique<consistency::WriteInvalidate>());
  EXPECT_EQ(reborn.master_count(), 12u);

  // Pointer identity was rebuilt: exporting the restored head resolves to
  // the id it was saved under instead of minting a new one.
  auto restored_head = reborn.FindLocal(head_id);
  ASSERT_TRUE(restored_head.ok());
  EXPECT_EQ(reborn.Export(*restored_head), head_id);
  auto version = reborn.MasterVersion(head_id);
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 2u);

  // Holder registrations survived: the demander is still fanned out to.
  ASSERT_TRUE(reborn.MarkMasterUpdated(head_id).ok());
  EXPECT_TRUE(demander.IsStale(*ref));
  ASSERT_TRUE(demander.Refresh(*ref).ok());
  EXPECT_EQ(*demander.ReplicaVersion(*ref), *reborn.MasterVersion(head_id));
}

// Real-socket soak (TSan flavour in CI): four threads hammer the sharded
// table through its public faces at once — provider-side fanout
// (MarkMasterUpdated, with a dead holder so the drop path runs), demander
// refresh/put traffic, introspection sweeps (Inspect / eviction) and
// shard-guarded local reads.
TEST(ObjectTableTcpSoak, GetPutDropInspectRace) {
  auto provider_transport = net::TcpTransport::Create(0);
  ASSERT_TRUE(provider_transport.ok());
  core::Site provider(1, std::move(*provider_transport));
  ASSERT_TRUE(provider.Start().ok());
  provider.HostRegistry();
  provider.SetConsistencyPolicy(
      std::make_unique<consistency::WriteInvalidate>());

  auto head = test::MakeChain(8, 32, "n");
  ASSERT_TRUE(provider.Bind("list", head).ok());
  const ObjectId oid = provider.Export(head);

  auto live_transport = net::TcpTransport::Create(0);
  ASSERT_TRUE(live_transport.ok());
  core::Site live(2, std::move(*live_transport));
  ASSERT_TRUE(live.Start().ok());
  live.UseRegistry(provider.address());
  auto remote = live.Lookup<Node>("list");
  ASSERT_TRUE(remote.ok());
  auto ref = remote->Replicate(ReplicationMode::Incremental(8));
  ASSERT_TRUE(ref.ok()) << ref.status();

  // A holder that dies after registering: its notifications fail, so the
  // drop path (holder health, RemoveHolderEverywhere, retry purge) runs
  // concurrently with everything else.
  {
    auto dead_transport = net::TcpTransport::Create(0);
    ASSERT_TRUE(dead_transport.ok());
    auto dead = std::make_unique<core::Site>(3, std::move(*dead_transport));
    ASSERT_TRUE(dead->Start().ok());
    dead->UseRegistry(provider.address());
    auto dead_remote = dead->Lookup<Node>("list");
    ASSERT_TRUE(dead_remote.ok());
    auto dead_ref = dead_remote->Replicate(ReplicationMode::Incremental(1));
    ASSERT_TRUE(dead_ref.ok());
    dead->Stop();
  }

  std::atomic<int> puts_ok{0};
  std::thread marker([&] {
    for (int i = 0; i < 16; ++i) {
      (void)provider.MarkMasterUpdated(oid);
      (void)provider.PumpNotifyRetries();
    }
  });
  std::thread refresher([&] {
    for (int i = 0; i < 24; ++i) {
      (void)live.Refresh(*ref);
      (void)live.ReplicaVersion(*ref);
      (void)live.IsStale(*ref);
    }
  });
  std::thread inspector([&] {
    for (int i = 0; i < 12; ++i) {
      (void)provider.Inspect();
      (void)live.Inspect();
      (void)live.EvictIdleReplicas();
    }
  });
  std::thread writer([&] {
    for (int i = 0; i < 8; ++i) {
      // Racing MarkMasterUpdated means a put may lose the version race and
      // be (correctly) rejected — refresh first to keep most attempts live.
      (void)live.Refresh(*ref);
      live.WithObjectLock(*ref, [&] { (*ref)->value = i; });
      if (live.Put(*ref).ok()) puts_ok.fetch_add(1);
    }
  });
  marker.join();
  refresher.join();
  inspector.join();
  writer.join();

  EXPECT_GE(provider.stats().holders_dropped, 1u);
  EXPECT_EQ(provider.pending_notify_retries(), 0u);

  // The surviving holder still converges and writes after the storm.
  ASSERT_TRUE(live.Refresh(*ref).ok());
  live.WithObjectLock(*ref, [&] { (*ref)->value = 999; });
  ASSERT_TRUE(live.Put(*ref).ok());
  puts_ok.fetch_add(1);
  EXPECT_GE(puts_ok.load(), 1);
  EXPECT_EQ(*live.ReplicaVersion(*ref), *provider.MasterVersion(oid));

  live.Stop();
  provider.Stop();
}

}  // namespace
}  // namespace obiwan
