// Site surface tests: error paths, stats accounting, and state inspection
// not covered by the protocol suites.
#include <gtest/gtest.h>

#include "obiwan.h"
#include "test_objects.h"

namespace obiwan {
namespace {

using core::ReplicationMode;
using test::Node;

class SiteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    provider_ = std::make_unique<core::Site>(1, network_.CreateEndpoint("p"));
    demander_ = std::make_unique<core::Site>(2, network_.CreateEndpoint("d"));
    ASSERT_TRUE(provider_->Start().ok());
    ASSERT_TRUE(demander_->Start().ok());
    provider_->HostRegistry();
    demander_->UseRegistry("p");
  }

  core::Ref<Node> Replicate(const std::string& name, ReplicationMode mode) {
    auto remote = demander_->Lookup<Node>(name);
    EXPECT_TRUE(remote.ok());
    auto ref = remote->Replicate(mode);
    EXPECT_TRUE(ref.ok());
    return *ref;
  }

  net::LoopbackNetwork network_;
  std::unique_ptr<core::Site> provider_;
  std::unique_ptr<core::Site> demander_;
};

TEST_F(SiteTest, DoubleStartAndStopAreSafe) {
  EXPECT_EQ(provider_->Start().code(), StatusCode::kFailedPrecondition);
  provider_->Stop();
  provider_->Stop();  // idempotent
  EXPECT_TRUE(provider_->Start().ok());
}

TEST_F(SiteTest, PutErrorPaths) {
  auto obj = test::MakeChain(1, 8, "o");
  ASSERT_TRUE(provider_->Bind("obj", obj).ok());

  // Empty ref.
  core::Ref<Node> empty;
  EXPECT_EQ(demander_->Put(empty).code(), StatusCode::kFailedPrecondition);

  // Local object never replicated/exported.
  core::Ref<Node> fresh(std::make_shared<Node>());
  EXPECT_EQ(demander_->Put(fresh).code(), StatusCode::kFailedPrecondition);

  // A master cannot be "put" at its own site.
  core::Ref<Node> master_ref(obj);
  master_ref.set_id(ObjectId{1, 1});
  EXPECT_EQ(provider_->Put(master_ref).code(), StatusCode::kFailedPrecondition);

  // An unresolved proxy cannot be put.
  ASSERT_TRUE(provider_->Bind("list", test::MakeChain(3, 8, "l")).ok());
  auto ref = Replicate("list", ReplicationMode::Incremental(1));
  EXPECT_EQ(demander_->Put(ref->next).code(), StatusCode::kFailedPrecondition);
}

TEST_F(SiteTest, RefreshErrorPaths) {
  core::Ref<Node> empty;
  EXPECT_EQ(demander_->Refresh(empty).code(), StatusCode::kFailedPrecondition);
  core::Ref<Node> fresh(std::make_shared<Node>());
  EXPECT_EQ(demander_->Refresh(fresh).code(), StatusCode::kFailedPrecondition);
}

TEST_F(SiteTest, ReplicaVersionTracksPuts) {
  auto obj = test::MakeChain(1, 8, "o");
  ASSERT_TRUE(provider_->Bind("obj", obj).ok());
  auto ref = Replicate("obj", ReplicationMode::Incremental(1));

  auto v1 = demander_->ReplicaVersion(ref);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(*v1, 1u);

  ref->SetValue(5);
  ASSERT_TRUE(demander_->Put(ref).ok());
  auto v2 = demander_->ReplicaVersion(ref);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, 2u);

  auto mv = provider_->MasterVersion(ref.id());
  ASSERT_TRUE(mv.ok());
  EXPECT_EQ(*mv, 2u);

  core::Ref<Node> unknown(std::make_shared<Node>());
  EXPECT_FALSE(demander_->ReplicaVersion(unknown).ok());
  EXPECT_FALSE(provider_->MasterVersion(ObjectId{1, 999}).ok());
}

TEST_F(SiteTest, StatsAccounting) {
  auto head = test::MakeChain(4, 8, "n");
  ASSERT_TRUE(provider_->Bind("list", head).ok());
  demander_->ResetStats();
  provider_->ResetStats();

  auto ref = Replicate("list", ReplicationMode::Incremental(2));
  EXPECT_EQ(demander_->stats().gets_sent, 1u);
  EXPECT_EQ(provider_->stats().gets_served, 1u);
  EXPECT_EQ(demander_->stats().replicas_created, 2u);
  EXPECT_EQ(provider_->stats().objects_served, 2u);
  EXPECT_EQ(demander_->stats().proxy_outs_created, 1u);  // boundary to n2

  ref->SetValue(1);
  ASSERT_TRUE(demander_->Put(ref).ok());
  EXPECT_EQ(demander_->stats().puts_sent, 1u);
  EXPECT_EQ(provider_->stats().puts_served, 1u);

  auto remote = demander_->Lookup<Node>("list");
  ASSERT_TRUE(remote.ok());
  (void)remote->Invoke(&Node::Value);
  EXPECT_EQ(demander_->stats().calls_sent, 1u);
  EXPECT_EQ(provider_->stats().calls_served, 1u);
}

TEST_F(SiteTest, FindLocalCoversMastersAndReplicas) {
  auto obj = test::MakeChain(1, 8, "o");
  ObjectId oid = provider_->Export(obj);
  auto found = provider_->FindLocal(oid);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->get(), obj.get());

  EXPECT_EQ(provider_->FindLocal(ObjectId{1, 12345}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(demander_->FindLocal(oid).status().code(), StatusCode::kNotFound);
}

TEST_F(SiteTest, PutClusterOnNonClusterReplicaDegeneratesToSinglePut) {
  auto obj = test::MakeChain(1, 8, "o");
  ASSERT_TRUE(provider_->Bind("obj", obj).ok());
  auto ref = Replicate("obj", ReplicationMode::Incremental(1));
  ref->SetLabel("via-putcluster");
  ASSERT_TRUE(demander_->PutCluster(ref).ok());
  EXPECT_EQ(obj->label, "via-putcluster");
}

TEST_F(SiteTest, RefreshClusterRefreshesAllMembers) {
  auto head = test::MakeChain(3, 8, "n");
  ASSERT_TRUE(provider_->Bind("list", head).ok());
  auto ref = Replicate("list", ReplicationMode::Cluster(3));

  head->label = "c0-new";
  head->next.get()->label = "c1-new";
  ASSERT_TRUE(demander_->Refresh(ref).ok());
  EXPECT_EQ(ref->label, "c0-new");
  EXPECT_EQ(ref->next.get()->label, "c1-new");
}

TEST_F(SiteTest, ConsistencyPolicyAccessors) {
  EXPECT_EQ(provider_->consistency_policy().name(), "none");
  provider_->SetConsistencyPolicy(std::make_unique<consistency::LastWriterWins>());
  EXPECT_EQ(provider_->consistency_policy().name(), "last-writer-wins");
  provider_->SetConsistencyPolicy(nullptr);  // ignored, never null
  EXPECT_EQ(provider_->consistency_policy().name(), "last-writer-wins");
}

TEST_F(SiteTest, GetOnUnknownPinOrRoot) {
  auto obj = test::MakeChain(1, 8, "o");
  ASSERT_TRUE(provider_->Bind("obj", obj).ok());
  auto remote = demander_->Lookup<Node>("obj");
  ASSERT_TRUE(remote.ok());
  const auto& info = remote->info();

  core::ProxyDescriptor bad_pin{{1, 777}, "p", info.id, "Node"};
  EXPECT_EQ(demander_
                ->DemandThrough(bad_pin, info.id, ReplicationMode::Incremental(),
                                false, false)
                .status()
                .code(),
            StatusCode::kNotFound);

  core::ProxyDescriptor bad_root{info.pin, "p", ObjectId{1, 777}, "Node"};
  EXPECT_EQ(demander_
                ->DemandThrough(bad_root, ObjectId{1, 777},
                                ReplicationMode::Incremental(), false, false)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(SiteTest, UnknownClassInBatchIsCleanError) {
  // A provider could serve classes this binary does not link. Simulate with
  // a direct push of a record naming an unknown class — the handler path.
  auto obj = test::MakeChain(1, 8, "o");
  ASSERT_TRUE(provider_->Bind("obj", obj).ok());
  auto ref = Replicate("obj", ReplicationMode::Incremental(1));

  core::ObjectRecord rec;
  rec.id = ref.id();
  rec.class_name = "ClassFromTheFuture";
  rec.version = 9;
  rec.refs = {};
  wire::Writer body;
  wire::Encode(body, rec);
  auto reply = demander_->transport().Request(
      "d", AsView(rmi::WrapRequest(rmi::MessageKind::kPush, body)));
  // Self-request to exercise the handler: unknown class -> clean error.
  EXPECT_FALSE(reply.ok());
}

}  // namespace
}  // namespace obiwan
