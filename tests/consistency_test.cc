// Consistency-policy tests: the baseline (none), last-writer-wins, version
// vectors, and write-invalidate — each exercised through real multi-site
// put/get traffic.
#include <gtest/gtest.h>

#include "obiwan.h"
#include "test_objects.h"

namespace obiwan {
namespace {

using consistency::Dominates;
using consistency::LastWriterWins;
using consistency::VersionVector;
using consistency::VersionVectorPolicy;
using consistency::WriteInvalidate;
using core::ReplicationMode;
using test::Node;

// Master site + two independent demander sites (e.g. the office PC, the
// laptop and the PDA), sharing one virtual clock.
class ConsistencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<net::SimNetwork>(clock_, net::LinkParams{});
    master_ = std::make_unique<core::Site>(1, network_->CreateEndpoint("pc"), clock_);
    laptop_ = std::make_unique<core::Site>(2, network_->CreateEndpoint("laptop"), clock_);
    pda_ = std::make_unique<core::Site>(3, network_->CreateEndpoint("pda"), clock_);
    ASSERT_TRUE(master_->Start().ok());
    ASSERT_TRUE(laptop_->Start().ok());
    ASSERT_TRUE(pda_->Start().ok());
    master_->HostRegistry();
    laptop_->UseRegistry("pc");
    pda_->UseRegistry("pc");
  }

  core::Ref<Node> ReplicateOn(core::Site& site, const std::string& name) {
    auto remote = site.Lookup<Node>(name);
    EXPECT_TRUE(remote.ok()) << remote.status();
    auto ref = remote->Replicate(ReplicationMode::Incremental(1));
    EXPECT_TRUE(ref.ok()) << ref.status();
    return *ref;
  }

  VirtualClock clock_;
  std::unique_ptr<net::SimNetwork> network_;
  std::unique_ptr<core::Site> master_;
  std::unique_ptr<core::Site> laptop_;
  std::unique_ptr<core::Site> pda_;
};

TEST_F(ConsistencyTest, BaselineLastPutWinsUnconditionally) {
  auto obj = test::MakeChain(1, 8, "o");
  ASSERT_TRUE(master_->Bind("obj", obj).ok());
  auto on_laptop = ReplicateOn(*laptop_, "obj");
  auto on_pda = ReplicateOn(*pda_, "obj");

  on_laptop->SetLabel("from-laptop");
  on_pda->SetLabel("from-pda");
  ASSERT_TRUE(laptop_->Put(on_laptop).ok());
  // The PDA's put is based on a stale replica, but the baseline accepts it.
  ASSERT_TRUE(pda_->Put(on_pda).ok());
  EXPECT_EQ(obj->label, "from-pda");
}

TEST_F(ConsistencyTest, LastWriterWinsWithSharedClockNeverConflicts) {
  // Writes are stamped at put time; with one shared (synchronised) clock the
  // later put always carries the later stamp, so it always wins.
  master_->SetConsistencyPolicy(std::make_unique<LastWriterWins>());
  laptop_->SetConsistencyPolicy(std::make_unique<LastWriterWins>());
  pda_->SetConsistencyPolicy(std::make_unique<LastWriterWins>());
  auto obj = test::MakeChain(1, 8, "o");
  ASSERT_TRUE(master_->Bind("obj", obj).ok());
  auto on_laptop = ReplicateOn(*laptop_, "obj");
  auto on_pda = ReplicateOn(*pda_, "obj");

  on_laptop->SetLabel("first");
  clock_.Sleep(10 * kMilli);
  ASSERT_TRUE(laptop_->Put(on_laptop).ok());
  on_pda->SetLabel("second");
  clock_.Sleep(10 * kMilli);
  ASSERT_TRUE(pda_->Put(on_pda).ok());
  EXPECT_EQ(obj->label, "second");
}

TEST(LastWriterWinsSkewedClocks, LaggingClockLosesUntilItCatchesUp) {
  // Separate per-site clocks (real mobile devices drift): the site whose
  // clock lags gets its writes rejected as "older".
  VirtualClock net_clock, laptop_clock, pda_clock;
  net::SimNetwork network(net_clock, net::LinkParams{});
  core::Site master(1, network.CreateEndpoint("pc"), net_clock);
  core::Site laptop(2, network.CreateEndpoint("laptop"), laptop_clock);
  core::Site pda(3, network.CreateEndpoint("pda"), pda_clock);
  ASSERT_TRUE(master.Start().ok());
  ASSERT_TRUE(laptop.Start().ok());
  ASSERT_TRUE(pda.Start().ok());
  master.HostRegistry();
  laptop.UseRegistry("pc");
  pda.UseRegistry("pc");
  master.SetConsistencyPolicy(std::make_unique<LastWriterWins>());
  laptop.SetConsistencyPolicy(std::make_unique<LastWriterWins>());
  pda.SetConsistencyPolicy(std::make_unique<LastWriterWins>());

  auto obj = test::MakeChain(1, 8, "o");
  ASSERT_TRUE(master.Bind("obj", obj).ok());
  auto on_laptop = laptop.Lookup<Node>("obj")->Replicate(ReplicationMode::Incremental(1));
  auto on_pda = pda.Lookup<Node>("obj")->Replicate(ReplicationMode::Incremental(1));
  ASSERT_TRUE(on_laptop.ok());
  ASSERT_TRUE(on_pda.ok());

  laptop_clock.Sleep(100 * kMilli);  // laptop's clock runs ahead
  (*on_laptop)->SetLabel("from-laptop");
  ASSERT_TRUE(laptop.Put(*on_laptop).ok());

  // The PDA's clock still reads ~0: its write is stamped earlier and loses.
  (*on_pda)->SetLabel("from-pda");
  EXPECT_EQ(pda.Put(*on_pda).code(), StatusCode::kConflict);
  EXPECT_EQ(obj->label, "from-laptop");

  // Once the PDA's clock passes the laptop's stamp, its writes win again.
  ASSERT_TRUE(pda.Refresh(*on_pda).ok());
  pda_clock.Sleep(200 * kMilli);
  (*on_pda)->SetLabel("pda-later");
  EXPECT_TRUE(pda.Put(*on_pda).ok());
  EXPECT_EQ(obj->label, "pda-later");
}

TEST_F(ConsistencyTest, VersionVectorDetectsConcurrentUpdate) {
  master_->SetConsistencyPolicy(std::make_unique<VersionVectorPolicy>(1));
  laptop_->SetConsistencyPolicy(std::make_unique<VersionVectorPolicy>(2));
  pda_->SetConsistencyPolicy(std::make_unique<VersionVectorPolicy>(3));

  auto obj = test::MakeChain(1, 8, "o");
  ASSERT_TRUE(master_->Bind("obj", obj).ok());
  auto on_laptop = ReplicateOn(*laptop_, "obj");
  auto on_pda = ReplicateOn(*pda_, "obj");

  // Both edit concurrently from the same base version.
  on_laptop->SetLabel("laptop-edit");
  on_pda->SetLabel("pda-edit");

  ASSERT_TRUE(laptop_->Put(on_laptop).ok());
  Status s = pda_->Put(on_pda);
  EXPECT_EQ(s.code(), StatusCode::kConflict);
  EXPECT_EQ(obj->label, "laptop-edit");  // master untouched by losing write

  // Sequential (causal) writes keep working.
  ASSERT_TRUE(pda_->Refresh(on_pda).ok());
  on_pda->SetLabel("pda-after-refresh");
  EXPECT_TRUE(pda_->Put(on_pda).ok());
  EXPECT_EQ(obj->label, "pda-after-refresh");

  // And the laptop in turn must refresh before writing again.
  on_laptop->SetLabel("laptop-stale-again");
  EXPECT_EQ(laptop_->Put(on_laptop).code(), StatusCode::kConflict);
}

TEST_F(ConsistencyTest, WriteInvalidateMarksOtherReplicasStale) {
  master_->SetConsistencyPolicy(std::make_unique<WriteInvalidate>());
  auto obj = test::MakeChain(1, 8, "o");
  ASSERT_TRUE(master_->Bind("obj", obj).ok());
  auto on_laptop = ReplicateOn(*laptop_, "obj");
  auto on_pda = ReplicateOn(*pda_, "obj");

  EXPECT_FALSE(pda_->IsStale(on_pda));

  on_laptop->SetLabel("laptop-wins");
  ASSERT_TRUE(laptop_->Put(on_laptop).ok());

  // The PDA's replica was invalidated by the master.
  EXPECT_TRUE(pda_->IsStale(on_pda));
  EXPECT_FALSE(laptop_->IsStale(on_laptop));

  // Reads still work offline-style (possibly stale data)...
  EXPECT_EQ(on_pda->Label(), "o0");
  // ...but a put from the stale replica is refused.
  on_pda->SetLabel("pda-stale-write");
  EXPECT_EQ(pda_->Put(on_pda).code(), StatusCode::kConflict);

  // Refresh clears staleness and brings the new state.
  ASSERT_TRUE(pda_->Refresh(on_pda).ok());
  EXPECT_FALSE(pda_->IsStale(on_pda));
  EXPECT_EQ(on_pda->Label(), "laptop-wins");
  on_pda->SetLabel("pda-after-refresh");
  EXPECT_TRUE(pda_->Put(on_pda).ok());
}

TEST_F(ConsistencyTest, WriteInvalidateSkipsDisconnectedHolderGracefully) {
  master_->SetConsistencyPolicy(std::make_unique<WriteInvalidate>());
  auto obj = test::MakeChain(1, 8, "o");
  ASSERT_TRUE(master_->Bind("obj", obj).ok());
  auto on_laptop = ReplicateOn(*laptop_, "obj");
  auto on_pda = ReplicateOn(*pda_, "obj");

  network_->SetEndpointUp("pda", false);
  on_laptop->SetLabel("while-pda-offline");
  // The invalidation to the PDA fails silently; the put itself succeeds.
  ASSERT_TRUE(laptop_->Put(on_laptop).ok());
  EXPECT_EQ(obj->label, "while-pda-offline");

  // The PDA missed the invalidation, but its eventual put is still caught by
  // the version check.
  network_->SetEndpointUp("pda", true);
  EXPECT_FALSE(pda_->IsStale(on_pda));  // it never heard
  on_pda->SetLabel("pda-much-later");
  EXPECT_EQ(pda_->Put(on_pda).code(), StatusCode::kConflict);
}

// --- version-vector algebra ---------------------------------------------------

TEST(VersionVectorAlgebra, Dominates) {
  VersionVector a{{1, 2}, {2, 1}};
  VersionVector b{{1, 1}};
  EXPECT_TRUE(Dominates(a, b));
  EXPECT_FALSE(Dominates(b, a));
  EXPECT_TRUE(Dominates(a, a));
  EXPECT_TRUE(Dominates(a, {}));   // everything dominates empty
  EXPECT_TRUE(Dominates({}, {}));  // reflexively

  VersionVector c{{1, 1}, {3, 5}};
  EXPECT_FALSE(Dominates(a, c));  // concurrent
  EXPECT_FALSE(Dominates(c, a));
}

TEST(VersionVectorAlgebra, CodecRoundTrip) {
  VersionVector vv{{1, 10}, {7, 3}, {42, 1}};
  Bytes encoded = consistency::EncodeVersionVector(vv);
  EXPECT_EQ(consistency::DecodeVersionVector(AsView(encoded)), vv);
  EXPECT_TRUE(consistency::DecodeVersionVector({}).empty());
}

}  // namespace
}  // namespace obiwan
