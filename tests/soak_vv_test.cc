// Soak variant under version-vector consistency: randomized concurrent
// writers with disconnections, where every successful put must be causally
// safe. Invariants at the end:
//   - the master's final state equals the last *accepted* write (no lost
//     updates admitted silently — every overwrite was causally ordered),
//   - every conflict surfaced as kConflict and was recoverable by
//     refresh-and-retry,
//   - all sites converge after a final refresh.
#include <gtest/gtest.h>

#include <random>

#include "obiwan.h"
#include "test_objects.h"

namespace obiwan {
namespace {

using consistency::VersionVectorPolicy;
using core::ReplicationMode;
using test::Node;

class VvSoakTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VvSoakTest, ConcurrentWritersNeverLoseCausality) {
  std::mt19937_64 rng(GetParam());
  VirtualClock clock;
  net::SimNetwork network(clock, net::LinkParams{}, GetParam());

  core::Site hub(1, network.CreateEndpoint("hub"), clock);
  ASSERT_TRUE(hub.Start().ok());
  hub.HostRegistry();
  hub.SetConsistencyPolicy(std::make_unique<VersionVectorPolicy>(1));

  constexpr int kWriters = 4;
  std::vector<std::unique_ptr<core::Site>> writers;
  std::vector<core::Ref<Node>> refs(kWriters);
  for (int i = 0; i < kWriters; ++i) {
    writers.push_back(std::make_unique<core::Site>(
        static_cast<SiteId>(2 + i), network.CreateEndpoint("w" + std::to_string(i)),
        clock));
    ASSERT_TRUE(writers.back()->Start().ok());
    writers.back()->UseRegistry("hub");
    writers.back()->SetConsistencyPolicy(
        std::make_unique<VersionVectorPolicy>(static_cast<SiteId>(2 + i)));
  }

  auto master = test::MakeChain(1, 32, "shared");
  ASSERT_TRUE(hub.Bind("shared", master).ok());
  for (int i = 0; i < kWriters; ++i) {
    auto remote = writers[i]->Lookup<Node>("shared");
    ASSERT_TRUE(remote.ok());
    refs[i] = *remote->Replicate(ReplicationMode::Incremental(1));
  }

  int accepted = 0;
  int conflicts = 0;
  std::int64_t last_accepted_value = master->value;

  for (int round = 0; round < 400; ++round) {
    int w = static_cast<int>(rng() % kWriters);
    core::Site& site = *writers[w];
    core::Ref<Node>& ref = refs[w];

    switch (rng() % 4) {
      case 0: {  // connectivity flap
        network.SetEndpointUp("w" + std::to_string(w), (rng() & 1) != 0u);
        break;
      }
      case 1: {  // refresh to catch up
        (void)site.Refresh(ref);
        break;
      }
      default: {  // edit + put, with one refresh-retry on conflict
        std::int64_t value = static_cast<std::int64_t>(rng() % 100000);
        ref->SetValue(value);
        Status s = site.Put(ref);
        if (s.ok()) {
          ++accepted;
          last_accepted_value = value;
        } else if (s.code() == StatusCode::kConflict) {
          ++conflicts;
          if (site.Refresh(ref).ok()) {
            ref->SetValue(value);
            if (site.Put(ref).ok()) {
              ++accepted;
              last_accepted_value = value;
            }
          }
        } else {
          // Disconnected: the optimistic VV bump stays local; refresh later
          // resynchronises the vector.
          EXPECT_EQ(s.code(), StatusCode::kDisconnected) << s;
        }
        break;
      }
    }
    clock.Sleep(kMilli);
  }

  // The master holds exactly the last accepted write.
  EXPECT_EQ(master->value, last_accepted_value);
  EXPECT_GT(accepted, 50);
  EXPECT_GT(conflicts, 0);  // concurrency really happened

  // Everyone converges after reconnect + refresh.
  for (int i = 0; i < kWriters; ++i) {
    network.SetEndpointUp("w" + std::to_string(i), true);
    ASSERT_TRUE(writers[i]->Refresh(refs[i]).ok());
    EXPECT_EQ(refs[i]->Value(), master->value) << "writer " << i;
  }

  // And causal writing still works for everyone after the storm.
  for (int i = 0; i < kWriters; ++i) {
    ASSERT_TRUE(writers[i]->Refresh(refs[i]).ok());
    refs[i]->SetValue(1000 + i);
    ASSERT_TRUE(writers[i]->Put(refs[i]).ok()) << "writer " << i;
  }
  EXPECT_EQ(master->value, 1000 + kWriters - 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VvSoakTest, ::testing::Values(3, 17, 91));

}  // namespace
}  // namespace obiwan
