// Tracer tests: ring semantics and the merged cross-site protocol timeline.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/trace.h"
#include "obiwan.h"
#include "test_objects.h"

namespace obiwan {
namespace {

TEST(Tracer, RecordsInOrder) {
  Tracer tracer(8);
  tracer.Record(1, 1, "a", "first");
  tracer.Record(2, 2, "b", "second");
  auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].detail, "first");
  EXPECT_EQ(events[1].site, 2u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, RingEvictsOldest) {
  Tracer tracer(4);
  for (int i = 0; i < 10; ++i) {
    tracer.Record(i, 1, "e", std::to_string(i));
  }
  auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].detail, "6");
  EXPECT_EQ(events[3].detail, "9");
  EXPECT_EQ(tracer.dropped(), 6u);
  EXPECT_EQ(tracer.total_recorded(), 10u);
}

TEST(Tracer, CapacityZeroIsUsable) {
  // Regression: capacity 0 must not divide by zero in the ring index; it
  // coerces to a one-slot ring that keeps the newest event.
  Tracer tracer(0);
  tracer.Record(1, 1, "e", "first");
  tracer.Record(2, 1, "e", "second");
  auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].detail, "second");
  EXPECT_EQ(tracer.dropped(), 1u);
  EXPECT_EQ(tracer.total_recorded(), 2u);
}

TEST(Tracer, RecordTakesNonNulTerminatedViews) {
  Tracer tracer(4);
  const std::string backing = "category-detail";
  tracer.Record(1, 1, std::string_view(backing).substr(0, 8),
                std::string_view(backing).substr(9));
  auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].category, "category");
  EXPECT_EQ(events[0].detail, "detail");
}

TEST(Tracer, ConcurrentRecordKeepsEveryEventCounted) {
  // Regression: Record from many threads must neither tear the ring indices
  // nor lose events from the total counter.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  Tracer tracer(64);
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&tracer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        tracer.Record(i, static_cast<SiteId>(t + 1), "c", std::to_string(i));
      }
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(tracer.total_recorded(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(tracer.Snapshot().size(), 64u);
  EXPECT_EQ(tracer.dropped(),
            static_cast<std::uint64_t>(kThreads) * kPerThread - 64);
}

TEST(TraceContext, ScopesNestAndRestore) {
  ASSERT_FALSE(TraceContext::Current().valid());
  TraceId outer = TraceContext::NewId(1);
  TraceId inner = TraceContext::NewId(2);
  EXPECT_NE(outer, inner);
  {
    TraceContext::Scope s1(outer);
    EXPECT_EQ(TraceContext::Current(), outer);
    {
      TraceContext::Scope s2(inner);
      EXPECT_EQ(TraceContext::Current(), inner);
    }
    EXPECT_EQ(TraceContext::Current(), outer);
    EXPECT_EQ(TraceContext::CurrentOrNew(9), outer);
  }
  EXPECT_FALSE(TraceContext::Current().valid());
  EXPECT_TRUE(TraceContext::CurrentOrNew(9).valid());
  EXPECT_FALSE(TraceContext::Current().valid());  // CurrentOrNew won't install
}

TEST(Tracer, SnapshotTraceFiltersOneFlow) {
  Tracer tracer(16);
  TraceId flow_a{1, 100};
  TraceId flow_b{2, 200};
  tracer.Record(1, 1, "call", "a1", flow_a);
  tracer.Record(2, 2, "get", "b1", flow_b);
  tracer.Record(3, 2, "get", "a2", flow_a);
  tracer.Record(4, 1, "put", "none");  // no flow
  auto events = tracer.SnapshotTrace(flow_a);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].detail, "a1");
  EXPECT_EQ(events[1].detail, "a2");
}

TEST(Tracer, ClearResets) {
  Tracer tracer(4);
  tracer.Record(1, 1, "e", "x");
  tracer.Clear();
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.total_recorded(), 0u);
}

TEST(Tracer, DumpRendersLines) {
  Tracer tracer(4);
  tracer.Record(2 * kMilli, 3, "fault", "obj(1:2)");
  std::string dump = tracer.Dump();
  EXPECT_NE(dump.find("site 3"), std::string::npos);
  EXPECT_NE(dump.find("fault: obj(1:2)"), std::string::npos);
}

TEST(Tracer, MergedProtocolTimeline) {
  // One tracer across two sites yields the whole conversation.
  VirtualClock clock;
  net::SimNetwork network(clock, net::kPaperLan);
  core::Site provider(1, network.CreateEndpoint("p"), clock);
  core::Site demander(2, network.CreateEndpoint("d"), clock);
  ASSERT_TRUE(provider.Start().ok());
  ASSERT_TRUE(demander.Start().ok());
  provider.HostRegistry();
  demander.UseRegistry("p");

  Tracer tracer(64);
  provider.SetTracer(&tracer);
  demander.SetTracer(&tracer);

  auto head = test::MakeChain(3, 16, "n");
  ASSERT_TRUE(provider.Bind("list", head).ok());
  auto remote = demander.Lookup<test::Node>("list");
  ASSERT_TRUE(remote.ok());
  (void)remote->Invoke(&test::Node::Value);
  auto ref = remote->Replicate(core::ReplicationMode::Incremental(1));
  ASSERT_TRUE(ref.ok());
  (void)(*ref)->next->Label();  // fault
  (*ref)->SetLabel("edit");
  ASSERT_TRUE(demander.Put(*ref).ok());

  auto events = tracer.Snapshot();
  ASSERT_FALSE(events.empty());

  auto count = [&](std::string_view category, SiteId site) {
    int n = 0;
    for (const auto& e : events) {
      if (e.category == category && e.site == site) ++n;
    }
    return n;
  };
  EXPECT_EQ(count("call", 1), 1);   // the RMI, served at the provider
  EXPECT_EQ(count("get", 1), 2);    // initial replicate + fault
  EXPECT_EQ(count("fault", 2), 1);  // recorded at the demander
  EXPECT_EQ(count("put", 1), 1);

  // Timestamps are monotone (shared virtual clock).
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].at, events[i].at);
  }

  // Detached sites stop recording.
  provider.SetTracer(nullptr);
  demander.SetTracer(nullptr);
  auto before = tracer.total_recorded();
  (void)remote->Invoke(&test::Node::Value);
  EXPECT_EQ(tracer.total_recorded(), before);
}

}  // namespace
}  // namespace obiwan
