// Causal span system: SpanScope nesting, the cross-site fault → get → put
// cascade under an originating RMI span, merged timelines, the Chrome
// trace-event exporter, and the flight recorder's dump-on-failure hook.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/flight_recorder.h"
#include "common/trace.h"
#include "common/trace_collector.h"
#include "obiwan.h"

namespace obiwan {
namespace {

// The site a served method uses to reintegrate its edits — a stand-in for the
// "current site" handle a real application object would carry.
core::Site* g_cascade_site = nullptr;

// Two-node chain whose TouchNext() dereferences the next reference (an
// object fault when next is still a proxy) and puts the edit back to the
// master — the paper's cascade, triggered from inside a served RMI.
class SpanNode : public core::Shareable {
 public:
  OBIWAN_SHAREABLE(SpanNode)

  std::int64_t value = 0;
  core::Ref<SpanNode> next;

  std::int64_t TouchNext() {
    std::int64_t v = next->value + 1;  // proxy-out deref: fault -> get
    next->value = v;
    if (g_cascade_site != nullptr) {
      (void)g_cascade_site->Put(next);  // reintegrate: put -> serve.put
    }
    return v;
  }

  static void ObiwanDefine(core::ClassDef<SpanNode>& def) {
    def.Field("value", &SpanNode::value)
        .Ref("next", &SpanNode::next)
        .Method("TouchNext", &SpanNode::TouchNext);
  }
};
OBIWAN_REGISTER_CLASS(SpanNode);

TEST(SpanScope, NestsAndRestoresParentChain) {
  VirtualClock clock;
  Tracer tracer(16);
  TraceSinks sinks;
  sinks.SetAttached(&tracer);
  TraceId flow = TraceContext::NewId(1);

  EXPECT_EQ(SpanContext::Current(), 0u);
  {
    SpanScope outer(&sinks, clock, 1, "outer", "a", flow);
    EXPECT_EQ(SpanContext::Current(), outer.id());
    clock.Sleep(10);
    {
      SpanScope inner(&sinks, clock, 1, "inner", "b", flow);
      EXPECT_EQ(SpanContext::Current(), inner.id());
      clock.Sleep(5);
    }
    EXPECT_EQ(SpanContext::Current(), outer.id());
  }
  EXPECT_EQ(SpanContext::Current(), 0u);

  auto spans = tracer.SnapshotSpans();
  ASSERT_EQ(spans.size(), 2u);  // completion order: inner first
  const Span& inner = spans[0];
  const Span& outer = spans[1];
  EXPECT_EQ(inner.category, "inner");
  EXPECT_EQ(inner.parent, outer.id);
  EXPECT_EQ(outer.parent, 0u);
  EXPECT_EQ(outer.trace, flow);
  EXPECT_GE(inner.begin, outer.begin);
  EXPECT_LE(inner.end, outer.end);
  EXPECT_EQ(outer.duration(), 15);
}

TEST(SpanScope, InactiveSinksLeaveParentChainUntouched) {
  VirtualClock clock;
  TraceSinks inactive;  // no flight, no attached
  Tracer tracer(8);
  TraceSinks active;
  active.SetAttached(&tracer);
  TraceId flow = TraceContext::NewId(1);

  SpanScope outer(&active, clock, 1, "outer", "a", flow);
  {
    SpanScope noop(&inactive, clock, 1, "noop", "b", flow);
    EXPECT_EQ(noop.id(), 0u);
    // A child recorded inside the no-op scope parents to `outer`.
    SpanScope child(&active, clock, 1, "child", "c", flow);
    EXPECT_NE(child.id(), 0u);
  }
  auto spans = tracer.SnapshotSpans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].parent, outer.id());
}

// The acceptance scenario: demander D masters the chain, provider P holds an
// incremental replica, and an RMI from D makes P's served method fault the
// next node (get from D) and put the edit back — every step one causal tree
// under the originating rmi span, in one distributed flow.
TEST(Span, TwoSiteCascadeNestsUnderOriginatingRmi) {
  VirtualClock clock;
  net::SimNetwork network(clock, net::kPaperLan);
  core::Site demander(1, network.CreateEndpoint("d"), clock);
  core::Site provider(2, network.CreateEndpoint("p"), clock);
  ASSERT_TRUE(demander.Start().ok());
  ASSERT_TRUE(provider.Start().ok());
  demander.HostRegistry();
  provider.UseRegistry("d");

  Tracer tracer(256);
  demander.SetTracer(&tracer);
  provider.SetTracer(&tracer);
  network.SetTracer(&tracer);

  auto a = std::make_shared<SpanNode>();
  auto b = std::make_shared<SpanNode>();
  a->next = b;
  ASSERT_TRUE(demander.Bind("a", a).ok());

  // P replicates the head incrementally: it holds a's replica with a proxy
  // to b, so TouchNext() at P must fault.
  auto remote = provider.Lookup<SpanNode>("a");
  ASSERT_TRUE(remote.ok());
  auto replica = remote->Replicate(core::ReplicationMode::Incremental(1));
  ASSERT_TRUE(replica.ok());
  tracer.Clear();  // keep only the cascade in the snapshot

  g_cascade_site = &provider;
  wire::Writer args;
  wire::Encode(args, std::tuple<>());
  auto reply = demander.CallRaw("p", remote->id(), "TouchNext",
                                std::move(args).Take());
  g_cascade_site = nullptr;
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  wire::Reader r(AsView(*reply));
  EXPECT_EQ(wire::Decode<std::int64_t>(r), 1);
  EXPECT_EQ(b->value, 1);  // the put reached the master

  auto spans = tracer.SnapshotSpans();
  std::map<std::uint64_t, Span> by_id;
  for (const Span& s : spans) by_id[s.id] = s;
  auto find = [&](std::string_view category, SiteId site) -> const Span* {
    for (const Span& s : spans) {
      if (s.category == category && s.site == site) return &s;
    }
    return nullptr;
  };

  const Span* rmi = find("rmi", 1);
  const Span* fault = find("fault", 2);
  const Span* get = find("get", 2);
  const Span* put = find("put", 2);
  const Span* serve_get = find("serve.get", 1);
  const Span* serve_put = find("serve.put", 1);
  const Span* serve_call = find("serve.call", 2);
  ASSERT_NE(rmi, nullptr);
  ASSERT_NE(fault, nullptr);
  ASSERT_NE(get, nullptr);
  ASSERT_NE(put, nullptr);
  ASSERT_NE(serve_get, nullptr);
  ASSERT_NE(serve_put, nullptr);
  ASSERT_NE(serve_call, nullptr);

  // One distributed flow, allocated at the demander, spans both sites.
  EXPECT_TRUE(rmi->trace.valid());
  EXPECT_EQ(fault->trace, rmi->trace);
  EXPECT_EQ(get->trace, rmi->trace);
  EXPECT_EQ(put->trace, rmi->trace);
  EXPECT_EQ(serve_put->trace, rmi->trace);

  // Direct parent links: get under the fault that caused it; fault and put
  // under the served call.
  EXPECT_EQ(get->parent, fault->id);
  EXPECT_EQ(fault->parent, serve_call->id);
  EXPECT_EQ(put->parent, serve_call->id);

  // And the whole cascade is a subtree of the originating rmi span.
  auto is_descendant_of = [&](const Span* s, std::uint64_t root) {
    for (std::uint64_t cur = s->id; cur != 0;) {
      if (cur == root) return true;
      auto it = by_id.find(cur);
      if (it == by_id.end()) return false;
      cur = it->second.parent;
    }
    return false;
  };
  EXPECT_TRUE(is_descendant_of(serve_call, rmi->id));
  EXPECT_TRUE(is_descendant_of(fault, rmi->id));
  EXPECT_TRUE(is_descendant_of(get, rmi->id));
  EXPECT_TRUE(is_descendant_of(put, rmi->id));
  EXPECT_TRUE(is_descendant_of(serve_get, rmi->id));
  EXPECT_TRUE(is_descendant_of(serve_put, rmi->id));

  // Everything nests inside the rmi interval on the shared virtual clock.
  for (const Span* s : {fault, get, put, serve_get, serve_put, serve_call}) {
    EXPECT_GE(s->begin, rmi->begin);
    EXPECT_LE(s->end, rmi->end);
  }

  // The flight recorders captured the cascade too, with no tracer attached.
  EXPECT_GT(provider.flight_recorder().spans_recorded(), 0u);
  EXPECT_GT(demander.flight_recorder().spans_recorded(), 0u);

  // For CI: export the cascade as Chrome trace JSON when asked to.
  if (const char* path = std::getenv("OBIWAN_SPAN_EXPORT")) {
    TraceCollector collector;
    collector.Attach(&tracer);
    ASSERT_TRUE(collector.WriteChromeTrace(path).ok());
  }
}

TEST(TraceCollector, MergesTracersInTimelineOrder) {
  Tracer t1(8);
  Tracer t2(8);
  Span s1{/*id=*/1, 0, {}, 1, /*begin=*/50, /*end=*/60, "a", "x", false};
  Span s2{/*id=*/2, 0, {}, 2, /*begin=*/10, /*end=*/40, "b", "y", false};
  Span s3{/*id=*/3, 0, {}, 1, /*begin=*/30, /*end=*/35, "c", "z", false};
  t1.RecordSpan(s1);
  t1.RecordSpan(s3);
  t2.RecordSpan(s2);
  t1.Record(20, 1, "ev", "first");
  t2.Record(5, 2, "ev", "earliest");

  TraceCollector collector;
  collector.Attach(&t1);
  collector.Attach(&t2);
  auto spans = collector.MergedSpans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].id, 2u);
  EXPECT_EQ(spans[1].id, 3u);
  EXPECT_EQ(spans[2].id, 1u);
  auto events = collector.MergedEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].detail, "earliest");
  EXPECT_LE(events[0].at, events[1].at);

  std::string text = collector.DumpText();
  EXPECT_NE(text.find("earliest"), std::string::npos);
}

TEST(ChromeTrace, JsonIsWellFormedAndBalanced) {
  std::vector<Span> spans;
  TraceId flow{1, 7};
  spans.push_back({1, 0, flow, 1, 100, 500, "rmi", "Call \"x\"\n", false});
  // Child begins before its parent and ends after it: the exporter must
  // clamp it into the parent interval so the B/E stack stays well-nested.
  spans.push_back({2, 1, flow, 1, 50, 900, "get", "child", true});
  spans.push_back({3, 0, {}, 2, 200, 300, "put", "other-site", false});
  std::vector<TraceEvent> events;
  events.push_back({150, 1, flow, "fault", "obj(1:2)"});

  std::string json = ChromeTraceJson(spans, events);
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);

  auto count = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + needle.size())) {
      ++n;
    }
    return n;
  };
  // Every span opens and closes; the instant event and metadata ride along.
  EXPECT_EQ(count("\"ph\":\"B\""), 3u);
  EXPECT_EQ(count("\"ph\":\"E\""), 3u);
  EXPECT_EQ(count("\"ph\":\"i\""), 1u);
  EXPECT_GE(count("\"ph\":\"M\""), 2u);  // process + thread names
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("\"site 1\""), std::string::npos);
  EXPECT_NE(json.find("\"site 2\""), std::string::npos);

  // Special characters in names are escaped, never raw.
  EXPECT_NE(json.find("Call \\\"x\\\"\\n"), std::string::npos);
  EXPECT_EQ(json.find("Call \"x\"\n"), std::string::npos);

  // The failed span carries its marker.
  EXPECT_NE(json.find("\"failed\":true"), std::string::npos);

  // The clamped child's timestamps stay inside the parent: ts of span 2's B
  // is parent's 0.1 us... simply assert no B for the raw begin 50 (0.050).
  EXPECT_EQ(json.find("\"ts\":0.050"), std::string::npos);
}

TEST(FlightRecorder, DumpsOnFailureOnceAndDisarms) {
  VirtualClock clock;
  net::SimNetwork network(clock, net::kPaperLan);
  core::Site demander(1, network.CreateEndpoint("fd"), clock);
  core::Site provider(2, network.CreateEndpoint("fp"), clock);
  ASSERT_TRUE(demander.Start().ok());
  ASSERT_TRUE(provider.Start().ok());
  demander.HostRegistry();
  provider.UseRegistry("fd");

  auto obj = std::make_shared<SpanNode>();
  ASSERT_TRUE(demander.Bind("flight-obj", obj).ok());
  auto remote = provider.Lookup<SpanNode>("flight-obj");
  ASSERT_TRUE(remote.ok());

  const std::string path =
      ::testing::TempDir() + "/obiwan_flight_dump_test.json";
  std::remove(path.c_str());

  auto& recorder = FlightRecorder::Global();
  recorder.ArmDumpOnFailure(path);
  EXPECT_TRUE(recorder.armed());

  // A disconnection window: the provider's next request fails, and that
  // failure must trigger exactly one dump.
  network.SetEndpointUp("fp", false);
  const std::uint64_t failures_before = recorder.failures();
  EXPECT_EQ(remote->Invoke(&SpanNode::TouchNext).status().code(),
            StatusCode::kDisconnected);
  network.SetEndpointUp("fp", true);

  EXPECT_GT(recorder.failures(), failures_before);
  EXPECT_FALSE(recorder.armed());  // one-shot

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr) << "dump not written to " << path;
  std::string content;
  char buf[4096];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof(buf), f)) > 0;) {
    content.append(buf, n);
  }
  std::fclose(f);
  EXPECT_EQ(content.find("{\"traceEvents\":["), 0u);
  // Both sites' always-on flight rings contribute processes.
  EXPECT_NE(content.find("\"site 1\""), std::string::npos);
  EXPECT_NE(content.find("\"site 2\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace obiwan
