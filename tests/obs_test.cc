// Observability plane: Prometheus exposition-format lint, the embedded HTTP
// admin endpoint (served routes, readiness flips, concurrent scrapes — the
// TSan target), and FleetMonitor merge math on a deterministic virtual-clock
// multi-site sim.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obiwan.h"
#include "test_objects.h"

namespace obiwan {
namespace {

using core::ReplicationMode;
using test::Node;

// ---------------------------------------------------------------------------
// Minimal HTTP client for the admin endpoint ("host:port" from
// Site::admin_address()). One request per connection, like real scrapers.
// ---------------------------------------------------------------------------

struct HttpReply {
  int status = 0;
  std::string content_type;
  std::string body;
};

// Connect to "host:port"; -1 on failure.
int HttpConnect(const std::string& address) {
  const auto colon = address.rfind(':');
  if (colon == std::string::npos) return -1;
  const std::string host = address.substr(0, colon);
  const int port = std::stoi(address.substr(colon + 1));

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, host.c_str(), &sa.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

HttpReply ParseReply(const std::string& raw) {
  HttpReply reply;
  // "HTTP/1.1 <status> ..." then headers, blank line, body.
  if (raw.compare(0, 5, "HTTP/") != 0) return reply;
  const auto space = raw.find(' ');
  if (space == std::string::npos) return reply;
  reply.status = std::atoi(raw.c_str() + space + 1);
  const auto blank = raw.find("\r\n\r\n");
  if (blank != std::string::npos) reply.body = raw.substr(blank + 4);
  const auto ct = raw.find("Content-Type: ");
  if (ct != std::string::npos && ct < blank) {
    const auto eol = raw.find("\r\n", ct);
    reply.content_type = raw.substr(ct + 14, eol - ct - 14);
  }
  return reply;
}

HttpReply HttpGet(const std::string& address, const std::string& path,
                  const std::string& method = "GET",
                  const std::string& extra_headers = "") {
  HttpReply reply;
  int fd = HttpConnect(address);
  if (fd < 0) return reply;
  const std::string request = method + " " + path +
                              " HTTP/1.1\r\nHost: test\r\n" + extra_headers +
                              "\r\n";
  (void)::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  std::string raw;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return ParseReply(raw);
}

// ---------------------------------------------------------------------------
// Prometheus exposition-format lint
// ---------------------------------------------------------------------------

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    if (eol > pos) out.push_back(text.substr(pos, eol - pos));
    pos = eol + 1;
  }
  return out;
}

// Metric name of a sample line ("name{labels} value" / "name value").
std::string SampleName(const std::string& line) {
  const std::size_t end = line.find_first_of("{ ");
  return end == std::string::npos ? line : line.substr(0, end);
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Lint the whole exposition: every sample belongs to a # TYPE'd family,
// counter samples end in _total, histogram samples use the native suffixes.
void LintExposition(const std::string& text) {
  std::map<std::string, std::string> family_type;  // name -> counter/gauge/...
  for (const std::string& line : Lines(text)) {
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream in(line.substr(7));
      std::string name, type;
      in >> name >> type;
      EXPECT_TRUE(type == "counter" || type == "gauge" || type == "histogram")
          << line;
      family_type[name] = type;
      continue;
    }
    if (line == "# EOF") continue;  // OpenMetrics not-truncated terminator
    if (line.rfind("#", 0) == 0) {
      EXPECT_EQ(line.rfind("# HELP ", 0), 0u) << "unknown comment: " << line;
      continue;
    }
    // Sample line, possibly carrying an OpenMetrics exemplar suffix:
    //   name{labels} value # {trace_id="...",...} exemplar_value
    std::string sample = line;
    const std::size_t exemplar_at = line.find(" # {");
    if (exemplar_at != std::string::npos) {
      sample = line.substr(0, exemplar_at);
      const std::string exemplar = line.substr(exemplar_at + 3);
      EXPECT_TRUE(EndsWith(SampleName(sample), "_bucket"))
          << "exemplar outside a _bucket series: " << line;
      EXPECT_NE(exemplar.find("trace_id=\""), std::string::npos) << line;
      const std::size_t close = exemplar.find("} ");
      ASSERT_NE(close, std::string::npos) << line;
      EXPECT_NO_THROW((void)std::stod(exemplar.substr(close + 2))) << line;
    }
    const std::string name = SampleName(sample);
    ASSERT_FALSE(name.empty()) << line;
    // Value must parse as a number.
    const std::size_t space = sample.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NO_THROW((void)std::stod(sample.substr(space + 1))) << line;

    std::string family = name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      if (EndsWith(name, suffix)) {
        const std::string base = name.substr(0, name.size() - strlen(suffix));
        if (family_type.count(base) && family_type[base] == "histogram") {
          family = base;
        }
      }
    }
    ASSERT_TRUE(family_type.count(family)) << "sample without # TYPE: " << line;
    if (family_type[family] == "counter") {
      EXPECT_TRUE(EndsWith(name, "_total"))
          << "counter not normalized to _total: " << line;
    }
    if (family_type[family] == "histogram") {
      EXPECT_NE(family, name)
          << "histogram family must expose only _bucket/_sum/_count: " << line;
    }
  }
  EXPECT_FALSE(family_type.empty());
}

TEST(PrometheusExposition, LintsCleanWithLiveSite) {
  net::LoopbackNetwork network;
  core::Site site(61, network.CreateEndpoint("lint"));
  ASSERT_TRUE(site.Start().ok());
  site.HostRegistry();
  ASSERT_TRUE(site.Bind("doc", test::MakeChain(2, 16)).ok());
  site.RefreshTelemetry();

  const std::string text = MetricsRegistry::Default().DumpPrometheus();
  LintExposition(text);

  // Golden substrings the satellites added.
  EXPECT_NE(text.find("# TYPE obiwan_rmi_client_latency_ns histogram"),
            std::string::npos);
  EXPECT_NE(text.find("obiwan_rmi_client_latency_ns_bucket{"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(text.find("obiwan_build_info{"), std::string::npos);
  EXPECT_NE(text.find("obiwan_site_uptime_ns"), std::string::npos);
  // The text exporter keeps quantiles; the Prometheus one must not.
  EXPECT_EQ(text.find("p50="), std::string::npos);
}

TEST(PrometheusExposition, HistogramBucketsAreCumulative) {
  // A dedicated histogram with known observations, so the golden values are
  // exact: bounds 10/100/1000, observations 5, 50, 5000.
  auto& h = MetricsRegistry::Default().GetHistogram(
      "obiwan_obs_lint_hist", {}, {10, 100, 1000}, "exposition lint fixture");
  h.Reset();
  h.Observe(5);
  h.Observe(50);
  h.Observe(5000);

  const std::string text = MetricsRegistry::Default().DumpPrometheus();
  EXPECT_NE(text.find("obiwan_obs_lint_hist_bucket{le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("obiwan_obs_lint_hist_bucket{le=\"100\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("obiwan_obs_lint_hist_bucket{le=\"1000\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("obiwan_obs_lint_hist_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("obiwan_obs_lint_hist_sum 5055"), std::string::npos);
  EXPECT_NE(text.find("obiwan_obs_lint_hist_count 3"), std::string::npos);
}

TEST(PrometheusExposition, CountersNormalizedToTotal) {
  // A counter registered without the conventional suffix is normalized on
  // export — and one that already has it is not double-suffixed.
  auto& c = MetricsRegistry::Default().GetCounter("obiwan_obs_lint_events", {},
                                                  "normalization fixture");
  c.Inc();
  const std::string text = MetricsRegistry::Default().DumpPrometheus();
  EXPECT_NE(text.find("# TYPE obiwan_obs_lint_events_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("obiwan_obs_lint_events_total 1"), std::string::npos);
  // Counters registered WITH the suffix (the site stats) must not be
  // double-suffixed.
  auto& pre = MetricsRegistry::Default().GetCounter(
      "obiwan_obs_lint_preformed_total", {}, "already-suffixed fixture");
  pre.Inc();
  const std::string again = MetricsRegistry::Default().DumpPrometheus();
  EXPECT_NE(again.find("obiwan_obs_lint_preformed_total 1"), std::string::npos);
  EXPECT_EQ(again.find("_total_total"), std::string::npos);
}

// ---------------------------------------------------------------------------
// HTTP admin endpoint
// ---------------------------------------------------------------------------

class AdminHttpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto transport = net::TcpTransport::Create(0);
    ASSERT_TRUE(transport.ok()) << transport.status();
    site_ = std::make_unique<core::Site>(71, std::move(*transport));
    ASSERT_TRUE(site_->Start().ok());
    site_->HostRegistry();
    ASSERT_TRUE(site_->Bind("doc", test::MakeChain(3, 32)).ok());
    ASSERT_TRUE(site_->ServeAdmin("0").ok());  // kernel-assigned port
    ASSERT_FALSE(site_->admin_address().empty());
  }

  std::unique_ptr<core::Site> site_;
};

TEST_F(AdminHttpTest, ServesMetricsAndReports) {
  const HttpReply metrics = HttpGet(site_->admin_address(), "/metrics");
  EXPECT_EQ(metrics.status, 200);
  LintExposition(metrics.body);
  EXPECT_NE(metrics.body.find("obiwan_rmi_client_latency_ns_bucket{"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("obiwan_build_info{"), std::string::npos);
  // The scrape refreshed the continuous gauges without any protocol traffic.
  EXPECT_NE(metrics.body.find("obiwan_site_uptime_ns"), std::string::npos);

  const HttpReply inspect = HttpGet(site_->admin_address(), "/inspect.json");
  EXPECT_EQ(inspect.status, 200);
  EXPECT_NE(inspect.body.find("\"masters\""), std::string::npos);

  const HttpReply frontier = HttpGet(site_->admin_address(), "/frontier.json");
  EXPECT_EQ(frontier.status, 200);
  EXPECT_NE(frontier.body.find("\"nodes\""), std::string::npos);

  const HttpReply dot = HttpGet(site_->admin_address(), "/frontier.dot");
  EXPECT_EQ(dot.status, 200);
  EXPECT_NE(dot.body.find("digraph"), std::string::npos);

  const HttpReply flight = HttpGet(site_->admin_address(), "/flight");
  EXPECT_EQ(flight.status, 200);
  EXPECT_NE(flight.body.find("traceEvents"), std::string::npos);

  const HttpReply index = HttpGet(site_->admin_address(), "/");
  EXPECT_EQ(index.status, 200);
  EXPECT_NE(index.body.find("/metrics"), std::string::npos);
}

TEST_F(AdminHttpTest, RejectsUnknownPathAndMethod) {
  EXPECT_EQ(HttpGet(site_->admin_address(), "/no-such-endpoint").status, 404);
  EXPECT_EQ(HttpGet(site_->admin_address(), "/metrics", "POST").status, 405);
  // Query strings are stripped before route matching.
  EXPECT_EQ(HttpGet(site_->admin_address(), "/healthz?verbose=1").status, 200);
}

TEST_F(AdminHttpTest, MetricsNegotiateFormatAndTerminateWithEof) {
  // Default: Prometheus text, but always "# EOF"-terminated so a scraper
  // can tell a complete exposition from a truncated one.
  const HttpReply prom = HttpGet(site_->admin_address(), "/metrics");
  EXPECT_EQ(prom.status, 200);
  EXPECT_NE(prom.content_type.find("text/plain"), std::string::npos);
  EXPECT_NE(prom.content_type.find("version=0.0.4"), std::string::npos);
  ASSERT_GE(prom.body.size(), 6u);
  EXPECT_TRUE(EndsWith(prom.body, "# EOF\n"));
  LintExposition(prom.body);

  // An OpenMetrics scraper negotiates via Accept and gets the matching
  // content type (same payload; "# EOF" is mandatory there).
  const HttpReply om = HttpGet(
      site_->admin_address(), "/metrics", "GET",
      "Accept: application/openmetrics-text; version=1.0.0\r\n");
  EXPECT_EQ(om.status, 200);
  EXPECT_NE(om.content_type.find("application/openmetrics-text"),
            std::string::npos);
  EXPECT_TRUE(EndsWith(om.body, "# EOF\n"));

  // An unrelated Accept value still gets the Prometheus default.
  const HttpReply other = HttpGet(site_->admin_address(), "/metrics", "GET",
                                  "Accept: application/json\r\n");
  EXPECT_EQ(other.status, 200);
  EXPECT_NE(other.content_type.find("text/plain"), std::string::npos);
}

TEST_F(AdminHttpTest, ServesUpdateJourneysAndAlerts) {
  const HttpReply updates = HttpGet(site_->admin_address(), "/updates.json");
  EXPECT_EQ(updates.status, 200);
  EXPECT_NE(updates.content_type.find("application/json"), std::string::npos);
  EXPECT_NE(updates.body.find("\"minted\""), std::string::npos);
  EXPECT_NE(updates.body.find("\"ttfr_ns\""), std::string::npos);
  EXPECT_NE(updates.body.find("\"hops\""), std::string::npos);
  EXPECT_NE(updates.body.find("\"recent\""), std::string::npos);

  const HttpReply alerts = HttpGet(site_->admin_address(), "/alerts.json");
  EXPECT_EQ(alerts.status, 200);
  EXPECT_NE(alerts.body.find("\"update_convergence_burn\""),
            std::string::npos);
  EXPECT_NE(alerts.body.find("\"state\":\"ok\""), std::string::npos);
  EXPECT_NE(alerts.body.find("\"burn_rate\""), std::string::npos);

  const HttpReply index = HttpGet(site_->admin_address(), "/");
  EXPECT_NE(index.body.find("/updates.json"), std::string::npos);
  EXPECT_NE(index.body.find("/alerts.json"), std::string::npos);
}

TEST(AdminHttpJourneys, ServeAdminTracksDisseminationEndToEnd) {
  // ServeAdmin installs the journey sink: real update traffic shows up in
  // /updates.json (minted + completed + hop stamps) with no extra wiring.
  net::LoopbackNetwork network;
  core::Site provider(85, network.CreateEndpoint("prov"));
  core::Site demander(86, network.CreateEndpoint("dem"));
  ASSERT_TRUE(provider.Start().ok());
  ASSERT_TRUE(demander.Start().ok());
  provider.HostRegistry();
  demander.UseRegistry("prov");
  provider.SetConsistencyPolicy(
      std::make_unique<consistency::WriteInvalidate>());

  auto doc = std::make_shared<Node>();
  ASSERT_TRUE(provider.Bind("doc", doc).ok());
  const ObjectId oid = provider.Export(doc);
  auto remote = demander.Lookup<Node>("doc");
  ASSERT_TRUE(remote.ok());
  auto ref = remote->Replicate(ReplicationMode::Incremental(1));
  ASSERT_TRUE(ref.ok());

  ASSERT_TRUE(provider.ServeAdmin("0").ok());
  doc->SetValue(5);
  ASSERT_TRUE(provider.MarkMasterUpdated(oid).ok());

  const HttpReply updates = HttpGet(provider.admin_address(), "/updates.json");
  EXPECT_EQ(updates.status, 200);
  EXPECT_NE(updates.body.find("\"minted\":1"), std::string::npos);
  EXPECT_NE(updates.body.find("\"completed\":1"), std::string::npos);
  EXPECT_NE(updates.body.find("\"acked\":1"), std::string::npos);
  EXPECT_NE(updates.body.find("\"convergence_ns\""), std::string::npos);
  // The journey metrics reached the exposition too.
  const HttpReply metrics = HttpGet(provider.admin_address(), "/metrics");
  EXPECT_NE(metrics.body.find("obiwan_update_journeys_total"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("obiwan_update_convergence_ns_bucket"),
            std::string::npos);
  provider.StopAdmin();
}

TEST(AdminHttpSlowClient, DrippedRequestServedAndStallCutOffByDeadline) {
  auto transport = net::TcpTransport::Create(0);
  ASSERT_TRUE(transport.ok());
  core::Site site(87, std::move(*transport));
  ASSERT_TRUE(site.Start().ok());
  site.HostRegistry();
  core::Site::AdminOptions options;
  options.request_deadline = 300 * kMilli;  // short, so the stall test is fast
  ASSERT_TRUE(site.ServeAdmin("0", options).ok());

  // A client that drips its request one byte at a time must still be served:
  // the head parser accumulates partial reads until the blank line.
  {
    int fd = HttpConnect(site.admin_address());
    ASSERT_GE(fd, 0);
    const std::string request = "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
    for (char c : request) {
      ASSERT_EQ(::send(fd, &c, 1, MSG_NOSIGNAL), 1);
    }
    // Read the response one byte at a time too, to exercise framing.
    std::string raw;
    char c;
    while (::recv(fd, &c, 1, 0) == 1) raw.push_back(c);
    ::close(fd);
    EXPECT_EQ(ParseReply(raw).status, 200);
  }

  // A client that stalls mid-request must be cut off by the deadline — the
  // serving thread gets back to the accept loop and the in-flight gauge
  // returns to zero instead of wedging at one.
  {
    const auto start = std::chrono::steady_clock::now();
    int fd = HttpConnect(site.admin_address());
    ASSERT_GE(fd, 0);
    const char partial[] = "GET /metr";  // never finished
    ASSERT_GT(::send(fd, partial, sizeof(partial) - 1, MSG_NOSIGNAL), 0);
    std::string raw;
    char buf[256];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
      raw.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_GE(elapsed, std::chrono::milliseconds(250));
    EXPECT_LT(elapsed, std::chrono::seconds(5))
        << "stalled client held the connection past the deadline";
  }

  // The admin thread is free again: the next request answers promptly and
  // no connection is left in flight.
  EXPECT_EQ(HttpGet(site.admin_address(), "/healthz").status, 200);
  EXPECT_EQ(MetricsRegistry::Default().SumGauges("obiwan_admin_http_active"),
            0);
}

TEST_F(AdminHttpTest, HealthzFlipsWhenTransportStops) {
  const HttpReply healthy = HttpGet(site_->admin_address(), "/healthz");
  EXPECT_EQ(healthy.status, 200);
  EXPECT_NE(healthy.body.find("\"status\":\"ok\""), std::string::npos);

  // Readiness must track the RMI plane: stop serving it (the admin port
  // keeps answering, as a real readiness probe needs it to).
  site_->Stop();
  const HttpReply unhealthy = HttpGet(site_->admin_address(), "/healthz");
  EXPECT_EQ(unhealthy.status, 503);
  EXPECT_NE(unhealthy.body.find("\"status\":\"unhealthy\""), std::string::npos);
}

TEST(AdminHttpBacklog, HealthzTracksResyncBacklog) {
  // Provider + demander over loopback; the demander's admin endpoint with a
  // zero stale budget turns unready the moment an invalidation lands.
  net::LoopbackNetwork network;
  core::Site provider(81, network.CreateEndpoint("prov"));
  core::Site demander(82, network.CreateEndpoint("dem"));
  ASSERT_TRUE(provider.Start().ok());
  ASSERT_TRUE(demander.Start().ok());
  provider.HostRegistry();
  demander.UseRegistry("prov");
  provider.SetConsistencyPolicy(
      std::make_unique<consistency::WriteInvalidate>());

  auto doc = std::make_shared<Node>();
  ASSERT_TRUE(provider.Bind("doc", doc).ok());
  const ObjectId oid = provider.Export(doc);
  auto remote = demander.Lookup<Node>("doc");
  ASSERT_TRUE(remote.ok());
  auto ref = remote->Replicate(ReplicationMode::Incremental(1));
  ASSERT_TRUE(ref.ok());

  core::Site::AdminOptions options;
  options.max_stale_backlog = 0;
  ASSERT_TRUE(demander.ServeAdmin("0", options).ok());

  EXPECT_EQ(HttpGet(demander.admin_address(), "/healthz").status, 200);

  // Invalidate: one stale replica exceeds the zero budget.
  doc->SetValue(42);
  ASSERT_TRUE(provider.MarkMasterUpdated(oid).ok());
  ASSERT_EQ(demander.StaleReplicaIds().size(), 1u);
  EXPECT_EQ(HttpGet(demander.admin_address(), "/healthz").status, 503);

  // Resync drains the backlog; readiness recovers.
  ASSERT_TRUE(demander.RefreshReplica(oid).ok());
  EXPECT_EQ(HttpGet(demander.admin_address(), "/healthz").status, 200);
}

TEST_F(AdminHttpTest, ConcurrentScrapesRaceProtocolTraffic) {
  // The TSan workload: scrapers hammer every endpoint while the site serves
  // real replication traffic on its RMI plane.
  auto transport = net::TcpTransport::Create(0);
  ASSERT_TRUE(transport.ok());
  core::Site demander(72, std::move(*transport));
  ASSERT_TRUE(demander.Start().ok());
  demander.UseRegistry(site_->address());
  auto remote = demander.Lookup<Node>("doc");
  ASSERT_TRUE(remote.ok());
  auto ref = remote->Replicate(ReplicationMode::Incremental(2));
  ASSERT_TRUE(ref.ok());

  constexpr int kScrapers = 4;
  constexpr int kRequests = 12;
  std::atomic<int> ok_scrapes{0};
  std::vector<std::thread> scrapers;
  scrapers.reserve(kScrapers);
  for (int t = 0; t < kScrapers; ++t) {
    scrapers.emplace_back([this, &ok_scrapes] {
      const char* paths[] = {"/metrics", "/healthz", "/inspect.json"};
      for (int i = 0; i < kRequests; ++i) {
        const HttpReply r = HttpGet(site_->admin_address(), paths[i % 3]);
        if (r.status == 200) ok_scrapes.fetch_add(1);
      }
    });
  }
  for (int i = 0; i < 24; ++i) {
    ref->get()->SetValue(i);
    ASSERT_TRUE(demander.Put(*ref).ok());
    ASSERT_TRUE(demander.Refresh(*ref).ok());
  }
  for (std::thread& t : scrapers) t.join();
  EXPECT_EQ(ok_scrapes.load(), kScrapers * kRequests);
}

// ---------------------------------------------------------------------------
// FleetMonitor merge math (deterministic virtual-clock sim)
// ---------------------------------------------------------------------------

class FleetMonitorTest : public ::testing::Test {
 protected:
  static constexpr int kDevices = 4;

  void SetUp() override {
    network_ = std::make_unique<net::SimNetwork>(clock_, net::kPaperLan);
    office_ = std::make_unique<core::Site>(
        1, network_->CreateEndpoint("office"), clock_);
    ASSERT_TRUE(office_->Start().ok());
    office_->HostRegistry();
    office_->SetConsistencyPolicy(
        std::make_unique<consistency::WriteInvalidate>());
    office_->SetHolderFailureThreshold(0);
    office_->SetRequestDeadline(500 * kMilli);

    doc_ = std::make_shared<Node>();
    doc_->payload.resize(128);
    ASSERT_TRUE(office_->Bind("doc", doc_).ok());
    oid_ = office_->Export(doc_);

    std::vector<net::Address> targets = {"office"};
    for (int i = 0; i < kDevices; ++i) {
      const std::string name = "dev" + std::to_string(i);
      auto site = std::make_unique<core::Site>(
          static_cast<SiteId>(10 + i), network_->CreateEndpoint(name), clock_);
      ASSERT_TRUE(site->Start().ok());
      site->UseRegistry("office");
      auto remote = site->Lookup<Node>("doc");
      ASSERT_TRUE(remote.ok());
      auto ref = remote->Replicate(ReplicationMode::Incremental(1));
      ASSERT_TRUE(ref.ok());
      refs_.push_back(*ref);
      targets.push_back(name);
      devices_.push_back(std::move(site));
    }

    vantage_ = std::make_unique<core::Site>(
        99, network_->CreateEndpoint("mon"), clock_);
    ASSERT_TRUE(vantage_->Start().ok());
    vantage_->SetRequestDeadline(500 * kMilli);

    obs::FleetOptions options;
    options.slo_lag_versions = 1;          // breach while max lag > 1
    options.slo_lag_age = 3600 * kSecond;  // age alone never breaches here
    monitor_ = std::make_unique<obs::FleetMonitor>(*vantage_, targets, options);
  }

  void UpdateMaster(int times) {
    for (int i = 0; i < times; ++i) {
      doc_->SetValue(doc_->value + 1);
      ASSERT_TRUE(office_->MarkMasterUpdated(oid_).ok());
    }
  }

  VirtualClock clock_;
  std::unique_ptr<net::SimNetwork> network_;
  std::unique_ptr<core::Site> office_;
  std::unique_ptr<core::Site> vantage_;
  std::vector<std::unique_ptr<core::Site>> devices_;
  std::vector<core::Ref<Node>> refs_;
  std::shared_ptr<Node> doc_;
  ObjectId oid_;
  std::unique_ptr<obs::FleetMonitor> monitor_;
};

TEST_F(FleetMonitorTest, BaselineIsConverged) {
  const obs::FleetReport report = monitor_->PollOnce();
  EXPECT_EQ(report.sites, 5u);
  EXPECT_EQ(report.reachable, 5u);
  EXPECT_EQ(report.replicas, static_cast<std::uint64_t>(kDevices));
  EXPECT_GE(report.masters, 1u);
  EXPECT_EQ(report.stale_replicas, 0u);
  EXPECT_EQ(report.lag_versions_max, 0u);
  EXPECT_FALSE(report.slo_breached);
  EXPECT_EQ(report.polls, 1u);
  // Every device registered as a holder of the doc.
  EXPECT_GE(report.holders, static_cast<std::uint64_t>(kDevices));
  // The doc is the hottest object: every device fetched it once.
  ASSERT_FALSE(report.hottest.empty());
  EXPECT_EQ(report.hottest[0].id, oid_);
  EXPECT_GE(report.hottest[0].traffic, static_cast<std::uint64_t>(kDevices));
}

TEST_F(FleetMonitorTest, HottestRankingBreaksTrafficTiesByObjectId) {
  // Three more masters, each fetched exactly once: an equal-traffic tie the
  // ranking must break by object id, not unordered_map iteration order.
  std::vector<ObjectId> aux;
  for (int i = 0; i < 3; ++i) {
    const std::string name = "aux" + std::to_string(i);
    auto obj = std::make_shared<Node>();
    ASSERT_TRUE(office_->Bind(name, obj).ok());
    aux.push_back(office_->Export(obj));
    auto remote = devices_[0]->Lookup<Node>(name);
    ASSERT_TRUE(remote.ok());
    auto ref = remote->Replicate(ReplicationMode::Incremental(1));
    ASSERT_TRUE(ref.ok());
  }

  const obs::FleetReport report = monitor_->PollOnce();
  ASSERT_EQ(report.hottest.size(), 4u);
  EXPECT_EQ(report.hottest[0].id, oid_);  // doc: one fetch per device
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(report.hottest[1 + i].id, aux[i]) << "tie not broken by id";
    EXPECT_EQ(report.hottest[1 + i].traffic, 1u);
  }
}

TEST_F(FleetMonitorTest, MergesLagDistributionAcrossSites) {
  UpdateMaster(3);  // versioned invalidations: every device lag 3
  clock_.Sleep(10 * kMilli);                     // let the staleness age
  (void)devices_[0]->RefreshReplica(oid_);       // dev0 current again
  network_->SetEndpointUp("dev3", false);        // dev3 unreachable

  const obs::FleetReport report = monitor_->PollOnce();
  EXPECT_EQ(report.sites, 5u);
  EXPECT_EQ(report.reachable, 4u);
  // Reachable lag samples: office 0, dev0 0, dev1 3, dev2 3.
  EXPECT_EQ(report.stale_replicas, 2u);
  EXPECT_EQ(report.lag_versions_p50, 0u);
  EXPECT_EQ(report.lag_versions_p95, 3u);
  EXPECT_EQ(report.lag_versions_max, 3u);
  EXPECT_GT(report.lag_age_max, 0);
  EXPECT_TRUE(report.slo_breached);

  const obs::FleetSiteSample* down = nullptr;
  for (const obs::FleetSiteSample& s : report.site_samples) {
    if (s.address == "dev3") down = &s;
  }
  ASSERT_NE(down, nullptr);
  EXPECT_FALSE(down->reachable);
  EXPECT_GE(MetricsRegistry::Default().SumCounters(
                "obiwan_fleet_unreachable_polls_total"),
            1u);
}

TEST_F(FleetMonitorTest, SloBurnAccruesWhileBreached) {
  UpdateMaster(2);  // lag 2 > bound 1 on every device
  obs::FleetReport report = monitor_->PollOnce();
  EXPECT_TRUE(report.slo_breached);
  EXPECT_DOUBLE_EQ(report.slo_breach_seconds, 0.0);  // no interval yet

  // Inspect RMIs themselves advance the simulated clock by network latency,
  // so the accrued burn is the slept interval plus a small epsilon.
  clock_.Sleep(5 * kSecond);
  report = monitor_->PollOnce();
  EXPECT_TRUE(report.slo_breached);
  EXPECT_NEAR(report.slo_breach_seconds, 5.0, 0.5);
  const double burned = report.slo_breach_seconds;

  // Converge; burn stops accruing but the total is retained.
  for (auto& device : devices_) (void)device->RefreshReplica(oid_);
  clock_.Sleep(5 * kSecond);
  report = monitor_->PollOnce();
  EXPECT_FALSE(report.slo_breached);
  EXPECT_EQ(report.lag_versions_max, 0u);
  EXPECT_EQ(report.stale_replicas, 0u);
  EXPECT_DOUBLE_EQ(report.slo_breach_seconds, burned);
}

TEST_F(FleetMonitorTest, BytesPerUpdateFromPutDeltas) {
  obs::FleetReport report = monitor_->PollOnce();
  const std::uint64_t updates_before = report.updates;

  // A device edits and reintegrates twice: the master's put counter moves.
  core::Site& writer = *devices_[1];
  core::Ref<Node>& ref = refs_[1];
  for (int i = 0; i < 2; ++i) {
    ref.get()->SetValue(100 + i);
    ASSERT_TRUE(writer.Put(ref).ok());
  }

  report = monitor_->PollOnce();
  EXPECT_EQ(report.updates, updates_before + 2);
  // Each put shipped the 128-byte payload (plus field overhead).
  EXPECT_GT(report.bytes_per_update, 100.0);

  // Idle interval: the delta resets to zero, the cumulative count stays.
  report = monitor_->PollOnce();
  EXPECT_EQ(report.updates, updates_before + 2);
  EXPECT_DOUBLE_EQ(report.bytes_per_update, 0.0);
}

TEST_F(FleetMonitorTest, AddTargetAndLastReport) {
  EXPECT_EQ(monitor_->target_count(), 5u);
  EXPECT_EQ(monitor_->last().polls, 0u);
  const obs::FleetReport report = monitor_->PollOnce();
  EXPECT_EQ(monitor_->last().polls, report.polls);
  monitor_->AddTarget("office");  // duplicate target: counted, still merged
  EXPECT_EQ(monitor_->target_count(), 6u);
  EXPECT_EQ(monitor_->PollOnce().sites, 6u);
}

}  // namespace
}  // namespace obiwan
