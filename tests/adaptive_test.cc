// AdaptiveRef tests: the automated RMI/LMI decision of §6, on the simulated
// paper network so the cost model is exact.
#include <gtest/gtest.h>

#include "adaptive/adaptive_ref.h"
#include "obiwan.h"
#include "test_objects.h"

namespace obiwan {
namespace {

using adaptive::AdaptiveOptions;
using adaptive::AdaptiveRef;
using core::ReplicationMode;
using test::Node;

class AdaptiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<net::SimNetwork>(clock_, net::kPaperLan);
    server_ = std::make_unique<core::Site>(1, network_->CreateEndpoint("s"), clock_);
    client_ = std::make_unique<core::Site>(2, network_->CreateEndpoint("c"), clock_);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_TRUE(client_->Start().ok());
    server_->HostRegistry();
    client_->UseRegistry("s");
    master_ = test::MakeChain(1, 64, "m");
    ASSERT_TRUE(server_->Bind("obj", master_).ok());
  }

  AdaptiveRef<Node> Make(AdaptiveOptions options = {}) {
    auto remote = client_->Lookup<Node>("obj");
    EXPECT_TRUE(remote.ok());
    return AdaptiveRef<Node>(*client_, *remote, options);
  }

  VirtualClock clock_;
  std::unique_ptr<net::SimNetwork> network_;
  std::unique_ptr<core::Site> server_;
  std::unique_ptr<core::Site> client_;
  std::shared_ptr<Node> master_;
};

TEST_F(AdaptiveTest, StartsRemoteThenSwitchesAtTheCrossover) {
  // Estimate = 2 RTTs; each RMI costs one RTT, so the switch happens after
  // the 2nd remote call.
  auto ref = Make();
  EXPECT_FALSE(ref.local());

  for (int i = 1; i <= 2; ++i) {
    auto v = ref.Invoke(&Node::Touch);
    ASSERT_TRUE(v.ok());
    EXPECT_FALSE(ref.local()) << "switched too early at call " << i;
  }
  EXPECT_EQ(ref.remote_calls(), 2u);
  EXPECT_EQ(master_->value, 2);  // both calls ran on the master

  // Third call: cost model trips, call runs locally.
  auto v = ref.Invoke(&Node::Touch);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 3);
  EXPECT_TRUE(ref.local());
  EXPECT_EQ(ref.remote_calls(), 2u);
  EXPECT_EQ(master_->value, 2);  // master no longer touched

  // Everything after is LMI: zero network time.
  Nanos before = clock_.Now();
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(ref.Invoke(&Node::Touch).ok());
  EXPECT_EQ(clock_.Now(), before);

  // Sync pushes the accumulated local state back.
  ASSERT_TRUE(ref.Sync().ok());
  EXPECT_EQ(master_->value, 1003);
}

TEST_F(AdaptiveTest, PinRemoteNeverSwitches) {
  AdaptiveOptions options;
  options.pin_remote = true;
  auto ref = Make(options);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(ref.Invoke(&Node::Touch).ok());
  EXPECT_FALSE(ref.local());
  EXPECT_EQ(ref.remote_calls(), 10u);
  EXPECT_EQ(master_->value, 10);
  EXPECT_TRUE(ref.Sync().ok());  // no-op in remote mode
}

TEST_F(AdaptiveTest, HighEstimateDelaysTheSwitch) {
  AdaptiveOptions options;
  options.replication_cost_estimate = 100 * 2'800 * kMicro;  // ~100 RTTs
  auto ref = Make(options);
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(ref.Invoke(&Node::Touch).ok());
  EXPECT_FALSE(ref.local());  // still below the threshold
  for (int i = 0; i < 60; ++i) ASSERT_TRUE(ref.Invoke(&Node::Touch).ok());
  EXPECT_TRUE(ref.local());
}

TEST_F(AdaptiveTest, ExplicitReplicateNowSwitchesImmediately) {
  auto ref = Make();
  ASSERT_TRUE(ref.ReplicateNow().ok());
  EXPECT_TRUE(ref.local());
  auto v = ref.Invoke(&Node::Value);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(ref.remote_calls(), 0u);
}

TEST_F(AdaptiveTest, ConstAndVoidSignatures) {
  auto ref = Make();
  auto label = ref.Invoke(&Node::Label);  // const, returns string
  ASSERT_TRUE(label.ok());
  EXPECT_EQ(*label, "m0");
  Status s = ref.Invoke(&Node::SetValue, std::int64_t{42});  // void
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(master_->value, 42);
}

TEST_F(AdaptiveTest, DisconnectionSurfacesThroughRmiMode) {
  auto ref = Make();
  network_->SetEndpointUp("c", false);
  auto v = ref.Invoke(&Node::Touch);
  EXPECT_EQ(v.status().code(), StatusCode::kDisconnected);
  network_->SetEndpointUp("c", true);
  EXPECT_TRUE(ref.Invoke(&Node::Touch).ok());
}

}  // namespace
}  // namespace obiwan
