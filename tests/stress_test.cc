// Concurrency stress: many client sites hammering one provider over real TCP
// sockets — exercises the transport's thread-per-connection path and the
// site lock under genuine parallelism.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "net/tcp.h"
#include "obiwan.h"
#include "test_objects.h"

namespace obiwan {
namespace {

using core::ReplicationMode;
using test::Node;

TEST(TcpStress, ConcurrentClientsRmiAndReplication) {
  auto server_transport = net::TcpTransport::Create(0);
  ASSERT_TRUE(server_transport.ok());
  core::Site server(1, std::move(*server_transport));
  ASSERT_TRUE(server.Start().ok());
  server.HostRegistry();
  const net::Address server_addr = server.address();

  // One shared counter object plus a per-client list.
  auto counter = std::make_shared<Node>();
  ASSERT_TRUE(server.Bind("counter", counter).ok());
  constexpr int kClients = 8;
  constexpr int kRounds = 20;
  for (int c = 0; c < kClients; ++c) {
    ASSERT_TRUE(
        server.Bind("list" + std::to_string(c), test::MakeChain(5, 32, "n")).ok());
  }

  std::atomic<int> failures{0};
  std::atomic<long> rmi_sum{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto transport = net::TcpTransport::Create(0);
      if (!transport.ok()) {
        ++failures;
        return;
      }
      core::Site client(static_cast<SiteId>(10 + c), std::move(*transport));
      if (!client.Start().ok()) {
        ++failures;
        return;
      }
      client.UseRegistry(server_addr);

      auto counter_ref = client.Lookup<Node>("counter");
      auto list_ref = client.Lookup<Node>("list" + std::to_string(c));
      if (!counter_ref.ok() || !list_ref.ok()) {
        ++failures;
        return;
      }

      for (int round = 0; round < kRounds; ++round) {
        // Shared-object RMI (server serializes these under its lock).
        auto v = counter_ref->Invoke(&Node::Touch);
        if (!v.ok()) {
          ++failures;
          return;
        }
        rmi_sum += 1;
      }

      // Private list: replicate, edit, put.
      auto replica = list_ref->Replicate(ReplicationMode::Incremental(2));
      if (!replica.ok()) {
        ++failures;
        return;
      }
      core::Ref<Node>* cursor = &*replica;
      while (!cursor->IsEmpty()) {
        (*cursor)->SetValue(c);
        cursor = &cursor->get()->next;
      }
      (*replica)->SetLabel("client-" + std::to_string(c));
      if (!client.Put(*replica).ok()) ++failures;
      client.Stop();
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(rmi_sum.load(), kClients * kRounds);
  // Every RMI Touch landed exactly once on the master.
  EXPECT_EQ(counter->value, kClients * kRounds);
  server.Stop();
}

TEST(TcpStress, ConcurrentPutsToOneMasterAreSerialized) {
  auto server_transport = net::TcpTransport::Create(0);
  ASSERT_TRUE(server_transport.ok());
  core::Site server(1, std::move(*server_transport));
  ASSERT_TRUE(server.Start().ok());
  server.HostRegistry();
  const net::Address server_addr = server.address();

  auto shared = std::make_shared<Node>();
  ASSERT_TRUE(server.Bind("shared", shared).ok());

  constexpr int kClients = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto transport = net::TcpTransport::Create(0);
      if (!transport.ok()) {
        ++failures;
        return;
      }
      core::Site client(static_cast<SiteId>(20 + c), std::move(*transport));
      if (!client.Start().ok()) {
        ++failures;
        return;
      }
      client.UseRegistry(server_addr);
      auto remote = client.Lookup<Node>("shared");
      if (!remote.ok()) {
        ++failures;
        return;
      }
      auto replica = remote->Replicate(ReplicationMode::Incremental(1));
      if (!replica.ok()) {
        ++failures;
        return;
      }
      for (int round = 0; round < 10; ++round) {
        (*replica)->SetValue(c * 100 + round);
        if (!client.Put(*replica).ok()) {
          ++failures;
          return;
        }
      }
      client.Stop();
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0);
  // 60 accepted puts: the master version advanced exactly that far.
  auto version = server.MasterVersion(ObjectId{1, 1});
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 1u + kClients * 10u);
  server.Stop();
}

}  // namespace
}  // namespace obiwan
