// Soak test: a randomized multi-site workload over many rounds on the
// simulated network, with disconnections and conflicts injected throughout.
// The invariant suite runs at the end, once everything reconnects and
// synchronises:
//   - no crashes/UB along the way (every error is an expected Status),
//   - replica identity holds at every site,
//   - after a final refresh sweep, every replica equals its master,
//   - version counters are consistent with the number of accepted puts.
#include <gtest/gtest.h>

#include <random>

#include "obiwan.h"
#include "test_objects.h"

namespace obiwan {
namespace {

using core::ReplicationMode;
using test::Node;

class SoakTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SoakTest, RandomizedWorkloadConverges) {
  std::mt19937_64 rng(GetParam());

  VirtualClock clock;
  net::SimNetwork network(clock, net::kPaperLan, /*seed=*/GetParam());

  // One master site and three mobile demanders.
  core::Site hub(1, network.CreateEndpoint("hub"), clock);
  ASSERT_TRUE(hub.Start().ok());
  hub.HostRegistry();

  constexpr int kDemanders = 3;
  std::vector<std::unique_ptr<core::Site>> demanders;
  std::vector<std::string> addresses;
  for (int i = 0; i < kDemanders; ++i) {
    addresses.push_back("mobile" + std::to_string(i));
    demanders.push_back(std::make_unique<core::Site>(
        static_cast<SiteId>(2 + i), network.CreateEndpoint(addresses.back()),
        clock));
    ASSERT_TRUE(demanders.back()->Start().ok());
    demanders.back()->UseRegistry("hub");
  }

  // Shared object population: several independent lists.
  constexpr int kLists = 4;
  constexpr int kListLen = 6;
  std::vector<std::shared_ptr<Node>> masters;
  for (int i = 0; i < kLists; ++i) {
    masters.push_back(test::MakeChain(kListLen, 32, "l" + std::to_string(i) + "-"));
    ASSERT_TRUE(hub.Bind("list" + std::to_string(i), masters.back()).ok());
  }

  // Each demander's handle per list (replicated lazily during the run).
  std::vector<std::vector<core::Ref<Node>>> replicas(
      kDemanders, std::vector<core::Ref<Node>>(kLists));
  std::vector<bool> connected(kDemanders, true);

  int accepted_puts = 0;
  int rejected_ops = 0;

  constexpr int kRounds = 600;
  for (int round = 0; round < kRounds; ++round) {
    int d = static_cast<int>(rng() % kDemanders);
    int l = static_cast<int>(rng() % kLists);
    core::Site& site = *demanders[d];
    core::Ref<Node>& ref = replicas[d][l];

    switch (rng() % 7) {
      case 0: {  // toggle connectivity (voluntary/involuntary disconnection)
        connected[d] = !connected[d];
        network.SetEndpointUp(addresses[d], connected[d]);
        break;
      }
      case 1: {  // replicate (or re-replicate) a list
        auto remote = site.Lookup<Node>("list" + std::to_string(l));
        if (!remote.ok()) {
          ++rejected_ops;
          break;
        }
        std::uint32_t batch = 1 + static_cast<std::uint32_t>(rng() % kListLen);
        auto mode = (rng() & 1) != 0u ? ReplicationMode::Incremental(batch)
                                      : ReplicationMode::Cluster(batch);
        auto result = remote->Replicate(mode);
        if (result.ok()) {
          ref = *result;
        } else {
          ++rejected_ops;
        }
        break;
      }
      case 2: {  // traverse and edit locally (works offline on local prefix)
        core::Ref<Node>* cursor = &ref;
        int hops = static_cast<int>(rng() % kListLen);
        for (int h = 0; h < hops && !cursor->IsEmpty(); ++h) {
          if (!cursor->Demand().ok()) {
            ++rejected_ops;
            break;
          }
          cursor->get()->value += 1;
          cursor = &cursor->get()->next;
        }
        break;
      }
      case 3: {  // put one object back
        if (ref.IsLocal()) {
          Status s = site.Put(ref);
          if (s.ok()) {
            ++accepted_puts;
          } else {
            ++rejected_ops;  // cluster member, disconnected, conflict...
          }
        }
        break;
      }
      case 4: {  // put a whole cluster back
        if (ref.IsLocal()) {
          Status s = site.PutCluster(ref);
          if (s.ok()) {
            ++accepted_puts;
          } else {
            ++rejected_ops;
          }
        }
        break;
      }
      case 5: {  // refresh
        if (ref.IsLocal() && !site.Refresh(ref).ok()) ++rejected_ops;
        break;
      }
      case 6: {  // RMI on the master
        auto remote = site.Lookup<Node>("list" + std::to_string(l));
        if (remote.ok()) {
          if (!remote->Invoke(&Node::Touch).ok()) ++rejected_ops;
        } else {
          ++rejected_ops;
        }
        break;
      }
    }
    clock.Sleep(kMilli);
  }

  // --- convergence: reconnect everyone and refresh everything ------------------
  for (int d = 0; d < kDemanders; ++d) {
    network.SetEndpointUp(addresses[d], true);
  }
  for (int d = 0; d < kDemanders; ++d) {
    for (int l = 0; l < kLists; ++l) {
      core::Ref<Node>& ref = replicas[d][l];
      if (!ref.IsLocal()) continue;
      ASSERT_TRUE(demanders[d]->PrefetchAll(ref).ok());
      // Refresh every node of the list replica.
      core::Ref<Node>* cursor = &ref;
      while (!cursor->IsEmpty()) {
        ASSERT_TRUE(demanders[d]->Refresh(*cursor).ok());
        cursor = &cursor->get()->next;
      }
    }
  }

  // Every replica now equals its master, field by field.
  for (int d = 0; d < kDemanders; ++d) {
    for (int l = 0; l < kLists; ++l) {
      core::Ref<Node>& ref = replicas[d][l];
      if (!ref.IsLocal()) continue;
      Node* replica_node = ref.get();
      Node* master_node = masters[static_cast<std::size_t>(l)].get();
      while (replica_node != nullptr && master_node != nullptr) {
        ASSERT_EQ(replica_node->value, master_node->value)
            << "demander " << d << " list " << l;
        ASSERT_EQ(replica_node->label, master_node->label);
        replica_node = static_cast<Node*>(replica_node->next.local_raw());
        master_node = static_cast<Node*>(master_node->next.local_raw());
      }
      EXPECT_EQ(replica_node == nullptr, master_node == nullptr);
    }
  }

  // Sanity: the workload actually exercised both paths.
  EXPECT_GT(accepted_puts, 10);
  EXPECT_GT(rejected_ops, 0);  // disconnections guarantee some rejects

  // Identity: at each demander, at most one replica per master id.
  for (int d = 0; d < kDemanders; ++d) {
    EXPECT_LE(demanders[d]->replica_count(),
              static_cast<std::size_t>(kLists * kListLen));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoakTest,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace obiwan
