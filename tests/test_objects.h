// Shareable classes used across the test suite and benches.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "obiwan.h"

namespace obiwan::test {

// Chain node — the paper's A -> B -> C graph (Figure 1) and the list
// workload of §4.2/§4.3.
class Node : public core::Shareable {
 public:
  OBIWAN_SHAREABLE(Node)

  std::string label;
  Bytes payload;  // sized to model the paper's 64 B / 1 KB / 16 KB objects
  std::int64_t value = 0;
  core::Ref<Node> next;

  std::int64_t Value() const { return value; }
  void SetValue(std::int64_t v) { value = v; }
  std::string Label() const { return label; }
  void SetLabel(std::string l) { label = std::move(l); }
  // The paper's probe method: "performs an access to a variable of the
  // object, so it is not an empty method" (§4.1 footnote).
  std::int64_t Touch() { return ++value; }

  static void ObiwanDefine(core::ClassDef<Node>& def) {
    def.Field("label", &Node::label)
        .Field("payload", &Node::payload)
        .Field("value", &Node::value)
        .Ref("next", &Node::next)
        .Method("Value", &Node::Value)
        .Method("SetValue", &Node::SetValue)
        .Method("Label", &Node::Label)
        .Method("SetLabel", &Node::SetLabel)
        .Method("Touch", &Node::Touch);
  }
};

// Binary node for tree/diamond-shaped graphs (shared targets, fan-out).
class Pair : public core::Shareable {
 public:
  OBIWAN_SHAREABLE(Pair)

  std::string name;
  core::Ref<Pair> left;
  core::Ref<Pair> right;

  std::string Name() const { return name; }

  static void ObiwanDefine(core::ClassDef<Pair>& def) {
    def.Field("name", &Pair::name)
        .Ref("left", &Pair::left)
        .Ref("right", &Pair::right)
        .Method("Name", &Pair::Name);
  }
};

// Build a singly linked chain of `n` nodes with `payload_size`-byte payloads;
// labels are "<prefix>0" ... "<prefix>n-1"; values are 0..n-1.
std::shared_ptr<Node> MakeChain(int n, std::size_t payload_size,
                                const std::string& prefix = "n");

}  // namespace obiwan::test
