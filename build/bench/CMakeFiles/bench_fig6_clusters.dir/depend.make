# Empty dependencies file for bench_fig6_clusters.
# This may be replaced when dependencies are built.
