file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_clusters.dir/__/tests/test_objects.cc.o"
  "CMakeFiles/bench_fig6_clusters.dir/__/tests/test_objects.cc.o.d"
  "CMakeFiles/bench_fig6_clusters.dir/bench_fig6_clusters.cc.o"
  "CMakeFiles/bench_fig6_clusters.dir/bench_fig6_clusters.cc.o.d"
  "bench_fig6_clusters"
  "bench_fig6_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
