file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_swizzle.dir/__/tests/test_objects.cc.o"
  "CMakeFiles/bench_ablation_swizzle.dir/__/tests/test_objects.cc.o.d"
  "CMakeFiles/bench_ablation_swizzle.dir/bench_ablation_swizzle.cc.o"
  "CMakeFiles/bench_ablation_swizzle.dir/bench_ablation_swizzle.cc.o.d"
  "bench_ablation_swizzle"
  "bench_ablation_swizzle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_swizzle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
