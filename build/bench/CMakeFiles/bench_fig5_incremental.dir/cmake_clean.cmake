file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_incremental.dir/__/tests/test_objects.cc.o"
  "CMakeFiles/bench_fig5_incremental.dir/__/tests/test_objects.cc.o.d"
  "CMakeFiles/bench_fig5_incremental.dir/bench_fig5_incremental.cc.o"
  "CMakeFiles/bench_fig5_incremental.dir/bench_fig5_incremental.cc.o.d"
  "bench_fig5_incremental"
  "bench_fig5_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
