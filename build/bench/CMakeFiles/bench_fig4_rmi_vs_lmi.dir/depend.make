# Empty dependencies file for bench_fig4_rmi_vs_lmi.
# This may be replaced when dependencies are built.
