file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_rmi_vs_lmi.dir/__/tests/test_objects.cc.o"
  "CMakeFiles/bench_fig4_rmi_vs_lmi.dir/__/tests/test_objects.cc.o.d"
  "CMakeFiles/bench_fig4_rmi_vs_lmi.dir/bench_fig4_rmi_vs_lmi.cc.o"
  "CMakeFiles/bench_fig4_rmi_vs_lmi.dir/bench_fig4_rmi_vs_lmi.cc.o.d"
  "bench_fig4_rmi_vs_lmi"
  "bench_fig4_rmi_vs_lmi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_rmi_vs_lmi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
