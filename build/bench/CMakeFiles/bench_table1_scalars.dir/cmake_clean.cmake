file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_scalars.dir/__/tests/test_objects.cc.o"
  "CMakeFiles/bench_table1_scalars.dir/__/tests/test_objects.cc.o.d"
  "CMakeFiles/bench_table1_scalars.dir/bench_table1_scalars.cc.o"
  "CMakeFiles/bench_table1_scalars.dir/bench_table1_scalars.cc.o.d"
  "bench_table1_scalars"
  "bench_table1_scalars.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_scalars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
