file(REMOVE_RECURSE
  "CMakeFiles/batch_prefetch_test.dir/batch_prefetch_test.cc.o"
  "CMakeFiles/batch_prefetch_test.dir/batch_prefetch_test.cc.o.d"
  "CMakeFiles/batch_prefetch_test.dir/test_objects.cc.o"
  "CMakeFiles/batch_prefetch_test.dir/test_objects.cc.o.d"
  "batch_prefetch_test"
  "batch_prefetch_test.pdb"
  "batch_prefetch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_prefetch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
