# Empty dependencies file for batch_prefetch_test.
# This may be replaced when dependencies are built.
