file(REMOVE_RECURSE
  "CMakeFiles/soak_vv_test.dir/soak_vv_test.cc.o"
  "CMakeFiles/soak_vv_test.dir/soak_vv_test.cc.o.d"
  "CMakeFiles/soak_vv_test.dir/test_objects.cc.o"
  "CMakeFiles/soak_vv_test.dir/test_objects.cc.o.d"
  "soak_vv_test"
  "soak_vv_test.pdb"
  "soak_vv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soak_vv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
