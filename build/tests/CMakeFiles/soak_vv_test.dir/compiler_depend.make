# Empty compiler generated dependencies file for soak_vv_test.
# This may be replaced when dependencies are built.
