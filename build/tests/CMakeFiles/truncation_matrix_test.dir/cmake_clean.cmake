file(REMOVE_RECURSE
  "CMakeFiles/truncation_matrix_test.dir/test_objects.cc.o"
  "CMakeFiles/truncation_matrix_test.dir/test_objects.cc.o.d"
  "CMakeFiles/truncation_matrix_test.dir/truncation_matrix_test.cc.o"
  "CMakeFiles/truncation_matrix_test.dir/truncation_matrix_test.cc.o.d"
  "truncation_matrix_test"
  "truncation_matrix_test.pdb"
  "truncation_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/truncation_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
