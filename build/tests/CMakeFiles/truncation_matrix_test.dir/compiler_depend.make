# Empty compiler generated dependencies file for truncation_matrix_test.
# This may be replaced when dependencies are built.
