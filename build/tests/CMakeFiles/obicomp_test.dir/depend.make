# Empty dependencies file for obicomp_test.
# This may be replaced when dependencies are built.
