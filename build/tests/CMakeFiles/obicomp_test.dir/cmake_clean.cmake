file(REMOVE_RECURSE
  "CMakeFiles/obicomp_test.dir/generated/task_impl.cc.o"
  "CMakeFiles/obicomp_test.dir/generated/task_impl.cc.o.d"
  "CMakeFiles/obicomp_test.dir/obicomp_test.cc.o"
  "CMakeFiles/obicomp_test.dir/obicomp_test.cc.o.d"
  "obicomp_test"
  "obicomp_test.pdb"
  "obicomp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obicomp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
