# Empty dependencies file for lease_push_test.
# This may be replaced when dependencies are built.
