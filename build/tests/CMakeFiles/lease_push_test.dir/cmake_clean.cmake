file(REMOVE_RECURSE
  "CMakeFiles/lease_push_test.dir/lease_push_test.cc.o"
  "CMakeFiles/lease_push_test.dir/lease_push_test.cc.o.d"
  "CMakeFiles/lease_push_test.dir/test_objects.cc.o"
  "CMakeFiles/lease_push_test.dir/test_objects.cc.o.d"
  "lease_push_test"
  "lease_push_test.pdb"
  "lease_push_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lease_push_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
