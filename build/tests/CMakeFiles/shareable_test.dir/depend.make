# Empty dependencies file for shareable_test.
# This may be replaced when dependencies are built.
