file(REMOVE_RECURSE
  "CMakeFiles/shareable_test.dir/shareable_test.cc.o"
  "CMakeFiles/shareable_test.dir/shareable_test.cc.o.d"
  "CMakeFiles/shareable_test.dir/test_objects.cc.o"
  "CMakeFiles/shareable_test.dir/test_objects.cc.o.d"
  "shareable_test"
  "shareable_test.pdb"
  "shareable_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shareable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
