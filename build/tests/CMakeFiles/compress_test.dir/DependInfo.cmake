
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/compress_test.cc" "tests/CMakeFiles/compress_test.dir/compress_test.cc.o" "gcc" "tests/CMakeFiles/compress_test.dir/compress_test.cc.o.d"
  "/root/repo/tests/test_objects.cc" "tests/CMakeFiles/compress_test.dir/test_objects.cc.o" "gcc" "tests/CMakeFiles/compress_test.dir/test_objects.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/consistency/CMakeFiles/obiwan_consistency.dir/DependInfo.cmake"
  "/root/repo/build/src/tx/CMakeFiles/obiwan_tx.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/obiwan_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rmi/CMakeFiles/obiwan_rmi.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/obiwan_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/obiwan_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/obiwan_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
