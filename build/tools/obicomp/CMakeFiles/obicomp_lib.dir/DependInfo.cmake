
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/obicomp/idl.cc" "tools/obicomp/CMakeFiles/obicomp_lib.dir/idl.cc.o" "gcc" "tools/obicomp/CMakeFiles/obicomp_lib.dir/idl.cc.o.d"
  "/root/repo/tools/obicomp/port.cc" "tools/obicomp/CMakeFiles/obicomp_lib.dir/port.cc.o" "gcc" "tools/obicomp/CMakeFiles/obicomp_lib.dir/port.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/obiwan_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
