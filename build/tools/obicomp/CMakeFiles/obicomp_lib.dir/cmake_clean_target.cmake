file(REMOVE_RECURSE
  "libobicomp_lib.a"
)
