file(REMOVE_RECURSE
  "CMakeFiles/obicomp_lib.dir/idl.cc.o"
  "CMakeFiles/obicomp_lib.dir/idl.cc.o.d"
  "CMakeFiles/obicomp_lib.dir/port.cc.o"
  "CMakeFiles/obicomp_lib.dir/port.cc.o.d"
  "libobicomp_lib.a"
  "libobicomp_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obicomp_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
