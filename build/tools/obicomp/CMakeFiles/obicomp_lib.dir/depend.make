# Empty dependencies file for obicomp_lib.
# This may be replaced when dependencies are built.
