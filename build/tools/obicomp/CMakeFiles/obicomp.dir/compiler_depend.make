# Empty compiler generated dependencies file for obicomp.
# This may be replaced when dependencies are built.
