file(REMOVE_RECURSE
  "CMakeFiles/obicomp.dir/main.cc.o"
  "CMakeFiles/obicomp.dir/main.cc.o.d"
  "obicomp"
  "obicomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obicomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
