file(REMOVE_RECURSE
  "libobiwan_rmi.a"
)
