file(REMOVE_RECURSE
  "CMakeFiles/obiwan_rmi.dir/registry.cc.o"
  "CMakeFiles/obiwan_rmi.dir/registry.cc.o.d"
  "libobiwan_rmi.a"
  "libobiwan_rmi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obiwan_rmi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
