# Empty dependencies file for obiwan_rmi.
# This may be replaced when dependencies are built.
