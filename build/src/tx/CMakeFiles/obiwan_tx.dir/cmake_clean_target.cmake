file(REMOVE_RECURSE
  "libobiwan_tx.a"
)
