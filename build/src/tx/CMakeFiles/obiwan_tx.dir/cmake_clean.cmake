file(REMOVE_RECURSE
  "CMakeFiles/obiwan_tx.dir/transaction.cc.o"
  "CMakeFiles/obiwan_tx.dir/transaction.cc.o.d"
  "libobiwan_tx.a"
  "libobiwan_tx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obiwan_tx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
