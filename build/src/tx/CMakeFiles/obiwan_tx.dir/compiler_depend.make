# Empty compiler generated dependencies file for obiwan_tx.
# This may be replaced when dependencies are built.
