file(REMOVE_RECURSE
  "CMakeFiles/obiwan_consistency.dir/lww.cc.o"
  "CMakeFiles/obiwan_consistency.dir/lww.cc.o.d"
  "CMakeFiles/obiwan_consistency.dir/version_vector.cc.o"
  "CMakeFiles/obiwan_consistency.dir/version_vector.cc.o.d"
  "libobiwan_consistency.a"
  "libobiwan_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obiwan_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
