file(REMOVE_RECURSE
  "libobiwan_consistency.a"
)
