# Empty compiler generated dependencies file for obiwan_consistency.
# This may be replaced when dependencies are built.
