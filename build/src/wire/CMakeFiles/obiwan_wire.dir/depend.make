# Empty dependencies file for obiwan_wire.
# This may be replaced when dependencies are built.
