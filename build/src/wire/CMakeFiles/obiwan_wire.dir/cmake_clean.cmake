file(REMOVE_RECURSE
  "CMakeFiles/obiwan_wire.dir/compress.cc.o"
  "CMakeFiles/obiwan_wire.dir/compress.cc.o.d"
  "libobiwan_wire.a"
  "libobiwan_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obiwan_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
