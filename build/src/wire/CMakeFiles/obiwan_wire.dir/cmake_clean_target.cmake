file(REMOVE_RECURSE
  "libobiwan_wire.a"
)
