file(REMOVE_RECURSE
  "libobiwan_core.a"
)
