# Empty compiler generated dependencies file for obiwan_core.
# This may be replaced when dependencies are built.
