file(REMOVE_RECURSE
  "CMakeFiles/obiwan_core.dir/ref.cc.o"
  "CMakeFiles/obiwan_core.dir/ref.cc.o.d"
  "CMakeFiles/obiwan_core.dir/site.cc.o"
  "CMakeFiles/obiwan_core.dir/site.cc.o.d"
  "CMakeFiles/obiwan_core.dir/snapshot.cc.o"
  "CMakeFiles/obiwan_core.dir/snapshot.cc.o.d"
  "libobiwan_core.a"
  "libobiwan_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obiwan_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
