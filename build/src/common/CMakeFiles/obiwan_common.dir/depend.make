# Empty dependencies file for obiwan_common.
# This may be replaced when dependencies are built.
