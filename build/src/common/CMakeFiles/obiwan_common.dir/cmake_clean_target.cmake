file(REMOVE_RECURSE
  "libobiwan_common.a"
)
