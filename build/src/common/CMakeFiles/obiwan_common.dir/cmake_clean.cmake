file(REMOVE_RECURSE
  "CMakeFiles/obiwan_common.dir/log.cc.o"
  "CMakeFiles/obiwan_common.dir/log.cc.o.d"
  "CMakeFiles/obiwan_common.dir/status.cc.o"
  "CMakeFiles/obiwan_common.dir/status.cc.o.d"
  "CMakeFiles/obiwan_common.dir/trace.cc.o"
  "CMakeFiles/obiwan_common.dir/trace.cc.o.d"
  "libobiwan_common.a"
  "libobiwan_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obiwan_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
