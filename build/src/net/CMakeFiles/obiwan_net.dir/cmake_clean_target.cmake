file(REMOVE_RECURSE
  "libobiwan_net.a"
)
