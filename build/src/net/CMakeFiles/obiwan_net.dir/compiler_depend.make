# Empty compiler generated dependencies file for obiwan_net.
# This may be replaced when dependencies are built.
