file(REMOVE_RECURSE
  "CMakeFiles/obiwan_net.dir/loopback.cc.o"
  "CMakeFiles/obiwan_net.dir/loopback.cc.o.d"
  "CMakeFiles/obiwan_net.dir/sim.cc.o"
  "CMakeFiles/obiwan_net.dir/sim.cc.o.d"
  "CMakeFiles/obiwan_net.dir/tcp.cc.o"
  "CMakeFiles/obiwan_net.dir/tcp.cc.o.d"
  "libobiwan_net.a"
  "libobiwan_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obiwan_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
