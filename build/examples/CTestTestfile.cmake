# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mobile_agenda "/root/repo/build/examples/mobile_agenda")
set_tests_properties(example_mobile_agenda PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_virtual_enterprise "/root/repo/build/examples/virtual_enterprise")
set_tests_properties(example_virtual_enterprise PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_distributed_game "/root/repo/build/examples/distributed_game")
set_tests_properties(example_distributed_game PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_news_gathering "/root/repo/build/examples/news_gathering")
set_tests_properties(example_news_gathering PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_marketplace "/root/repo/build/examples/marketplace")
set_tests_properties(example_marketplace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;32;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_porting_demo "/root/repo/build/examples/porting_demo")
set_tests_properties(example_porting_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;33;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_obiwan_shell "sh" "-c" "printf 'host-registry\\nbind todo ship it 3\\nlookup todo\\ninvoke todo\\nreplicate todo 2\\nshow todo\\nset todo done\\nput todo\\nstats\\nquit\\n' | /root/repo/build/examples/obiwan_shell")
set_tests_properties(example_obiwan_shell PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;38;add_test;/root/repo/examples/CMakeLists.txt;0;")
