file(REMOVE_RECURSE
  "CMakeFiles/news_gathering.dir/news_gathering.cc.o"
  "CMakeFiles/news_gathering.dir/news_gathering.cc.o.d"
  "news_gathering"
  "news_gathering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/news_gathering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
