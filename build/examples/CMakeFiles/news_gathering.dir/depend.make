# Empty dependencies file for news_gathering.
# This may be replaced when dependencies are built.
