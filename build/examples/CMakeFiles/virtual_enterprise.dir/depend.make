# Empty dependencies file for virtual_enterprise.
# This may be replaced when dependencies are built.
