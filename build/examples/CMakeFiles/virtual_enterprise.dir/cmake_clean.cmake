file(REMOVE_RECURSE
  "CMakeFiles/virtual_enterprise.dir/virtual_enterprise.cc.o"
  "CMakeFiles/virtual_enterprise.dir/virtual_enterprise.cc.o.d"
  "virtual_enterprise"
  "virtual_enterprise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_enterprise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
