file(REMOVE_RECURSE
  "CMakeFiles/porting_demo.dir/porting_demo.cc.o"
  "CMakeFiles/porting_demo.dir/porting_demo.cc.o.d"
  "generated/calendar.ported.h"
  "porting_demo"
  "porting_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/porting_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
