# Empty dependencies file for porting_demo.
# This may be replaced when dependencies are built.
