# Empty dependencies file for obiwan_shell.
# This may be replaced when dependencies are built.
