file(REMOVE_RECURSE
  "CMakeFiles/obiwan_shell.dir/obiwan_shell.cc.o"
  "CMakeFiles/obiwan_shell.dir/obiwan_shell.cc.o.d"
  "obiwan_shell"
  "obiwan_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obiwan_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
