file(REMOVE_RECURSE
  "CMakeFiles/distributed_game.dir/distributed_game.cc.o"
  "CMakeFiles/distributed_game.dir/distributed_game.cc.o.d"
  "distributed_game"
  "distributed_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
