file(REMOVE_RECURSE
  "CMakeFiles/mobile_agenda.dir/mobile_agenda.cc.o"
  "CMakeFiles/mobile_agenda.dir/mobile_agenda.cc.o.d"
  "mobile_agenda"
  "mobile_agenda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_agenda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
