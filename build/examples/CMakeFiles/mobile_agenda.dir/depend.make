# Empty dependencies file for mobile_agenda.
# This may be replaced when dependencies are built.
