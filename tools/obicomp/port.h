// obicomp porting mode (paper §3.2).
//
// "For non-distributed applications the porting should be performed in the
// following manner: from every existing class A, an interface representing
// its public methods can be automatically derived [...] its references to
// instances of other classes that may be incrementally replicated must be
// changed to reference the corresponding interfaces" — i.e. the tool, not the
// programmer, turns a plain class into a shareable one.
//
// PortClass consumes a restricted subset of C++ (the shapes a 2002-era
// business-logic class actually uses) and produces the same IdlFile the
// declarative front end produces, so the one emitter serves both paths:
//
//   class Agenda {             class Agenda : public obiwan::core::Shareable
//    public:                   + OBIWAN_SHAREABLE + ObiwanDefine block, with
//     std::string owner;   =>  every raw `Other*` member rewritten to
//     Entry* first;             obiwan::core::Ref<Entry>.
//     int64_t Count() const;
//   };
//
// Recognised members: value fields of scalar/std types, `T*` reference
// fields, method declarations (inline bodies are skipped, only signatures
// matter). Private members are ported like public ones (the wire needs
// them); unsupported constructs produce a line-numbered error rather than
// silently wrong output.
#pragma once

#include <string_view>

#include "common/status.h"
#include "obicomp/idl.h"

namespace obiwan::obicomp {

// Parse restricted C++ class definitions into the IDL model.
Result<IdlFile> PortCpp(std::string_view cpp_source);

// Map a C++ type spelling to its IDL type; error for unsupported types.
Result<std::string> IdlTypeOf(std::string_view cpp_type);

}  // namespace obiwan::obicomp
