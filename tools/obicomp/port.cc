#include "obicomp/port.h"

#include <cctype>
#include <map>
#include <vector>

namespace obiwan::obicomp {
namespace {

struct CppToken {
  enum class Kind { kIdent, kPunct, kLiteral, kEnd };
  Kind kind;
  std::string text;
  int line;
};

// Tokenizer for the restricted C++ subset: identifiers, `::`, single-char
// punctuation; skips //, /* */ comments and preprocessor lines.
class CppLexer {
 public:
  explicit CppLexer(std::string_view source) : source_(source) {}

  Result<CppToken> Next() {
    SkipNoise();
    if (pos_ >= source_.size()) return CppToken{CppToken::Kind::kEnd, "", line_};
    char c = source_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < source_.size() &&
             (std::isalnum(static_cast<unsigned char>(source_[pos_])) ||
              source_[pos_] == '_')) {
        ++pos_;
      }
      return CppToken{CppToken::Kind::kIdent,
                      std::string(source_.substr(start, pos_ - start)), line_};
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = pos_;
      while (pos_ < source_.size() &&
             (std::isalnum(static_cast<unsigned char>(source_[pos_])) ||
              source_[pos_] == '.' || source_[pos_] == '\'')) {
        ++pos_;
      }
      return CppToken{CppToken::Kind::kLiteral,
                      std::string(source_.substr(start, pos_ - start)), line_};
    }
    if (c == '"' || c == '\'') {
      // String/char literal (appears in initializers and skipped bodies).
      char quote = c;
      std::size_t start = pos_++;
      while (pos_ < source_.size() && source_[pos_] != quote) {
        if (source_[pos_] == '\\') ++pos_;
        if (source_[pos_] == '\n') ++line_;
        ++pos_;
      }
      if (pos_ >= source_.size()) {
        return InvalidArgumentError("line " + std::to_string(line_) +
                                    ": unterminated literal");
      }
      ++pos_;  // closing quote
      return CppToken{CppToken::Kind::kLiteral,
                      std::string(source_.substr(start, pos_ - start)), line_};
    }
    if (c == ':' && pos_ + 1 < source_.size() && source_[pos_ + 1] == ':') {
      pos_ += 2;
      return CppToken{CppToken::Kind::kPunct, "::", line_};
    }
    // Declarations only need a few of these; the rest appear inside skipped
    // method bodies and initializers.
    static constexpr std::string_view kPunct = "{}();,<>*&:=~+-/.!?[]|%^";
    if (kPunct.find(c) != std::string_view::npos) {
      ++pos_;
      return CppToken{CppToken::Kind::kPunct, std::string(1, c), line_};
    }
    return InvalidArgumentError("line " + std::to_string(line_) +
                                ": unsupported character '" + std::string(1, c) +
                                "' in ported source");
  }

 private:
  void SkipNoise() {
    while (pos_ < source_.size()) {
      char c = source_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < source_.size() && source_[pos_ + 1] == '/') {
        while (pos_ < source_.size() && source_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < source_.size() && source_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < source_.size() &&
               !(source_[pos_] == '*' && source_[pos_ + 1] == '/')) {
          if (source_[pos_] == '\n') ++line_;
          ++pos_;
        }
        pos_ = std::min(pos_ + 2, source_.size());
      } else if (c == '#') {
        while (pos_ < source_.size() && source_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view source_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

Status ErrAt(int line, const std::string& message) {
  return InvalidArgumentError("line " + std::to_string(line) + ": " + message);
}

class CppPorter {
 public:
  explicit CppPorter(std::string_view source) : lexer_(source) {}

  Result<IdlFile> Port() {
    OBIWAN_RETURN_IF_ERROR(Advance());
    IdlFile file;
    while (current_.kind != CppToken::Kind::kEnd) {
      if (current_.kind == CppToken::Kind::kIdent &&
          (current_.text == "class" || current_.text == "struct")) {
        OBIWAN_RETURN_IF_ERROR(Advance());
        OBIWAN_ASSIGN_OR_RETURN(IdlClass cls, PortClass());
        // Forward declarations (`class X;`) carry no members; the emitter
        // forward-declares every class anyway, so drop the shell.
        if (!cls.name.empty() && !forward_only_) {
          file.classes.push_back(std::move(cls));
        }
      } else {
        return ErrAt(current_.line,
                     "expected 'class' or 'struct', got '" + current_.text + "'");
      }
    }
    if (file.classes.empty()) return InvalidArgumentError("no classes found");
    return file;
  }

 private:
  Result<IdlClass> PortClass() {
    IdlClass cls;
    forward_only_ = false;
    OBIWAN_ASSIGN_OR_RETURN(cls.name, TakeIdent("class name"));
    // Forward declaration: `class X;`
    if (IsPunct(";")) {
      OBIWAN_RETURN_IF_ERROR(Advance());
      forward_only_ = true;
      return cls;
    }
    OBIWAN_RETURN_IF_ERROR(ExpectPunct("{"));
    while (!IsPunct("}")) {
      if (current_.kind == CppToken::Kind::kEnd) {
        return ErrAt(current_.line, "unterminated class body");
      }
      // Access specifiers vanish — the wire needs every member anyway.
      if (current_.kind == CppToken::Kind::kIdent &&
          (current_.text == "public" || current_.text == "private" ||
           current_.text == "protected")) {
        OBIWAN_RETURN_IF_ERROR(Advance());
        OBIWAN_RETURN_IF_ERROR(ExpectPunct(":"));
        continue;
      }
      OBIWAN_RETURN_IF_ERROR(PortMember(cls));
    }
    OBIWAN_RETURN_IF_ERROR(Advance());  // '}'
    if (IsPunct(";")) OBIWAN_RETURN_IF_ERROR(Advance());
    return cls;
  }

  // One member: collect the declaration tokens up to ';', '(' or '{' and
  // classify.
  Status PortMember(IdlClass& cls) {
    const int line = current_.line;
    std::vector<std::string> decl;  // type tokens + name
    while (!IsPunct(";") && !IsPunct("(") && !IsPunct("=")) {
      if (current_.kind == CppToken::Kind::kEnd || IsPunct("}")) {
        return ErrAt(line, "unterminated member declaration");
      }
      decl.push_back(current_.text);
      OBIWAN_RETURN_IF_ERROR(Advance());
    }
    if (decl.empty()) return ErrAt(line, "empty member declaration");

    if (IsPunct("(")) {
      // Method. Name is the last token; everything before is the return type.
      IdlMethod method;
      method.name = decl.back();
      decl.pop_back();
      if (decl.empty()) {
        return ErrAt(line, "constructors/destructors are not ported; give " +
                               cls.name + " only business-logic methods");
      }
      std::string ret = Join(decl);
      if (ret == "void") {
        method.return_type = "void";
      } else {
        OBIWAN_ASSIGN_OR_RETURN(method.return_type, IdlTypeOf(ret));
      }
      OBIWAN_RETURN_IF_ERROR(Advance());  // '('
      OBIWAN_RETURN_IF_ERROR(PortParams(method));
      // ')' consumed by PortParams.
      if (current_.kind == CppToken::Kind::kIdent && current_.text == "const") {
        method.is_const = true;
        OBIWAN_RETURN_IF_ERROR(Advance());
      }
      if (IsPunct("{")) {
        OBIWAN_RETURN_IF_ERROR(SkipBracedBody());
      } else {
        OBIWAN_RETURN_IF_ERROR(ExpectPunct(";"));
      }
      cls.methods.push_back(std::move(method));
      return Status::Ok();
    }

    if (IsPunct("=")) {
      // Default member initializer: `int x = 3;` — skip to ';'.
      while (!IsPunct(";")) {
        if (current_.kind == CppToken::Kind::kEnd) {
          return ErrAt(line, "unterminated initializer");
        }
        OBIWAN_RETURN_IF_ERROR(Advance());
      }
    }
    OBIWAN_RETURN_IF_ERROR(Advance());  // ';'

    // Field. Name is the last token.
    std::string name = decl.back();
    decl.pop_back();
    if (decl.empty()) return ErrAt(line, "field without a type");

    if (decl.back() == "*") {
      // `Other* name;` — the §3.2 rewrite: a raw reference to another
      // replicable class becomes a Ref.
      decl.pop_back();
      cls.refs.push_back(IdlRef{Join(decl), std::move(name)});
      return Status::Ok();
    }
    IdlField field;
    field.name = std::move(name);
    OBIWAN_ASSIGN_OR_RETURN(field.type, IdlTypeOf(Join(decl)));
    cls.fields.push_back(std::move(field));
    return Status::Ok();
  }

  Status PortParams(IdlMethod& method) {
    while (!IsPunct(")")) {
      if (current_.kind == CppToken::Kind::kEnd) {
        return ErrAt(current_.line, "unterminated parameter list");
      }
      std::vector<std::string> decl;
      while (!IsPunct(",") && !IsPunct(")")) {
        if (current_.kind == CppToken::Kind::kEnd) {
          return ErrAt(current_.line, "unterminated parameter list");
        }
        // `const T&` parameters decay to by-value in the ported signature.
        if (current_.text != "const" && current_.text != "&") {
          decl.push_back(current_.text);
        }
        OBIWAN_RETURN_IF_ERROR(Advance());
      }
      if (IsPunct(",")) OBIWAN_RETURN_IF_ERROR(Advance());
      if (decl.empty()) return ErrAt(current_.line, "empty parameter");
      IdlParam param;
      param.name = decl.back();
      decl.pop_back();
      if (decl.empty()) return ErrAt(current_.line, "parameter without a type");
      OBIWAN_ASSIGN_OR_RETURN(param.type, IdlTypeOf(Join(decl)));
      method.params.push_back(std::move(param));
    }
    return Advance();  // ')'
  }

  Status SkipBracedBody() {
    int depth = 0;
    do {
      if (current_.kind == CppToken::Kind::kEnd) {
        return ErrAt(current_.line, "unterminated method body");
      }
      if (IsPunct("{")) ++depth;
      if (IsPunct("}")) --depth;
      OBIWAN_RETURN_IF_ERROR(Advance());
    } while (depth > 0);
    return Status::Ok();
  }

  static std::string Join(const std::vector<std::string>& tokens) {
    std::string out;
    for (const std::string& t : tokens) out += t;
    return out;
  }

  bool IsPunct(std::string_view p) const {
    return current_.kind == CppToken::Kind::kPunct && current_.text == p;
  }

  Status Advance() {
    OBIWAN_ASSIGN_OR_RETURN(current_, lexer_.Next());
    return Status::Ok();
  }

  Status ExpectPunct(const std::string& punct) {
    if (!IsPunct(punct)) {
      return ErrAt(current_.line,
                   "expected '" + punct + "', got '" + current_.text + "'");
    }
    return Advance();
  }

  Result<std::string> TakeIdent(const std::string& what) {
    if (current_.kind != CppToken::Kind::kIdent) {
      return ErrAt(current_.line, "expected " + what);
    }
    std::string text = current_.text;
    OBIWAN_RETURN_IF_ERROR(Advance());
    return text;
  }

  CppLexer lexer_;
  CppToken current_{CppToken::Kind::kEnd, "", 0};
  bool forward_only_ = false;
};

}  // namespace

Result<std::string> IdlTypeOf(std::string_view cpp_type) {
  static const std::map<std::string, std::string, std::less<>> kMap = {
      {"bool", "bool"},
      {"char", "i8"},
      {"int8_t", "i8"},
      {"std::int8_t", "i8"},
      {"short", "i16"},
      {"int16_t", "i16"},
      {"std::int16_t", "i16"},
      {"int", "i32"},
      {"int32_t", "i32"},
      {"std::int32_t", "i32"},
      {"long", "i64"},
      {"longlong", "i64"},
      {"int64_t", "i64"},
      {"std::int64_t", "i64"},
      {"unsigned", "u32"},
      {"uint8_t", "u8"},
      {"std::uint8_t", "u8"},
      {"uint16_t", "u16"},
      {"std::uint16_t", "u16"},
      {"uint32_t", "u32"},
      {"std::uint32_t", "u32"},
      {"uint64_t", "u64"},
      {"std::uint64_t", "u64"},
      {"float", "f32"},
      {"double", "f64"},
      {"string", "string"},
      {"std::string", "string"},
  };
  if (auto it = kMap.find(cpp_type); it != kMap.end()) return it->second;
  // std::vector<T> -> list<T>
  constexpr std::string_view kVector = "std::vector<";
  constexpr std::string_view kVectorShort = "vector<";
  std::string_view inner;
  if (cpp_type.starts_with(kVector) && cpp_type.ends_with(">")) {
    inner = cpp_type.substr(kVector.size(),
                            cpp_type.size() - kVector.size() - 1);
  } else if (cpp_type.starts_with(kVectorShort) && cpp_type.ends_with(">")) {
    inner = cpp_type.substr(kVectorShort.size(),
                            cpp_type.size() - kVectorShort.size() - 1);
  }
  if (!inner.empty()) {
    if (inner == "uint8_t" || inner == "std::uint8_t") {
      return std::string("bytes");
    }
    OBIWAN_ASSIGN_OR_RETURN(std::string idl_inner, IdlTypeOf(inner));
    return "list<" + idl_inner + ">";
  }
  return InvalidArgumentError("cannot port C++ type '" + std::string(cpp_type) +
                              "'");
}

Result<IdlFile> PortCpp(std::string_view cpp_source) {
  return CppPorter(cpp_source).Port();
}

}  // namespace obiwan::obicomp
