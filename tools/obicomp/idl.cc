#include "obicomp/idl.h"

#include <cctype>
#include <map>
#include <sstream>

namespace obiwan::obicomp {
namespace {

// --- tokenizer -----------------------------------------------------------------

struct Token {
  enum class Kind { kIdent, kPunct, kEnd };
  Kind kind;
  std::string text;
  int line;
};

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  Result<Token> Next() {
    SkipWhitespaceAndComments();
    if (pos_ >= source_.size()) return Token{Token::Kind::kEnd, "", line_};
    char c = source_[pos_];
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
      // Numeric literal (field defaults); lexed as an identifier-like token.
      std::size_t start = pos_++;
      while (pos_ < source_.size() &&
             (std::isalnum(static_cast<unsigned char>(source_[pos_])) ||
              source_[pos_] == '.')) {
        ++pos_;
      }
      return Token{Token::Kind::kIdent,
                   std::string(source_.substr(start, pos_ - start)), line_};
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < source_.size() &&
             (std::isalnum(static_cast<unsigned char>(source_[pos_])) ||
              source_[pos_] == '_')) {
        ++pos_;
      }
      return Token{Token::Kind::kIdent,
                   std::string(source_.substr(start, pos_ - start)), line_};
    }
    if (c == '{' || c == '}' || c == '(' || c == ')' || c == ';' || c == ',' ||
        c == '<' || c == '>' || c == '=') {
      ++pos_;
      return Token{Token::Kind::kPunct, std::string(1, c), line_};
    }
    return InvalidArgumentError("line " + std::to_string(line_) +
                                ": unexpected character '" + std::string(1, c) + "'");
  }

 private:
  void SkipWhitespaceAndComments() {
    while (pos_ < source_.size()) {
      char c = source_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < source_.size() && source_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view source_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

Status ErrAt(int line, const std::string& message) {
  return InvalidArgumentError("line " + std::to_string(line) + ": " + message);
}

// --- parser -------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::string_view source) : lexer_(source) {}

  Result<IdlFile> Parse() {
    OBIWAN_RETURN_IF_ERROR(Advance());
    IdlFile file;
    while (current_.kind != Token::Kind::kEnd) {
      if (current_.kind == Token::Kind::kIdent && current_.text == "enum") {
        OBIWAN_RETURN_IF_ERROR(Advance());
        OBIWAN_ASSIGN_OR_RETURN(IdlEnum decl, ParseEnum());
        file.enums.push_back(std::move(decl));
        continue;
      }
      OBIWAN_RETURN_IF_ERROR(ExpectIdent("class"));
      OBIWAN_ASSIGN_OR_RETURN(IdlClass cls, ParseClass());
      file.classes.push_back(std::move(cls));
    }
    if (file.classes.empty() && file.enums.empty()) {
      return InvalidArgumentError("no classes or enums declared");
    }
    return file;
  }

 private:
  Result<IdlEnum> ParseEnum() {
    IdlEnum decl;
    OBIWAN_ASSIGN_OR_RETURN(decl.name, TakeIdent("enum name"));
    OBIWAN_RETURN_IF_ERROR(ExpectPunct("{"));
    while (!(current_.kind == Token::Kind::kPunct && current_.text == "}")) {
      if (!decl.values.empty()) OBIWAN_RETURN_IF_ERROR(ExpectPunct(","));
      OBIWAN_ASSIGN_OR_RETURN(std::string value, TakeIdent("enum value"));
      decl.values.push_back(std::move(value));
    }
    OBIWAN_RETURN_IF_ERROR(Advance());  // consume '}'
    if (decl.values.empty()) {
      return InvalidArgumentError("enum " + decl.name + " has no values");
    }
    return decl;
  }

  Result<IdlClass> ParseClass() {
    IdlClass cls;
    OBIWAN_ASSIGN_OR_RETURN(cls.name, TakeIdent("class name"));
    OBIWAN_RETURN_IF_ERROR(ExpectPunct("{"));
    while (!(current_.kind == Token::Kind::kPunct && current_.text == "}")) {
      if (current_.kind != Token::Kind::kIdent) {
        return ErrAt(current_.line, "expected member declaration");
      }
      if (current_.text == "field") {
        OBIWAN_RETURN_IF_ERROR(Advance());
        IdlField field;
        OBIWAN_ASSIGN_OR_RETURN(field.type, TakeType());
        OBIWAN_ASSIGN_OR_RETURN(field.name, TakeIdent("field name"));
        if (current_.kind == Token::Kind::kPunct && current_.text == "=") {
          OBIWAN_RETURN_IF_ERROR(Advance());
          OBIWAN_ASSIGN_OR_RETURN(field.default_value,
                                  TakeIdent("default value"));
        }
        OBIWAN_RETURN_IF_ERROR(ExpectPunct(";"));
        cls.fields.push_back(std::move(field));
      } else if (current_.text == "ref") {
        OBIWAN_RETURN_IF_ERROR(Advance());
        IdlRef ref;
        OBIWAN_ASSIGN_OR_RETURN(ref.target, TakeIdent("ref target class"));
        OBIWAN_ASSIGN_OR_RETURN(ref.name, TakeIdent("ref name"));
        OBIWAN_RETURN_IF_ERROR(ExpectPunct(";"));
        cls.refs.push_back(std::move(ref));
      } else if (current_.text == "method") {
        OBIWAN_RETURN_IF_ERROR(Advance());
        OBIWAN_ASSIGN_OR_RETURN(IdlMethod method, ParseMethod());
        cls.methods.push_back(std::move(method));
      } else {
        return ErrAt(current_.line, "unknown member kind '" + current_.text +
                                        "' (expected field/ref/method)");
      }
    }
    OBIWAN_RETURN_IF_ERROR(Advance());  // consume '}'
    return cls;
  }

  Result<IdlMethod> ParseMethod() {
    IdlMethod method;
    if (current_.kind == Token::Kind::kIdent && current_.text == "void") {
      method.return_type = "void";
      OBIWAN_RETURN_IF_ERROR(Advance());
    } else {
      OBIWAN_ASSIGN_OR_RETURN(method.return_type, TakeType());
    }
    OBIWAN_ASSIGN_OR_RETURN(method.name, TakeIdent("method name"));
    OBIWAN_RETURN_IF_ERROR(ExpectPunct("("));
    while (!(current_.kind == Token::Kind::kPunct && current_.text == ")")) {
      if (!method.params.empty()) OBIWAN_RETURN_IF_ERROR(ExpectPunct(","));
      IdlParam param;
      OBIWAN_ASSIGN_OR_RETURN(param.type, TakeType());
      OBIWAN_ASSIGN_OR_RETURN(param.name, TakeIdent("parameter name"));
      method.params.push_back(std::move(param));
    }
    OBIWAN_RETURN_IF_ERROR(Advance());  // consume ')'
    if (current_.kind == Token::Kind::kIdent && current_.text == "const") {
      method.is_const = true;
      OBIWAN_RETURN_IF_ERROR(Advance());
    }
    OBIWAN_RETURN_IF_ERROR(ExpectPunct(";"));
    return method;
  }

  // Types are an identifier or list<T>.
  Result<std::string> TakeType() {
    OBIWAN_ASSIGN_OR_RETURN(std::string base, TakeIdent("type"));
    if (base == "list") {
      OBIWAN_RETURN_IF_ERROR(ExpectPunct("<"));
      OBIWAN_ASSIGN_OR_RETURN(std::string inner, TakeType());
      OBIWAN_RETURN_IF_ERROR(ExpectPunct(">"));
      return "list<" + inner + ">";
    }
    return base;
  }

  Status Advance() {
    OBIWAN_ASSIGN_OR_RETURN(current_, lexer_.Next());
    return Status::Ok();
  }

  Status ExpectIdent(const std::string& word) {
    if (current_.kind != Token::Kind::kIdent || current_.text != word) {
      return ErrAt(current_.line, "expected '" + word + "', got '" +
                                      current_.text + "'");
    }
    return Advance();
  }

  Status ExpectPunct(const std::string& punct) {
    if (current_.kind != Token::Kind::kPunct || current_.text != punct) {
      return ErrAt(current_.line, "expected '" + punct + "', got '" +
                                      current_.text + "'");
    }
    return Advance();
  }

  Result<std::string> TakeIdent(const std::string& what) {
    if (current_.kind != Token::Kind::kIdent) {
      return ErrAt(current_.line, "expected " + what + ", got '" +
                                      current_.text + "'");
    }
    std::string text = current_.text;
    OBIWAN_RETURN_IF_ERROR(Advance());
    return text;
  }

  Lexer lexer_;
  Token current_{Token::Kind::kEnd, "", 0};
};

const std::map<std::string, std::string, std::less<>>& ScalarTypes() {
  static const std::map<std::string, std::string, std::less<>> kTypes = {
      {"bool", "bool"},
      {"i8", "std::int8_t"},
      {"i16", "std::int16_t"},
      {"i32", "std::int32_t"},
      {"i64", "std::int64_t"},
      {"u8", "std::uint8_t"},
      {"u16", "std::uint16_t"},
      {"u32", "std::uint32_t"},
      {"u64", "std::uint64_t"},
      {"f32", "float"},
      {"f64", "double"},
      {"string", "std::string"},
      {"bytes", "obiwan::Bytes"},
  };
  return kTypes;
}

}  // namespace

Result<IdlFile> ParseIdl(std::string_view source) {
  return Parser(source).Parse();
}

Result<std::string> CppTypeOf(std::string_view idl_type) {
  if (idl_type.starts_with("list<") && idl_type.ends_with(">")) {
    OBIWAN_ASSIGN_OR_RETURN(
        std::string inner,
        CppTypeOf(idl_type.substr(5, idl_type.size() - 6)));
    return "std::vector<" + inner + ">";
  }
  auto it = ScalarTypes().find(idl_type);
  if (it == ScalarTypes().end()) {
    return InvalidArgumentError("unknown type '" + std::string(idl_type) + "'");
  }
  return it->second;
}

Result<std::string> GenerateHeader(const IdlFile& file,
                                   const std::string& source_name) {
  std::ostringstream out;
  std::map<std::string, std::size_t, std::less<>> enum_sizes;
  for (const IdlEnum& decl : file.enums) {
    enum_sizes.emplace(decl.name, decl.values.size());
  }
  // Field/param/return types may name a declared enum.
  auto resolve_type = [&](std::string_view idl_type) -> Result<std::string> {
    if (enum_sizes.contains(idl_type)) return std::string(idl_type);
    return CppTypeOf(idl_type);
  };
  out << "// Generated by obicomp from " << source_name << " — do not edit.\n";
  out << "//\n";
  out << "// Implement the declared methods in your own .cc, and register each\n";
  out << "// class once per binary:   OBIWAN_REGISTER_CLASS(<Class>);\n";
  out << "#pragma once\n\n";
  out << "#include <cstdint>\n#include <string>\n#include <vector>\n\n";
  out << "#include \"core/ref.h\"\n#include \"core/shareable.h\"\n"
      << "#include \"wire/codec.h\"\n\n";

  // Forward declarations so Ref<X> members can point forward (and so ported
  // files keep working whatever order their classes were written in).
  for (const IdlClass& cls : file.classes) {
    out << "class " << cls.name << ";\n";
  }
  out << "\n";

  // Enums, each with a range-checked wire codec.
  for (const IdlEnum& decl : file.enums) {
    out << "enum class " << decl.name << " : std::uint8_t {\n";
    for (const std::string& value : decl.values) {
      out << "  " << value << ",\n";
    }
    out << "};\n\n";
    out << "template <>\n";
    out << "struct obiwan::wire::Codec<" << decl.name << "> {\n";
    out << "  static void Encode(obiwan::wire::Writer& w, " << decl.name
        << " v) {\n";
    out << "    w.Varint(static_cast<std::uint64_t>(v));\n";
    out << "  }\n";
    out << "  static " << decl.name
        << " Decode(obiwan::wire::Reader& r) {\n";
    out << "    std::uint64_t raw = r.Varint();\n";
    out << "    if (raw >= " << decl.values.size() << "u) {\n";
    out << "      r.Fail(\"out-of-range " << decl.name << "\");\n";
    out << "      return " << decl.name << "{};\n";
    out << "    }\n";
    out << "    return static_cast<" << decl.name << ">(raw);\n";
    out << "  }\n";
    out << "};\n\n";
  }

  for (const IdlClass& cls : file.classes) {
    out << "class " << cls.name << " : public obiwan::core::Shareable {\n";
    out << " public:\n";
    out << "  OBIWAN_SHAREABLE(" << cls.name << ")\n\n";

    for (const IdlField& field : cls.fields) {
      OBIWAN_ASSIGN_OR_RETURN(std::string type, resolve_type(field.type));
      std::string init = field.default_value;
      if (!init.empty() && enum_sizes.contains(field.type)) {
        init = field.type + "::" + init;  // bare enum value -> qualified
      }
      out << "  " << type << " " << field.name << "{" << init << "};\n";
    }
    for (const IdlRef& ref : cls.refs) {
      out << "  obiwan::core::Ref<" << ref.target << "> " << ref.name << ";\n";
    }
    out << "\n";

    for (const IdlMethod& method : cls.methods) {
      std::string ret = "void";
      if (method.return_type != "void") {
        OBIWAN_ASSIGN_OR_RETURN(ret, resolve_type(method.return_type));
      }
      out << "  " << ret << " " << method.name << "(";
      for (std::size_t i = 0; i < method.params.size(); ++i) {
        OBIWAN_ASSIGN_OR_RETURN(std::string type,
                                resolve_type(method.params[i].type));
        if (i != 0) out << ", ";
        out << type << " " << method.params[i].name;
      }
      out << ")" << (method.is_const ? " const" : "") << ";\n";
    }
    out << "\n";

    out << "  static void ObiwanDefine(obiwan::core::ClassDef<" << cls.name
        << ">& def) {\n";
    if (cls.fields.empty() && cls.refs.empty() && cls.methods.empty()) {
      out << "    (void)def;\n  }\n};\n\n";
      continue;
    }
    out << "    def";
    for (const IdlField& field : cls.fields) {
      out << "\n        .Field(\"" << field.name << "\", &" << cls.name
          << "::" << field.name << ")";
    }
    for (const IdlRef& ref : cls.refs) {
      out << "\n        .Ref(\"" << ref.name << "\", &" << cls.name
          << "::" << ref.name << ")";
    }
    for (const IdlMethod& method : cls.methods) {
      out << "\n        .Method(\"" << method.name << "\", &" << cls.name
          << "::" << method.name << ")";
    }
    out << ";\n";
    out << "  }\n";
    out << "};\n\n";
  }
  return out.str();
}

}  // namespace obiwan::obicomp
