// obicomp command line:
//   obicomp <input.obi> [-o <output.h>]          declarative mode (§3.1)
//   obicomp --port <legacy.h> [-o <output.h>]    porting mode (§3.2)
//
// Reads an OBIWAN class description (or, with --port, a restricted legacy
// C++ class definition) and writes the generated shareable-class header to
// the output file (or stdout).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "obicomp/idl.h"
#include "obicomp/port.h"

namespace {
constexpr char kUsage[] =
    "usage: obicomp [--port] <input> [-o <output.h>]\n";
}

int main(int argc, char** argv) {
  std::string input_path;
  std::string output_path;
  bool port_mode = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      output_path = argv[++i];
    } else if (arg == "--port") {
      port_mode = true;
    } else if (!arg.empty() && arg[0] != '-') {
      input_path = arg;
    } else {
      std::fputs(kUsage, stderr);
      return 2;
    }
  }
  if (input_path.empty()) {
    std::fputs(kUsage, stderr);
    return 2;
  }

  std::ifstream in(input_path);
  if (!in) {
    std::fprintf(stderr, "obicomp: cannot read %s\n", input_path.c_str());
    return 1;
  }
  std::ostringstream source;
  source << in.rdbuf();

  auto parsed = port_mode ? obiwan::obicomp::PortCpp(source.str())
                          : obiwan::obicomp::ParseIdl(source.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "obicomp: %s: %s\n", input_path.c_str(),
                 parsed.status().ToString().c_str());
    return 1;
  }
  auto header = obiwan::obicomp::GenerateHeader(*parsed, input_path);
  if (!header.ok()) {
    std::fprintf(stderr, "obicomp: %s: %s\n", input_path.c_str(),
                 header.status().ToString().c_str());
    return 1;
  }

  if (output_path.empty()) {
    std::fputs(header->c_str(), stdout);
  } else {
    std::ofstream out(output_path);
    if (!out) {
      std::fprintf(stderr, "obicomp: cannot write %s\n", output_path.c_str());
      return 1;
    }
    out << *header;
  }
  return 0;
}
