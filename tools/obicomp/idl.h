// obicomp — OBIWAN's class compiler (paper §3.1, Figure 3).
//
// The Java prototype ran obicomp over application classes, using reflection
// and source-code insertion to generate the remote interface, the proxy
// classes and the replication plumbing. The C++ reproduction inverts the
// direction (no reflection to read classes back): obicomp consumes a small
// declarative description and emits the complete shareable class — fields,
// reference members, method declarations, and the ObiwanDefine registration
// block — leaving only the method bodies to the programmer, exactly the
// "programmer only has to worry with the so-called business-logic" contract.
//
// Input format (one or more classes per file, '#' comments):
//
//   enum Urgency { low, normal, high }
//
//   class Entry {
//     field string when;
//     field bool done = true;
//     field Urgency urgency = high;
//     ref Entry next;
//     method string Describe() const;
//     method void Reschedule(string new_when);
//   }
//
// Types: bool, i8..i64, u8..u64, f32, f64, string, bytes, list<T>, and any
// enum declared in the same file (enums get a generated wire codec that
// rejects out-of-range values). Field defaults are numeric literals or
// identifiers (enum values, true/false).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace obiwan::obicomp {

struct IdlField {
  std::string type;  // IDL type name (built-in or a declared enum)
  std::string name;
  std::string default_value;  // optional: numeric literal or identifier
};

struct IdlEnum {
  std::string name;
  std::vector<std::string> values;
};

struct IdlRef {
  std::string target;  // class name the reference points at
  std::string name;
};

struct IdlParam {
  std::string type;
  std::string name;
};

struct IdlMethod {
  std::string return_type;  // IDL type or "void"
  std::string name;
  std::vector<IdlParam> params;
  bool is_const = false;
};

struct IdlClass {
  std::string name;
  std::vector<IdlField> fields;
  std::vector<IdlRef> refs;
  std::vector<IdlMethod> methods;
};

struct IdlFile {
  std::vector<IdlEnum> enums;
  std::vector<IdlClass> classes;
};

// Parse an .obi source. Errors carry line numbers.
Result<IdlFile> ParseIdl(std::string_view source);

// Map an IDL type to its C++ spelling; error for unknown types.
Result<std::string> CppTypeOf(std::string_view idl_type);

// Emit the complete generated header for one file.
Result<std::string> GenerateHeader(const IdlFile& file,
                                   const std::string& source_name);

}  // namespace obiwan::obicomp
