#!/usr/bin/env sh
# CI entry point: build and test the tree three times —
#   1. the plain Release-ish build (RelWithDebInfo, the default),
#   2. an AddressSanitizer build (OBIWAN_SANITIZE=address), and
#   3. an UndefinedBehaviorSanitizer build (OBIWAN_SANITIZE=undefined)
# and run the full ctest suite under each. Any failure fails the script.
#
# Usage: tools/ci.sh [jobs]          (jobs defaults to nproc)
set -eu

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc 2>/dev/null || echo 4)}"

run_flavour() {
  flavour="$1"
  build_dir="$2"
  shift 2
  echo "=== [$flavour] configure ==="
  cmake -B "$build_dir" -S . "$@"
  echo "=== [$flavour] build ==="
  cmake --build "$build_dir" -j "$JOBS"
  echo "=== [$flavour] test ==="
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS"
}

run_flavour release build-ci
run_flavour asan build-asan -DOBIWAN_SANITIZE=address
run_flavour ubsan build-ubsan -DOBIWAN_SANITIZE=undefined

# The fig4 bench must emit a schema-valid BENCH_*.json with latency
# percentiles (skip the google-benchmark micro-benchmarks; the paper series
# and the telemetry export are what CI checks).
echo "=== [bench] fig4 JSON schema ==="
(cd build-ci && ./bench/bench_fig4_rmi_vs_lmi --benchmark_filter=SchemaOnly)
python3 - build-ci/BENCH_fig4_rmi_vs_lmi.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
for key in ("bench", "x_label", "xs", "series", "rpc_latency_ns", "metrics"):
    assert key in doc, f"missing key: {key}"
assert doc["series"], "no series"
for s in doc["series"]:
    assert len(s["values"]) == len(doc["xs"]), f"ragged series {s['name']}"
assert doc["rpc_latency_ns"], "no rpc latency summaries"
for op, summary in doc["rpc_latency_ns"].items():
    for key in ("count", "sum", "max", "p50", "p95", "p99"):
        assert key in summary, f"{op} missing {key}"
    assert summary["count"] > 0, f"{op} summary is empty"
for section in ("counters", "gauges", "histograms"):
    assert isinstance(doc["metrics"][section], list), f"bad {section}"
print("BENCH_fig4_rmi_vs_lmi.json: schema OK "
      f"({len(doc['series'])} series, {len(doc['rpc_latency_ns'])} ops)")
EOF

# The two-site cascade test, run with the flight recorder armed, must leave a
# loadable Chrome trace: valid JSON, every B has a matching E (per pid/tid,
# LIFO order), and the cascade's span categories are present.
echo "=== [trace] two-site cascade Chrome trace ==="
TRACE_JSON="$(pwd)/build-ci/span_two_site.trace.json"
rm -f "$TRACE_JSON"
(cd build-ci && OBIWAN_SPAN_EXPORT="$TRACE_JSON" \
    ./tests/span_test --gtest_filter='*TwoSiteCascade*')
python3 - "$TRACE_JSON" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "empty traceEvents"
stacks = {}
begins = ends = 0
for ev in events:
    ph = ev["ph"]
    key = (ev.get("pid"), ev.get("tid"))
    if ph == "B":
        begins += 1
        stacks.setdefault(key, []).append(ev["name"])
        assert ev["ts"] >= 0, f"negative ts in {ev}"
    elif ph == "E":
        ends += 1
        stack = stacks.get(key)
        assert stack, f"E without open B on {key}: {ev}"
        top = stack.pop()
        assert top == ev["name"], f"mismatched E on {key}: {ev['name']} != {top}"
assert begins == ends, f"unbalanced: {begins} B vs {ends} E"
for key, stack in stacks.items():
    assert not stack, f"unclosed spans on {key}: {stack}"
cats = {ev.get("cat") for ev in events}
for needed in ("rmi", "dispatch", "fault", "get", "put"):
    assert needed in cats, f"missing span category {needed!r}"
pids = {ev["pid"] for ev in events if ev["ph"] in "BE"}
assert len(pids) >= 2, f"expected spans from at least two sites, got {pids}"
print(f"span_two_site.trace.json: {begins} spans well-nested across "
      f"{len(pids)} processes, categories OK")
EOF

echo "=== CI green: release + asan + ubsan + bench JSON + chrome trace ==="
