#!/usr/bin/env sh
# CI entry point: build and test the tree four times —
#   1. the plain Release-ish build (RelWithDebInfo, the default),
#   2. an AddressSanitizer build (OBIWAN_SANITIZE=address),
#   3. an UndefinedBehaviorSanitizer build (OBIWAN_SANITIZE=undefined), and
#   4. a ThreadSanitizer build (OBIWAN_SANITIZE=thread) running the
#      concurrency-heavy transport tests (real sockets, retry decorator,
#      connection pool, server thread lifecycle).
# Any failure fails the script.
#
# Usage: tools/ci.sh [jobs]          (jobs defaults to nproc)
set -eu

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc 2>/dev/null || echo 4)}"

run_flavour() {
  flavour="$1"
  build_dir="$2"
  shift 2
  echo "=== [$flavour] configure ==="
  cmake -B "$build_dir" -S . "$@"
  echo "=== [$flavour] build ==="
  cmake --build "$build_dir" -j "$JOBS"
  echo "=== [$flavour] test ==="
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS"
}

run_flavour release build-ci
run_flavour asan build-asan -DOBIWAN_SANITIZE=address
run_flavour ubsan build-ubsan -DOBIWAN_SANITIZE=undefined

# ThreadSanitizer flavour: the transport layer is the concurrency hot spot
# (client threads sharing one pooled TCP transport, the retry decorator's
# counter, the server's per-connection threads), plus the update-fanout soak
# (concurrent writers fanning pushes out on the bounded notification pool,
# and the resync daemon's background worker), the contention observatory
# (tracked mutexes, exemplar captures and scrapes racing lock traffic), the
# sharded object table (shard/world guards racing protocol paths, holder
# drops racing re-registration) and the update-journey tracker (fanout
# worker threads stamping hops against scrapes and alert evaluation) — so
# TSan runs those groups rather than the whole (slow under TSan) suite.
echo "=== [tsan] configure ==="
cmake -B build-tsan -S . -DOBIWAN_SANITIZE=thread
echo "=== [tsan] build ==="
cmake --build build-tsan -j "$JOBS" --target tcp_test net_test compress_test fanout_test obs_test contention_test object_table_test journey_test
echo "=== [tsan] test ==="
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
    -R '^(Tcp|TcpDeadline|TcpPool|TcpRetry|TcpServer|Loopback|Sim|SimDeadline|RetryingTransport|CompressedTransport|FanoutTcp|AdminHttp|FleetMonitor|Contention|ObjectTable|Journey|BurnRate)'

# The fig4 bench must emit a schema-valid BENCH_*.json with latency
# percentiles (skip the google-benchmark micro-benchmarks; the paper series
# and the telemetry export are what CI checks).
echo "=== [bench] fig4 JSON schema ==="
(cd build-ci && ./bench/bench_fig4_rmi_vs_lmi --benchmark_filter=SchemaOnly)
python3 - build-ci/BENCH_fig4_rmi_vs_lmi.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
for key in ("bench", "x_label", "xs", "series", "rpc_latency_ns", "metrics"):
    assert key in doc, f"missing key: {key}"
assert doc["series"], "no series"
for s in doc["series"]:
    assert len(s["values"]) == len(doc["xs"]), f"ragged series {s['name']}"
assert doc["rpc_latency_ns"], "no rpc latency summaries"
for op, summary in doc["rpc_latency_ns"].items():
    for key in ("count", "sum", "max", "p50", "p95", "p99"):
        assert key in summary, f"{op} missing {key}"
    assert summary["count"] > 0, f"{op} summary is empty"
for section in ("counters", "gauges", "histograms"):
    assert isinstance(doc["metrics"][section], list), f"bad {section}"
print("BENCH_fig4_rmi_vs_lmi.json: schema OK "
      f"({len(doc['series'])} series, {len(doc['rpc_latency_ns'])} ops)")
EOF

# The two-site cascade test, run with the flight recorder armed, must leave a
# loadable Chrome trace: valid JSON, every B has a matching E (per pid/tid,
# LIFO order), and the cascade's span categories are present.
echo "=== [trace] two-site cascade Chrome trace ==="
TRACE_JSON="$(pwd)/build-ci/span_two_site.trace.json"
rm -f "$TRACE_JSON"
(cd build-ci && OBIWAN_SPAN_EXPORT="$TRACE_JSON" \
    ./tests/span_test --gtest_filter='*TwoSiteCascade*')
python3 - "$TRACE_JSON" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "empty traceEvents"
stacks = {}
begins = ends = 0
for ev in events:
    ph = ev["ph"]
    key = (ev.get("pid"), ev.get("tid"))
    if ph == "B":
        begins += 1
        stacks.setdefault(key, []).append(ev["name"])
        assert ev["ts"] >= 0, f"negative ts in {ev}"
    elif ph == "E":
        ends += 1
        stack = stacks.get(key)
        assert stack, f"E without open B on {key}: {ev}"
        top = stack.pop()
        assert top == ev["name"], f"mismatched E on {key}: {ev['name']} != {top}"
assert begins == ends, f"unbalanced: {begins} B vs {ends} E"
for key, stack in stacks.items():
    assert not stack, f"unclosed spans on {key}: {stack}"
cats = {ev.get("cat") for ev in events}
for needed in ("rmi", "dispatch", "fault", "get", "put"):
    assert needed in cats, f"missing span category {needed!r}"
pids = {ev["pid"] for ev in events if ev["ph"] in "BE"}
assert len(pids) >= 2, f"expected spans from at least two sites, got {pids}"
print(f"span_two_site.trace.json: {begins} spans well-nested across "
      f"{len(pids)} processes, categories OK")
EOF

# The TCP pooling bench must report the pool actually amortizing connects:
# the JSON's transport section records connects-per-call across the pooled
# and per-connect series.
echo "=== [bench] tcp pool JSON ==="
(cd build-ci && ./bench/bench_tcp_pool --benchmark_filter=SchemaOnly)
python3 - build-ci/BENCH_tcp_pool.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
for key in ("bench", "xs", "series", "transport", "metrics"):
    assert key in doc, f"missing key: {key}"
t = doc["transport"]
for key in ("requests", "connects", "pool_hits", "timeouts", "connects_per_call"):
    assert key in t, f"transport section missing {key}"
assert t["requests"] > 0, "no TCP requests recorded"
# Half the runs are per-connect, half pooled; pooling must have amortized a
# substantial share of connects overall.
assert t["connects_per_call"] < 0.75, \
    f"pooling did not amortize connects: {t['connects_per_call']}"
assert t["pool_hits"] > 0, "pool never hit"
names = [s["name"] for s in doc["series"]]
assert "pooled" in names and "per-connect" in names, f"bad series: {names}"
print(f"BENCH_tcp_pool.json: transport OK (connects_per_call="
      f"{t['connects_per_call']:.3f}, pool_hits={t['pool_hits']})")
EOF

# The contention bench is the sharded-table refactor's success gate: the
# wait share at the top thread count must sit at or below the committed
# pre-shard baseline (bench/BASELINE_contention.json, captured on the PR 7
# single-mutex site), and the lock telemetry (with at least one tail
# exemplar linking a fat bucket back to a trace) must reach the JSON export.
echo "=== [bench] contention JSON ==="
(cd build-ci && ./bench/bench_contention --benchmark_filter=SchemaOnly)
python3 - build-ci/BENCH_contention.json bench/BASELINE_contention.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
with open(sys.argv[2]) as f:
    baseline = json.load(f)["contention"]
for key in ("bench", "xs", "series", "contention", "metrics"):
    assert key in doc, f"missing key: {key}"
c = doc["contention"]
for key in ("threads", "wait_share", "wall_ms", "contended", "site_p99_us"):
    assert key in c, f"contention section missing {key}"
    assert len(c[key]) == len(c["threads"]), f"ragged {key}: {c[key]}"
assert all(0.0 <= w <= 1.0 for w in c["wait_share"]), \
    f"wait_share out of [0,1]: {c['wait_share']}"
# The refactor's acceptance: the top-thread-count wait share must not
# regress past the committed single-mutex baseline. (A small epsilon
# absorbs scheduler noise on a loaded single-core CI box; the sharded
# table typically lands far below the baseline, near zero.)
assert c["threads"] == baseline["threads"], \
    f"thread grid changed: {c['threads']} vs baseline {baseline['threads']}"
budget = baseline["wait_share"][-1] * 1.10
assert c["wait_share"][-1] <= budget, \
    f"wait share regressed past the pre-shard baseline: " \
    f"{c['wait_share'][-1]:.6f} > {budget:.6f} " \
    f"(baseline {baseline['wait_share'][-1]:.6f})"
hists = {h["name"] for h in doc["metrics"]["histograms"]}
for needed in ("obiwan_lock_wait_ns", "obiwan_lock_hold_ns"):
    assert needed in hists, f"missing lock histogram {needed}"
counters = {ctr["name"] for ctr in doc["metrics"]["counters"]}
for needed in ("obiwan_lock_contended_total", "obiwan_lock_acquisitions_total"):
    assert needed in counters, f"missing lock counter {needed}"
exemplars = sum(
    len(h.get("tail_exemplars", [])) for h in doc["metrics"]["histograms"])
assert exemplars >= 1, "no tail exemplars captured anywhere"
print(f"BENCH_contention.json: contention OK (wait_share={c['wait_share']} "
      f"vs baseline {baseline['wait_share']}, {exemplars} exemplars)")
EOF

# The scale bench records what the sharded table buys: throughput must not
# fall as demander threads are added (disjoint chains hit disjoint shards;
# refresh round trips overlap), and the object-count series must stay alive
# up to 16k resident replicas (sharded O(1) lookups + throttled gauge
# rescans keep the per-op cost flat).
echo "=== [bench] scale JSON ==="
(cd build-ci && ./bench/bench_scale --benchmark_filter=SchemaOnly)
python3 - build-ci/BENCH_scale.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
for key in ("bench", "xs", "series", "scale", "metrics"):
    assert key in doc, f"missing key: {key}"
s = doc["scale"]
for key in ("threads", "thr_kops", "objects", "obj_thr_kops"):
    assert key in s, f"scale section missing {key}"
assert len(s["thr_kops"]) == len(s["threads"]), f"ragged thr_kops: {s}"
assert len(s["obj_thr_kops"]) == len(s["objects"]), f"ragged obj_thr_kops: {s}"
assert all(t > 0 for t in s["thr_kops"]), f"dead thread series: {s['thr_kops']}"
assert all(t > 0 for t in s["obj_thr_kops"]), \
    f"dead object series: {s['obj_thr_kops']}"
# Adding threads must not collapse throughput. On a single-core CI box the
# CPU-bound share of the op mix cannot scale, so the curve drifts down with
# scheduler overhead (~0.75x at T=8 observed); 0.6 leaves noise headroom
# while still catching serialization collapse (threads convoying on one
# lock, futex storms). On real multi-core hardware the ratio exceeds 1.
assert s["thr_kops"][-1] >= 0.6 * s["thr_kops"][0], \
    f"throughput collapsed with threads: {s['thr_kops']}"
print(f"BENCH_scale.json: scale OK (thr_kops={s['thr_kops']}, "
      f"obj_thr_kops={s['obj_thr_kops']})")
EOF

# The mobility bench must report the disconnection-reconvergence experiment:
# a put with one of N holders unreachable stays bounded by ~one notification
# deadline (the parallel fanout claim), and the reconnecting holder
# reconverges through the retry queue + resync daemon. It must also report
# the fleet-convergence experiment: >=200 simulated device sites observed by
# a FleetMonitor through churn, with the lag distribution spiking at peak
# and returning to zero after reconnection.
echo "=== [bench] mobility reconvergence + fleet JSON ==="
(cd build-ci && ./bench/bench_mobility --benchmark_filter=SchemaOnly)
python3 - build-ci/BENCH_mobility.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
for key in ("bench", "xs", "series", "reconvergence", "fleet", "journey",
            "metrics"):
    assert key in doc, f"missing key: {key}"
r = doc["reconvergence"]
for key in ("holders", "disconnected", "updates_during_window",
            "put_ms_all_up", "put_ms_one_down", "notify_deadline_ms",
            "reconverge_ms", "resync_refreshes"):
    assert key in r, f"reconvergence section missing {key}"
assert r["holders"] >= 2 and r["disconnected"] >= 1, f"degenerate setup: {r}"
# One dead holder must cost about one notification deadline on top of the
# all-up put — not one deadline per holder.
overhead_ms = r["put_ms_one_down"] - r["put_ms_all_up"]
assert overhead_ms < 2 * r["notify_deadline_ms"], \
    f"fanout did not parallelize: one-down overhead {overhead_ms:.0f} ms"
assert r["resync_refreshes"] >= 1, "resync daemon never refreshed"
assert r["reconverge_ms"] > 0, "reconvergence not measured"
print(f"BENCH_mobility.json: reconvergence OK (one-down overhead "
      f"{overhead_ms:.0f} ms vs deadline {r['notify_deadline_ms']:.0f} ms, "
      f"reconverge {r['reconverge_ms']:.0f} ms, "
      f"{r['resync_refreshes']} resync refreshes)")

fl = doc["fleet"]
for key in ("sites", "churned", "updates", "updates_observed",
            "peak_lag_versions", "peak_stale_replicas", "unreachable_at_peak",
            "bytes_per_update_peak", "converge_ms", "converge_polls",
            "final_lag_versions_max", "final_stale_replicas", "slo_breach_s"):
    assert key in fl, f"fleet section missing {key}"
assert fl["sites"] >= 200, f"fleet too small: {fl['sites']} sites"
assert fl["churned"] >= 1, "no churned devices in the fleet experiment"
# The monitor must have seen the churn: unreachable devices at peak, a lag
# spike covering every missed update, and stale replicas across the fleet.
assert fl["unreachable_at_peak"] >= fl["churned"], \
    f"churned devices not unreachable at peak: {fl}"
assert fl["peak_lag_versions"]["max"] >= 1, "no lag spike observed"
assert fl["peak_stale_replicas"] >= 1, "no stale replicas observed at peak"
assert fl["updates_observed"] >= fl["updates"], \
    f"monitor missed updates: {fl['updates_observed']} < {fl['updates']}"
assert fl["bytes_per_update_peak"] > 0, "bytes-per-update not measured"
# ...and the reconnection must actually reconverge, with SLO burn recorded
# for the window the fleet spent out of bounds.
assert fl["converge_ms"] > 0, "fleet convergence not measured"
assert fl["final_lag_versions_max"] == 0, "fleet did not reconverge (lag)"
assert fl["final_stale_replicas"] == 0, "fleet did not reconverge (stale)"
assert fl["slo_breach_s"] > 0, "SLO burn never accrued during churn"
print(f"BENCH_mobility.json: fleet OK ({fl['sites']} sites, "
      f"{fl['churned']} churned, peak lag max {fl['peak_lag_versions']['max']}, "
      f"converged in {fl['converge_ms']:.0f} ms, "
      f"SLO burn {fl['slo_breach_s']:.2f} s)")

# The journey cross-check: the per-update tracer must have followed the
# fleet updates hop by hop, its event-driven convergence measurement must
# come in at or under the poll-loop estimate (polling can only overestimate:
# it adds up to one poll interval plus refresh latency of aliasing error),
# and the sustained churn must have tripped the burn-rate alert.
j = doc["journey"]
for key in ("minted", "completed", "superseded_notifies", "ttfr_ms_p95",
            "convergence_ms_p95", "measured_convergence_ms",
            "polled_convergence_ms", "aliasing_error_ms", "poll_interval_ms",
            "alert_firing", "fast_burn_rate"):
    assert key in j, f"journey section missing {key}"
assert j["minted"] >= 1, "no update journeys minted"
assert j["completed"] >= 1, "no update journey completed"
assert j["measured_convergence_ms"] > 0, "journey convergence not measured"
assert j["aliasing_error_ms"] >= 0, \
    f"polled convergence beat the event-driven measurement: {j}"
assert j["polled_convergence_ms"] >= j["measured_convergence_ms"], \
    f"aliasing inverted: {j}"
# Churn supersedes queued notifications (per-holder version coalescing), so
# only the newest update fully converges and the older ones show up here.
assert j["superseded_notifies"] >= 1, "churn superseded no notifications"
assert j["alert_firing"] is True, "burn-rate alert did not fire under churn"
assert j["fast_burn_rate"] > 1.0, f"fast burn rate too low: {j}"
print(f"BENCH_mobility.json: journey OK ({j['minted']} minted, "
      f"{j['completed']} completed, measured "
      f"{j['measured_convergence_ms']:.0f} ms vs polled "
      f"{j['polled_convergence_ms']:.0f} ms, aliasing "
      f"{j['aliasing_error_ms']:.0f} ms, burn {j['fast_burn_rate']:.1f})")
EOF

# The replication observatory, exercised over real TCP: a provider shell
# hosts a bound chain, a demander shell replicates part of it and writes its
# frontier DOT on exit, and a third one-shot `--inspect` pulls the provider's
# report through the kInspect RMI method as JSON. The JSON must match the
# report schema and the DOT must parse as a well-formed frontier digraph.
echo "=== [shell] replication observatory: inspect JSON + frontier DOT ==="
SHELL_BIN=./build-ci/examples/obiwan_shell
OBS_JSON="$(pwd)/build-ci/observatory.json"
OBS_DOT="$(pwd)/build-ci/observatory.dot"
rm -f "$OBS_JSON" "$OBS_DOT"
{ printf 'host-registry\nbind todo inspect-me 3\n'; sleep 6; } | \
    "$SHELL_BIN" --site 1 --port 7461 >/dev/null &
OBS_SERVER=$!
sleep 1
printf 'lookup todo\nreplicate todo 2\ninspect\nfrontier\n' | \
    "$SHELL_BIN" --site 2 --port 7462 --registry 127.0.0.1:7461 \
    --frontier "$OBS_DOT" >/dev/null
"$SHELL_BIN" --site 3 --port 7463 --registry 127.0.0.1:7461 \
    --inspect 127.0.0.1:7461 > "$OBS_JSON"
kill "$OBS_SERVER" 2>/dev/null || true
wait "$OBS_SERVER" 2>/dev/null || true
python3 - "$OBS_JSON" "$OBS_DOT" <<'EOF'
import json, re, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
for key in ("site", "address", "now_ns", "summary", "objects", "pins"):
    assert key in doc, f"missing key: {key}"
for key in ("masters", "replicas", "proxy_ins", "frontier"):
    assert key in doc["summary"], f"summary missing {key}"
assert doc["site"] == 1, f"inspected the wrong site: {doc['site']}"
assert doc["summary"]["masters"] == 3, f"bad master count: {doc['summary']}"
assert len(doc["objects"]) == doc["summary"]["masters"], "missing object rows"
for o in doc["objects"]:
    for key in ("id", "role", "class", "version", "known_master_version",
                "stale", "staleness_versions", "age_ns", "payload_bytes",
                "faults", "puts", "holders", "edges"):
        assert key in o, f"object row missing {key}: {o}"
    assert o["role"] in ("master", "replica"), f"bad role: {o['role']}"
    for e in o["edges"]:
        for key in ("to", "proxy", "class"):
            assert key in e, f"edge missing {key}: {e}"
assert any(o["holders"] > 0 for o in doc["objects"]), \
    "no master records the demander as a holder"
assert any(p["anchored"] for p in doc["pins"]), "bind pin not anchored"
for p in doc["pins"]:
    for key in ("pin", "target", "cluster", "anchored", "members",
                "lease_remaining_ns"):
        assert key in p, f"pin row missing {key}: {p}"

with open(sys.argv[2]) as f:
    dot = f.read()
assert dot.startswith("digraph obiwan_frontier {"), "bad DOT header"
assert dot.count("{") == dot.count("}"), "unbalanced braces in DOT"
nodes = re.findall(r'^\s*"[^"]+"\s*\[', dot, re.M)
edges = re.findall(r'^\s*"[^"]+"\s*->\s*"[^"]+"', dot, re.M)
assert nodes, "no nodes in frontier DOT"
assert edges, "no edges in frontier DOT"
assert "style=dashed" in dot, "frontier DOT lost its dashed frontier styling"
print(f"observatory: inspect JSON schema OK ({len(doc['objects'])} objects, "
      f"{len(doc['pins'])} pins), frontier DOT OK "
      f"({len(nodes)} nodes, {len(edges)} edges)")
EOF

# The embedded admin endpoint, served by a real shell over TCP: /metrics must
# be well-formed Prometheus text exposition (every sample under a # TYPE,
# counters suffixed _total, histogram buckets cumulative with +Inf == _count,
# "# EOF"-terminated, OpenMetrics via Accept), /healthz must report ready
# while the RMI plane is up, and the update-journey routes /updates.json and
# /alerts.json must serve their schemas.
echo "=== [shell] admin endpoint: /metrics exposition + /healthz ==="
ADMIN_METRICS="$(pwd)/build-ci/admin_metrics.prom"
ADMIN_HEALTH="$(pwd)/build-ci/admin_healthz.json"
rm -f "$ADMIN_METRICS" "$ADMIN_HEALTH"
{ printf 'host-registry\nbind todo admin-doc 3\n'; sleep 6; } | \
    "$SHELL_BIN" --site 7 --port 7472 --admin 7474 >/dev/null &
ADMIN_SERVER=$!
sleep 1
curl -fsS http://127.0.0.1:7474/metrics > "$ADMIN_METRICS"
curl -fsS http://127.0.0.1:7474/healthz > "$ADMIN_HEALTH"
curl -fsS http://127.0.0.1:7474/inspect.json | python3 -c \
    'import json,sys; d=json.load(sys.stdin); assert d["site"] == 7, d'
curl -fsS http://127.0.0.1:7474/profile.json | python3 -c \
    'import json,sys; d=json.load(sys.stdin); \
     queues={q["queue"] for q in d["queues"]}; \
     assert {"stale_replicas","notify_retries","fanout_inflight"} <= queues, d'
curl -fsS http://127.0.0.1:7474/contention | grep -q "lock hotness" || {
    echo "/contention missing lock hotness report"; exit 1; }
# Content negotiation: an OpenMetrics Accept header must switch the
# /metrics content type (body stays "# EOF"-terminated either way).
curl -fsSi -H 'Accept: application/openmetrics-text' \
    http://127.0.0.1:7474/metrics | \
    grep -qi 'content-type: application/openmetrics-text' || {
    echo "/metrics did not negotiate OpenMetrics content type"; exit 1; }
curl -fsS http://127.0.0.1:7474/updates.json | python3 -c \
    'import json,sys; d=json.load(sys.stdin); \
     assert {"site","now","minted","completed","slo_convergence_ns", \
             "ttfr_ns","convergence_ns","hops","recent","slowest"} <= \
         set(d), d; \
     assert {"queue","wire","apply"} <= set(d["hops"]), d; \
     assert d["site"] == 7, d'
curl -fsS http://127.0.0.1:7474/alerts.json | python3 -c \
    'import json,sys; d=json.load(sys.stdin); \
     a=d["alerts"][0]; \
     assert a["name"] == "update_convergence_burn", d; \
     assert a["state"] in ("ok","firing"), d; \
     assert {"window_s","total","bad","burn_rate"} <= set(a["fast"]), d; \
     assert {"window_s","total","bad","burn_rate"} <= set(a["slow"]), d'
kill "$ADMIN_SERVER" 2>/dev/null || true
wait "$ADMIN_SERVER" 2>/dev/null || true
python3 - "$ADMIN_METRICS" "$ADMIN_HEALTH" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    lines = [l for l in f.read().splitlines() if l]
types = {}
families = {}  # family -> {"samples": n, "buckets": {labels: [counts]}}
for line in lines:
    if line.startswith("# TYPE "):
        name, kind = line[len("# TYPE "):].split()
        assert kind in ("counter", "gauge", "histogram"), line
        assert name not in types, f"duplicate TYPE for {name}"
        types[name] = kind
        continue
    if line == "# EOF":
        # OpenMetrics not-truncated terminator; must be the last line.
        assert line == lines[-1], "# EOF not at end of exposition"
        continue
    if line.startswith("#"):
        assert line.startswith("# HELP "), f"unknown comment: {line}"
        continue
    sample = line
    if " # {" in line:
        # OpenMetrics exemplar suffix: only on _bucket lines, trace-stamped,
        # with a numeric exemplar value after the closing brace.
        sample, exemplar = line.split(" # {", 1)
        assert sample.split("{")[0].split(" ")[0].endswith("_bucket"), \
            f"exemplar outside a _bucket series: {line}"
        assert exemplar.startswith('trace_id="'), f"bad exemplar: {line}"
        body, evalue = exemplar.rsplit("} ", 1)
        float(evalue)
    name = sample.split("{")[0].split(" ")[0]
    value = float(sample.rsplit(" ", 1)[1])
    family = name
    for suffix in ("_bucket", "_sum", "_count"):
        base = name[: -len(suffix)] if name.endswith(suffix) else None
        if base and types.get(base) == "histogram":
            family = base
    assert family in types, f"sample without TYPE: {line}"
    if types[family] == "counter":
        assert name.endswith("_total"), f"counter without _total: {line}"
    fam = families.setdefault(family, {"samples": 0, "buckets": {}, "count": {}})
    fam["samples"] += 1
    if types[family] == "histogram":
        labels = sample.split("{", 1)[1].rsplit("}", 1)[0] if "{" in sample else ""
        base_labels = ",".join(
            kv for kv in labels.split(",") if not kv.startswith("le="))
        if name.endswith("_bucket"):
            fam["buckets"].setdefault(base_labels, []).append(value)
        elif name.endswith("_count"):
            fam["count"][base_labels] = value
for family, fam in families.items():
    for labels, counts in fam["buckets"].items():
        assert counts == sorted(counts), \
            f"non-cumulative buckets for {family}{{{labels}}}: {counts}"
        assert counts[-1] == fam["count"].get(labels), \
            f"+Inf bucket != _count for {family}{{{labels}}}"
for needed in ("obiwan_site_uptime_ns", "obiwan_build_info",
               "obiwan_rmi_client_latency_ns",
               "obiwan_admin_http_requests_total",
               "obiwan_lock_wait_ns", "obiwan_lock_hold_ns",
               "obiwan_lock_acquisitions_total", "obiwan_queue_depth",
               "obiwan_admin_http_active", "obiwan_process_rss_bytes",
               "obiwan_process_threads"):
    assert needed in types, f"missing metric family {needed}"
assert types["obiwan_rmi_client_latency_ns"] == "histogram"
assert types["obiwan_lock_wait_ns"] == "histogram"
assert any(kind == "histogram" for kind in types.values())

with open(sys.argv[2]) as f:
    health = json.load(f)
assert health["status"] == "ok", f"unhealthy: {health}"
assert health["transport"] is True, f"transport down: {health}"
assert "stale_backlog" in health and "max_stale_backlog" in health, health
print(f"admin endpoint: exposition OK ({len(types)} families, "
      f"{sum(f['samples'] for f in families.values())} samples), healthz OK")
EOF

echo "=== CI green: release + asan + ubsan + tsan + bench JSON + chrome trace + reconvergence + observatory + fleet + journeys + admin + contention ==="
