#!/usr/bin/env sh
# CI entry point: build and test the tree twice —
#   1. the plain Release-ish build (RelWithDebInfo, the default), and
#   2. an AddressSanitizer build (OBIWAN_SANITIZE=address)
# and run the full ctest suite under each. Any failure fails the script.
#
# Usage: tools/ci.sh [jobs]          (jobs defaults to nproc)
set -eu

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc 2>/dev/null || echo 4)}"

run_flavour() {
  flavour="$1"
  build_dir="$2"
  shift 2
  echo "=== [$flavour] configure ==="
  cmake -B "$build_dir" -S . "$@"
  echo "=== [$flavour] build ==="
  cmake --build "$build_dir" -j "$JOBS"
  echo "=== [$flavour] test ==="
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS"
}

run_flavour release build-ci
run_flavour asan build-asan -DOBIWAN_SANITIZE=address

# The fig4 bench must emit a schema-valid BENCH_*.json with latency
# percentiles (skip the google-benchmark micro-benchmarks; the paper series
# and the telemetry export are what CI checks).
echo "=== [bench] fig4 JSON schema ==="
(cd build-ci && ./bench/bench_fig4_rmi_vs_lmi --benchmark_filter=SchemaOnly)
python3 - build-ci/BENCH_fig4_rmi_vs_lmi.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
for key in ("bench", "x_label", "xs", "series", "rpc_latency_ns", "metrics"):
    assert key in doc, f"missing key: {key}"
assert doc["series"], "no series"
for s in doc["series"]:
    assert len(s["values"]) == len(doc["xs"]), f"ragged series {s['name']}"
assert doc["rpc_latency_ns"], "no rpc latency summaries"
for op, summary in doc["rpc_latency_ns"].items():
    for key in ("count", "sum", "max", "p50", "p95", "p99"):
        assert key in summary, f"{op} missing {key}"
    assert summary["count"] > 0, f"{op} summary is empty"
for section in ("counters", "gauges", "histograms"):
    assert isinstance(doc["metrics"][section], list), f"bad {section}"
print("BENCH_fig4_rmi_vs_lmi.json: schema OK "
      f"({len(doc['series'])} series, {len(doc['rpc_latency_ns'])} ops)")
EOF

echo "=== CI green: release + asan + bench JSON ==="
