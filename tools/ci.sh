#!/usr/bin/env sh
# CI entry point: build and test the tree four times —
#   1. the plain Release-ish build (RelWithDebInfo, the default),
#   2. an AddressSanitizer build (OBIWAN_SANITIZE=address),
#   3. an UndefinedBehaviorSanitizer build (OBIWAN_SANITIZE=undefined), and
#   4. a ThreadSanitizer build (OBIWAN_SANITIZE=thread) running the
#      concurrency-heavy transport tests (real sockets, retry decorator,
#      connection pool, server thread lifecycle).
# Any failure fails the script.
#
# Usage: tools/ci.sh [jobs]          (jobs defaults to nproc)
set -eu

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc 2>/dev/null || echo 4)}"

run_flavour() {
  flavour="$1"
  build_dir="$2"
  shift 2
  echo "=== [$flavour] configure ==="
  cmake -B "$build_dir" -S . "$@"
  echo "=== [$flavour] build ==="
  cmake --build "$build_dir" -j "$JOBS"
  echo "=== [$flavour] test ==="
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS"
}

run_flavour release build-ci
run_flavour asan build-asan -DOBIWAN_SANITIZE=address
run_flavour ubsan build-ubsan -DOBIWAN_SANITIZE=undefined

# ThreadSanitizer flavour: the transport layer is the concurrency hot spot
# (client threads sharing one pooled TCP transport, the retry decorator's
# counter, the server's per-connection threads), so TSan runs the transport
# and retry test groups rather than the whole (slow under TSan) suite.
echo "=== [tsan] configure ==="
cmake -B build-tsan -S . -DOBIWAN_SANITIZE=thread
echo "=== [tsan] build ==="
cmake --build build-tsan -j "$JOBS" --target tcp_test net_test compress_test
echo "=== [tsan] test ==="
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
    -R '^(Tcp|TcpDeadline|TcpPool|TcpRetry|TcpServer|Loopback|Sim|SimDeadline|RetryingTransport|CompressedTransport)'

# The fig4 bench must emit a schema-valid BENCH_*.json with latency
# percentiles (skip the google-benchmark micro-benchmarks; the paper series
# and the telemetry export are what CI checks).
echo "=== [bench] fig4 JSON schema ==="
(cd build-ci && ./bench/bench_fig4_rmi_vs_lmi --benchmark_filter=SchemaOnly)
python3 - build-ci/BENCH_fig4_rmi_vs_lmi.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
for key in ("bench", "x_label", "xs", "series", "rpc_latency_ns", "metrics"):
    assert key in doc, f"missing key: {key}"
assert doc["series"], "no series"
for s in doc["series"]:
    assert len(s["values"]) == len(doc["xs"]), f"ragged series {s['name']}"
assert doc["rpc_latency_ns"], "no rpc latency summaries"
for op, summary in doc["rpc_latency_ns"].items():
    for key in ("count", "sum", "max", "p50", "p95", "p99"):
        assert key in summary, f"{op} missing {key}"
    assert summary["count"] > 0, f"{op} summary is empty"
for section in ("counters", "gauges", "histograms"):
    assert isinstance(doc["metrics"][section], list), f"bad {section}"
print("BENCH_fig4_rmi_vs_lmi.json: schema OK "
      f"({len(doc['series'])} series, {len(doc['rpc_latency_ns'])} ops)")
EOF

# The two-site cascade test, run with the flight recorder armed, must leave a
# loadable Chrome trace: valid JSON, every B has a matching E (per pid/tid,
# LIFO order), and the cascade's span categories are present.
echo "=== [trace] two-site cascade Chrome trace ==="
TRACE_JSON="$(pwd)/build-ci/span_two_site.trace.json"
rm -f "$TRACE_JSON"
(cd build-ci && OBIWAN_SPAN_EXPORT="$TRACE_JSON" \
    ./tests/span_test --gtest_filter='*TwoSiteCascade*')
python3 - "$TRACE_JSON" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "empty traceEvents"
stacks = {}
begins = ends = 0
for ev in events:
    ph = ev["ph"]
    key = (ev.get("pid"), ev.get("tid"))
    if ph == "B":
        begins += 1
        stacks.setdefault(key, []).append(ev["name"])
        assert ev["ts"] >= 0, f"negative ts in {ev}"
    elif ph == "E":
        ends += 1
        stack = stacks.get(key)
        assert stack, f"E without open B on {key}: {ev}"
        top = stack.pop()
        assert top == ev["name"], f"mismatched E on {key}: {ev['name']} != {top}"
assert begins == ends, f"unbalanced: {begins} B vs {ends} E"
for key, stack in stacks.items():
    assert not stack, f"unclosed spans on {key}: {stack}"
cats = {ev.get("cat") for ev in events}
for needed in ("rmi", "dispatch", "fault", "get", "put"):
    assert needed in cats, f"missing span category {needed!r}"
pids = {ev["pid"] for ev in events if ev["ph"] in "BE"}
assert len(pids) >= 2, f"expected spans from at least two sites, got {pids}"
print(f"span_two_site.trace.json: {begins} spans well-nested across "
      f"{len(pids)} processes, categories OK")
EOF

# The TCP pooling bench must report the pool actually amortizing connects:
# the JSON's transport section records connects-per-call across the pooled
# and per-connect series.
echo "=== [bench] tcp pool JSON ==="
(cd build-ci && ./bench/bench_tcp_pool --benchmark_filter=SchemaOnly)
python3 - build-ci/BENCH_tcp_pool.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
for key in ("bench", "xs", "series", "transport", "metrics"):
    assert key in doc, f"missing key: {key}"
t = doc["transport"]
for key in ("requests", "connects", "pool_hits", "timeouts", "connects_per_call"):
    assert key in t, f"transport section missing {key}"
assert t["requests"] > 0, "no TCP requests recorded"
# Half the runs are per-connect, half pooled; pooling must have amortized a
# substantial share of connects overall.
assert t["connects_per_call"] < 0.75, \
    f"pooling did not amortize connects: {t['connects_per_call']}"
assert t["pool_hits"] > 0, "pool never hit"
names = [s["name"] for s in doc["series"]]
assert "pooled" in names and "per-connect" in names, f"bad series: {names}"
print(f"BENCH_tcp_pool.json: transport OK (connects_per_call="
      f"{t['connects_per_call']:.3f}, pool_hits={t['pool_hits']})")
EOF

echo "=== CI green: release + asan + ubsan + tsan + bench JSON + chrome trace ==="
