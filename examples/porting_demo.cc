// Porting demo — the paper's §3.2 pipeline, wired into the build:
//
//   examples/legacy/calendar.h          (plain classes, no distribution)
//        |  obicomp --port  (build step)
//        v
//   <build>/generated/calendar.ported.h (shareable classes)
//        |  + the method bodies below (the unchanged business logic)
//        v
//   a distributed calendar: bind, RMI, incremental replication, put.
//
// "For a distributed application ... OBIWAN uses a reverse process to strip
// the application classes of explicit RMI references and then deals with
// them as if they were developed without remoteness in mind" — here the
// forward direction: the legacy classes gain remoteness without editing them.
#include <cstdio>

#include "calendar.ported.h"  // generated into the build tree by obicomp
#include "obiwan.h"

OBIWAN_REGISTER_CLASS(Calendar);
OBIWAN_REGISTER_CLASS(Event);

// --- the original business logic, verbatim -----------------------------------

std::string Calendar::Owner() const { return owner; }
void Calendar::Adopt(std::string new_owner) { owner = std::move(new_owner); }
std::int64_t Calendar::CountUp() { return ++event_count; }

std::string Event::Describe() const {
  return when + "  " + title + (cancelled ? "  [cancelled]" : "");
}
void Event::Cancel() { cancelled = true; }
std::int64_t Event::Invite(std::string attendee) {
  attendees.push_back(std::move(attendee));
  return static_cast<std::int64_t>(attendees.size());
}

// --- and now it is a distributed application ----------------------------------

int main() {
  using namespace obiwan;

  net::LoopbackNetwork network;
  core::Site server(1, network.CreateEndpoint("server"));
  core::Site laptop(2, network.CreateEndpoint("laptop"));
  if (!server.Start().ok() || !laptop.Start().ok()) return 1;
  server.HostRegistry();
  laptop.UseRegistry("server");

  auto calendar = std::make_shared<Calendar>();
  calendar->owner = "team";
  auto kickoff = std::make_shared<Event>();
  kickoff->title = "project kickoff";
  kickoff->when = "Mon 09:00";
  auto retro = std::make_shared<Event>();
  retro->title = "retrospective";
  retro->when = "Fri 16:00";
  kickoff->next = retro;  // Event* became Ref<Event> in the ported class
  calendar->first = kickoff;
  calendar->event_count = 2;

  if (!server.Bind("calendar", calendar).ok()) return 1;

  auto remote = laptop.Lookup<Calendar>("calendar");
  if (!remote.ok()) return 1;

  // The untouched business logic, invoked remotely...
  auto owner = remote->Invoke(&Calendar::Owner);
  std::printf("RMI Owner() -> %s\n", owner.ok() ? owner->c_str() : "error");

  // ...and locally on an incrementally replicated graph.
  auto ref = remote->Replicate(core::ReplicationMode::Incremental(1));
  if (!ref.ok()) return 1;
  std::printf("first event : %s\n", (*ref)->first->Describe().c_str());
  std::printf("second event: %s\n",
              (*ref)->first->next->Describe().c_str());  // object fault

  (*ref)->first->next->Cancel();
  if (!laptop.Put((*ref)->first->next).ok()) return 1;
  std::printf("after put   : %s (at the server)\n", retro->Describe().c_str());

  std::printf("replicas on laptop: %zu\n", laptop.replica_count());
  return 0;
}
