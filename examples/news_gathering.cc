// World-wide news gathering — the authors' companion application domain
// (collaborative editing across a widely distributed team, §1).
//
// A newsroom server masters a tree of desks, each desk holding a linked list
// of stories. Correspondents on slow links work on their own desk:
//   - each replicates *only their desk* (incremental replication keeps the
//     rest of the tree remote),
//   - edits offline while the wire is down,
//   - and files (puts) the stories back; an optimistic transaction groups a
//     story edit with the desk's revision bump so editors never see a desk
//     whose index disagrees with its stories.
#include <cstdio>

#include "obiwan.h"

namespace {

using namespace obiwan;

class Story : public core::Shareable {
 public:
  OBIWAN_SHAREABLE(Story)

  std::string headline;
  std::string body_text;
  std::int64_t words = 0;
  core::Ref<Story> next;

  std::string Headline() const { return headline; }
  void Rewrite(std::string new_body) {
    body_text = std::move(new_body);
    words = static_cast<std::int64_t>(body_text.size() / 5);
  }

  static void ObiwanDefine(core::ClassDef<Story>& def) {
    def.Field("headline", &Story::headline)
        .Field("body_text", &Story::body_text)
        .Field("words", &Story::words)
        .Ref("next", &Story::next)
        .Method("Headline", &Story::Headline)
        .Method("Rewrite", &Story::Rewrite);
  }
};
OBIWAN_REGISTER_CLASS(Story);

class Desk : public core::Shareable {
 public:
  OBIWAN_SHAREABLE(Desk)

  std::string name;
  std::int64_t revision = 0;
  core::Ref<Story> stories;
  core::Ref<Desk> next_desk;

  std::string Name() const { return name; }
  void BumpRevision() { ++revision; }

  static void ObiwanDefine(core::ClassDef<Desk>& def) {
    def.Field("name", &Desk::name)
        .Field("revision", &Desk::revision)
        .Ref("stories", &Desk::stories)
        .Ref("next_desk", &Desk::next_desk)
        .Method("Name", &Desk::Name)
        .Method("BumpRevision", &Desk::BumpRevision);
  }
};
OBIWAN_REGISTER_CLASS(Desk);

std::shared_ptr<Desk> BuildNewsroom() {
  auto story = [](const char* headline) {
    auto s = std::make_shared<Story>();
    s->headline = headline;
    s->body_text = "(wire copy)";
    return s;
  };
  auto politics = std::make_shared<Desk>();
  politics->name = "politics";
  auto p1 = story("Summit ends without agreement");
  p1->next = story("Parliament debates spectrum auction");
  politics->stories = p1;

  auto science = std::make_shared<Desk>();
  science->name = "science";
  auto s1 = story("Object middleware tames flaky networks");
  s1->next = story("PDAs predicted to gain wireless links");
  science->stories = s1;

  politics->next_desk = science;
  return politics;
}

}  // namespace

int main() {
  VirtualClock clock;
  net::SimNetwork network(clock, net::kPaperLan);

  core::Site hq(1, network.CreateEndpoint("hq"), clock);
  core::Site lisbon(2, network.CreateEndpoint("lisbon"), clock);
  if (!hq.Start().ok() || !lisbon.Start().ok()) return 1;
  hq.HostRegistry();
  lisbon.UseRegistry("hq");
  // The correspondent is on a wireless link.
  network.SetLinkParams("lisbon", "hq", net::kPaperWireless);

  auto newsroom = BuildNewsroom();
  if (!hq.Bind("newsroom", newsroom).ok()) return 1;

  // --- the correspondent replicates only the science desk ---------------------
  auto remote = lisbon.Lookup<Desk>("newsroom");
  if (!remote.ok()) return 1;
  auto desk_walk = remote->Replicate(core::ReplicationMode::Incremental(1));
  if (!desk_walk.ok()) return 1;
  core::Ref<Desk>* desk = &*desk_walk;
  while ((*desk)->Name() != "science") desk = &(*desk)->next_desk;
  // Pull the desk's story list; the politics desk stays a 1-object replica.
  core::Ref<Story>& first = (*desk)->stories;
  if (!lisbon.PrefetchAll(first).ok()) return 1;
  std::printf("[lisbon] replicated the science desk: %zu objects total "
              "(newsroom has %d)\n",
              lisbon.replica_count(), 6);

  // --- offline rewrite ----------------------------------------------------------
  network.SetEndpointUp("lisbon", false);
  first->Rewrite(
      "OBIWAN lets applications pick, at run time, between invoking a master "
      "remotely and working on a local replica, so correspondents keep "
      "writing when the link drops.");
  std::printf("[lisbon] rewrote '%s' offline (%lld words)\n",
              first->Headline().c_str(), static_cast<long long>(first->words));

  // --- file the story atomically with the desk revision -------------------------
  network.SetEndpointUp("lisbon", true);
  tx::Transaction txn(lisbon);
  (*desk)->BumpRevision();
  if (!txn.Write(first).ok() || !txn.Write(*desk).ok()) return 1;
  Status commit = txn.Commit();
  std::printf("[lisbon] filed story + revision bump -> %s\n",
              commit.ToString().c_str());
  if (!commit.ok()) return 1;

  auto* master_science = static_cast<Desk*>(newsroom->next_desk.local_raw());
  std::printf("[hq]     desk '%s' now at revision %lld; story body: %.40s...\n",
              master_science->name.c_str(),
              static_cast<long long>(master_science->revision),
              static_cast<Story*>(master_science->stories.local_raw())
                  ->body_text.c_str());
  std::printf("\nsimulated time: %.1f ms (wireless transfers dominate)\n",
              static_cast<double>(clock.Now()) / kMilli);
  return 0;
}
