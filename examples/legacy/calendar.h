// A "legacy" calendar written with no distribution in mind — exactly the
// starting point of the paper's §3.2 porting story. The build runs
//   obicomp --port examples/legacy/calendar.h
// over this file to produce the shareable versions of these classes; see
// examples/porting_demo.cc for the application that uses the result.
//
// (This header is *input data* for obicomp; nothing in the repo includes it
// directly.)
#include <string>
#include <vector>

class Event;

class Calendar {
 public:
  std::string owner;
  int64_t event_count = 0;
  Event* first;

  std::string Owner() const;
  void Adopt(std::string new_owner);
  int64_t CountUp();
};

class Event {
 public:
  std::string title;
  std::string when;
  bool cancelled = false;
  std::vector<std::string> attendees;
  Event* next;

  std::string Describe() const;
  void Cancel();
  int64_t Invite(std::string attendee);
};
