// obiwan_shell — interactive driver over real TCP, for humans.
//
// Run two shells in two terminals and share objects between them:
//
//   $ obiwan_shell --site 1 --port 7000
//   obiwan> host-registry
//   obiwan> bind todo "ship the ICDCS artifact"
//
//   $ obiwan_shell --site 2 --port 7001 --registry 127.0.0.1:7000
//   obiwan> lookup todo
//   obiwan> invoke todo              # RMI on site 1's master
//   obiwan> replicate todo 5         # incremental LMI replica
//   obiwan> show todo                # walk the local replica
//   obiwan> set todo "edited on site 2"
//   obiwan> put todo                 # reintegrate
//
// Commands: host-registry | bind <name> <text> [n] | lookup <name> |
//           invoke <name> | replicate <name> [batch] | cluster <name> <n> |
//           show <name> | set <name> <text> | append <name> <text> |
//           put <name> | putcluster <name> | refresh <name> | stats |
//           metrics [prom] | trace | help | quit
//
// `--stats` dumps the process-wide metrics registry (plain text) on exit, so
// scripted runs (`echo ... | obiwan_shell --stats`) get a machine-grepable
// summary without typing `metrics`.
//
// `--flight-dump <path>` arms the flight recorder: the first failed request
// writes the always-on per-site span buffers to <path> as Chrome trace JSON,
// and a clean exit writes them too — every session leaves a timeline.
#include <cstdio>
#include <iostream>
#include <map>
#include <sstream>

#include "common/flight_recorder.h"
#include "common/metrics.h"
#include "net/tcp.h"
#include "obiwan.h"

namespace {

using namespace obiwan;

class Note : public core::Shareable {
 public:
  OBIWAN_SHAREABLE(Note)

  std::string text;
  std::int64_t edits = 0;
  core::Ref<Note> next;

  std::string Describe() {
    ++edits;
    return text + " (read " + std::to_string(edits) + "x)";
  }
  void SetText(std::string t) {
    text = std::move(t);
    ++edits;
  }

  static void ObiwanDefine(core::ClassDef<Note>& def) {
    def.Field("text", &Note::text)
        .Field("edits", &Note::edits)
        .Ref("next", &Note::next)
        .Method("Describe", &Note::Describe)
        .Method("SetText", &Note::SetText);
  }
};
OBIWAN_REGISTER_CLASS(Note);

struct Shell {
  explicit Shell(std::unique_ptr<core::Site> s) : site(std::move(s)) {
    site->SetTracer(&tracer);
  }
  ~Shell() { site->SetTracer(nullptr); }

  Tracer tracer;
  std::unique_ptr<core::Site> site;
  std::map<std::string, core::RemoteRef<Note>> remotes;
  std::map<std::string, core::Ref<Note>> locals;

  core::Ref<Note>* Local(const std::string& name) {
    auto it = locals.find(name);
    if (it == locals.end()) {
      std::printf("no local replica '%s' (use: replicate %s)\n", name.c_str(),
                  name.c_str());
      return nullptr;
    }
    return &it->second;
  }

  core::RemoteRef<Note>* Remote(const std::string& name) {
    auto it = remotes.find(name);
    if (it == remotes.end()) {
      auto looked = site->Lookup<Note>(name);
      if (!looked.ok()) {
        std::printf("lookup failed: %s\n", looked.status().ToString().c_str());
        return nullptr;
      }
      it = remotes.emplace(name, *looked).first;
    }
    return &it->second;
  }

  void Run() {
    std::string line;
    std::printf("obiwan shell on %s — type 'help'\n", site->address().c_str());
    while (std::printf("obiwan> "), std::fflush(stdout),
           std::getline(std::cin, line)) {
      if (!Dispatch(line)) break;
    }
  }

  bool Dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string cmd, name;
    in >> cmd;
    if (cmd.empty()) return true;
    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      std::printf(
          "host-registry | bind <name> <text> [n] | lookup <name> | "
          "invoke <name> |\nreplicate <name> [batch] | cluster <name> <n> | "
          "show <name> | set <name> <text> |\nappend <name> <text> | "
          "put <name> | putcluster <name> | refresh <name> | stats |\n"
          "metrics [prom] | trace | quit\n");
      return true;
    }
    if (cmd == "host-registry") {
      site->HostRegistry();
      std::printf("name server hosted at %s\n", site->address().c_str());
      return true;
    }
    if (cmd == "stats") {
      const core::SiteStats s = site->stats();
      std::printf("masters %zu, replicas %zu, proxy-ins %zu\n",
                  site->master_count(), site->replica_count(),
                  site->proxy_in_count());
      std::printf("faults %llu, gets %llu/%llu, puts %llu/%llu, calls %llu/%llu\n",
                  static_cast<unsigned long long>(s.object_faults),
                  static_cast<unsigned long long>(s.gets_sent),
                  static_cast<unsigned long long>(s.gets_served),
                  static_cast<unsigned long long>(s.puts_sent),
                  static_cast<unsigned long long>(s.puts_served),
                  static_cast<unsigned long long>(s.calls_sent),
                  static_cast<unsigned long long>(s.calls_served));
      std::printf("replication bytes in %llu, out %llu\n",
                  static_cast<unsigned long long>(s.replication_bytes_in),
                  static_cast<unsigned long long>(s.replication_bytes_out));
      return true;
    }
    if (cmd == "metrics") {
      std::string format;
      in >> format;
      auto& reg = obiwan::MetricsRegistry::Default();
      std::fputs(
          (format == "prom" ? reg.DumpPrometheus() : reg.DumpText()).c_str(),
          stdout);
      return true;
    }
    if (cmd == "trace") {
      std::fputs(tracer.Dump().c_str(), stdout);
      if (tracer.dropped() > 0) {
        std::printf("  (%llu older events dropped)\n",
                    static_cast<unsigned long long>(tracer.dropped()));
      }
      return true;
    }

    in >> name;
    if (name.empty()) {
      std::printf("usage: %s <name> ...\n", cmd.c_str());
      return true;
    }

    if (cmd == "bind") {
      std::string text;
      std::getline(in, text);
      int count = 1;
      // Trailing integer = chain length.
      auto last_space = text.find_last_of(' ');
      if (last_space != std::string::npos) {
        try {
          count = std::max(1, std::stoi(text.substr(last_space + 1)));
          text = text.substr(0, last_space);
        } catch (...) {
        }
      }
      while (!text.empty() && text.front() == ' ') text.erase(0, 1);
      std::shared_ptr<Note> head, tail;
      for (int i = 0; i < count; ++i) {
        auto note = std::make_shared<Note>();
        note->text = count == 1 ? text : text + " #" + std::to_string(i);
        if (tail) {
          tail->next = note;
        } else {
          head = note;
        }
        tail = note;
      }
      Status s = site->Rebind(name, head);
      std::printf("%s\n", s.ok() ? "bound" : s.ToString().c_str());
      if (s.ok()) locals[name] = core::Ref<Note>(head);
      return true;
    }
    if (cmd == "lookup") {
      if (auto* remote = Remote(name)) {
        std::printf("%s -> %s at %s (class %s)\n", name.c_str(),
                    ToString(remote->id()).c_str(), remote->provider().c_str(),
                    remote->info().class_name.c_str());
      }
      return true;
    }
    if (cmd == "invoke") {
      if (auto* remote = Remote(name)) {
        auto r = remote->Invoke(&Note::Describe);
        std::printf("%s\n", r.ok() ? r->c_str() : r.status().ToString().c_str());
      }
      return true;
    }
    if (cmd == "replicate" || cmd == "cluster") {
      int batch = 1;
      in >> batch;
      if (auto* remote = Remote(name)) {
        auto mode = cmd == "cluster"
                        ? core::ReplicationMode::Cluster(
                              static_cast<std::uint32_t>(std::max(batch, 1)))
                        : core::ReplicationMode::Incremental(
                              static_cast<std::uint32_t>(std::max(batch, 1)));
        auto ref = remote->Replicate(mode);
        if (!ref.ok()) {
          std::printf("replicate failed: %s\n", ref.status().ToString().c_str());
          return true;
        }
        locals[name] = *ref;
        std::printf("replicated; %zu replicas on this site\n",
                    site->replica_count());
      }
      return true;
    }
    if (cmd == "show") {
      if (auto* ref = Local(name)) {
        int i = 0;
        core::Ref<Note>* cursor = ref;
        while (!cursor->IsEmpty()) {
          if (cursor->IsProxy()) {
            std::printf("  [%d] <not yet replicated — touch to fault in>\n", i);
            break;
          }
          std::printf("  [%d] %s\n", i, cursor->get()->text.c_str());
          cursor = &cursor->get()->next;
          ++i;
        }
      }
      return true;
    }
    if (cmd == "set" || cmd == "append") {
      std::string text;
      std::getline(in, text);
      while (!text.empty() && text.front() == ' ') text.erase(0, 1);
      if (auto* ref = Local(name)) {
        try {
          if (cmd == "set") {
            (*ref)->SetText(text);
          } else {
            (*ref)->SetText((*ref)->text + text);
          }
          std::printf("ok (local)\n");
        } catch (const core::ObjectFaultError& e) {
          std::printf("%s\n", e.what());
        }
      }
      return true;
    }
    if (cmd == "put" || cmd == "putcluster" || cmd == "refresh") {
      if (auto* ref = Local(name)) {
        Status s = cmd == "put"          ? site->Put(*ref)
                   : cmd == "putcluster" ? site->PutCluster(*ref)
                                         : site->Refresh(*ref);
        std::printf("%s\n", s.ok() ? "ok" : s.ToString().c_str());
      }
      return true;
    }
    std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    return true;
  }
};

}  // namespace

int main(int argc, char** argv) {
  SiteId site_id = 1;
  std::uint16_t port = 0;
  std::string registry;
  std::string flight_dump;
  bool dump_stats = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--site" && i + 1 < argc) {
      site_id = static_cast<SiteId>(std::stoul(argv[++i]));
    } else if (arg == "--port" && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::stoul(argv[++i]));
    } else if (arg == "--registry" && i + 1 < argc) {
      registry = argv[++i];
    } else if (arg == "--stats") {
      dump_stats = true;
    } else if (arg == "--flight-dump" && i + 1 < argc) {
      // Arm the post-mortem hook (first failed request dumps) and also write
      // the flight buffers on clean exit, so every session leaves a timeline.
      flight_dump = argv[++i];
      obiwan::FlightRecorder::Global().ArmDumpOnFailure(flight_dump);
    } else {
      std::fprintf(stderr,
                   "usage: obiwan_shell [--site N] [--port P] [--registry "
                   "host:port] [--stats] [--flight-dump trace.json]\n");
      return 2;
    }
  }

  auto transport = net::TcpTransport::Create(port);
  if (!transport.ok()) {
    std::fprintf(stderr, "cannot open port: %s\n",
                 transport.status().ToString().c_str());
    return 1;
  }
  auto site = std::make_unique<core::Site>(site_id, std::move(*transport));
  if (!site->Start().ok()) return 1;
  site->UseRegistry(registry.empty() ? site->address() : registry);

  Shell shell(std::move(site));
  shell.Run();
  if (dump_stats) {
    std::printf("\n--- metrics ---\n");
    std::fputs(obiwan::MetricsRegistry::Default().DumpText().c_str(), stdout);
  }
  if (!flight_dump.empty()) {
    Status s = obiwan::FlightRecorder::Global().WriteDump(flight_dump);
    std::printf("%s\n", s.ok() ? ("flight dump written to " + flight_dump).c_str()
                               : s.ToString().c_str());
  }
  return 0;
}
