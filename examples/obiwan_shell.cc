// obiwan_shell — interactive driver over real TCP, for humans.
//
// Run two shells in two terminals and share objects between them:
//
//   $ obiwan_shell --site 1 --port 7000
//   obiwan> host-registry
//   obiwan> bind todo "ship the ICDCS artifact"
//
//   $ obiwan_shell --site 2 --port 7001 --registry 127.0.0.1:7000
//   obiwan> lookup todo
//   obiwan> invoke todo              # RMI on site 1's master
//   obiwan> replicate todo 5         # incremental LMI replica
//   obiwan> show todo                # walk the local replica
//   obiwan> set todo "edited on site 2"
//   obiwan> put todo                 # reintegrate
//
// Commands: host-registry | bind <name> <text> [n] | lookup <name> |
//           invoke <name> | replicate <name> [batch] | cluster <name> <n> |
//           show <name> | set <name> <text> | append <name> <text> |
//           put <name> | putcluster <name> | refresh <name> | stats |
//           inspect [addr] | frontier [path] | top [addr] [frames] |
//           fleet [watch] <addr...> [frames] | metrics [prom] | trace |
//           profile [json] | contend [k] | journeys | help | quit
//
// `--stats` dumps the process-wide metrics registry (plain text) on exit, so
// scripted runs (`echo ... | obiwan_shell --stats`) get a machine-grepable
// summary without typing `metrics`.
//
// `--inspect [addr]` is the one-shot observatory: pull the replication-state
// report (this site's, or a remote site's over the kInspect RMI method),
// print it as JSON and exit — `obiwan_shell --site 2 --inspect host:port`
// shows what any running site holds without touching it.
//
// `--frontier <path>` writes the replication-frontier graph (Graphviz DOT)
// on exit; combined with `--inspect` it snapshots graph + report in one run.
//
// `--flight-dump <path>` arms the flight recorder: the first failed request
// writes the always-on per-site span buffers to <path> as Chrome trace JSON,
// and a clean exit writes them too — every session leaves a timeline.
//
// `--admin <port>` serves the HTTP observability plane on that port:
// curl http://127.0.0.1:<port>/metrics (Prometheus/OpenMetrics), /healthz,
// /inspect.json, /frontier.json|.dot, /updates.json, /alerts.json, /flight.
//
// `fleet <addr...>` polls the listed sites over the kInspect plane and prints
// the merged convergence view; `fleet watch <addr...> [frames]` redraws it
// every second like top(1).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "common/contention.h"
#include "common/flight_recorder.h"
#include "common/metrics.h"
#include "net/tcp.h"
#include "obiwan.h"
#include "obs/journey.h"
#include "obs/profiler.h"

namespace {

using namespace obiwan;

class Note : public core::Shareable {
 public:
  OBIWAN_SHAREABLE(Note)

  std::string text;
  std::int64_t edits = 0;
  core::Ref<Note> next;

  std::string Describe() {
    ++edits;
    return text + " (read " + std::to_string(edits) + "x)";
  }
  void SetText(std::string t) {
    text = std::move(t);
    ++edits;
  }

  static void ObiwanDefine(core::ClassDef<Note>& def) {
    def.Field("text", &Note::text)
        .Field("edits", &Note::edits)
        .Ref("next", &Note::next)
        .Method("Describe", &Note::Describe)
        .Method("SetText", &Note::SetText);
  }
};
OBIWAN_REGISTER_CLASS(Note);

struct Shell {
  explicit Shell(std::unique_ptr<core::Site> s) : site(std::move(s)) {
    site->SetTracer(&tracer);
  }
  ~Shell() {
    site->SetTracer(nullptr);
    if (journeys && site->journey_sink() == journeys.get()) {
      site->SetJourneySink(nullptr);
    }
  }

  Tracer tracer;
  std::unique_ptr<core::Site> site;
  std::unique_ptr<obs::Profiler> profiler;  // lazily built by `profile`
  std::unique_ptr<obs::JourneyTracker> journeys;  // lazily built by `journeys`
  std::map<std::string, core::RemoteRef<Note>> remotes;
  std::map<std::string, core::Ref<Note>> locals;

  core::Ref<Note>* Local(const std::string& name) {
    auto it = locals.find(name);
    if (it == locals.end()) {
      std::printf("no local replica '%s' (use: replicate %s)\n", name.c_str(),
                  name.c_str());
      return nullptr;
    }
    return &it->second;
  }

  // Local report, or a remote site's when `addr` is non-empty.
  std::optional<core::InspectReport> Report(const std::string& addr) {
    if (addr.empty()) return site->Inspect();
    auto report = site->InspectRemote(addr);
    if (!report.ok()) {
      std::printf("inspect %s failed: %s\n", addr.c_str(),
                  report.status().ToString().c_str());
      return std::nullopt;
    }
    return *report;
  }

  static bool WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path, std::ios::trunc);
    out << content;
    out.flush();
    if (!out) {
      std::printf("cannot write %s\n", path.c_str());
      return false;
    }
    return true;
  }

  core::RemoteRef<Note>* Remote(const std::string& name) {
    auto it = remotes.find(name);
    if (it == remotes.end()) {
      auto looked = site->Lookup<Note>(name);
      if (!looked.ok()) {
        std::printf("lookup failed: %s\n", looked.status().ToString().c_str());
        return nullptr;
      }
      it = remotes.emplace(name, *looked).first;
    }
    return &it->second;
  }

  void Run() {
    std::string line;
    std::printf("obiwan shell on %s — type 'help'\n", site->address().c_str());
    while (std::printf("obiwan> "), std::fflush(stdout),
           std::getline(std::cin, line)) {
      if (!Dispatch(line)) break;
    }
  }

  bool Dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string cmd, name;
    in >> cmd;
    if (cmd.empty()) return true;
    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      std::printf(
          "host-registry | bind <name> <text> [n] | lookup <name> | "
          "invoke <name> |\nreplicate <name> [batch] | cluster <name> <n> | "
          "show <name> | set <name> <text> |\nappend <name> <text> | "
          "put <name> | putcluster <name> | refresh <name> | stats |\n"
          "inspect [addr] | frontier [path] | top [addr] [frames] |\n"
          "fleet [watch] <addr...> [frames] | metrics [prom] | trace |\n"
          "profile [json] | contend [k] | journeys | quit\n");
      return true;
    }
    if (cmd == "profile") {
      // One queue-depth + lock-hotness sample of this site (json for
      // machines, the default text for humans).
      std::string format;
      in >> format;
      if (!profiler) profiler = std::make_unique<obs::Profiler>(*site);
      const obs::ProfileReport report = profiler->SampleOnce();
      std::string out = format == "json" ? report.ToJson() + "\n"
                                         : report.ToText();
      std::fputs(out.c_str(), stdout);
      return true;
    }
    if (cmd == "contend") {
      // Just the lock table: which locks threads wait on, ranked.
      std::size_t top_k = 10;
      in >> top_k;
      std::fputs(LockHotnessText(
                     LockHotness(MetricsRegistry::Default(),
                                 std::max<std::size_t>(top_k, 1)))
                     .c_str(),
                 stdout);
      return true;
    }
    if (cmd == "journeys") {
      // Per-update dissemination report: ttfr/convergence/hop percentiles,
      // burn-rate alert state, recent journeys. `--admin` already installs a
      // tracker; without one, install our own on first use (it only sees
      // updates from that point on).
      auto* tracker = dynamic_cast<obs::JourneyTracker*>(site->journey_sink());
      if (tracker == nullptr) {
        if (!journeys) {
          journeys =
              std::make_unique<obs::JourneyTracker>(site->clock(), site->id());
          site->SetJourneySink(journeys.get());
          std::printf("journey tracking enabled (tracks updates from now on)\n");
        }
        tracker = journeys.get();
      }
      std::fputs(tracker->ToText().c_str(), stdout);
      return true;
    }
    if (cmd == "host-registry") {
      site->HostRegistry();
      std::printf("name server hosted at %s\n", site->address().c_str());
      return true;
    }
    if (cmd == "stats") {
      const core::SiteStats s = site->stats();
      std::printf("masters %zu, replicas %zu, proxy-ins %zu\n",
                  site->master_count(), site->replica_count(),
                  site->proxy_in_count());
      std::printf("faults %llu, gets %llu/%llu, puts %llu/%llu, calls %llu/%llu\n",
                  static_cast<unsigned long long>(s.object_faults),
                  static_cast<unsigned long long>(s.gets_sent),
                  static_cast<unsigned long long>(s.gets_served),
                  static_cast<unsigned long long>(s.puts_sent),
                  static_cast<unsigned long long>(s.puts_served),
                  static_cast<unsigned long long>(s.calls_sent),
                  static_cast<unsigned long long>(s.calls_served));
      std::printf("replication bytes in %llu, out %llu\n",
                  static_cast<unsigned long long>(s.replication_bytes_in),
                  static_cast<unsigned long long>(s.replication_bytes_out));
      return true;
    }
    if (cmd == "metrics") {
      std::string format;
      in >> format;
      auto& reg = obiwan::MetricsRegistry::Default();
      std::fputs(
          (format == "prom" ? reg.DumpPrometheus() : reg.DumpText()).c_str(),
          stdout);
      return true;
    }
    if (cmd == "trace") {
      std::fputs(tracer.Dump().c_str(), stdout);
      if (tracer.dropped() > 0) {
        std::printf("  (%llu older events dropped)\n",
                    static_cast<unsigned long long>(tracer.dropped()));
      }
      return true;
    }
    if (cmd == "inspect") {
      // No argument: this site's own replica tables. With an address:
      // pull a remote site's report through the kInspect method.
      std::string addr;
      in >> addr;
      if (auto report = Report(addr)) {
        std::fputs(core::ToText(*report).c_str(), stdout);
      }
      return true;
    }
    if (cmd == "frontier") {
      std::string path;
      in >> path;
      const std::string dot = core::FrontierDot(site->Inspect());
      if (path.empty()) {
        std::fputs(dot.c_str(), stdout);
      } else if (WriteFile(path, dot)) {
        std::printf("frontier graph written to %s\n", path.c_str());
      }
      return true;
    }
    if (cmd == "top") {
      // Live watch: redraw the report every second. `top <addr>` watches a
      // remote site; a trailing number bounds the frames (default 5).
      std::string addr;
      int frames = 5;
      std::string word;
      while (in >> word) {
        // All-digits = frame count; anything else (host:port — which stoi
        // would happily misparse by its leading octet) is the address.
        if (word.find_first_not_of("0123456789") == std::string::npos) {
          frames = std::max(1, std::stoi(word));
        } else {
          addr = word;
        }
      }
      for (int frame = 0; frame < frames; ++frame) {
        auto report = Report(addr);
        if (!report) break;
        std::printf("\033[2J\033[H");  // clear + home, like top(1)
        std::printf("obiwan top — frame %d/%d\n", frame + 1, frames);
        std::fputs(core::ToText(*report).c_str(), stdout);
        std::fflush(stdout);
        if (frame + 1 < frames) {
          std::this_thread::sleep_for(std::chrono::seconds(1));
        }
      }
      std::printf("\n");
      return true;
    }
    if (cmd == "fleet") {
      // fleet <addr...>          one merged convergence report
      // fleet watch <addr...> [frames]   redraw every second
      bool watch = false;
      int frames = 5;
      std::vector<net::Address> targets;
      std::string word;
      while (in >> word) {
        if (word == "watch" && targets.empty()) {
          watch = true;
        } else if (word.find_first_not_of("0123456789") == std::string::npos) {
          frames = std::max(1, std::stoi(word));
        } else {
          targets.push_back(word);
        }
      }
      if (targets.empty()) {
        std::printf("usage: fleet [watch] <addr...> [frames]\n");
        return true;
      }
      obs::FleetMonitor monitor(*site, targets);
      if (!watch) frames = 1;
      for (int frame = 0; frame < frames; ++frame) {
        const obs::FleetReport report = monitor.PollOnce();
        if (watch) {
          std::printf("\033[2J\033[H");  // clear + home, like top(1)
          std::printf("obiwan fleet — frame %d/%d\n", frame + 1, frames);
        }
        std::fputs(obs::ToText(report).c_str(), stdout);
        std::fflush(stdout);
        if (frame + 1 < frames) {
          std::this_thread::sleep_for(std::chrono::seconds(1));
        }
      }
      return true;
    }

    in >> name;
    if (name.empty()) {
      std::printf("usage: %s <name> ...\n", cmd.c_str());
      return true;
    }

    if (cmd == "bind") {
      std::string text;
      std::getline(in, text);
      int count = 1;
      // Trailing integer = chain length.
      auto last_space = text.find_last_of(' ');
      if (last_space != std::string::npos) {
        try {
          count = std::max(1, std::stoi(text.substr(last_space + 1)));
          text = text.substr(0, last_space);
        } catch (...) {
        }
      }
      while (!text.empty() && text.front() == ' ') text.erase(0, 1);
      std::shared_ptr<Note> head, tail;
      for (int i = 0; i < count; ++i) {
        auto note = std::make_shared<Note>();
        note->text = count == 1 ? text : text + " #" + std::to_string(i);
        if (tail) {
          tail->next = note;
        } else {
          head = note;
        }
        tail = note;
      }
      Status s = site->Rebind(name, head);
      std::printf("%s\n", s.ok() ? "bound" : s.ToString().c_str());
      if (s.ok()) locals[name] = core::Ref<Note>(head);
      return true;
    }
    if (cmd == "lookup") {
      if (auto* remote = Remote(name)) {
        std::printf("%s -> %s at %s (class %s)\n", name.c_str(),
                    ToString(remote->id()).c_str(), remote->provider().c_str(),
                    remote->info().class_name.c_str());
      }
      return true;
    }
    if (cmd == "invoke") {
      if (auto* remote = Remote(name)) {
        auto r = remote->Invoke(&Note::Describe);
        std::printf("%s\n", r.ok() ? r->c_str() : r.status().ToString().c_str());
      }
      return true;
    }
    if (cmd == "replicate" || cmd == "cluster") {
      int batch = 1;
      in >> batch;
      if (auto* remote = Remote(name)) {
        auto mode = cmd == "cluster"
                        ? core::ReplicationMode::Cluster(
                              static_cast<std::uint32_t>(std::max(batch, 1)))
                        : core::ReplicationMode::Incremental(
                              static_cast<std::uint32_t>(std::max(batch, 1)));
        auto ref = remote->Replicate(mode);
        if (!ref.ok()) {
          std::printf("replicate failed: %s\n", ref.status().ToString().c_str());
          return true;
        }
        locals[name] = *ref;
        std::printf("replicated; %zu replicas on this site\n",
                    site->replica_count());
      }
      return true;
    }
    if (cmd == "show") {
      if (auto* ref = Local(name)) {
        int i = 0;
        core::Ref<Note>* cursor = ref;
        while (!cursor->IsEmpty()) {
          if (cursor->IsProxy()) {
            std::printf("  [%d] <not yet replicated — touch to fault in>\n", i);
            break;
          }
          std::printf("  [%d] %s\n", i, cursor->get()->text.c_str());
          cursor = &cursor->get()->next;
          ++i;
        }
      }
      return true;
    }
    if (cmd == "set" || cmd == "append") {
      std::string text;
      std::getline(in, text);
      while (!text.empty() && text.front() == ' ') text.erase(0, 1);
      if (auto* ref = Local(name)) {
        try {
          if (cmd == "set") {
            (*ref)->SetText(text);
          } else {
            (*ref)->SetText((*ref)->text + text);
          }
          std::printf("ok (local)\n");
        } catch (const core::ObjectFaultError& e) {
          std::printf("%s\n", e.what());
        }
      }
      return true;
    }
    if (cmd == "put" || cmd == "putcluster" || cmd == "refresh") {
      if (auto* ref = Local(name)) {
        Status s = cmd == "put"          ? site->Put(*ref)
                   : cmd == "putcluster" ? site->PutCluster(*ref)
                                         : site->Refresh(*ref);
        std::printf("%s\n", s.ok() ? "ok" : s.ToString().c_str());
      }
      return true;
    }
    std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    return true;
  }
};

}  // namespace

int main(int argc, char** argv) {
  SiteId site_id = 1;
  std::uint16_t port = 0;
  std::string admin;
  std::string registry;
  std::string flight_dump;
  std::string frontier_path;
  std::string inspect_addr;
  bool do_inspect = false;
  bool dump_stats = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--site" && i + 1 < argc) {
      site_id = static_cast<SiteId>(std::stoul(argv[++i]));
    } else if (arg == "--port" && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::stoul(argv[++i]));
    } else if (arg == "--admin" && i + 1 < argc) {
      admin = argv[++i];
    } else if (arg == "--registry" && i + 1 < argc) {
      registry = argv[++i];
    } else if (arg == "--stats") {
      dump_stats = true;
    } else if (arg == "--inspect") {
      // One-shot: print the replication-state report as JSON and exit. An
      // optional following address (not another flag) selects a remote site.
      do_inspect = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') inspect_addr = argv[++i];
    } else if (arg == "--frontier" && i + 1 < argc) {
      frontier_path = argv[++i];
    } else if (arg == "--flight-dump" && i + 1 < argc) {
      // Arm the post-mortem hook (first failed request dumps) and also write
      // the flight buffers on clean exit, so every session leaves a timeline.
      flight_dump = argv[++i];
      obiwan::FlightRecorder::Global().ArmDumpOnFailure(flight_dump);
    } else {
      std::fprintf(stderr,
                   "usage: obiwan_shell [--site N] [--port P] "
                   "[--admin P] [--registry host:port] [--stats]\n"
                   "                    [--inspect [host:port]] "
                   "[--frontier out.dot] [--flight-dump trace.json]\n");
      return 2;
    }
  }

  auto transport = net::TcpTransport::Create(port);
  if (!transport.ok()) {
    std::fprintf(stderr, "cannot open port: %s\n",
                 transport.status().ToString().c_str());
    return 1;
  }
  auto site = std::make_unique<core::Site>(site_id, std::move(*transport));
  if (!site->Start().ok()) return 1;
  site->UseRegistry(registry.empty() ? site->address() : registry);
  if (!admin.empty()) {
    Status served = site->ServeAdmin(admin);
    if (!served.ok()) {
      std::fprintf(stderr, "cannot serve admin endpoint: %s\n",
                   served.ToString().c_str());
      return 1;
    }
    std::printf("admin endpoint on http://%s/\n", site->admin_address().c_str());
  }

  if (do_inspect) {
    core::InspectReport report;
    if (inspect_addr.empty()) {
      report = site->Inspect();
    } else {
      auto remote = site->InspectRemote(inspect_addr);
      if (!remote.ok()) {
        std::fprintf(stderr, "inspect %s failed: %s\n", inspect_addr.c_str(),
                     remote.status().ToString().c_str());
        return 1;
      }
      report = *remote;
    }
    std::printf("%s\n", core::ToJson(report).c_str());
    if (!frontier_path.empty() &&
        !Shell::WriteFile(frontier_path, core::FrontierDot(report))) {
      return 1;
    }
    return 0;
  }

  Shell shell(std::move(site));
  shell.Run();
  if (!frontier_path.empty() &&
      Shell::WriteFile(frontier_path, core::FrontierDot(shell.site->Inspect()))) {
    std::printf("frontier graph written to %s\n", frontier_path.c_str());
  }
  if (dump_stats) {
    std::printf("\n--- metrics ---\n");
    std::fputs(obiwan::MetricsRegistry::Default().DumpText().c_str(), stdout);
  }
  if (!flight_dump.empty()) {
    Status s = obiwan::FlightRecorder::Global().WriteDump(flight_dump);
    std::printf("%s\n", s.ok() ? ("flight dump written to " + flight_dump).c_str()
                               : s.ToString().c_str());
  }
  return 0;
}
