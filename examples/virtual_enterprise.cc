// Virtual enterprise — cooperative work across organizations (§1: "a virtual
// enterprise grouping several companies from different countries").
//
// A supplier masters a product catalog (category -> linked product list).
// Two partner companies work with it over the WAN:
//   - the retailer replicates one category as a *cluster* (a dynamic cluster
//     whose frontier is chosen at run time, §2.2) to browse and reprice;
//   - the auditor walks the whole catalog incrementally, touching only what
//     the audit needs (the "only those objects that are really needed become
//     replicated" case of §2.1).
// Write-invalidate consistency keeps the partners from publishing prices
// based on stale data.
#include <cstdio>

#include "obiwan.h"

namespace {

using namespace obiwan;

class Product : public core::Shareable {
 public:
  OBIWAN_SHAREABLE(Product)

  std::string sku;
  std::string name;
  std::int64_t price_cents = 0;
  std::int64_t stock = 0;
  core::Ref<Product> next;

  std::int64_t Price() const { return price_cents; }
  void SetPrice(std::int64_t cents) { price_cents = cents; }
  std::int64_t Reserve(std::int64_t quantity) {
    std::int64_t granted = std::min(stock, quantity);
    stock -= granted;
    return granted;
  }

  static void ObiwanDefine(core::ClassDef<Product>& def) {
    def.Field("sku", &Product::sku)
        .Field("name", &Product::name)
        .Field("price_cents", &Product::price_cents)
        .Field("stock", &Product::stock)
        .Ref("next", &Product::next)
        .Method("Price", &Product::Price)
        .Method("SetPrice", &Product::SetPrice)
        .Method("Reserve", &Product::Reserve);
  }
};
OBIWAN_REGISTER_CLASS(Product);

class Category : public core::Shareable {
 public:
  OBIWAN_SHAREABLE(Category)

  std::string label;
  core::Ref<Product> products;
  core::Ref<Category> next_category;

  std::string Label() const { return label; }

  static void ObiwanDefine(core::ClassDef<Category>& def) {
    def.Field("label", &Category::label)
        .Ref("products", &Category::products)
        .Ref("next_category", &Category::next_category)
        .Method("Label", &Category::Label);
  }
};
OBIWAN_REGISTER_CLASS(Category);

std::shared_ptr<Category> BuildCatalog() {
  auto make_products = [](std::initializer_list<const char*> names,
                          std::int64_t base_price) {
    std::shared_ptr<Product> head, tail;
    std::int64_t price = base_price;
    int sku = 100;
    for (const char* name : names) {
      auto p = std::make_shared<Product>();
      p->sku = "SKU-" + std::to_string(sku++);
      p->name = name;
      p->price_cents = price += 250;
      p->stock = 40;
      if (tail) {
        tail->next = p;
      } else {
        head = p;
      }
      tail = p;
    }
    return head;
  };

  auto tools = std::make_shared<Category>();
  tools->label = "tools";
  tools->products = make_products({"hammer", "wrench", "torque driver"}, 1000);

  auto fasteners = std::make_shared<Category>();
  fasteners->label = "fasteners";
  fasteners->products = make_products({"M3 bolt", "M4 bolt", "M5 bolt", "washer"}, 10);

  tools->next_category = fasteners;
  return tools;
}

}  // namespace

int main() {
  VirtualClock clock;
  net::SimNetwork network(clock, net::kPaperLan);

  core::Site supplier(1, network.CreateEndpoint("supplier.pt"), clock);
  core::Site retailer(2, network.CreateEndpoint("retailer.de"), clock);
  core::Site auditor(3, network.CreateEndpoint("auditor.fr"), clock);
  if (!supplier.Start().ok() || !retailer.Start().ok() || !auditor.Start().ok()) {
    return 1;
  }
  supplier.HostRegistry();
  retailer.UseRegistry("supplier.pt");
  auditor.UseRegistry("supplier.pt");
  supplier.SetConsistencyPolicy(std::make_unique<consistency::WriteInvalidate>());

  auto catalog = BuildCatalog();
  if (!supplier.Bind("catalog", catalog).ok()) return 1;
  // The supplier also exposes each category's product list directly, so a
  // partner can pull exactly the slice it works on.
  if (!supplier.Bind("catalog/tools/products",
                     catalog->products.local()).ok()) {
    return 1;
  }

  // --- retailer: replicate the tools price list as one dynamic cluster --------
  auto retail_remote = retailer.Lookup<Product>("catalog/tools/products");
  if (!retail_remote.ok()) return 1;
  // Frontier chosen at run time: the three tools, nothing else (§2.2's
  // "replicate a part of the list ... a single pair of proxy-in/proxy-out").
  auto tools = retail_remote->Replicate(core::ReplicationMode::Cluster(3));
  if (!tools.ok()) return 1;
  std::printf("[retailer] cluster-replicated the tools price list (%zu replicas)\n",
              retailer.replica_count());

  // --- auditor: incremental walk, only what the audit touches ------------------
  auto audit_remote = auditor.Lookup<Category>("catalog");
  if (!audit_remote.ok()) return 1;
  auto audit_root = audit_remote->Replicate(core::ReplicationMode::Incremental(1));
  if (!audit_root.ok()) return 1;

  // The audit only needs the first product of each category.
  std::int64_t audited_cents = 0;
  core::Ref<Category>* cat = &*audit_root;
  while (!cat->IsEmpty()) {
    audited_cents += (*cat)->products->Price();  // faults exactly one product
    cat = &cat->get()->next_category;
  }
  std::printf("[auditor]  spot-checked first prices, total %lld cents, "
              "replicated only %zu objects of the catalog\n",
              static_cast<long long>(audited_cents), auditor.replica_count());

  // --- retailer publishes after the auditor replicated --------------------------
  // Reprice the whole list locally, then publish the cluster at once.
  core::Ref<Product>* p = &*tools;
  while (!p->IsEmpty() && p->IsLocal()) {
    (*p)->SetPrice((*p)->Price() * 110 / 100);  // +10% margin
    p = &p->get()->next;
  }
  if (!retailer.PutCluster(*tools).ok()) return 1;
  std::printf("[retailer] published +10%% repricing as one cluster put\n");

  // --- write-invalidate at work -------------------------------------------------
  // The repricing invalidated the auditor's replica of the first tool; a
  // blind write from the auditor is refused until it refreshes.
  core::Ref<Product>& first_tool = audit_root->get()->products;
  first_tool->SetPrice(1);
  Status stale_put = auditor.Put(first_tool);
  std::printf("[auditor]  stale write -> %s (expected conflict)\n",
              stale_put.ToString().c_str());
  if (!auditor.Refresh(first_tool).ok()) return 1;
  std::printf("[auditor]  refreshed price: %lld cents\n",
              static_cast<long long>(first_tool->Price()));

  std::printf("\nsimulated WAN time spent: %.1f ms\n",
              static_cast<double>(clock.Now()) / kMilli);
  return stale_put.code() == StatusCode::kConflict ? 0 : 1;
}
