// Virtual marketplace — the paper's remaining §1 scenario: "a virtual
// marketplace ... involving people anywhere in the world".
//
// An auction house masters lots; bidders replicate the lots they watch.
// Three mechanisms carry the action:
//   - push-updates dissemination keeps every watcher's replica current the
//     moment a bid lands (no polling),
//   - the update callback is the application's "outbid!" notification,
//   - bids themselves are optimistic transactions: read the lot, write the
//     new bid, commit — a concurrent bid invalidates the read set and the
//     loser retries against fresh state, so the final price is always the
//     result of a consistent bid sequence.
#include <cstdio>

#include "obiwan.h"

namespace {

using namespace obiwan;

class Lot : public core::Shareable {
 public:
  OBIWAN_SHAREABLE(Lot)

  std::string item;
  std::int64_t price_cents = 0;
  std::string leader;
  std::int64_t bids = 0;
  core::Ref<Lot> next;

  std::string Banner() const {
    return item + " at " + std::to_string(price_cents) + " (" +
           (leader.empty() ? "no bids" : leader) + ")";
  }

  static void ObiwanDefine(core::ClassDef<Lot>& def) {
    def.Field("item", &Lot::item)
        .Field("price_cents", &Lot::price_cents)
        .Field("leader", &Lot::leader)
        .Field("bids", &Lot::bids)
        .Ref("next", &Lot::next)
        .Method("Banner", &Lot::Banner);
  }
};
OBIWAN_REGISTER_CLASS(Lot);

struct Bidder {
  Bidder(std::string who, SiteId id, net::SimNetwork& network, VirtualClock& clock)
      : name(std::move(who)),
        site(id, network.CreateEndpoint(name), clock) {
    (void)site.Start();
    site.UseRegistry("auction-house");
    site.SetReplicaUpdateCallback([this](ObjectId, bool) { ++updates_seen; });
  }

  // Replicate the watched lot.
  bool Watch() {
    auto remote = site.Lookup<Lot>("lot");
    if (!remote.ok()) return false;
    auto ref = remote->Replicate(core::ReplicationMode::Incremental(1));
    if (!ref.ok()) return false;
    lot = *ref;
    return true;
  }

  // Try to outbid; returns the commit status.
  Status Bid(std::int64_t amount) {
    tx::Transaction txn(site);
    OBIWAN_RETURN_IF_ERROR(txn.Read(lot));
    if (amount <= lot->price_cents) {
      return FailedPreconditionError(name + " is already outbid at " +
                                     std::to_string(lot->price_cents));
    }
    lot->price_cents = amount;
    lot->leader = name;
    lot->bids += 1;
    OBIWAN_RETURN_IF_ERROR(txn.Write(lot));
    Status s = txn.Commit();
    if (!s.ok()) {
      // Lost the race: roll local state back to the master's.
      (void)site.Refresh(lot);
    }
    return s;
  }

  std::string name;
  core::Site site;
  core::Ref<Lot> lot;
  int updates_seen = 0;
};

}  // namespace

int main() {
  VirtualClock clock;
  net::SimNetwork network(clock, net::kPaperLan);

  core::Site house(1, network.CreateEndpoint("auction-house"), clock);
  if (!house.Start().ok()) return 1;
  house.HostRegistry();
  house.SetConsistencyPolicy(std::make_unique<core::PushUpdates>());

  auto lot = std::make_shared<Lot>();
  lot->item = "1962 Jaguar E-Type";
  lot->price_cents = 500'000;
  if (!house.Bind("lot", lot).ok()) return 1;

  Bidder alice("alice", 2, network, clock);
  Bidder bruno("bruno", 3, network, clock);
  if (!alice.Watch() || !bruno.Watch()) return 1;
  std::printf("lot on offer: %s\n\n", lot->Banner().c_str());

  // Round 1: both bid from the same observed price — one must lose and retry.
  Status a = alice.Bid(600'000);
  std::printf("[alice] bid 600000 -> %s\n", a.ToString().c_str());
  Status b = bruno.Bid(550'000);  // stale: alice's bid already landed
  std::printf("[bruno] bid 550000 -> %s\n", b.ToString().c_str());

  // Bruno's replica was refreshed on conflict (and pushed on alice's win):
  // he sees the new price and beats it.
  std::printf("[bruno] sees: %s (push notifications so far: %d)\n",
              bruno.lot->Banner().c_str(), bruno.updates_seen);
  Status b2 = bruno.Bid(650'000);
  std::printf("[bruno] bid 650000 -> %s\n", b2.ToString().c_str());

  // Alice got the outbid push without polling.
  std::printf("[alice] sees: %s (push notifications so far: %d)\n",
              alice.lot->Banner().c_str(), alice.updates_seen);
  Status a2 = alice.Bid(700'000);
  std::printf("[alice] bid 700000 -> %s\n\n", a2.ToString().c_str());

  std::printf("final at the house: %s after %lld bids\n", lot->Banner().c_str(),
              static_cast<long long>(lot->bids));

  bool ok = a.ok() && !b.ok() && b2.ok() && a2.ok() && lot->leader == "alice" &&
            lot->price_cents == 700'000 && alice.updates_seen > 0 &&
            bruno.updates_seen > 0;
  return ok ? 0 : 1;
}
