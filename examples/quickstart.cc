// Quickstart: two sites, one shared object graph.
//
// Walks the paper's core loop end to end:
//   1. declare a shareable class,
//   2. bind a master graph in the name server at one site,
//   3. look it up from another site,
//   4. invoke it remotely (RMI),
//   5. replicate it incrementally and invoke locally (LMI),
//   6. modify the replica and put it back to the master.
#include <cstdio>

#include "obiwan.h"

namespace {

using namespace obiwan;

class Greeting : public core::Shareable {
 public:
  OBIWAN_SHAREABLE(Greeting)

  std::string text;
  std::int64_t times_shown = 0;
  core::Ref<Greeting> next;

  std::string Show() {
    ++times_shown;
    return text;
  }
  void SetText(std::string t) { text = std::move(t); }

  static void ObiwanDefine(core::ClassDef<Greeting>& def) {
    def.Field("text", &Greeting::text)
        .Field("times_shown", &Greeting::times_shown)
        .Ref("next", &Greeting::next)
        .Method("Show", &Greeting::Show)
        .Method("SetText", &Greeting::SetText);
  }
};
OBIWAN_REGISTER_CLASS(Greeting);

}  // namespace

int main() {
  net::LoopbackNetwork network;

  // A "server" site mastering the objects and hosting the name server.
  core::Site server(/*id=*/1, network.CreateEndpoint("server"));
  if (!server.Start().ok()) return 1;
  server.HostRegistry();

  auto hello = std::make_shared<Greeting>();
  hello->text = "hello from the server";
  auto world = std::make_shared<Greeting>();
  world->text = "...and a second object, reached through the first";
  hello->next = world;

  if (!server.Bind("greeting", hello).ok()) return 1;

  // A "client" site on the same network.
  core::Site client(/*id=*/2, network.CreateEndpoint("client"));
  if (!client.Start().ok()) return 1;
  client.UseRegistry("server");

  auto remote = client.Lookup<Greeting>("greeting");
  if (!remote.ok()) {
    std::fprintf(stderr, "lookup failed: %s\n", remote.status().ToString().c_str());
    return 1;
  }

  // --- RMI: the method runs at the server -----------------------------------
  auto shown = remote->Invoke(&Greeting::Show);
  std::printf("RMI result : %s\n", shown.ok() ? shown->c_str() : "error");
  std::printf("master hits: %lld (the master counted the call)\n",
              static_cast<long long>(hello->times_shown));

  // --- LMI: replicate, then invoke locally ----------------------------------
  auto replica = remote->Replicate(core::ReplicationMode::Incremental(1));
  if (!replica.ok()) return 1;
  core::Ref<Greeting> ref = *replica;

  std::printf("LMI result : %s\n", ref->Show().c_str());
  std::printf("master hits: %lld (unchanged - the call was local)\n",
              static_cast<long long>(hello->times_shown));

  // Touching the second object faults it in transparently.
  std::printf("faulted in : %s\n", ref->next->Show().c_str());

  // --- Put: push the replica's state back to the master -----------------------
  ref->SetText("updated on the client while working locally");
  if (!client.Put(ref).ok()) return 1;
  std::printf("master text: %s\n", hello->text.c_str());

  std::printf("replicas on client: %zu, object faults: %llu\n",
              client.replica_count(),
              static_cast<unsigned long long>(client.stats().object_faults));
  return 0;
}
