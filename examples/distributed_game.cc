// Distributed game — "a distributed game involving people anywhere in the
// world" (§1).
//
// The game server masters a world of connected rooms (an object graph with
// cycles — corridors loop back). A player's client replicates the region
// around the avatar on demand: entering a room faults in its neighbourhood
// with a depth-bounded cluster, so memory on the info-appliance stays
// proportional to what the player has actually seen (§2.1's limited-memory
// case). Actions (taking loot) go through RMI when latency matters less than
// authority, and through local replicas when exploring.
#include <cstdio>

#include <vector>

#include "obiwan.h"

namespace {

using namespace obiwan;

class Room : public core::Shareable {
 public:
  OBIWAN_SHAREABLE(Room)

  std::string name;
  std::int64_t loot = 0;
  core::Ref<Room> north;
  core::Ref<Room> east;

  std::string Name() const { return name; }
  // Server-authoritative action: only one player can take the loot.
  std::int64_t TakeLoot() {
    std::int64_t taken = loot;
    loot = 0;
    return taken;
  }

  static void ObiwanDefine(core::ClassDef<Room>& def) {
    def.Field("name", &Room::name)
        .Field("loot", &Room::loot)
        .Ref("north", &Room::north)
        .Ref("east", &Room::east)
        .Method("Name", &Room::Name)
        .Method("TakeLoot", &Room::TakeLoot);
  }
};
OBIWAN_REGISTER_CLASS(Room);

// A 4x4 torus of rooms: north and east wrap around, so the graph is cyclic.
constexpr int kSide = 4;

std::shared_ptr<Room> BuildWorld(std::vector<std::shared_ptr<Room>>& out) {
  out.clear();
  for (int y = 0; y < kSide; ++y) {
    for (int x = 0; x < kSide; ++x) {
      auto room = std::make_shared<Room>();
      room->name = "room(" + std::to_string(x) + "," + std::to_string(y) + ")";
      room->loot = (x + y) % 3 == 0 ? 10 * (x + y + 1) : 0;
      out.push_back(std::move(room));
    }
  }
  auto at = [&](int x, int y) -> std::shared_ptr<Room>& {
    return out[static_cast<std::size_t>(((y + kSide) % kSide) * kSide +
                                        (x + kSide) % kSide)];
  };
  for (int y = 0; y < kSide; ++y) {
    for (int x = 0; x < kSide; ++x) {
      at(x, y)->north = at(x, y + 1);
      at(x, y)->east = at(x + 1, y);
    }
  }
  return out[0];
}

}  // namespace

int main() {
  VirtualClock clock;
  net::SimNetwork network(clock, net::kPaperLan);

  core::Site server(1, network.CreateEndpoint("game-server"), clock);
  core::Site player(2, network.CreateEndpoint("player"), clock);
  if (!server.Start().ok() || !player.Start().ok()) return 1;
  server.HostRegistry();
  player.UseRegistry("game-server");

  std::vector<std::shared_ptr<Room>> world;
  auto spawn = BuildWorld(world);
  if (!server.Bind("spawn", spawn).ok()) return 1;

  auto remote = player.Lookup<Room>("spawn");
  if (!remote.ok()) return 1;

  // Enter the world: replicate the spawn room plus a 1-step neighbourhood.
  auto here_result = remote->Replicate(core::ReplicationMode::ClusterDepth(1));
  if (!here_result.ok()) return 1;
  core::Ref<Room> here = *here_result;
  std::printf("spawned in %s — %zu rooms replicated (of %d in the world)\n",
              here->Name().c_str(), player.replica_count(), kSide * kSide);

  // Explore: each move may fault in the next neighbourhood; rooms already
  // seen cost nothing (identity preservation keeps one replica per room,
  // even though the torus loops back onto itself).
  const char* path = "NNEENE NEE";  // wraps around the torus
  for (const char* step = path; *step != '\0'; ++step) {
    if (*step == ' ') continue;
    core::Ref<Room>& next = (*step == 'N') ? here.get()->north : here.get()->east;
    std::size_t before = player.replica_count();
    here = next;
    std::string name = here->Name();  // faults in the room if needed
    std::printf("moved %c into %-10s  (replicas %zu -> %zu)\n", *step,
                name.c_str(), before, player.replica_count());
  }

  // The world is small enough that the loop brought us through every corner;
  // check identity: walking 4 steps north returns to the same *object*.
  Room* start = here.get();
  core::Ref<Room>* walk = &here;
  for (int i = 0; i < kSide; ++i) {
    walk = &(*walk)->north;  // operator-> faults in unexplored rooms
  }
  if (!walk->Demand().ok()) return 1;
  std::printf("torus check: 4 steps north returns to the same replica: %s\n",
              walk->get() == start ? "yes" : "NO");

  // Authoritative action via RMI: loot is granted by the master, so two
  // players cannot both take it — the local replica may be out of date.
  auto looted = player.Lookup<Room>("spawn")->Invoke(&Room::TakeLoot);
  if (!looted.ok()) return 1;
  std::printf("took %lld loot from the spawn room via RMI (server-authoritative)\n",
              static_cast<long long>(*looted));
  auto second = player.Lookup<Room>("spawn")->Invoke(&Room::TakeLoot);
  std::printf("second take yields %lld (already looted at the master)\n",
              static_cast<long long>(second.ok() ? *second : -1));

  std::printf("\nreplicas on client at exit: %zu; object faults: %llu; "
              "simulated time: %.1f ms\n",
              player.replica_count(),
              static_cast<unsigned long long>(player.stats().object_faults),
              static_cast<double>(clock.Now()) / kMilli);
  return 0;
}
