// Mobile agenda — the paper's PDA story (§1).
//
// A user keeps an agenda on the office PC, replicates it onto a PDA before
// leaving, keeps reading *and editing* it through disconnections (taxi,
// airport), and reintegrates when connectivity returns. A colleague edits
// the same agenda meanwhile; the version-vector policy detects the concurrent
// update and the PDA resolves it with the refresh-and-retry loop.
//
// Runs on the simulated wireless network so the printed timings reflect the
// link the paper targets.
#include <cstdio>

#include "obiwan.h"

namespace {

using namespace obiwan;

class Entry : public core::Shareable {
 public:
  OBIWAN_SHAREABLE(Entry)

  std::string when;
  std::string what;
  bool done = false;
  core::Ref<Entry> next;

  std::string Describe() const {
    return when + "  " + what + (done ? "  [done]" : "");
  }
  void MarkDone() { done = true; }
  void Reschedule(std::string new_when) { when = std::move(new_when); }

  static void ObiwanDefine(core::ClassDef<Entry>& def) {
    def.Field("when", &Entry::when)
        .Field("what", &Entry::what)
        .Field("done", &Entry::done)
        .Ref("next", &Entry::next)
        .Method("Describe", &Entry::Describe)
        .Method("MarkDone", &Entry::MarkDone)
        .Method("Reschedule", &Entry::Reschedule);
  }
};
OBIWAN_REGISTER_CLASS(Entry);

std::shared_ptr<Entry> MakeAgenda() {
  const char* items[][2] = {
      {"09:00", "standup with the virtual team"},
      {"11:00", "review OBIWAN replication design"},
      {"14:00", "flight to Lisbon"},
      {"17:30", "taxi to INESC"},
      {"19:00", "dinner at Alfama"},
  };
  std::shared_ptr<Entry> head, tail;
  for (auto& item : items) {
    auto e = std::make_shared<Entry>();
    e->when = item[0];
    e->what = item[1];
    if (tail) {
      tail->next = e;
    } else {
      head = e;
    }
    tail = e;
  }
  return head;
}

void PrintAgenda(const char* title, core::Ref<Entry>& head) {
  std::printf("%s\n", title);
  core::Ref<Entry>* cursor = &head;
  while (!cursor->IsEmpty()) {
    std::printf("  %s\n", (*cursor)->Describe().c_str());
    cursor = &cursor->get()->next;
  }
}

}  // namespace

int main() {
  VirtualClock clock;
  net::SimNetwork network(clock, net::kPaperWireless);

  core::Site office(1, network.CreateEndpoint("office"), clock);
  core::Site pda(2, network.CreateEndpoint("pda"), clock);
  core::Site colleague(3, network.CreateEndpoint("colleague"), clock);
  if (!office.Start().ok() || !pda.Start().ok() || !colleague.Start().ok()) return 1;
  office.HostRegistry();
  pda.UseRegistry("office");
  colleague.UseRegistry("office");

  // Concurrent edits must be detected, not silently lost.
  office.SetConsistencyPolicy(std::make_unique<consistency::VersionVectorPolicy>(1));
  pda.SetConsistencyPolicy(std::make_unique<consistency::VersionVectorPolicy>(2));
  colleague.SetConsistencyPolicy(std::make_unique<consistency::VersionVectorPolicy>(3));

  auto agenda = MakeAgenda();
  if (!office.Bind("agenda", agenda).ok()) return 1;

  // --- before leaving: pin the whole agenda on the PDA ------------------------
  auto remote = pda.Lookup<Entry>("agenda");
  if (!remote.ok()) return 1;
  Nanos t0 = clock.Now();
  auto replica = remote->Replicate(core::ReplicationMode::Cluster(5));
  if (!replica.ok()) return 1;
  core::Ref<Entry> mine = *replica;
  std::printf("replicated agenda in %.1f ms over the wireless link\n\n",
              static_cast<double>(clock.Now() - t0) / kMilli);

  // --- in the taxi: no network, keep working ---------------------------------
  network.SetEndpointUp("pda", false);
  PrintAgenda("[offline] reading the agenda in the taxi:", mine);

  mine->MarkDone();                              // standup happened
  mine->next->next->Reschedule("15:30");         // flight delayed
  std::printf("\n[offline] marked the standup done, rescheduled the flight\n");

  // A put while disconnected fails loudly — the edit stays local.
  Status offline_put = pda.PutCluster(mine);
  std::printf("[offline] put -> %s (expected)\n\n", offline_put.ToString().c_str());

  // --- meanwhile, a colleague edits the same agenda ---------------------------
  auto colleague_remote = colleague.Lookup<Entry>("agenda");
  if (!colleague_remote.ok()) return 1;
  auto theirs = colleague_remote->Replicate(core::ReplicationMode::Cluster(5));
  if (!theirs.ok()) return 1;
  (*theirs)->next->Reschedule("10:00");  // moves the design review
  if (!colleague.PutCluster(*theirs).ok()) return 1;
  std::printf("[colleague] moved the design review to 10:00 and synced\n\n");

  // --- back online: reintegrate -------------------------------------------------
  network.SetEndpointUp("pda", true);
  Status put = pda.PutCluster(mine);
  std::printf("[online] PDA put -> %s\n", put.ToString().c_str());
  if (put.code() == StatusCode::kConflict) {
    // The offline-sync loop: pull the latest state, redo local edits, retry.
    std::printf("[online] conflict detected; refreshing and reapplying edits\n");
    if (!pda.Refresh(mine).ok()) return 1;
    mine->MarkDone();
    mine->next->next->Reschedule("15:30");
    put = pda.PutCluster(mine);
    std::printf("[online] retry put -> %s\n", put.ToString().c_str());
  }

  core::Ref<Entry> master_ref(agenda);
  std::printf("\n");
  PrintAgenda("final agenda at the office (both edits merged):", master_ref);
  return put.ok() ? 0 : 1;
}
