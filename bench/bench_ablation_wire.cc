// A2 — ablation: wire-format throughput.
//
// §4.3 concludes that once proxy pairs are amortized, "the most significant
// performance cost is data serialization ... and network communication".
// This bench measures the real serialization substrate: encode/decode
// throughput for object records of the paper's three sizes, plus the
// primitive costs underneath.
#include <benchmark/benchmark.h>

#include "core/messages.h"
#include "harness.h"

namespace obiwan::bench {
namespace {

void BM_EncodeFields(benchmark::State& state) {
  test::Node node;
  node.label = "bench-node";
  node.value = 123456;
  node.payload.assign(static_cast<std::size_t>(state.range(0)), 0xAB);
  const core::ClassInfo& info = core::ClassInfoFor<test::Node>();
  for (auto _ : state) {
    wire::Writer w;
    info.EncodeFields(node, w);
    benchmark::DoNotOptimize(w.data().data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeFields)->Arg(64)->Arg(1024)->Arg(16 * 1024);

void BM_DecodeFields(benchmark::State& state) {
  test::Node node;
  node.label = "bench-node";
  node.value = 123456;
  node.payload.assign(static_cast<std::size_t>(state.range(0)), 0xAB);
  const core::ClassInfo& info = core::ClassInfoFor<test::Node>();
  wire::Writer w;
  info.EncodeFields(node, w);
  test::Node out;
  for (auto _ : state) {
    wire::Reader r(AsView(w.data()));
    benchmark::DoNotOptimize(info.DecodeFields(out, r).ok());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeFields)->Arg(64)->Arg(1024)->Arg(16 * 1024);

void BM_EncodeObjectRecordBatch(benchmark::State& state) {
  // A replication batch like ServeGet builds: N records of 1 KB objects.
  std::vector<core::ObjectRecord> batch;
  for (int i = 0; i < state.range(0); ++i) {
    core::ObjectRecord rec;
    rec.id = {2, static_cast<std::uint64_t>(i + 1)};
    rec.class_name = "Node";
    rec.version = 1;
    rec.fields.assign(1024, 0xCD);
    rec.refs.push_back(core::RefEntry::Inline({2, static_cast<std::uint64_t>(i + 2)}));
    rec.provider = core::ProxyDescriptor{{2, static_cast<std::uint64_t>(i + 1)},
                                         "s2",
                                         rec.id,
                                         "Node"};
    batch.push_back(std::move(rec));
  }
  for (auto _ : state) {
    wire::Writer w;
    wire::Encode(w, batch);
    benchmark::DoNotOptimize(w.data().data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeObjectRecordBatch)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

void BM_DecodeObjectRecordBatch(benchmark::State& state) {
  std::vector<core::ObjectRecord> batch;
  for (int i = 0; i < state.range(0); ++i) {
    core::ObjectRecord rec;
    rec.id = {2, static_cast<std::uint64_t>(i + 1)};
    rec.class_name = "Node";
    rec.version = 1;
    rec.fields.assign(1024, 0xCD);
    rec.refs.push_back(core::RefEntry::Inline({2, static_cast<std::uint64_t>(i + 2)}));
    batch.push_back(std::move(rec));
  }
  wire::Writer w;
  wire::Encode(w, batch);
  for (auto _ : state) {
    wire::Reader r(AsView(w.data()));
    benchmark::DoNotOptimize(wire::Decode<std::vector<core::ObjectRecord>>(r));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeObjectRecordBatch)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

void BM_Varint(benchmark::State& state) {
  std::uint64_t v = 0;
  for (auto _ : state) {
    wire::Writer w;
    for (int i = 0; i < 64; ++i) w.Varint(v += 0x12345);
    benchmark::DoNotOptimize(w.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_Varint);

void BM_ArgTupleMarshalling(benchmark::State& state) {
  // The per-call marshalling of a typical RMI signature.
  for (auto _ : state) {
    wire::Writer w;
    wire::Encode(w, std::make_tuple(std::string("prefix"), std::int32_t{42}, true));
    wire::Reader r(AsView(w.data()));
    benchmark::DoNotOptimize(
        wire::Decode<std::tuple<std::string, std::int32_t, bool>>(r));
  }
}
BENCHMARK(BM_ArgTupleMarshalling);

}  // namespace
}  // namespace obiwan::bench

int main(int argc, char** argv) {
  std::printf("=== Ablation A2: wire-format (serialization) throughput ===\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
