// Scale curves for the sharded object table — throughput vs cores and
// throughput vs resident object count.
//
// bench_contention measures how long threads *wait*; this bench measures
// what they *get done*. Two series, both over a real TCP site pair:
//
//   threads  : T demander threads on disjoint replicated chains, each op a
//              shard-guarded chain walk plus version/staleness probes, with
//              a Refresh round trip every 16th op. Under the old single
//              site mutex every local op serialized against every other
//              thread and against the protocol paths; with the sharded
//              table, disjoint chains touch disjoint shards and the only
//              shared state is the TCP pair. Throughput must not fall as
//              threads are added (CI gates thr_kops). Refresh round trips
//              overlap across threads, so the curve rises even on one core.
//
//   objects  : one thread over N resident replicas (N/128 chains of 128),
//              random version/staleness probes with a head Refresh every
//              16th op, gauge rescans throttled via
//              SetGaugeRefreshInterval. The table's O(1) sharded lookups
//              and the throttled O(N) gauge scan are exactly what keeps
//              this curve flat; before PR 8 every refresh rescanned every
//              object under the global lock.
//
// The JSON's "scale" section records both curves for CI.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/contention.h"
#include "harness.h"
#include "net/tcp.h"

namespace obiwan::bench {
namespace {

const std::vector<long> kThreadCounts = {1, 2, 4, 8};
const std::vector<long> kObjectCounts = {256, 1024, 4096, 16384};
constexpr int kThreadChainLength = 64;   // objects per thread, threads series
constexpr int kObjectChainLength = 128;  // objects per chain, objects series
constexpr int kOpsPerThread = 256;
constexpr int kRefreshEvery = 16;

// One TCP provider/demander pair, fresh per measured run.
struct SitePair {
  SitePair() {
    auto provider_tcp = net::TcpTransport::Create(0);
    auto demander_tcp = net::TcpTransport::Create(0);
    if (!provider_tcp.ok() || !demander_tcp.ok()) return;
    provider = std::make_unique<core::Site>(2, std::move(*provider_tcp));
    demander = std::make_unique<core::Site>(1, std::move(*demander_tcp));
    if (!provider->Start().ok() || !demander->Start().ok()) return;
    provider->HostRegistry();
    demander->UseRegistry(provider->address());
    ok = true;
  }

  // Replicate a fresh chain of `length` nodes and return a ref per node.
  std::vector<core::Ref<test::Node>> ReplicateChain(int length,
                                                    const std::string& name) {
    std::vector<core::Ref<test::Node>> nodes;
    if (!provider->Rebind(name, test::MakeChain(length, 32, name)).ok()) {
      return nodes;
    }
    auto remote = demander->Lookup<test::Node>(name);
    if (!remote.ok()) return nodes;
    auto head = remote->Replicate(core::ReplicationMode::Incremental(length));
    if (!head.ok()) return nodes;
    for (core::Ref<test::Node>* cursor = &*head;
         !cursor->IsEmpty() && !cursor->IsProxy();
         cursor = &cursor->get()->next) {
      nodes.push_back(*cursor);
    }
    return nodes;
  }

  bool ok = false;
  std::unique_ptr<core::Site> provider;
  std::unique_ptr<core::Site> demander;
};

// Throughput in kops/s: T threads on disjoint chains, mostly-local op mix.
double RunThreadSeries(long threads) {
  SitePair pair;
  if (!pair.ok) return 0;

  std::vector<std::vector<core::Ref<test::Node>>> chains;
  for (long t = 0; t < threads; ++t) {
    chains.push_back(pair.ReplicateChain(kThreadChainLength,
                                         "chain" + std::to_string(t)));
    if (chains.back().empty()) return 0;
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (long t = 0; t < threads; ++t) {
    workers.emplace_back([&pair, &chains, t] {
      std::vector<core::Ref<test::Node>>& chain = chains[t];
      core::Ref<test::Node>& head = chain.front();
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (i % kRefreshEvery == kRefreshEvery - 1) {
          (void)pair.demander->Refresh(head);
          continue;
        }
        // Shard-guarded local work: walk the chain, then probe the
        // version/staleness of one node — the kind of read mix an
        // application thread issues between synchronisations.
        pair.demander->WithObjectLock(head, [&chain] {
          std::int64_t sum = 0;
          for (core::Ref<test::Node>& node : chain) sum += node.get()->value;
          return sum;
        });
        const core::Ref<test::Node>& probe = chain[i % chain.size()];
        (void)pair.demander->ReplicaVersion(probe);
        (void)pair.demander->IsStale(probe);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
  const double ops = static_cast<double>(threads) * kOpsPerThread;
  return wall_s > 0 ? ops / wall_s / 1000.0 : 0;
}

// Throughput in kops/s: one thread probing N resident replicas.
double RunObjectSeries(long objects) {
  SitePair pair;
  if (!pair.ok) return 0;
  // The point of the series is table scale, not gauge scale: throttle the
  // O(N) replication-gauge rescan so each op measures the sharded lookups.
  pair.provider->SetGaugeRefreshInterval(100 * kMilli);
  pair.demander->SetGaugeRefreshInterval(100 * kMilli);

  std::vector<core::Ref<test::Node>> all;
  std::vector<core::Ref<test::Node>> heads;
  for (long n = 0; n < objects; n += kObjectChainLength) {
    std::vector<core::Ref<test::Node>> chain = pair.ReplicateChain(
        kObjectChainLength, "c" + std::to_string(n / kObjectChainLength));
    if (chain.empty()) return 0;
    heads.push_back(chain.front());
    all.insert(all.end(), chain.begin(), chain.end());
  }

  const long ops = 2 * objects;
  const auto start = std::chrono::steady_clock::now();
  for (long i = 0; i < ops; ++i) {
    if (i % kRefreshEvery == kRefreshEvery - 1) {
      (void)pair.demander->Refresh(heads[(i / kRefreshEvery) % heads.size()]);
      continue;
    }
    // Fixed multiplicative stride: deterministic, shard-hostile access order.
    const std::size_t idx =
        (static_cast<std::size_t>(i) * 2654435761u) % all.size();
    (void)pair.demander->ReplicaVersion(all[idx]);
    (void)pair.demander->IsStale(all[idx]);
  }
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
  return wall_s > 0 ? static_cast<double>(ops) / wall_s / 1000.0 : 0;
}

std::string JsonArray(const std::vector<double>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    out += JsonNumber(values[i]);
  }
  return out + "]";
}

std::string JsonLongArray(const std::vector<long>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(values[i]);
  }
  return out + "]";
}

void PaperSeries() {
  std::vector<Series> thread_series = {{"thr_kops", {}}};
  for (long threads : kThreadCounts) {
    thread_series[0].values.push_back(RunThreadSeries(threads));
  }
  PrintTable("Scale: throughput vs demander threads (disjoint chains, TCP)",
             "threads", kThreadCounts, thread_series);

  std::vector<Series> object_series = {{"obj_thr_kops", {}}};
  for (long objects : kObjectCounts) {
    object_series[0].values.push_back(RunObjectSeries(objects));
  }
  PrintTable("Scale: throughput vs resident replicas (one thread, TCP)",
             "objects", kObjectCounts, object_series);
  std::printf("\n%s", LockHotnessText(
                          LockHotness(MetricsRegistry::Default())).c_str());

  const std::string scale_section =
      "\"scale\":{\"threads\":" + JsonLongArray(kThreadCounts) +
      ",\"thr_kops\":" + JsonArray(thread_series[0].values) +
      ",\"objects\":" + JsonLongArray(kObjectCounts) +
      ",\"obj_thr_kops\":" + JsonArray(object_series[0].values) + "}";
  WriteBenchJson("scale", "threads", kThreadCounts, thread_series,
                 {scale_section});
}

// The table's uncontended fast path: one ShardGuard acquire/release plus a
// record lookup, the unit cost every protocol step now pays instead of the
// global mutex.
void BM_ShardGuardLookup(benchmark::State& state) {
  core::ObjectTable table;
  auto obj = std::make_shared<test::Node>();
  const ObjectId id{1, 42};
  {
    core::ObjectTable::ShardGuard guard(table, id);
    core::MasterEntry record;
    record.obj = obj;
    table.EmplaceMaster(id, std::move(record));
  }
  for (auto _ : state) {
    core::ObjectTable::ShardGuard guard(table, id);
    benchmark::DoNotOptimize(table.Master(id));
  }
}
BENCHMARK(BM_ShardGuardLookup);

}  // namespace
}  // namespace obiwan::bench

int main(int argc, char** argv) {
  obiwan::bench::PaperSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
