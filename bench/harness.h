// Shared benchmark harness.
//
// Every figure bench runs on the calibrated simulated network (net::kPaperLan:
// empty RMI round trip = 2.8 ms, 10 Mbit/s payload bandwidth — the paper's
// testbed constants) with a virtual clock, so the *network* component of each
// experiment is deterministic. Local CPU work (marshalling, proxy creation,
// local method invocation) is measured for real and added in, mirroring how
// the paper's wall-clock numbers combine the two. Each binary prints the
// paper-style series first, then runs its google-benchmark micro-benchmarks.
#pragma once

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "common/trace_collector.h"
#include "obiwan.h"
#include "test_objects.h"

namespace obiwan::bench {

// Two sites on the paper's LAN: "s2" masters objects, "s1" demands them.
struct PaperEnv {
  explicit PaperEnv(net::LinkParams link = net::kPaperLan)
      : network(clock, link) {
    provider = std::make_unique<core::Site>(2, network.CreateEndpoint("s2"), clock);
    demander = std::make_unique<core::Site>(1, network.CreateEndpoint("s1"), clock);
    (void)provider->Start();
    (void)demander->Start();
    provider->HostRegistry();
    demander->UseRegistry("s2");
    // Calibrated per-proxy-pair export cost of the 2002 Java substrate
    // (UnicastRemoteObject export + stub bookkeeping) — the per-object
    // overhead §4.2 measures and clustering eliminates.
    provider->SetProxyExportCost(kProxyExportCost);
  }

  // Route both sites and the network into one tracer so WriteChromeTrace can
  // export the run as a single timeline. Off by default: the paper-series
  // numbers are measured untraced.
  void EnableTracing() {
    provider->SetTracer(&tracer);
    demander->SetTracer(&tracer);
    network.SetTracer(&tracer);
    phase_sinks.SetAttached(&tracer);
  }

  // Export everything recorded since EnableTracing() as Chrome trace JSON
  // (load in Perfetto / chrome://tracing).
  void WriteChromeTrace(const std::string& name) {
    TraceCollector collector;
    collector.Attach(&tracer);
    const std::string path = "BENCH_" + name + ".trace.json";
    Status s = collector.WriteChromeTrace(path);
    if (s.ok()) {
      std::printf("wrote %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "trace export failed: %s\n", s.ToString().c_str());
    }
  }

  static constexpr Nanos kProxyExportCost = 500 * kMicro;

  VirtualClock clock;
  net::SimNetwork network;
  std::unique_ptr<core::Site> provider;
  std::unique_ptr<core::Site> demander;
  Tracer tracer{8192};
  TraceSinks phase_sinks;  // records at SiteId 0 ("network/harness")
};

// Wraps one benchmark phase in a span at pid 0, so a traced run shows which
// protocol activity belongs to which phase of the experiment.
class PhaseSpan {
 public:
  PhaseSpan(PaperEnv& env, const std::string& name)
      : flow_(TraceContext::CurrentOrNew(0)),
        span_(&env.phase_sinks, env.clock, kInvalidSite, "phase", name,
              TraceContext::Current()) {}

 private:
  TraceContext::Scope flow_;
  SpanScope span_;
};

// Combined stopwatch: virtual network time + real CPU time.
class Stopwatch {
 public:
  explicit Stopwatch(VirtualClock& clock)
      : clock_(clock),
        sim_start_(clock.Now()),
        real_start_(std::chrono::steady_clock::now()) {}

  double ElapsedMs() const {
    double sim = static_cast<double>(clock_.Now() - sim_start_) / kMilli;
    double real = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - real_start_)
                      .count();
    return sim + real;
  }

 private:
  VirtualClock& clock_;
  Nanos sim_start_;
  std::chrono::steady_clock::time_point real_start_;
};

// Print a paper-style series table: one row per x value, one column per
// series.
struct Series {
  std::string name;
  std::vector<double> values;  // aligned with the x axis
};

inline void PrintTable(const std::string& title, const std::string& x_label,
                       const std::vector<long>& xs,
                       const std::vector<Series>& series) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%14s", x_label.c_str());
  for (const Series& s : series) std::printf("%16s", s.name.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::printf("%14ld", xs[i]);
    for (const Series& s : series) {
      std::printf("%16.3f", i < s.values.size() ? s.values[i] : 0.0);
    }
    std::printf("\n");
  }
}

// Client-side RPC ops instrumented by core::Site (histogram label "op").
inline const std::vector<std::string>& RpcOps() {
  static const std::vector<std::string> ops = {
      "call", "get", "put", "commit", "ping", "release", "renew", "notify"};
  return ops;
}

// Per-op latency percentiles, aggregated across every site the benchmark
// created (subset label match over the per-instance series).
inline void PrintRpcLatency() {
  auto& reg = MetricsRegistry::Default();
  std::printf(
      "\n=== Client RPC latency on the site clock "
      "(obiwan_rmi_client_latency_ns) ===\n");
  std::printf("%10s%12s%14s%14s%14s%14s\n", "op", "count", "p50 (ns)",
              "p95 (ns)", "p99 (ns)", "max (ns)");
  for (const std::string& op : RpcOps()) {
    HistogramSummary s =
        reg.SummarizeHistograms("obiwan_rmi_client_latency_ns", {{"op", op}});
    if (s.count == 0) continue;
    std::printf("%10s%12llu%14.0f%14.0f%14.0f%14lld\n", op.c_str(),
                static_cast<unsigned long long>(s.count), s.p50, s.p95, s.p99,
                static_cast<long long>(s.max));
  }
}

// Transport-level connection behaviour, aggregated across every transport
// instance the benchmark created. connects_per_call is the bench-visible
// measure of what connection pooling buys: 1.0 means a fresh connection per
// request, ~0 means one persistent connection amortized over the run.
struct TransportSummary {
  std::uint64_t requests = 0;
  std::uint64_t connects = 0;
  std::uint64_t pool_hits = 0;
  std::uint64_t timeouts = 0;
  double connects_per_call = 0.0;
};

inline TransportSummary SummarizeTransports() {
  auto& reg = MetricsRegistry::Default();
  TransportSummary s;
  s.requests = reg.SumCounters("obiwan_transport_requests_total");
  s.connects = reg.SumCounters("obiwan_transport_connects_total");
  s.pool_hits = reg.SumCounters("obiwan_transport_pool_hits_total");
  s.timeouts = reg.SumCounters("obiwan_transport_timeouts_total");
  s.connects_per_call =
      s.requests > 0
          ? static_cast<double>(s.connects) / static_cast<double>(s.requests)
          : 0.0;
  return s;
}

inline void PrintTransportStats() {
  TransportSummary s = SummarizeTransports();
  if (s.requests == 0) return;
  std::printf("\n=== Transport connections ===\n");
  std::printf("%14s%14s%14s%14s%20s\n", "requests", "connects", "pool hits",
              "timeouts", "connects per call");
  std::printf("%14llu%14llu%14llu%14llu%20.4f\n",
              static_cast<unsigned long long>(s.requests),
              static_cast<unsigned long long>(s.connects),
              static_cast<unsigned long long>(s.pool_hits),
              static_cast<unsigned long long>(s.timeouts),
              s.connects_per_call);
}

inline std::string JsonNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

inline std::string JsonHistogramSummary(const HistogramSummary& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"count\":%llu,\"sum\":%lld,\"max\":%lld,\"p50\":%.6g,"
                "\"p95\":%.6g,\"p99\":%.6g}",
                static_cast<unsigned long long>(s.count),
                static_cast<long long>(s.sum), static_cast<long long>(s.max),
                s.p50, s.p95, s.p99);
  return buf;
}

// Emit BENCH_<name>.json into the working directory: the paper-style series
// table, per-op latency summaries, and the full metrics registry dump. The
// schema is stable so CI can parse the file:
//   {"bench":..., "x_label":..., "xs":[...],
//    "series":[{"name":...,"values":[...]}],
//    "rpc_latency_ns":{"call":{"count":...,"p50":...},...},
//    "transport":{"requests":...,"connects":...,"pool_hits":...,
//                 "timeouts":...,"connects_per_call":...},
//    "metrics":{"counters":[...],"gauges":[...],"histograms":[...]}}
// `extra_sections` is spliced verbatim before "metrics" — each entry must be
// a complete `"key":value` fragment (e.g. the mobility bench's
// "reconvergence" experiment summary).
inline void WriteBenchJson(const std::string& name, const std::string& x_label,
                           const std::vector<long>& xs,
                           const std::vector<Series>& series,
                           const std::vector<std::string>& extra_sections = {}) {
  auto& reg = MetricsRegistry::Default();
  std::string out = "{\"bench\":\"" + name + "\",\"x_label\":\"" + x_label +
                    "\",\"xs\":[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(xs[i]);
  }
  out += "],\"series\":[";
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i != 0) out += ',';
    out += "{\"name\":\"" + series[i].name + "\",\"values\":[";
    for (std::size_t j = 0; j < series[i].values.size(); ++j) {
      if (j != 0) out += ',';
      out += JsonNumber(series[i].values[j]);
    }
    out += "]}";
  }
  out += "],\"rpc_latency_ns\":{";
  bool first = true;
  for (const std::string& op : RpcOps()) {
    HistogramSummary s =
        reg.SummarizeHistograms("obiwan_rmi_client_latency_ns", {{"op", op}});
    if (s.count == 0) continue;
    if (!first) out += ',';
    first = false;
    out += "\"" + op + "\":" + JsonHistogramSummary(s);
  }
  const TransportSummary transport = SummarizeTransports();
  out += "},\"transport\":{\"requests\":" + std::to_string(transport.requests) +
         ",\"connects\":" + std::to_string(transport.connects) +
         ",\"pool_hits\":" + std::to_string(transport.pool_hits) +
         ",\"timeouts\":" + std::to_string(transport.timeouts) +
         ",\"connects_per_call\":" + JsonNumber(transport.connects_per_call);
  out += "}";
  for (const std::string& section : extra_sections) {
    out += "," + section;
  }
  out += ",\"metrics\":" + reg.DumpJson() + "}\n";

  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "failed to open %s for writing\n", path.c_str());
    return;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s (%zu bytes)\n", path.c_str(), out.size());
}

}  // namespace obiwan::bench
