// Shared benchmark harness.
//
// Every figure bench runs on the calibrated simulated network (net::kPaperLan:
// empty RMI round trip = 2.8 ms, 10 Mbit/s payload bandwidth — the paper's
// testbed constants) with a virtual clock, so the *network* component of each
// experiment is deterministic. Local CPU work (marshalling, proxy creation,
// local method invocation) is measured for real and added in, mirroring how
// the paper's wall-clock numbers combine the two. Each binary prints the
// paper-style series first, then runs its google-benchmark micro-benchmarks.
#pragma once

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "obiwan.h"
#include "test_objects.h"

namespace obiwan::bench {

// Two sites on the paper's LAN: "s2" masters objects, "s1" demands them.
struct PaperEnv {
  explicit PaperEnv(net::LinkParams link = net::kPaperLan)
      : network(clock, link) {
    provider = std::make_unique<core::Site>(2, network.CreateEndpoint("s2"), clock);
    demander = std::make_unique<core::Site>(1, network.CreateEndpoint("s1"), clock);
    (void)provider->Start();
    (void)demander->Start();
    provider->HostRegistry();
    demander->UseRegistry("s2");
    // Calibrated per-proxy-pair export cost of the 2002 Java substrate
    // (UnicastRemoteObject export + stub bookkeeping) — the per-object
    // overhead §4.2 measures and clustering eliminates.
    provider->SetProxyExportCost(kProxyExportCost);
  }

  static constexpr Nanos kProxyExportCost = 500 * kMicro;

  VirtualClock clock;
  net::SimNetwork network;
  std::unique_ptr<core::Site> provider;
  std::unique_ptr<core::Site> demander;
};

// Combined stopwatch: virtual network time + real CPU time.
class Stopwatch {
 public:
  explicit Stopwatch(VirtualClock& clock)
      : clock_(clock),
        sim_start_(clock.Now()),
        real_start_(std::chrono::steady_clock::now()) {}

  double ElapsedMs() const {
    double sim = static_cast<double>(clock_.Now() - sim_start_) / kMilli;
    double real = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - real_start_)
                      .count();
    return sim + real;
  }

 private:
  VirtualClock& clock_;
  Nanos sim_start_;
  std::chrono::steady_clock::time_point real_start_;
};

// Print a paper-style series table: one row per x value, one column per
// series.
struct Series {
  std::string name;
  std::vector<double> values;  // aligned with the x axis
};

inline void PrintTable(const std::string& title, const std::string& x_label,
                       const std::vector<long>& xs,
                       const std::vector<Series>& series) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%14s", x_label.c_str());
  for (const Series& s : series) std::printf("%16s", s.name.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::printf("%14ld", xs[i]);
    for (const Series& s : series) {
      std::printf("%16.3f", i < s.values.size() ? s.values[i] : 0.0);
    }
    std::printf("\n");
  }
}

}  // namespace obiwan::bench
