// Ablation — TCP connection pooling.
//
// Real-socket round trips with and without the client-side connection pool.
// Without pooling every request pays socket/connect/close (the pre-pool
// transport behaviour, re-enabled with SetPoolCapacity(0)); with pooling a
// burst of N requests establishes exactly one connection and reuses it. The
// series reports mean per-call latency over real time; the JSON's
// "transport" section records connects-per-call, which CI can assert moved
// from ~1.0 to ~1/N.
#include <benchmark/benchmark.h>

#include <chrono>

#include "harness.h"
#include "net/tcp.h"

namespace obiwan::bench {
namespace {

const std::vector<long> kBurstSizes = {1, 10, 100, 1000};

class Echo : public net::MessageHandler {
 public:
  Result<Bytes> HandleRequest(const net::Address&, BytesView request) override {
    return Bytes(request.begin(), request.end());
  }
};

// Mean per-call latency (ms) for a burst of `requests` echo round trips.
double BurstCost(long requests, bool pooled) {
  auto server = net::TcpTransport::Create(0);
  if (!server.ok()) return 0.0;
  Echo echo;
  (void)(*server)->Serve(&echo);
  auto client = net::TcpTransport::Create(0);
  if (!client.ok()) return 0.0;
  if (!pooled) (*client)->SetPoolCapacity(0);

  const Bytes payload(64, 0x5A);
  const auto start = std::chrono::steady_clock::now();
  for (long i = 0; i < requests; ++i) {
    auto reply = (*client)->Request((*server)->LocalAddress(), payload);
    if (!reply.ok()) return 0.0;
  }
  const double total_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count();
  (*server)->StopServing();
  return total_ms / static_cast<double>(requests);
}

void PaperSeries() {
  std::vector<Series> series;
  series.push_back({"per-connect", {}});
  for (long n : kBurstSizes) series.back().values.push_back(BurstCost(n, false));
  series.push_back({"pooled", {}});
  for (long n : kBurstSizes) series.back().values.push_back(BurstCost(n, true));
  PrintTable("TCP pooling ablation: mean per-call latency (ms, real time)",
             "burst size", kBurstSizes, series);
  PrintTransportStats();
  WriteBenchJson("tcp_pool", "burst_size", kBurstSizes, series);
}

void BM_TcpRoundTripPooled(benchmark::State& state) {
  auto server = net::TcpTransport::Create(0);
  Echo echo;
  (void)(*server)->Serve(&echo);
  auto client = net::TcpTransport::Create(0);
  if (state.range(0) == 0) (*client)->SetPoolCapacity(0);
  const Bytes payload(64, 0x5A);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        (*client)->Request((*server)->LocalAddress(), payload));
  }
  state.SetLabel(state.range(0) ? "pooled" : "per-connect");
  (*server)->StopServing();
}
BENCHMARK(BM_TcpRoundTripPooled)->Arg(0)->Arg(1);

}  // namespace
}  // namespace obiwan::bench

int main(int argc, char** argv) {
  obiwan::bench::PaperSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
