// E1 — §4.1 scalar claims:
//   "The time it takes to make a local method invocation is 2 microseconds.
//    A remote method invocation takes 2.8 milliseconds and, obviously, is
//    independent of the object size."
//
// Prints the three checks (LMI latency, RMI latency, RMI vs object size) and
// then runs google-benchmark micro-benchmarks for the real CPU-side costs.
#include <benchmark/benchmark.h>

#include "harness.h"

namespace obiwan::bench {
namespace {

void PaperSeries() {
  PaperEnv env;

  auto master = test::MakeChain(1, 64, "m");
  (void)env.provider->Bind("obj", master);
  auto remote = env.demander->Lookup<test::Node>("obj");
  auto replica = remote->Replicate(core::ReplicationMode::Incremental(1));

  // LMI: real CPU time of a local virtual call through a Ref (the paper's
  // probe touches a field, so the call is not empty).
  constexpr int kLocalIters = 1'000'000;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kLocalIters; ++i) {
    benchmark::DoNotOptimize((*replica)->Touch());
  }
  double lmi_us = std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - t0)
                      .count() /
                  kLocalIters;

  // RMI: one round trip on the calibrated simulated LAN.
  Stopwatch sw(env.clock);
  (void)remote->Invoke(&test::Node::Touch);
  double rmi_ms = sw.ElapsedMs();

  std::printf("=== Table 1 (E1): invocation scalars ===\n");
  std::printf("%-34s %12s %12s\n", "metric", "measured", "paper");
  std::printf("%-34s %9.3f us %9s\n", "LMI (local call on replica)", lmi_us, "2 us");
  std::printf("%-34s %9.3f ms %9s\n", "RMI (remote call round trip)", rmi_ms, "2.8 ms");

  // RMI independence of object size: remote calls on masters of growing size.
  std::vector<long> sizes = {16, 1024, 4096, 16 * 1024, 64 * 1024};
  Series rmi_series{"RMI ms/call", {}};
  for (long size : sizes) {
    auto obj = test::MakeChain(1, static_cast<std::size_t>(size), "sz");
    (void)env.provider->Bind("obj-" + std::to_string(size), obj);
    auto r = env.demander->Lookup<test::Node>("obj-" + std::to_string(size));
    Stopwatch sw2(env.clock);
    constexpr int kCalls = 10;
    for (int i = 0; i < kCalls; ++i) (void)r->Invoke(&test::Node::Touch);
    rmi_series.values.push_back(sw2.ElapsedMs() / kCalls);
  }
  PrintTable("Table 1 (E1): RMI cost vs object size (paper: independent)",
             "object bytes", sizes, {rmi_series});
}

// --- CPU micro-benchmarks ----------------------------------------------------

void BM_LocalInvoke(benchmark::State& state) {
  auto node = std::make_shared<test::Node>();
  core::Ref<test::Node> ref(node);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ref->Touch());
  }
}
BENCHMARK(BM_LocalInvoke);

// Full RMI machinery (marshalling, dispatch, skeleton) minus the network:
// loopback round trip.
void BM_LoopbackRmiRoundTrip(benchmark::State& state) {
  net::LoopbackNetwork network;
  core::Site provider(2, network.CreateEndpoint("s2"));
  core::Site demander(1, network.CreateEndpoint("s1"));
  (void)provider.Start();
  (void)demander.Start();
  provider.HostRegistry();
  demander.UseRegistry("s2");
  auto master = test::MakeChain(1, 64, "m");
  (void)provider.Bind("obj", master);
  auto remote = demander.Lookup<test::Node>("obj");
  for (auto _ : state) {
    benchmark::DoNotOptimize(remote->Invoke(&test::Node::Touch));
  }
}
BENCHMARK(BM_LoopbackRmiRoundTrip);

}  // namespace
}  // namespace obiwan::bench

int main(int argc, char** argv) {
  obiwan::bench::PaperSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
