// Contention baseline — lock-wait share under concurrent site traffic.
//
// The ROADMAP's sharded-object-table refactor claims the single site mutex
// is the scalability ceiling; this bench produces the evidence and the
// baseline to beat. T demander threads hammer one TCP site pair (refresh
// round trips, with a put every 4th op so holder fanout and invalidations
// run too) and the tracked locks (common/contention.h) record how long
// threads actually waited. The headline number is the wait share:
//
//   wait_share = Δ obiwan_lock_wait_ns.sum / (T × wall time)
//
// — the fraction of the run's total thread-time spent blocked on locks.
// It should sit near 0 single-threaded and grow with T while the site
// mutex serializes everything; the sharded-table refactor succeeds when
// this curve flattens. The JSON's "contention" section records the curve
// for CI to gate.
#include <benchmark/benchmark.h>

#include <chrono>
#include <mutex>
#include <thread>

#include "common/contention.h"
#include "harness.h"
#include "net/tcp.h"

namespace obiwan::bench {
namespace {

const std::vector<long> kThreadCounts = {1, 2, 4, 8};
constexpr int kOpsPerThread = 12;
constexpr int kLocalBurst = 48;  // chain walks under the site lock per op
// Long chains and fat bursts keep threads inside the site lock for most of
// their runtime, so contention shows up even on a single-core box (a waiter
// only finds the lock held there when the holder was preempted
// mid-critical-section, which needs the hold share to dominate).
constexpr int kChainLength = 192;

struct RunResult {
  double wall_ms = 0;
  double wait_share = 0;        // blocked time / (threads × wall)
  double contended = 0;         // acquisitions that blocked, this run
  double site_wait_p99_ns = 0;  // "site" lock wait p99 over the whole run
};

// One measured run: T threads, each with its own master chain and replica,
// looping refresh round trips with a put (and its invalidation fanout)
// every 4th op. Sites are fresh per run; deltas against the process-wide
// registry isolate this run's lock traffic.
RunResult RunWorkload(long threads) {
  RunResult result;
  auto& reg = MetricsRegistry::Default();

  auto provider_tcp = net::TcpTransport::Create(0);
  auto demander_tcp = net::TcpTransport::Create(0);
  if (!provider_tcp.ok() || !demander_tcp.ok()) return result;
  core::Site provider(2, std::move(*provider_tcp));
  core::Site demander(1, std::move(*demander_tcp));
  if (!provider.Start().ok() || !demander.Start().ok()) return result;
  provider.HostRegistry();
  demander.UseRegistry(provider.address());

  std::vector<core::Ref<test::Node>> refs;
  for (long t = 0; t < threads; ++t) {
    const std::string name = "chain" + std::to_string(t);
    if (!provider.Rebind(name, test::MakeChain(kChainLength, 64, name)).ok()) {
      return result;
    }
    auto remote = demander.Lookup<test::Node>(name);
    if (!remote.ok()) return result;
    auto ref = remote->Replicate(core::ReplicationMode::Incremental(kChainLength));
    if (!ref.ok()) return result;
    refs.push_back(*ref);
  }

  const MergedHistogram wait_before = reg.MergeHistograms("obiwan_lock_wait_ns");
  const std::uint64_t contended_before =
      reg.SumCounters("obiwan_lock_contended_total");

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (long t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      core::Ref<test::Node>& ref = refs[t];
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Local burst: every thread walks its chain under its own object's
        // shard guard — the post-shard idiom for protecting application
        // reads against concurrent push/invalidate application. Before the
        // sharded table this was WithSiteLock and every thread serialized on
        // one mutex; now only threads whose chains hash to the same shard
        // ever contend. The whole burst is one critical section, so each
        // hold spans several scheduler preemption points and waiters pile up
        // behind it whenever the lock is actually shared.
        demander.WithObjectLock(ref, [&] {
          std::int64_t sum = 0;
          for (int j = 0; j < kLocalBurst; ++j) {
            for (core::Ref<test::Node>* cursor = &ref;
                 !cursor->IsEmpty() && !cursor->IsProxy();
                 cursor = &cursor->get()->next) {
              sum += cursor->get()->Touch();
            }
          }
          return sum;
        });
        if (i % 4 == 3) {
          // Reintegrate: the put fans invalidations back to this site.
          (void)demander.Put(ref);
        } else {
          (void)demander.Refresh(ref);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const double wall_ns = std::chrono::duration<double, std::nano>(
                             std::chrono::steady_clock::now() - start)
                             .count();

  const MergedHistogram wait_after = reg.MergeHistograms("obiwan_lock_wait_ns");
  result.wall_ms = wall_ns / static_cast<double>(kMilli);
  const double waited =
      static_cast<double>(wait_after.sum - wait_before.sum);
  result.wait_share =
      wall_ns > 0 ? waited / (static_cast<double>(threads) * wall_ns) : 0.0;
  result.contended = static_cast<double>(
      reg.SumCounters("obiwan_lock_contended_total") - contended_before);
  for (const LockSiteReport& lock : LockHotness(reg)) {
    if (lock.name == "site") result.site_wait_p99_ns = lock.wait_p99_ns;
  }
  return result;
}

std::string JsonArray(const std::vector<double>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    out += JsonNumber(values[i]);
  }
  return out + "]";
}

void PaperSeries() {
  std::vector<Series> series = {{"wait_share", {}},
                                {"wall_ms", {}},
                                {"contended", {}},
                                {"site_p99_us", {}}};
  for (long threads : kThreadCounts) {
    const RunResult r = RunWorkload(threads);
    series[0].values.push_back(r.wait_share);
    series[1].values.push_back(r.wall_ms);
    series[2].values.push_back(r.contended);
    series[3].values.push_back(r.site_wait_p99_ns / 1000.0);
  }
  PrintTable(
      "Lock contention: wait share of total thread-time (real TCP site pair)",
      "threads", kThreadCounts, series);
  std::printf("\n%s", LockHotnessText(
                          LockHotness(MetricsRegistry::Default())).c_str());

  const std::string contention_section =
      "\"contention\":{\"threads\":[1,2,4,8]"
      ",\"wait_share\":" + JsonArray(series[0].values) +
      ",\"wall_ms\":" + JsonArray(series[1].values) +
      ",\"contended\":" + JsonArray(series[2].values) +
      ",\"site_p99_us\":" + JsonArray(series[3].values) + "}";
  WriteBenchJson("contention", "threads", kThreadCounts, series,
                 {contention_section});
}

// Wrapper overhead on the uncontended fast path: one tracked lock/unlock
// round vs the bare mutex it wraps. This is the cost every critical section
// in the tree pays for the telemetry.
void BM_TrackedMutexLockUnlock(benchmark::State& state) {
  TrackedMutex mutex{"bench_overhead"};
  for (auto _ : state) {
    mutex.lock();
    mutex.unlock();
  }
}
BENCHMARK(BM_TrackedMutexLockUnlock);

void BM_PlainMutexLockUnlock(benchmark::State& state) {
  std::mutex mutex;
  for (auto _ : state) {
    mutex.lock();
    mutex.unlock();
  }
}
BENCHMARK(BM_PlainMutexLockUnlock);

}  // namespace
}  // namespace obiwan::bench

int main(int argc, char** argv) {
  obiwan::bench::PaperSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
