// E4 — Figure 6: "Incremental replication of clusters of objects."
//
// Same workload as Figure 5 (1000-object list, three object sizes, the
// demander touches every object) but objects are replicated in *clusters*:
// each batch shares a single proxy-in/proxy-out pair, so cluster members can
// no longer be updated individually (§4.3).
//
// Expected shape vs Figure 5: all curves drop substantially and bunch
// together — with only one proxy pair per batch, serialization and network
// transfer dominate and the batch size matters much less.
#include <benchmark/benchmark.h>

#include "harness.h"

namespace obiwan::bench {
namespace {

constexpr int kListLength = 1000;
const std::vector<long> kSteps = {1, 10, 50, 100, 500, 1000};
const std::vector<long> kCheckpoints = {1,   100, 200, 300, 400, 500,
                                        600, 700, 800, 900, 1000};

std::vector<double> Traverse(std::size_t object_size, core::ReplicationMode mode) {
  PaperEnv env;
  auto head = test::MakeChain(kListLength, object_size, "n");
  (void)env.provider->Bind("list", head);
  auto remote = env.demander->Lookup<test::Node>("list");

  std::vector<double> at_checkpoint;
  Stopwatch sw(env.clock);
  auto ref = remote->Replicate(mode);
  core::Ref<test::Node>* cursor = &*ref;
  std::size_t next_checkpoint = 0;
  for (int i = 1; i <= kListLength; ++i) {
    benchmark::DoNotOptimize((*cursor)->Touch());
    cursor = &cursor->get()->next;
    if (next_checkpoint < kCheckpoints.size() && i == kCheckpoints[next_checkpoint]) {
      at_checkpoint.push_back(sw.ElapsedMs());
      ++next_checkpoint;
    }
  }
  return at_checkpoint;
}

void PaperSeries(std::size_t object_size) {
  std::vector<Series> series;
  for (long step : kSteps) {
    series.push_back(
        {"cluster " + std::to_string(step),
         Traverse(object_size,
                  core::ReplicationMode::Cluster(static_cast<std::uint32_t>(step)))});
  }
  PrintTable("Figure 6 (E4): cluster replication, " +
                 (object_size >= 1024 ? std::to_string(object_size / 1024) + " KB"
                                      : std::to_string(object_size) + " B") +
                 " objects: cumulative time (ms)",
             "invocations", kCheckpoints, series);
}

}  // namespace
}  // namespace obiwan::bench

int main(int argc, char** argv) {
  for (std::size_t size : {std::size_t{64}, std::size_t{1024}, std::size_t{16384}}) {
    obiwan::bench::PaperSeries(size);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
