// A1 — ablation: the proxy-pair overhead.
//
// §4.2 attributes incremental replication's cost to "the creation and
// transference of replicas along with the corresponding proxy-out/proxy-in
// pairs", and §4.3's whole improvement comes from collapsing N pairs into
// one. This ablation isolates that factor: identical workload (500-object
// list, full traversal), identical batch size, with per-object pairs
// (incremental) vs a single pair per batch (cluster) — reporting time,
// proxy-ins created, and bytes on the wire.
#include <benchmark/benchmark.h>

#include "harness.h"

namespace obiwan::bench {
namespace {

constexpr int kListLength = 500;

struct RunResult {
  double ms;
  std::uint64_t proxy_ins;
  std::uint64_t wire_bytes;
};

RunResult Run(core::ReplicationMode mode, std::size_t object_size) {
  PaperEnv env;
  auto head = test::MakeChain(kListLength, object_size, "n");
  (void)env.provider->Bind("list", head);
  auto remote = env.demander->Lookup<test::Node>("list");
  env.network.ResetStats();
  const auto pins_before = env.provider->stats().proxy_ins_created;

  Stopwatch sw(env.clock);
  auto ref = remote->Replicate(mode);
  core::Ref<test::Node>* cursor = &*ref;
  while (!cursor->IsEmpty()) {
    benchmark::DoNotOptimize((*cursor)->Touch());
    cursor = &cursor->get()->next;
  }
  return RunResult{sw.ElapsedMs(),
                   env.provider->stats().proxy_ins_created - pins_before,
                   env.network.stats().request_bytes + env.network.stats().reply_bytes};
}

void PaperSeries() {
  std::printf("=== Ablation A1: per-object proxy pairs vs one pair per batch ===\n");
  std::printf("(500-object list, full traversal, 64 B objects)\n");
  std::printf("%10s %14s %14s %12s %12s %14s %14s\n", "batch", "incr ms",
              "cluster ms", "incr pins", "clus pins", "incr bytes", "clus bytes");
  for (std::uint32_t batch : {1u, 10u, 50u, 100u, 500u}) {
    RunResult incr = Run(core::ReplicationMode::Incremental(batch), 64);
    RunResult clus = Run(core::ReplicationMode::Cluster(batch), 64);
    std::printf("%10u %14.3f %14.3f %12llu %12llu %14llu %14llu\n", batch, incr.ms,
                clus.ms, static_cast<unsigned long long>(incr.proxy_ins),
                static_cast<unsigned long long>(clus.proxy_ins),
                static_cast<unsigned long long>(incr.wire_bytes),
                static_cast<unsigned long long>(clus.wire_bytes));
  }
  std::printf("\nExpected: incremental creates ~500 pins at every batch size "
              "(one per object);\ncluster creates ~(500/batch)*2; the time and "
              "byte gaps are the §4.2 vs §4.3 difference.\n");
}

// Real CPU cost of provider-side batch serialization, with and without
// per-object provider descriptors.
void BM_ServeGetBatch(benchmark::State& state) {
  net::LoopbackNetwork network;
  core::Site provider(2, network.CreateEndpoint("s2"));
  core::Site demander(1, network.CreateEndpoint("s1"));
  (void)provider.Start();
  (void)demander.Start();
  provider.HostRegistry();
  demander.UseRegistry("s2");
  const bool cluster = state.range(1) != 0;
  auto mode = cluster
                  ? core::ReplicationMode::Cluster(static_cast<std::uint32_t>(state.range(0)))
                  : core::ReplicationMode::Incremental(static_cast<std::uint32_t>(state.range(0)));
  auto head = test::MakeChain(static_cast<int>(state.range(0)), 64, "n");
  (void)provider.Bind("list", head);
  auto remote = demander.Lookup<test::Node>("list");
  for (auto _ : state) {
    benchmark::DoNotOptimize(remote->Replicate(mode));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ServeGetBatch)
    ->Args({10, 0})
    ->Args({10, 1})
    ->Args({100, 0})
    ->Args({100, 1});

}  // namespace
}  // namespace obiwan::bench

int main(int argc, char** argv) {
  obiwan::bench::PaperSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
