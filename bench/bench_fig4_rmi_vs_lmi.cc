// E2 — Figure 4: "Comparison of RMI and LMI."
//
// Total cost of performing N invocations on one object, N in 1..10000, for
// object sizes 16 B .. 64 KB:
//   - RMI: every invocation is a remote round trip; the object never moves,
//     so the cost is size-independent and linear in N.
//   - LMI: replicate the object first, invoke locally, and push the result
//     back to the master ("the execution time of LMI includes the cost due to
//     the creation of the replica and to update it back in the master site").
//
// Expected shape (paper §4.1): LMI wins for many invocations and smaller
// objects; for few invocations on small objects the two are comparable.
#include <benchmark/benchmark.h>

#include "harness.h"

namespace obiwan::bench {
namespace {

const std::vector<long> kInvocations = {1, 10, 100, 1000, 10000};
const std::vector<long> kSizes = {16, 1024, 4096, 16 * 1024, 64 * 1024};

double RmiCost(long invocations) {
  PaperEnv env;
  auto master = test::MakeChain(1, 16, "m");
  (void)env.provider->Bind("obj", master);
  auto remote = env.demander->Lookup<test::Node>("obj");
  Stopwatch sw(env.clock);
  for (long i = 0; i < invocations; ++i) (void)remote->Invoke(&test::Node::Touch);
  return sw.ElapsedMs();
}

double LmiCost(long size, long invocations) {
  PaperEnv env;
  auto master = test::MakeChain(1, static_cast<std::size_t>(size), "m");
  (void)env.provider->Bind("obj", master);
  auto remote = env.demander->Lookup<test::Node>("obj");
  Stopwatch sw(env.clock);
  auto replica = remote->Replicate(core::ReplicationMode::Incremental(1));
  for (long i = 0; i < invocations; ++i) {
    benchmark::DoNotOptimize((*replica)->Touch());
  }
  (void)env.demander->Put(*replica);
  return sw.ElapsedMs();
}

void PaperSeries() {
  std::vector<Series> series;
  series.push_back({"RMI", {}});
  for (long n : kInvocations) series.back().values.push_back(RmiCost(n));
  for (long size : kSizes) {
    std::string label = size >= 1024 ? "LMI " + std::to_string(size / 1024) + "K"
                                     : "LMI " + std::to_string(size);
    series.push_back({label, {}});
    for (long n : kInvocations) series.back().values.push_back(LmiCost(size, n));
  }
  PrintTable("Figure 4 (E2): RMI vs LMI, total time (ms)",
             "# invocations", kInvocations, series);
  PrintRpcLatency();
  WriteBenchJson("fig4_rmi_vs_lmi", "invocations", kInvocations, series);
}

// One traced LMI cycle, exported as Chrome trace JSON: per-site processes,
// the incremental faults' fault -> get chains at the demander, and the final
// put back to the master — the figure's protocol activity made visible.
// Separate from the measured series so tracing cost never touches them.
void TracedExemplar() {
  PaperEnv env;
  env.EnableTracing();
  auto master = test::MakeChain(4, 1024, "m");
  (void)env.provider->Bind("obj", master);
  auto remote = env.demander->Lookup<test::Node>("obj");
  {
    PhaseSpan phase(env, "replicate+walk");
    auto replica = remote->Replicate(core::ReplicationMode::Incremental(1));
    // Walk the chain so each link faults and fetches incrementally.
    for (core::Ref<test::Node>* cursor = &*replica; !cursor->IsEmpty();
         cursor = &cursor->get()->next) {
      benchmark::DoNotOptimize((*cursor)->Touch());
    }
    PhaseSpan put_phase(env, "put-back");
    (void)env.demander->Put(*replica);
  }
  env.WriteChromeTrace("fig4_rmi_vs_lmi");
}

// CPU-side micro-benchmark: the real cost of one LMI cycle's fixed parts
// (replicate + put) over loopback, by object size.
void BM_ReplicateAndPut(benchmark::State& state) {
  net::LoopbackNetwork network;
  core::Site provider(2, network.CreateEndpoint("s2"));
  core::Site demander(1, network.CreateEndpoint("s1"));
  (void)provider.Start();
  (void)demander.Start();
  provider.HostRegistry();
  demander.UseRegistry("s2");
  auto master = test::MakeChain(1, static_cast<std::size_t>(state.range(0)), "m");
  (void)provider.Bind("obj", master);
  auto remote = demander.Lookup<test::Node>("obj");
  for (auto _ : state) {
    auto replica = remote->Replicate(core::ReplicationMode::Incremental(1));
    benchmark::DoNotOptimize((*replica)->Touch());
    benchmark::DoNotOptimize(demander.Put(*replica));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_ReplicateAndPut)->Arg(16)->Arg(1024)->Arg(16 * 1024)->Arg(64 * 1024);

}  // namespace
}  // namespace obiwan::bench

int main(int argc, char** argv) {
  obiwan::bench::PaperSeries();
  obiwan::bench::TracedExemplar();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
