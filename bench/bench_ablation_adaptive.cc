// A5 — ablation: the adaptive RMI/LMI switch against Figure 4's envelope.
//
// Figure 4 shows pure RMI winning at few invocations and pure LMI winning at
// many, with a crossover. An adaptive reference should track the lower
// envelope of both curves: pay RMI prices only up to the crossover, then
// switch. This ablation replays the Figure 4 sweep for all three strategies.
#include <benchmark/benchmark.h>

#include "adaptive/adaptive_ref.h"
#include "harness.h"

namespace obiwan::bench {
namespace {

const std::vector<long> kInvocations = {1, 2, 5, 10, 100, 1000};

enum class Strategy { kRmi, kLmi, kAdaptive };

double Run(Strategy strategy, long invocations, std::size_t size) {
  PaperEnv env;
  auto master = test::MakeChain(1, size, "m");
  (void)env.provider->Bind("obj", master);
  auto remote = env.demander->Lookup<test::Node>("obj");

  Stopwatch sw(env.clock);
  switch (strategy) {
    case Strategy::kRmi: {
      for (long i = 0; i < invocations; ++i) (void)remote->Invoke(&test::Node::Touch);
      break;
    }
    case Strategy::kLmi: {
      auto ref = remote->Replicate(core::ReplicationMode::Incremental(1));
      for (long i = 0; i < invocations; ++i) {
        benchmark::DoNotOptimize((*ref)->Touch());
      }
      (void)env.demander->Put(*ref);
      break;
    }
    case Strategy::kAdaptive: {
      adaptive::AdaptiveRef<test::Node> ref(*env.demander, *remote);
      for (long i = 0; i < invocations; ++i) (void)ref.Invoke(&test::Node::Touch);
      (void)ref.Sync();
      break;
    }
  }
  return sw.ElapsedMs();
}

void PaperSeries(std::size_t size) {
  std::vector<Series> series{{"RMI", {}}, {"LMI", {}}, {"adaptive", {}}};
  for (long n : kInvocations) {
    series[0].values.push_back(Run(Strategy::kRmi, n, size));
    series[1].values.push_back(Run(Strategy::kLmi, n, size));
    series[2].values.push_back(Run(Strategy::kAdaptive, n, size));
  }
  PrintTable("Ablation A5: adaptive invocation vs fixed strategies, " +
                 std::to_string(size) + " B object (ms)",
             "# invocations", kInvocations, series);
}

}  // namespace
}  // namespace obiwan::bench

int main(int argc, char** argv) {
  obiwan::bench::PaperSeries(64);
  obiwan::bench::PaperSeries(16 * 1024);
  std::printf("\nExpected: adaptive ~= RMI for few invocations, ~= LMI for "
              "many; never much\nworse than the better fixed strategy at any "
              "point (it pays at most the crossover\nprobe cost).\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
