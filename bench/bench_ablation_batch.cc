// A8 — ablation: batched RMI against the Figure 4 cost structure.
//
// §4.1 shows the RMI round trip (2.8 ms) dwarfing everything else for small
// calls. CallBatch amortizes that: N invocations in one exchange. This
// ablation sweeps N for three strategies — sequential RMI, batched RMI, and
// full replication (LMI) — locating batching between the paper's two poles:
// master-side execution like RMI, single-round-trip pricing like LMI.
#include <benchmark/benchmark.h>

#include "core/batch.h"
#include "harness.h"

namespace obiwan::bench {
namespace {

const std::vector<long> kCalls = {1, 10, 100, 1000};

double SequentialRmi(long n) {
  PaperEnv env;
  auto master = test::MakeChain(1, 64, "m");
  (void)env.provider->Bind("obj", master);
  auto remote = env.demander->Lookup<test::Node>("obj");
  Stopwatch sw(env.clock);
  for (long i = 0; i < n; ++i) (void)remote->Invoke(&test::Node::Touch);
  return sw.ElapsedMs();
}

double BatchedRmi(long n) {
  PaperEnv env;
  auto master = test::MakeChain(1, 64, "m");
  (void)env.provider->Bind("obj", master);
  auto remote = env.demander->Lookup<test::Node>("obj");
  Stopwatch sw(env.clock);
  core::CallBatch<test::Node> batch(*env.demander, *remote);
  for (long i = 0; i < n; ++i) (void)batch.Add(&test::Node::Touch);
  (void)batch.Execute();
  return sw.ElapsedMs();
}

double Lmi(long n) {
  PaperEnv env;
  auto master = test::MakeChain(1, 64, "m");
  (void)env.provider->Bind("obj", master);
  auto remote = env.demander->Lookup<test::Node>("obj");
  Stopwatch sw(env.clock);
  auto ref = remote->Replicate(core::ReplicationMode::Incremental(1));
  for (long i = 0; i < n; ++i) benchmark::DoNotOptimize((*ref)->Touch());
  (void)env.demander->Put(*ref);
  return sw.ElapsedMs();
}

}  // namespace
}  // namespace obiwan::bench

int main(int argc, char** argv) {
  using namespace obiwan::bench;
  std::vector<Series> series{{"RMI", {}}, {"batched RMI", {}}, {"LMI", {}}};
  for (long n : kCalls) {
    series[0].values.push_back(SequentialRmi(n));
    series[1].values.push_back(BatchedRmi(n));
    series[2].values.push_back(Lmi(n));
  }
  PrintTable("Ablation A8: batched RMI, 64 B object, total time (ms)",
             "# invocations", kCalls, series);
  std::printf(
      "\nExpected: batching stays near one round trip (~2.8 ms + transfer) at "
      "every N,\nbeating sequential RMI by ~N; LMI still wins once the "
      "replicate+put cost is\namortized, but batching needs no replica and "
      "keeps execution at the master\n(e.g. for contended or "
      "server-authoritative state).\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
