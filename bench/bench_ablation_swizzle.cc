// A6 — ablation: reference patching (swizzling) vs permanent indirection.
//
// §2.2 step 4-6: after an object fault, the demander's reference is patched
// to point directly at the replica and the proxy-out dies, so "further
// invocations ... are normal direct invocations with no indirection at all".
// The alternative design (kept by several systems cited in §5's object-fault
// literature) leaves a level of indirection on every access. This ablation
// measures what the paper's choice buys: invocation through
//   (a) a patched Ref (direct virtual call),
//   (b) a Ref that re-checks its state on each call (the Demand() fast path),
//   (c) a by-id lookup in the site's replica table on each access (the
//       "fault handler on every access" design).
#include <benchmark/benchmark.h>

#include "harness.h"

namespace obiwan::bench {
namespace {

struct Env {
  Env() {
    provider = std::make_unique<core::Site>(2, network.CreateEndpoint("s2"));
    demander = std::make_unique<core::Site>(1, network.CreateEndpoint("s1"));
    (void)provider->Start();
    (void)demander->Start();
    provider->HostRegistry();
    demander->UseRegistry("s2");
    auto master = test::MakeChain(1, 64, "m");
    (void)provider->Bind("obj", master);
    auto remote = demander->Lookup<test::Node>("obj");
    id = remote->id();
    ref = *remote->Replicate(core::ReplicationMode::Incremental(1));
  }

  net::LoopbackNetwork network;
  std::unique_ptr<core::Site> provider;
  std::unique_ptr<core::Site> demander;
  core::Ref<test::Node> ref;
  ObjectId id;
};

void BM_DirectPatchedRef(benchmark::State& state) {
  Env env;
  test::Node* obj = env.ref.get();  // the patched pointer
  for (auto _ : state) {
    benchmark::DoNotOptimize(obj->Touch());
  }
}
BENCHMARK(BM_DirectPatchedRef);

void BM_RefWithStateCheck(benchmark::State& state) {
  Env env;
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.ref->Touch());  // Demand() no-op + call
  }
}
BENCHMARK(BM_RefWithStateCheck);

void BM_TableLookupPerAccess(benchmark::State& state) {
  Env env;
  for (auto _ : state) {
    auto obj = env.demander->FindLocal(env.id);
    benchmark::DoNotOptimize(static_cast<test::Node*>(obj->get())->Touch());
  }
}
BENCHMARK(BM_TableLookupPerAccess);

}  // namespace
}  // namespace obiwan::bench

int main(int argc, char** argv) {
  std::printf("=== Ablation A6: swizzled (patched) references vs indirection ===\n");
  std::printf("Expected: the patched Ref is a plain virtual call; the state-"
              "checking Ref adds\nbranches; the per-access table lookup adds a "
              "hash probe + lock — the design\ncost the paper's updateMember "
              "step avoids.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
