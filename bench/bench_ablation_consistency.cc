// A3 — ablation: consistency-policy overhead and behaviour.
//
// The paper leaves consistency to pluggable protocols (§2.1). This bench
// quantifies what each ready-made policy costs on the put/get path (extra
// policy payload, invalidation traffic) and how many concurrent writes each
// one admits — the correctness/overhead trade-off an application buys into.
#include <benchmark/benchmark.h>

#include "harness.h"

namespace obiwan::bench {
namespace {

struct PolicyRun {
  double ms;
  std::uint64_t wire_bytes;
  std::uint64_t invalidations;
  int conflicts;
};

// Three sites; two demanders alternately edit and put the same object, each
// refreshing after a rejection (the offline-sync loop).
PolicyRun Run(const std::string& policy_name) {
  VirtualClock clock;
  net::SimNetwork network(clock, net::kPaperLan);
  core::Site master(1, network.CreateEndpoint("pc"), clock);
  core::Site laptop(2, network.CreateEndpoint("laptop"), clock);
  core::Site pda(3, network.CreateEndpoint("pda"), clock);
  (void)master.Start();
  (void)laptop.Start();
  (void)pda.Start();
  master.HostRegistry();
  laptop.UseRegistry("pc");
  pda.UseRegistry("pc");

  auto install = [&](core::Site& site, SiteId id) {
    if (policy_name == "lww") {
      site.SetConsistencyPolicy(std::make_unique<consistency::LastWriterWins>());
    } else if (policy_name == "version-vector") {
      site.SetConsistencyPolicy(std::make_unique<consistency::VersionVectorPolicy>(id));
    } else if (policy_name == "write-invalidate") {
      site.SetConsistencyPolicy(std::make_unique<consistency::WriteInvalidate>());
    }
  };
  install(master, 1);
  install(laptop, 2);
  install(pda, 3);

  auto obj = test::MakeChain(1, 256, "o");
  (void)master.Bind("obj", obj);
  auto on_laptop = *laptop.Lookup<test::Node>("obj")->Replicate(
      core::ReplicationMode::Incremental(1));
  auto on_pda =
      *pda.Lookup<test::Node>("obj")->Replicate(core::ReplicationMode::Incremental(1));

  network.ResetStats();
  int conflicts = 0;
  Stopwatch sw(clock);
  for (int round = 0; round < 50; ++round) {
    core::Site& writer = (round % 2 == 0) ? laptop : pda;
    core::Ref<test::Node>& ref = (round % 2 == 0) ? on_laptop : on_pda;
    ref->SetValue(round);
    clock.Sleep(kMilli);
    Status s = writer.Put(ref);
    if (!s.ok()) {
      ++conflicts;
      (void)writer.Refresh(ref);
      ref->SetValue(round);
      clock.Sleep(kMilli);
      (void)writer.Put(ref);
    }
  }
  return PolicyRun{sw.ElapsedMs(),
                   network.stats().request_bytes + network.stats().reply_bytes,
                   master.stats().invalidations_sent, conflicts};
}

void PaperSeries() {
  std::printf("=== Ablation A3: consistency policies on the put path ===\n");
  std::printf("(two writers alternating 50 puts on one 256 B object, "
              "refresh-and-retry on conflict)\n");
  std::printf("%18s %12s %12s %14s %12s\n", "policy", "time ms", "conflicts",
              "wire bytes", "invalidates");
  for (const char* policy : {"none", "lww", "version-vector", "write-invalidate"}) {
    PolicyRun r = Run(policy);
    std::printf("%18s %12.3f %12d %14llu %12llu\n", policy, r.ms, r.conflicts,
                static_cast<unsigned long long>(r.wire_bytes),
                static_cast<unsigned long long>(r.invalidations));
  }
  std::printf("\nExpected: 'none' is cheapest and admits every write; the "
              "checking policies add\npolicy payload and (for "
              "write-invalidate) invalidation messages, and turn\nstale "
              "writes into conflicts + refresh round trips.\n");
}

void BM_PutWithPolicy(benchmark::State& state) {
  net::LoopbackNetwork network;
  core::Site master(1, network.CreateEndpoint("pc"));
  core::Site client(2, network.CreateEndpoint("client"));
  (void)master.Start();
  (void)client.Start();
  master.HostRegistry();
  client.UseRegistry("pc");
  if (state.range(0) == 1) {
    master.SetConsistencyPolicy(std::make_unique<consistency::LastWriterWins>());
  } else if (state.range(0) == 2) {
    master.SetConsistencyPolicy(std::make_unique<consistency::VersionVectorPolicy>(1));
    client.SetConsistencyPolicy(std::make_unique<consistency::VersionVectorPolicy>(2));
  }
  auto obj = test::MakeChain(1, 256, "o");
  (void)master.Bind("obj", obj);
  auto ref =
      *client.Lookup<test::Node>("obj")->Replicate(core::ReplicationMode::Incremental(1));
  for (auto _ : state) {
    ref->SetValue(1);
    benchmark::DoNotOptimize(client.Put(ref));
  }
}
BENCHMARK(BM_PutWithPolicy)->Arg(0)->Arg(1)->Arg(2);

}  // namespace
}  // namespace obiwan::bench

int main(int argc, char** argv) {
  obiwan::bench::PaperSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
