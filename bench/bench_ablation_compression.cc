// A7 — ablation: payload compression on narrow links.
//
// "OBIWAN attempts to minimize bandwidth and connection time" (§5). This
// ablation replays the Figure 6 workload (cluster replication of a 200-object
// list) on the wireless profile, with and without the CompressedTransport
// decorator, for payloads of varying compressibility — quantifying when the
// decorator pays for itself on a 50 kbit/s link.
#include <benchmark/benchmark.h>

#include <random>

#include "harness.h"
#include "net/compressed.h"

namespace obiwan::bench {
namespace {

constexpr int kListLength = 200;
constexpr std::size_t kPayload = 1024;

enum class PayloadKind { kZero, kText, kRandom };

std::shared_ptr<test::Node> MakeList(PayloadKind kind) {
  auto head = test::MakeChain(kListLength, kPayload, "n");
  std::mt19937_64 rng(17);
  const char* words = "replica proxy cluster demand provider obiwan mobile ";
  std::size_t wlen = std::char_traits<char>::length(words);
  for (test::Node* node = head.get(); node != nullptr;
       node = static_cast<test::Node*>(node->next.local_raw())) {
    switch (kind) {
      case PayloadKind::kZero:
        break;  // MakeChain already fills with a repeated byte
      case PayloadKind::kText:
        for (std::size_t i = 0; i < node->payload.size(); ++i) {
          node->payload[i] = static_cast<std::uint8_t>(words[i % wlen]);
        }
        break;
      case PayloadKind::kRandom:
        for (auto& b : node->payload) b = static_cast<std::uint8_t>(rng());
        break;
    }
  }
  return head;
}

struct RunResult {
  double ms;
  std::uint64_t wire_bytes;
};

RunResult Run(PayloadKind kind, bool compressed) {
  VirtualClock clock;
  net::SimNetwork network(clock, net::kPaperWireless);
  auto endpoint = [&](const char* name) -> std::unique_ptr<net::Transport> {
    if (compressed) {
      return std::make_unique<net::CompressedTransport>(network.CreateEndpoint(name));
    }
    return network.CreateEndpoint(name);
  };
  core::Site provider(1, endpoint("p"), clock);
  core::Site demander(2, endpoint("d"), clock);
  (void)provider.Start();
  (void)demander.Start();
  provider.HostRegistry();
  demander.UseRegistry("p");

  (void)provider.Bind("list", MakeList(kind));
  auto remote = demander.Lookup<test::Node>("list");
  network.ResetStats();

  Stopwatch sw(clock);
  auto ref = remote->Replicate(core::ReplicationMode::Cluster(kListLength));
  benchmark::DoNotOptimize(ref);
  return RunResult{sw.ElapsedMs(), network.stats().request_bytes +
                                       network.stats().reply_bytes};
}

void PaperSeries() {
  std::printf("=== Ablation A7: compression on the wireless link ===\n");
  std::printf("(cluster replication of %d x %zu B objects at 50 kbit/s)\n",
              kListLength, kPayload);
  std::printf("%10s %14s %14s %14s %14s %8s\n", "payload", "raw ms", "comp ms",
              "raw bytes", "comp bytes", "ratio");
  struct Row {
    const char* name;
    PayloadKind kind;
  };
  for (Row row : {Row{"zeros", PayloadKind::kZero}, Row{"text", PayloadKind::kText},
                  Row{"random", PayloadKind::kRandom}}) {
    RunResult raw = Run(row.kind, false);
    RunResult comp = Run(row.kind, true);
    std::printf("%10s %14.1f %14.1f %14llu %14llu %7.1fx\n", row.name, raw.ms,
                comp.ms, static_cast<unsigned long long>(raw.wire_bytes),
                static_cast<unsigned long long>(comp.wire_bytes),
                static_cast<double>(raw.wire_bytes) /
                    static_cast<double>(comp.wire_bytes));
  }
  std::printf("\nExpected: compressible payloads transfer many times faster; "
              "random payloads\nbreak even (the raw-frame fallback costs one "
              "tag byte per message).\n");
}

void BM_CompressBatch(benchmark::State& state) {
  Bytes input(static_cast<std::size_t>(state.range(0)));
  const char* words = "replica proxy cluster demand provider ";
  std::size_t wlen = std::char_traits<char>::length(words);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<std::uint8_t>(words[i % wlen]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::Compress(AsView(input)));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CompressBatch)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_DecompressBatch(benchmark::State& state) {
  Bytes input(static_cast<std::size_t>(state.range(0)));
  const char* words = "replica proxy cluster demand provider ";
  std::size_t wlen = std::char_traits<char>::length(words);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<std::uint8_t>(words[i % wlen]);
  }
  Bytes compressed = wire::Compress(AsView(input));
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::Decompress(AsView(compressed)));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecompressBatch)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

}  // namespace
}  // namespace obiwan::bench

int main(int argc, char** argv) {
  obiwan::bench::PaperSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
