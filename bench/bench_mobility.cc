// A4 — extension experiment: disconnected operation and prefetching.
//
// The paper's motivation (§1) is qualitative: with replicas colocated, "as
// long as objects needed by an application are colocated, there is no need
// to be connected", and footnote 3 of §2.1 notes that "a perfect mechanism of
// pre-fetching in the background can completely eliminate the latency". This
// bench quantifies both on a wireless link with periodic outages:
//
//   pure-RMI      every access is a remote call; accesses during an outage
//                 fail (lost work).
//   on-demand     incremental replication; faults during an outage fail.
//   prefetch      replicate-ahead before the outage window (PrefetchAll),
//                 then work entirely locally.
//
// A second experiment quantifies the update-fanout path under partial
// disconnection: put latency with one of N holders unreachable (bounded by
// one notification deadline thanks to the parallel fanout), and the time for
// the reconnecting holder to reconverge through the provider's notification
// retry queue plus the demander-side resync daemon.
//
// A third experiment scales the same story to a fleet: 220 devices replicate
// one document, 30 churn offline while updates land, and a FleetMonitor
// (obs/fleet_monitor.h) polls every site throughout — its merged
// convergence-lag distribution peaks during the window and collapses to zero
// after reconnection. Emitted as the "fleet" BENCH JSON section.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <utility>

#include "core/resync.h"
#include "harness.h"
#include "obs/journey.h"

namespace obiwan::bench {
namespace {

constexpr int kEntries = 200;
constexpr int kAccessRounds = 600;  // accesses entry i % kEntries
// The link drops for 20 accesses out of every 100 (tunnels, dead zones).
bool LinkUpAt(int access) { return access % 100 < 80; }

struct RunResult {
  double ms;
  int completed;
  int failed;
};

struct Fixture {
  Fixture() : network(clock, net::kPaperWireless) {
    office = std::make_unique<core::Site>(1, network.CreateEndpoint("office"), clock);
    pda = std::make_unique<core::Site>(2, network.CreateEndpoint("pda"), clock);
    (void)office->Start();
    (void)pda->Start();
    office->HostRegistry();
    pda->UseRegistry("office");
    agenda = test::MakeChain(kEntries, 64, "e");
    (void)office->Bind("agenda", agenda);
  }

  void SetLink(int access) { network.SetEndpointUp("pda", LinkUpAt(access)); }

  VirtualClock clock;
  net::SimNetwork network;
  std::unique_ptr<core::Site> office;
  std::unique_ptr<core::Site> pda;
  std::shared_ptr<test::Node> agenda;
};

RunResult RunPureRmi() {
  Fixture f;
  // Pure RMI cannot traverse the list without replicating it, so the master
  // exposes each entry by name (bound once, outside the measured window).
  std::vector<core::RemoteRef<test::Node>> entries;
  std::shared_ptr<test::Node> node = f.agenda;
  for (int i = 0; i < kEntries && node != nullptr; ++i) {
    (void)f.office->Bind("entry" + std::to_string(i), node);
    entries.push_back(*f.pda->Lookup<test::Node>("entry" + std::to_string(i)));
    node = std::static_pointer_cast<test::Node>(node->next.local());
  }
  RunResult result{0, 0, 0};
  Stopwatch sw(f.clock);
  for (int i = 0; i < kAccessRounds; ++i) {
    f.SetLink(i);
    auto r = entries[static_cast<std::size_t>(i) % kEntries].Invoke(&test::Node::Touch);
    if (r.ok()) {
      ++result.completed;
    } else {
      ++result.failed;
    }
  }
  result.ms = sw.ElapsedMs();
  return result;
}

RunResult RunReplicated(bool prefetch) {
  Fixture f;
  auto remote = f.pda->Lookup<test::Node>("agenda");
  RunResult result{0, 0, 0};
  Stopwatch sw(f.clock);
  auto ref = remote->Replicate(core::ReplicationMode::Incremental(20));
  if (prefetch) (void)f.pda->PrefetchAll(*ref);

  // Index the replicated list once; entries still behind proxies resolve (or
  // fail) on access.
  for (int i = 0; i < kAccessRounds; ++i) {
    f.SetLink(i);
    core::Ref<test::Node>* cursor = &*ref;
    bool ok = true;
    for (int hop = 0; hop < i % kEntries; ++hop) {
      if (!cursor->Demand().ok()) {
        ok = false;
        break;
      }
      cursor = &cursor->get()->next;
    }
    if (ok && cursor->Demand().ok()) {
      cursor->get()->Touch();
      ++result.completed;
    } else {
      ++result.failed;
    }
  }
  result.ms = sw.ElapsedMs();
  return result;
}

// Disconnection-reconvergence: returns the "reconvergence" BENCH JSON
// section.
std::string Reconvergence() {
  constexpr int kHolders = 8;
  constexpr int kUpdatesDuringWindow = 3;
  constexpr Nanos kNotifyDeadline = 2 * kSecond;

  VirtualClock clock;
  net::SimNetwork network(clock, net::kPaperWireless);
  core::Site office(1, network.CreateEndpoint("office"), clock);
  (void)office.Start();
  office.HostRegistry();
  office.SetConsistencyPolicy(std::make_unique<consistency::WriteInvalidate>());
  office.SetRequestDeadline(kNotifyDeadline);
  // The experiment measures the retry-queue path; never unregister the
  // disconnected holder.
  office.SetHolderFailureThreshold(0);

  auto agenda = std::make_shared<test::Node>();
  agenda->payload.resize(64);
  (void)office.Bind("agenda", agenda);
  const ObjectId oid = office.Export(agenda);

  std::vector<std::unique_ptr<core::Site>> devices;
  std::vector<core::Ref<test::Node>> refs;
  for (int i = 0; i < kHolders; ++i) {
    const std::string name = "dev" + std::to_string(i);
    auto site = std::make_unique<core::Site>(
        static_cast<SiteId>(10 + i), network.CreateEndpoint(name), clock);
    (void)site->Start();
    site->UseRegistry("office");
    auto remote = site->Lookup<test::Node>("agenda");
    refs.push_back(*remote->Replicate(core::ReplicationMode::Incremental(1)));
    devices.push_back(std::move(site));
  }

  core::Site& writer = *devices.back();
  core::Ref<test::Node>& writer_ref = refs.back();

  // Baseline: everyone reachable.
  writer_ref.get()->SetValue(1);
  Stopwatch all_up(clock);
  (void)writer.Put(writer_ref);
  const double put_ms_all_up = all_up.ElapsedMs();

  // dev0 falls into a black hole: notifications to it burn the full
  // deadline instead of failing fast.
  network.SetLinkParams("office", "dev0",
                        net::LinkParams{.latency = 10 * kNotifyDeadline});
  writer_ref.get()->SetValue(2);
  Stopwatch one_down(clock);
  (void)writer.Put(writer_ref);
  const double put_ms_one_down = one_down.ElapsedMs();

  // More updates land while dev0 is gone; the retry queue keeps (and
  // supersedes) the undelivered invalidation.
  for (int i = 0; i < kUpdatesDuringWindow - 1; ++i) {
    writer_ref.get()->SetValue(3 + i);
    (void)writer.Put(writer_ref);
  }

  // Reconnect: the provider drains its retry queue, the device's resync
  // daemon refreshes the now-stale replica.
  network.SetLinkParams("office", "dev0", net::kPaperWireless);
  core::ResyncDaemon daemon(*devices.front());
  Stopwatch reconverge(clock);
  const std::uint64_t master_version = *office.MasterVersion(oid);
  while (*devices.front()->ReplicaVersion(refs.front()) != master_version) {
    clock.Sleep(100 * kMilli);
    (void)office.PumpNotifyRetries();
    (void)daemon.PumpOnce();
  }
  const double reconverge_ms = reconverge.ElapsedMs();

  std::printf("\n=== disconnection reconvergence (%d holders, 1 down) ===\n",
              kHolders);
  std::printf("put all-up %.3f ms | put one-down %.3f ms (deadline %.0f ms) | "
              "reconverge %.3f ms | resync refreshes %llu\n",
              put_ms_all_up, put_ms_one_down,
              static_cast<double>(kNotifyDeadline) / kMilli, reconverge_ms,
              static_cast<unsigned long long>(daemon.refreshed_total()));

  std::string out = "\"reconvergence\":{";
  out += "\"holders\":" + std::to_string(kHolders);
  out += ",\"disconnected\":1";
  out += ",\"updates_during_window\":" + std::to_string(kUpdatesDuringWindow);
  out += ",\"put_ms_all_up\":" + JsonNumber(put_ms_all_up);
  out += ",\"put_ms_one_down\":" + JsonNumber(put_ms_one_down);
  out += ",\"notify_deadline_ms\":" +
         JsonNumber(static_cast<double>(kNotifyDeadline) / kMilli);
  out += ",\"reconverge_ms\":" + JsonNumber(reconverge_ms);
  out += ",\"resync_refreshes\":" + std::to_string(daemon.refreshed_total());
  out += "}";
  return out;
}

// Fleet-scale convergence under churn: a ≥200-device fleet replicates one
// document; a slice of the fleet churns offline while updates land; after
// reconnection the provider's retry queue plus per-device refreshes drain the
// staleness. A FleetMonitor polls every site over the kInspect plane
// throughout — this experiment is as much a test of the monitor's merge math
// at scale as of the protocol. Returns the "fleet" and "journey" BENCH JSON
// sections: a journey tracker on the master measures per-update convergence
// on the same run, so the polled estimate's aliasing error is quantified
// against ground truth.
std::pair<std::string, std::string> FleetConvergence() {
  constexpr int kSites = 220;
  constexpr int kChurned = 30;
  constexpr int kUpdates = 5;
  constexpr int kMaxConvergeRounds = 50;

  VirtualClock clock;
  net::SimNetwork network(clock, net::kPaperLan);
  core::Site office(1, network.CreateEndpoint("office"), clock);
  (void)office.Start();
  office.HostRegistry();
  office.SetConsistencyPolicy(std::make_unique<consistency::WriteInvalidate>());
  office.SetRequestDeadline(500 * kMilli);
  office.SetNotifyFanout(32);
  // Churned devices must survive the window in the holders list and the
  // retry queue: never drop them, and retry far past the churn window.
  office.SetHolderFailureThreshold(0);
  office.SetNotifyRetryPolicy({.initial_backoff = 100 * kMilli,
                               .max_backoff = 1 * kSecond,
                               .max_attempts = 64,
                               .per_holder_queue = 16});

  // Ground truth for the cross-check: every put on the master mints a
  // journey; its convergence stamp is the actual last-holder-ack time, free
  // of the monitor's poll-period aliasing.
  obs::JourneyTracker journeys(clock, office.id());
  office.SetJourneySink(&journeys);

  auto doc = std::make_shared<test::Node>();
  doc->payload.resize(256);
  (void)office.Bind("doc", doc);
  const ObjectId oid = office.Export(doc);

  std::vector<std::unique_ptr<core::Site>> devices;
  std::vector<core::Ref<test::Node>> refs;
  std::vector<net::Address> targets = {"office"};
  for (int i = 0; i < kSites; ++i) {
    const std::string name = "dev" + std::to_string(i);
    auto site = std::make_unique<core::Site>(
        static_cast<SiteId>(100 + i), network.CreateEndpoint(name), clock);
    (void)site->Start();
    site->UseRegistry("office");
    auto remote = site->Lookup<test::Node>("doc");
    refs.push_back(*remote->Replicate(core::ReplicationMode::Incremental(1)));
    targets.push_back(name);
    devices.push_back(std::move(site));
  }

  // The monitor is its own vantage site, polling everyone else remotely.
  core::Site vantage(99, network.CreateEndpoint("monitor"), clock);
  (void)vantage.Start();
  vantage.SetRequestDeadline(500 * kMilli);
  obs::FleetOptions fleet_options;
  fleet_options.slo_lag_versions = 1;           // breach while max lag > 1
  fleet_options.slo_lag_age = 3600 * kSecond;   // age alone never breaches
  obs::FleetMonitor monitor(vantage, targets, fleet_options);

  const obs::FleetReport baseline = monitor.PollOnce();

  // Churn: a slice of the fleet drops off the network.
  for (int i = 0; i < kChurned; ++i) {
    network.SetEndpointUp("dev" + std::to_string(i), false);
  }

  // Updates land while they are gone — written by a connected device and
  // reintegrated, so the master's put counters (and the monitor's
  // bytes-per-update figure) move. Invalidations fan out to every holder;
  // the churned slice's queue up for retry.
  core::Site& writer = *devices.back();
  core::Ref<test::Node>& writer_ref = refs.back();
  for (int u = 0; u < kUpdates; ++u) {
    writer_ref.get()->SetValue(10 + u);
    (void)writer.Put(writer_ref);
    clock.Sleep(200 * kMilli);
  }
  const obs::FleetReport peak = monitor.PollOnce();

  // Reconnect and converge: the provider drains its retry queue so the
  // churned slice learns it is stale, every device refreshes its stale
  // replicas, the monitor watches the lag distribution collapse to zero.
  for (int i = 0; i < kChurned; ++i) {
    network.SetEndpointUp("dev" + std::to_string(i), true);
  }
  const std::uint64_t master_version = *office.MasterVersion(oid);
  Stopwatch converge(clock);
  obs::FleetReport report = peak;
  int rounds = 0;
  while (rounds < kMaxConvergeRounds) {
    ++rounds;
    clock.Sleep(500 * kMilli);
    (void)office.PumpNotifyRetries();
    for (auto& device : devices) {
      for (ObjectId id : device->StaleReplicaIds()) {
        (void)device->RefreshReplica(id);
      }
    }
    report = monitor.PollOnce();
    bool all_current = report.lag_versions_max == 0 && report.stale_replicas == 0;
    for (std::size_t i = 0; all_current && i < devices.size(); ++i) {
      all_current = *devices[i]->ReplicaVersion(refs[i]) == master_version;
    }
    if (all_current) break;
  }
  const double converge_ms = converge.ElapsedMs();
  const Nanos polled_current_at = clock.Now();  // first poll that saw lag 0
  office.SetJourneySink(nullptr);

  std::printf("\n=== fleet convergence (%d devices, %d churned, %d updates) ===\n",
              kSites, kChurned, kUpdates);
  std::printf("baseline lag max %llu | peak lag p50=%llu p95=%llu max=%llu, "
              "%llu stale, %zu unreachable\n",
              static_cast<unsigned long long>(baseline.lag_versions_max),
              static_cast<unsigned long long>(peak.lag_versions_p50),
              static_cast<unsigned long long>(peak.lag_versions_p95),
              static_cast<unsigned long long>(peak.lag_versions_max),
              static_cast<unsigned long long>(peak.stale_replicas),
              peak.sites - peak.reachable);
  std::printf("reconverged in %.1f ms over %d polls | slo burn %.3f s | "
              "%.0f bytes/update at peak\n",
              converge_ms, rounds, report.slo_breach_seconds,
              peak.bytes_per_update);

  std::string out = "\"fleet\":{";
  out += "\"sites\":" + std::to_string(kSites);
  out += ",\"churned\":" + std::to_string(kChurned);
  out += ",\"updates\":" + std::to_string(kUpdates);
  out += ",\"updates_observed\":" + std::to_string(peak.updates);
  out += ",\"peak_lag_versions\":{\"p50\":" + std::to_string(peak.lag_versions_p50) +
         ",\"p95\":" + std::to_string(peak.lag_versions_p95) +
         ",\"max\":" + std::to_string(peak.lag_versions_max) + "}";
  out += ",\"peak_stale_replicas\":" + std::to_string(peak.stale_replicas);
  out += ",\"unreachable_at_peak\":" + std::to_string(peak.sites - peak.reachable);
  out += ",\"bytes_per_update_peak\":" + JsonNumber(peak.bytes_per_update);
  out += ",\"converge_ms\":" + JsonNumber(converge_ms);
  out += ",\"converge_polls\":" + std::to_string(rounds);
  out += ",\"final_lag_versions_max\":" + std::to_string(report.lag_versions_max);
  out += ",\"final_stale_replicas\":" + std::to_string(report.stale_replicas);
  out += ",\"slo_breach_s\":" + JsonNumber(report.slo_breach_seconds);
  out += "}";

  // --- journey cross-check -------------------------------------------------
  // The monitor's convergence estimate comes from 500 ms polls; the journey
  // tracker stamped the actual last-holder ack. Older updates' invalidations
  // were superseded by version in the per-holder retry queue, so the newest
  // journey is the one that fully converged — compare its measured
  // convergence against the polled estimate over the same put-commit
  // baseline and report the difference as the aliasing error.
  std::vector<double> conv_ms;
  std::vector<double> ttfr_ms;
  obs::JourneyView measured{};
  for (const obs::JourneyView& j : journeys.Recent(kUpdates + 2)) {
    if (!j.complete || j.convergence < 0) continue;
    if (measured.convergence < 0) measured = j;  // Recent is newest-first
    conv_ms.push_back(static_cast<double>(j.convergence) / kMilli);
    ttfr_ms.push_back(static_cast<double>(j.ttfr) / kMilli);
  }
  auto pct = [](std::vector<double> v, double p) {
    if (v.empty()) return -1.0;
    std::sort(v.begin(), v.end());
    return v[static_cast<std::size_t>(p * static_cast<double>(v.size() - 1) +
                                      0.5)];
  };
  const bool have_measured = measured.convergence >= 0;
  const double measured_ms =
      have_measured ? static_cast<double>(measured.convergence) / kMilli : -1;
  const double polled_ms =
      have_measured
          ? static_cast<double>(polled_current_at - measured.put_commit) /
                kMilli
          : -1;
  const obs::JourneyAlert alert = journeys.EvaluateAlerts();

  std::printf("journeys minted %llu, completed %llu, notifies superseded %llu\n",
              static_cast<unsigned long long>(journeys.minted()),
              static_cast<unsigned long long>(journeys.completed()),
              static_cast<unsigned long long>(office.stats().notify_superseded));
  if (have_measured) {
    std::printf("convergence: journey-measured %.1f ms vs polled %.1f ms "
                "(aliasing error %.1f ms) | burn alert %s\n",
                measured_ms, polled_ms, polled_ms - measured_ms,
                alert.firing ? "FIRING" : "ok");
  }

  std::string journey = "\"journey\":{";
  journey += "\"minted\":" + std::to_string(journeys.minted());
  journey += ",\"completed\":" + std::to_string(journeys.completed());
  journey += ",\"superseded_notifies\":" +
             std::to_string(office.stats().notify_superseded);
  journey += ",\"ttfr_ms_p95\":" + JsonNumber(pct(ttfr_ms, 0.95));
  journey += ",\"convergence_ms_p95\":" + JsonNumber(pct(conv_ms, 0.95));
  journey += ",\"measured_convergence_ms\":" + JsonNumber(measured_ms);
  journey += ",\"polled_convergence_ms\":" + JsonNumber(polled_ms);
  journey += ",\"aliasing_error_ms\":" +
             JsonNumber(have_measured ? polled_ms - measured_ms : -1);
  journey += ",\"poll_interval_ms\":500";
  journey += ",\"alert_firing\":";
  journey += alert.firing ? "true" : "false";
  journey += ",\"fast_burn_rate\":" + JsonNumber(alert.fast.burn_rate);
  journey += "}";
  return {out, journey};
}

void PaperSeries() {
  std::printf("=== A4: disconnected operation on a flaky wireless link ===\n");
  std::printf("(%d accesses over a %d-entry agenda; link down 20%% of the time)\n",
              kAccessRounds, kEntries);
  std::printf("%14s %14s %12s %10s\n", "strategy", "time ms", "completed", "failed");
  RunResult rmi = RunPureRmi();
  std::printf("%14s %14.3f %12d %10d\n", "pure-RMI", rmi.ms, rmi.completed, rmi.failed);
  RunResult on_demand = RunReplicated(/*prefetch=*/false);
  std::printf("%14s %14.3f %12d %10d\n", "on-demand", on_demand.ms,
              on_demand.completed, on_demand.failed);
  RunResult prefetch = RunReplicated(/*prefetch=*/true);
  std::printf("%14s %14.3f %12d %10d\n", "prefetch", prefetch.ms,
              prefetch.completed, prefetch.failed);
  std::printf("\nExpected: pure-RMI loses every access made during an outage and "
              "pays a round\ntrip per access; on-demand loses only accesses that "
              "fault during an outage;\nprefetch completes everything and, after "
              "the initial transfer, pays ~zero per access\n(the footnote-3 "
              "claim).\n");

  const std::string reconvergence = Reconvergence();
  const auto [fleet, journey] = FleetConvergence();

  // xs indexes the strategies: 0 pure-RMI, 1 on-demand, 2 prefetch.
  std::vector<Series> series;
  series.push_back({"time_ms", {rmi.ms, on_demand.ms, prefetch.ms}});
  series.push_back({"completed",
                    {static_cast<double>(rmi.completed),
                     static_cast<double>(on_demand.completed),
                     static_cast<double>(prefetch.completed)}});
  series.push_back({"failed",
                    {static_cast<double>(rmi.failed),
                     static_cast<double>(on_demand.failed),
                     static_cast<double>(prefetch.failed)}});
  WriteBenchJson("mobility", "strategy_index", {0, 1, 2}, series,
                 {reconvergence, fleet, journey});
}

}  // namespace
}  // namespace obiwan::bench

int main(int argc, char** argv) {
  obiwan::bench::PaperSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
