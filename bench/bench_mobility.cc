// A4 — extension experiment: disconnected operation and prefetching.
//
// The paper's motivation (§1) is qualitative: with replicas colocated, "as
// long as objects needed by an application are colocated, there is no need
// to be connected", and footnote 3 of §2.1 notes that "a perfect mechanism of
// pre-fetching in the background can completely eliminate the latency". This
// bench quantifies both on a wireless link with periodic outages:
//
//   pure-RMI      every access is a remote call; accesses during an outage
//                 fail (lost work).
//   on-demand     incremental replication; faults during an outage fail.
//   prefetch      replicate-ahead before the outage window (PrefetchAll),
//                 then work entirely locally.
#include <benchmark/benchmark.h>

#include "harness.h"

namespace obiwan::bench {
namespace {

constexpr int kEntries = 200;
constexpr int kAccessRounds = 600;  // accesses entry i % kEntries
// The link drops for 20 accesses out of every 100 (tunnels, dead zones).
bool LinkUpAt(int access) { return access % 100 < 80; }

struct RunResult {
  double ms;
  int completed;
  int failed;
};

struct Fixture {
  Fixture() : network(clock, net::kPaperWireless) {
    office = std::make_unique<core::Site>(1, network.CreateEndpoint("office"), clock);
    pda = std::make_unique<core::Site>(2, network.CreateEndpoint("pda"), clock);
    (void)office->Start();
    (void)pda->Start();
    office->HostRegistry();
    pda->UseRegistry("office");
    agenda = test::MakeChain(kEntries, 64, "e");
    (void)office->Bind("agenda", agenda);
  }

  void SetLink(int access) { network.SetEndpointUp("pda", LinkUpAt(access)); }

  VirtualClock clock;
  net::SimNetwork network;
  std::unique_ptr<core::Site> office;
  std::unique_ptr<core::Site> pda;
  std::shared_ptr<test::Node> agenda;
};

RunResult RunPureRmi() {
  Fixture f;
  // Pure RMI cannot traverse the list without replicating it, so the master
  // exposes each entry by name (bound once, outside the measured window).
  std::vector<core::RemoteRef<test::Node>> entries;
  std::shared_ptr<test::Node> node = f.agenda;
  for (int i = 0; i < kEntries && node != nullptr; ++i) {
    (void)f.office->Bind("entry" + std::to_string(i), node);
    entries.push_back(*f.pda->Lookup<test::Node>("entry" + std::to_string(i)));
    node = std::static_pointer_cast<test::Node>(node->next.local());
  }
  RunResult result{0, 0, 0};
  Stopwatch sw(f.clock);
  for (int i = 0; i < kAccessRounds; ++i) {
    f.SetLink(i);
    auto r = entries[static_cast<std::size_t>(i) % kEntries].Invoke(&test::Node::Touch);
    if (r.ok()) {
      ++result.completed;
    } else {
      ++result.failed;
    }
  }
  result.ms = sw.ElapsedMs();
  return result;
}

RunResult RunReplicated(bool prefetch) {
  Fixture f;
  auto remote = f.pda->Lookup<test::Node>("agenda");
  RunResult result{0, 0, 0};
  Stopwatch sw(f.clock);
  auto ref = remote->Replicate(core::ReplicationMode::Incremental(20));
  if (prefetch) (void)f.pda->PrefetchAll(*ref);

  // Index the replicated list once; entries still behind proxies resolve (or
  // fail) on access.
  for (int i = 0; i < kAccessRounds; ++i) {
    f.SetLink(i);
    core::Ref<test::Node>* cursor = &*ref;
    bool ok = true;
    for (int hop = 0; hop < i % kEntries; ++hop) {
      if (!cursor->Demand().ok()) {
        ok = false;
        break;
      }
      cursor = &cursor->get()->next;
    }
    if (ok && cursor->Demand().ok()) {
      cursor->get()->Touch();
      ++result.completed;
    } else {
      ++result.failed;
    }
  }
  result.ms = sw.ElapsedMs();
  return result;
}

void PaperSeries() {
  std::printf("=== A4: disconnected operation on a flaky wireless link ===\n");
  std::printf("(%d accesses over a %d-entry agenda; link down 20%% of the time)\n",
              kAccessRounds, kEntries);
  std::printf("%14s %14s %12s %10s\n", "strategy", "time ms", "completed", "failed");
  RunResult rmi = RunPureRmi();
  std::printf("%14s %14.3f %12d %10d\n", "pure-RMI", rmi.ms, rmi.completed, rmi.failed);
  RunResult on_demand = RunReplicated(/*prefetch=*/false);
  std::printf("%14s %14.3f %12d %10d\n", "on-demand", on_demand.ms,
              on_demand.completed, on_demand.failed);
  RunResult prefetch = RunReplicated(/*prefetch=*/true);
  std::printf("%14s %14.3f %12d %10d\n", "prefetch", prefetch.ms,
              prefetch.completed, prefetch.failed);
  std::printf("\nExpected: pure-RMI loses every access made during an outage and "
              "pays a round\ntrip per access; on-demand loses only accesses that "
              "fault during an outage;\nprefetch completes everything and, after "
              "the initial transfer, pays ~zero per access\n(the footnote-3 "
              "claim).\n");
}

}  // namespace
}  // namespace obiwan::bench

int main(int argc, char** argv) {
  obiwan::bench::PaperSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
