// E3 — Figure 5: "Incremental replication of objects."
//
// A list of 1000 objects (64 B / 1 KB / 16 KB each) lives at site S2. Site S1
// invokes a method on every object in order; whenever the object is not yet
// replicated, the system automatically replicates the next {1, 10, 50, 100,
// 500, 1000} objects — each with its own proxy-in/proxy-out pair, so every
// object remains individually updatable (§4.2).
//
// Each table row is the cumulative elapsed time after the i-th invocation —
// the staircase curves of the figure. Expected shape: step=1 is the least
// efficient at high invocation counts (a full round trip per object); 10-100
// is best; very large steps pay a big upfront transfer.
#include <benchmark/benchmark.h>

#include "harness.h"

namespace obiwan::bench {
namespace {

constexpr int kListLength = 1000;
const std::vector<long> kSteps = {1, 10, 50, 100, 500, 1000};
const std::vector<long> kCheckpoints = {1,   100, 200, 300, 400, 500,
                                        600, 700, 800, 900, 1000};

// Traverse the whole list with the given replication mode; return cumulative
// elapsed ms at each checkpoint.
std::vector<double> Traverse(std::size_t object_size, core::ReplicationMode mode) {
  PaperEnv env;
  auto head = test::MakeChain(kListLength, object_size, "n");
  (void)env.provider->Bind("list", head);
  auto remote = env.demander->Lookup<test::Node>("list");

  std::vector<double> at_checkpoint;
  Stopwatch sw(env.clock);
  auto ref = remote->Replicate(mode);
  core::Ref<test::Node>* cursor = &*ref;
  std::size_t next_checkpoint = 0;
  for (int i = 1; i <= kListLength; ++i) {
    benchmark::DoNotOptimize((*cursor)->Touch());  // faults replicate `mode.count` more
    cursor = &cursor->get()->next;
    if (next_checkpoint < kCheckpoints.size() && i == kCheckpoints[next_checkpoint]) {
      at_checkpoint.push_back(sw.ElapsedMs());
      ++next_checkpoint;
    }
  }
  return at_checkpoint;
}

void PaperSeries(const char* figure, std::size_t object_size,
                 core::ReplicationMode (*make_mode)(std::uint32_t)) {
  std::vector<Series> series;
  for (long step : kSteps) {
    series.push_back({"step " + std::to_string(step),
                      Traverse(object_size, make_mode(static_cast<std::uint32_t>(step)))});
  }
  PrintTable(std::string(figure) + ", " +
                 (object_size >= 1024 ? std::to_string(object_size / 1024) + " KB"
                                      : std::to_string(object_size) + " B") +
                 " objects: cumulative time (ms)",
             "invocations", kCheckpoints, series);
}

}  // namespace
}  // namespace obiwan::bench

int main(int argc, char** argv) {
  using obiwan::core::ReplicationMode;
  for (std::size_t size : {std::size_t{64}, std::size_t{1024}, std::size_t{16384}}) {
    obiwan::bench::PaperSeries("Figure 5 (E3): incremental replication", size,
                               &ReplicationMode::Incremental);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
