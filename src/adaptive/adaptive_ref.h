// AdaptiveRef<T> — automatic run-time choice between RMI and LMI.
//
// The paper ends on exactly this knob: "applications may decide, at run-time,
// what is the best way to invoke an object: via remote method invocation
// (RMI), or locally via local method invocation (LMI)" (§6), and Figure 4
// shows where the crossover lies. AdaptiveRef automates the decision with the
// cost model behind that figure:
//
//   keep RMI while   calls_so_far * avg_rmi_cost  <  replication_cost_estimate
//
// Remote round trips are timed against the site's clock (virtual in
// simulations, real otherwise) and averaged; once the accumulated RMI spend
// crosses the estimated cost of creating a replica and updating it back
// (which Figure 4 shows is roughly two round trips plus the transfer), the
// ref replicates once and every further invocation is a plain local call.
//
// Mutating locally means diverging from the master; Sync() pushes the
// replica back (and is a no-op while still in RMI mode). Applications that
// need stronger guarantees keep using RemoteRef/Ref directly with a
// consistency policy.
#pragma once

#include <cstdint>

#include "common/clock.h"
#include "core/mode.h"
#include "core/ref.h"
#include "core/remote_ref.h"
#include "core/site.h"

namespace obiwan::adaptive {

struct AdaptiveOptions {
  // Estimated one-off cost of switching to LMI: replica creation now plus
  // the eventual put back. Default: two paper round trips (§4.1's "even in
  // this case, the cost of creating a replica and then updating the master
  // replica is comparable").
  Nanos replication_cost_estimate = 2 * 2'800 * kMicro;
  // Replication mode used at switch time.
  core::ReplicationMode mode = core::ReplicationMode::Incremental(1);
  // Never replicate (forces pure RMI) — for comparison runs.
  bool pin_remote = false;
};

template <typename T>
class AdaptiveRef {
 public:
  AdaptiveRef(core::Site& site, core::RemoteRef<T> remote,
              AdaptiveOptions options = {})
      : site_(&site), remote_(std::move(remote)), options_(options) {}

  bool local() const { return local_.IsLocal(); }
  std::uint64_t remote_calls() const { return remote_calls_; }

  // Invoke `m`: remotely until the cost model favours a replica, locally
  // afterwards. Signature rules match RemoteRef::Invoke.
  template <typename R, typename C, typename... Args, typename... CallArgs>
  auto Invoke(R (C::*m)(Args...), CallArgs&&... args)
      -> std::conditional_t<std::is_void_v<R>, Status, Result<R>> {
    return InvokeImpl<R>(m, std::forward<CallArgs>(args)...);
  }

  template <typename R, typename C, typename... Args, typename... CallArgs>
  auto Invoke(R (C::*m)(Args...) const, CallArgs&&... args)
      -> std::conditional_t<std::is_void_v<R>, Status, Result<R>> {
    return InvokeImpl<R>(m, std::forward<CallArgs>(args)...);
  }

  // Push local modifications back to the master. No-op in RMI mode (remote
  // invocations already ran on the master).
  Status Sync() {
    if (!local_.IsLocal()) return Status::Ok();
    return site_->Put(local_);
  }

  // Force the switch now (e.g. before a planned disconnection).
  Status ReplicateNow() {
    if (local_.IsLocal()) return Status::Ok();
    OBIWAN_ASSIGN_OR_RETURN(core::Ref<T> ref, remote_.Replicate(options_.mode));
    local_ = std::move(ref);
    return Status::Ok();
  }

 private:
  template <typename R, typename M, typename... CallArgs>
  auto InvokeImpl(M m, CallArgs&&... args)
      -> std::conditional_t<std::is_void_v<R>, Status, Result<R>> {
    using Ret = std::conditional_t<std::is_void_v<R>, Status, Result<R>>;

    if (!local_.IsLocal() && !options_.pin_remote && ShouldSwitch()) {
      // Best effort: if replication fails (e.g. disconnected mid-decision),
      // fall through to RMI, which will surface the error properly.
      (void)ReplicateNow();
    }

    if (local_.IsLocal()) {
      T* obj = local_.get();
      if constexpr (std::is_void_v<R>) {
        (obj->*m)(std::forward<CallArgs>(args)...);
        return Status::Ok();
      } else {
        return Ret((obj->*m)(std::forward<CallArgs>(args)...));
      }
    }

    const Nanos before = site_->clock().Now();
    auto result = remote_.Invoke(m, std::forward<CallArgs>(args)...);
    const Nanos elapsed = site_->clock().Now() - before;
    ++remote_calls_;
    total_remote_cost_ += elapsed;
    return result;
  }

  bool ShouldSwitch() const {
    if (remote_calls_ == 0) return false;  // always measure at least one RTT
    return total_remote_cost_ >= options_.replication_cost_estimate;
  }

  core::Site* site_;
  core::RemoteRef<T> remote_;
  AdaptiveOptions options_;
  core::Ref<T> local_;
  std::uint64_t remote_calls_ = 0;
  Nanos total_remote_cost_ = 0;
};

}  // namespace obiwan::adaptive
