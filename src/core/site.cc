#include "core/site.h"

#include <algorithm>
#include <deque>

#include "common/flight_recorder.h"
#include "common/log.h"
#include "core/journey.h"

namespace obiwan::core {

namespace {
// Op-latency observations at or above this capture a trace/span exemplar
// (see Histogram::SetExemplarThreshold). Low enough that any real network
// round-trip qualifies, so scrapes of live deployments always carry a few
// trace pointers; in-process simulations only cross it on genuinely slow
// (virtual-time) calls.
constexpr Nanos kDefaultTailExemplarThreshold = 1 * kMicro;

// The single source of truth tying each SiteStats field to its registry
// series. The constructor, Raw() and View() all walk this table, so the
// legacy struct stays a thin adapter over the registry and a new counter is
// one struct field plus one row here.
struct SiteCounterSpec {
  Counter* SiteTelemetry::*handle;
  std::uint64_t SiteStats::*field;
  const char* name;
  const char* help;
};

constexpr SiteCounterSpec kSiteCounters[] = {
    {&SiteTelemetry::object_faults, &SiteStats::object_faults,
     "obiwan_site_object_faults_total", "Proxy-out demands that went remote"},
    {&SiteTelemetry::gets_sent, &SiteStats::gets_sent,
     "obiwan_site_gets_sent_total", "Get requests issued"},
    {&SiteTelemetry::gets_served, &SiteStats::gets_served,
     "obiwan_site_gets_served_total", "Get requests served"},
    {&SiteTelemetry::puts_sent, &SiteStats::puts_sent,
     "obiwan_site_puts_sent_total", "Put/commit batches sent"},
    {&SiteTelemetry::puts_served, &SiteStats::puts_served,
     "obiwan_site_puts_served_total", "Put/commit batches served"},
    {&SiteTelemetry::calls_sent, &SiteStats::calls_sent,
     "obiwan_site_calls_sent_total", "Remote invocations issued"},
    {&SiteTelemetry::calls_served, &SiteStats::calls_served,
     "obiwan_site_calls_served_total", "Remote invocations served"},
    {&SiteTelemetry::proxy_ins_created, &SiteStats::proxy_ins_created,
     "obiwan_site_proxy_ins_created_total", "Provider-side proxy-ins created"},
    {&SiteTelemetry::proxy_outs_created, &SiteStats::proxy_outs_created,
     "obiwan_site_proxy_outs_created_total", "Demander-side proxy-outs created"},
    {&SiteTelemetry::replicas_created, &SiteStats::replicas_created,
     "obiwan_site_replicas_created_total", "Replicas materialized"},
    {&SiteTelemetry::objects_served, &SiteStats::objects_served,
     "obiwan_site_objects_served_total", "Objects serialized into get replies"},
    {&SiteTelemetry::invalidations_sent, &SiteStats::invalidations_sent,
     "obiwan_site_invalidations_sent_total", "Invalidations/pushes delivered"},
    {&SiteTelemetry::invalidations_received, &SiteStats::invalidations_received,
     "obiwan_site_invalidations_received_total", "Invalidations/pushes received"},
    {&SiteTelemetry::replication_bytes_in, &SiteStats::replication_bytes_in,
     "obiwan_site_replication_bytes_in_total",
     "Replica state bytes received (get replies, puts served)"},
    {&SiteTelemetry::replication_bytes_out, &SiteStats::replication_bytes_out,
     "obiwan_site_replication_bytes_out_total",
     "Replica state bytes shipped (get replies served, puts sent)"},
    {&SiteTelemetry::notify_retries, &SiteStats::notify_retries,
     "obiwan_notify_retries_total",
     "Queued holder notifications re-sent after backoff"},
    {&SiteTelemetry::notify_superseded, &SiteStats::notify_superseded,
     "obiwan_notify_superseded_total",
     "Queued notify retries coalesced with a same-holder same-object entry "
     "(superseded by version) instead of deepening the retry queue"},
    {&SiteTelemetry::holders_dropped, &SiteStats::holders_dropped,
     "obiwan_holders_dropped_total",
     "Holders unregistered after consecutive notification failures"},
};

}  // namespace

// ---------------------------------------------------------------------------
// SiteTelemetry
// ---------------------------------------------------------------------------

SiteTelemetry::SiteTelemetry(SiteId site, MetricsRegistry& metrics) {
  const MetricLabels labels{
      {"site", std::to_string(site)},
      {"inst", std::to_string(MetricsRegistry::NextInstance())}};
  for (const SiteCounterSpec& spec : kSiteCounters) {
    this->*spec.handle = &metrics.GetCounter(spec.name, labels, spec.help);
  }

  masters = &metrics.GetGauge("obiwan_site_masters", labels, "Masters owned");
  replicas = &metrics.GetGauge("obiwan_site_replicas", labels, "Replicas held");
  proxy_ins = &metrics.GetGauge("obiwan_site_proxy_ins", labels,
                                "Live provider-side proxy-ins");

  auto role_gauge = [&](const char* role) {
    MetricLabels role_labels = labels;
    role_labels.emplace_back("role", role);
    return &metrics.GetGauge("obiwan_objects", role_labels,
                             "Objects by replication role (frontier = "
                             "distinct unresolved proxy-out targets)");
  };
  objects_master = role_gauge("master");
  objects_replica = role_gauge("replica");
  objects_frontier = role_gauge("frontier");

  auto staleness_gauge = [&](const char* agg) {
    MetricLabels agg_labels = labels;
    agg_labels.emplace_back("agg", agg);
    return &metrics.GetGauge("obiwan_replica_staleness_versions", agg_labels,
                             "Replica lag behind the known master version");
  };
  staleness_max = staleness_gauge("max");
  staleness_p95 = staleness_gauge("p95");
  staleness_age_max =
      &metrics.GetGauge("obiwan_replica_staleness_age_ns", labels,
                        "Oldest replica's time since last sync (site clock)");
  leases_expiring =
      &metrics.GetGauge("obiwan_leases_expiring", labels,
                        "Leased proxy-ins within half a lease of expiry");

  auto holder_gauge = [&](const char* state) {
    MetricLabels state_labels = labels;
    state_labels.emplace_back("state", state);
    return &metrics.GetGauge("obiwan_holders", state_labels,
                             "Registered holders by health (suspect = at "
                             "least one consecutive notification failure)");
  };
  holders_active = holder_gauge("active");
  holders_suspect = holder_gauge("suspect");
  notify_retry_depth =
      &metrics.GetGauge("obiwan_notify_retry_depth", labels,
                        "Queued notifications awaiting their backoff deadline");

  uptime = &metrics.GetGauge(
      "obiwan_site_uptime_ns", labels,
      "Time since this site was constructed (site clock); a reset to ~0 "
      "means the site restarted");
  RegisterBuildInfo(metrics);

  auto op = [&](const char* name) {
    MetricLabels op_labels = labels;
    op_labels.emplace_back("op", name);
    Histogram& latency =
        metrics.GetHistogram("obiwan_rmi_client_latency_ns", op_labels,
                             DefaultLatencyBuckets(),
                             "Round-trip time of outbound requests (site clock)");
    // Tail observations carry an exemplar (trace + span id) by default: the
    // request runs inside SpanScope/TraceContext when the histogram is fed,
    // so a scrape can point at the flight-recorder trace of a slow call.
    latency.SetExemplarThreshold(kDefaultTailExemplarThreshold);
    return Op{&latency,
              &metrics.GetCounter("obiwan_rmi_client_errors_total", op_labels,
                                  "Outbound requests that failed"),
              name};
  };
  op_call = op("call");
  op_get = op("get");
  op_put = op("put");
  op_commit = op("commit");
  op_ping = op("ping");
  op_release = op("release");
  op_renew = op("renew");
  op_notify = op("notify");
  op_inspect = op("inspect");
}

SiteStats SiteTelemetry::Raw() const {
  SiteStats s;
  for (const SiteCounterSpec& spec : kSiteCounters) {
    s.*spec.field = (this->*spec.handle)->Value();
  }
  return s;
}

SiteStats SiteTelemetry::View() const {
  auto since = [](std::uint64_t now, std::uint64_t base) {
    return now > base ? now - base : 0;
  };
  const SiteStats raw = Raw();
  SiteStats s;
  for (const SiteCounterSpec& spec : kSiteCounters) {
    s.*spec.field = since(raw.*spec.field, baseline.*spec.field);
  }
  return s;
}

// ---------------------------------------------------------------------------
// ProxyOut
// ---------------------------------------------------------------------------

Result<std::shared_ptr<Shareable>> ProxyOut::Demand() {
  return site_->DemandThrough(descriptor_, descriptor_.target, mode_,
                              /*refresh=*/false);
}

// ---------------------------------------------------------------------------
// Construction / lifecycle
// ---------------------------------------------------------------------------

Site::Site(SiteId id, std::unique_ptr<net::Transport> transport, Clock& clock)
    : id_(id),
      transport_(std::move(transport)),
      clock_(clock),
      policy_(std::make_unique<NoConsistency>()),
      telemetry_(id, MetricsRegistry::Default()),
      fanout_(clock) {
  created_at_ = clock_.Now();
  telemetry_.uptime->Set(0);
  sinks_.SetFlight(&flight_);
  // The state provider lets flight dumps embed this site's replica-table
  // summary next to its spans; it runs at dump time on the dumping thread
  // (the site lock is never held across a dump trigger).
  FlightRecorder::Global().Register(id_, &flight_,
                                    [this] { return ReplicaSummaryJson(); });
  dispatcher_.SetClock(&clock_);
  dispatcher_.SetTrace(&sinks_, id_);
  dispatcher_.RegisterService(rmi::MessageKind::kCall, this);
  dispatcher_.RegisterService(rmi::MessageKind::kPing, this);
  dispatcher_.RegisterService(rmi::MessageKind::kGet, this);
  dispatcher_.RegisterService(rmi::MessageKind::kPut, this);
  dispatcher_.RegisterService(rmi::MessageKind::kCommit, this);
  dispatcher_.RegisterService(rmi::MessageKind::kInvalidate, this);
  dispatcher_.RegisterService(rmi::MessageKind::kRelease, this);
  dispatcher_.RegisterService(rmi::MessageKind::kRenew, this);
  dispatcher_.RegisterService(rmi::MessageKind::kPush, this);
  dispatcher_.RegisterService(rmi::MessageKind::kCallBatch, this);
  dispatcher_.RegisterService(rmi::MessageKind::kInspect, this);
}

Site::~Site() {
  // First stop the admin endpoint: its handlers capture `this` and may be
  // mid-scrape on the serving thread.
  StopAdmin();
  Stop();
  FlightRecorder::Global().Unregister(&flight_);
  // The object graph is reference-counted (shared_ptr), so cyclic graphs —
  // which OBIWAN fully supports — would never free themselves (the Java
  // prototype leaned on the JVM's tracing GC here). The site owns its
  // masters and replicas: unlink every reference field at teardown so cycles
  // break. Objects an application still holds survive individually, but
  // their links are gone once their site is.
  auto unlink = [](Shareable& obj) {
    for (const RefFieldInfo& rf : obj.obiwan_class().refs()) {
      rf.get(obj).Reset();
    }
  };
  table_.ForEachMaster(
      [&](ObjectId, MasterEntry& entry) { unlink(*entry.obj); });
  table_.ForEachReplica(
      [&](ObjectId, ReplicaEntry& entry) { unlink(*entry.obj); });
  // The registry outlives the site; zero the live-table gauges so this
  // instance's series does not freeze at its last value.
  telemetry_.masters->Set(0);
  telemetry_.replicas->Set(0);
  telemetry_.proxy_ins->Set(0);
  telemetry_.objects_master->Set(0);
  telemetry_.objects_replica->Set(0);
  telemetry_.objects_frontier->Set(0);
  telemetry_.staleness_max->Set(0);
  telemetry_.staleness_p95->Set(0);
  telemetry_.staleness_age_max->Set(0);
  telemetry_.leases_expiring->Set(0);
  telemetry_.holders_active->Set(0);
  telemetry_.holders_suspect->Set(0);
  telemetry_.notify_retry_depth->Set(0);
  telemetry_.uptime->Set(0);
}

Status Site::Start() {
  if (started_) return FailedPreconditionError("site already started");
  OBIWAN_RETURN_IF_ERROR(transport_->Serve(&dispatcher_));
  started_ = true;
  return Status::Ok();
}

void Site::Stop() {
  if (!started_) return;
  transport_->StopServing();
  started_ = false;
}

void Site::SetRequestDeadline(Nanos deadline) {
  request_deadline_ = deadline;
}

Nanos Site::DeadlineBudget() const {
  const Nanos deadline = request_deadline_ != 0 ? request_deadline_
                                                : transport_->default_deadline();
  return deadline > 0 ? deadline : -1;
}

Result<Bytes> Site::TimedRequest(const SiteTelemetry::Op& op,
                                 const net::Address& to, BytesView frame) {
  SpanScope span(&sinks_, clock_, id_, "rpc", std::string(op.name) + " " + to,
                 TraceContext::Current());
  const Nanos start = clock_.Now();
  Result<Bytes> reply =
      transport_->Request(to, frame, net::CallOptions{request_deadline_});
  op.latency->Observe(clock_.Now() - start);
  if (!reply.ok()) {
    op.errors->Inc();
    span.MarkFailed();
    Trace("error", std::string(op.name) + " to " + to + ": " +
                       reply.status().ToString());
    // A Status error escaping the site is the flight recorder's cue: if a
    // dump is armed, this writes the black boxes of every site.
    FlightRecorder::Global().NotifyFailure(reply.status().message());
  }
  return reply;
}

void Site::SyncGauges() {
  telemetry_.masters->Set(static_cast<std::int64_t>(table_.master_count()));
  telemetry_.replicas->Set(static_cast<std::int64_t>(table_.replica_count()));
  std::size_t pins;
  {
    std::lock_guard lock(pins_mutex_);
    pins = proxy_ins_.size();
  }
  telemetry_.proxy_ins->Set(static_cast<std::int64_t>(pins));
}

void Site::RefreshTelemetry() {
  telemetry_.uptime->Set(clock_.Now() - created_at_);
  SyncGauges();
  UpdateReplicationGauges();
  std::lock_guard lock(mutex_);
  SyncHolderGaugesLocked();
}

void Site::SetTailExemplarThreshold(Nanos threshold) {
  for (SiteTelemetry::Op* op :
       {&telemetry_.op_call, &telemetry_.op_get, &telemetry_.op_put,
        &telemetry_.op_commit, &telemetry_.op_ping, &telemetry_.op_release,
        &telemetry_.op_renew, &telemetry_.op_notify, &telemetry_.op_inspect}) {
    op->latency->SetExemplarThreshold(threshold);
  }
}

// ---------------------------------------------------------------------------
// Naming
// ---------------------------------------------------------------------------

void Site::HostRegistry() {
  registry_service_.emplace();
  registry_service_->AttachTo(dispatcher_);
  if (!registry_client_) UseRegistry(address());
}

void Site::UseRegistry(net::Address registry_address) {
  registry_client_.emplace(*transport_, std::move(registry_address));
}

Status Site::Bind(const std::string& name, const std::shared_ptr<Shareable>& obj) {
  if (!registry_client_) {
    return FailedPreconditionError("no registry configured (UseRegistry/HostRegistry)");
  }
  rmi::BoundObject bo;
  {
    ObjectId oid = EnsureId(obj);
    std::lock_guard lock(pins_mutex_);
    ProxyId pin = NewProxyInLocked(oid, nullptr);
    // A bound name is advertised indefinitely; its pin must not be swept by
    // the lease collector while the registry still points at it.
    auto& entry = proxy_ins_.at(pin);
    entry.anchored = true;
    entry.expires_at = 0;
    bo = {address(), oid, pin, obj->obiwan_class().name()};
  }
  return registry_client_->Bind(name, bo);
}

Status Site::Rebind(const std::string& name, const std::shared_ptr<Shareable>& obj) {
  if (!registry_client_) {
    return FailedPreconditionError("no registry configured (UseRegistry/HostRegistry)");
  }
  rmi::BoundObject bo;
  {
    ObjectId oid = EnsureId(obj);
    std::lock_guard lock(pins_mutex_);
    ProxyId pin = NewProxyInLocked(oid, nullptr);
    auto& entry = proxy_ins_.at(pin);
    entry.anchored = true;
    entry.expires_at = 0;
    bo = {address(), oid, pin, obj->obiwan_class().name()};
  }
  return registry_client_->Rebind(name, bo);
}

Status Site::Unbind(const std::string& name) {
  if (!registry_client_) {
    return FailedPreconditionError("no registry configured (UseRegistry/HostRegistry)");
  }
  return registry_client_->Unbind(name);
}

// ---------------------------------------------------------------------------
// Masters and identity
// ---------------------------------------------------------------------------

ObjectId Site::Export(const std::shared_ptr<Shareable>& obj) {
  return EnsureId(obj);
}

ObjectId Site::EnsureId(const std::shared_ptr<Shareable>& obj) {
  // Fast path: the pointer-identity stripes resolve known objects (masters
  // and replicas alike) without touching any shard.
  ObjectId existing = table_.PtrId(obj.get());
  if (existing.valid()) return existing;
  // Mint a candidate id, take its shard, then race for the pointer binding.
  // The winner emplaces the master record while still holding the shard
  // guard, so a loser that looks the returned id up blocks until the record
  // exists; a lost race wastes the minted id, which is harmless (ids are
  // never required to be dense). Must not be called with another shard
  // guard held (the world is fine: guards no-op under it).
  ObjectId oid{id_, next_object_.fetch_add(1, std::memory_order_relaxed)};
  ObjectTable::ShardGuard guard(table_, oid);
  ObjectId winner = table_.PtrIdOrInsert(obj.get(), oid);
  if (winner != oid) return winner;
  MasterEntry entry;
  entry.obj = obj;
  entry.last_update = clock_.Now();
  table_.EmplaceMaster(oid, std::move(entry));
  telemetry_.masters->Set(static_cast<std::int64_t>(table_.master_count()));
  return oid;
}

Result<std::uint64_t> Site::MasterVersion(ObjectId id) const {
  ObjectTable::ShardGuard guard(table_, id);
  const MasterEntry* entry = table_.Master(id);
  if (entry == nullptr) return NotFoundError("not a master here: " + ToString(id));
  return entry->version;
}

void Site::TouchPin(ProxyInEntry& entry) {
  if (proxy_lease_ > 0 && !entry.anchored) {
    entry.expires_at = clock_.Now() + proxy_lease_;
  }
}

ProxyId Site::NewProxyIn(ObjectId target, const net::Address* user) {
  std::lock_guard lock(pins_mutex_);
  return NewProxyInLocked(target, user);
}

ProxyId Site::NewProxyInLocked(ObjectId target, const net::Address* user) {
  auto register_user = [&](ProxyInEntry& entry) {
    if (user != nullptr && std::find(entry.users.begin(), entry.users.end(),
                                     *user) == entry.users.end()) {
      entry.users.push_back(*user);
    }
  };
  // Reuse an existing single-object proxy-in for the same target; repeated
  // gets of one object do not need distinct channels.
  if (auto it = pin_by_target_.find(target); it != pin_by_target_.end()) {
    ProxyInEntry& entry = proxy_ins_.at(it->second);
    TouchPin(entry);
    register_user(entry);
    return it->second;
  }
  ProxyId pin{id_, next_pin_++};
  auto [it, inserted] =
      proxy_ins_.emplace(pin, ProxyInEntry{target, {}, /*cluster=*/false, 0});
  (void)inserted;
  pin_by_target_.emplace(target, pin);
  TouchPin(it->second);
  register_user(it->second);
  telemetry_.proxy_ins_created->Inc();
  telemetry_.proxy_ins->Set(static_cast<std::int64_t>(proxy_ins_.size()));
  clock_.Sleep(proxy_export_cost_);
  return pin;
}

ProxyId Site::NewClusterProxyIn(ObjectId root, std::vector<ObjectId> members,
                                const net::Address* user) {
  std::lock_guard lock(pins_mutex_);
  ProxyId pin{id_, next_pin_++};
  auto [it, inserted] = proxy_ins_.emplace(
      pin, ProxyInEntry{root, std::move(members), /*cluster=*/true, 0});
  (void)inserted;
  TouchPin(it->second);
  if (user != nullptr) it->second.users.push_back(*user);
  telemetry_.proxy_ins_created->Inc();
  telemetry_.proxy_ins->Set(static_cast<std::int64_t>(proxy_ins_.size()));
  clock_.Sleep(proxy_export_cost_);
  return pin;
}

std::size_t Site::CollectExpiredProxyIns() {
  std::size_t collected = 0;
  {
    std::lock_guard lock(pins_mutex_);
    if (proxy_lease_ <= 0) return 0;
    const Nanos now = clock_.Now();
    for (auto it = proxy_ins_.begin(); it != proxy_ins_.end();) {
      if (it->second.expires_at != 0 && it->second.expires_at <= now) {
        if (auto tit = pin_by_target_.find(it->second.target);
            tit != pin_by_target_.end() && tit->second == it->first) {
          pin_by_target_.erase(tit);
        }
        it = proxy_ins_.erase(it);
        ++collected;
      } else {
        ++it;
      }
    }
    telemetry_.proxy_ins->Set(static_cast<std::int64_t>(proxy_ins_.size()));
  }
  UpdateReplicationGauges();
  return collected;
}

ProxyDescriptor Site::DescriptorFor(ProxyId pin, ObjectId target,
                                    std::string class_name) const {
  return ProxyDescriptor{pin, transport_->LocalAddress(), target,
                         std::move(class_name)};
}

// Caller holds the covering shard guard (or the world).
std::shared_ptr<Shareable> Site::FindLocalUnlocked(ObjectId id) const {
  return table_.Find(id);
}

Result<std::shared_ptr<Shareable>> Site::FindLocal(ObjectId id) const {
  std::shared_ptr<Shareable> obj = table_.FindLocked(id);
  if (obj == nullptr) return NotFoundError("object not present: " + ToString(id));
  return obj;
}

// Caller holds the shard guard of `id` (or the world) for as long as the
// returned pointers are used.
Result<Site::MetaRef> Site::FindMeta(ObjectId id) {
  if (MasterEntry* e = table_.Master(id)) {
    return MetaRef{e->obj, &e->version, &e->policy_state, &e->holders};
  }
  if (ReplicaEntry* e = table_.Replica(id)) {
    return MetaRef{e->obj, &e->version, &e->policy_state, &e->holders};
  }
  return NotFoundError("object not present: " + ToString(id));
}

std::size_t Site::master_count() const { return table_.master_count(); }
std::size_t Site::replica_count() const { return table_.replica_count(); }
std::size_t Site::proxy_in_count() const {
  std::lock_guard lock(pins_mutex_);
  return proxy_ins_.size();
}

void Site::SetConsistencyPolicy(std::unique_ptr<ConsistencyPolicy> policy) {
  // Policy hooks run under shard guards; holding the world excludes them
  // all, so the swap is safe even against in-flight protocol traffic.
  ObjectTable::WorldGuard guard(table_);
  if (policy != nullptr) policy_ = std::move(policy);
}

// ---------------------------------------------------------------------------
// Provider side: Get
// ---------------------------------------------------------------------------

Result<GetReply> Site::ServeGet(const net::Address& from, const GetRequest& req) {
  SpanScope span(&sinks_, clock_, id_, "serve.get",
                 "root " + ToString(req.root) + " for " + from,
                 TraceContext::Current());
  telemetry_.gets_served->Inc();
  Trace("get", "from " + from + ", root " + ToString(req.root) +
                    (req.refresh ? " (refresh)" : ""));

  // Pin check + lease touch under the pins mutex only; the batch walk below
  // takes shard guards, which must never nest inside a leaf lock.
  bool pin_cluster = false;
  std::vector<ObjectId> pin_members;
  {
    std::lock_guard pins(pins_mutex_);
    auto pit = proxy_ins_.find(req.pin);
    if (pit == proxy_ins_.end()) {
      return NotFoundError("unknown proxy-in at provider");
    }
    TouchPin(pit->second);
    pin_cluster = pit->second.cluster;
    if (pin_cluster) pin_members = pit->second.members;
  }

  // --- select the batch -----------------------------------------------------
  std::vector<ObjectId> batch_ids;
  std::vector<std::shared_ptr<Shareable>> batch_objs;
  std::unordered_set<ObjectId, ObjectIdHash> in_batch;

  auto add = [&](ObjectId oid, std::shared_ptr<Shareable> obj) {
    in_batch.insert(oid);
    batch_ids.push_back(oid);
    batch_objs.push_back(std::move(obj));
  };

  if (req.refresh) {
    // Refresh returns current state of what the pin covers: the whole
    // cluster for a cluster pin, the requested root otherwise.
    if (pin_cluster) {
      for (ObjectId member : pin_members) {
        if (auto obj = table_.FindLocked(member)) add(member, std::move(obj));
      }
    } else {
      auto obj = table_.FindLocked(req.root);
      if (obj == nullptr) return NotFoundError("refresh root not present");
      add(req.root, std::move(obj));
    }
    if (batch_ids.empty()) return NotFoundError("nothing left to refresh");
  } else {
    std::shared_ptr<Shareable> root = table_.FindLocked(req.root);
    if (root == nullptr) return NotFoundError("get root not present");

    const bool by_count = req.mode.kind == ReplicationMode::Kind::kIncremental ||
                          req.mode.kind == ReplicationMode::Kind::kCluster;
    const std::uint32_t limit = by_count ? std::max<std::uint32_t>(req.mode.count, 1)
                                         : 0;  // 0 = unlimited

    // Breadth-first expansion from the root; boundaries are refs that are
    // unresolved proxies here (forwarded) or nodes beyond the batch budget.
    // Each node's children are read under its own shard guard and their ids
    // assigned after it is released (EnsureId may lock other shards).
    std::deque<std::pair<ObjectId, std::uint32_t>> queue;
    queue.emplace_back(EnsureId(root), 0);
    while (!queue.empty()) {
      auto [oid, depth] = queue.front();
      queue.pop_front();
      if (in_batch.contains(oid)) continue;
      if (limit != 0 && batch_ids.size() >= limit) break;
      std::shared_ptr<Shareable> obj;
      std::vector<std::shared_ptr<Shareable>> children;
      {
        ObjectTable::ShardGuard guard(table_, oid);
        obj = table_.Find(oid);
        if (obj == nullptr) continue;
        const bool at_frontier =
            req.mode.kind == ReplicationMode::Kind::kClusterDepth &&
            depth >= req.mode.depth;  // depth-bounded cluster boundary
        if (!at_frontier) {
          for (const RefFieldInfo& rf : obj->obiwan_class().refs()) {
            RefBase& rb = rf.get(*obj);
            if (rb.IsLocal()) children.push_back(rb.local());
          }
        }
      }
      add(oid, std::move(obj));
      for (auto& child : children) {
        queue.emplace_back(EnsureId(child), depth + 1);
      }
    }
  }

  // --- serialize -------------------------------------------------------------
  GetReply reply;
  const bool shared_pair = req.mode.SharedProxyPair() && !req.refresh;
  if (shared_pair) {
    ProxyId cpin = NewClusterProxyIn(batch_ids.front(), batch_ids, &from);
    reply.cluster = ClusterInfo{
        DescriptorFor(cpin, batch_ids.front(),
                      batch_objs.front()->obiwan_class().name()),
        batch_ids};
  }

  // Per-reference snapshot taken under the object's shard guard; boundary
  // resolution (EnsureId / NewProxyIn) happens after the guard is released.
  struct RefSnap {
    enum class Kind { kNull, kLocal, kProxy } kind = Kind::kNull;
    std::shared_ptr<Shareable> local;
    ProxyDescriptor proxy;
  };

  reply.objects.reserve(batch_ids.size());
  for (std::size_t i = 0; i < batch_ids.size(); ++i) {
    ObjectId oid = batch_ids[i];
    const std::shared_ptr<Shareable>& obj = batch_objs[i];
    const ClassInfo& ci = obj->obiwan_class();

    ObjectRecord rec;
    rec.id = oid;
    rec.class_name = ci.name();

    std::vector<RefSnap> ref_snaps;
    ref_snaps.reserve(ci.refs().size());
    {
      // One consistent snapshot per object: fields, version, policy data and
      // ref targets all read under the record's shard guard. Holder
      // registration rides the same guard with the site mutex nested inside
      // (shard -> site is the legal lock order), so registering can never
      // interleave with a concurrent DropHolder sweep, which holds both.
      ObjectTable::ShardGuard guard(table_, oid);
      OBIWAN_ASSIGN_OR_RETURN(MetaRef meta, FindMeta(oid));
      rec.version = *meta.version;
      rec.policy_data = policy_->MakeGetData(
          MasterView{oid, *meta.version, *meta.policy_state, *meta.holders},
          from);

      wire::Writer fields;
      ci.EncodeFields(*obj, fields);
      rec.fields = std::move(fields).Take();

      for (const RefFieldInfo& rf : ci.refs()) {
        RefBase& rb = rf.get(*obj);
        RefSnap snap;
        if (rb.IsLocal()) {
          snap.kind = RefSnap::Kind::kLocal;
          snap.local = rb.local();
        } else if (rb.IsProxy()) {
          // An unresolved proxy here: forward its descriptor so the demander
          // faults straight to the original provider (replica chains).
          snap.kind = RefSnap::Kind::kProxy;
          snap.proxy = rb.proxy()->descriptor();
        }
        ref_snaps.push_back(std::move(snap));
      }

      table_.LinkHolder(oid, from);
      if (MasterEntry* master = table_.Master(oid)) ++master->gets_served;
      {
        // A (re-)registering holder starts healthy: a get proves the device
        // is back, even if it was dropped as unreachable earlier.
        std::lock_guard health(mutex_);
        holder_health_[from].consecutive_failures = 0;
      }
    }

    rec.refs.reserve(ref_snaps.size());
    for (RefSnap& snap : ref_snaps) {
      switch (snap.kind) {
        case RefSnap::Kind::kNull:
          rec.refs.push_back(RefEntry::Null());
          break;
        case RefSnap::Kind::kLocal: {
          ObjectId tid = EnsureId(snap.local);
          if (in_batch.contains(tid)) {
            rec.refs.push_back(RefEntry::Inline(tid));
          } else {
            rec.refs.push_back(RefEntry::Proxy(DescriptorFor(
                NewProxyIn(tid, &from), tid, snap.local->obiwan_class().name())));
          }
          break;
        }
        case RefSnap::Kind::kProxy:
          rec.refs.push_back(RefEntry::Proxy(std::move(snap.proxy)));
          break;
      }
    }

    if (!req.refresh && !shared_pair) {
      // Incremental mode: the per-object proxy pair of §4.2, giving this
      // replica its individual put/refresh channel.
      rec.provider = DescriptorFor(NewProxyIn(oid, &from), oid, rec.class_name);
    }

    telemetry_.objects_served->Inc();
    reply.objects.push_back(std::move(rec));
  }

  MaybeUpdateReplicationGauges();
  {
    std::lock_guard lock(mutex_);
    SyncHolderGaugesLocked();
  }
  return reply;
}

// ---------------------------------------------------------------------------
// Provider side: Put
// ---------------------------------------------------------------------------

Result<PutReply> Site::ServePut(const net::Address& from, const PutRequest& req) {
  SpanScope span(&sinks_, clock_, id_, "serve.put",
                 std::to_string(req.items.size()) + " item(s) from " + from +
                     (req.transactional ? " (tx)" : ""),
                 TraceContext::Current());
  // Notifications (invalidations / pushes) are built under the batch's shard
  // guards but sent after releasing them — network I/O under an object lock
  // deadlocks when the recipient is served by another thread of this process.
  std::vector<OutboundNotify> outbound;

  telemetry_.puts_served->Inc();
  Trace("put", "from " + from + ", " + std::to_string(req.items.size()) +
                    " item(s)" + (req.transactional ? " (tx)" : ""));

  {
    std::lock_guard pins(pins_mutex_);
    auto pit = proxy_ins_.find(req.pin);
    if (pit == proxy_ins_.end()) {
      return NotFoundError("unknown proxy-in at provider");
    }
    TouchPin(pit->second);
  }
  if (req.items.empty()) return InvalidArgumentError("empty put");

  // Pre-resolve every referenced target before taking the batch guard: ref
  // targets live in arbitrary shards outside it, and no shard guard may be
  // acquired while one is held.
  std::unordered_map<ObjectId, std::shared_ptr<Shareable>, ObjectIdHash>
      ref_targets;
  std::vector<ObjectId> batch_ids;
  batch_ids.reserve(req.items.size());
  for (const PutItem& item : req.items) {
    batch_ids.push_back(item.id);
    for (const RefEntry& entry : item.refs) {
      ObjectId tid;
      if (entry.tag == RefEntry::Tag::kInline) {
        tid = entry.target;
      } else if (entry.tag == RefEntry::Tag::kProxy) {
        tid = entry.proxy.target;
      }
      if (tid.valid() && !ref_targets.contains(tid)) {
        ref_targets.emplace(tid, table_.FindLocked(tid));
      }
    }
  }

  PutReply reply;
  struct NotifyGroup {
    ObjectId id;
    std::uint64_t version;  // master version the holders are now behind
    std::vector<net::Address> recipients;
  };
  std::vector<NotifyGroup> groups;

  {
    // All item shards locked together (ascending order): a multi-object put
    // (cluster or transaction) validates and applies as one atomic unit.
    ObjectTable::BatchGuard guard(table_, batch_ids);

    // Validate everything before applying anything, so the batch is
    // all-or-nothing.
    struct Target {
      MetaRef meta;
      const PutItem* item;
      const ClassInfo* ci;
    };
    std::vector<Target> targets;
    targets.reserve(req.items.size());
    for (const PutItem& item : req.items) {
      OBIWAN_ASSIGN_OR_RETURN(MetaRef meta, FindMeta(item.id));
      const ClassInfo& ci = meta.obj->obiwan_class();
      if (req.transactional && item.base_version != *meta.version) {
        return ConflictError("transaction conflict on " + ToString(item.id) +
                             ": expected version " + std::to_string(item.base_version) +
                             ", master at " + std::to_string(*meta.version));
      }
      if (item.read_only) {
        if (!req.transactional) {
          return InvalidArgumentError("read-only item outside a transaction");
        }
        targets.push_back(Target{std::move(meta), &item, &ci});
        continue;
      }
      if (item.refs.size() != ci.refs().size()) {
        return DataLossError("put ref schema mismatch for " + ToString(item.id));
      }
      OBIWAN_RETURN_IF_ERROR(policy_->ValidatePut(
          MasterView{item.id, *meta.version, *meta.policy_state, *meta.holders},
          PutView{from, item.id, item.base_version, AsView(item.policy_data)}));
      targets.push_back(Target{std::move(meta), &item, &ci});
    }

    reply.new_versions.reserve(targets.size());
    for (Target& t : targets) {
      if (t.item->read_only) {
        reply.new_versions.push_back(*t.meta.version);
        continue;
      }
      wire::Reader fields(AsView(t.item->fields));
      OBIWAN_RETURN_IF_ERROR(t.ci->DecodeFields(*t.meta.obj, fields));

      const auto& ref_infos = t.ci->refs();
      for (std::size_t j = 0; j < ref_infos.size(); ++j) {
        RefBase& rb = ref_infos[j].get(*t.meta.obj);
        const RefEntry& entry = t.item->refs[j];
        switch (entry.tag) {
          case RefEntry::Tag::kNull:
            rb.Reset();
            break;
          case RefEntry::Tag::kInline: {
            if (auto local = ref_targets[entry.target]) {
              rb.BindLocal(entry.target, std::move(local));
            }
            // Unresolvable id: the replica references an object this provider
            // has never seen and supplied no channel for; keep the old ref.
            break;
          }
          case RefEntry::Tag::kProxy: {
            if (auto local = ref_targets[entry.proxy.target]) {
              rb.BindLocal(entry.proxy.target, std::move(local));
            } else {
              rb.BindProxy(std::make_shared<ProxyOut>(this, entry.proxy,
                                                      ReplicationMode::Incremental()));
              telemetry_.proxy_outs_created->Inc();
            }
            break;
          }
        }
      }

      ++*t.meta.version;
      reply.new_versions.push_back(*t.meta.version);
      if (MasterEntry* master = table_.Master(t.item->id)) {
        ++master->puts_accepted;
        master->last_update = clock_.Now();
      } else if (ReplicaEntry* replica = table_.Replica(t.item->id)) {
        // A re-exported replica accepted a downstream put: it is now ahead of
        // what it last synchronised from its own master.
        replica->known_master_version =
            std::max(replica->known_master_version, *t.meta.version);
      }

      NotifyGroup group{t.item->id, *t.meta.version, {}};
      for (net::Address addr : policy_->AfterPut(
               MasterView{t.item->id, *t.meta.version, *t.meta.policy_state,
                          *t.meta.holders},
               PutView{from, t.item->id, t.item->base_version,
                       AsView(t.item->policy_data)})) {
        if (addr != from) group.recipients.push_back(std::move(addr));
      }
      if (!group.recipients.empty()) groups.push_back(std::move(group));
    }
  }

  // Build each notification body *once per object* — under an
  // updates-dissemination policy the new state itself travels instead of an
  // invalidation — and share the wrapped frame across the object's holders.
  // An unreachable holder is retried with backoff and eventually dropped
  // (DispatchNotifications); its next put is still caught by the policy's
  // version check. BuildPushRecord takes its own shard guard, so the batch
  // guard above is already released.
  const bool push = policy_->PushUpdatesOnPut();
  for (NotifyGroup& group : groups) {
    wire::Writer body;
    if (push) {
      Result<ObjectRecord> record = BuildPushRecord(group.id, group.recipients);
      if (!record.ok()) continue;
      wire::Encode(body, *record);
    } else {
      wire::Encode(body, InvalidateRequest{{group.id}, {group.version}});
    }
    const std::size_t payload = body.size();
    auto frame = std::make_shared<const Bytes>(rmi::WrapRequest(
        push ? rmi::MessageKind::kPush : rmi::MessageKind::kInvalidate, body,
        TraceContext::Current(), DeadlineBudget()));
    // Mint this update's journey: (id, version) identifies it on every site
    // it touches, and each recipient's notification records its enqueue now
    // so queue time (fanout batch + any retry backoff) is measurable.
    JourneySink* journey = journey_sink();
    if (journey != nullptr) {
      const Nanos now = clock_.Now();
      journey->OnPutCommit(group.id, group.version, now,
                           group.recipients.size(), push,
                           TraceContext::Current());
      for (const net::Address& addr : group.recipients) {
        journey->OnNotifyEnqueue(group.id, group.version, addr, now);
      }
    }
    for (net::Address& addr : group.recipients) {
      outbound.push_back(OutboundNotify{std::move(addr), frame, payload,
                                        group.id, push, group.version});
    }
  }
  {
    std::lock_guard lock(mutex_);
    CollectDueRetriesLocked(outbound);
  }
  MaybeUpdateReplicationGauges();

  DispatchNotifications(std::move(outbound));

  return reply;
}

Result<ObjectRecord> Site::BuildPushRecord(
    ObjectId id, const std::vector<net::Address>& recipients) {
  ObjectRecord rec;
  rec.id = id;

  // Snapshot fields + ref targets under the record's shard guard, then
  // resolve boundary refs (EnsureId / NewProxyIn touch other shards and the
  // pins mutex) with the guard released.
  struct RefSnap {
    enum class Kind { kNull, kLocal, kProxy } kind = Kind::kNull;
    std::shared_ptr<Shareable> local;
    ProxyDescriptor proxy;
  };
  std::vector<RefSnap> ref_snaps;
  {
    ObjectTable::ShardGuard guard(table_, id);
    OBIWAN_ASSIGN_OR_RETURN(MetaRef meta, FindMeta(id));
    const ClassInfo& ci = meta.obj->obiwan_class();
    rec.class_name = ci.name();
    rec.version = *meta.version;

    wire::Writer fields;
    ci.EncodeFields(*meta.obj, fields);
    rec.fields = std::move(fields).Take();

    ref_snaps.reserve(ci.refs().size());
    for (const RefFieldInfo& rf : ci.refs()) {
      RefBase& rb = rf.get(*meta.obj);
      RefSnap snap;
      if (rb.IsLocal()) {
        snap.kind = RefSnap::Kind::kLocal;
        snap.local = rb.local();
      } else if (rb.IsProxy()) {
        snap.kind = RefSnap::Kind::kProxy;
        snap.proxy = rb.proxy()->descriptor();
      }
      ref_snaps.push_back(std::move(snap));
    }
  }

  rec.refs.reserve(ref_snaps.size());
  for (RefSnap& snap : ref_snaps) {
    switch (snap.kind) {
      case RefSnap::Kind::kNull:
        rec.refs.push_back(RefEntry::Null());
        break;
      case RefSnap::Kind::kLocal: {
        ObjectId tid = EnsureId(snap.local);
        // One shared pin per target (NewProxyIn reuses through the index);
        // every recipient of this record can fault through it, so they all
        // become its users.
        ProxyId pin = NewProxyIn(tid);
        {
          std::lock_guard pins(pins_mutex_);
          ProxyInEntry& entry = proxy_ins_.at(pin);
          for (const net::Address& addr : recipients) {
            if (std::find(entry.users.begin(), entry.users.end(), addr) ==
                entry.users.end()) {
              entry.users.push_back(addr);
            }
          }
        }
        rec.refs.push_back(RefEntry::Proxy(
            DescriptorFor(pin, tid, snap.local->obiwan_class().name())));
        break;
      }
      case RefSnap::Kind::kProxy:
        rec.refs.push_back(RefEntry::Proxy(std::move(snap.proxy)));
        break;
    }
  }
  return rec;
}

Status Site::MarkMasterUpdated(ObjectId id) {
  // A master mutated in place (through a local reference, not a put). Bump
  // its version and notify holders exactly as an accepted put would, so
  // remote replicas become observably stale.
  std::vector<OutboundNotify> outbound;
  std::uint64_t version = 0;
  std::vector<net::Address> holders;
  {
    ObjectTable::ShardGuard guard(table_, id);
    MasterEntry* e = table_.Master(id);
    if (e == nullptr) {
      return NotFoundError("not a master here: " + ToString(id));
    }
    ++e->version;
    e->last_update = clock_.Now();
    version = e->version;
    holders = e->holders;  // snapshot; notify outside the guard
  }
  Trace("update", ToString(id) + " now at version " + std::to_string(version));

  // BuildPushRecord takes the same shard's guard, so this runs after the
  // bump above is released. A racing second bump just makes the pushed
  // record carry an even newer version — the demander's monotonic apply
  // guard handles that.
  const bool push = policy_->PushUpdatesOnPut();
  if (!holders.empty()) {
    wire::Writer body;
    bool built = true;
    if (push) {
      Result<ObjectRecord> record = BuildPushRecord(id, holders);
      if (record.ok()) {
        wire::Encode(body, *record);
      } else {
        built = false;
      }
    } else {
      wire::Encode(body, InvalidateRequest{{id}, {version}});
    }
    if (built) {
      const std::size_t payload = body.size();
      auto frame = std::make_shared<const Bytes>(rmi::WrapRequest(
          push ? rmi::MessageKind::kPush : rmi::MessageKind::kInvalidate,
          body, TraceContext::Current(), DeadlineBudget()));
      // Local in-place edits mint journeys exactly like served puts.
      JourneySink* journey = journey_sink();
      if (journey != nullptr) {
        const Nanos now = clock_.Now();
        journey->OnPutCommit(id, version, now, holders.size(), push,
                             TraceContext::Current());
        for (const net::Address& addr : holders) {
          journey->OnNotifyEnqueue(id, version, addr, now);
        }
      }
      for (const net::Address& addr : holders) {
        outbound.push_back(
            OutboundNotify{addr, frame, payload, id, push, version});
      }
    }
  }
  {
    std::lock_guard lock(mutex_);
    CollectDueRetriesLocked(outbound);
  }
  MaybeUpdateReplicationGauges();
  DispatchNotifications(std::move(outbound));
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Update fanout & holder lifecycle
// ---------------------------------------------------------------------------

void Site::SetNotifyFanout(std::size_t width) { fanout_.set_width(width); }

void Site::SetHolderFailureThreshold(std::uint32_t threshold) {
  std::lock_guard lock(mutex_);
  holder_failure_threshold_ = threshold;
}

void Site::SetNotifyRetryPolicy(NotifyRetryPolicy policy) {
  std::lock_guard lock(mutex_);
  notify_retry_policy_ = policy;
}

void Site::DispatchNotifications(std::vector<OutboundNotify> batch) {
  if (batch.empty()) return;
  std::vector<FanoutPool::Task> tasks;
  tasks.reserve(batch.size());
  for (const OutboundNotify& note : batch) {
    tasks.push_back([this, &note] {
      // Wire-send and ack-return stamps bracket the notify round trip
      // inside the fanout task, so each recipient's hop times are its own
      // even under the jumpable virtual clock (RunAll finishes at the max).
      JourneySink* journey = journey_sink();
      if (journey != nullptr) {
        journey->OnWireSend(note.id, note.version, note.addr, clock_.Now());
      }
      Status status =
          TimedRequest(telemetry_.op_notify, note.addr, AsView(*note.frame))
              .status();
      if (journey != nullptr) {
        journey->OnAckReturn(note.id, note.version, note.addr, clock_.Now(),
                             status.ok());
      }
      return status;
    });
  }
  std::vector<Status> statuses = fanout_.RunAll(std::move(tasks));

  // Holders that crossed the failure threshold are dropped *after* the site
  // mutex is released: DropHolder takes the table's world guard, and shard
  // locks must never be acquired under the site mutex (it is a leaf).
  std::vector<net::Address> drops;
  {
    std::lock_guard lock(mutex_);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      OutboundNotify& note = batch[i];
      if (statuses[i].ok()) {
        telemetry_.invalidations_sent->Inc();
        // Symmetric with the receiver's Handle(kPush), which counts the wire
        // body: payload bytes, not the envelope.
        if (note.push) telemetry_.replication_bytes_out->Inc(note.payload_bytes);
        if (auto hit = holder_health_.find(note.addr);
            hit != holder_health_.end()) {
          hit->second.consecutive_failures = 0;
        }
      } else {
        OBIWAN_LOG(kDebug) << "notification to " << note.addr
                           << " failed: " << statuses[i];
        net::Address addr = note.addr;
        if (HandleNotifyFailureLocked(std::move(note))) {
          drops.push_back(std::move(addr));
        }
      }
    }
    SyncHolderGaugesLocked();
  }
  for (const net::Address& addr : drops) DropHolder(addr);
}

void Site::CollectDueRetriesLocked(std::vector<OutboundNotify>& out) {
  if (notify_retries_.empty()) return;
  const Nanos now = clock_.Now();
  for (auto it = notify_retries_.begin(); it != notify_retries_.end();) {
    if (it->next_attempt <= now) {
      telemetry_.notify_retries->Inc();
      out.push_back(std::move(it->note));
      it = notify_retries_.erase(it);
    } else {
      ++it;
    }
  }
  telemetry_.notify_retry_depth->Set(
      static_cast<std::int64_t>(notify_retries_.size()));
}

bool Site::HandleNotifyFailureLocked(OutboundNotify note) {
  auto hit = holder_health_.find(note.addr);
  if (hit == holder_health_.end()) {
    // The holder was dropped or released while this batch was in flight.
    return false;
  }
  ++hit->second.consecutive_failures;
  if (holder_failure_threshold_ != 0 &&
      hit->second.consecutive_failures >= holder_failure_threshold_) {
    return true;  // caller drops the holder once the site mutex is released
  }
  if (note.attempt >= notify_retry_policy_.max_attempts) return false;
  // Carry the previous backoff forward instead of re-deriving the schedule
  // from attempt zero: the old loop re-read the policy's initial_backoff on
  // every requeue, so a policy change mid-flight silently reset (or blew up)
  // an in-flight notification's schedule.
  note.backoff = note.backoff == 0
                     ? notify_retry_policy_.initial_backoff
                     : std::min(note.backoff * 2, notify_retry_policy_.max_backoff);
  const Nanos backoff = std::min(note.backoff, notify_retry_policy_.max_backoff);
  ++note.attempt;
  const Nanos next_attempt = clock_.Now() + backoff;

  // A newer notification for the same (holder, object) supersedes a queued
  // one — the holder only ever needs the latest state/version. Either way
  // the two entries coalesced into one: count it, or the retry-depth gauge
  // silently understates how many notifications actually failed.
  for (PendingNotify& pending : notify_retries_) {
    if (pending.note.addr == note.addr && pending.note.id == note.id) {
      telemetry_.notify_superseded->Inc();
      if (note.version >= pending.note.version) {
        pending = PendingNotify{std::move(note), next_attempt, backoff};
      }
      return false;
    }
  }
  // Bound the queue per holder: drop the entry closest to resend (oldest).
  std::size_t per_holder = 0;
  for (const PendingNotify& pending : notify_retries_) {
    if (pending.note.addr == note.addr) ++per_holder;
  }
  if (per_holder >= notify_retry_policy_.per_holder_queue) {
    auto oldest = notify_retries_.end();
    for (auto it = notify_retries_.begin(); it != notify_retries_.end(); ++it) {
      if (it->note.addr != note.addr) continue;
      if (oldest == notify_retries_.end() ||
          it->next_attempt < oldest->next_attempt) {
        oldest = it;
      }
    }
    if (oldest != notify_retries_.end()) notify_retries_.erase(oldest);
  }
  notify_retries_.push_back(PendingNotify{std::move(note), next_attempt, backoff});
  return false;
}

void Site::DropHolder(const net::Address& addr) {
  // Atomic with respect to re-registration: the world guard excludes every
  // ServeGet holder registration (which runs under a shard guard with the
  // health reset nested inside it), and the site mutex covers the health and
  // retry state. Re-check the threshold under both before acting — a get
  // that raced in after the failing batch healed the holder, and dropping it
  // now would erase a live registration.
  ObjectTable::WorldGuard world(table_);
  std::lock_guard lock(mutex_);
  auto hit = holder_health_.find(addr);
  if (hit == holder_health_.end()) return;
  if (holder_failure_threshold_ == 0 ||
      hit->second.consecutive_failures < holder_failure_threshold_) {
    return;  // re-registered (healed) since the drop was decided
  }
  holder_health_.erase(hit);
  table_.RemoveHolderEverywhere(addr);
  std::erase_if(notify_retries_, [&](const PendingNotify& pending) {
    return pending.note.addr == addr;
  });
  telemetry_.holders_dropped->Inc();
  Trace("holder", addr + " dropped after repeated notification failures");
}

void Site::SyncHolderGaugesLocked() {
  std::int64_t active = 0;
  std::int64_t suspect = 0;
  for (const auto& [addr, health] : holder_health_) {
    (health.consecutive_failures == 0 ? active : suspect) += 1;
  }
  telemetry_.holders_active->Set(active);
  telemetry_.holders_suspect->Set(suspect);
  telemetry_.notify_retry_depth->Set(
      static_cast<std::int64_t>(notify_retries_.size()));
}

// Caller holds pins_mutex_.
bool Site::HolderStillPinnedLocked(const net::Address& addr,
                                   ObjectId oid) const {
  for (const auto& [pin, entry] : proxy_ins_) {
    const bool covers =
        entry.cluster ? std::find(entry.members.begin(), entry.members.end(),
                                  oid) != entry.members.end()
                      : entry.target == oid;
    if (!covers) continue;
    if (std::find(entry.users.begin(), entry.users.end(), addr) !=
        entry.users.end()) {
      return true;
    }
  }
  return false;
}

bool Site::HolderAnywhere(const net::Address& addr) const {
  {
    std::lock_guard pins(pins_mutex_);
    for (const auto& [pin, entry] : proxy_ins_) {
      if (std::find(entry.users.begin(), entry.users.end(), addr) !=
          entry.users.end()) {
        return true;
      }
    }
  }
  // Pins mutex released before the table scan: the holder index walk takes
  // shard guards, which must never nest inside a leaf lock.
  return table_.HolderAnywhere(addr);
}

std::size_t Site::PumpNotifyRetries() {
  std::vector<OutboundNotify> due;
  {
    std::lock_guard lock(mutex_);
    CollectDueRetriesLocked(due);
  }
  const std::size_t attempted = due.size();
  DispatchNotifications(std::move(due));
  return attempted;
}

std::size_t Site::pending_notify_retries() const {
  std::lock_guard lock(mutex_);
  return notify_retries_.size();
}

Status Site::ServePush(const ObjectRecord& record) {
  SpanScope span(&sinks_, clock_, id_, "serve.push", ToString(record.id),
                 TraceContext::Current());
  {
    // Early filter only — the authoritative check is Materialize's monotonic
    // apply guard, which re-reads the version under the same shard guard it
    // decodes under (a late push racing a newer sync must not regress the
    // replica).
    ObjectTable::ShardGuard guard(table_, record.id);
    ReplicaEntry* rec = table_.Replica(record.id);
    if (rec == nullptr) {
      // No longer holding this replica; nothing to update.
      return Status::Ok();
    }
    if (record.version < rec->version) {
      // A late or retried push from before our last sync — applying it
      // would regress the replica. The sender's state is already covered.
      return Status::Ok();
    }
  }
  JourneySink* journey = journey_sink();
  if (journey != nullptr) {
    journey->OnHolderReceive(record.id, record.version, clock_.Now(),
                             /*push=*/true);
  }
  GetReply reply;
  reply.objects.push_back(record);
  ProxyDescriptor via;
  via.target = record.id;
  OBIWAN_ASSIGN_OR_RETURN(
      auto obj, Materialize(via, reply, ReplicationMode::Incremental(),
                            /*refresh=*/true, record.id));
  (void)obj;
  if (journey != nullptr) {
    journey->OnReplicaApply(record.id, record.version, clock_.Now());
  }
  telemetry_.invalidations_received->Inc();  // counted as an update notification
  Trace("push", ToString(record.id) + " updated in place");
  ReplicaUpdateCallback callback;
  {
    std::lock_guard lock(mutex_);
    callback = on_replica_update_;
  }
  if (callback) callback(record.id, /*stale=*/false);
  return Status::Ok();
}

Status Site::ServeRenew(ProxyId pin) {
  std::lock_guard pins(pins_mutex_);
  auto it = proxy_ins_.find(pin);
  if (it == proxy_ins_.end()) return NotFoundError("unknown proxy-in");
  TouchPin(it->second);
  return Status::Ok();
}

Status Site::RenewProxy(const ProxyDescriptor& descriptor) {
  TraceContext::Scope span(TraceContext::CurrentOrNew(id_));
  wire::Writer body;
  wire::Encode(body, descriptor.pin);
  OBIWAN_ASSIGN_OR_RETURN(
      Bytes reply,
      TimedRequest(telemetry_.op_renew, descriptor.provider,
                   AsView(rmi::WrapRequest(rmi::MessageKind::kRenew, body,
                                           TraceContext::Current(),
                                           DeadlineBudget(), address()))));
  (void)reply;
  return Status::Ok();
}

Status Site::ServeInvalidate(const InvalidateRequest& req) {
  SpanScope span(&sinks_, clock_, id_, "serve.invalidate",
                 std::to_string(req.ids.size()) + " id(s)",
                 TraceContext::Current());
  std::vector<ObjectId> invalidated;
  std::vector<std::pair<ObjectId, std::uint64_t>> received;
  for (std::size_t i = 0; i < req.ids.size(); ++i) {
    ObjectId oid = req.ids[i];
    ObjectTable::ShardGuard guard(table_, oid);
    ReplicaEntry* e = table_.Replica(oid);
    if (e == nullptr) continue;
    e->stale = true;
    if (i < req.versions.size()) {
      e->known_master_version =
          std::max(e->known_master_version, req.versions[i]);
    } else {
      // Unversioned invalidation (older peer): the master moved at least
      // one version past what we hold.
      e->known_master_version =
          std::max(e->known_master_version, e->version + 1);
    }
    telemetry_.invalidations_received->Inc();
    Trace("invalidate", ToString(oid) + " marked stale");
    invalidated.push_back(oid);
    received.emplace_back(oid, e->known_master_version);
  }
  MaybeUpdateReplicationGauges();
  if (JourneySink* journey = journey_sink()) {
    // Holder-side receive stamp, keyed by the same (id, version) the
    // provider minted; the apply hop lands later, when the refresh brings
    // the replica to this version.
    const Nanos now = clock_.Now();
    for (const auto& [oid, version] : received) {
      journey->OnHolderReceive(oid, version, now, /*push=*/false);
    }
  }
  ReplicaUpdateCallback callback;
  {
    std::lock_guard lock(mutex_);
    callback = on_replica_update_;
  }
  if (callback) {
    for (ObjectId oid : invalidated) callback(oid, /*stale=*/true);
  }
  return Status::Ok();
}

Status Site::ServeRelease(const net::Address& from, ProxyId pin) {
  // Pin bookkeeping and the "still pinned elsewhere?" decision happen in one
  // pins-mutex critical section, so a concurrent get re-pinning the same
  // object either lands before the decision (and keeps the holder) or after
  // the unlink below (and re-registers it via its own shard guard).
  std::vector<ObjectId> unlink;
  {
    std::lock_guard pins(pins_mutex_);
    auto it = proxy_ins_.find(pin);
    if (it == proxy_ins_.end()) return NotFoundError("unknown proxy-in");
    ProxyInEntry& entry = it->second;
    std::erase(entry.users, from);
    if (!entry.users.empty()) {
      // Other demanders still fault/put through this pin; only the releasing
      // site's interest is gone.
      return Status::Ok();
    }
    const std::vector<ObjectId> affected =
        entry.cluster ? entry.members : std::vector<ObjectId>{entry.target};
    if (auto tit = pin_by_target_.find(entry.target);
        tit != pin_by_target_.end() && tit->second == pin) {
      pin_by_target_.erase(tit);
    }
    proxy_ins_.erase(it);
    telemetry_.proxy_ins->Set(static_cast<std::int64_t>(proxy_ins_.size()));
    for (ObjectId oid : affected) {
      if (!HolderStillPinnedLocked(from, oid)) unlink.push_back(oid);
    }
  }
  // If that was the demander's last pin covering an object, it can no longer
  // fault or put it — stop sending it invalidations/pushes.
  for (ObjectId oid : unlink) {
    ObjectTable::ShardGuard guard(table_, oid);
    table_.UnlinkHolder(oid, from);
  }
  const bool anywhere = HolderAnywhere(from);
  {
    std::lock_guard lock(mutex_);
    if (!anywhere) holder_health_.erase(from);
    SyncHolderGaugesLocked();
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Provider side: Call (the RMI skeleton path)
// ---------------------------------------------------------------------------

Result<Bytes> Site::ServeCall(const rmi::CallRequest& call) {
  SpanScope span(&sinks_, clock_, id_, "serve.call",
                 call.method + " on " + ToString(call.target),
                 TraceContext::Current());
  telemetry_.calls_served->Inc();
  Trace("call", call.method + " on " + ToString(call.target));
  std::shared_ptr<Shareable> obj = table_.FindLocked(call.target);
  if (obj == nullptr) {
    return NotFoundError("call target not present: " + ToString(call.target));
  }
  const MethodInfo* method = obj->obiwan_class().FindMethod(call.method);
  if (method == nullptr) {
    return NotFoundError("no method '" + call.method + "' on class " +
                         obj->obiwan_class().name());
  }
  wire::Reader args(AsView(call.args));
  // Dispatched with the site lock *released*: the method body may dereference
  // a proxy (a fault that re-enters this site with a nested get) or put its
  // edits back — the same reentrancy a local LMI invocation has. The
  // shared_ptr keeps the target alive even if it is released concurrently.
  return method->dispatch(*obj, args);
}

// ---------------------------------------------------------------------------
// Demander side
// ---------------------------------------------------------------------------

Result<std::shared_ptr<Shareable>> Site::DemandThrough(
    const ProxyDescriptor& descriptor, ObjectId root, ReplicationMode mode,
    bool refresh, bool shortcut_local) {
  // The whole fault-and-replicate flow — this get, the provider's handler,
  // and any nested fault it triggers — shares one correlation id.
  TraceContext::Scope flow(TraceContext::CurrentOrNew(id_));
  // Opened only when a proxy-out dereference actually goes remote; the get
  // span below (and everything under it) then records as its child —
  // fault → get → rpc → dispatch → serve.get in the exported timeline.
  std::optional<SpanScope> fault_span;
  if (!refresh && shortcut_local) {
    // Identity preservation: a replica (or our own master) short-circuits
    // the fault without touching the network.
    if (auto local = table_.FindLocked(root)) return local;
    telemetry_.object_faults->Inc();
    Trace("fault", ToString(root) + " via " + descriptor.provider);
    fault_span.emplace(&sinks_, clock_, id_, "fault",
                       ToString(root) + " via " + descriptor.provider,
                       TraceContext::Current());
  }
  telemetry_.gets_sent->Inc();
  SpanScope get_span(&sinks_, clock_, id_, "get",
                     ToString(root) + (refresh ? " (refresh)" : "") + " from " +
                         descriptor.provider,
                     TraceContext::Current());

  // The request travels with the site lock *released*: a synchronous
  // transport may serve the provider side on another thread of this very
  // process (or even this very site, over TCP loopback).
  GetRequest req{descriptor.pin, root, mode, refresh};
  wire::Writer body;
  wire::Encode(body, req);
  Result<Bytes> reply_result =
      TimedRequest(telemetry_.op_get, descriptor.provider,
                   AsView(rmi::WrapRequest(rmi::MessageKind::kGet, body,
                                           TraceContext::Current(),
                                           DeadlineBudget(), address())));
  if (!reply_result.ok()) {
    // The provider is unreachable: held replicas keep ageing, and the gauges
    // must show it even though nothing was materialized.
    MaybeUpdateReplicationGauges();
    return reply_result.status();
  }
  Bytes reply_bytes = std::move(*reply_result);
  telemetry_.replication_bytes_in->Inc(reply_bytes.size());
  wire::Reader r(AsView(reply_bytes));
  GetReply reply = wire::Decode<GetReply>(r);
  OBIWAN_RETURN_IF_ERROR(r.status());

  return Materialize(descriptor, reply, mode, refresh, root);
}

Result<std::shared_ptr<Shareable>> Site::Materialize(const ProxyDescriptor& via,
                                                     const GetReply& reply,
                                                     ReplicationMode mode,
                                                     bool refresh, ObjectId want) {
  SpanScope span(&sinks_, clock_, id_, "materialize",
                 std::to_string(reply.objects.size()) + " object(s)",
                 TraceContext::Current());
  if (reply.objects.empty()) return DataLossError("empty replication batch");

  const ProxyDescriptor* cluster_provider =
      reply.cluster ? &reply.cluster->provider : nullptr;

  std::unordered_map<ObjectId, std::shared_ptr<Shareable>, ObjectIdHash> present;
  std::vector<bool> fresh(reply.objects.size(), false);

  // Pass 1: instantiate new replicas / reconcile existing ones, each record
  // under its own shard guard.
  for (std::size_t i = 0; i < reply.objects.size(); ++i) {
    const ObjectRecord& rec = reply.objects[i];

    // New instances decode before taking the guard: the object is private
    // until EmplaceReplica publishes it.
    OBIWAN_ASSIGN_OR_RETURN(const ClassInfo* ci,
                            ClassRegistry::Instance().Find(rec.class_name));

    ObjectTable::ShardGuard guard(table_, rec.id);

    if (MasterEntry* master = table_.Master(rec.id)) {
      // Our own object came back around a chain; the master is
      // authoritative — never overwrite it from a get.
      present.emplace(rec.id, master->obj);
      continue;
    }

    if (ReplicaEntry* e = table_.Replica(rec.id)) {
      present.emplace(rec.id, e->obj);
      // Monotonic apply guard: a late or retried push/refresh from before
      // our last sync must not regress the replica. (ServePush's early
      // check is only a filter; this one runs under the shard guard the
      // decode runs under, so the race is actually closed.)
      if (refresh && rec.version >= e->version) {
        if (e->obj->obiwan_class().refs().size() != rec.refs.size()) {
          return DataLossError("refresh ref schema mismatch for class " +
                               rec.class_name);
        }
        wire::Reader fields(AsView(rec.fields));
        OBIWAN_RETURN_IF_ERROR(e->obj->obiwan_class().DecodeFields(*e->obj, fields));
        e->version = rec.version;
        e->stale = false;
        e->known_master_version = std::max(e->known_master_version, rec.version);
        e->last_sync = clock_.Now();
        ++e->sync_count;
        policy_->OnReplicaData(ReplicaView{rec.id, e->version, e->policy_state},
                               AsView(rec.policy_data));
        fresh[i] = true;
      }
      // A per-object channel upgrades a replica that had none (or only the
      // shared cluster channel) to individually updatable.
      if (rec.provider.valid() && (!e->provider.valid() || e->in_cluster)) {
        e->provider = rec.provider;
        e->in_cluster = false;
      }
      continue;
    }

    if (ci->refs().size() != rec.refs.size()) {
      return DataLossError("ref schema mismatch for class " + rec.class_name);
    }
    std::shared_ptr<Shareable> obj = ci->NewInstance();
    wire::Reader fields(AsView(rec.fields));
    OBIWAN_RETURN_IF_ERROR(ci->DecodeFields(*obj, fields));

    ReplicaEntry entry;
    entry.obj = obj;
    entry.version = rec.version;
    entry.known_master_version = rec.version;
    entry.last_sync = clock_.Now();
    entry.sync_count = 1;
    if (rec.provider.valid()) {
      entry.provider = rec.provider;
    } else if (cluster_provider != nullptr) {
      entry.provider = *cluster_provider;
      entry.in_cluster = true;
    }
    auto [stored, inserted] = table_.EmplaceReplica(rec.id, std::move(entry));
    if (!inserted) {
      // Lost a materialize race within this guard's shard epoch (or the id
      // turned out to be mastered here): the winner's object is the one
      // every reference must alias.
      if (stored != nullptr) {
        present.emplace(rec.id, stored->obj);
      } else if (MasterEntry* master = table_.Master(rec.id)) {
        present.emplace(rec.id, master->obj);
      }
      continue;
    }
    policy_->OnReplicaData(
        ReplicaView{rec.id, stored->version, stored->policy_state},
        AsView(rec.policy_data));
    present.emplace(rec.id, std::move(obj));
    fresh[i] = true;
    telemetry_.replicas_created->Inc();
  }
  telemetry_.replicas->Set(static_cast<std::int64_t>(table_.replica_count()));
  MaybeUpdateReplicationGauges();

  if (reply.cluster) {
    std::lock_guard pins(pins_mutex_);
    cluster_members_[reply.cluster->provider.pin] = reply.cluster->members;
  }

  // Pre-resolve swizzle targets outside any shard guard: pass 2 binds refs
  // under each record's guard, where self-locking lookups are off limits.
  std::unordered_map<ObjectId, std::shared_ptr<Shareable>, ObjectIdHash> resolved;
  for (std::size_t i = 0; i < reply.objects.size(); ++i) {
    if (!fresh[i]) continue;
    for (const RefEntry& entry : reply.objects[i].refs) {
      ObjectId tid;
      if (entry.tag == RefEntry::Tag::kInline) {
        tid = entry.target;
      } else if (entry.tag == RefEntry::Tag::kProxy) {
        tid = entry.proxy.target;
      }
      if (tid.valid() && !present.contains(tid) && !resolved.contains(tid)) {
        resolved.emplace(tid, table_.FindLocked(tid));
      }
    }
  }
  auto lookup = [&](ObjectId tid) -> std::shared_ptr<Shareable> {
    if (auto it = present.find(tid); it != present.end()) return it->second;
    if (auto it = resolved.find(tid); it != resolved.end()) return it->second;
    return nullptr;
  };

  // Pass 2: swizzle references of fresh records. Existing replicas touched
  // by a non-refresh get keep their topology (they may carry local edits).
  for (std::size_t i = 0; i < reply.objects.size(); ++i) {
    if (!fresh[i]) continue;
    const ObjectRecord& rec = reply.objects[i];
    std::shared_ptr<Shareable>& obj = present.at(rec.id);
    ObjectTable::ShardGuard guard(table_, rec.id);
    const auto& ref_infos = obj->obiwan_class().refs();
    for (std::size_t j = 0; j < ref_infos.size(); ++j) {
      RefBase& rb = ref_infos[j].get(*obj);
      const RefEntry& entry = rec.refs[j];
      switch (entry.tag) {
        case RefEntry::Tag::kNull:
          rb.Reset();
          break;
        case RefEntry::Tag::kInline: {
          std::shared_ptr<Shareable> target = lookup(entry.target);
          if (target == nullptr) {
            return DataLossError("dangling inline reference in batch");
          }
          rb.BindLocal(entry.target, std::move(target));
          break;
        }
        case RefEntry::Tag::kProxy: {
          if (auto local = lookup(entry.proxy.target)) {
            // Already replicated here earlier: bind directly, no fault.
            rb.BindLocal(entry.proxy.target, std::move(local));
          } else {
            rb.BindProxy(std::make_shared<ProxyOut>(this, entry.proxy, mode));
            telemetry_.proxy_outs_created->Inc();
          }
          break;
        }
      }
    }
  }

  ObjectId root = want.valid() ? want : via.target;
  auto it = present.find(root);
  if (it == present.end()) {
    return DataLossError("replication batch missing requested root");
  }
  return it->second;
}

// ---------------------------------------------------------------------------
// Put / Refresh / Prefetch
// ---------------------------------------------------------------------------

Result<PutItem> Site::BuildPutItem(ObjectId id, bool read_only) {
  PutItem item;
  item.id = id;
  item.read_only = read_only;

  // Snapshot fields + ref targets under the replica's shard guard; resolve
  // boundary refs (EnsureId / ContainsMaster / NewProxyIn touch other shards
  // and the pins mutex) with the guard released.
  struct RefSnap {
    enum class Kind { kNull, kLocal, kProxyTarget } kind = Kind::kNull;
    std::shared_ptr<Shareable> local;
    ObjectId proxy_target;
  };
  std::vector<RefSnap> ref_snaps;
  {
    ObjectTable::ShardGuard guard(table_, id);
    ReplicaEntry* e = table_.Replica(id);
    if (e == nullptr) {
      return FailedPreconditionError("not a replica here: " + ToString(id));
    }
    item.base_version = e->version;
    if (read_only) return item;  // validation-only: no state travels
    item.policy_data =
        policy_->MakePutData(ReplicaView{id, e->version, e->policy_state}, clock_);

    const ClassInfo& ci = e->obj->obiwan_class();
    wire::Writer fields;
    ci.EncodeFields(*e->obj, fields);
    item.fields = std::move(fields).Take();

    ref_snaps.reserve(ci.refs().size());
    for (const RefFieldInfo& rf : ci.refs()) {
      RefBase& rb = rf.get(*e->obj);
      RefSnap snap;
      if (rb.IsLocal()) {
        snap.kind = RefSnap::Kind::kLocal;
        snap.local = rb.local();
      } else if (rb.IsProxy()) {
        snap.kind = RefSnap::Kind::kProxyTarget;
        snap.proxy_target = rb.proxy()->target();
      }
      ref_snaps.push_back(std::move(snap));
    }
  }

  item.refs.reserve(ref_snaps.size());
  for (RefSnap& snap : ref_snaps) {
    switch (snap.kind) {
      case RefSnap::Kind::kNull:
        item.refs.push_back(RefEntry::Null());
        break;
      case RefSnap::Kind::kProxyTarget:
        // Never resolved here; the provider still holds (or can reach) it.
        item.refs.push_back(RefEntry::Inline(snap.proxy_target));
        break;
      case RefSnap::Kind::kLocal: {
        ObjectId tid = EnsureId(snap.local);
        if (table_.ContainsMaster(tid)) {
          // The replica grew an edge to an object *we* master: hand the
          // provider a proxy descriptor pointing back at us, making the new
          // object reachable from the master graph.
          item.refs.push_back(RefEntry::Proxy(DescriptorFor(
              NewProxyIn(tid), tid, snap.local->obiwan_class().name())));
        } else {
          item.refs.push_back(RefEntry::Inline(tid));
        }
        break;
      }
    }
  }
  return item;
}

Status Site::PutItems(const ProxyDescriptor& provider,
                      const std::vector<std::pair<ObjectId, bool>>& ids,
                      bool transactional) {
  // Install the flow id before building items so the whole reintegration —
  // serialization included — records as one span under one correlation id.
  TraceContext::Scope flow(TraceContext::CurrentOrNew(id_));
  SpanScope span(&sinks_, clock_, id_,
                 transactional ? "commit" : "put",
                 std::to_string(ids.size()) + " item(s) to " +
                     provider.provider,
                 TraceContext::Current());
  PutRequest req;
  req.pin = provider.pin;
  req.transactional = transactional;
  req.items.reserve(ids.size());
  for (const auto& [oid, read_only] : ids) {
    OBIWAN_ASSIGN_OR_RETURN(PutItem item, BuildPutItem(oid, read_only));
    req.items.push_back(std::move(item));
  }

  wire::Writer body;
  wire::Encode(body, req);
  telemetry_.puts_sent->Inc();
  Bytes frame = rmi::WrapRequest(
      transactional ? rmi::MessageKind::kCommit : rmi::MessageKind::kPut, body,
      TraceContext::Current(), DeadlineBudget(), address());
  // Payload (wire body) bytes, symmetric with the provider's Handle(kPut).
  telemetry_.replication_bytes_out->Inc(body.size());
  OBIWAN_ASSIGN_OR_RETURN(
      Bytes reply_bytes,
      TimedRequest(transactional ? telemetry_.op_commit : telemetry_.op_put,
                   provider.provider, AsView(frame)));
  wire::Reader r(AsView(reply_bytes));
  PutReply reply = wire::Decode<PutReply>(r);
  OBIWAN_RETURN_IF_ERROR(r.status());
  if (reply.new_versions.size() != ids.size()) {
    return DataLossError("put reply version count mismatch");
  }

  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i].second) continue;  // read-only items do not advance
    ObjectTable::ShardGuard guard(table_, ids[i].first);
    if (ReplicaEntry* e = table_.Replica(ids[i].first)) {
      e->version = reply.new_versions[i];
      e->stale = false;
      // An accepted put is a synchronisation: we now hold exactly the master
      // state our write produced.
      e->known_master_version = std::max(e->known_master_version, e->version);
      e->last_sync = clock_.Now();
      ++e->put_count;
    }
  }
  MaybeUpdateReplicationGauges();
  return Status::Ok();
}

Status Site::CommitReplicas(const std::vector<ObjectId>& reads,
                            const std::vector<ObjectId>& writes) {
  // Group by provider address; each group commits atomically at its
  // provider, groups commit independently (relaxed, per DESIGN.md).
  std::unordered_map<net::Address, std::pair<ProxyDescriptor,
                                             std::vector<std::pair<ObjectId, bool>>>>
      groups;
  auto add = [&](ObjectId oid, bool read_only) -> Status {
    OBIWAN_ASSIGN_OR_RETURN(ProxyDescriptor provider, ReplicaProvider(oid));
    auto& group = groups[provider.provider];
    if (group.second.empty()) group.first = provider;
    group.second.emplace_back(oid, read_only);
    return Status::Ok();
  };
  for (ObjectId oid : writes) OBIWAN_RETURN_IF_ERROR(add(oid, /*read_only=*/false));
  for (ObjectId oid : reads) {
    // An object both read and written travels once, as a write.
    if (std::find(writes.begin(), writes.end(), oid) != writes.end()) continue;
    OBIWAN_RETURN_IF_ERROR(add(oid, /*read_only=*/true));
  }
  for (auto& [addr, group] : groups) {
    OBIWAN_RETURN_IF_ERROR(PutItems(group.first, group.second,
                                    /*transactional=*/true));
  }
  return Status::Ok();
}

Status Site::Put(RefBase& ref) {
  if (!ref.IsLocal()) {
    return FailedPreconditionError("put requires a resolved local replica");
  }
  ObjectId oid = ref.id();
  if (!oid.valid()) {
    oid = table_.PtrId(ref.local_raw());
    if (!oid.valid()) {
      return FailedPreconditionError("object was never replicated or exported");
    }
  }
  ProxyDescriptor provider;
  {
    ObjectTable::ShardGuard guard(table_, oid);
    if (table_.Master(oid) != nullptr) {
      return FailedPreconditionError("object is mastered here; nothing to put");
    }
    ReplicaEntry* e = table_.Replica(oid);
    if (e == nullptr) {
      return FailedPreconditionError("not a replica here: " + ToString(oid));
    }
    if (e->in_cluster) {
      // §4.3: cluster members share a single proxy pair and "can not be
      // individually updated".
      return FailedPreconditionError(
          "replica belongs to a cluster; use PutCluster");
    }
    if (!e->provider.valid()) {
      return FailedPreconditionError("replica has no provider channel");
    }
    provider = e->provider;
  }
  return PutItems(provider, {{oid, false}}, /*transactional=*/false);
}

Status Site::PutCluster(RefBase& ref) {
  if (!ref.IsLocal()) {
    return FailedPreconditionError("put requires a resolved local replica");
  }
  ProxyDescriptor provider;
  {
    ObjectTable::ShardGuard guard(table_, ref.id());
    ReplicaEntry* e = table_.Replica(ref.id());
    if (e == nullptr) {
      return FailedPreconditionError("not a replica here: " + ToString(ref.id()));
    }
    if (!e->provider.valid()) {
      return FailedPreconditionError("replica has no provider channel");
    }
    provider = e->provider;
  }
  std::vector<ObjectId> members;
  bool degenerate = false;
  {
    std::lock_guard pins(pins_mutex_);
    auto cit = cluster_members_.find(provider.pin);
    if (cit != cluster_members_.end()) {
      members = cit->second;
    } else {
      degenerate = true;
    }
  }
  std::vector<std::pair<ObjectId, bool>> items;
  if (degenerate) {
    items.emplace_back(ref.id(), false);  // degenerate cluster of one
  } else {
    items.reserve(members.size());
    for (ObjectId member : members) {
      if (table_.ContainsReplica(member)) items.emplace_back(member, false);
    }
  }
  return PutItems(provider, items, /*transactional=*/false);
}

std::vector<ObjectId> Site::StaleReplicaIds() const {
  std::vector<ObjectId> ids;
  table_.ForEachReplica([&](ObjectId oid, const ReplicaEntry& e) {
    if (e.stale) ids.push_back(oid);
  });
  return ids;
}

Status Site::RefreshReplica(ObjectId id) {
  ProxyDescriptor provider;
  {
    ObjectTable::ShardGuard guard(table_, id);
    ReplicaEntry* e = table_.Replica(id);
    if (e == nullptr) {
      // kNotFound tells the resync daemon the replica is gone (evicted or
      // restored away) and the entry can be forgotten, not retried.
      return NotFoundError("not a replica here: " + ToString(id));
    }
    if (!e->provider.valid()) {
      return FailedPreconditionError("replica has no provider channel");
    }
    provider = e->provider;
  }
  Status refreshed = DemandThrough(provider, id, ReplicationMode::Incremental(),
                                   /*refresh=*/true)
                         .status();
  if (refreshed.ok()) {
    if (JourneySink* journey = journey_sink()) {
      // The invalidation's apply hop: the replica just caught up to the
      // version it reached, which closes the receive->apply interval the
      // matching OnHolderReceive opened.
      std::uint64_t version = 0;
      {
        ObjectTable::ShardGuard guard(table_, id);
        if (ReplicaEntry* e = table_.Replica(id)) version = e->version;
      }
      if (version > 0) journey->OnReplicaApply(id, version, clock_.Now());
    }
  }
  return refreshed;
}

Status Site::Refresh(RefBase& ref) {
  if (!ref.IsLocal()) {
    return FailedPreconditionError("refresh requires a resolved local replica");
  }
  ObjectId oid = ref.id();
  ProxyDescriptor provider;
  {
    ObjectTable::ShardGuard guard(table_, oid);
    ReplicaEntry* e = table_.Replica(oid);
    if (e == nullptr) {
      return FailedPreconditionError("not a replica here: " + ToString(oid));
    }
    if (!e->provider.valid()) {
      return FailedPreconditionError("replica has no provider channel");
    }
    provider = e->provider;
  }
  return DemandThrough(provider, oid, ReplicationMode::Incremental(),
                       /*refresh=*/true)
      .status();
}

Status Site::PrefetchAll(RefBase& ref) {
  if (ref.IsEmpty()) return Status::Ok();
  // One flow id + one parent span for the whole walk, so the prefetcher's
  // cascade of faults shows up as a single tree in the timeline.
  TraceContext::Scope flow(TraceContext::CurrentOrNew(id_));
  SpanScope span(&sinks_, clock_, id_, "prefetch", ToString(ref.id()),
                 TraceContext::Current());
  OBIWAN_RETURN_IF_ERROR(ref.Demand());

  std::unordered_set<const Shareable*> visited;
  std::vector<Shareable*> stack{ref.local_raw()};
  while (!stack.empty()) {
    Shareable* obj = stack.back();
    stack.pop_back();
    if (!visited.insert(obj).second) continue;
    for (const RefFieldInfo& rf : obj->obiwan_class().refs()) {
      RefBase& rb = rf.get(*obj);
      if (rb.IsEmpty()) continue;
      OBIWAN_RETURN_IF_ERROR(rb.Demand());
      stack.push_back(rb.local_raw());
    }
  }
  return Status::Ok();
}

std::size_t Site::EvictIdleReplicas() {
  // The fixed-point sweep needs a frozen view of every shard at once:
  // evicting one replica can strand another (a list tail only referenced by
  // the evicted node's ref field), possibly in a different shard.
  ObjectTable::WorldGuard world(table_);
  std::size_t evicted = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    std::vector<ObjectId> idle;
    table_.ForEachReplica([&](ObjectId oid, ReplicaEntry& e) {
      // use_count()==1 means the replica table holds the only shared_ptr:
      // no application Ref, no reference field of any live object, and no
      // in-flight batch holds it.
      if (e.obj.use_count() == 1) idle.push_back(oid);
    });
    for (ObjectId oid : idle) {
      if (table_.EraseReplica(oid)) {
        ++evicted;
        progress = true;
      }
    }
  }
  telemetry_.replicas->Set(static_cast<std::int64_t>(table_.replica_count()));
  UpdateReplicationGauges();
  return evicted;
}

bool Site::IsStale(const RefBase& ref) const {
  ObjectTable::ShardGuard guard(table_, ref.id());
  const ReplicaEntry* e = table_.Replica(ref.id());
  return e != nullptr && e->stale;
}

Result<std::uint64_t> Site::ReplicaVersion(const RefBase& ref) const {
  ObjectTable::ShardGuard guard(table_, ref.id());
  const ReplicaEntry* e = table_.Replica(ref.id());
  if (e == nullptr) {
    return NotFoundError("not a replica here: " + ToString(ref.id()));
  }
  return e->version;
}

Result<ProxyDescriptor> Site::ReplicaProvider(ObjectId id) const {
  ObjectTable::ShardGuard guard(table_, id);
  const ReplicaEntry* e = table_.Replica(id);
  if (e == nullptr) {
    return NotFoundError("not a replica here: " + ToString(id));
  }
  if (!e->provider.valid()) {
    return FailedPreconditionError("replica has no provider channel");
  }
  return e->provider;
}

Result<PutReply> Site::SendCommit(const net::Address& provider, ProxyId pin,
                                  std::vector<PutItem> items) {
  PutRequest req{pin, std::move(items), /*transactional=*/true};
  TraceContext::Scope flow(TraceContext::CurrentOrNew(id_));
  SpanScope span(&sinks_, clock_, id_, "commit",
                 std::to_string(req.items.size()) + " item(s) to " + provider,
                 TraceContext::Current());
  wire::Writer body;
  wire::Encode(body, req);
  telemetry_.puts_sent->Inc();
  Bytes frame = rmi::WrapRequest(rmi::MessageKind::kCommit, body,
                                 TraceContext::Current(), DeadlineBudget(),
                                 address());
  // Payload bytes, symmetric with the provider's Handle(kCommit).
  telemetry_.replication_bytes_out->Inc(body.size());
  OBIWAN_ASSIGN_OR_RETURN(
      Bytes reply_bytes,
      TimedRequest(telemetry_.op_commit, provider, AsView(frame)));
  wire::Reader r(AsView(reply_bytes));
  PutReply reply = wire::Decode<PutReply>(r);
  OBIWAN_RETURN_IF_ERROR(r.status());
  return reply;
}

Status Site::ReleaseProxy(const ProxyDescriptor& descriptor) {
  TraceContext::Scope span(TraceContext::CurrentOrNew(id_));
  wire::Writer body;
  wire::Encode(body, descriptor.pin);
  OBIWAN_ASSIGN_OR_RETURN(
      Bytes reply,
      TimedRequest(telemetry_.op_release, descriptor.provider,
                   AsView(rmi::WrapRequest(rmi::MessageKind::kRelease, body,
                                           TraceContext::Current(),
                                           DeadlineBudget(), address()))));
  (void)reply;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// RMI client side
// ---------------------------------------------------------------------------

Result<Bytes> Site::CallRaw(const net::Address& to, ObjectId target,
                            const std::string& method, Bytes args) {
  TraceContext::Scope flow(TraceContext::CurrentOrNew(id_));
  SpanScope span(&sinks_, clock_, id_, "rmi", method + " on " + ToString(target),
                 TraceContext::Current());
  telemetry_.calls_sent->Inc();
  Trace("rmi", method + " on " + ToString(target) + " at " + to);
  rmi::CallRequest call{target, method, std::move(args)};
  return TimedRequest(telemetry_.op_call, to,
                      AsView(rmi::EncodeCall(call, TraceContext::Current(),
                                             DeadlineBudget())));
}

Result<Bytes> Site::CallBatchRaw(const net::Address& to,
                                 const std::vector<rmi::CallRequest>& calls) {
  TraceContext::Scope flow(TraceContext::CurrentOrNew(id_));
  SpanScope span(&sinks_, clock_, id_, "batch",
                 std::to_string(calls.size()) + " call(s) at " + to,
                 TraceContext::Current());
  telemetry_.calls_sent->Inc(calls.size());
  Trace("rmi", "batch of " + std::to_string(calls.size()) + " at " + to);
  return TimedRequest(
      telemetry_.op_call, to,
      AsView(rmi::EncodeCallBatch(calls, TraceContext::Current(),
                                  DeadlineBudget())));
}

Status Site::Ping(const net::Address& to) {
  TraceContext::Scope span(TraceContext::CurrentOrNew(id_));
  wire::Writer body;
  OBIWAN_ASSIGN_OR_RETURN(
      Bytes reply,
      TimedRequest(telemetry_.op_ping, to,
                   AsView(rmi::WrapRequest(rmi::MessageKind::kPing, body,
                                           TraceContext::Current(),
                                           DeadlineBudget()))));
  (void)reply;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Inbound dispatch
// ---------------------------------------------------------------------------

Result<Bytes> Site::Handle(rmi::MessageKind kind, const net::Address& from,
                           wire::Reader& body) {
  switch (kind) {
    case rmi::MessageKind::kCall: {
      OBIWAN_ASSIGN_OR_RETURN(rmi::CallRequest call, rmi::DecodeCall(body));
      return ServeCall(call);
    }
    case rmi::MessageKind::kPing:
      return Bytes{};
    case rmi::MessageKind::kGet: {
      GetRequest req = wire::Decode<GetRequest>(body);
      OBIWAN_RETURN_IF_ERROR(body.status());
      OBIWAN_ASSIGN_OR_RETURN(GetReply reply, ServeGet(from, req));
      wire::Writer w;
      wire::Encode(w, reply);
      Bytes encoded = std::move(w).Take();
      telemetry_.replication_bytes_out->Inc(encoded.size());
      return encoded;
    }
    case rmi::MessageKind::kPut:
    case rmi::MessageKind::kCommit: {
      telemetry_.replication_bytes_in->Inc(body.remaining());
      PutRequest req = wire::Decode<PutRequest>(body);
      OBIWAN_RETURN_IF_ERROR(body.status());
      if (kind == rmi::MessageKind::kCommit) req.transactional = true;
      OBIWAN_ASSIGN_OR_RETURN(PutReply reply, ServePut(from, req));
      wire::Writer w;
      wire::Encode(w, reply);
      return std::move(w).Take();
    }
    case rmi::MessageKind::kInvalidate: {
      InvalidateRequest req = wire::Decode<InvalidateRequest>(body);
      OBIWAN_RETURN_IF_ERROR(body.status());
      OBIWAN_RETURN_IF_ERROR(ServeInvalidate(req));
      return Bytes{};
    }
    case rmi::MessageKind::kRelease: {
      auto pin = wire::Decode<ProxyId>(body);
      OBIWAN_RETURN_IF_ERROR(body.status());
      OBIWAN_RETURN_IF_ERROR(ServeRelease(from, pin));
      return Bytes{};
    }
    case rmi::MessageKind::kRenew: {
      auto pin = wire::Decode<ProxyId>(body);
      OBIWAN_RETURN_IF_ERROR(body.status());
      OBIWAN_RETURN_IF_ERROR(ServeRenew(pin));
      return Bytes{};
    }
    case rmi::MessageKind::kPush: {
      telemetry_.replication_bytes_in->Inc(body.remaining());
      auto record = wire::Decode<ObjectRecord>(body);
      OBIWAN_RETURN_IF_ERROR(body.status());
      OBIWAN_RETURN_IF_ERROR(ServePush(record));
      return Bytes{};
    }
    case rmi::MessageKind::kCallBatch: {
      OBIWAN_ASSIGN_OR_RETURN(std::vector<rmi::CallRequest> calls,
                              rmi::DecodeCallBatch(body));
      std::vector<Result<Bytes>> results;
      results.reserve(calls.size());
      for (const rmi::CallRequest& call : calls) {
        results.push_back(ServeCall(call));  // items fail independently
      }
      return rmi::EncodeBatchReply(results);
    }
    case rmi::MessageKind::kInspect: {
      InspectReport report = Inspect();
      wire::Writer w;
      wire::Encode(w, report);
      return std::move(w).Take();
    }
    default:
      return UnimplementedError("site cannot handle this message kind");
  }
}

}  // namespace obiwan::core
