#include "core/ref.h"

#include "core/proxy.h"

namespace obiwan::core {

void RefBase::BindProxy(std::shared_ptr<ProxyOut> proxy) {
  id_ = proxy->target();
  local_.reset();
  proxy_ = std::move(proxy);
}

Status RefBase::Demand() {
  if (IsLocal()) return Status::Ok();
  if (IsEmpty()) return FailedPreconditionError("dereference of null reference");
  Result<std::shared_ptr<Shareable>> replica = proxy_->Demand();
  if (!replica.ok()) return replica.status();
  // The paper's updateMember step: this reference now points directly at the
  // replica; dropping proxy_ below is step 6 (the proxy-out becomes
  // unreachable and is reclaimed).
  BindLocal(proxy_->target(), std::move(replica).value());
  return Status::Ok();
}

}  // namespace obiwan::core
