// Consistency-policy hooks.
//
// OBIWAN deliberately leaves replica consistency to the application: "We
// leave the responsibility of maintaining (or not) the consistency of
// replicas to the programmer. [...] he may simply use a library of specific
// consistency protocols written by any other programmer" (§2.1). This
// interface is that hook: a site installs one policy, and the replication
// engine calls it at the four points where a protocol can intervene — when a
// replica is created (get), when an update is proposed (put, provider side),
// after an accepted update, and when policy data arrives at a replica.
//
// The library of ready-made policies the paper promises lives in
// src/consistency (last-writer-wins, version vectors, write-invalidate);
// the default is kNone: puts always win, exactly the paper's baseline.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/ids.h"
#include "common/status.h"
#include "net/transport.h"

namespace obiwan::core {

// Provider-side view of a master object's replication metadata.
struct MasterView {
  ObjectId id;
  std::uint64_t version;
  Bytes& policy_state;                        // policy-owned, persisted per master
  const std::vector<net::Address>& holders;   // sites that fetched replicas
};

// Provider-side view of an incoming put.
struct PutView {
  net::Address from;
  ObjectId id;
  std::uint64_t base_version;  // version the replica last synchronised at
  BytesView policy_data;       // produced by MakePutData on the replica side
};

// Demander-side view of a local replica.
struct ReplicaView {
  ObjectId id;
  std::uint64_t version;
  Bytes& policy_state;  // policy-owned, persisted per replica
};

class ConsistencyPolicy {
 public:
  virtual ~ConsistencyPolicy() = default;

  virtual std::string_view name() const = 0;

  // Demander side, before a put: produce the policy payload shipped with the
  // replica's state (e.g. a timestamp, a version vector).
  virtual Bytes MakePutData(const ReplicaView& replica, Clock& clock) {
    (void)replica;
    (void)clock;
    return {};
  }

  // Provider side: accept or reject the proposed update. Returning non-ok
  // (conventionally kConflict) leaves the master untouched and propagates the
  // status to the writer.
  virtual Status ValidatePut(const MasterView& master, const PutView& put) {
    (void)master;
    (void)put;
    return Status::Ok();
  }

  // Provider side, after the master was updated: advance policy state and
  // name the replica holders that must be notified (e.g. invalidated).
  virtual std::vector<net::Address> AfterPut(const MasterView& master,
                                             const PutView& put) {
    (void)master;
    (void)put;
    return {};
  }

  // Provider side, when a replica is handed out: produce the policy payload
  // shipped with the object record.
  virtual Bytes MakeGetData(const MasterView& master,
                            const net::Address& requester) {
    (void)master;
    (void)requester;
    return {};
  }

  // Demander side: policy payload arrived with a replica (get/refresh).
  virtual void OnReplicaData(const ReplicaView& replica, BytesView policy_data) {
    (void)replica;
    (void)policy_data;
  }

  // Provider side: if true, an accepted put is *pushed* (full new state) to
  // the other replica holders instead of merely listing them for
  // invalidation — the paper's "updates dissemination" hook (§1).
  virtual bool PushUpdatesOnPut() const { return false; }
};

// Updates-dissemination: every accepted put is eagerly propagated to all
// replica holders, keeping connected replicas continuously fresh (and
// leaving disconnected ones to catch up via their next refresh).
class PushUpdates final : public ConsistencyPolicy {
 public:
  std::string_view name() const override { return "push-updates"; }
  bool PushUpdatesOnPut() const override { return true; }
  std::vector<net::Address> AfterPut(const MasterView& master,
                                     const PutView&) override {
    return master.holders;  // the site pushes to these (minus the writer)
  }
};

// The paper's baseline: no consistency protocol; every put is applied.
class NoConsistency final : public ConsistencyPolicy {
 public:
  std::string_view name() const override { return "none"; }
};

}  // namespace obiwan::core
