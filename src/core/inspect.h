// Replication-state introspection: the structured report a site produces
// about its own replica tables, and the exporters that render it.
//
// The paper's mechanism is a *wavefront*: per-object proxy-in/proxy-out
// pairs advancing through an object graph as the application touches it
// (§2.1-2.2). The report makes that wavefront observable — per object: role
// (master / replica), local vs. highest-known master version, staleness in
// versions and in virtual-time age since the last synchronisation, payload
// size, serve/fetch counts and the outgoing reference topology; per
// proxy-in: lease countdown and cluster membership.
//
// The same report serializes over obiwan_wire (so any site can pull a remote
// site's view through the kInspect RMI method), renders as JSON or text, and
// feeds the frontier exporters: a DOT / JSON graph that distinguishes
// replicated objects from the unresolved proxy-out frontier — a direct
// visualization of the paper's Figure-5-style incremental expansion.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "net/transport.h"
#include "wire/codec.h"

namespace obiwan::core {

// One outgoing reference field of an inspected object.
struct InspectEdge {
  ObjectId to;             // referenced object
  bool proxy = false;      // true: unresolved proxy-out — a frontier edge
  std::string class_name;  // target's class
};

// One row of the replica table (masters and replicas alike).
struct InspectEntry {
  ObjectId id;
  bool master = false;  // role; false = replica
  std::string class_name;
  std::uint64_t local_version = 0;
  // Replicas: the highest master version this site has heard of (from gets,
  // put acks and versioned invalidations). Masters: same as local_version.
  std::uint64_t known_master_version = 0;
  bool stale = false;
  bool in_cluster = false;
  // known_master_version - local_version, saturating; an invalidation whose
  // version was unknown still counts as >= 1.
  std::uint64_t staleness_versions = 0;
  // Virtual-time age: now - last sync (replicas) / now - last accepted
  // update (masters), on the site's clock.
  Nanos age = 0;
  std::uint64_t payload_bytes = 0;  // encoded value-field bytes
  // Masters: gets served / puts accepted. Replicas: fetches applied
  // (faults + refreshes + pushes) / puts shipped.
  std::uint64_t faults = 0;
  std::uint64_t puts = 0;
  std::uint64_t holders = 0;  // downstream replica holders
  std::vector<InspectEdge> edges;
};

// One provider-side proxy-in handle.
struct InspectPin {
  ProxyId pin;
  ObjectId target;
  bool cluster = false;
  bool anchored = false;       // name-server binds never expire
  std::uint64_t members = 0;   // cluster pins only
  Nanos lease_remaining = -1;  // -1 = not leased
};

struct InspectReport {
  SiteId site = kInvalidSite;
  net::Address address;
  Nanos now = 0;  // site clock at the instant of the report
  std::uint64_t masters = 0;
  std::uint64_t replicas = 0;
  std::uint64_t proxy_ins = 0;
  // Distinct objects just beyond the replicated graph: targets of unresolved
  // proxy-outs, i.e. where the incremental wavefront currently stops.
  std::uint64_t frontier = 0;
  std::vector<InspectEntry> objects;
  std::vector<InspectPin> pins;
};

// Renderers. ToJson is the schema tools/ci.sh validates; ToText is the
// shell's human-readable table.
std::string ToJson(const InspectReport& report);
std::string ToText(const InspectReport& report);

// Replication-frontier graph derived from a (local or remote) report:
// Graphviz DOT — replicated objects as solid boxes (masters filled), the
// proxy-out frontier as dashed ellipses, proxy edges dashed — and a
// nodes/edges JSON twin.
std::string FrontierDot(const InspectReport& report);
std::string FrontierJson(const InspectReport& report);

}  // namespace obiwan::core

namespace obiwan::wire {

template <>
struct Codec<core::InspectEdge> {
  static void Encode(Writer& w, const core::InspectEdge& v) {
    wire::Encode(w, v.to);
    w.Bool(v.proxy);
    w.String(v.class_name);
  }
  static core::InspectEdge Decode(Reader& r) {
    core::InspectEdge v;
    v.to = wire::Decode<ObjectId>(r);
    v.proxy = r.Bool();
    v.class_name = r.String();
    return v;
  }
};

template <>
struct Codec<core::InspectEntry> {
  static void Encode(Writer& w, const core::InspectEntry& v) {
    wire::Encode(w, v.id);
    w.Bool(v.master);
    w.String(v.class_name);
    w.Varint(v.local_version);
    w.Varint(v.known_master_version);
    w.Bool(v.stale);
    w.Bool(v.in_cluster);
    w.Varint(v.staleness_versions);
    w.Svarint(v.age);
    w.Varint(v.payload_bytes);
    w.Varint(v.faults);
    w.Varint(v.puts);
    w.Varint(v.holders);
    wire::Encode(w, v.edges);
  }
  static core::InspectEntry Decode(Reader& r) {
    core::InspectEntry v;
    v.id = wire::Decode<ObjectId>(r);
    v.master = r.Bool();
    v.class_name = r.String();
    v.local_version = r.Varint();
    v.known_master_version = r.Varint();
    v.stale = r.Bool();
    v.in_cluster = r.Bool();
    v.staleness_versions = r.Varint();
    v.age = r.Svarint();
    v.payload_bytes = r.Varint();
    v.faults = r.Varint();
    v.puts = r.Varint();
    v.holders = r.Varint();
    v.edges = wire::Decode<std::vector<core::InspectEdge>>(r);
    return v;
  }
};

template <>
struct Codec<core::InspectPin> {
  static void Encode(Writer& w, const core::InspectPin& v) {
    wire::Encode(w, v.pin);
    wire::Encode(w, v.target);
    w.Bool(v.cluster);
    w.Bool(v.anchored);
    w.Varint(v.members);
    w.Svarint(v.lease_remaining);
  }
  static core::InspectPin Decode(Reader& r) {
    core::InspectPin v;
    v.pin = wire::Decode<ProxyId>(r);
    v.target = wire::Decode<ObjectId>(r);
    v.cluster = r.Bool();
    v.anchored = r.Bool();
    v.members = r.Varint();
    v.lease_remaining = r.Svarint();
    return v;
  }
};

template <>
struct Codec<core::InspectReport> {
  static void Encode(Writer& w, const core::InspectReport& v) {
    w.Varint(v.site);
    w.String(v.address);
    w.Svarint(v.now);
    w.Varint(v.masters);
    w.Varint(v.replicas);
    w.Varint(v.proxy_ins);
    w.Varint(v.frontier);
    wire::Encode(w, v.objects);
    wire::Encode(w, v.pins);
  }
  static core::InspectReport Decode(Reader& r) {
    core::InspectReport v;
    v.site = static_cast<SiteId>(r.Varint());
    v.address = r.String();
    v.now = r.Svarint();
    v.masters = r.Varint();
    v.replicas = r.Varint();
    v.proxy_ins = r.Varint();
    v.frontier = r.Varint();
    v.objects = wire::Decode<std::vector<core::InspectEntry>>(r);
    v.pins = wire::Decode<std::vector<core::InspectPin>>(r);
    return v;
  }
};

}  // namespace obiwan::wire
