// Bounded parallel fanout for holder notifications.
//
// When a put (or MarkMasterUpdated) must notify N holders, running the
// notifications sequentially means one unreachable PDA stalls the writer for
// a full deadline *per holder*. FanoutPool runs a batch of independent tasks
// with bounded parallelism so the batch costs roughly the makespan of the
// slowest task, not the sum.
//
// Determinism: simulations drive a VirtualClock shared by every site, and
// that clock is not thread-safe — real threads would race on it and destroy
// reproducibility. When the clock is Jumpable() the pool instead *models*
// bounded-width parallelism on the calling thread: it keeps one availability
// instant per virtual worker, runs each task sequentially starting at its
// worker's free instant (greedy earliest-free scheduling, the same policy a
// real pool's task queue yields), and finally jumps the clock to the overall
// makespan. Against a real clock (TCP deployments) the pool spawns an
// actual bounded burst of threads, the caller's thread being one of them.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <vector>

#include "common/clock.h"
#include "common/contention.h"
#include "common/status.h"

namespace obiwan::core {

class FanoutPool {
 public:
  using Task = std::function<Status()>;

  static constexpr std::size_t kDefaultWidth = 8;

  explicit FanoutPool(Clock& clock, std::size_t width = kDefaultWidth);

  // Maximum number of tasks in flight at once; 0 is clamped to 1.
  void set_width(std::size_t width);
  std::size_t width() const { return width_.load(std::memory_order_relaxed); }

  // Runs every task and returns their statuses in task order. Blocks until
  // the whole batch is done. Tasks must be independently executable: they
  // may run on other threads (real clocks) and must not assume any ordering
  // between each other.
  //
  // Multi-task batches serialize on one tracked "fanout" mutex, which makes
  // the width bound pool-wide instead of per-batch (two concurrent puts no
  // longer burst 2 x width threads) — and makes the time writers queue
  // behind each other's fanouts a measured contention site. Single-task
  // batches bypass the queue: a lone notification never waits for a batch.
  std::vector<Status> RunAll(std::vector<Task> tasks);

  // Tasks executing right now, across all batches (queue-depth sampling).
  std::size_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

 private:
  Clock& clock_;
  std::atomic<std::size_t> width_;
  std::atomic<std::size_t> in_flight_{0};
  TrackedMutex batch_mutex_{"fanout"};
};

}  // namespace obiwan::core
