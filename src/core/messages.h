// Replication protocol messages (the bodies of kGet / kPut / kInvalidate /
// kCommit requests).
//
// The formats mirror what travels in the Java prototype: replica state
// (serialized fields), the reference topology (so the demander can swizzle),
// and proxy descriptors — the serialized form of a proxy-out, whose creation
// and transfer is exactly the per-object cost the paper measures in §4.2 and
// eliminates with clustering in §4.3.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/ids.h"
#include "core/mode.h"
#include "net/transport.h"
#include "wire/codec.h"

namespace obiwan::core {

// Serialized proxy-out: everything a demander needs to later fault on the
// target — which proxy-in to demand through, where it lives, and what it
// stands in for.
struct ProxyDescriptor {
  ProxyId pin;             // provider-side proxy-in handle
  net::Address provider;   // address of the site serving the proxy-in
  ObjectId target;         // master object the proxy stands in for
  std::string class_name;  // registered class of the target

  bool valid() const { return pin.valid(); }

  friend bool operator==(const ProxyDescriptor&, const ProxyDescriptor&) = default;
};

// One reference field of one serialized object.
struct RefEntry {
  enum class Tag : std::uint8_t {
    kNull = 0,    // empty reference
    kInline = 1,  // target travels in the same batch (or is already local)
    kProxy = 2,   // boundary: demander materializes a proxy-out
  };

  Tag tag = Tag::kNull;
  ObjectId target;        // kInline
  ProxyDescriptor proxy;  // kProxy

  static RefEntry Null() { return {}; }
  static RefEntry Inline(ObjectId id) {
    return {Tag::kInline, id, {}};
  }
  static RefEntry Proxy(ProxyDescriptor d) {
    return {Tag::kProxy, d.target, std::move(d)};
  }
};

// One replicated object on the wire.
struct ObjectRecord {
  ObjectId id;
  std::string class_name;
  std::uint64_t version = 0;
  Bytes policy_data;           // consistency-policy payload (opaque here)
  Bytes fields;                // encoded value fields
  std::vector<RefEntry> refs;  // aligned with ClassInfo::refs() order
  // Per-object put/refresh channel. Valid only in incremental mode — its
  // creation and transfer is the per-object proxy-pair cost of §4.2. In
  // cluster modes the batch-level descriptor below replaces it.
  ProxyDescriptor provider;
};

// Batch-level proxy pair for cluster-flavoured modes (§2.2's "single pair of
// proxy-in/proxy-out ... created and transferred").
struct ClusterInfo {
  ProxyDescriptor provider;
  std::vector<ObjectId> members;
};

struct GetRequest {
  ProxyId pin;           // proxy-in the demand goes through
  ObjectId root;         // object to start replication from
  ReplicationMode mode;
  bool refresh = false;  // update already-held replicas instead of expanding
};

struct GetReply {
  std::vector<ObjectRecord> objects;  // objects[0] is the root
  std::optional<ClusterInfo> cluster;
};

// One object's state travelling back to its master.
struct PutItem {
  ObjectId id;
  std::uint64_t base_version = 0;  // version the replica last synchronised at
  // Transactional read-set validation: the provider checks base_version but
  // does not apply any state (fields/refs travel empty).
  bool read_only = false;
  Bytes policy_data;  // consistency-policy payload
  Bytes fields;
  // Topology from the replica; kProxy collapses to kInline (the provider
  // resolves ids locally).
  std::vector<RefEntry> refs;
};

struct PutRequest {
  ProxyId pin;                 // per-object or cluster proxy-in
  std::vector<PutItem> items;  // one item, or all cluster members
  bool transactional = false;  // kCommit: validate all versions before applying
};

struct PutReply {
  std::vector<std::uint64_t> new_versions;  // aligned with request items
};

struct InvalidateRequest {
  std::vector<ObjectId> ids;
  // Master versions aligned with `ids` (empty from peers that predate the
  // introspection layer). A holder records these so staleness is measurable
  // in versions, not just as a boolean.
  std::vector<std::uint64_t> versions;
};

}  // namespace obiwan::core

namespace obiwan::wire {

template <>
struct Codec<core::ProxyDescriptor> {
  static void Encode(Writer& w, const core::ProxyDescriptor& v) {
    wire::Encode(w, v.pin);
    w.String(v.provider);
    wire::Encode(w, v.target);
    w.String(v.class_name);
  }
  static core::ProxyDescriptor Decode(Reader& r) {
    core::ProxyDescriptor v;
    v.pin = wire::Decode<ProxyId>(r);
    v.provider = r.String();
    v.target = wire::Decode<ObjectId>(r);
    v.class_name = r.String();
    return v;
  }
};

template <>
struct Codec<core::RefEntry> {
  static void Encode(Writer& w, const core::RefEntry& v) {
    w.U8(static_cast<std::uint8_t>(v.tag));
    switch (v.tag) {
      case core::RefEntry::Tag::kNull:
        break;
      case core::RefEntry::Tag::kInline:
        wire::Encode(w, v.target);
        break;
      case core::RefEntry::Tag::kProxy:
        wire::Encode(w, v.proxy);
        break;
    }
  }
  static core::RefEntry Decode(Reader& r) {
    core::RefEntry v;
    std::uint8_t tag = r.U8();
    if (tag > 2) {
      r.Fail("bad ref entry tag");
      return v;
    }
    v.tag = static_cast<core::RefEntry::Tag>(tag);
    switch (v.tag) {
      case core::RefEntry::Tag::kNull:
        break;
      case core::RefEntry::Tag::kInline:
        v.target = wire::Decode<ObjectId>(r);
        break;
      case core::RefEntry::Tag::kProxy:
        v.proxy = wire::Decode<core::ProxyDescriptor>(r);
        v.target = v.proxy.target;
        break;
    }
    return v;
  }
};

template <>
struct Codec<core::ObjectRecord> {
  static void Encode(Writer& w, const core::ObjectRecord& v) {
    wire::Encode(w, v.id);
    w.String(v.class_name);
    w.Varint(v.version);
    w.Blob(AsView(v.policy_data));
    w.Blob(AsView(v.fields));
    wire::Encode(w, v.refs);
    w.Bool(v.provider.valid());
    if (v.provider.valid()) wire::Encode(w, v.provider);
  }
  static core::ObjectRecord Decode(Reader& r) {
    core::ObjectRecord v;
    v.id = wire::Decode<ObjectId>(r);
    v.class_name = r.String();
    v.version = r.Varint();
    v.policy_data = r.Blob();
    v.fields = r.Blob();
    v.refs = wire::Decode<std::vector<core::RefEntry>>(r);
    if (r.Bool()) v.provider = wire::Decode<core::ProxyDescriptor>(r);
    return v;
  }
};

template <>
struct Codec<core::ClusterInfo> {
  static void Encode(Writer& w, const core::ClusterInfo& v) {
    wire::Encode(w, v.provider);
    wire::Encode(w, v.members);
  }
  static core::ClusterInfo Decode(Reader& r) {
    core::ClusterInfo v;
    v.provider = wire::Decode<core::ProxyDescriptor>(r);
    v.members = wire::Decode<std::vector<ObjectId>>(r);
    return v;
  }
};

template <>
struct Codec<core::ReplicationMode> {
  static void Encode(Writer& w, const core::ReplicationMode& v) {
    w.U8(static_cast<std::uint8_t>(v.kind));
    w.Varint(v.count);
    w.Varint(v.depth);
  }
  static core::ReplicationMode Decode(Reader& r) {
    core::ReplicationMode v;
    std::uint8_t kind = r.U8();
    if (kind > 3) {
      r.Fail("bad replication mode");
      return v;
    }
    v.kind = static_cast<core::ReplicationMode::Kind>(kind);
    v.count = static_cast<std::uint32_t>(r.Varint());
    v.depth = static_cast<std::uint32_t>(r.Varint());
    return v;
  }
};

template <>
struct Codec<core::GetRequest> {
  static void Encode(Writer& w, const core::GetRequest& v) {
    wire::Encode(w, v.pin);
    wire::Encode(w, v.root);
    wire::Encode(w, v.mode);
    w.Bool(v.refresh);
  }
  static core::GetRequest Decode(Reader& r) {
    core::GetRequest v;
    v.pin = wire::Decode<ProxyId>(r);
    v.root = wire::Decode<ObjectId>(r);
    v.mode = wire::Decode<core::ReplicationMode>(r);
    v.refresh = r.Bool();
    return v;
  }
};

template <>
struct Codec<core::GetReply> {
  static void Encode(Writer& w, const core::GetReply& v) {
    wire::Encode(w, v.objects);
    wire::Encode(w, v.cluster);
  }
  static core::GetReply Decode(Reader& r) {
    core::GetReply v;
    v.objects = wire::Decode<std::vector<core::ObjectRecord>>(r);
    v.cluster = wire::Decode<std::optional<core::ClusterInfo>>(r);
    return v;
  }
};

template <>
struct Codec<core::PutItem> {
  static void Encode(Writer& w, const core::PutItem& v) {
    wire::Encode(w, v.id);
    w.Varint(v.base_version);
    w.Bool(v.read_only);
    w.Blob(AsView(v.policy_data));
    w.Blob(AsView(v.fields));
    wire::Encode(w, v.refs);
  }
  static core::PutItem Decode(Reader& r) {
    core::PutItem v;
    v.id = wire::Decode<ObjectId>(r);
    v.base_version = r.Varint();
    v.read_only = r.Bool();
    v.policy_data = r.Blob();
    v.fields = r.Blob();
    v.refs = wire::Decode<std::vector<core::RefEntry>>(r);
    return v;
  }
};

template <>
struct Codec<core::PutRequest> {
  static void Encode(Writer& w, const core::PutRequest& v) {
    wire::Encode(w, v.pin);
    wire::Encode(w, v.items);
    w.Bool(v.transactional);
  }
  static core::PutRequest Decode(Reader& r) {
    core::PutRequest v;
    v.pin = wire::Decode<ProxyId>(r);
    v.items = wire::Decode<std::vector<core::PutItem>>(r);
    v.transactional = r.Bool();
    return v;
  }
};

template <>
struct Codec<core::PutReply> {
  static void Encode(Writer& w, const core::PutReply& v) {
    wire::Encode(w, v.new_versions);
  }
  static core::PutReply Decode(Reader& r) {
    core::PutReply v;
    v.new_versions = wire::Decode<std::vector<std::uint64_t>>(r);
    return v;
  }
};

template <>
struct Codec<core::InvalidateRequest> {
  static void Encode(Writer& w, const core::InvalidateRequest& v) {
    wire::Encode(w, v.ids);
    wire::Encode(w, v.versions);
  }
  static core::InvalidateRequest Decode(Reader& r) {
    core::InvalidateRequest v;
    v.ids = wire::Decode<std::vector<ObjectId>>(r);
    // The version vector was appended later; accept the old short form.
    if (!r.AtEnd()) v.versions = wire::Decode<std::vector<std::uint64_t>>(r);
    return v;
  }
};

}  // namespace obiwan::wire
