#include "core/object_table.h"

#include <cassert>

namespace obiwan::core {

// Internal leaf lock over one pointer stripe: skipped when the thread owns
// the world (the WorldGuard already holds every stripe).
namespace {
class StripeLock {
 public:
  StripeLock(const ObjectTable& table, TrackedMutex& mutex)
      : mutex_(mutex), locked_(!table.WorldHeldByThisThread()) {
    if (locked_) mutex_.lock();
  }
  ~StripeLock() {
    if (locked_) mutex_.unlock();
  }
  StripeLock(const StripeLock&) = delete;
  StripeLock& operator=(const StripeLock&) = delete;

 private:
  TrackedMutex& mutex_;
  bool locked_;
};
}  // namespace

ObjectTable::ObjectTable() = default;
ObjectTable::~ObjectTable() = default;

// --- guards ------------------------------------------------------------------

ObjectTable::ShardGuard::ShardGuard(const ObjectTable& table, std::size_t shard)
    : table_(table), shard_(shard), locked_(!table.WorldHeldByThisThread()) {
  if (locked_) table_.shards_[shard_].mutex.lock();
}

ObjectTable::ShardGuard::~ShardGuard() {
  if (locked_) table_.shards_[shard_].mutex.unlock();
}

ObjectTable::BatchGuard::BatchGuard(const ObjectTable& table,
                                    const std::vector<ObjectId>& ids)
    : table_(table) {
  if (table.WorldHeldByThisThread()) return;
  shards_.reserve(ids.size());
  for (const ObjectId& id : ids) shards_.push_back(table.ShardOf(id));
  std::sort(shards_.begin(), shards_.end());
  shards_.erase(std::unique(shards_.begin(), shards_.end()), shards_.end());
  for (std::size_t shard : shards_) table_.shards_[shard].mutex.lock();
}

ObjectTable::BatchGuard::~BatchGuard() {
  for (auto it = shards_.rbegin(); it != shards_.rend(); ++it)
    table_.shards_[*it].mutex.unlock();
}

ObjectTable::WorldGuard::WorldGuard(const ObjectTable& table)
    : table_(table), owner_(!table.WorldHeldByThisThread()) {
  auto& self = const_cast<ObjectTable&>(table_);
  if (!owner_) {
    ++self.world_depth_;
    return;
  }
  for (auto& shard : self.shards_) shard.mutex.lock();
  for (auto& stripe : self.stripes_) stripe.mutex.lock();
  self.world_owner_.store(std::this_thread::get_id(),
                          std::memory_order_release);
  self.world_depth_ = 1;
}

ObjectTable::WorldGuard::~WorldGuard() {
  auto& self = const_cast<ObjectTable&>(table_);
  if (!owner_) {
    --self.world_depth_;
    return;
  }
  assert(self.world_depth_ == 1);
  self.world_depth_ = 0;
  self.world_owner_.store(std::thread::id{}, std::memory_order_release);
  for (auto it = self.stripes_.rbegin(); it != self.stripes_.rend(); ++it)
    it->mutex.unlock();
  for (auto it = self.shards_.rbegin(); it != self.shards_.rend(); ++it)
    it->mutex.unlock();
}

// --- records -----------------------------------------------------------------

MasterEntry* ObjectTable::Master(ObjectId id) {
  Shard& shard = ShardFor(id);
  auto it = shard.index.find(id);
  if (it == shard.index.end() || !it->second.master) return nullptr;
  return &shard.masters[it->second.index];
}

const MasterEntry* ObjectTable::Master(ObjectId id) const {
  return const_cast<ObjectTable*>(this)->Master(id);
}

ReplicaEntry* ObjectTable::Replica(ObjectId id) {
  Shard& shard = ShardFor(id);
  auto it = shard.index.find(id);
  if (it == shard.index.end() || it->second.master) return nullptr;
  return &shard.replicas[it->second.index];
}

const ReplicaEntry* ObjectTable::Replica(ObjectId id) const {
  return const_cast<ObjectTable*>(this)->Replica(id);
}

std::shared_ptr<Shareable> ObjectTable::Find(ObjectId id) const {
  const Shard& shard = ShardFor(id);
  auto it = shard.index.find(id);
  if (it == shard.index.end()) return nullptr;
  return it->second.master ? shard.masters[it->second.index].obj
                           : shard.replicas[it->second.index].obj;
}

std::pair<MasterEntry*, bool> ObjectTable::EmplaceMaster(ObjectId id,
                                                         MasterEntry record) {
  Shard& shard = ShardFor(id);
  auto it = shard.index.find(id);
  if (it != shard.index.end()) {
    if (it->second.master) return {&shard.masters[it->second.index], false};
    return {nullptr, false};
  }
  std::uint32_t index;
  if (!shard.master_free.empty()) {
    index = shard.master_free.back();
    shard.master_free.pop_back();
    shard.masters[index] = std::move(record);
  } else {
    index = static_cast<std::uint32_t>(shard.masters.size());
    shard.masters.push_back(std::move(record));
    shard.master_ids.push_back(ObjectId{});
  }
  shard.master_ids[index] = id;
  shard.index.emplace(id, Slot{true, index});
  MasterEntry* stored = &shard.masters[index];
  if (stored->obj) PtrIdOrInsert(stored->obj.get(), id);
  for (const net::Address& addr : stored->holders)
    shard.holders_by_addr[addr].insert(id);
  master_count_.fetch_add(1, std::memory_order_relaxed);
  return {stored, true};
}

std::pair<ReplicaEntry*, bool> ObjectTable::EmplaceReplica(
    ObjectId id, ReplicaEntry record) {
  Shard& shard = ShardFor(id);
  auto it = shard.index.find(id);
  if (it != shard.index.end()) {
    if (!it->second.master) return {&shard.replicas[it->second.index], false};
    return {nullptr, false};
  }
  std::uint32_t index;
  if (!shard.replica_free.empty()) {
    index = shard.replica_free.back();
    shard.replica_free.pop_back();
    shard.replicas[index] = std::move(record);
  } else {
    index = static_cast<std::uint32_t>(shard.replicas.size());
    shard.replicas.push_back(std::move(record));
    shard.replica_ids.push_back(ObjectId{});
  }
  shard.replica_ids[index] = id;
  shard.index.emplace(id, Slot{false, index});
  ReplicaEntry* stored = &shard.replicas[index];
  if (stored->obj) PtrIdOrInsert(stored->obj.get(), id);
  for (const net::Address& addr : stored->holders)
    shard.holders_by_addr[addr].insert(id);
  replica_count_.fetch_add(1, std::memory_order_relaxed);
  return {stored, true};
}

bool ObjectTable::EraseMaster(ObjectId id) {
  Shard& shard = ShardFor(id);
  auto it = shard.index.find(id);
  if (it == shard.index.end() || !it->second.master) return false;
  std::uint32_t index = it->second.index;
  MasterEntry& record = shard.masters[index];
  if (record.obj) ErasePtr(record.obj.get(), id);
  for (const net::Address& addr : record.holders) {
    auto hit = shard.holders_by_addr.find(addr);
    if (hit == shard.holders_by_addr.end()) continue;
    hit->second.erase(id);
    if (hit->second.empty()) shard.holders_by_addr.erase(hit);
  }
  record = MasterEntry{};  // release the object + policy state in place
  shard.master_ids[index] = ObjectId{};
  shard.master_free.push_back(index);
  shard.index.erase(it);
  master_count_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool ObjectTable::EraseReplica(ObjectId id) {
  Shard& shard = ShardFor(id);
  auto it = shard.index.find(id);
  if (it == shard.index.end() || it->second.master) return false;
  std::uint32_t index = it->second.index;
  ReplicaEntry& record = shard.replicas[index];
  if (record.obj) ErasePtr(record.obj.get(), id);
  for (const net::Address& addr : record.holders) {
    auto hit = shard.holders_by_addr.find(addr);
    if (hit == shard.holders_by_addr.end()) continue;
    hit->second.erase(id);
    if (hit->second.empty()) shard.holders_by_addr.erase(hit);
  }
  record = ReplicaEntry{};
  shard.replica_ids[index] = ObjectId{};
  shard.replica_free.push_back(index);
  shard.index.erase(it);
  replica_count_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

// --- self-locking lookups ----------------------------------------------------

std::shared_ptr<Shareable> ObjectTable::FindLocked(ObjectId id) const {
  ShardGuard guard(*this, id);
  return Find(id);
}

bool ObjectTable::Contains(ObjectId id) const {
  ShardGuard guard(*this, id);
  return ShardFor(id).index.contains(id);
}

bool ObjectTable::ContainsMaster(ObjectId id) const {
  ShardGuard guard(*this, id);
  return Master(id) != nullptr;
}

bool ObjectTable::ContainsReplica(ObjectId id) const {
  ShardGuard guard(*this, id);
  return Replica(id) != nullptr;
}

// --- pointer identity --------------------------------------------------------

ObjectId ObjectTable::PtrId(const Shareable* ptr) const {
  const PtrStripe& stripe = stripes_[StripeOf(ptr)];
  StripeLock lock(*this, stripe.mutex);
  auto it = stripe.ids.find(ptr);
  return it == stripe.ids.end() ? ObjectId{} : it->second;
}

ObjectId ObjectTable::PtrIdOrInsert(const Shareable* ptr, ObjectId candidate) {
  PtrStripe& stripe = stripes_[StripeOf(ptr)];
  StripeLock lock(*this, stripe.mutex);
  auto [it, inserted] = stripe.ids.emplace(ptr, candidate);
  return it->second;
}

void ObjectTable::ErasePtr(const Shareable* ptr, ObjectId expect) {
  PtrStripe& stripe = stripes_[StripeOf(ptr)];
  StripeLock lock(*this, stripe.mutex);
  auto it = stripe.ids.find(ptr);
  // Only erase our own binding: the address may already have been recycled
  // and re-registered under a fresh id.
  if (it != stripe.ids.end() && it->second == expect) stripe.ids.erase(it);
}

// --- holder index ------------------------------------------------------------

void ObjectTable::LinkHolderInShard(Shard& shard, ObjectId id,
                                    const net::Address& addr) {
  shard.holders_by_addr[addr].insert(id);
}

bool ObjectTable::LinkHolder(ObjectId id, const net::Address& addr) {
  Shard& shard = ShardFor(id);
  auto it = shard.index.find(id);
  if (it == shard.index.end()) return false;
  std::vector<net::Address>& holders =
      it->second.master ? shard.masters[it->second.index].holders
                        : shard.replicas[it->second.index].holders;
  if (std::find(holders.begin(), holders.end(), addr) != holders.end())
    return false;
  holders.push_back(addr);
  LinkHolderInShard(shard, id, addr);
  return true;
}

bool ObjectTable::UnlinkHolder(ObjectId id, const net::Address& addr) {
  Shard& shard = ShardFor(id);
  auto it = shard.index.find(id);
  if (it == shard.index.end()) return false;
  std::vector<net::Address>& holders =
      it->second.master ? shard.masters[it->second.index].holders
                        : shard.replicas[it->second.index].holders;
  if (std::erase(holders, addr) == 0) return false;
  auto hit = shard.holders_by_addr.find(addr);
  if (hit != shard.holders_by_addr.end()) {
    hit->second.erase(id);
    if (hit->second.empty()) shard.holders_by_addr.erase(hit);
  }
  return true;
}

std::size_t ObjectTable::RemoveHolderEverywhere(const net::Address& addr) {
  std::size_t removed = 0;
  for (std::size_t i = 0; i < kShardCount; ++i) {
    ShardGuard guard(*this, i);
    Shard& shard = shards_[i];
    auto hit = shard.holders_by_addr.find(addr);
    if (hit == shard.holders_by_addr.end()) continue;
    for (const ObjectId& id : hit->second) {
      auto it = shard.index.find(id);
      if (it == shard.index.end()) continue;
      std::vector<net::Address>& holders =
          it->second.master ? shard.masters[it->second.index].holders
                            : shard.replicas[it->second.index].holders;
      removed += std::erase(holders, addr);
    }
    shard.holders_by_addr.erase(hit);
  }
  return removed;
}

bool ObjectTable::HolderAnywhere(const net::Address& addr) const {
  for (std::size_t i = 0; i < kShardCount; ++i) {
    ShardGuard guard(*this, i);
    if (shards_[i].holders_by_addr.contains(addr)) return true;
  }
  return false;
}

// --- iteration ---------------------------------------------------------------

void ObjectTable::ForEachMaster(
    const std::function<void(ObjectId, MasterEntry&)>& fn) {
  for (std::size_t i = 0; i < kShardCount; ++i) {
    ShardGuard guard(*this, i);
    Shard& shard = shards_[i];
    for (std::size_t slot = 0; slot < shard.master_ids.size(); ++slot) {
      if (shard.master_ids[slot].valid())
        fn(shard.master_ids[slot], shard.masters[slot]);
    }
  }
}

void ObjectTable::ForEachMaster(
    const std::function<void(ObjectId, const MasterEntry&)>& fn) const {
  const_cast<ObjectTable*>(this)->ForEachMaster(
      [&fn](ObjectId id, MasterEntry& record) { fn(id, record); });
}

void ObjectTable::ForEachReplica(
    const std::function<void(ObjectId, ReplicaEntry&)>& fn) {
  for (std::size_t i = 0; i < kShardCount; ++i) {
    ShardGuard guard(*this, i);
    Shard& shard = shards_[i];
    for (std::size_t slot = 0; slot < shard.replica_ids.size(); ++slot) {
      if (shard.replica_ids[slot].valid())
        fn(shard.replica_ids[slot], shard.replicas[slot]);
    }
  }
}

void ObjectTable::ForEachReplica(
    const std::function<void(ObjectId, const ReplicaEntry&)>& fn) const {
  const_cast<ObjectTable*>(this)->ForEachReplica(
      [&fn](ObjectId id, ReplicaEntry& record) { fn(id, record); });
}

void ObjectTable::Clear() {
  for (auto& shard : shards_) {
    shard.masters.clear();
    shard.replicas.clear();
    shard.master_free.clear();
    shard.replica_free.clear();
    shard.master_ids.clear();
    shard.replica_ids.clear();
    shard.index.clear();
    shard.holders_by_addr.clear();
  }
  for (auto& stripe : stripes_) stripe.ids.clear();
  master_count_.store(0, std::memory_order_relaxed);
  replica_count_.store(0, std::memory_order_relaxed);
}

bool ObjectTable::CheckConsistency() const {
  std::size_t masters = 0;
  std::size_t replicas = 0;
  std::size_t ptr_entries = 0;
  for (const auto& stripe : stripes_) ptr_entries += stripe.ids.size();
  for (const auto& shard : shards_) {
    std::unordered_map<net::Address,
                       std::unordered_set<ObjectId, ObjectIdHash>>
        expected_holders;
    std::size_t live = 0;
    for (std::size_t slot = 0; slot < shard.master_ids.size(); ++slot) {
      const ObjectId id = shard.master_ids[slot];
      if (!id.valid()) continue;
      ++masters;
      ++live;
      const MasterEntry& record = shard.masters[slot];
      if (record.obj && PtrId(record.obj.get()) != id) return false;
      for (const net::Address& addr : record.holders)
        expected_holders[addr].insert(id);
    }
    for (std::size_t slot = 0; slot < shard.replica_ids.size(); ++slot) {
      const ObjectId id = shard.replica_ids[slot];
      if (!id.valid()) continue;
      ++replicas;
      ++live;
      const ReplicaEntry& record = shard.replicas[slot];
      if (record.obj && PtrId(record.obj.get()) != id) return false;
      for (const net::Address& addr : record.holders)
        expected_holders[addr].insert(id);
    }
    if (expected_holders != shard.holders_by_addr) return false;
    if (shard.index.size() != live) return false;
  }
  if (masters != master_count()) return false;
  if (replicas != replica_count()) return false;
  // Every live record registers exactly one pointer entry; no dangling
  // pointer keys survive an erase.
  return ptr_entries == masters + replicas;
}

}  // namespace obiwan::core
