// Replication-state introspection: report assembly (Site::Inspect and the
// gauges it keeps fresh) and the JSON / text / DOT renderers.
#include "core/inspect.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "core/site.h"
#include "rmi/protocol.h"

namespace obiwan::core {

namespace {

std::string JsonString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string ToString(const ProxyId& id) {
  return "pin(" + std::to_string(id.site) + ":" + std::to_string(id.local) + ")";
}

// Human-readable duration on the site's (possibly virtual) clock.
std::string FormatNanos(Nanos ns) {
  if (ns < 0) return "-";
  char buf[32];
  if (ns < 1'000) {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns));
  } else if (ns < 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.1fus", ns / 1e3);
  } else if (ns < 1'000'000'000) {
    std::snprintf(buf, sizeof buf, "%.1fms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.2fs", ns / 1e9);
  }
  return buf;
}

std::string Pad(std::string s, std::size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

// DOT double-quoted string (class names and ids end up in labels).
std::string DotString(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Site: gauges and report assembly
// ---------------------------------------------------------------------------

void Site::UpdateReplicationGauges() {
  telemetry_.objects_master->Set(
      static_cast<std::int64_t>(table_.master_count()));
  telemetry_.objects_replica->Set(
      static_cast<std::int64_t>(table_.replica_count()));

  const Nanos now = clock_.Now();

  // Frontier = distinct targets of unresolved proxy-outs: where the
  // incremental wavefront currently stops. Two phases: collect candidate
  // targets during the per-shard sweeps (where self-locking lookups are off
  // limits), then probe presence with no shard guard held.
  std::unordered_set<ObjectId, ObjectIdHash> candidates;
  auto scan = [&](const std::shared_ptr<Shareable>& obj) {
    for (const RefFieldInfo& rf : obj->obiwan_class().refs()) {
      RefBase& rb = rf.get(*obj);
      if (rb.IsProxy()) candidates.insert(rb.proxy()->target());
    }
  };
  std::vector<std::uint64_t> lags;
  lags.reserve(table_.replica_count());
  Nanos age_max = 0;
  table_.ForEachMaster(
      [&](ObjectId, const MasterEntry& e) { scan(e.obj); });
  table_.ForEachReplica([&](ObjectId, const ReplicaEntry& e) {
    scan(e.obj);
    std::uint64_t lag = e.known_master_version > e.version
                            ? e.known_master_version - e.version
                            : (e.stale ? 1 : 0);
    lags.push_back(lag);
    if (e.last_sync != 0 && now > e.last_sync) {
      age_max = std::max(age_max, now - e.last_sync);
    }
  });
  std::int64_t frontier = 0;
  for (ObjectId tid : candidates) {
    if (!table_.Contains(tid)) ++frontier;
  }
  telemetry_.objects_frontier->Set(frontier);

  std::uint64_t lag_max = 0, lag_p95 = 0;
  if (!lags.empty()) {
    std::sort(lags.begin(), lags.end());
    lag_max = lags.back();
    lag_p95 = lags[(lags.size() - 1) * 95 / 100];
  }
  telemetry_.staleness_max->Set(static_cast<std::int64_t>(lag_max));
  telemetry_.staleness_p95->Set(static_cast<std::int64_t>(lag_p95));
  telemetry_.staleness_age_max->Set(age_max);

  std::int64_t expiring = 0;
  if (proxy_lease_ > 0) {
    std::lock_guard pins(pins_mutex_);
    for (const auto& [pin, entry] : proxy_ins_) {
      if (!entry.anchored && entry.expires_at != 0 &&
          entry.expires_at - now <= proxy_lease_ / 2) {
        ++expiring;
      }
    }
  }
  telemetry_.leases_expiring->Set(expiring);

  last_gauge_refresh_.store(now, std::memory_order_relaxed);
}

void Site::MaybeUpdateReplicationGauges() {
  // The gauge rescan is O(objects); protocol paths call this throttled
  // variant so a million-object site is not re-walked on every get/put.
  // The default interval of 0 keeps the historical eager behaviour.
  const Nanos interval = gauge_refresh_interval_.load(std::memory_order_relaxed);
  if (interval <= 0) {
    UpdateReplicationGauges();
    return;
  }
  const Nanos last = last_gauge_refresh_.load(std::memory_order_relaxed);
  if (last >= 0 && clock_.Now() - last < interval) return;
  UpdateReplicationGauges();
}

void Site::EnsureGraphIds() {
  // Minting an id inserts a new master whose own refs must be visited too —
  // iterate to a fixed point (and never call EnsureId while iterating a
  // shard it can grow: collect the objects first, then mint).
  std::size_t known = table_.master_count() + 1;  // force one pass
  while (known != table_.master_count()) {
    known = table_.master_count();
    std::vector<std::shared_ptr<Shareable>> objects;
    objects.reserve(table_.master_count() + table_.replica_count());
    table_.ForEachMaster(
        [&](ObjectId, const MasterEntry& e) { objects.push_back(e.obj); });
    table_.ForEachReplica(
        [&](ObjectId, const ReplicaEntry& e) { objects.push_back(e.obj); });
    for (const auto& obj : objects) {
      for (const RefFieldInfo& rf : obj->obiwan_class().refs()) {
        RefBase& rb = rf.get(*obj);
        if (rb.IsLocal()) (void)EnsureId(rb.local());
      }
    }
  }
}

InspectReport Site::InspectLocked() {
  InspectReport report;
  report.site = id_;
  report.address = transport_->LocalAddress();
  report.now = clock_.Now();
  report.masters = table_.master_count();
  report.replicas = table_.replica_count();
  {
    std::lock_guard pins(pins_mutex_);
    report.proxy_ins = proxy_ins_.size();
  }

  // EnsureGraphIds ran: the pointer-identity map covers every local target,
  // so this lookup never mutates the tables mid-iteration.
  auto edges_of = [&](const std::shared_ptr<Shareable>& obj) {
    std::vector<InspectEdge> edges;
    for (const RefFieldInfo& rf : obj->obiwan_class().refs()) {
      RefBase& rb = rf.get(*obj);
      if (rb.IsEmpty()) continue;
      InspectEdge edge;
      if (rb.IsLocal()) {
        ObjectId tid = table_.PtrId(rb.local_raw());
        if (!tid.valid()) continue;
        edge.to = tid;
        edge.proxy = false;
        edge.class_name = rb.local_raw()->obiwan_class().name();
      } else {
        const ProxyDescriptor& d = rb.proxy()->descriptor();
        edge.to = d.target;
        edge.proxy = true;
        edge.class_name = d.class_name;
      }
      edges.push_back(std::move(edge));
    }
    return edges;
  };

  auto payload_bytes = [](const std::shared_ptr<Shareable>& obj) {
    wire::Writer fields;
    obj->obiwan_class().EncodeFields(*obj, fields);
    return static_cast<std::uint64_t>(fields.size());
  };

  std::unordered_set<ObjectId, ObjectIdHash> frontier;
  report.objects.reserve(table_.master_count() + table_.replica_count());

  table_.ForEachMaster([&](ObjectId oid, const MasterEntry& e) {
    InspectEntry row;
    row.id = oid;
    row.master = true;
    row.class_name = e.obj->obiwan_class().name();
    row.local_version = e.version;
    row.known_master_version = e.version;
    row.age = e.last_update != 0 && report.now > e.last_update
                  ? report.now - e.last_update
                  : 0;
    row.payload_bytes = payload_bytes(e.obj);
    row.faults = e.gets_served;
    row.puts = e.puts_accepted;
    row.holders = e.holders.size();
    row.edges = edges_of(e.obj);
    report.objects.push_back(std::move(row));
  });

  table_.ForEachReplica([&](ObjectId oid, const ReplicaEntry& e) {
    InspectEntry row;
    row.id = oid;
    row.master = false;
    row.class_name = e.obj->obiwan_class().name();
    row.local_version = e.version;
    row.known_master_version = std::max(e.known_master_version, e.version);
    row.stale = e.stale;
    row.in_cluster = e.in_cluster;
    row.staleness_versions = e.known_master_version > e.version
                                 ? e.known_master_version - e.version
                                 : (e.stale ? 1 : 0);
    row.age = e.last_sync != 0 && report.now > e.last_sync
                  ? report.now - e.last_sync
                  : 0;
    row.payload_bytes = payload_bytes(e.obj);
    row.faults = e.sync_count;
    row.puts = e.put_count;
    row.holders = e.holders.size();
    row.edges = edges_of(e.obj);
    report.objects.push_back(std::move(row));
  });

  for (const InspectEntry& row : report.objects) {
    for (const InspectEdge& edge : row.edges) {
      // Contains self-locks, which no-ops under the world guard Inspect holds.
      if (edge.proxy && !table_.Contains(edge.to)) {
        frontier.insert(edge.to);
      }
    }
  }
  report.frontier = frontier.size();

  {
    std::lock_guard pins(pins_mutex_);
    report.pins.reserve(proxy_ins_.size());
    for (const auto& [pin, e] : proxy_ins_) {
      InspectPin row;
      row.pin = pin;
      row.target = e.target;
      row.cluster = e.cluster;
      row.anchored = e.anchored;
      row.members = e.members.size();
      row.lease_remaining =
          (e.anchored || e.expires_at == 0) ? -1 : e.expires_at - report.now;
      report.pins.push_back(row);
    }
  }

  // Deterministic order: the tables are hash maps, but reports must compare
  // equal across a snapshot round-trip (and diff cleanly between pulls).
  std::sort(report.objects.begin(), report.objects.end(),
            [](const InspectEntry& a, const InspectEntry& b) { return a.id < b.id; });
  std::sort(report.pins.begin(), report.pins.end(),
            [](const InspectPin& a, const InspectPin& b) { return a.pin < b.pin; });
  return report;
}

InspectReport Site::Inspect() {
  // The world guard freezes every shard at once: the report is a consistent
  // global snapshot, and the helpers below (EnsureId, lookups, sweeps) all
  // no-op their own guards under it.
  ObjectTable::WorldGuard world(table_);
  EnsureGraphIds();
  UpdateReplicationGauges();
  return InspectLocked();
}

Result<InspectReport> Site::InspectRemote(const net::Address& to) {
  TraceContext::Scope flow(TraceContext::CurrentOrNew(id_));
  SpanScope span(&sinks_, clock_, id_, "inspect", "pull from " + to,
                 TraceContext::Current());
  wire::Writer body;  // kInspect carries no request body
  OBIWAN_ASSIGN_OR_RETURN(
      Bytes reply,
      TimedRequest(telemetry_.op_inspect, to,
                   AsView(rmi::WrapRequest(rmi::MessageKind::kInspect, body,
                                           TraceContext::Current(),
                                           DeadlineBudget()))));
  wire::Reader r(AsView(reply));
  InspectReport report = wire::Decode<InspectReport>(r);
  OBIWAN_RETURN_IF_ERROR(r.status());
  return report;
}

std::string Site::ReplicaSummaryJson() {
  // Bounded by design: this rides inside flight-recorder dumps, which must
  // stay small enough to write during a failure.
  constexpr std::size_t kMaxRows = 64;
  const Nanos now = clock_.Now();
  const std::size_t replica_total = table_.replica_count();
  std::string out = "{\"site\":" + std::to_string(id_) +
                    ",\"masters\":" + std::to_string(table_.master_count()) +
                    ",\"replicas\":" + std::to_string(replica_total) +
                    ",\"proxy_ins\":" + std::to_string(proxy_in_count()) +
                    ",\"rows\":[";
  std::size_t emitted = 0;
  table_.ForEachReplica([&](ObjectId oid, const ReplicaEntry& e) {
    if (emitted == kMaxRows) return;
    if (emitted++ > 0) out += ',';
    out += "{\"id\":" + JsonString(ToString(oid)) +
           ",\"version\":" + std::to_string(e.version) +
           ",\"known\":" + std::to_string(std::max(e.known_master_version, e.version)) +
           ",\"stale\":" + (e.stale ? "true" : "false") +
           ",\"age_ns\":" +
           std::to_string(e.last_sync != 0 && now > e.last_sync ? now - e.last_sync
                                                                : 0) +
           "}";
  });
  out += "],\"truncated\":";
  out += replica_total > kMaxRows ? "true" : "false";
  out += '}';
  return out;
}

// ---------------------------------------------------------------------------
// Renderers
// ---------------------------------------------------------------------------

std::string ToJson(const InspectReport& report) {
  std::string out = "{\"site\":" + std::to_string(report.site) +
                    ",\"address\":" + JsonString(report.address) +
                    ",\"now_ns\":" + std::to_string(report.now) +
                    ",\"summary\":{\"masters\":" + std::to_string(report.masters) +
                    ",\"replicas\":" + std::to_string(report.replicas) +
                    ",\"proxy_ins\":" + std::to_string(report.proxy_ins) +
                    ",\"frontier\":" + std::to_string(report.frontier) +
                    "},\"objects\":[";
  for (std::size_t i = 0; i < report.objects.size(); ++i) {
    const InspectEntry& o = report.objects[i];
    if (i > 0) out += ',';
    out += "{\"id\":" + JsonString(ToString(o.id)) +
           ",\"role\":" + (o.master ? JsonString("master") : JsonString("replica")) +
           ",\"class\":" + JsonString(o.class_name) +
           ",\"version\":" + std::to_string(o.local_version) +
           ",\"known_master_version\":" + std::to_string(o.known_master_version) +
           ",\"stale\":" + (o.stale ? "true" : "false") +
           ",\"in_cluster\":" + (o.in_cluster ? "true" : "false") +
           ",\"staleness_versions\":" + std::to_string(o.staleness_versions) +
           ",\"age_ns\":" + std::to_string(o.age) +
           ",\"payload_bytes\":" + std::to_string(o.payload_bytes) +
           ",\"faults\":" + std::to_string(o.faults) +
           ",\"puts\":" + std::to_string(o.puts) +
           ",\"holders\":" + std::to_string(o.holders) + ",\"edges\":[";
    for (std::size_t j = 0; j < o.edges.size(); ++j) {
      const InspectEdge& e = o.edges[j];
      if (j > 0) out += ',';
      out += "{\"to\":" + JsonString(ToString(e.to)) +
             ",\"proxy\":" + (e.proxy ? "true" : "false") +
             ",\"class\":" + JsonString(e.class_name) + "}";
    }
    out += "]}";
  }
  out += "],\"pins\":[";
  for (std::size_t i = 0; i < report.pins.size(); ++i) {
    const InspectPin& p = report.pins[i];
    if (i > 0) out += ',';
    out += "{\"pin\":" + JsonString(ToString(p.pin)) +
           ",\"target\":" + JsonString(ToString(p.target)) +
           ",\"cluster\":" + (p.cluster ? "true" : "false") +
           ",\"anchored\":" + (p.anchored ? "true" : "false") +
           ",\"members\":" + std::to_string(p.members) +
           ",\"lease_remaining_ns\":" + std::to_string(p.lease_remaining) + "}";
  }
  out += "]}";
  return out;
}

std::string ToText(const InspectReport& report) {
  std::string out = "site " + std::to_string(report.site) + " (" +
                    report.address + ")  masters " +
                    std::to_string(report.masters) + "  replicas " +
                    std::to_string(report.replicas) + "  proxy-ins " +
                    std::to_string(report.proxy_ins) + "  frontier " +
                    std::to_string(report.frontier) + "\n";
  out += Pad("role", 9) + Pad("id", 14) + Pad("class", 14) + Pad("ver", 6) +
         Pad("known", 7) + Pad("lag", 5) + Pad("age", 10) + Pad("bytes", 7) +
         Pad("faults", 8) + Pad("puts", 6) + Pad("holders", 9) + "flags\n";
  for (const InspectEntry& o : report.objects) {
    std::string flags;
    if (o.stale) flags += "stale ";
    if (o.in_cluster) flags += "cluster ";
    out += Pad(o.master ? "master" : "replica", 9) + Pad(ToString(o.id), 14) +
           Pad(o.class_name, 14) + Pad(std::to_string(o.local_version), 6) +
           Pad(std::to_string(o.known_master_version), 7) +
           Pad(std::to_string(o.staleness_versions), 5) +
           Pad(FormatNanos(o.age), 10) + Pad(std::to_string(o.payload_bytes), 7) +
           Pad(std::to_string(o.faults), 8) + Pad(std::to_string(o.puts), 6) +
           Pad(std::to_string(o.holders), 9) + flags + "\n";
  }
  if (!report.pins.empty()) {
    out += "pins:\n";
    for (const InspectPin& p : report.pins) {
      out += "  " + ToString(p.pin) + " -> " + ToString(p.target);
      if (p.cluster) out += "  cluster(" + std::to_string(p.members) + ")";
      if (p.anchored) {
        out += "  anchored";
      } else if (p.lease_remaining >= 0) {
        out += "  lease " + FormatNanos(p.lease_remaining);
      }
      out += "\n";
    }
  }
  return out;
}

std::string FrontierDot(const InspectReport& report) {
  std::unordered_set<ObjectId, ObjectIdHash> present;
  for (const InspectEntry& o : report.objects) present.insert(o.id);

  std::string out = "digraph obiwan_frontier {\n";
  out += "  rankdir=LR;\n";
  out += "  label=\"site " + std::to_string(report.site) +
         " replication frontier\";\n";
  out += "  node [fontsize=10];\n";

  for (const InspectEntry& o : report.objects) {
    const char* fill = o.master ? "lightblue" : (o.stale ? "orange" : "lightyellow");
    out += "  \"" + DotString(ToString(o.id)) +
           "\" [shape=box,style=filled,fillcolor=" + fill + ",label=\"" +
           DotString(o.class_name) + "\\n" + DotString(ToString(o.id)) + " v" +
           std::to_string(o.local_version) + "\\n" +
           (o.master ? "master" : (o.stale ? "replica (stale)" : "replica")) +
           "\"];\n";
  }

  // The frontier: edge targets this site has not replicated — exactly where
  // the incremental wavefront stops.
  std::unordered_set<ObjectId, ObjectIdHash> frontier_emitted;
  for (const InspectEntry& o : report.objects) {
    for (const InspectEdge& e : o.edges) {
      if (present.contains(e.to) || !frontier_emitted.insert(e.to).second) {
        continue;
      }
      out += "  \"" + DotString(ToString(e.to)) +
             "\" [shape=ellipse,style=dashed,label=\"" + DotString(e.class_name) +
             "\\n" + DotString(ToString(e.to)) + "\\nfrontier\"];\n";
    }
  }

  for (const InspectEntry& o : report.objects) {
    for (const InspectEdge& e : o.edges) {
      out += "  \"" + DotString(ToString(o.id)) + "\" -> \"" +
             DotString(ToString(e.to)) + "\"";
      if (e.proxy) out += " [style=dashed]";
      out += ";\n";
    }
  }
  out += "}\n";
  return out;
}

std::string FrontierJson(const InspectReport& report) {
  std::unordered_set<ObjectId, ObjectIdHash> present;
  for (const InspectEntry& o : report.objects) present.insert(o.id);

  std::string out =
      "{\"site\":" + std::to_string(report.site) + ",\"nodes\":[";
  bool first = true;
  for (const InspectEntry& o : report.objects) {
    if (!first) out += ',';
    first = false;
    out += "{\"id\":" + JsonString(ToString(o.id)) + ",\"role\":" +
           (o.master ? JsonString("master") : JsonString("replica")) +
           ",\"class\":" + JsonString(o.class_name) +
           ",\"stale\":" + (o.stale ? "true" : "false") + "}";
  }
  std::unordered_set<ObjectId, ObjectIdHash> frontier_emitted;
  for (const InspectEntry& o : report.objects) {
    for (const InspectEdge& e : o.edges) {
      if (present.contains(e.to) || !frontier_emitted.insert(e.to).second) {
        continue;
      }
      if (!first) out += ',';
      first = false;
      out += "{\"id\":" + JsonString(ToString(e.to)) +
             ",\"role\":\"frontier\",\"class\":" + JsonString(e.class_name) +
             ",\"stale\":false}";
    }
  }
  out += "],\"edges\":[";
  first = true;
  for (const InspectEntry& o : report.objects) {
    for (const InspectEdge& e : o.edges) {
      if (!first) out += ',';
      first = false;
      out += "{\"from\":" + JsonString(ToString(o.id)) +
             ",\"to\":" + JsonString(ToString(e.to)) +
             ",\"proxy\":" + (e.proxy ? "true" : "false") + "}";
    }
  }
  out += "]}";
  return out;
}

}  // namespace obiwan::core
