// Replication modes (the paper's `mode` argument to IProvideRemote::get).
//
// §2.1/§2.2 describe four ways to bring an object graph to the demander:
//   - incremental, N objects per fault, one proxy pair *per object* so each
//     replica can be individually updated (§4.2);
//   - cluster, N objects per fault sharing a *single* proxy pair — cheap but
//     the cluster can only be updated as a whole (§2.2, §4.3);
//   - cluster by depth — "the application specifies the depth of the partial
//     reachability graph that it wants to replicate as a whole";
//   - transitive closure — the entire reachable graph in one step.
#pragma once

#include <cstdint>

namespace obiwan::core {

struct ReplicationMode {
  enum class Kind : std::uint8_t {
    kIncremental = 0,
    kCluster = 1,
    kClusterDepth = 2,
    kTransitiveClosure = 3,
  };

  Kind kind = Kind::kIncremental;
  std::uint32_t count = 1;  // objects per batch (kIncremental, kCluster)
  std::uint32_t depth = 0;  // reachability depth (kClusterDepth)

  static ReplicationMode Incremental(std::uint32_t n = 1) {
    return {Kind::kIncremental, n, 0};
  }
  static ReplicationMode Cluster(std::uint32_t n) {
    return {Kind::kCluster, n, 0};
  }
  static ReplicationMode ClusterDepth(std::uint32_t d) {
    return {Kind::kClusterDepth, 1, d};
  }
  static ReplicationMode Closure() { return {Kind::kTransitiveClosure, 0, 0}; }

  // Cluster-flavoured modes create one proxy pair per batch; the others one
  // per object.
  bool SharedProxyPair() const { return kind != Kind::kIncremental; }

  friend bool operator==(const ReplicationMode&, const ReplicationMode&) = default;
};

}  // namespace obiwan::core
