// Site snapshots: persist and restore a site's complete object state.
//
// The mobility scenario this serves: a PDA replicates a graph, edits it
// offline, powers down, and later resumes — its replicas, their provider
// channels, and its own masters must all survive. The snapshot also covers
// the provider role (proxy-ins, cluster membership), so a site that restarts
// at the same address keeps honouring descriptors that other sites hold.
#include "core/site.h"

#include <algorithm>

namespace obiwan::core {
namespace {

// "OBI2": version 2 added the per-pin user list (holder lifecycle).
constexpr std::uint32_t kSnapshotMagic = 0x4F424932;

enum class RefTag : std::uint8_t { kNull = 0, kLocal = 1, kProxy = 2 };

}  // namespace

Result<Bytes> Site::SaveSnapshot() {
  // The world guard freezes every shard: the snapshot is a consistent global
  // cut, and every helper below (EnsureId, lookups, sweeps) no-ops its own
  // guards under it — the role the recursive site mutex used to play.
  ObjectTable::WorldGuard world(table_);
  wire::Writer w;
  w.U32(kSnapshotMagic);
  w.Varint(id_);
  w.Varint(next_object_.load(std::memory_order_relaxed));
  {
    std::lock_guard pins(pins_mutex_);
    w.Varint(next_pin_);
  }

  // Serialize one object's refs; assigns ids to local targets as needed.
  auto encode_refs = [&](Shareable& obj) {
    const ClassInfo& ci = obj.obiwan_class();
    w.Varint(ci.refs().size());
    for (const RefFieldInfo& rf : ci.refs()) {
      RefBase& rb = rf.get(obj);
      if (rb.IsEmpty()) {
        w.U8(static_cast<std::uint8_t>(RefTag::kNull));
      } else if (rb.IsLocal()) {
        w.U8(static_cast<std::uint8_t>(RefTag::kLocal));
        wire::Encode(w, EnsureId(rb.local()));
      } else {
        w.U8(static_cast<std::uint8_t>(RefTag::kProxy));
        wire::Encode(w, rb.proxy()->descriptor());
      }
    }
  };

  // Pre-pass: assign ids to every locally referenced object so the master
  // table is complete before anything is written.
  EnsureGraphIds();

  // Collect ids first, then serialize via lookups: encode_refs may call
  // EnsureId, which must not run while a shard's slot vector is mid-sweep.
  std::vector<ObjectId> master_ids;
  master_ids.reserve(table_.master_count());
  table_.ForEachMaster(
      [&](ObjectId oid, const MasterEntry&) { master_ids.push_back(oid); });

  w.Varint(master_ids.size());
  for (ObjectId oid : master_ids) {
    const MasterEntry& entry = *table_.Master(oid);
    wire::Encode(w, oid);
    w.String(entry.obj->obiwan_class().name());
    w.Varint(entry.version);
    w.Blob(AsView(entry.policy_state));
    wire::Encode(w, entry.holders);
    w.Svarint(entry.last_update);
    w.Varint(entry.gets_served);
    w.Varint(entry.puts_accepted);
    wire::Writer fields;
    entry.obj->obiwan_class().EncodeFields(*entry.obj, fields);
    w.Blob(AsView(fields.data()));
    encode_refs(*entry.obj);
  }

  std::vector<ObjectId> replica_ids;
  replica_ids.reserve(table_.replica_count());
  table_.ForEachReplica(
      [&](ObjectId oid, const ReplicaEntry&) { replica_ids.push_back(oid); });

  w.Varint(replica_ids.size());
  for (ObjectId oid : replica_ids) {
    const ReplicaEntry& entry = *table_.Replica(oid);
    wire::Encode(w, oid);
    w.String(entry.obj->obiwan_class().name());
    w.Varint(entry.version);
    w.Blob(AsView(entry.policy_state));
    w.Bool(entry.provider.valid());
    if (entry.provider.valid()) wire::Encode(w, entry.provider);
    w.Bool(entry.in_cluster);
    w.Bool(entry.stale);
    wire::Encode(w, entry.holders);
    w.Varint(entry.known_master_version);
    w.Svarint(entry.last_sync);
    w.Varint(entry.sync_count);
    w.Varint(entry.put_count);
    wire::Writer fields;
    entry.obj->obiwan_class().EncodeFields(*entry.obj, fields);
    w.Blob(AsView(fields.data()));
    encode_refs(*entry.obj);
  }

  {
    std::lock_guard pins(pins_mutex_);
    w.Varint(proxy_ins_.size());
    for (const auto& [pin, entry] : proxy_ins_) {
      wire::Encode(w, pin);
      wire::Encode(w, entry.target);
      wire::Encode(w, entry.members);
      w.Bool(entry.cluster);
      w.Bool(entry.anchored);
      wire::Encode(w, entry.users);
    }

    w.Varint(cluster_members_.size());
    for (const auto& [pin, members] : cluster_members_) {
      wire::Encode(w, pin);
      wire::Encode(w, members);
    }
  }

  return std::move(w).Take();
}

Status Site::LoadSnapshot(BytesView snapshot) {
  ObjectTable::WorldGuard world(table_);
  {
    std::lock_guard pins(pins_mutex_);
    if (table_.master_count() != 0 || table_.replica_count() != 0 ||
        !proxy_ins_.empty()) {
      return FailedPreconditionError("LoadSnapshot requires an empty site");
    }
  }
  Status status = LoadSnapshotLocked(snapshot);
  if (!status.ok()) {
    // Never leave a half-restored site behind a failed load.
    table_.Clear();
    {
      std::lock_guard pins(pins_mutex_);
      proxy_ins_.clear();
      pin_by_target_.clear();
      cluster_members_.clear();
      next_pin_ = 1;
    }
    {
      std::lock_guard lock(mutex_);
      holder_health_.clear();
      notify_retries_.clear();
    }
    next_object_.store(1, std::memory_order_relaxed);
  } else {
    // Every restored holder starts healthy; failures re-accumulate live.
    std::lock_guard lock(mutex_);
    table_.ForEachMaster([&](ObjectId, const MasterEntry& entry) {
      for (const net::Address& addr : entry.holders) holder_health_[addr];
    });
    table_.ForEachReplica([&](ObjectId, const ReplicaEntry& entry) {
      for (const net::Address& addr : entry.holders) holder_health_[addr];
    });
  }
  SyncGauges();
  UpdateReplicationGauges();
  {
    std::lock_guard lock(mutex_);
    SyncHolderGaugesLocked();
  }
  return status;
}

Status Site::LoadSnapshotLocked(BytesView snapshot) {
  wire::Reader r(snapshot);
  if (r.U32() != kSnapshotMagic) {
    return DataLossError("not an OBIWAN site snapshot");
  }
  auto snapshot_site = static_cast<SiteId>(r.Varint());
  if (r.ok() && snapshot_site != id_) {
    return FailedPreconditionError(
        "snapshot belongs to site " + std::to_string(snapshot_site) +
        ", this site is " + std::to_string(id_));
  }
  next_object_.store(r.Varint(), std::memory_order_relaxed);
  {
    std::lock_guard pins(pins_mutex_);
    next_pin_ = r.Varint();
  }

  struct PendingRef {
    RefBase* ref;
    RefTag tag;
    ObjectId target;
    ProxyDescriptor proxy;
  };
  std::vector<PendingRef> pending;

  auto decode_object = [&](const std::string& class_name, ObjectId oid)
      -> Result<std::shared_ptr<Shareable>> {
    OBIWAN_ASSIGN_OR_RETURN(const ClassInfo* ci,
                            ClassRegistry::Instance().Find(class_name));
    std::shared_ptr<Shareable> obj = ci->NewInstance();
    Bytes fields = r.Blob();
    wire::Reader fr(AsView(fields));
    OBIWAN_RETURN_IF_ERROR(ci->DecodeFields(*obj, fr));
    std::uint64_t ref_count = r.Varint();
    if (ref_count != ci->refs().size()) {
      return DataLossError("snapshot ref count mismatch for " + class_name);
    }
    for (std::uint64_t i = 0; i < ref_count && r.ok(); ++i) {
      PendingRef p;
      p.ref = &ci->refs()[i].get(*obj);
      std::uint8_t tag = r.U8();
      if (tag > 2) {
        r.Fail("bad snapshot ref tag");
        break;
      }
      p.tag = static_cast<RefTag>(tag);
      if (p.tag == RefTag::kLocal) {
        p.target = wire::Decode<ObjectId>(r);
      } else if (p.tag == RefTag::kProxy) {
        p.proxy = wire::Decode<ProxyDescriptor>(r);
      }
      pending.push_back(p);
    }
    OBIWAN_RETURN_IF_ERROR(r.status());
    // No manual pointer-map insert: EmplaceMaster/EmplaceReplica register
    // the pointer identity (and the holder index) themselves.
    return obj;
  };

  // Duplicate ids would make the table emplace drop the second object while
  // `pending` still points into it — corrupt input must be rejected here.
  auto fresh_id = [&](ObjectId oid) {
    return oid.valid() && table_.Master(oid) == nullptr &&
           table_.Replica(oid) == nullptr;
  };

  std::uint64_t master_count = r.Varint();
  for (std::uint64_t i = 0; i < master_count && r.ok(); ++i) {
    auto oid = wire::Decode<ObjectId>(r);
    std::string class_name = r.String();
    if (r.ok() && !fresh_id(oid)) {
      return DataLossError("snapshot contains duplicate or invalid id " +
                           ToString(oid));
    }
    MasterEntry entry;
    entry.version = r.Varint();
    entry.policy_state = r.Blob();
    entry.holders = wire::Decode<std::vector<net::Address>>(r);
    entry.last_update = r.Svarint();
    entry.gets_served = r.Varint();
    entry.puts_accepted = r.Varint();
    OBIWAN_ASSIGN_OR_RETURN(entry.obj, decode_object(class_name, oid));
    table_.EmplaceMaster(oid, std::move(entry));
  }

  std::uint64_t replica_count = r.Varint();
  for (std::uint64_t i = 0; i < replica_count && r.ok(); ++i) {
    auto oid = wire::Decode<ObjectId>(r);
    std::string class_name = r.String();
    if (r.ok() && !fresh_id(oid)) {
      return DataLossError("snapshot contains duplicate or invalid id " +
                           ToString(oid));
    }
    ReplicaEntry entry;
    entry.version = r.Varint();
    entry.policy_state = r.Blob();
    if (r.Bool()) entry.provider = wire::Decode<ProxyDescriptor>(r);
    entry.in_cluster = r.Bool();
    entry.stale = r.Bool();
    entry.holders = wire::Decode<std::vector<net::Address>>(r);
    entry.known_master_version = r.Varint();
    entry.last_sync = r.Svarint();
    entry.sync_count = r.Varint();
    entry.put_count = r.Varint();
    OBIWAN_ASSIGN_OR_RETURN(entry.obj, decode_object(class_name, oid));
    table_.EmplaceReplica(oid, std::move(entry));
  }

  {
    std::lock_guard pins(pins_mutex_);
    std::uint64_t pin_count = r.Varint();
    for (std::uint64_t i = 0; i < pin_count && r.ok(); ++i) {
      auto pin = wire::Decode<ProxyId>(r);
      ProxyInEntry entry;
      entry.target = wire::Decode<ObjectId>(r);
      entry.members = wire::Decode<std::vector<ObjectId>>(r);
      entry.cluster = r.Bool();
      entry.anchored = r.Bool();
      entry.users = wire::Decode<std::vector<net::Address>>(r);
      TouchPin(entry);  // restart the lease clock after restore
      if (!entry.cluster) pin_by_target_.emplace(entry.target, pin);
      proxy_ins_.emplace(pin, std::move(entry));
    }

    std::uint64_t cluster_count = r.Varint();
    for (std::uint64_t i = 0; i < cluster_count && r.ok(); ++i) {
      auto pin = wire::Decode<ProxyId>(r);
      cluster_members_[pin] = wire::Decode<std::vector<ObjectId>>(r);
    }
  }

  OBIWAN_RETURN_IF_ERROR(r.status());
  if (!r.AtEnd()) return DataLossError("trailing bytes after snapshot");

  // Second pass: swizzle.
  for (const PendingRef& p : pending) {
    switch (p.tag) {
      case RefTag::kNull:
        p.ref->Reset();
        break;
      case RefTag::kLocal: {
        std::shared_ptr<Shareable> target = table_.Find(p.target);
        if (target == nullptr) {
          return DataLossError("snapshot refers to missing object " +
                               ToString(p.target));
        }
        p.ref->BindLocal(p.target, std::move(target));
        break;
      }
      case RefTag::kProxy: {
        if (auto local = table_.Find(p.proxy.target)) {
          p.ref->BindLocal(p.proxy.target, std::move(local));
        } else {
          p.ref->BindProxy(
              std::make_shared<ProxyOut>(this, p.proxy, ReplicationMode::Incremental()));
        }
        break;
      }
    }
  }
  return Status::Ok();
}

}  // namespace obiwan::core
