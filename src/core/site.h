// Site: one OBIWAN process.
//
// The paper's architecture gives "the application programmer the view of a
// network of machines in which one or more processes run; objects exist
// inside processes" (§2). A Site is such a process: it owns a transport
// endpoint, the tables that implement both halves of the replication
// protocol, and the RMI dispatch plane.
//
// Provider side (site S2 in Figure 1):
//   - table_ (masters): objects this site created, with version + policy state
//   - proxy_ins_      : proxy-in handles through which demanders fetch/put
//   - ServeGet        : graph traversal + serialization of a replica batch
//   - ServePut        : applying replica state back onto masters
//
// Demander side (site S1):
//   - table_ (replicas): local replicas keyed by their master's ObjectId —
//                    the identity map that guarantees one replica per master
//   - Materialize  : instantiate records, swizzle references, create
//                    proxy-outs at graph boundaries
//   - DemandThrough: the object-fault path used by ProxyOut
//
// Both halves live in one lock-striped ObjectTable (core/object_table.h);
// the site mutex is a small non-recursive leaf guarding holder health and
// the notify retry queue only.
//
// A site is usually both at once: it re-exports replicas it holds, so chains
// of sites (PDA <- laptop <- office PC) work without special cases.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/clock.h"
#include "common/contention.h"
#include "common/ids.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/trace.h"
#include "core/consistency.h"
#include "core/fanout.h"
#include "core/inspect.h"
#include "core/messages.h"
#include "core/mode.h"
#include "core/object_table.h"
#include "core/proxy.h"
#include "core/ref.h"
#include "core/shareable.h"
#include "net/transport.h"
#include "rmi/call.h"
#include "rmi/dispatcher.h"
#include "rmi/registry.h"

namespace obiwan::core {

template <typename T>
class RemoteRef;
class JourneySink;

struct SiteStats {
  std::uint64_t object_faults = 0;  // proxy-out demands that went remote
  std::uint64_t gets_sent = 0;
  std::uint64_t gets_served = 0;
  std::uint64_t puts_sent = 0;
  std::uint64_t puts_served = 0;
  std::uint64_t calls_sent = 0;
  std::uint64_t calls_served = 0;
  std::uint64_t proxy_ins_created = 0;
  std::uint64_t proxy_outs_created = 0;
  std::uint64_t replicas_created = 0;
  std::uint64_t objects_served = 0;
  std::uint64_t invalidations_sent = 0;
  std::uint64_t invalidations_received = 0;
  std::uint64_t replication_bytes_in = 0;   // replica state received
  std::uint64_t replication_bytes_out = 0;  // replica state shipped
  std::uint64_t notify_retries = 0;         // queued notifications re-sent
  std::uint64_t notify_superseded = 0;      // queued retries coalesced by version
  std::uint64_t holders_dropped = 0;        // holders unregistered as unreachable
};

// Pre-resolved metric handles for one site. All protocol counters live in the
// metrics registry (labels: site id + a per-instance sequence number, so two
// sites with the same id in one process never share a series); SiteStats is a
// thin adapter computed from these counters against a movable baseline, which
// is what keeps ResetStats() cheap while the registry stays monotonic. The
// field-to-series mapping lives in one descriptor table (site.cc) that the
// constructor, Raw() and View() all walk, so adding a counter means adding
// one struct field and one table row.
struct SiteTelemetry {
  SiteTelemetry(SiteId site, MetricsRegistry& metrics);

  // One handle per SiteStats field, same names.
  Counter* object_faults;
  Counter* gets_sent;
  Counter* gets_served;
  Counter* puts_sent;
  Counter* puts_served;
  Counter* calls_sent;
  Counter* calls_served;
  Counter* proxy_ins_created;
  Counter* proxy_outs_created;
  Counter* replicas_created;
  Counter* objects_served;
  Counter* invalidations_sent;
  Counter* invalidations_received;
  Counter* replication_bytes_in;
  Counter* replication_bytes_out;
  Counter* notify_retries;
  Counter* notify_superseded;
  Counter* holders_dropped;

  // Live table sizes.
  Gauge* masters;
  Gauge* replicas;
  Gauge* proxy_ins;

  // Replication-state gauges (refreshed by Site::UpdateReplicationGauges on
  // the fault/put/push/invalidate paths and on every Inspect):
  // obiwan_objects{role=master|replica|frontier} — topology by role, where
  // "frontier" counts distinct targets of unresolved proxy-outs;
  // obiwan_replica_staleness_versions{agg=max|p95} — how far behind the
  // replicas are in master versions; obiwan_replica_staleness_age_ns — the
  // oldest replica's time since last sync; obiwan_leases_expiring — leased
  // proxy-ins within half a lease of expiry.
  Gauge* objects_master;
  Gauge* objects_replica;
  Gauge* objects_frontier;
  Gauge* staleness_max;
  Gauge* staleness_p95;
  Gauge* staleness_age_max;
  Gauge* leases_expiring;

  // Holder lifecycle (refreshed by Site::SyncHolderGauges after every
  // fanout/registration/release): obiwan_holders{state=active|suspect} —
  // registered holders by health, where "suspect" means at least one
  // consecutive notification failure; obiwan_notify_retry_depth — queued
  // notifications awaiting their backoff deadline.
  Gauge* holders_active;
  Gauge* holders_suspect;
  Gauge* notify_retry_depth;

  // obiwan_site_uptime_ns — nanoseconds since this Site was constructed, on
  // the site's clock. A sawtooth reset to ~0 on a dashboard means the site
  // restarted; refreshed by Site::RefreshTelemetry (admin scrapes and
  // FleetMonitor polls).
  Gauge* uptime;

  // Client-side RPC telemetry, one bundle per operation the site issues.
  struct Op {
    Histogram* latency = nullptr;  // round-trip time on the site's clock
    Counter* errors = nullptr;
    const char* name = "";  // op label, reused as the rpc span name
  };
  Op op_call;
  Op op_get;
  Op op_put;
  Op op_commit;
  Op op_ping;
  Op op_release;
  Op op_renew;
  Op op_notify;   // invalidations / pushes fanned out after a put
  Op op_inspect;  // remote replication-state pulls

  // Current counter values as the legacy struct (no baseline applied).
  SiteStats Raw() const;
  // Raw() minus the stored baseline, saturating.
  SiteStats View() const;
  void Rebaseline() { baseline = Raw(); }

  SiteStats baseline;
};

class Site final : public rmi::Service {
 public:
  // Spans/events the per-site flight recorder keeps for post-mortem dumps.
  static constexpr std::size_t kFlightRecorderCapacity = 512;

  // The site takes ownership of its transport. `clock` is used for
  // policy timestamps; benches pass the simulation's VirtualClock.
  Site(SiteId id, std::unique_ptr<net::Transport> transport,
       Clock& clock = SystemClock::Instance());
  ~Site() override;

  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  // Start serving inbound requests (registers the dispatcher with the
  // transport).
  Status Start();
  void Stop();

  SiteId id() const { return id_; }
  net::Address address() const { return transport_->LocalAddress(); }
  net::Transport& transport() { return *transport_; }
  Clock& clock() { return clock_; }

  // --- naming ---------------------------------------------------------------

  // Host the name server on this site.
  void HostRegistry();
  // Point this site at a name server (possibly its own address).
  void UseRegistry(net::Address registry_address);

  // Export `obj` (if needed) and register it under `name`.
  Status Bind(const std::string& name, const std::shared_ptr<Shareable>& obj);
  Status Rebind(const std::string& name, const std::shared_ptr<Shareable>& obj);
  Status Unbind(const std::string& name);

  // Resolve `name` to a typed remote reference. Defined in remote_ref.h.
  template <typename T>
  Result<RemoteRef<T>> Lookup(const std::string& name);

  // --- masters ----------------------------------------------------------------

  // Make `obj` a master of this site (idempotent); returns its ObjectId.
  ObjectId Export(const std::shared_ptr<Shareable>& obj);

  // Master version counter (bumped on every accepted put).
  Result<std::uint64_t> MasterVersion(ObjectId id) const;

  // A master was edited *locally* (not through a put): bump its version and
  // notify every registered holder, exactly like the after-put fanout —
  // a versioned invalidation, or the new state itself under an
  // updates-dissemination policy. Best-effort: an unreachable holder simply
  // misses the notification and discovers the staleness on its next sync.
  Status MarkMasterUpdated(ObjectId id);

  // --- update fanout & holder lifecycle ---------------------------------------
  // After-put notifications (invalidations or pushes) go out through a
  // bounded parallel pool (core/fanout.h), so one unreachable holder costs
  // the batch a single notification deadline instead of stalling every
  // other holder behind it.
  void SetNotifyFanout(std::size_t width);

  // A holder that fails `threshold` consecutive notifications is dropped
  // from every holders list (obiwan_holders_dropped_total); its next get
  // re-registers it. 0 disables dropping. Default: 3.
  void SetHolderFailureThreshold(std::uint32_t threshold);

  // Transiently failed notifications are queued per holder and re-sent with
  // exponential backoff — piggybacked on the next fanout whose clock passes
  // their deadline, or explicitly via PumpNotifyRetries().
  struct NotifyRetryPolicy {
    Nanos initial_backoff = 100 * kMilli;
    Nanos max_backoff = 10 * kSecond;
    std::uint32_t max_attempts = 4;     // total sends per notification
    std::size_t per_holder_queue = 16;  // oldest dropped beyond this
  };
  void SetNotifyRetryPolicy(NotifyRetryPolicy policy);

  // Re-send every queued notification whose backoff deadline has passed.
  // Returns the number attempted.
  std::size_t PumpNotifyRetries();
  std::size_t pending_notify_retries() const;

  // --- replication (demander side) -------------------------------------------

  // Core of the demand path: fetch a batch through `descriptor` and
  // materialize it locally. Returns the local object for `root`.
  // With `shortcut_local` (the object-fault path), a root that is already
  // local resolves without touching the network; an explicit get
  // (RemoteRef::Replicate) passes false so the batch is always fetched and
  // coverage expands, with existing replicas reused by identity.
  Result<std::shared_ptr<Shareable>> DemandThrough(const ProxyDescriptor& descriptor,
                                                   ObjectId root,
                                                   ReplicationMode mode,
                                                   bool refresh,
                                                   bool shortcut_local = true);

  // Ship a replica's state back to its master (§2.2 step: B'.put ->
  // BProxyIn.put). Fails with kFailedPrecondition for cluster members, which
  // can only be updated as a whole (§4.3).
  Status Put(RefBase& ref);

  // Ship the whole cluster `ref` belongs to back to the provider.
  Status PutCluster(RefBase& ref);

  // Re-fetch current master state into the existing replica (the paper's
  // "refresh replica B' (method BProxyIn.get)").
  Status Refresh(RefBase& ref);

  // Resolve every proxy-out reachable from `ref`, using each proxy's own
  // mode — the "perfect mechanism of pre-fetching" of §2.1 footnote 3, and
  // the way an application pins a graph before disconnecting.
  Status PrefetchAll(RefBase& ref);

  bool IsStale(const RefBase& ref) const;
  Result<std::uint64_t> ReplicaVersion(const RefBase& ref) const;

  // Replicas currently marked stale (invalidated, not yet refreshed) —
  // the work list the resync daemon (core/resync.h) drains.
  std::vector<ObjectId> StaleReplicaIds() const;

  // Re-fetch current master state into the replica `id` through its
  // provider channel — Refresh(RefBase&) addressed by ObjectId, for
  // callers (the resync daemon) that hold no application Ref.
  Status RefreshReplica(ObjectId id);

  // Memory reclamation for limited-memory info-appliances (§2.1 motivates
  // incremental replication with exactly this constraint): drop every
  // replica that nothing outside the replica table references — no
  // application Ref and no other local object's reference field points at
  // it. An evicted object is re-fetched transparently if a proxy for it
  // faults later. Local edits that were never Put are lost with the replica;
  // call sparingly or after synchronising. Returns the number evicted.
  std::size_t EvictIdleReplicas();

  // --- persistence (mobility across restarts) ----------------------------------
  // Serialize this site's full object state — masters, replicas (with their
  // provider channels), proxy-ins and cluster membership — so a mobile
  // device can power down and resume where it left off, including replicas
  // it was editing offline. Counters and ids are preserved, so remote sites'
  // descriptors remain valid if this site restarts at the same address.
  // (Non-const: objects that never needed an id are assigned one so the
  // snapshot is self-consistent.)
  Result<Bytes> SaveSnapshot();
  // Restore into a freshly constructed site with the same SiteId. Fails with
  // kFailedPrecondition if the site already holds objects.
  Status LoadSnapshot(BytesView snapshot);

  // Low-level building block shared with the transaction layer. Read-only
  // items carry only the base version (for commit-time validation).
  Result<PutItem> BuildPutItem(ObjectId id, bool read_only = false);
  // Send an already-built transactional batch to a provider.
  Result<PutReply> SendCommit(const net::Address& provider, ProxyId pin,
                              std::vector<PutItem> items);

  // Atomic (per provider) optimistic commit: validate that every object in
  // `reads` and `writes` is still at the version this site last synchronised
  // at, then apply the write states. Objects are grouped by provider; each
  // provider's group is all-or-nothing, groups commit independently — the
  // paper's "relaxed transactional support" hook (§1).
  Status CommitReplicas(const std::vector<ObjectId>& reads,
                        const std::vector<ObjectId>& writes);

  // Replica's provider channel (needed by the transaction layer to route a
  // commit). Error if `id` is not a replica here.
  Result<ProxyDescriptor> ReplicaProvider(ObjectId id) const;

  // Release a provider-side proxy-in this site no longer needs.
  Status ReleaseProxy(const ProxyDescriptor& descriptor);

  // --- proxy-in leases (distributed GC) ----------------------------------------
  // The Java prototype relied on the JVM collecting unreachable proxies; for
  // provider-side proxy-ins this site offers lease-based collection instead:
  // with a lease duration set, every proxy-in expires unless used or renewed,
  // and CollectExpiredProxyIns() reclaims the dead ones. Zero (default)
  // disables leasing — proxy-ins then live until released explicitly.
  void SetProxyLeaseDuration(Nanos duration) { proxy_lease_ = duration; }
  std::size_t CollectExpiredProxyIns();
  // Demander side: keep a proxy-in alive across idle periods.
  Status RenewProxy(const ProxyDescriptor& descriptor);

  // --- RMI --------------------------------------------------------------------

  // Raw remote invocation; the typed face is RemoteRef<T>::Invoke.
  Result<Bytes> CallRaw(const net::Address& to, ObjectId target,
                        const std::string& method, Bytes args);

  // Batched invocation: several calls in one round trip, traced and timed
  // like CallRaw. Returns the raw batch reply frame (DecodeBatchReply).
  Result<Bytes> CallBatchRaw(const net::Address& to,
                             const std::vector<rmi::CallRequest>& calls);

  Status Ping(const net::Address& to);

  // --- consistency -------------------------------------------------------------

  // Install a policy (provider and demander side of this site). Never null.
  void SetConsistencyPolicy(std::unique_ptr<ConsistencyPolicy> policy);
  ConsistencyPolicy& consistency_policy() { return *policy_; }

  // Per-request deadline for every RPC this site issues: applied as the
  // transport CallOptions deadline and advertised in the request envelope as
  // the remaining budget, so providers shed work whose caller already gave
  // up. 0 restores the transport default; net::kNoDeadline disables.
  void SetRequestDeadline(Nanos deadline);
  Nanos request_deadline() const { return request_deadline_; }

  // Model the cost of creating and exporting one proxy-in — in the Java
  // prototype this is a UnicastRemoteObject export plus stub bookkeeping,
  // the per-object cost §4.2 measures and §4.3 eliminates with clustering.
  // Charged against the site's clock (virtual in simulations); zero by
  // default, so real deployments pay only the true CPU cost.
  void SetProxyExportCost(Nanos cost) { proxy_export_cost_ = cost; }

  // --- admin endpoint ----------------------------------------------------------
  // Serve the observability plane over HTTP (obs/http_admin.h): /metrics,
  // /healthz, /inspect.json, /frontier.json|.dot, /flight. `addr` is
  // "host:port", ":port" or "port"; port 0 picks a free one (admin_address()
  // reports the bound port). Implemented in src/obs/http_admin.cc so
  // obiwan_core never links the obs library — callers of ServeAdmin must
  // link obiwan_obs (the obiwan umbrella target does).
  struct AdminOptions {
    // Per-request socket budget on the admin port.
    Nanos request_deadline = 5 * kSecond;
    // /healthz turns 503 when more than this many replicas are stale —
    // readiness tracks whether resync is keeping up, not just liveness.
    std::size_t max_stale_backlog = 1024;
    // Lock-starvation check: when > 0, /healthz turns 503 if the p99 lock
    // wait across all tracked locks since the previous health check exceeds
    // this budget. Off by default — enabling it makes readiness drop under
    // heavy contention, which is a deliberate load-shedding choice.
    Nanos lock_wait_budget = 0;
    // Convergence budget: when > 0, /healthz turns 503 while the p99
    // time-to-all-holders of update journeys completed in the fast alert
    // window exceeds this. Off by default — it makes readiness track update
    // dissemination, not just liveness.
    Nanos convergence_budget = 0;
  };
  Status ServeAdmin(const std::string& addr);
  Status ServeAdmin(const std::string& addr, AdminOptions options);
  void StopAdmin() {
    admin_.reset();
    admin_address_.clear();
  }
  // "127.0.0.1:<port>" while serving, "" otherwise.
  const std::string& admin_address() const { return admin_address_; }

  // Recompute every continuous gauge — table sizes, staleness/lease/role,
  // holder health, uptime — from current state. The protocol paths refresh
  // these on mutation; this hook exists for pull-based consumers (admin
  // /metrics scrapes, FleetMonitor polls) so gauges are current even on a
  // site that has been idle since the last mutation.
  void RefreshTelemetry();

  // Throttle the O(objects) replication-gauge rescan the protocol paths
  // (fault/put/push/invalidate) trigger after every mutation: with a
  // non-zero interval, at most one rescan per interval runs on those paths
  // (admin scrapes and Inspect still recompute eagerly). 0 — the default —
  // keeps the old always-rescan behaviour. Large sites and benches set
  // this so gauge maintenance stays O(1) per operation.
  void SetGaugeRefreshInterval(Nanos interval) {
    gauge_refresh_interval_.store(interval, std::memory_order_relaxed);
  }

  // --- introspection -------------------------------------------------------------

  SiteStats stats() const { return telemetry_.View(); }
  void ResetStats() { telemetry_.Rebaseline(); }

  // Structured report over the replica tables: per-object role, versions,
  // staleness (versions + virtual-time age), payload bytes, serve counts and
  // reference topology; per-proxy-in lease countdown. Also refreshes the
  // replication gauges. (Non-const for the same reason as SaveSnapshot:
  // locally referenced objects that never needed an id are assigned one so
  // the report's edge set is complete.)
  InspectReport Inspect();

  // Pull a remote site's report through the kInspect RMI method — a
  // fleet-wide view from any endpoint.
  Result<InspectReport> InspectRemote(const net::Address& to);

  // Compact JSON summary of the replica table (bounded size), embedded in
  // flight-recorder dumps so post-mortems capture replication state at
  // failure time, not just spans.
  std::string ReplicaSummaryJson();

  // Attach an event tracer (shared across sites to get a merged timeline).
  // Pass nullptr to detach; the tracer must outlive the site while attached.
  // Independent of the always-on flight recorder ring below.
  void SetTracer(Tracer* tracer) { sinks_.SetAttached(tracer); }

  // The site's always-on bounded span buffer (black box): holds the last N
  // spans/events whether or not a tracer is attached, and is registered with
  // FlightRecorder::Global() for post-mortem Chrome-trace dumps.
  Tracer& flight_recorder() { return flight_; }
  const TraceSinks& trace_sinks() const { return sinks_; }

  // Application hook for remotely triggered replica changes: fires after an
  // invalidation marks a replica stale (`stale`=true) and after a pushed
  // update refreshed one in place (`stale`=false). Runs outside the site
  // lock, on the thread that served the notification; keep it quick and do
  // not call back into blocking site operations from it.
  // Returns the previously installed callback so wrappers (the resync
  // daemon) can chain it and restore it on teardown.
  using ReplicaUpdateCallback = std::function<void(ObjectId id, bool stale)>;
  ReplicaUpdateCallback SetReplicaUpdateCallback(ReplicaUpdateCallback callback) {
    std::lock_guard lock(mutex_);
    auto previous = std::move(on_replica_update_);
    on_replica_update_ = std::move(callback);
    return previous;
  }

  // Observability hook for update dissemination (core/journey.h): the put,
  // fanout, notify-ack, invalidate and push paths stamp hop timestamps into
  // the sink. Pass nullptr to detach; the sink must outlive the site while
  // attached (ServeAdmin installs an obs::JourneyTracker and detaches it
  // when the admin endpoint stops). Returns the previously installed sink.
  JourneySink* SetJourneySink(JourneySink* sink) {
    return journey_sink_.exchange(sink, std::memory_order_acq_rel);
  }
  JourneySink* journey_sink() const {
    return journey_sink_.load(std::memory_order_acquire);
  }

  // Runs `fn` with every object-table shard held (the "world" lock) and
  // returns its result. Local mutations of a replica whose provider pushes
  // full updates (`core::PushUpdates`) race with push application on
  // transport threads unless made through here (or WithObjectLock). The
  // world guard is reentrant per thread and shard guards no-op under it, so
  // site calls (Put, Refresh) remain legal inside `fn` — the replacement
  // for the old recursive site mutex. Prefer WithObjectLock: the world
  // guard serializes against every shard.
  template <typename Fn>
  auto WithSiteLock(Fn&& fn) {
    ObjectTable::WorldGuard guard(table_);
    return std::forward<Fn>(fn)();
  }

  // Runs `fn` under the single shard guarding `ref`'s target record — the
  // sharded-table fast path for protecting local mutations of one object
  // (and of objects only this thread touches) against concurrent push/
  // invalidate application. `fn` must not call back into site operations
  // that lock other shards.
  template <typename Fn>
  auto WithObjectLock(const RefBase& ref, Fn&& fn) {
    ObjectId id = ref.id();
    if (!id.valid() && ref.IsLocal()) id = table_.PtrId(ref.local_raw());
    ObjectTable::ShardGuard guard(table_, id);
    return std::forward<Fn>(fn)();
  }
  template <typename Fn>
  auto WithObjectLock(ObjectId id, Fn&& fn) {
    ObjectTable::ShardGuard guard(table_, id);
    return std::forward<Fn>(fn)();
  }

  std::size_t master_count() const;
  std::size_t replica_count() const;
  std::size_t proxy_in_count() const;

  // Holder notifications executing right now across all fanout batches
  // (queue-depth sampling; see obs/profiler.h).
  std::size_t notify_inflight() const { return fanout_.in_flight(); }

  // Capture a trace/span exemplar on every op-latency observation at or
  // above `threshold` (obiwan_rmi_client_latency_ns). The last few such
  // tail observations are exposed with their trace ids on /metrics
  // (OpenMetrics exemplars) and in the JSON dump — the bridge from "p99
  // spiked" to the flight-recorder trace of one slow request. Negative
  // disables capture.
  void SetTailExemplarThreshold(Nanos threshold);

  // Local object (master or replica) by id, if present.
  Result<std::shared_ptr<Shareable>> FindLocal(ObjectId id) const;

  // rmi::Service: handles kCall/kPing/kGet/kPut/kRelease/kInvalidate/
  // kCommit/kRenew/kPush/kCallBatch/kInspect.
  Result<Bytes> Handle(rmi::MessageKind kind, const net::Address& from,
                       wire::Reader& body) override;

 private:
  // MasterEntry / ReplicaEntry moved to core/object_table.h: they are the
  // flat records the sharded table stores in its per-shard arenas.

  struct ProxyInEntry {
    ObjectId target;                // demand root at creation time
    std::vector<ObjectId> members;  // cluster pins only
    bool cluster = false;
    Nanos expires_at = 0;   // 0 = no lease
    bool anchored = false;  // name-server bind pins never expire
    // Demanders sharing this pin (gets, push records, cluster channels).
    // A release only erases the pin — and only unregisters the releasing
    // holder — once its last user is gone.
    std::vector<net::Address> users;
  };

  // Assign an ObjectId to a local object if it does not have one, making it
  // a master of this site. Replicas keep their master's id.
  ObjectId EnsureId(const std::shared_ptr<Shareable>& obj);

  // `user`, when given, is registered on the pin (see ProxyInEntry::users).
  // Per-target pins are reused through pin_by_target_, so repeated gets and
  // push-record builds share one pin instead of minting one per call.
  // NewProxyIn locks the pins mutex itself; the Locked variant is for
  // callers already holding it.
  ProxyId NewProxyIn(ObjectId target, const net::Address* user = nullptr);
  ProxyId NewProxyInLocked(ObjectId target, const net::Address* user);
  ProxyId NewClusterProxyIn(ObjectId root, std::vector<ObjectId> members,
                            const net::Address* user = nullptr);
  ProxyDescriptor DescriptorFor(ProxyId pin, ObjectId target,
                                std::string class_name) const;

  // Uniform provider-side metadata for masters and re-exported replicas.
  // The pointers alias the record inside the object table: the caller must
  // hold the shard guard of `id` (or the world) for as long as it uses them.
  struct MetaRef {
    std::shared_ptr<Shareable> obj;
    std::uint64_t* version;
    Bytes* policy_state;
    std::vector<net::Address>* holders;
  };
  Result<MetaRef> FindMeta(ObjectId id);

  // Refresh a pin's lease on any use.
  void TouchPin(ProxyInEntry& entry);

  void Trace(std::string_view category, std::string_view detail) {
    // Fans out to the flight-recorder ring (always on) and the attached
    // tracer (when set) — a detached site keeps its black box.
    sinks_.Record(clock_.Now(), id_, category, detail,
                  TraceContext::Current());
  }

  // Single choke point for outbound RPCs: times the round trip into `op`'s
  // latency histogram on the site clock and counts failures. `frame` must
  // already carry the current trace id (WrapRequest).
  Result<Bytes> TimedRequest(const SiteTelemetry::Op& op, const net::Address& to,
                             BytesView frame);

  // Deadline budget to advertise in outbound envelopes: the effective
  // request deadline when one is set (site override or transport default),
  // -1 (no header) when requests are unbounded.
  Nanos DeadlineBudget() const;

  // Refresh the masters/replicas/proxy-ins gauges from the table sizes.
  // Self-locking (pins mutex for the proxy-in count); call with no pins
  // lock held.
  void SyncGauges();

  // Recompute the staleness/topology gauges (obiwan_objects{role},
  // obiwan_replica_staleness_versions max/p95, staleness age, expiring
  // leases) from the tables. O(objects + refs), locking shard by shard —
  // call with no shard guard or leaf lock held (or with the world, from
  // Inspect/snapshot paths). The Maybe variant is the protocol-path hook:
  // it honours SetGaugeRefreshInterval and skips the scan while the
  // previous refresh is newer than the interval.
  void UpdateReplicationGauges();
  void MaybeUpdateReplicationGauges();

  // Inspect() body; call with the world held.
  InspectReport InspectLocked();

  // Assign ids to every locally referenced object (fixed point), so reports
  // and snapshots cover the complete edge set. World held.
  void EnsureGraphIds();

  // Snapshot restore body; the public wrapper clears all tables on failure.
  Status LoadSnapshotLocked(BytesView snapshot);

  // Serialize the current master/replica state of `id` for a push: every
  // resolved reference travels as a proxy descriptor so any holder can
  // swizzle or fault it. Built once per fanout; `recipients` are registered
  // as users of every boundary pin the record references.
  Result<ObjectRecord> BuildPushRecord(
      ObjectId id, const std::vector<net::Address>& recipients);

  // One notification (invalidation or push) addressed to one holder. The
  // frame is shared across the whole fanout — built once per object.
  struct OutboundNotify {
    net::Address addr;
    std::shared_ptr<const Bytes> frame;
    std::size_t payload_bytes = 0;  // wire body, not the envelope
    ObjectId id{};
    bool push = false;
    std::uint64_t version = 0;
    std::uint32_t attempt = 1;
    // Backoff the *previous* requeue waited, carried forward so the next
    // one doubles it and clamps once — not re-derived from attempt 0 every
    // pump (O(attempts) per requeue and wrong after SetNotifyRetryPolicy
    // mutates the policy mid-flight). 0 = not yet queued.
    Nanos backoff = 0;
  };
  struct PendingNotify {
    OutboundNotify note;
    Nanos next_attempt = 0;
    Nanos backoff = 0;
  };
  struct HolderHealth {
    std::uint32_t consecutive_failures = 0;
  };

  // Send a batch through the fanout pool, then apply the outcome under the
  // site mutex: successes reset holder health and count bytes/invalidations;
  // failures advance health toward the drop threshold or queue a retry.
  // Holders that crossed the threshold are dropped after the mutex is
  // released (DropHolder needs the world lock, which must never be acquired
  // under the site mutex).
  void DispatchNotifications(std::vector<OutboundNotify> batch);
  // Move retry-queue entries whose backoff deadline passed into `out`.
  // Site mutex held.
  void CollectDueRetriesLocked(std::vector<OutboundNotify>& out);
  // Returns true when `note`'s holder just crossed the failure threshold
  // and should be dropped. Site mutex held.
  bool HandleNotifyFailureLocked(OutboundNotify note);
  // Drop an unreachable holder: remove `addr` from every holders list (via
  // the per-shard holder index) and purge its queued retries. Takes the
  // world lock and the site mutex together, re-checks the failure count
  // under both, and aborts if the holder re-registered (a get resets its
  // health) in the window since the threshold was observed — the drop and
  // the sweep are atomic with respect to re-registration.
  void DropHolder(const net::Address& addr);
  // Site mutex held.
  void SyncHolderGaugesLocked();

  // Does `addr` still hold a pin covering `oid`? Pins mutex held.
  bool HolderStillPinnedLocked(const net::Address& addr, ObjectId oid) const;
  // Is `addr` registered anywhere (any pin user or holders list)?
  // Self-locking (pins mutex, then shard-by-shard holder index).
  bool HolderAnywhere(const net::Address& addr) const;

  // Provider side.
  Result<GetReply> ServeGet(const net::Address& from, const GetRequest& req);
  Result<PutReply> ServePut(const net::Address& from, const PutRequest& req);
  Status ServeInvalidate(const InvalidateRequest& req);
  Result<Bytes> ServeCall(const rmi::CallRequest& call);
  Status ServeRelease(const net::Address& from, ProxyId pin);
  Status ServeRenew(ProxyId pin);
  Status ServePush(const ObjectRecord& record);

  // Demander side.
  Result<std::shared_ptr<Shareable>> Materialize(const ProxyDescriptor& via,
                                                 const GetReply& reply,
                                                 ReplicationMode mode,
                                                 bool refresh, ObjectId want);

  std::shared_ptr<Shareable> FindLocalUnlocked(ObjectId id) const;

  // Ship the listed replicas to one provider; the bool marks read-only
  // (validation-only) items.
  Status PutItems(const ProxyDescriptor& provider,
                  const std::vector<std::pair<ObjectId, bool>>& ids,
                  bool transactional);

  SiteId id_;
  std::unique_ptr<net::Transport> transport_;
  Clock& clock_;
  rmi::Dispatcher dispatcher_;
  std::optional<rmi::RegistryService> registry_service_;
  std::optional<rmi::RegistryClient> registry_client_;
  std::unique_ptr<ConsistencyPolicy> policy_;
  bool started_ = false;

  // The sharded object table: masters, replicas, the pointer-identity map
  // and the per-shard holder index, each shard behind its own
  // TrackedMutex{"site.shard"} (see core/object_table.h for the layout and
  // the full lock-order rules). What used to be the single recursive
  // TrackedRecursiveMutex{"site"} over every table — the serialization
  // bench_contention's committed baseline measures — is now split three
  // ways: the table's shard locks, the pins mutex below, and a shrunken
  // non-recursive site mutex over cross-shard holder state only.
  mutable ObjectTable table_;

  // Cross-shard state: holder health, the notification retry queue, the
  // replica-update callback and the retry/threshold knobs. Non-recursive,
  // still tracked under lock name "site". Lock order: a shard guard (or the
  // world) may be held when acquiring this mutex, never the reverse; no
  // shard lock and no pins lock may be acquired while holding it.
  mutable TrackedMutex mutex_{"site"};

  // Provider-side pins: proxy_ins_, the per-target index and demander-side
  // cluster membership. A leaf lock like mutex_: never acquire a shard lock
  // or another leaf lock under it.
  mutable TrackedMutex pins_mutex_{"site.pins"};
  std::unordered_map<ProxyId, ProxyInEntry, ProxyIdHash> proxy_ins_;
  // Per-target index over non-cluster proxy_ins_, so repeated gets and push
  // records reuse a pin in O(1) instead of scanning the table.
  std::unordered_map<ObjectId, ProxyId, ObjectIdHash> pin_by_target_;
  // Demander-side cluster membership: cluster proxy-in -> member ids.
  std::unordered_map<ProxyId, std::vector<ObjectId>, ProxyIdHash> cluster_members_;

  // Holder lifecycle: consecutive-failure tally per registered holder and
  // the bounded per-holder retry queue (see NotifyRetryPolicy). Under mutex_.
  std::unordered_map<net::Address, HolderHealth> holder_health_;
  std::vector<PendingNotify> notify_retries_;
  std::uint32_t holder_failure_threshold_ = 3;
  NotifyRetryPolicy notify_retry_policy_;

  std::atomic<std::uint64_t> next_object_{1};
  std::uint64_t next_pin_ = 1;  // under pins_mutex_
  Nanos created_at_ = 0;  // clock_ reading at construction, for the uptime gauge
  std::atomic<Nanos> gauge_refresh_interval_{0};
  std::atomic<Nanos> last_gauge_refresh_{-1};
  Nanos proxy_export_cost_ = 0;
  Nanos proxy_lease_ = 0;
  Nanos request_deadline_ = 0;  // 0 = transport default

  SiteTelemetry telemetry_;
  FanoutPool fanout_;
  // Always-on flight-recorder ring (last N spans/events of this site) plus
  // the optional attached tracer, fanned out through sinks_.
  Tracer flight_{kFlightRecorderCapacity};
  TraceSinks sinks_;
  ReplicaUpdateCallback on_replica_update_;
  // Update-journey hop sink (core/journey.h); null when no tracker is
  // attached. Atomic so protocol threads read it lock-free.
  std::atomic<JourneySink*> journey_sink_{nullptr};

  // The attached HttpAdminServer, type-erased so this header stays free of
  // obs dependencies. Must be destroyed before the rest of the site (its
  // handlers capture `this`) — ~Site resets it first.
  std::shared_ptr<void> admin_;
  std::string admin_address_;
};

}  // namespace obiwan::core
