// ObjectTable: the lock-striped sharded object table behind a Site.
//
// Until PR 8 every Site table (masters_, replicas_, ptr_ids_) was a
// node-allocated unordered_map behind one recursive TrackedMutex{"site"} —
// the serialization bench_contention measures and the ROADMAP names as "the
// unlock for every other scale item". This container replaces those three
// maps with:
//
//   - N = 64 shards keyed by ObjectIdHash, each behind its own
//     TrackedMutex{"site.shard"} (one shared telemetry family, so the PR 7
//     contention observatory measures the split without blowing up metric
//     cardinality);
//   - flat master/replica records stored in per-shard deque arenas with
//     free lists — stable addresses, stable indices, prefetch-friendly
//     iteration, no per-record heap node;
//   - a striped pointer-identity map (Shareable* -> ObjectId) behind leaf
//     TrackedMutex{"site.ptr"} stripes, kept symmetric with the record
//     arenas *by construction*: EmplaceMaster/EmplaceReplica insert the
//     pointer entry, EraseMaster/EraseReplica remove it, and debug builds
//     can assert the symmetry with CheckConsistency(). (The old Site only
//     erased ptr_ids_ on the replica-eviction path, so a recycled heap
//     address could alias a dead object's id.)
//   - a per-shard holder index (holder address -> object ids it holds), so
//     dropping an unreachable holder is O(objects it holds) instead of the
//     old O(all objects) sweep.
//
// Lock order (see DESIGN.md "Object table"):
//   1. shard mutexes, always in ascending shard order (BatchGuard sorts;
//      WorldGuard takes all of them);
//   2. then at most one leaf lock: a ptr stripe, the site pins mutex, or
//      the site mutex. Leaf locks never nest inside each other and no
//      shard lock is ever acquired while a leaf lock is held.
//
// WorldGuard (all shards + all stripes) replaces the old recursive-mutex
// semantics for whole-table operations (snapshot, Inspect, eviction,
// WithSiteLock): while a thread owns the world, every ShardGuard /
// BatchGuard / stripe guard it takes is a no-op, so site code can call
// straight through helpers that normally lock.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/clock.h"
#include "common/contention.h"
#include "common/ids.h"
#include "core/proxy.h"
#include "core/shareable.h"
#include "net/transport.h"

namespace obiwan::core {

// Flat per-object records (previously Site::MasterEntry / ReplicaEntry).
// Stored by value in the shard arenas; addresses are stable for the record's
// lifetime, and every field is guarded by the owning shard's mutex.
struct MasterEntry {
  std::shared_ptr<Shareable> obj;
  std::uint64_t version = 1;
  Bytes policy_state;
  std::vector<net::Address> holders;
  // Introspection: when the master last accepted an update (site clock;
  // creation time until the first put) and how often it was served.
  Nanos last_update = 0;
  std::uint64_t gets_served = 0;
  std::uint64_t puts_accepted = 0;
};

struct ReplicaEntry {
  std::shared_ptr<Shareable> obj;
  std::uint64_t version = 0;
  Bytes policy_state;
  ProxyDescriptor provider;  // per-object channel, or the cluster channel
  bool in_cluster = false;
  bool stale = false;  // write-invalidate marked this replica out of date
  // Re-exporting makes this site a provider for the replica; track the
  // downstream holders just like a master's.
  std::vector<net::Address> holders;
  // Introspection: the highest master version this site has heard of (via
  // gets, put acks and versioned invalidations), when this replica last
  // synchronised with its master (site clock), and its sync/put traffic.
  std::uint64_t known_master_version = 0;
  Nanos last_sync = 0;
  std::uint64_t sync_count = 0;
  std::uint64_t put_count = 0;
};

class ObjectTable {
 public:
  static constexpr std::size_t kShardCount = 64;
  static constexpr std::size_t kPtrStripeCount = 64;

  ObjectTable();
  ~ObjectTable();

  ObjectTable(const ObjectTable&) = delete;
  ObjectTable& operator=(const ObjectTable&) = delete;

  std::size_t ShardOf(ObjectId id) const {
    return ObjectIdHash{}(id) & (kShardCount - 1);
  }

  // --- locking ---------------------------------------------------------------

  // One shard. No-op when the calling thread owns the world.
  class ShardGuard {
   public:
    ShardGuard(const ObjectTable& table, ObjectId id)
        : ShardGuard(table, table.ShardOf(id)) {}
    ShardGuard(const ObjectTable& table, std::size_t shard);
    ~ShardGuard();
    ShardGuard(const ShardGuard&) = delete;
    ShardGuard& operator=(const ShardGuard&) = delete;

   private:
    const ObjectTable& table_;
    std::size_t shard_;
    bool locked_;
  };

  // The distinct shards of a batch of ids, locked in ascending shard order.
  // No-op when the calling thread owns the world.
  class BatchGuard {
   public:
    BatchGuard(const ObjectTable& table, const std::vector<ObjectId>& ids);
    ~BatchGuard();
    BatchGuard(const BatchGuard&) = delete;
    BatchGuard& operator=(const BatchGuard&) = delete;

   private:
    const ObjectTable& table_;
    std::vector<std::size_t> shards_;  // sorted, deduplicated; empty if world
  };

  // Every shard (ascending) plus every pointer stripe. Reentrant: a thread
  // already owning the world just bumps a depth counter, which is what lets
  // snapshot code call helpers that take their own guards — the replacement
  // for the old recursive site mutex.
  class WorldGuard {
   public:
    explicit WorldGuard(const ObjectTable& table);
    ~WorldGuard();
    WorldGuard(const WorldGuard&) = delete;
    WorldGuard& operator=(const WorldGuard&) = delete;

   private:
    const ObjectTable& table_;
    bool owner_;  // outermost guard on this thread
  };

  bool WorldHeldByThisThread() const {
    return world_owner_.load(std::memory_order_acquire) ==
           std::this_thread::get_id();
  }

  // --- records (caller holds the covering shard guard or the world) ----------

  MasterEntry* Master(ObjectId id);
  const MasterEntry* Master(ObjectId id) const;
  ReplicaEntry* Replica(ObjectId id);
  const ReplicaEntry* Replica(ObjectId id) const;

  // The local object for `id` regardless of role, or null.
  std::shared_ptr<Shareable> Find(ObjectId id) const;

  // Insert a record. Returns the stored record and whether this call
  // inserted it (false = a record of either role already existed; the
  // existing one is returned if it has the same role, else null). Also
  // registers the object's pointer in the identity map and its holders in
  // the holder index.
  std::pair<MasterEntry*, bool> EmplaceMaster(ObjectId id, MasterEntry record);
  std::pair<ReplicaEntry*, bool> EmplaceReplica(ObjectId id, ReplicaEntry record);

  // Remove a record together with its pointer-identity entry and holder-index
  // rows — the symmetry the old ptr_ids_ map lacked on master teardown paths.
  bool EraseMaster(ObjectId id);
  bool EraseReplica(ObjectId id);

  // --- self-locking lookups (no shard guard may be held, or hold the world) --

  std::shared_ptr<Shareable> FindLocked(ObjectId id) const;
  bool Contains(ObjectId id) const;
  bool ContainsMaster(ObjectId id) const;
  bool ContainsReplica(ObjectId id) const;

  // --- pointer identity (leaf stripe locks; safe under shard guards) ---------

  // Known id for `ptr`, or the invalid id.
  ObjectId PtrId(const Shareable* ptr) const;
  // Atomically: return the existing id for `ptr`, or bind `candidate` to it
  // and return `candidate`. The caller that wins the race is responsible for
  // emplacing the matching record while still holding candidate's shard
  // guard, so observers that look the id up block until the record exists.
  ObjectId PtrIdOrInsert(const Shareable* ptr, ObjectId candidate);

  // --- holder index (caller holds the shard guard of `id` or the world) ------

  // Add/remove `addr` on the record's holders list and the shard's holder
  // index together (no-op if absent/present accordingly). Return whether the
  // membership changed.
  bool LinkHolder(ObjectId id, const net::Address& addr);
  bool UnlinkHolder(ObjectId id, const net::Address& addr);

  // Remove `addr` from every holders list, via the holder index —
  // O(objects held), not O(all objects). Locks shard by shard unless the
  // caller owns the world. Returns the number of lists it was removed from.
  std::size_t RemoveHolderEverywhere(const net::Address& addr);
  // Is `addr` on any record's holders list?
  bool HolderAnywhere(const net::Address& addr) const;

  // --- iteration -------------------------------------------------------------

  // Visit every live record. Unless the caller owns the world, each shard is
  // locked for the duration of its records' callbacks (a per-shard-consistent
  // sweep, not a global snapshot). The callback runs under the shard's guard:
  // it may use the leaf-lock helpers (PtrId) but must not take other shard
  // guards or self-locking lookups.
  void ForEachMaster(const std::function<void(ObjectId, MasterEntry&)>& fn);
  void ForEachMaster(
      const std::function<void(ObjectId, const MasterEntry&)>& fn) const;
  void ForEachReplica(const std::function<void(ObjectId, ReplicaEntry&)>& fn);
  void ForEachReplica(
      const std::function<void(ObjectId, const ReplicaEntry&)>& fn) const;

  std::size_t master_count() const {
    return master_count_.load(std::memory_order_relaxed);
  }
  std::size_t replica_count() const {
    return replica_count_.load(std::memory_order_relaxed);
  }

  // Drop everything (records, pointer map, holder index). Caller owns the
  // world or is otherwise single-threaded (snapshot-restore failure path).
  void Clear();

  // Debug invariant check (call with the world held): every live record has
  // exactly one pointer-map entry and vice versa, holder index matches the
  // holders lists, and the counts add up. Returns false on violation (and
  // asserts in debug builds at the call sites that use it).
  bool CheckConsistency() const;

 private:
  struct Slot {
    bool master = false;
    std::uint32_t index = 0;
  };

  struct Shard {
    mutable TrackedMutex mutex{"site.shard"};
    // Arena storage: records stay at a stable address for their lifetime;
    // erased slots go on the free list and are reused in place.
    std::deque<MasterEntry> masters;
    std::deque<ReplicaEntry> replicas;
    std::vector<std::uint32_t> master_free;
    std::vector<std::uint32_t> replica_free;
    std::unordered_map<ObjectId, Slot, ObjectIdHash> index;
    // Live ids per arena slot, for iteration without a map walk. Invalid id
    // marks a freed slot.
    std::vector<ObjectId> master_ids;
    std::vector<ObjectId> replica_ids;
    // holder address -> ids of records whose holders list contains it.
    std::unordered_map<net::Address,
                       std::unordered_set<ObjectId, ObjectIdHash>>
        holders_by_addr;
  };

  struct PtrStripe {
    mutable TrackedMutex mutex{"site.ptr"};
    std::unordered_map<const Shareable*, ObjectId> ids;
  };

  std::size_t StripeOf(const Shareable* ptr) const {
    return std::hash<const void*>{}(ptr) & (kPtrStripeCount - 1);
  }

  Shard& ShardFor(ObjectId id) { return shards_[ShardOf(id)]; }
  const Shard& ShardFor(ObjectId id) const { return shards_[ShardOf(id)]; }

  void ErasePtr(const Shareable* ptr, ObjectId expect);
  void LinkHolderInShard(Shard& shard, ObjectId id, const net::Address& addr);

  std::array<Shard, kShardCount> shards_;
  std::array<PtrStripe, kPtrStripeCount> stripes_;

  std::atomic<std::size_t> master_count_{0};
  std::atomic<std::size_t> replica_count_{0};

  // World ownership: the thread id that holds every shard + stripe, plus its
  // reentrancy depth. Guards consult this to no-op under the world.
  std::atomic<std::thread::id> world_owner_{};
  std::size_t world_depth_ = 0;  // touched only by the owning thread
};

}  // namespace obiwan::core
