// Update-journey hop events: the core half of the dissemination observatory.
//
// FleetMonitor measures convergence by *polling* kInspect version lag, which
// aliases anything faster than the poll period and cannot say where
// propagation time went. The journey plane measures it per update instead:
// every master put mints an UpdateId — the (object, version) pair that
// already travels in every invalidation and push body — and the replication
// paths stamp the sink below as the update moves through them:
//
//   provider side (all on the provider's clock)
//     OnPutCommit      the master version was bumped; the journey exists
//     OnNotifyEnqueue  a notification to one holder entered the fanout batch
//     OnWireSend       that notification's RPC left through the fanout pool
//     OnAckReturn      the holder's reply (or failure) came back
//   holder side (on the holder's clock)
//     OnHolderReceive  the invalidation/push arrived
//     OnReplicaApply   the replica caught up (push applied, or refresh done)
//
// The sink interface lives in core so site.cc can stamp without linking the
// obs library (the same layering rule as Site::ServeAdmin): the concrete
// tracker — obs::JourneyTracker — folds completed journeys into
// time-to-first-replica / time-to-all-holders metrics and burn-rate alerts.
//
// Threading: stamps run on protocol threads (fanout workers, transport
// dispatch), sometimes under an object-table shard guard. Implementations
// must be internally synchronized with leaf locks only and must never call
// back into Site operations.
#pragma once

#include <cstdint>

#include "common/clock.h"
#include "common/ids.h"
#include "net/transport.h"

namespace obiwan::core {

class JourneySink {
 public:
  virtual ~JourneySink() = default;

  // Provider side. `recipients` is the number of holders this update fans
  // out to (the journey completes when that many acks returned); `trace` is
  // the flow id the notify envelopes carry, linking the journey to its
  // flight-recorder spans.
  virtual void OnPutCommit(ObjectId id, std::uint64_t version, Nanos now,
                           std::size_t recipients, bool push,
                           TraceId trace) = 0;
  virtual void OnNotifyEnqueue(ObjectId id, std::uint64_t version,
                               const net::Address& holder, Nanos now) = 0;
  virtual void OnWireSend(ObjectId id, std::uint64_t version,
                          const net::Address& holder, Nanos now) = 0;
  virtual void OnAckReturn(ObjectId id, std::uint64_t version,
                           const net::Address& holder, Nanos now, bool ok) = 0;

  // Holder side. `push` distinguishes an applied push from a mark-stale
  // invalidation (whose apply hop is the later refresh).
  virtual void OnHolderReceive(ObjectId id, std::uint64_t version, Nanos now,
                               bool push) = 0;
  virtual void OnReplicaApply(ObjectId id, std::uint64_t version,
                              Nanos now) = 0;
};

}  // namespace obiwan::core
