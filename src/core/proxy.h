// ProxyOut — the demander-side stand-in for a not-yet-replicated object
// (the paper's BProxyOut, §2).
//
// A proxy-out is created when a replication batch reaches a graph boundary:
// the boundary reference is materialized as a Ref holding a ProxyOut instead
// of a local object. The first invocation through that Ref triggers the
// demand sequence of §2.2: fetch the next batch from the provider's proxy-in,
// install the replicas, patch the reference (updateMember), and let the
// original call proceed directly on the new replica. After the patch the
// proxy-out's last shared_ptr reference is dropped — the C++ equivalent of
// step 6, where the JVM's garbage collector reclaims it.
//
// The mode the original get() was issued with travels with the proxy, so a
// traversal keeps replicating in batches of the size the application chose.
#pragma once

#include <memory>

#include "common/status.h"
#include "core/messages.h"
#include "core/mode.h"

namespace obiwan::core {

class Site;
class Shareable;

class ProxyOut {
 public:
  // `site` is the demander site owning this proxy; it must outlive it.
  ProxyOut(Site* site, ProxyDescriptor descriptor, ReplicationMode mode)
      : site_(site), descriptor_(std::move(descriptor)), mode_(mode) {}

  const ObjectId& target() const { return descriptor_.target; }
  const std::string& class_name() const { return descriptor_.class_name; }
  const ProxyDescriptor& descriptor() const { return descriptor_; }
  const ReplicationMode& mode() const { return mode_; }

  // Resolve the fault: returns the local replica of target(), fetching the
  // next batch from the provider if it is not already here. Defined in
  // site.cc (needs the Site definition).
  Result<std::shared_ptr<Shareable>> Demand();

 private:
  Site* site_;
  ProxyDescriptor descriptor_;
  ReplicationMode mode_;
};

}  // namespace obiwan::core
