// CallBatch<T> — typed batched remote invocation.
//
// Queue several calls against one remote object (or several objects on one
// provider), execute them in a single round trip, then read the typed
// results back:
//
//   core::CallBatch<Agenda> batch(site, remote);
//   auto a = batch.Add(&Agenda::Touch);
//   auto b = batch.Add(&Agenda::Label);
//   if (batch.Execute().ok()) {
//     auto touched = batch.Get<std::int64_t>(a);
//     auto label   = batch.Get<std::string>(b);
//   }
//
// On the paper's LAN a round trip costs 2.8 ms regardless of size (§4.1), so
// batching N small calls amortizes the dominant cost by N. Items fail
// independently: a bad method name yields an error at its own index only.
#pragma once

#include <any>
#include <tuple>
#include <vector>

#include "core/remote_ref.h"
#include "core/shareable.h"
#include "core/site.h"
#include "rmi/call.h"

namespace obiwan::core {

template <typename T>
class CallBatch {
 public:
  CallBatch(Site& site, const RemoteRef<T>& remote)
      : site_(site), remote_(remote) {}

  // Queue a call; returns its index for Get() after Execute().
  template <typename R, typename C, typename... Args, typename... CallArgs>
  std::size_t Add(R (C::*m)(Args...), CallArgs&&... args) {
    return AddImpl<Args...>(std::any(m), std::forward<CallArgs>(args)...);
  }
  template <typename R, typename C, typename... Args, typename... CallArgs>
  std::size_t Add(R (C::*m)(Args...) const, CallArgs&&... args) {
    return AddImpl<Args...>(std::any(m), std::forward<CallArgs>(args)...);
  }

  std::size_t size() const { return calls_.size(); }

  // One round trip for everything queued. A transport-level failure fails
  // the whole batch; per-item results are read with Get().
  Status Execute() {
    results_.clear();
    if (calls_.empty()) return Status::Ok();
    OBIWAN_ASSIGN_OR_RETURN(
        Bytes reply, site_.CallBatchRaw(remote_.provider(), calls_));
    OBIWAN_ASSIGN_OR_RETURN(results_, rmi::DecodeBatchReply(AsView(reply)));
    if (results_.size() != calls_.size()) {
      results_.clear();
      return DataLossError("batch reply item count mismatch");
    }
    calls_.clear();
    return Status::Ok();
  }

  // Typed result of call `index`. R must match the method's return type
  // (void methods: use Ok(index)).
  template <typename R>
  Result<R> Get(std::size_t index) const {
    if (index >= results_.size()) {
      return InvalidArgumentError("no result at batch index " +
                                  std::to_string(index));
    }
    const Result<Bytes>& raw = results_[index];
    if (!raw.ok()) return raw.status();
    wire::Reader r(AsView(*raw));
    R value = wire::Decode<R>(r);
    OBIWAN_RETURN_IF_ERROR(r.status());
    return value;
  }

  Status Ok(std::size_t index) const {
    if (index >= results_.size()) {
      return InvalidArgumentError("no result at batch index " +
                                  std::to_string(index));
    }
    return results_[index].status();
  }

 private:
  template <typename... Args, typename... CallArgs>
  std::size_t AddImpl(std::any pm, CallArgs&&... args) {
    rmi::CallRequest call;
    call.target = remote_.id();
    Result<std::string> name = ClassInfoFor<T>().MethodNameOf(pm);
    // An unregistered method is deferred to Execute-time per-item error via
    // an impossible method name (keeps Add() infallible and indices stable).
    call.method = name.ok() ? *name : "<unregistered-method>";
    wire::Writer w;
    wire::Encode(w, std::tuple<std::remove_cvref_t<Args>...>(
                        std::forward<CallArgs>(args)...));
    call.args = std::move(w).Take();
    calls_.push_back(std::move(call));
    return calls_.size() - 1;
  }

  Site& site_;
  RemoteRef<T> remote_;
  std::vector<rmi::CallRequest> calls_;
  std::vector<Result<Bytes>> results_;
};

}  // namespace obiwan::core
