// Ref<T>: the reference type through which shareable objects point at each
// other.
//
// A Ref is the C++ face of the paper's "reference of interface type" (§2): it
// can hold
//   - nothing (null reference),
//   - a local object — a master or an already-resolved replica, in which case
//     invocation through operator-> is a plain virtual call (LMI, §4.1), or
//   - a proxy-out standing in for an object that is not yet replicated here.
//
// Invoking through a Ref that holds a proxy-out is an *object fault* (§2.2):
// the proxy demands the next batch from its provider, the Ref is patched to
// point directly at the new replica (the paper's updateMember step), the
// proxy-out loses its last reference and dies (step 6), and the original call
// proceeds — all transparently inside operator->.
#pragma once

#include <cassert>
#include <memory>
#include <stdexcept>
#include <utility>

#include "common/ids.h"
#include "common/status.h"

namespace obiwan::core {

class Shareable;
class ProxyOut;

// Thrown by Ref<T>::operator-> when an object fault cannot be resolved (for
// example, the provider is disconnected). This is the only exception in the
// public API: a dereference has no status-return channel, and touching a
// non-colocated object while offline is precisely the "exceptional" situation
// the paper's programming model asks applications to plan around.
class ObjectFaultError : public std::runtime_error {
 public:
  explicit ObjectFaultError(Status status)
      : std::runtime_error("object fault failed: " + status.ToString()),
        status_(std::move(status)) {}

  const Status& status() const { return status_; }

 private:
  Status status_;
};

// Type-erased part of Ref<T>. The class registry stores accessors returning
// RefBase& so the replication engine can traverse and swizzle reference
// fields without knowing their static type.
class RefBase {
 public:
  RefBase() = default;

  bool IsEmpty() const { return local_ == nullptr && proxy_ == nullptr; }
  bool IsLocal() const { return local_ != nullptr; }
  bool IsProxy() const { return proxy_ != nullptr; }

  // Identity of the target master. Valid in proxy state and in local state
  // once the target has been exported/replicated; invalid for a local object
  // the owning site has not yet assigned an id to.
  const ObjectId& id() const { return id_; }

  Shareable* local_raw() const { return local_.get(); }
  const std::shared_ptr<Shareable>& local() const { return local_; }
  const std::shared_ptr<ProxyOut>& proxy() const { return proxy_; }

  void BindLocal(ObjectId id, std::shared_ptr<Shareable> obj) {
    id_ = id;
    local_ = std::move(obj);
    proxy_.reset();
  }

  // Defined in ref.cc (needs the ProxyOut definition).
  void BindProxy(std::shared_ptr<ProxyOut> proxy);

  void Reset() {
    id_ = {};
    local_.reset();
    proxy_.reset();
  }

  // Resolve an object fault now: if this ref holds a proxy-out, demand the
  // replica and swizzle to it. No-op when already local; error when empty or
  // when the demand fails. Applications use this to *pre*-fault (e.g. before
  // going offline); operator-> calls it implicitly.
  Status Demand();

  // The site's id assignment path updates refs in place.
  void set_id(ObjectId id) { id_ = id; }

 protected:
  ObjectId id_{};
  std::shared_ptr<Shareable> local_;
  std::shared_ptr<ProxyOut> proxy_;
};

template <typename T>
class Ref : public RefBase {
 public:
  Ref() = default;

  // A Ref is constructible straight from a local object so graph-building
  // code reads naturally: `node->next = std::make_shared<Node>();`
  Ref(std::shared_ptr<T> obj) {  // NOLINT(google-explicit-constructor)
    BindLocal({}, std::move(obj));
  }

  // Local pointer if resolved, nullptr otherwise. Never faults.
  T* get() const { return static_cast<T*>(local_.get()); }

  // Invocation entry point: resolves an object fault if needed.
  T* operator->() {
    Status s = Demand();
    if (!s.ok()) throw ObjectFaultError(std::move(s));
    return static_cast<T*>(local_.get());
  }

  T& operator*() { return *operator->(); }

  explicit operator bool() const { return !IsEmpty(); }
};

}  // namespace obiwan::core
