#include "core/fanout.h"

#include <algorithm>
#include <thread>

namespace obiwan::core {

FanoutPool::FanoutPool(Clock& clock, std::size_t width)
    : clock_(clock), width_(width == 0 ? 1 : width) {}

void FanoutPool::set_width(std::size_t width) {
  width_.store(width == 0 ? 1 : width, std::memory_order_relaxed);
}

std::vector<Status> FanoutPool::RunAll(std::vector<Task> tasks) {
  std::vector<Status> results(tasks.size());
  if (tasks.empty()) return results;

  const std::size_t width = this->width();
  if (tasks.size() == 1 || width == 1) {
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      in_flight_.fetch_add(1, std::memory_order_relaxed);
      results[i] = tasks[i]();
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
    }
    return results;
  }

  // Genuine batch: serialize on the tracked mutex so the width bound holds
  // pool-wide and writer-vs-writer fanout queueing shows up in the lock's
  // wait histogram.
  std::lock_guard batch(batch_mutex_);

  if (clock_.Jumpable()) {
    // Modeled parallelism: one availability instant per virtual worker.
    // Each task starts at the earliest-free worker's instant and pushes
    // that worker's availability to its own finish time; the batch as a
    // whole ends at the latest finish (the makespan).
    const Nanos start = clock_.Now();
    std::vector<Nanos> avail(std::min(width, tasks.size()), start);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      auto it = std::min_element(avail.begin(), avail.end());
      clock_.JumpTo(*it);
      in_flight_.fetch_add(1, std::memory_order_relaxed);
      results[i] = tasks[i]();
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
      *it = clock_.Now();
    }
    clock_.JumpTo(*std::max_element(avail.begin(), avail.end()));
    return results;
  }

  // Real clock: bounded burst of threads, caller included.
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks.size()) return;
      in_flight_.fetch_add(1, std::memory_order_relaxed);
      results[i] = tasks[i]();
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
    }
  };
  const std::size_t spawned = std::min(width, tasks.size()) - 1;
  std::vector<std::thread> threads;
  threads.reserve(spawned);
  for (std::size_t i = 0; i < spawned; ++i) threads.emplace_back(worker);
  worker();
  for (auto& t : threads) t.join();
  return results;
}

}  // namespace obiwan::core
