// Shareable objects and the class registry — the obicomp substitute.
//
// The Java prototype ran the obicomp tool over each application class to
// generate (a) serialization, (b) the proxy classes, and (c) the RMI
// stub/skeleton dispatch (paper §3.1, Figure 3). C++ has no reflection, so a
// shareable class declares the same information once, in code:
//
//   class Entry : public obiwan::core::Shareable {
//    public:
//     OBIWAN_SHAREABLE(Entry)
//     std::string text;
//     obiwan::core::Ref<Entry> next;
//
//     std::string Text() const { return text; }
//     void SetText(std::string t) { text = std::move(t); }
//
//     static void ObiwanDefine(obiwan::core::ClassDef<Entry>& def) {
//       def.Field("text", &Entry::text)
//          .Ref("next", &Entry::next)
//          .Method("Text", &Entry::Text)
//          .Method("SetText", &Entry::SetText);
//     }
//   };
//   OBIWAN_REGISTER_CLASS(Entry);   // once, at namespace scope in a .cc
//
// From this single declaration the platform derives everything obicomp
// generated: field serialization, reference-graph traversal for incremental
// replication, and the remote-invocation skeleton. Value fields must be
// wire-codable; methods must take wire-codable parameters and return void or
// a wire-codable value. Classes must be default-constructible (replica
// instantiation, like Java serialization's no-arg path).
#pragma once

#include <any>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <tuple>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "core/ref.h"
#include "wire/codec.h"

namespace obiwan::core {

class ClassInfo;

// Base class of every object OBIWAN can replicate or invoke remotely.
class Shareable {
 public:
  virtual ~Shareable() = default;
  virtual const ClassInfo& obiwan_class() const = 0;
};

struct FieldInfo {
  std::string name;
  std::function<void(const Shareable&, wire::Writer&)> encode;
  std::function<void(Shareable&, wire::Reader&)> decode;
};

struct RefFieldInfo {
  std::string name;
  std::function<RefBase&(Shareable&)> get;
  std::function<const RefBase&(const Shareable&)> get_const;
};

struct MethodInfo {
  std::string name;
  // Skeleton: decode the argument tuple, invoke, encode the return value.
  std::function<Result<Bytes>(Shareable&, wire::Reader&)> dispatch;
  // Typed-stub support: does `pm` hold the member pointer registered here?
  std::function<bool(const std::any&)> matches;
};

// Immutable description of a registered class; one per class per process.
class ClassInfo {
 public:
  ClassInfo(std::string name, std::function<std::shared_ptr<Shareable>()> factory,
            std::vector<FieldInfo> fields, std::vector<RefFieldInfo> refs,
            std::vector<MethodInfo> methods)
      : name_(std::move(name)),
        factory_(std::move(factory)),
        fields_(std::move(fields)),
        refs_(std::move(refs)),
        methods_(std::move(methods)) {}

  const std::string& name() const { return name_; }
  const std::vector<FieldInfo>& fields() const { return fields_; }
  const std::vector<RefFieldInfo>& refs() const { return refs_; }
  const std::vector<MethodInfo>& methods() const { return methods_; }

  std::shared_ptr<Shareable> NewInstance() const { return factory_(); }

  void EncodeFields(const Shareable& obj, wire::Writer& w) const {
    for (const FieldInfo& f : fields_) f.encode(obj, w);
  }

  Status DecodeFields(Shareable& obj, wire::Reader& r) const {
    for (const FieldInfo& f : fields_) {
      f.decode(obj, r);
      if (!r.ok()) return r.status();
    }
    return Status::Ok();
  }

  const MethodInfo* FindMethod(std::string_view name) const {
    for (const MethodInfo& m : methods_) {
      if (m.name == name) return &m;
    }
    return nullptr;
  }

  // Reverse lookup used by typed stubs: member pointer -> registered name.
  Result<std::string> MethodNameOf(const std::any& pm) const {
    for (const MethodInfo& m : methods_) {
      if (m.matches(pm)) return m.name;
    }
    return NotFoundError("method not registered on class " + name_);
  }

 private:
  std::string name_;
  std::function<std::shared_ptr<Shareable>()> factory_;
  std::vector<FieldInfo> fields_;
  std::vector<RefFieldInfo> refs_;
  std::vector<MethodInfo> methods_;
};

namespace internal {

template <typename R, typename C, typename... Args>
MethodInfo MakeMethodInfo(std::string name, R (C::*m)(Args...)) {
  static_assert((wire::WireCodable<std::remove_cvref_t<Args>> && ...),
                "every remote-method parameter must be wire-codable");
  static_assert(std::is_void_v<R> || wire::WireCodable<std::remove_cvref_t<R>>,
                "a remote-method return type must be void or wire-codable");
  MethodInfo info;
  info.name = std::move(name);
  info.dispatch = [m](Shareable& obj, wire::Reader& args) -> Result<Bytes> {
    auto tuple = wire::Decode<std::tuple<std::remove_cvref_t<Args>...>>(args);
    if (!args.ok()) return args.status();
    C& self = static_cast<C&>(obj);
    wire::Writer ret;
    if constexpr (std::is_void_v<R>) {
      std::apply([&](auto&&... a) { (self.*m)(std::move(a)...); }, std::move(tuple));
    } else {
      wire::Encode(ret, std::apply([&](auto&&... a) { return (self.*m)(std::move(a)...); },
                                   std::move(tuple)));
    }
    return std::move(ret).Take();
  };
  info.matches = [m](const std::any& pm) {
    const auto* p = std::any_cast<R (C::*)(Args...)>(&pm);
    return p != nullptr && *p == m;
  };
  return info;
}

template <typename R, typename C, typename... Args>
MethodInfo MakeMethodInfo(std::string name, R (C::*m)(Args...) const) {
  static_assert((wire::WireCodable<std::remove_cvref_t<Args>> && ...),
                "every remote-method parameter must be wire-codable");
  static_assert(std::is_void_v<R> || wire::WireCodable<std::remove_cvref_t<R>>,
                "a remote-method return type must be void or wire-codable");
  MethodInfo info;
  info.name = std::move(name);
  info.dispatch = [m](Shareable& obj, wire::Reader& args) -> Result<Bytes> {
    auto tuple = wire::Decode<std::tuple<std::remove_cvref_t<Args>...>>(args);
    if (!args.ok()) return args.status();
    const C& self = static_cast<const C&>(obj);
    wire::Writer ret;
    if constexpr (std::is_void_v<R>) {
      std::apply([&](auto&&... a) { (self.*m)(std::move(a)...); }, std::move(tuple));
    } else {
      wire::Encode(ret, std::apply([&](auto&&... a) { return (self.*m)(std::move(a)...); },
                                   std::move(tuple)));
    }
    return std::move(ret).Take();
  };
  info.matches = [m](const std::any& pm) {
    const auto* p = std::any_cast<R (C::*)(Args...) const>(&pm);
    return p != nullptr && *p == m;
  };
  return info;
}

}  // namespace internal

// Fluent builder handed to T::ObiwanDefine.
template <typename T>
class ClassDef {
 public:
  explicit ClassDef(std::string name) : name_(std::move(name)) {
    static_assert(std::is_base_of_v<Shareable, T>,
                  "shareable classes must derive from obiwan::core::Shareable");
    static_assert(std::is_default_constructible_v<T>,
                  "shareable classes must be default-constructible");
  }

  template <typename M>
    requires wire::WireCodable<M>
  ClassDef& Field(std::string name, M T::*ptr) {
    FieldInfo f;
    f.name = std::move(name);
    f.encode = [ptr](const Shareable& obj, wire::Writer& w) {
      wire::Encode(w, static_cast<const T&>(obj).*ptr);
    };
    f.decode = [ptr](Shareable& obj, wire::Reader& r) {
      static_cast<T&>(obj).*ptr = wire::Decode<M>(r);
    };
    fields_.push_back(std::move(f));
    return *this;
  }

  template <typename U>
  ClassDef& Ref(std::string name, core::Ref<U> T::*ptr) {
    RefFieldInfo f;
    f.name = std::move(name);
    f.get = [ptr](Shareable& obj) -> RefBase& { return static_cast<T&>(obj).*ptr; };
    f.get_const = [ptr](const Shareable& obj) -> const RefBase& {
      return static_cast<const T&>(obj).*ptr;
    };
    refs_.push_back(std::move(f));
    return *this;
  }

  template <typename R, typename C, typename... Args>
  ClassDef& Method(std::string name, R (C::*m)(Args...)) {
    static_assert(std::is_base_of_v<C, T>);
    methods_.push_back(internal::MakeMethodInfo(std::move(name), m));
    return *this;
  }

  template <typename R, typename C, typename... Args>
  ClassDef& Method(std::string name, R (C::*m)(Args...) const) {
    static_assert(std::is_base_of_v<C, T>);
    methods_.push_back(internal::MakeMethodInfo(std::move(name), m));
    return *this;
  }

  ClassInfo Build() && {
    return ClassInfo(
        std::move(name_), [] { return std::make_shared<T>(); }, std::move(fields_),
        std::move(refs_), std::move(methods_));
  }

 private:
  std::string name_;
  std::vector<FieldInfo> fields_;
  std::vector<RefFieldInfo> refs_;
  std::vector<MethodInfo> methods_;
};

template <typename T>
const ClassInfo& ClassInfoFor() {
  static const ClassInfo info = [] {
    ClassDef<T> def{std::string(T::kObiwanClassName)};
    T::ObiwanDefine(def);
    return std::move(def).Build();
  }();
  return info;
}

// Process-wide name -> ClassInfo table; the demander side of replication uses
// it to instantiate replicas from wire records.
class ClassRegistry {
 public:
  static ClassRegistry& Instance() {
    static ClassRegistry registry;
    return registry;
  }

  void Register(const ClassInfo* info) {
    std::lock_guard lock(mutex_);
    classes_[info->name()] = info;
  }

  Result<const ClassInfo*> Find(std::string_view name) const {
    std::lock_guard lock(mutex_);
    auto it = classes_.find(std::string(name));
    if (it == classes_.end()) {
      return NotFoundError("class not registered: " + std::string(name));
    }
    return it->second;
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, const ClassInfo*> classes_;
};

template <typename T>
struct ClassRegistrar {
  ClassRegistrar() { ClassRegistry::Instance().Register(&ClassInfoFor<T>()); }
};

}  // namespace obiwan::core

// Inside the class body: declares the class name and wires obiwan_class().
#define OBIWAN_SHAREABLE(ClassName)                                      \
 public:                                                                 \
  static constexpr std::string_view kObiwanClassName = #ClassName;       \
  const ::obiwan::core::ClassInfo& obiwan_class() const override {       \
    return ::obiwan::core::ClassInfoFor<ClassName>();                    \
  }

#define OBIWAN_INTERNAL_CONCAT2(a, b) a##b
#define OBIWAN_INTERNAL_CONCAT(a, b) OBIWAN_INTERNAL_CONCAT2(a, b)

// At namespace scope, once per class per binary: makes the class findable by
// name when replicas arrive over the wire.
#define OBIWAN_REGISTER_CLASS(...)                                 \
  static const ::obiwan::core::ClassRegistrar<__VA_ARGS__>         \
      OBIWAN_INTERNAL_CONCAT(obiwan_class_registrar_, __COUNTER__) {}
