// RemoteRef<T> — the typed remote handle (the paper's reference of type
// Remote<I> through AProxyIn).
//
// Holding a RemoteRef, an application can — at any time, §2.1 — choose
// between the two invocation mechanisms the paper contrasts:
//
//   remote.Invoke(&Agenda::Add, entry)          // RMI on the master
//   auto ref = remote.Replicate(mode);          // bring a replica here ...
//   ref->Add(entry);                            // ... then LMI
//
// Both stay available simultaneously: replicating does not invalidate the
// remote handle, and the master and the replica "can be freely invoked"; it
// is the programmer (or the user) who decides which is best.
#pragma once

#include <any>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>

#include "core/ref.h"
#include "core/remote_ref_fwd.h"
#include "core/shareable.h"
#include "core/site.h"
#include "rmi/registry.h"

namespace obiwan::core {

template <typename T>
class RemoteRef {
 public:
  RemoteRef() = default;
  RemoteRef(Site* site, rmi::BoundObject info)
      : site_(site), info_(std::move(info)) {}

  bool valid() const { return site_ != nullptr && info_.id.valid(); }
  const ObjectId& id() const { return info_.id; }
  const net::Address& provider() const { return info_.address; }
  const rmi::BoundObject& info() const { return info_; }

  // Remote method invocation. `m` must be registered in T's ObiwanDefine
  // block; arguments are marshalled with the wire codecs. Returns Status for
  // void methods, Result<R> otherwise.
  template <typename R, typename C, typename... Args, typename... CallArgs>
  auto Invoke(R (C::*m)(Args...), CallArgs&&... call_args) const
      -> std::conditional_t<std::is_void_v<R>, Status, Result<R>> {
    static_assert(std::is_base_of_v<C, T>);
    return InvokeImpl<R, Args...>(std::any(m), std::forward<CallArgs>(call_args)...);
  }

  template <typename R, typename C, typename... Args, typename... CallArgs>
  auto Invoke(R (C::*m)(Args...) const, CallArgs&&... call_args) const
      -> std::conditional_t<std::is_void_v<R>, Status, Result<R>> {
    static_assert(std::is_base_of_v<C, T>);
    return InvokeImpl<R, Args...>(std::any(m), std::forward<CallArgs>(call_args)...);
  }

  // Replicate the target graph to the local site (the paper's
  // AProxyIn.get(mode)) and return a local reference to it.
  Result<Ref<T>> Replicate(ReplicationMode mode) const {
    if (!valid()) return FailedPreconditionError("invalid remote reference");
    ProxyDescriptor descriptor{info_.pin, info_.address, info_.id, info_.class_name};
    OBIWAN_ASSIGN_OR_RETURN(
        std::shared_ptr<Shareable> obj,
        site_->DemandThrough(descriptor, info_.id, mode, /*refresh=*/false,
                             /*shortcut_local=*/false));
    Ref<T> ref;
    ref.BindLocal(info_.id, std::move(obj));
    return ref;
  }

 private:
  template <typename R, typename... Args, typename... CallArgs>
  auto InvokeImpl(std::any pm, CallArgs&&... call_args) const
      -> std::conditional_t<std::is_void_v<R>, Status, Result<R>> {
    using Ret = std::conditional_t<std::is_void_v<R>, Status, Result<R>>;
    if (!valid()) return Ret(FailedPreconditionError("invalid remote reference"));

    Result<std::string> name = ClassInfoFor<T>().MethodNameOf(pm);
    if (!name.ok()) return Ret(name.status());

    wire::Writer args;
    wire::Encode(args, std::tuple<std::remove_cvref_t<Args>...>(
                           std::forward<CallArgs>(call_args)...));
    Result<Bytes> raw =
        site_->CallRaw(info_.address, info_.id, *name, std::move(args).Take());
    if constexpr (std::is_void_v<R>) {
      return raw.status();
    } else {
      if (!raw.ok()) return raw.status();
      wire::Reader r(AsView(*raw));
      R value = wire::Decode<R>(r);
      if (!r.ok()) return r.status();
      return value;
    }
  }

  Site* site_ = nullptr;
  rmi::BoundObject info_;
};

// Out-of-line definition of the Site template declared in site.h.
template <typename T>
Result<RemoteRef<T>> Site::Lookup(const std::string& name) {
  if (!registry_client_) {
    return FailedPreconditionError("no registry configured (UseRegistry/HostRegistry)");
  }
  OBIWAN_ASSIGN_OR_RETURN(rmi::BoundObject bo, registry_client_->Lookup(name));
  return RemoteRef<T>(this, std::move(bo));
}

}  // namespace obiwan::core
