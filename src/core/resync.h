// Reconnect resync: the demander-side half of the update fanout.
//
// The provider notifies holders when a master moves (invalidations or
// pushes, site.cc), but a device that was disconnected during the window
// only learns it is stale on reconnect — and until something re-Refreshes
// the replica, it stays stale. The paper's mobility story (§2.1) makes that
// the normal case, not the error path: ResyncDaemon watches the site's
// ReplicaUpdateCallback and stale set, and re-Refreshes stale replicas in
// the background with exponential backoff, so a reconnecting device
// converges without application code.
//
// Deterministic tests and simulations drive PumpOnce() by hand; real
// deployments call Start() for a background worker polling on
// Options::poll_interval (woken early by invalidations).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "core/site.h"

namespace obiwan::core {

class ResyncDaemon {
 public:
  struct Options {
    Nanos initial_backoff = 500 * kMilli;  // after the first failed refresh
    Nanos max_backoff = 30 * kSecond;
    Nanos poll_interval = 1 * kSecond;  // background worker idle period
  };

  // Two constructors instead of `Options options = {}`: GCC rejects a
  // default argument that needs Options' member initializers before the end
  // of the enclosing class.
  explicit ResyncDaemon(Site& site) : ResyncDaemon(site, Options{}) {}

  ResyncDaemon(Site& site, Options options) : site_(site), options_(options) {
    const MetricLabels labels{
        {"site", std::to_string(site.id())},
        {"inst", std::to_string(MetricsRegistry::NextInstance())}};
    auto& metrics = MetricsRegistry::Default();
    refreshes_ = &metrics.GetCounter("obiwan_resync_refreshes_total", labels,
                                     "Stale replicas refreshed by the resync daemon");
    failures_ = &metrics.GetCounter("obiwan_resync_failures_total", labels,
                                    "Resync refresh attempts that failed");
    pending_gauge_ = &metrics.GetGauge("obiwan_resync_pending", labels,
                                       "Stale replicas awaiting resync");
    chained_ = site_.SetReplicaUpdateCallback(
        [this](ObjectId id, bool stale) { OnReplicaUpdate(id, stale); });
  }

  ~ResyncDaemon() {
    // Detach from the site before stopping, so no notification served after
    // this point can call into a daemon that is going away.
    site_.SetReplicaUpdateCallback(std::move(chained_));
    Stop();
    pending_gauge_->Set(0);
  }

  ResyncDaemon(const ResyncDaemon&) = delete;
  ResyncDaemon& operator=(const ResyncDaemon&) = delete;

  // One deterministic sweep: merge the site's stale set (replicas that were
  // already stale when the daemon attached, or restored from a snapshot,
  // never fired the callback), refresh everything whose backoff deadline
  // has passed, and reschedule failures. Returns the number refreshed.
  std::size_t PumpOnce() {
    const Nanos now = site_.clock().Now();
    std::vector<ObjectId> due;
    {
      const std::vector<ObjectId> stale = site_.StaleReplicaIds();
      std::lock_guard lock(mutex_);
      for (ObjectId id : stale) {
        pending_.try_emplace(id, Entry{now, options_.initial_backoff});
      }
      for (const auto& [id, entry] : pending_) {
        if (entry.next_attempt <= now) due.push_back(id);
      }
    }

    std::size_t refreshed = 0;
    for (ObjectId id : due) {
      // The refresh runs without the daemon lock: it is a network round
      // trip, and its invalidation/push traffic may re-enter the callback.
      Status status = site_.RefreshReplica(id);
      std::lock_guard lock(mutex_);
      auto it = pending_.find(id);
      if (status.ok()) {
        refreshes_->Inc();
        ++refreshed;
        if (it != pending_.end()) pending_.erase(it);
      } else if (status.code() == StatusCode::kNotFound) {
        // Evicted or restored away; nothing left to converge.
        if (it != pending_.end()) pending_.erase(it);
      } else {
        failures_->Inc();
        if (it != pending_.end()) {
          it->second.next_attempt = site_.clock().Now() + it->second.backoff;
          it->second.backoff =
              std::min(it->second.backoff * 2, options_.max_backoff);
        }
      }
      pending_gauge_->Set(static_cast<std::int64_t>(pending_.size()));
    }
    return refreshed;
  }

  // Background worker for real clocks; invalidations wake it early.
  void Start() {
    {
      std::lock_guard lock(mutex_);
      if (running_) return;
      running_ = true;
    }
    worker_ = std::thread([this] { RunLoop(); });
  }

  void Stop() {
    {
      std::lock_guard lock(mutex_);
      if (!running_) return;
      running_ = false;
    }
    cv_.notify_all();
    if (worker_.joinable()) worker_.join();
  }

  std::size_t pending() const {
    std::lock_guard lock(mutex_);
    return pending_.size();
  }
  std::uint64_t refreshed_total() const { return refreshes_->Value(); }

 private:
  struct Entry {
    Nanos next_attempt = 0;
    Nanos backoff = 0;
  };

  void OnReplicaUpdate(ObjectId id, bool stale) {
    {
      std::lock_guard lock(mutex_);
      if (stale) {
        const Nanos now = site_.clock().Now();
        auto [it, inserted] =
            pending_.try_emplace(id, Entry{now, options_.initial_backoff});
        if (!inserted) {
          // A fresh invalidation means the provider is reachable again;
          // retry now instead of waiting out an old backoff.
          it->second.next_attempt = std::min(it->second.next_attempt, now);
        }
      } else {
        // A push refreshed the replica in place; nothing left to do.
        pending_.erase(id);
      }
      pending_gauge_->Set(static_cast<std::int64_t>(pending_.size()));
    }
    cv_.notify_all();
    if (chained_) chained_(id, stale);
  }

  void RunLoop() {
    std::unique_lock lock(mutex_);
    while (running_) {
      lock.unlock();
      PumpOnce();
      lock.lock();
      if (!running_) break;
      cv_.wait_for(lock, std::chrono::nanoseconds(options_.poll_interval));
    }
  }

  Site& site_;
  Options options_;
  Counter* refreshes_;
  Counter* failures_;
  Gauge* pending_gauge_;
  Site::ReplicaUpdateCallback chained_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::unordered_map<ObjectId, Entry, ObjectIdHash> pending_;
  bool running_ = false;
  std::thread worker_;
};

}  // namespace obiwan::core
