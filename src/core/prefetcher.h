// BackgroundPrefetcher — "a perfect mechanism of pre-fetching in the
// background can completely eliminate the latency" (§2.1, footnote 3).
//
// A worker thread walks object graphs behind the application's back,
// resolving proxy-outs ahead of use: the application touches object i while
// the prefetcher is already demanding i+1..i+k. On a link with real latency
// this hides the fault round trips entirely once the prefetcher is ahead.
//
// Resolving a fault swizzles reference fields inside shared objects, and
// those fields are not atomic: do not *traverse the same graph* from another
// thread while it is being prefetched. The intended pattern is
// fire-and-forget before the data is needed —
//
//     prefetcher.Prefetch(agenda);      // at connect time
//     ... unrelated work ...
//     prefetcher.Drain();               // or just start touching later
//     agenda->...                       // faults now short-circuit locally
//
// Use with real transports (loopback/TCP). On the virtual-clock simulated
// network a background thread has no latency to hide (the clock only
// advances when someone sends), so simulations model prefetching with
// Site::PrefetchAll instead.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "core/ref.h"
#include "core/site.h"

namespace obiwan::core {

class BackgroundPrefetcher {
 public:
  // `site` must outlive the prefetcher.
  explicit BackgroundPrefetcher(Site& site) : site_(site) {
    worker_ = std::thread([this] { Run(); });
  }

  ~BackgroundPrefetcher() { Stop(); }

  BackgroundPrefetcher(const BackgroundPrefetcher&) = delete;
  BackgroundPrefetcher& operator=(const BackgroundPrefetcher&) = delete;

  // Ask the worker to fault in everything reachable from `ref` (snapshot of
  // its current target; later rebinds of the application's Ref are fine).
  void Prefetch(const RefBase& ref) {
    std::lock_guard lock(mutex_);
    queue_.push_back(ref);  // copies the Ref state (shared_ptr / proxy)
    cv_.notify_one();
  }

  // Block until the queue is drained and the worker is idle.
  void Drain() {
    std::unique_lock lock(mutex_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
  }

  void Stop() {
    {
      std::lock_guard lock(mutex_);
      if (stopping_) return;
      stopping_ = true;
      cv_.notify_one();
    }
    if (worker_.joinable()) worker_.join();
  }

  std::uint64_t graphs_prefetched() const { return done_.load(); }

 private:
  void Run() {
    while (true) {
      RefBase ref;
      {
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (stopping_ && queue_.empty()) return;
        ref = queue_.front();
        queue_.pop_front();
        busy_ = true;
      }
      // Best effort: a disconnection mid-prefetch leaves the rest for the
      // application's own (status-surfacing) faults.
      (void)site_.PrefetchAll(ref);
      ++done_;
      {
        std::lock_guard lock(mutex_);
        busy_ = false;
        idle_cv_.notify_all();
      }
    }
  }

  Site& site_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<RefBase> queue_;
  bool busy_ = false;
  bool stopping_ = false;
  std::atomic<std::uint64_t> done_{0};
  std::thread worker_;
};

}  // namespace obiwan::core
