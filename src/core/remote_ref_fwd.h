#pragma once

namespace obiwan::core {

template <typename T>
class RemoteRef;

}  // namespace obiwan::core
