// Request dispatcher: one per site, routes message kinds to services.
//
// The dispatcher is also the server-side telemetry choke point: every inbound
// request is counted, timed into a per-kind latency histogram, and — when the
// envelope carries a trace header — handled under that flow's TraceId, so
// trace events and nested outbound requests made by the handler inherit the
// originating correlation id.
#pragma once

#include <array>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "net/transport.h"
#include "rmi/protocol.h"
#include "wire/reader.h"

namespace obiwan::rmi {

// A protocol plane (invocation, replication, naming) implements Service and
// claims the message kinds it understands.
class Service {
 public:
  virtual ~Service() = default;
  virtual Result<Bytes> Handle(MessageKind kind, const net::Address& from,
                               wire::Reader& body) = 0;
};

class Dispatcher final : public net::MessageHandler {
 public:
  explicit Dispatcher(MetricsRegistry& metrics = MetricsRegistry::Default()) {
    for (std::uint8_t k = 1; k <= kMaxMessageKind; ++k) {
      const auto kind = static_cast<MessageKind>(k);
      const std::string kind_label(KindName(kind));
      PerKind& pk = per_kind_[k];
      pk.requests = &metrics.GetCounter(
          "obiwan_rmi_server_requests_total", {{"kind", kind_label}},
          "Inbound requests dispatched, by message kind");
      pk.errors = &metrics.GetCounter(
          "obiwan_rmi_server_errors_total", {{"kind", kind_label}},
          "Inbound requests whose handler returned a non-ok status");
      pk.latency = &metrics.GetHistogram(
          "obiwan_rmi_server_latency_ns", {{"kind", kind_label}},
          DefaultLatencyBuckets(),
          "Handler service time per inbound request (site clock)");
    }
    malformed_ = &metrics.GetCounter(
        "obiwan_rmi_server_malformed_total", {},
        "Requests rejected before dispatch (bad envelope or unknown kind)");
    expired_ = &metrics.GetCounter(
        "obiwan_rmi_expired_total", {},
        "Requests shed before dispatch because their deadline budget was "
        "already exhausted on arrival");
  }

  // `service` must outlive the dispatcher.
  void RegisterService(MessageKind kind, Service* service) {
    services_[static_cast<std::size_t>(kind)] = service;
  }

  // Clock used to time handlers; a simulation passes its VirtualClock so
  // modelled costs (proxy export, policy work) show up in server latency.
  void SetClock(Clock* clock) { clock_ = clock; }

  // Span sinks for server-side dispatch spans (the owning site passes its
  // own, so the dispatch span lands in the site's flight recorder and any
  // attached tracer). `sinks` must outlive the dispatcher.
  void SetTrace(const TraceSinks* sinks, SiteId site) {
    sinks_ = sinks;
    site_ = site;
  }

  Result<Bytes> HandleRequest(const net::Address& from,
                              BytesView request) override {
    Result<ParsedRequest> parsed = ParseRequest(request);
    if (!parsed.ok()) {
      malformed_->Inc();
      return parsed.status();
    }
    Service* service = services_[static_cast<std::size_t>(parsed->kind)];
    if (service == nullptr) {
      malformed_->Inc();
      return UnimplementedError("no service for message kind " +
                                std::to_string(static_cast<int>(parsed->kind)));
    }
    PerKind& pk = per_kind_[static_cast<std::size_t>(parsed->kind)];
    pk.requests->Inc();
    // Load shedding: a request whose declared budget is already zero has a
    // caller that gave up — doing the work would only burn server time on a
    // reply nobody reads.
    if (parsed->deadline_budget == 0) {
      expired_->Inc();
      pk.errors->Inc();
      return TimeoutError("deadline expired before dispatch (kind " +
                          std::string(KindName(parsed->kind)) + ")");
    }
    // The envelope's flow id is installed first, so the dispatch span — and
    // every span the handler opens — records under the originating trace.
    // With in-process delivery the handler runs on the caller's thread and
    // the span parents under the caller's client span, which is exactly the
    // causal chain: client rmi → dispatch → serve → nested faults.
    TraceContext::Scope scope(parsed->trace);
    SpanScope span(sinks_, *clock_, site_, "dispatch", KindName(parsed->kind),
                   parsed->trace);
    const Nanos start = clock_->Now();
    wire::Reader body(parsed->body);
    // Identity-bearing requests declare the address the sender serves at;
    // the transport's peer address (ephemeral for TCP) is only a fallback.
    const net::Address& effective_from =
        parsed->origin.empty() ? from : parsed->origin;
    Result<Bytes> reply = service->Handle(parsed->kind, effective_from, body);
    pk.latency->Observe(clock_->Now() - start);
    if (!reply.ok()) {
      pk.errors->Inc();
      span.MarkFailed();
    }
    return reply;
  }

 private:
  struct PerKind {
    Counter* requests = nullptr;
    Counter* errors = nullptr;
    Histogram* latency = nullptr;
  };

  std::array<Service*, kMaxMessageKind + 1> services_{};
  std::array<PerKind, kMaxMessageKind + 1> per_kind_{};
  Counter* malformed_ = nullptr;
  Counter* expired_ = nullptr;
  Clock* clock_ = &SystemClock::Instance();
  const TraceSinks* sinks_ = nullptr;
  SiteId site_ = kInvalidSite;
};

}  // namespace obiwan::rmi
