// Request dispatcher: one per site, routes message kinds to services.
#pragma once

#include <array>

#include "net/transport.h"
#include "rmi/protocol.h"
#include "wire/reader.h"

namespace obiwan::rmi {

// A protocol plane (invocation, replication, naming) implements Service and
// claims the message kinds it understands.
class Service {
 public:
  virtual ~Service() = default;
  virtual Result<Bytes> Handle(MessageKind kind, const net::Address& from,
                               wire::Reader& body) = 0;
};

class Dispatcher final : public net::MessageHandler {
 public:
  // `service` must outlive the dispatcher.
  void RegisterService(MessageKind kind, Service* service) {
    services_[static_cast<std::size_t>(kind)] = service;
  }

  Result<Bytes> HandleRequest(const net::Address& from,
                              BytesView request) override {
    OBIWAN_ASSIGN_OR_RETURN(ParsedRequest parsed, ParseRequest(request));
    Service* service = services_[static_cast<std::size_t>(parsed.kind)];
    if (service == nullptr) {
      return UnimplementedError("no service for message kind " +
                                std::to_string(static_cast<int>(parsed.kind)));
    }
    wire::Reader body(parsed.body);
    return service->Handle(parsed.kind, from, body);
  }

 private:
  std::array<Service*, kMaxMessageKind + 1> services_{};
};

}  // namespace obiwan::rmi
