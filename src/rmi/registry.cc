#include "rmi/registry.h"

namespace obiwan::rmi {

void RegistryService::AttachTo(Dispatcher& dispatcher) {
  dispatcher.RegisterService(MessageKind::kBind, this);
  dispatcher.RegisterService(MessageKind::kLookup, this);
  dispatcher.RegisterService(MessageKind::kUnbind, this);
  dispatcher.RegisterService(MessageKind::kList, this);
}

Status RegistryService::BindLocal(const std::string& name, BoundObject entry,
                                  bool rebind) {
  std::lock_guard lock(mutex_);
  if (!rebind) {
    if (auto it = bindings_.find(name); it != bindings_.end()) {
      // Idempotent re-bind of the identical record succeeds: a retried Bind
      // whose first reply was lost must not surface as a failure.
      if (it->second == entry) return Status::Ok();
      return AlreadyExistsError("name already bound: " + name);
    }
  }
  bindings_[name] = std::move(entry);
  return Status::Ok();
}

Result<BoundObject> RegistryService::LookupLocal(const std::string& name) const {
  std::lock_guard lock(mutex_);
  auto it = bindings_.find(name);
  if (it == bindings_.end()) return NotFoundError("name not bound: " + name);
  return it->second;
}

Status RegistryService::UnbindLocal(const std::string& name) {
  std::lock_guard lock(mutex_);
  if (bindings_.erase(name) == 0) return NotFoundError("name not bound: " + name);
  return Status::Ok();
}

std::vector<std::string> RegistryService::ListLocal() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> names;
  names.reserve(bindings_.size());
  for (const auto& [name, entry] : bindings_) names.push_back(name);
  return names;
}

Result<Bytes> RegistryService::Handle(MessageKind kind, const net::Address&,
                                      wire::Reader& body) {
  switch (kind) {
    case MessageKind::kBind: {
      std::string name = body.String();
      bool rebind = body.Bool();
      auto entry = wire::Decode<BoundObject>(body);
      OBIWAN_RETURN_IF_ERROR(body.status());
      OBIWAN_RETURN_IF_ERROR(BindLocal(name, std::move(entry), rebind));
      return Bytes{};
    }
    case MessageKind::kLookup: {
      std::string name = body.String();
      OBIWAN_RETURN_IF_ERROR(body.status());
      OBIWAN_ASSIGN_OR_RETURN(BoundObject entry, LookupLocal(name));
      wire::Writer w;
      wire::Encode(w, entry);
      return std::move(w).Take();
    }
    case MessageKind::kUnbind: {
      std::string name = body.String();
      OBIWAN_RETURN_IF_ERROR(body.status());
      OBIWAN_RETURN_IF_ERROR(UnbindLocal(name));
      return Bytes{};
    }
    case MessageKind::kList: {
      wire::Writer w;
      wire::Encode(w, ListLocal());
      return std::move(w).Take();
    }
    default:
      return InternalError("registry got unexpected message kind");
  }
}

namespace {

Status BindImpl(net::Transport& transport, const net::Address& registry,
                const std::string& name, const BoundObject& entry, bool rebind) {
  wire::Writer body;
  body.String(name);
  body.Bool(rebind);
  wire::Encode(body, entry);
  OBIWAN_ASSIGN_OR_RETURN(
      Bytes reply, transport.Request(registry, AsView(WrapRequest(MessageKind::kBind, body))));
  (void)reply;
  return Status::Ok();
}

}  // namespace

Status RegistryClient::Bind(const std::string& name, const BoundObject& entry) {
  return BindImpl(transport_, registry_address_, name, entry, /*rebind=*/false);
}

Status RegistryClient::Rebind(const std::string& name, const BoundObject& entry) {
  return BindImpl(transport_, registry_address_, name, entry, /*rebind=*/true);
}

Result<BoundObject> RegistryClient::Lookup(const std::string& name) {
  wire::Writer body;
  body.String(name);
  OBIWAN_ASSIGN_OR_RETURN(
      Bytes reply,
      transport_.Request(registry_address_, AsView(WrapRequest(MessageKind::kLookup, body))));
  wire::Reader r(AsView(reply));
  auto entry = wire::Decode<BoundObject>(r);
  OBIWAN_RETURN_IF_ERROR(r.status());
  return entry;
}

Status RegistryClient::Unbind(const std::string& name) {
  wire::Writer body;
  body.String(name);
  OBIWAN_ASSIGN_OR_RETURN(
      Bytes reply,
      transport_.Request(registry_address_, AsView(WrapRequest(MessageKind::kUnbind, body))));
  (void)reply;
  return Status::Ok();
}

Result<std::vector<std::string>> RegistryClient::List() {
  wire::Writer body;
  OBIWAN_ASSIGN_OR_RETURN(
      Bytes reply,
      transport_.Request(registry_address_, AsView(WrapRequest(MessageKind::kList, body))));
  wire::Reader r(AsView(reply));
  auto names = wire::Decode<std::vector<std::string>>(r);
  OBIWAN_RETURN_IF_ERROR(r.status());
  return names;
}

}  // namespace obiwan::rmi
