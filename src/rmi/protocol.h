// Wire protocol envelope.
//
// Every request between sites is `kind | body`. The kinds cover the three
// planes of the paper's architecture:
//   - invocation (kCall, kPing)            — the RMI substrate (§2, §4.1)
//   - replication (kGet, kPut, kRefresh-is-a-Get-flag, kRelease, kInvalidate,
//     kCommit)                             — the OBIWAN contribution (§2.1–2.2)
//   - naming (kBind, kLookup, kUnbind, kList) — the name server (§2, Fig. 1)
// Telemetry rides in the envelope: the high bit of the kind byte marks an
// optional trace header (varint site + varint seq of the originating flow's
// TraceId) between the kind byte and the body. Requests without the flag are
// unchanged, so untraced peers interoperate.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/bytes.h"
#include "common/ids.h"
#include "common/status.h"
#include "wire/reader.h"
#include "wire/writer.h"

namespace obiwan::rmi {

enum class MessageKind : std::uint8_t {
  kCall = 1,
  kPing = 2,
  kGet = 3,
  kPut = 4,
  kRelease = 5,
  kInvalidate = 6,
  kCommit = 7,
  kBind = 8,
  kLookup = 9,
  kUnbind = 10,
  kList = 11,
  kRenew = 12,      // renew a proxy-in lease (distributed GC)
  kPush = 13,       // master pushes updated state to replica holders
  kCallBatch = 14,  // several invocations in one round trip
};

inline constexpr std::uint8_t kMaxMessageKind = 14;

// High bit of the kind byte: a trace header follows the kind.
inline constexpr std::uint8_t kTraceFlag = 0x80;

// Diagnostic name of a message kind ("call", "get", ...), for metric labels.
inline std::string_view KindName(MessageKind kind) {
  switch (kind) {
    case MessageKind::kCall: return "call";
    case MessageKind::kPing: return "ping";
    case MessageKind::kGet: return "get";
    case MessageKind::kPut: return "put";
    case MessageKind::kRelease: return "release";
    case MessageKind::kInvalidate: return "invalidate";
    case MessageKind::kCommit: return "commit";
    case MessageKind::kBind: return "bind";
    case MessageKind::kLookup: return "lookup";
    case MessageKind::kUnbind: return "unbind";
    case MessageKind::kList: return "list";
    case MessageKind::kRenew: return "renew";
    case MessageKind::kPush: return "push";
    case MessageKind::kCallBatch: return "call_batch";
  }
  return "unknown";
}

inline Bytes WrapRequest(MessageKind kind, const wire::Writer& body,
                         TraceId trace = {}) {
  wire::Writer w(body.size() + 12);
  if (trace.valid()) {
    w.U8(static_cast<std::uint8_t>(kind) | kTraceFlag);
    w.Varint(trace.site);
    w.Varint(trace.seq);
  } else {
    w.U8(static_cast<std::uint8_t>(kind));
  }
  w.Raw(AsView(body.data()));
  return std::move(w).Take();
}

struct ParsedRequest {
  MessageKind kind;
  TraceId trace;  // invalid when the request carried no trace header
  BytesView body;
};

inline Result<ParsedRequest> ParseRequest(BytesView request) {
  if (request.empty()) return DataLossError("empty request");
  const std::uint8_t first = request[0];
  const std::uint8_t kind = first & static_cast<std::uint8_t>(~kTraceFlag);
  if (kind == 0 || kind > kMaxMessageKind) {
    return DataLossError("unknown message kind " + std::to_string(first));
  }
  ParsedRequest parsed;
  parsed.kind = static_cast<MessageKind>(kind);
  BytesView rest = request.subspan(1);
  if ((first & kTraceFlag) != 0) {
    wire::Reader header(rest);
    parsed.trace.site = static_cast<SiteId>(header.Varint());
    parsed.trace.seq = header.Varint();
    OBIWAN_RETURN_IF_ERROR(header.status());
    rest = rest.subspan(rest.size() - header.remaining());
  }
  parsed.body = rest;
  return parsed;
}

}  // namespace obiwan::rmi
