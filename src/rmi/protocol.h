// Wire protocol envelope.
//
// Every request between sites is `kind | body`. The kinds cover the three
// planes of the paper's architecture:
//   - invocation (kCall, kPing)            — the RMI substrate (§2, §4.1)
//   - replication (kGet, kPut, kRefresh-is-a-Get-flag, kRelease, kInvalidate,
//     kCommit)                             — the OBIWAN contribution (§2.1–2.2)
//   - naming (kBind, kLookup, kUnbind, kList) — the name server (§2, Fig. 1)
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"
#include "wire/reader.h"
#include "wire/writer.h"

namespace obiwan::rmi {

enum class MessageKind : std::uint8_t {
  kCall = 1,
  kPing = 2,
  kGet = 3,
  kPut = 4,
  kRelease = 5,
  kInvalidate = 6,
  kCommit = 7,
  kBind = 8,
  kLookup = 9,
  kUnbind = 10,
  kList = 11,
  kRenew = 12,      // renew a proxy-in lease (distributed GC)
  kPush = 13,       // master pushes updated state to replica holders
  kCallBatch = 14,  // several invocations in one round trip
};

inline constexpr std::uint8_t kMaxMessageKind = 14;

inline Bytes WrapRequest(MessageKind kind, const wire::Writer& body) {
  wire::Writer w(body.size() + 1);
  w.U8(static_cast<std::uint8_t>(kind));
  w.Raw(AsView(body.data()));
  return std::move(w).Take();
}

struct ParsedRequest {
  MessageKind kind;
  BytesView body;
};

inline Result<ParsedRequest> ParseRequest(BytesView request) {
  if (request.empty()) return DataLossError("empty request");
  std::uint8_t kind = request[0];
  if (kind == 0 || kind > kMaxMessageKind) {
    return DataLossError("unknown message kind " + std::to_string(kind));
  }
  return ParsedRequest{static_cast<MessageKind>(kind), request.subspan(1)};
}

}  // namespace obiwan::rmi
