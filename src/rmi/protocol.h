// Wire protocol envelope.
//
// Every request between sites is `kind | body`. The kinds cover the three
// planes of the paper's architecture:
//   - invocation (kCall, kPing)            — the RMI substrate (§2, §4.1)
//   - replication (kGet, kPut, kRefresh-is-a-Get-flag, kRelease, kInvalidate,
//     kCommit)                             — the OBIWAN contribution (§2.1–2.2)
//   - naming (kBind, kLookup, kUnbind, kList) — the name server (§2, Fig. 1)
// Telemetry rides in the envelope: the high bit of the kind byte marks an
// optional trace header (varint site + varint seq of the originating flow's
// TraceId) between the kind byte and the body, and bit 0x40 marks an optional
// deadline header (varint remaining budget in nanoseconds) after the trace
// header. Requests without the flags are unchanged, so older peers
// interoperate.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/ids.h"
#include "common/status.h"
#include "wire/reader.h"
#include "wire/writer.h"

namespace obiwan::rmi {

enum class MessageKind : std::uint8_t {
  kCall = 1,
  kPing = 2,
  kGet = 3,
  kPut = 4,
  kRelease = 5,
  kInvalidate = 6,
  kCommit = 7,
  kBind = 8,
  kLookup = 9,
  kUnbind = 10,
  kList = 11,
  kRenew = 12,      // renew a proxy-in lease (distributed GC)
  kPush = 13,       // master pushes updated state to replica holders
  kCallBatch = 14,  // several invocations in one round trip
  kInspect = 15,    // pull the serving site's replication-state report
};

inline constexpr std::uint8_t kMaxMessageKind = 15;

// High bit of the kind byte: a trace header follows the kind.
inline constexpr std::uint8_t kTraceFlag = 0x80;
// Bit 0x40 of the kind byte: a deadline header (varint remaining budget,
// nanoseconds) follows the trace header (or the kind byte when untraced). The
// budget is relative — "this much time was left when the request was sent" —
// because site clocks are not synchronized; the server sheds work whose
// budget already reached zero.
inline constexpr std::uint8_t kDeadlineFlag = 0x40;
// Bit 0x20: an origin header (the sender's canonical serving address, as a
// string) follows the deadline header. Transports that multiplex requests
// over outbound connections (TCP) report an ephemeral peer address, which is
// useless as a holder identity — a provider that registered it could never
// notify the holder back. Sites therefore declare the address they serve at
// in every identity-bearing request (get / put / commit / release / renew),
// and the dispatcher hands that to the service as `from`.
inline constexpr std::uint8_t kOriginFlag = 0x20;
// The kind value lives in the low 5 bits.
inline constexpr std::uint8_t kKindMask = 0x1F;

// Diagnostic name of a message kind ("call", "get", ...), for metric labels.
inline std::string_view KindName(MessageKind kind) {
  switch (kind) {
    case MessageKind::kCall: return "call";
    case MessageKind::kPing: return "ping";
    case MessageKind::kGet: return "get";
    case MessageKind::kPut: return "put";
    case MessageKind::kRelease: return "release";
    case MessageKind::kInvalidate: return "invalidate";
    case MessageKind::kCommit: return "commit";
    case MessageKind::kBind: return "bind";
    case MessageKind::kLookup: return "lookup";
    case MessageKind::kUnbind: return "unbind";
    case MessageKind::kList: return "list";
    case MessageKind::kRenew: return "renew";
    case MessageKind::kPush: return "push";
    case MessageKind::kCallBatch: return "call_batch";
    case MessageKind::kInspect: return "inspect";
  }
  return "unknown";
}

// `deadline_budget` < 0 means no deadline header; >= 0 writes the remaining
// budget (clamped at 0: an already-expired budget is still sent so the server
// sheds the work explicitly). A non-empty `origin` writes the origin header.
inline Bytes WrapRequest(MessageKind kind, const wire::Writer& body,
                         TraceId trace = {}, Nanos deadline_budget = -1,
                         const std::string& origin = {}) {
  wire::Writer w(body.size() + 24);
  std::uint8_t first = static_cast<std::uint8_t>(kind);
  if (trace.valid()) first |= kTraceFlag;
  if (deadline_budget >= 0) first |= kDeadlineFlag;
  if (!origin.empty()) first |= kOriginFlag;
  w.U8(first);
  if (trace.valid()) {
    w.Varint(trace.site);
    w.Varint(trace.seq);
  }
  if (deadline_budget >= 0) {
    w.Varint(static_cast<std::uint64_t>(deadline_budget));
  }
  if (!origin.empty()) {
    w.String(origin);
  }
  w.Raw(AsView(body.data()));
  return std::move(w).Take();
}

struct ParsedRequest {
  MessageKind kind;
  TraceId trace;  // invalid when the request carried no trace header
  // Remaining budget (ns) declared by the caller; -1 when the request
  // carried no deadline header.
  Nanos deadline_budget = -1;
  // Sender's canonical serving address; empty when the request carried no
  // origin header (the transport-reported peer address applies then).
  std::string origin;
  BytesView body;
};

inline Result<ParsedRequest> ParseRequest(BytesView request) {
  if (request.empty()) return DataLossError("empty request");
  const std::uint8_t first = request[0];
  const std::uint8_t kind = first & kKindMask;
  if (kind == 0 || kind > kMaxMessageKind) {
    return DataLossError("unknown message kind " + std::to_string(first));
  }
  ParsedRequest parsed;
  parsed.kind = static_cast<MessageKind>(kind);
  BytesView rest = request.subspan(1);
  if ((first & (kTraceFlag | kDeadlineFlag | kOriginFlag)) != 0) {
    wire::Reader header(rest);
    if ((first & kTraceFlag) != 0) {
      parsed.trace.site = static_cast<SiteId>(header.Varint());
      parsed.trace.seq = header.Varint();
    }
    if ((first & kDeadlineFlag) != 0) {
      parsed.deadline_budget = static_cast<Nanos>(header.Varint());
    }
    if ((first & kOriginFlag) != 0) {
      parsed.origin = header.String();
    }
    OBIWAN_RETURN_IF_ERROR(header.status());
    rest = rest.subspan(rest.size() - header.remaining());
  }
  parsed.body = rest;
  return parsed;
}

}  // namespace obiwan::rmi
