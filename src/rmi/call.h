// RMI call marshalling.
//
// A remote invocation names the target master object and the method (by the
// name it was registered under — the same contract a Java RMI stub/skeleton
// pair enforces by interface), and carries the argument tuple encoded with
// the wire codecs. The reply body is the encoded return value (empty for
// void methods).
#pragma once

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/ids.h"
#include "rmi/protocol.h"
#include "wire/codec.h"

namespace obiwan::rmi {

struct CallRequest {
  ObjectId target;
  std::string method;
  Bytes args;  // encoded argument tuple
};

inline void EncodeCallBody(wire::Writer& body, const CallRequest& call) {
  wire::Encode(body, call.target);
  body.String(call.method);
  body.Blob(AsView(call.args));
}

inline Bytes EncodeCall(const CallRequest& call, TraceId trace = {},
                        Nanos deadline_budget = -1) {
  wire::Writer body;
  EncodeCallBody(body, call);
  return WrapRequest(MessageKind::kCall, body, trace, deadline_budget);
}

inline Result<CallRequest> DecodeCall(wire::Reader& body) {
  CallRequest call;
  call.target = wire::Decode<ObjectId>(body);
  call.method = body.String();
  call.args = body.Blob();
  OBIWAN_RETURN_IF_ERROR(body.status());
  return call;
}

// --- batched invocation (kCallBatch) ------------------------------------------
//
// Several calls in one round trip: on the paper's LAN every round trip costs
// 2.8 ms, so a batch of N amortizes the network to 1/N per call. Items fail
// independently — one unknown method does not poison its neighbours.

inline Bytes EncodeCallBatch(const std::vector<CallRequest>& calls,
                             TraceId trace = {}, Nanos deadline_budget = -1) {
  wire::Writer body;
  body.Varint(calls.size());
  for (const CallRequest& call : calls) {
    wire::Encode(body, call.target);
    body.String(call.method);
    body.Blob(AsView(call.args));
  }
  return WrapRequest(MessageKind::kCallBatch, body, trace, deadline_budget);
}

inline Result<std::vector<CallRequest>> DecodeCallBatch(wire::Reader& body) {
  std::uint64_t count = body.Varint();
  std::vector<CallRequest> calls;
  for (std::uint64_t i = 0; i < count && body.ok(); ++i) {
    CallRequest call;
    call.target = wire::Decode<ObjectId>(body);
    call.method = body.String();
    call.args = body.Blob();
    calls.push_back(std::move(call));
  }
  OBIWAN_RETURN_IF_ERROR(body.status());
  return calls;
}

inline Bytes EncodeBatchReply(const std::vector<Result<Bytes>>& results) {
  wire::Writer w;
  w.Varint(results.size());
  for (const Result<Bytes>& result : results) {
    w.Bool(result.ok());
    if (result.ok()) {
      w.Blob(AsView(*result));
    } else {
      w.Varint(static_cast<std::uint64_t>(result.status().code()));
      w.String(result.status().message());
    }
  }
  return std::move(w).Take();
}

inline Result<std::vector<Result<Bytes>>> DecodeBatchReply(BytesView reply) {
  wire::Reader r(reply);
  std::uint64_t count = r.Varint();
  std::vector<Result<Bytes>> results;
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    if (r.Bool()) {
      results.emplace_back(r.Blob());
    } else {
      auto code = static_cast<StatusCode>(r.Varint());
      std::string message = r.String();
      if (code == StatusCode::kOk) {
        r.Fail("batch error item with OK code");
        break;
      }
      results.emplace_back(Status(code, std::move(message)));
    }
  }
  OBIWAN_RETURN_IF_ERROR(r.status());
  return results;
}

}  // namespace obiwan::rmi
