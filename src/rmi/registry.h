// Name server (the paper's "name server" in which AProxyIn is registered).
//
// RegistryService is hosted by one site; RegistryClient is how every other
// site binds and looks up names. A bound name resolves to a BoundObject: the
// provider's address plus the master's ObjectId and the proxy-in handle
// through which replicas are demanded.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/ids.h"
#include "net/transport.h"
#include "rmi/dispatcher.h"
#include "rmi/protocol.h"
#include "wire/codec.h"

namespace obiwan::rmi {

struct BoundObject {
  net::Address address;    // site serving the master
  ObjectId id;             // master identity
  ProxyId pin;             // proxy-in to demand replicas through
  std::string class_name;  // registered class of the master

  friend bool operator==(const BoundObject&, const BoundObject&) = default;
};

}  // namespace obiwan::rmi

namespace obiwan::wire {

template <>
struct Codec<rmi::BoundObject> {
  static void Encode(Writer& w, const rmi::BoundObject& v) {
    w.String(v.address);
    wire::Encode(w, v.id);
    wire::Encode(w, v.pin);
    w.String(v.class_name);
  }
  static rmi::BoundObject Decode(Reader& r) {
    rmi::BoundObject v;
    v.address = r.String();
    v.id = wire::Decode<ObjectId>(r);
    v.pin = wire::Decode<ProxyId>(r);
    v.class_name = r.String();
    return v;
  }
};

}  // namespace obiwan::wire

namespace obiwan::rmi {

class RegistryService final : public Service {
 public:
  Result<Bytes> Handle(MessageKind kind, const net::Address& from,
                       wire::Reader& body) override;

  // Attach to a dispatcher, claiming the naming message kinds.
  void AttachTo(Dispatcher& dispatcher);

  // Local (in-process) access, used when the registry site binds its own
  // objects without a network round trip.
  Status BindLocal(const std::string& name, BoundObject entry, bool rebind);
  Result<BoundObject> LookupLocal(const std::string& name) const;
  Status UnbindLocal(const std::string& name);
  std::vector<std::string> ListLocal() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, BoundObject> bindings_;
};

class RegistryClient {
 public:
  // `transport` must outlive the client.
  RegistryClient(net::Transport& transport, net::Address registry_address)
      : transport_(transport), registry_address_(std::move(registry_address)) {}

  Status Bind(const std::string& name, const BoundObject& entry);
  // Bind that replaces an existing entry instead of failing.
  Status Rebind(const std::string& name, const BoundObject& entry);
  Result<BoundObject> Lookup(const std::string& name);
  Status Unbind(const std::string& name);
  Result<std::vector<std::string>> List();

  const net::Address& registry_address() const { return registry_address_; }

 private:
  net::Transport& transport_;
  net::Address registry_address_;
};

}  // namespace obiwan::rmi
