// Last-writer-wins consistency.
//
// Each put carries a timestamp from the writer's clock; the master remembers
// the timestamp of the last accepted write and rejects (kConflict) any write
// stamped earlier. With a shared simulation clock this gives a total order;
// with real clocks it is the usual best-effort LWW of offline-sync systems.
#pragma once

#include "core/consistency.h"

namespace obiwan::consistency {

class LastWriterWins final : public core::ConsistencyPolicy {
 public:
  std::string_view name() const override { return "last-writer-wins"; }

  Bytes MakePutData(const core::ReplicaView& replica, Clock& clock) override;
  Status ValidatePut(const core::MasterView& master,
                     const core::PutView& put) override;
  std::vector<net::Address> AfterPut(const core::MasterView& master,
                                     const core::PutView& put) override;
};

}  // namespace obiwan::consistency
