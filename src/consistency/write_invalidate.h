// Write-invalidate consistency (the classic protocol of Li & Hudak's shared
// virtual memory, cited by the paper as [13]).
//
// The master accepts a put only from a replica that is up to date
// (base_version == master version); on acceptance it invalidates every other
// replica holder. Invalidated replicas are marked stale on their sites —
// readable (LMI keeps working, possibly on old data, which is exactly the
// disconnected-operation story), but their next put will be rejected until
// they refresh.
#pragma once

#include "core/consistency.h"

namespace obiwan::consistency {

class WriteInvalidate final : public core::ConsistencyPolicy {
 public:
  std::string_view name() const override { return "write-invalidate"; }

  Status ValidatePut(const core::MasterView& master,
                     const core::PutView& put) override {
    if (put.base_version != master.version) {
      return ConflictError(
          "write-invalidate: replica of " + ToString(put.id) + " is stale "
          "(based on version " + std::to_string(put.base_version) +
          ", master at " + std::to_string(master.version) + "); refresh first");
    }
    return Status::Ok();
  }

  std::vector<net::Address> AfterPut(const core::MasterView& master,
                                     const core::PutView& put) override {
    (void)put;
    return master.holders;  // the site filters out the writer itself
  }
};

}  // namespace obiwan::consistency
