#include "consistency/lww.h"

#include "wire/reader.h"
#include "wire/writer.h"

namespace obiwan::consistency {
namespace {

std::int64_t DecodeStamp(BytesView data) {
  if (data.empty()) return 0;
  wire::Reader r(data);
  std::int64_t stamp = r.Svarint();
  return r.ok() ? stamp : 0;
}

Bytes EncodeStamp(std::int64_t stamp) {
  wire::Writer w;
  w.Svarint(stamp);
  return std::move(w).Take();
}

}  // namespace

Bytes LastWriterWins::MakePutData(const core::ReplicaView&, Clock& clock) {
  return EncodeStamp(clock.Now());
}

Status LastWriterWins::ValidatePut(const core::MasterView& master,
                                   const core::PutView& put) {
  std::int64_t last = DecodeStamp(AsView(master.policy_state));
  std::int64_t incoming = DecodeStamp(put.policy_data);
  if (incoming < last) {
    return ConflictError("last-writer-wins: write stamped " +
                         std::to_string(incoming) + " loses to " +
                         std::to_string(last));
  }
  return Status::Ok();
}

std::vector<net::Address> LastWriterWins::AfterPut(const core::MasterView& master,
                                                   const core::PutView& put) {
  master.policy_state = Bytes(put.policy_data.begin(), put.policy_data.end());
  return {};
}

}  // namespace obiwan::consistency
