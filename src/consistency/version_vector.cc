#include "consistency/version_vector.h"

#include "wire/codec.h"

namespace obiwan::consistency {

bool Dominates(const VersionVector& a, const VersionVector& b) {
  for (const auto& [site, count] : b) {
    auto it = a.find(site);
    if (it == a.end() || it->second < count) return false;
  }
  return true;
}

Bytes EncodeVersionVector(const VersionVector& vv) {
  wire::Writer w;
  wire::Encode(w, vv);
  return std::move(w).Take();
}

VersionVector DecodeVersionVector(BytesView data) {
  if (data.empty()) return {};
  wire::Reader r(data);
  VersionVector vv = wire::Decode<VersionVector>(r);
  return r.ok() ? vv : VersionVector{};
}

Bytes VersionVectorPolicy::MakePutData(const core::ReplicaView& replica, Clock&) {
  VersionVector vv = DecodeVersionVector(AsView(replica.policy_state));
  ++vv[self_];
  // The bumped vector also becomes the replica's new view if the put is
  // accepted; persist it optimistically (a rejected put is followed by a
  // refresh, which overwrites this anyway).
  replica.policy_state = EncodeVersionVector(vv);
  return replica.policy_state;
}

Status VersionVectorPolicy::ValidatePut(const core::MasterView& master,
                                        const core::PutView& put) {
  VersionVector master_vv = DecodeVersionVector(AsView(master.policy_state));
  VersionVector put_vv = DecodeVersionVector(put.policy_data);
  if (!Dominates(put_vv, master_vv)) {
    return ConflictError("version-vector: concurrent update detected on " +
                         ToString(put.id) + " (writer had not seen the latest "
                         "accepted write; refresh and retry)");
  }
  return Status::Ok();
}

std::vector<net::Address> VersionVectorPolicy::AfterPut(
    const core::MasterView& master, const core::PutView& put) {
  // Accepted: the writer's vector dominates; adopt it (element-wise max is a
  // no-op given domination, so a straight copy is equivalent).
  master.policy_state = Bytes(put.policy_data.begin(), put.policy_data.end());
  return {};
}

Bytes VersionVectorPolicy::MakeGetData(const core::MasterView& master,
                                       const net::Address&) {
  return master.policy_state;
}

void VersionVectorPolicy::OnReplicaData(const core::ReplicaView& replica,
                                        BytesView policy_data) {
  replica.policy_state = Bytes(policy_data.begin(), policy_data.end());
}

}  // namespace obiwan::consistency
