// Version-vector consistency with conflict detection.
//
// The master keeps a version vector per object; every replica receives it on
// get/refresh and returns it (bumped at its own site component) on put. A put
// is causally safe — and accepted — iff the replica's vector dominates the
// master's, i.e. the writer saw every accepted write. A put based on a stale
// replica is a genuine concurrent update and is rejected with kConflict; the
// application resolves it by refreshing and reapplying (the usual
// offline-sync loop).
#pragma once

#include <cstdint>
#include <map>

#include "core/consistency.h"

namespace obiwan::consistency {

// SiteId -> per-site write counter.
using VersionVector = std::map<SiteId, std::uint64_t>;

// a dominates b: a[k] >= b[k] for every k in b.
bool Dominates(const VersionVector& a, const VersionVector& b);

Bytes EncodeVersionVector(const VersionVector& vv);
VersionVector DecodeVersionVector(BytesView data);

class VersionVectorPolicy final : public core::ConsistencyPolicy {
 public:
  // `self` is the site id this policy instance writes as.
  explicit VersionVectorPolicy(SiteId self) : self_(self) {}

  std::string_view name() const override { return "version-vector"; }

  Bytes MakePutData(const core::ReplicaView& replica, Clock& clock) override;
  Status ValidatePut(const core::MasterView& master,
                     const core::PutView& put) override;
  std::vector<net::Address> AfterPut(const core::MasterView& master,
                                     const core::PutView& put) override;
  Bytes MakeGetData(const core::MasterView& master,
                    const net::Address& requester) override;
  void OnReplicaData(const core::ReplicaView& replica,
                     BytesView policy_data) override;

 private:
  SiteId self_;
};

}  // namespace obiwan::consistency
