// Relaxed optimistic transactions over replicas.
//
// The paper lists "relaxed transactional support" as one of the
// application-specific properties its hooks enable (§1). This layer builds it
// from the core's transactional commit primitive: a Transaction records which
// replicas were read and which were written while the application worked —
// possibly disconnected — and Commit() validates, at each provider, that
// every recorded object is still at the version this site last synchronised
// at, applying the writes atomically per provider.
//
// "Relaxed" is precise: objects mastered at different providers commit
// independently (no cross-provider two-phase commit), matching the paper's
// loosely-coupled mobile setting where a global coordinator is exactly what
// one cannot have.
#pragma once

#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "core/ref.h"
#include "core/site.h"

namespace obiwan::tx {

class Transaction {
 public:
  // `site` must outlive the transaction.
  explicit Transaction(core::Site& site) : site_(site) {}

  // Record that the transaction's outcome depends on the current state of
  // `ref` (commit fails if the master moves on underneath it).
  Status Read(const core::RefBase& ref);

  // Record that `ref`'s local modifications are part of the transaction.
  Status Write(const core::RefBase& ref);

  // Validate the read set and apply the write set (atomic per provider).
  // After a successful commit the transaction can be reused.
  Status Commit();

  // Throw away local modifications: re-fetch master state into every
  // written replica, then clear the sets.
  Status Abort();

  std::size_t read_set_size() const { return reads_.size(); }
  std::size_t write_set_size() const { return writes_.size(); }

 private:
  Status Track(const core::RefBase& ref, std::vector<ObjectId>& set);

  core::Site& site_;
  std::vector<ObjectId> reads_;
  std::vector<ObjectId> writes_;
};

}  // namespace obiwan::tx
