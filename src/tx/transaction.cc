#include "tx/transaction.h"

#include <algorithm>

namespace obiwan::tx {

Status Transaction::Track(const core::RefBase& ref, std::vector<ObjectId>& set) {
  if (!ref.IsLocal()) {
    return FailedPreconditionError(
        "transactions track resolved local replicas only");
  }
  if (!ref.id().valid()) {
    return FailedPreconditionError("object was never replicated");
  }
  // Must be a replica with a put channel; surface the problem at tracking
  // time rather than at commit.
  OBIWAN_ASSIGN_OR_RETURN(auto provider, site_.ReplicaProvider(ref.id()));
  (void)provider;
  if (std::find(set.begin(), set.end(), ref.id()) == set.end()) {
    set.push_back(ref.id());
  }
  return Status::Ok();
}

Status Transaction::Read(const core::RefBase& ref) { return Track(ref, reads_); }

Status Transaction::Write(const core::RefBase& ref) { return Track(ref, writes_); }

Status Transaction::Commit() {
  OBIWAN_RETURN_IF_ERROR(site_.CommitReplicas(reads_, writes_));
  reads_.clear();
  writes_.clear();
  return Status::Ok();
}

Status Transaction::Abort() {
  Status first_error;
  for (ObjectId oid : writes_) {
    Result<std::shared_ptr<core::Shareable>> obj = site_.FindLocal(oid);
    if (!obj.ok()) continue;
    core::RefBase ref;
    ref.BindLocal(oid, std::move(obj).value());
    Status s = site_.Refresh(ref);
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  reads_.clear();
  writes_.clear();
  return first_error;
}

}  // namespace obiwan::tx
