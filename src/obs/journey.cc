#include "obs/journey.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/trace.h"

namespace obiwan::obs {

namespace {

// Admin JSON only ever carries addresses and object/trace ids, but keep the
// output well-formed even for hostile holder names.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string TraceLabel(const TraceId& trace) {
  if (!trace.valid()) return "";
  return std::to_string(trace.site) + ":" + std::to_string(trace.seq);
}

void AppendSummary(std::ostream& os, const char* key, const Histogram& h) {
  os << "\"" << key << "\":{\"count\":" << h.Count() << ",\"p50\":" << h.P50()
     << ",\"p95\":" << h.P95() << ",\"p99\":" << h.P99()
     << ",\"max\":" << h.Max() << "}";
}

void AppendJourney(std::ostream& os, const JourneyView& j) {
  os << "{\"object\":\"" << ToString(j.id) << "\",\"version\":" << j.version
     << ",\"push\":" << (j.push ? "true" : "false") << ",\"trace\":\""
     << TraceLabel(j.trace) << "\"";
  if (j.put_commit >= 0) os << ",\"put_commit_ns\":" << j.put_commit;
  if (j.receive >= 0) os << ",\"receive_ns\":" << j.receive;
  if (j.apply >= 0) os << ",\"apply_ns\":" << j.apply;
  os << ",\"expected\":" << j.expected << ",\"acked\":" << j.acked
     << ",\"complete\":" << (j.complete ? "true" : "false");
  if (j.ttfr >= 0) os << ",\"ttfr_ns\":" << j.ttfr;
  if (j.convergence >= 0) os << ",\"convergence_ns\":" << j.convergence;
  os << ",\"hops\":[";
  for (std::size_t i = 0; i < j.hops.size(); ++i) {
    const JourneyHopView& hop = j.hops[i];
    if (i != 0) os << ',';
    os << "{\"holder\":\"" << JsonEscape(hop.holder) << "\"";
    if (hop.enqueue >= 0) os << ",\"enqueue_ns\":" << hop.enqueue;
    if (hop.send >= 0) os << ",\"send_ns\":" << hop.send;
    if (hop.ack >= 0) os << ",\"ack_ns\":" << hop.ack;
    os << ",\"acked\":" << (hop.acked ? "true" : "false") << "}";
  }
  os << "]}";
}

}  // namespace

JourneyTracker::JourneyTracker(Clock& clock, SiteId site,
                               JourneyOptions options)
    : clock_(clock), site_(site), options_(options) {
  if (options_.stripes == 0) options_.stripes = 1;
  if (options_.capacity == 0) options_.capacity = options_.stripes;
  per_stripe_ = std::max<std::size_t>(1, options_.capacity / options_.stripes);
  stripes_.reserve(options_.stripes);
  for (std::size_t i = 0; i < options_.stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }

  auto& registry = MetricsRegistry::Default();
  const MetricLabels labels{
      {"site", std::to_string(site)},
      {"inst", std::to_string(MetricsRegistry::NextInstance())}};
  minted_ = &registry.GetCounter("obiwan_update_journeys_total", labels,
                                 "Update journeys minted (master puts that "
                                 "fanned out to at least one holder)");
  completed_ = &registry.GetCounter(
      "obiwan_update_journeys_completed_total", labels,
      "Update journeys whose every recipient acked");
  ttfr_ = &registry.GetHistogram(
      "obiwan_update_ttfr_ns", labels, DefaultLatencyBuckets(),
      "Time-to-first-replica: put commit to the first holder ack");
  convergence_ = &registry.GetHistogram(
      "obiwan_update_convergence_ns", labels, DefaultLatencyBuckets(),
      "Time-to-all-holders: put commit to the last holder ack");
  // Journeys past the SLO capture an exemplar carrying the flow's TraceId —
  // the link from a fat convergence bucket to its flight-recorder spans.
  convergence_->SetExemplarThreshold(options_.slo_convergence);
  auto hop_histogram = [&](const char* hop) {
    MetricLabels hop_labels = labels;
    hop_labels.emplace_back("hop", hop);
    return &registry.GetHistogram(
        "obiwan_update_hop_ns", hop_labels, DefaultLatencyBuckets(),
        "Per-hop dissemination latency (queue = enqueue to wire send, wire = "
        "send to ack, apply = holder receive to replica apply)");
  };
  hop_queue_ = hop_histogram("queue");
  hop_wire_ = hop_histogram("wire");
  hop_apply_ = hop_histogram("apply");
  auto burn_gauge = [&](const char* window) {
    MetricLabels window_labels = labels;
    window_labels.emplace_back("window", window);
    return &registry.GetGauge(
        "obiwan_update_burn_rate_milli", window_labels,
        "Convergence-SLO burn rate x1000 ((bad/total)/budget) per window");
  };
  burn_fast_ = burn_gauge("fast");
  burn_slow_ = burn_gauge("slow");
  alert_firing_ = &registry.GetGauge(
      "obiwan_update_alert_firing", labels,
      "1 while the convergence burn-rate alert fires in both windows");
}

JourneyTracker::Stripe& JourneyTracker::StripeFor(const Key& key) const {
  return *stripes_[KeyHash{}(key) % stripes_.size()];
}

JourneyTracker::Record* JourneyTracker::FindOrCreate(Stripe& stripe,
                                                     const Key& key) {
  if (Record* found = Find(stripe, key)) return found;
  while (stripe.ring.size() >= per_stripe_) {
    const Record& oldest = stripe.ring.front();
    stripe.index.erase(Key{oldest.id, oldest.version});
    stripe.ring.pop_front();
  }
  stripe.ring.emplace_back();
  Record* record = &stripe.ring.back();
  record->id = key.id;
  record->version = key.version;
  record->seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  stripe.index[key] = record;
  return record;
}

JourneyTracker::Record* JourneyTracker::Find(Stripe& stripe, const Key& key) {
  auto it = stripe.index.find(key);
  return it == stripe.index.end() ? nullptr : it->second;
}

JourneyTracker::Hop& JourneyTracker::HopFor(Record& record,
                                            const net::Address& holder) {
  for (Hop& hop : record.hops) {
    if (hop.holder == holder) return hop;
  }
  record.hops.emplace_back();
  record.hops.back().holder = holder;
  return record.hops.back();
}

void JourneyTracker::OnPutCommit(ObjectId id, std::uint64_t version, Nanos now,
                                 std::size_t recipients, bool push,
                                 TraceId trace) {
  const Key key{id, version};
  Stripe& stripe = StripeFor(key);
  std::lock_guard lock(stripe.mutex);
  Record* record = FindOrCreate(stripe, key);
  record->push = push;
  record->trace = trace;
  record->put_commit = now;
  record->expected = recipients;
  minted_->Inc();
}

void JourneyTracker::OnNotifyEnqueue(ObjectId id, std::uint64_t version,
                                     const net::Address& holder, Nanos now) {
  const Key key{id, version};
  Stripe& stripe = StripeFor(key);
  std::lock_guard lock(stripe.mutex);
  Record* record = Find(stripe, key);
  if (record == nullptr) return;
  Hop& hop = HopFor(*record, holder);
  if (hop.enqueue < 0) hop.enqueue = now;
}

void JourneyTracker::OnWireSend(ObjectId id, std::uint64_t version,
                                const net::Address& holder, Nanos now) {
  const Key key{id, version};
  Stripe& stripe = StripeFor(key);
  std::lock_guard lock(stripe.mutex);
  Record* record = Find(stripe, key);
  if (record == nullptr) return;
  // Retries re-send: keep the latest attempt's send so the wire hop times
  // the round trip that actually delivered.
  HopFor(*record, holder).send = now;
}

void JourneyTracker::OnAckReturn(ObjectId id, std::uint64_t version,
                                 const net::Address& holder, Nanos now,
                                 bool ok) {
  const Key key{id, version};
  Stripe& stripe = StripeFor(key);
  std::lock_guard lock(stripe.mutex);
  Record* record = Find(stripe, key);
  if (record == nullptr) return;
  Hop& hop = HopFor(*record, holder);
  if (!ok || hop.acked) return;  // failures retry; count each holder once
  hop.ack = now;
  hop.acked = true;
  if (hop.enqueue >= 0 && hop.send >= hop.enqueue) {
    hop_queue_->Observe(hop.send - hop.enqueue);
  }
  if (hop.send >= 0 && now >= hop.send) hop_wire_->Observe(now - hop.send);
  ++record->acked;
  if (record->first_ack < 0) record->first_ack = now;
  record->last_ack = std::max(record->last_ack, now);
  if (!record->complete && record->expected > 0 &&
      record->acked >= record->expected && record->put_commit >= 0) {
    record->complete = true;
    record->ttfr = record->first_ack - record->put_commit;
    record->convergence = record->last_ack - record->put_commit;
    FoldCompleted(*record);
  }
}

void JourneyTracker::OnHolderReceive(ObjectId id, std::uint64_t version,
                                     Nanos now, bool push) {
  const Key key{id, version};
  Stripe& stripe = StripeFor(key);
  std::lock_guard lock(stripe.mutex);
  Record* record = FindOrCreate(stripe, key);
  record->push = push;
  if (record->receive < 0) record->receive = now;
}

void JourneyTracker::OnReplicaApply(ObjectId id, std::uint64_t version,
                                    Nanos now) {
  const Key key{id, version};
  Stripe& stripe = StripeFor(key);
  std::lock_guard lock(stripe.mutex);
  Record* record = Find(stripe, key);
  if (record == nullptr || record->receive < 0 || record->apply >= 0) return;
  record->apply = now;
  if (now >= record->receive) hop_apply_->Observe(now - record->receive);
  // A pure holder-side journey (no put here) is done once applied.
  if (record->put_commit < 0) record->complete = true;
}

void JourneyTracker::FoldCompleted(const Record& record) {
  completed_->Inc();
  ttfr_->Observe(record.ttfr);
  {
    // Observe under the journey's flow id so the histogram's tail exemplar
    // carries the TraceId that finds this journey in the flight recorder.
    TraceContext::Scope scope(record.trace);
    convergence_->Observe(record.convergence);
  }
  std::lock_guard lock(summary_mutex_);
  events_.push_back(Event{record.last_ack, record.convergence});
  while (events_.size() > options_.max_alert_events) events_.pop_front();
  slowest_.push_back(ViewOf(record));
  std::sort(slowest_.begin(), slowest_.end(),
            [](const JourneyView& a, const JourneyView& b) {
              return a.convergence > b.convergence;
            });
  if (slowest_.size() > options_.slowest_k) slowest_.resize(options_.slowest_k);
}

JourneyView JourneyTracker::ViewOf(const Record& record) {
  JourneyView view;
  view.id = record.id;
  view.version = record.version;
  view.push = record.push;
  view.trace = record.trace;
  view.put_commit = record.put_commit;
  view.receive = record.receive;
  view.apply = record.apply;
  view.expected = record.expected;
  view.acked = record.acked;
  view.complete = record.complete;
  view.ttfr = record.ttfr;
  view.convergence = record.convergence;
  view.seq = record.seq;
  view.hops.reserve(record.hops.size());
  for (const Hop& hop : record.hops) {
    view.hops.push_back(
        JourneyHopView{hop.holder, hop.enqueue, hop.send, hop.ack, hop.acked});
  }
  return view;
}

std::vector<JourneyView> JourneyTracker::Recent(std::size_t n) const {
  std::vector<JourneyView> all;
  for (const auto& stripe : stripes_) {
    std::lock_guard lock(stripe->mutex);
    for (const Record& record : stripe->ring) all.push_back(ViewOf(record));
  }
  std::sort(all.begin(), all.end(),
            [](const JourneyView& a, const JourneyView& b) {
              return a.seq > b.seq;
            });
  if (all.size() > n) all.resize(n);
  return all;
}

std::vector<JourneyView> JourneyTracker::Slowest() const {
  std::lock_guard lock(summary_mutex_);
  return slowest_;
}

void JourneyTracker::PruneEventsLocked(Nanos now) {
  const Nanos cutoff = now - options_.slow_window;
  while (!events_.empty() && events_.front().at < cutoff) events_.pop_front();
}

JourneyAlert JourneyTracker::EvaluateAlerts() {
  JourneyAlert alert;
  alert.now = clock_.Now();
  alert.slo_convergence = options_.slo_convergence;
  alert.burn_threshold = options_.burn_threshold;
  alert.fast.window = options_.fast_window;
  alert.slow.window = options_.slow_window;
  {
    std::lock_guard lock(summary_mutex_);
    PruneEventsLocked(alert.now);
    const Nanos fast_cutoff = alert.now - options_.fast_window;
    for (const Event& event : events_) {
      const bool bad = event.convergence > options_.slo_convergence;
      ++alert.slow.total;
      if (bad) ++alert.slow.bad;
      if (event.at >= fast_cutoff) {
        ++alert.fast.total;
        if (bad) ++alert.fast.bad;
      }
    }
    const double budget = options_.slo_budget > 0 ? options_.slo_budget : 1.0;
    auto burn = [budget](BurnWindow& w) {
      w.burn_rate = w.total == 0
                        ? 0.0
                        : (static_cast<double>(w.bad) /
                           static_cast<double>(w.total)) /
                              budget;
    };
    burn(alert.fast);
    burn(alert.slow);
    alert.firing = alert.fast.burn_rate >= options_.burn_threshold &&
                   alert.slow.burn_rate >= options_.burn_threshold;
    last_alert_ = alert;
  }
  burn_fast_->Set(static_cast<std::int64_t>(alert.fast.burn_rate * 1000));
  burn_slow_->Set(static_cast<std::int64_t>(alert.slow.burn_rate * 1000));
  alert_firing_->Set(alert.firing ? 1 : 0);
  return alert;
}

Nanos JourneyTracker::WindowConvergenceP99() const {
  std::vector<Nanos> window;
  const Nanos cutoff = clock_.Now() - options_.fast_window;
  {
    std::lock_guard lock(summary_mutex_);
    for (const Event& event : events_) {
      if (event.at >= cutoff) window.push_back(event.convergence);
    }
  }
  if (window.empty()) return 0;
  std::sort(window.begin(), window.end());
  const std::size_t rank = static_cast<std::size_t>(
      0.99 * static_cast<double>(window.size() - 1) + 0.5);
  return window[std::min(rank, window.size() - 1)];
}

std::string JourneyTracker::UpdatesJson(std::size_t recent) {
  std::ostringstream os;
  os << "{\"site\":" << site_ << ",\"now\":" << clock_.Now()
     << ",\"minted\":" << minted() << ",\"completed\":" << completed()
     << ",\"slo_convergence_ns\":" << options_.slo_convergence << ",";
  AppendSummary(os, "ttfr_ns", *ttfr_);
  os << ",";
  AppendSummary(os, "convergence_ns", *convergence_);
  os << ",\"hops\":{";
  AppendSummary(os, "queue", *hop_queue_);
  os << ",";
  AppendSummary(os, "wire", *hop_wire_);
  os << ",";
  AppendSummary(os, "apply", *hop_apply_);
  os << "},\"recent\":[";
  const std::vector<JourneyView> journeys = Recent(recent);
  for (std::size_t i = 0; i < journeys.size(); ++i) {
    if (i != 0) os << ',';
    AppendJourney(os, journeys[i]);
  }
  os << "],\"slowest\":[";
  const std::vector<JourneyView> slowest = Slowest();
  for (std::size_t i = 0; i < slowest.size(); ++i) {
    if (i != 0) os << ',';
    AppendJourney(os, slowest[i]);
  }
  os << "]}\n";
  return os.str();
}

std::string JourneyTracker::AlertsJson() {
  const JourneyAlert alert = EvaluateAlerts();
  std::ostringstream os;
  auto window = [&os](const char* key, const BurnWindow& w) {
    os << "\"" << key << "\":{\"window_s\":" << w.window / kSecond
       << ",\"total\":" << w.total << ",\"bad\":" << w.bad
       << ",\"burn_rate\":" << w.burn_rate << "}";
  };
  os << "{\"now\":" << alert.now << ",\"alerts\":[{"
     << "\"name\":\"update_convergence_burn\",\"state\":\""
     << (alert.firing ? "firing" : "ok")
     << "\",\"slo_convergence_ns\":" << alert.slo_convergence
     << ",\"burn_threshold\":" << alert.burn_threshold << ",";
  window("fast", alert.fast);
  os << ",";
  window("slow", alert.slow);
  os << "}]}\n";
  return os.str();
}

std::string JourneyTracker::ToText(std::size_t recent) {
  const JourneyAlert alert = EvaluateAlerts();
  std::ostringstream os;
  os << "update journeys on site " << site_ << ": minted " << minted()
     << ", completed " << completed() << "\n";
  os << "  ttfr p50/p95/p99 ns: " << ttfr_->P50() << " / " << ttfr_->P95()
     << " / " << ttfr_->P99() << "\n";
  os << "  convergence p50/p95/p99 ns: " << convergence_->P50() << " / "
     << convergence_->P95() << " / " << convergence_->P99() << "\n";
  os << "  hops p95 ns: queue " << hop_queue_->P95() << ", wire "
     << hop_wire_->P95() << ", apply " << hop_apply_->P95() << "\n";
  os << "  burn: fast " << alert.fast.burn_rate << " (" << alert.fast.bad
     << "/" << alert.fast.total << "), slow " << alert.slow.burn_rate << " ("
     << alert.slow.bad << "/" << alert.slow.total << "), threshold "
     << alert.burn_threshold << " -> "
     << (alert.firing ? "FIRING" : "ok") << "\n";
  for (const JourneyView& j : Recent(recent)) {
    os << "  " << ToString(j.id) << " v" << j.version
       << (j.push ? " push" : " invalidate") << " acked " << j.acked << "/"
       << j.expected;
    if (j.convergence >= 0) {
      os << " ttfr " << j.ttfr << " ns, converged " << j.convergence << " ns";
    } else if (j.apply >= 0 && j.receive >= 0) {
      os << " applied " << (j.apply - j.receive) << " ns after receive";
    } else if (!j.complete) {
      os << " in flight";
    }
    if (j.trace.valid()) {
      os << " trace " << j.trace.site << ":" << j.trace.seq;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace obiwan::obs
