#include "obs/profiler.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "net/tcp.h"

#ifdef __linux__
#include <dirent.h>
#include <unistd.h>
#endif

namespace obiwan::obs {

namespace {

// Depth buckets 1..32768, ×2: queue depths are small integers and the
// interesting signal is order of magnitude, not fine grain.
const std::vector<std::int64_t>& DepthBuckets() {
  static const std::vector<std::int64_t> buckets =
      ExponentialBuckets(1, 2.0, 16);
  return buckets;
}

void AppendJsonQueue(std::string& out, const QueueSample& q, bool first) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s{\"queue\":\"%s\",\"depth\":%" PRId64 "}",
                first ? "" : ",", q.queue.c_str(), q.depth);
  out += buf;
}

void AppendJsonLock(std::string& out, const LockSiteReport& l, bool first) {
  char buf[384];
  std::snprintf(
      buf, sizeof(buf),
      "%s{\"name\":\"%s\",\"acquisitions\":%" PRIu64 ",\"contended\":%" PRIu64
      ",\"wait_total_ns\":%" PRId64 ",\"hold_total_ns\":%" PRId64
      ",\"wait_max_ns\":%" PRId64 ",\"wait_p99_ns\":%.0f,\"waiters\":%" PRId64
      "}",
      first ? "" : ",", l.name.c_str(), l.acquisitions, l.contended,
      l.wait_total_ns, l.hold_total_ns, l.wait_max_ns, l.wait_p99_ns,
      l.waiters);
  out += buf;
}

}  // namespace

std::string ProfileReport::ToJson() const {
  std::string out = "{\"at\":" + std::to_string(at) + ",\"queues\":[";
  for (std::size_t i = 0; i < queues.size(); ++i) {
    AppendJsonQueue(out, queues[i], i == 0);
  }
  out += "],\"locks\":[";
  for (std::size_t i = 0; i < locks.size(); ++i) {
    AppendJsonLock(out, locks[i], i == 0);
  }
  out += "]}";
  return out;
}

std::string ProfileReport::ToText() const {
  std::string out = "queues:\n";
  for (const QueueSample& q : queues) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "  %-16s %" PRId64 "\n", q.queue.c_str(),
                  q.depth);
    out += buf;
  }
  out += LockHotnessText(locks);
  return out;
}

Profiler::Profiler(core::Site& site, ProfilerOptions options,
                   MetricsRegistry& registry)
    : site_(site), options_(std::move(options)), registry_(registry) {
  notify_retries_ = MakeSeries("notify_retries");
  stale_replicas_ = MakeSeries("stale_replicas");
  fanout_inflight_ = MakeSeries("fanout_inflight");
  if (dynamic_cast<net::TcpTransport*>(&site_.transport()) != nullptr) {
    tcp_pool_idle_ = MakeSeries("tcp_pool_idle");
    tcp_connections_ = MakeSeries("tcp_connections");
  }
  admin_http_ = MakeSeries("admin_http");
}

Profiler::~Profiler() { Stop(); }

Profiler::QueueSeries Profiler::MakeSeries(const char* queue) {
  const MetricLabels labels{{"site", std::to_string(site_.id())},
                            {"queue", queue}};
  QueueSeries series;
  series.depth = &registry_.GetGauge("obiwan_queue_depth", labels,
                                     "Last sampled queue depth");
  series.samples = &registry_.GetHistogram(
      "obiwan_queue_depth_samples", labels, DepthBuckets(),
      "Distribution of sampled queue depths");
  return series;
}

void Profiler::Record(const QueueSeries& series, const char* queue,
                      std::int64_t depth, std::vector<QueueSample>& out) {
  series.depth->Set(depth);
  series.samples->Observe(depth);
  out.push_back(QueueSample{queue, depth});
}

ProfileReport Profiler::SampleOnce() {
  ProfileReport report;
  report.at = site_.clock().Now();

  Record(notify_retries_, "notify_retries",
         static_cast<std::int64_t>(site_.pending_notify_retries()),
         report.queues);
  Record(stale_replicas_, "stale_replicas",
         static_cast<std::int64_t>(site_.StaleReplicaIds().size()),
         report.queues);
  Record(fanout_inflight_, "fanout_inflight",
         static_cast<std::int64_t>(site_.notify_inflight()), report.queues);
  if (auto* tcp = dynamic_cast<net::TcpTransport*>(&site_.transport())) {
    Record(tcp_pool_idle_, "tcp_pool_idle",
           static_cast<std::int64_t>(tcp->idle_pooled_connections()),
           report.queues);
    Record(tcp_connections_, "tcp_connections",
           static_cast<std::int64_t>(tcp->active_connections()),
           report.queues);
  }
  // Process-wide: admin connections in flight across every served site.
  Record(admin_http_, "admin_http",
         registry_.SumGauges("obiwan_admin_http_active"), report.queues);

  report.locks = LockHotness(registry_, options_.top_k_locks);

  std::lock_guard lock(mutex_);
  last_ = report;
  return report;
}

void Profiler::Start() {
  {
    std::lock_guard lock(mutex_);
    if (running_) return;
    running_ = true;
  }
  worker_ = std::thread([this] { RunLoop(); });
}

void Profiler::Stop() {
  {
    std::lock_guard lock(mutex_);
    if (!running_) return;
    running_ = false;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

ProfileReport Profiler::last() const {
  std::lock_guard lock(mutex_);
  return last_;
}

void Profiler::RunLoop() {
  std::unique_lock lock(mutex_);
  while (running_) {
    lock.unlock();
    SampleOnce();
    lock.lock();
    if (!running_) break;
    cv_.wait_for(lock, std::chrono::nanoseconds(options_.interval));
  }
}

// ---------------------------------------------------------------------------
// Process self-telemetry
// ---------------------------------------------------------------------------

void RefreshProcessGauges(MetricsRegistry& registry) {
#ifdef __linux__
  Gauge& rss = registry.GetGauge("obiwan_process_rss_bytes", {},
                                 "Resident set size of this process");
  Gauge& fds = registry.GetGauge("obiwan_process_open_fds", {},
                                 "Open file descriptors in this process");
  Gauge& threads = registry.GetGauge("obiwan_process_threads", {},
                                     "OS threads in this process");

  // RSS: /proc/self/statm field 2 (pages).
  if (std::FILE* f = std::fopen("/proc/self/statm", "r")) {
    long long size = 0, resident = 0;
    if (std::fscanf(f, "%lld %lld", &size, &resident) == 2) {
      rss.Set(static_cast<std::int64_t>(resident) * sysconf(_SC_PAGESIZE));
    }
    std::fclose(f);
  }

  // Open fds: entries in /proc/self/fd (minus ".", ".." and the dirfd the
  // scan itself holds open).
  if (DIR* dir = opendir("/proc/self/fd")) {
    std::int64_t count = 0;
    while (readdir(dir) != nullptr) ++count;
    closedir(dir);
    fds.Set(count > 3 ? count - 3 : 0);
  }

  // Threads: /proc/self/status "Threads:" line.
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      long long n = 0;
      if (std::sscanf(line, "Threads: %lld", &n) == 1) {
        threads.Set(static_cast<std::int64_t>(n));
        break;
      }
    }
    std::fclose(f);
  }
#else
  (void)registry;  // no procfs: gauges are simply absent
#endif
}

}  // namespace obiwan::obs
