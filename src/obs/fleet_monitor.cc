#include "obs/fleet_monitor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <utility>

namespace obiwan::obs {

namespace {

// Nearest-rank percentile over per-site values (p in [0,1]); 0 when empty.
template <typename T>
T NearestRank(std::vector<T> values, double p) {
  if (values.empty()) return T{};
  std::sort(values.begin(), values.end());
  auto rank = static_cast<std::size_t>(std::ceil(p * values.size()));
  if (rank == 0) rank = 1;
  if (rank > values.size()) rank = values.size();
  return values[rank - 1];
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string ToJson(const FleetReport& r) {
  std::ostringstream os;
  os << "{\"now\":" << r.now << ",\"polls\":" << r.polls
     << ",\"sites\":" << r.sites << ",\"reachable\":" << r.reachable
     << ",\"masters\":" << r.masters << ",\"replicas\":" << r.replicas
     << ",\"frontier\":" << r.frontier
     << ",\"stale_replicas\":" << r.stale_replicas
     << ",\"holders\":" << r.holders << ",\"lag_versions\":{\"p50\":"
     << r.lag_versions_p50 << ",\"p95\":" << r.lag_versions_p95
     << ",\"max\":" << r.lag_versions_max << "},\"lag_age_ns\":{\"p50\":"
     << r.lag_age_p50 << ",\"p95\":" << r.lag_age_p95
     << ",\"max\":" << r.lag_age_max << "},\"updates\":" << r.updates
     << ",\"bytes_per_update\":" << r.bytes_per_update
     << ",\"slo_breached\":" << (r.slo_breached ? "true" : "false")
     << ",\"slo_breach_seconds\":" << r.slo_breach_seconds << ",\"hottest\":[";
  for (std::size_t i = 0; i < r.hottest.size(); ++i) {
    const FleetHotObject& h = r.hottest[i];
    if (i) os << ",";
    os << "{\"id\":\"" << h.id.site << ":" << h.id.local << "\",\"class\":\""
       << JsonEscape(h.class_name) << "\",\"traffic\":" << h.traffic << "}";
  }
  os << "],\"site_samples\":[";
  for (std::size_t i = 0; i < r.site_samples.size(); ++i) {
    const FleetSiteSample& s = r.site_samples[i];
    if (i) os << ",";
    os << "{\"address\":\"" << JsonEscape(s.address) << "\",\"reachable\":"
       << (s.reachable ? "true" : "false") << ",\"site\":" << s.site
       << ",\"masters\":" << s.masters << ",\"replicas\":" << s.replicas
       << ",\"frontier\":" << s.frontier << ",\"stale\":" << s.stale
       << ",\"holders\":" << s.holders << ",\"lag_versions\":" << s.lag_versions
       << ",\"lag_age_ns\":" << s.lag_age << "}";
  }
  os << "]}";
  return os.str();
}

std::string ToText(const FleetReport& r) {
  std::ostringstream os;
  os << "fleet: " << r.reachable << "/" << r.sites << " sites reachable, poll #"
     << r.polls << "\n"
     << "  objects: " << r.masters << " masters, " << r.replicas
     << " replicas (" << r.stale_replicas << " stale), frontier " << r.frontier
     << ", holders " << r.holders << "\n"
     << "  lag: versions p50=" << r.lag_versions_p50
     << " p95=" << r.lag_versions_p95 << " max=" << r.lag_versions_max
     << " | age_ms p50=" << r.lag_age_p50 / kMilli
     << " p95=" << r.lag_age_p95 / kMilli << " max=" << r.lag_age_max / kMilli
     << "\n"
     << "  updates: " << r.updates << " total, " << r.bytes_per_update
     << " bytes/update since last poll\n"
     << "  slo: " << (r.slo_breached ? "BREACHED" : "ok") << ", burn "
     << r.slo_breach_seconds << "s total\n";
  if (!r.hottest.empty()) {
    os << "  hottest:";
    for (const FleetHotObject& h : r.hottest) {
      os << " obj(" << h.id.site << ":" << h.id.local << ")x" << h.traffic;
    }
    os << "\n";
  }
  for (const FleetSiteSample& s : r.site_samples) {
    if (s.reachable) continue;
    os << "  UNREACHABLE " << s.address << "\n";
  }
  return os.str();
}

FleetMonitor::FleetMonitor(core::Site& via, std::vector<net::Address> targets)
    : FleetMonitor(via, std::move(targets), FleetOptions{}) {}

FleetMonitor::FleetMonitor(core::Site& via, std::vector<net::Address> targets,
                           FleetOptions options)
    : via_(via), options_(options), targets_(std::move(targets)) {
  auto& registry = MetricsRegistry::Default();
  MetricLabels labels{{"inst", std::to_string(MetricsRegistry::NextInstance())}};
  auto gauge = [&](const char* name, const char* help) {
    return &registry.GetGauge(name, labels, help);
  };
  auto agg_gauge = [&](const char* name, const char* agg, const char* help) {
    MetricLabels agg_labels = labels;
    agg_labels.emplace_back("agg", agg);
    return &registry.GetGauge(name, agg_labels, help);
  };
  auto state_gauge = [&](const char* state) {
    MetricLabels state_labels = labels;
    state_labels.emplace_back("state", state);
    return &registry.GetGauge("obiwan_fleet_sites", state_labels,
                              "Polled fleet targets by reachability");
  };
  auto role_gauge = [&](const char* role) {
    MetricLabels role_labels = labels;
    role_labels.emplace_back("role", role);
    return &registry.GetGauge("obiwan_fleet_objects", role_labels,
                              "Fleet-wide object totals by role");
  };
  sites_polled_ = state_gauge("polled");
  sites_reachable_ = state_gauge("reachable");
  objects_master_ = role_gauge("master");
  objects_replica_ = role_gauge("replica");
  objects_frontier_ = role_gauge("frontier");
  stale_replicas_ = gauge("obiwan_fleet_stale_replicas",
                          "Stale (invalidated, unrefreshed) replicas fleet-wide");
  holders_ = gauge("obiwan_fleet_holders",
                   "Downstream holders registered across the fleet");
  const char* lag_help =
      "Distribution of per-site max replica lag over reachable sites";
  lag_versions_p50_ = agg_gauge("obiwan_fleet_lag_versions", "p50", lag_help);
  lag_versions_p95_ = agg_gauge("obiwan_fleet_lag_versions", "p95", lag_help);
  lag_versions_max_ = agg_gauge("obiwan_fleet_lag_versions", "max", lag_help);
  lag_age_p50_ = agg_gauge("obiwan_fleet_lag_age_ns", "p50", lag_help);
  lag_age_p95_ = agg_gauge("obiwan_fleet_lag_age_ns", "p95", lag_help);
  lag_age_max_ = agg_gauge("obiwan_fleet_lag_age_ns", "max", lag_help);
  bytes_per_update_ =
      gauge("obiwan_fleet_bytes_per_update",
            "Replica payload bytes shipped per master put, last poll interval");
  slo_breached_ = gauge("obiwan_fleet_slo_breached",
                        "1 while any site's convergence lag exceeds the SLO");
  polls_total_ = &registry.GetCounter("obiwan_fleet_polls_total", labels,
                                      "Fleet poll rounds completed");
  unreachable_polls_total_ =
      &registry.GetCounter("obiwan_fleet_unreachable_polls_total", labels,
                           "Per-target polls that failed to reach the site");
  slo_breach_seconds_total_ = &registry.GetCounter(
      "obiwan_fleet_slo_breach_seconds_total", labels,
      "Accumulated time the convergence-lag SLO was in breach");
}

FleetMonitor::~FleetMonitor() { Stop(); }

void FleetMonitor::AddTarget(net::Address target) {
  std::lock_guard lock(mutex_);
  targets_.push_back(std::move(target));
}

std::size_t FleetMonitor::target_count() const {
  std::lock_guard lock(mutex_);
  return targets_.size();
}

FleetReport FleetMonitor::PollOnce() {
  std::vector<net::Address> targets;
  {
    std::lock_guard lock(mutex_);
    targets = targets_;
  }

  // Pull every report without holding the monitor mutex — InspectRemote is a
  // real RPC with a deadline.
  std::vector<FleetSiteSample> samples;
  std::vector<core::InspectReport> reports;
  samples.reserve(targets.size());
  for (const net::Address& addr : targets) {
    FleetSiteSample sample;
    sample.address = addr;
    if (addr == via_.address()) {
      reports.push_back(via_.Inspect());
      sample.reachable = true;
    } else if (auto report = via_.InspectRemote(addr); report.ok()) {
      reports.push_back(std::move(report).value());
      sample.reachable = true;
    } else {
      unreachable_polls_total_->Inc();
    }
    samples.push_back(std::move(sample));
  }

  std::lock_guard lock(mutex_);
  return MergeLocked(std::move(samples), reports);
}

FleetReport FleetMonitor::MergeLocked(
    std::vector<FleetSiteSample> samples,
    const std::vector<core::InspectReport>& reports) {
  FleetReport out;
  out.now = via_.clock().Now();
  out.polls = ++polls_;
  out.sites = samples.size();

  std::map<std::pair<SiteId, std::uint64_t>, FleetHotObject> hot;
  std::map<std::pair<SiteId, std::uint64_t>, MasterSnapshot> masters_now;
  std::vector<std::uint64_t> lag_versions;
  std::vector<Nanos> lag_ages;

  std::size_t next_report = 0;
  for (FleetSiteSample& sample : samples) {
    if (!sample.reachable) continue;
    const core::InspectReport& report = reports[next_report++];
    sample.site = report.site;
    sample.masters = report.masters;
    sample.replicas = report.replicas;
    sample.frontier = report.frontier;
    for (const core::InspectEntry& entry : report.objects) {
      sample.holders += entry.holders;
      if (entry.master) {
        auto key = std::make_pair(entry.id.site, entry.id.local);
        FleetHotObject& h = hot[key];
        h.id = entry.id;
        h.class_name = entry.class_name;
        h.traffic += entry.faults + entry.puts;
        MasterSnapshot& snap = masters_now[key];
        snap.puts = std::max(snap.puts, entry.puts);
        snap.payload_bytes = std::max(snap.payload_bytes, entry.payload_bytes);
      } else {
        if (entry.stale) ++sample.stale;
        sample.lag_versions = std::max(sample.lag_versions,
                                       entry.staleness_versions);
        if (entry.stale) sample.lag_age = std::max(sample.lag_age, entry.age);
      }
    }
    out.reachable++;
    out.masters += sample.masters;
    out.replicas += sample.replicas;
    out.frontier += sample.frontier;
    out.stale_replicas += sample.stale;
    out.holders += sample.holders;
    lag_versions.push_back(sample.lag_versions);
    lag_ages.push_back(sample.lag_age);
  }

  out.lag_versions_p50 = NearestRank(lag_versions, 0.50);
  out.lag_versions_p95 = NearestRank(lag_versions, 0.95);
  out.lag_versions_max =
      lag_versions.empty()
          ? 0
          : *std::max_element(lag_versions.begin(), lag_versions.end());
  out.lag_age_p50 = NearestRank(lag_ages, 0.50);
  out.lag_age_p95 = NearestRank(lag_ages, 0.95);
  out.lag_age_max =
      lag_ages.empty() ? 0 : *std::max_element(lag_ages.begin(), lag_ages.end());

  // Hotness top-K by traffic.
  std::vector<FleetHotObject> hottest;
  hottest.reserve(hot.size());
  for (auto& [key, h] : hot) hottest.push_back(std::move(h));
  // Traffic descending, ties broken by object id ascending: unordered_map
  // iteration order would otherwise decide which of two equal-traffic
  // objects survives the top-K cut, and the report would flap between polls.
  std::sort(hottest.begin(), hottest.end(),
            [](const FleetHotObject& a, const FleetHotObject& b) {
              if (a.traffic != b.traffic) return a.traffic > b.traffic;
              return a.id < b.id;
            });
  if (hottest.size() > options_.top_k) hottest.resize(options_.top_k);
  out.hottest = std::move(hottest);

  // Updates + bytes-per-update, as deltas against the previous poll. A
  // master's payload size at poll time approximates the bytes each of its
  // puts shipped over the interval.
  std::uint64_t updates_total = 0;
  std::uint64_t delta_puts = 0;
  double delta_bytes = 0;
  for (const auto& [key, snap] : masters_now) {
    updates_total += snap.puts;
    std::uint64_t prev = 0;
    if (auto it = prev_masters_.find(key); it != prev_masters_.end()) {
      prev = it->second.puts;
    }
    if (snap.puts > prev) {
      delta_puts += snap.puts - prev;
      delta_bytes += static_cast<double>(snap.payload_bytes) *
                     static_cast<double>(snap.puts - prev);
    }
  }
  out.updates = updates_total;
  out.bytes_per_update = delta_puts ? delta_bytes / delta_puts : 0;
  prev_masters_ = std::move(masters_now);
  prev_updates_total_ = updates_total;

  // SLO burn: while breached, the whole interval since the previous poll
  // counts (the monitor cannot see inside an interval).
  out.slo_breached =
      out.reachable > 0 &&
      (out.lag_age_max > options_.slo_lag_age ||
       (options_.slo_lag_versions > 0 &&
        out.lag_versions_max > options_.slo_lag_versions));
  if (out.slo_breached && last_poll_at_ >= 0 && out.now > last_poll_at_) {
    breach_ns_total_ += out.now - last_poll_at_;
  }
  last_poll_at_ = out.now;
  out.slo_breach_seconds =
      static_cast<double>(breach_ns_total_) / static_cast<double>(kSecond);
  const std::int64_t whole_seconds = breach_ns_total_ / kSecond;
  if (whole_seconds > breach_sec_counted_) {
    slo_breach_seconds_total_->Inc(
        static_cast<std::uint64_t>(whole_seconds - breach_sec_counted_));
    breach_sec_counted_ = whole_seconds;
  }

  out.site_samples = std::move(samples);

  sites_polled_->Set(static_cast<std::int64_t>(out.sites));
  sites_reachable_->Set(static_cast<std::int64_t>(out.reachable));
  objects_master_->Set(static_cast<std::int64_t>(out.masters));
  objects_replica_->Set(static_cast<std::int64_t>(out.replicas));
  objects_frontier_->Set(static_cast<std::int64_t>(out.frontier));
  stale_replicas_->Set(static_cast<std::int64_t>(out.stale_replicas));
  holders_->Set(static_cast<std::int64_t>(out.holders));
  lag_versions_p50_->Set(static_cast<std::int64_t>(out.lag_versions_p50));
  lag_versions_p95_->Set(static_cast<std::int64_t>(out.lag_versions_p95));
  lag_versions_max_->Set(static_cast<std::int64_t>(out.lag_versions_max));
  lag_age_p50_->Set(out.lag_age_p50);
  lag_age_p95_->Set(out.lag_age_p95);
  lag_age_max_->Set(out.lag_age_max);
  bytes_per_update_->Set(static_cast<std::int64_t>(out.bytes_per_update));
  slo_breached_->Set(out.slo_breached ? 1 : 0);
  polls_total_->Inc();

  last_ = out;
  return out;
}

FleetReport FleetMonitor::last() const {
  std::lock_guard lock(mutex_);
  return last_;
}

Status FleetMonitor::Start() {
  if (running_.exchange(true)) return Status::Ok();
  poll_thread_ = std::thread([this] {
    while (running_.load(std::memory_order_relaxed)) {
      PollOnce();
      std::unique_lock lock(cv_mutex_);
      cv_.wait_for(lock, std::chrono::nanoseconds(options_.poll_interval),
                   [this] { return !running_.load(std::memory_order_relaxed); });
    }
  });
  return Status::Ok();
}

void FleetMonitor::Stop() {
  if (!running_.exchange(false)) return;
  cv_.notify_all();
  if (poll_thread_.joinable()) poll_thread_.join();
}

}  // namespace obiwan::obs
